// Quickstart: generate a dataset, bulk-load a Coconut-Tree, and run
// approximate and exact nearest-neighbor queries.
//
//   $ ./example_quickstart
//
// The public API in a nutshell:
//   1. Datasets are headerless float32 files (WriteDataset / RawSeriesFile).
//   2. CoconutTree::Build externally sorts (invSAX, position) pairs and
//      bulk-loads a balanced, contiguous index (paper Algorithm 3).
//   3. ApproxSearch visits a window of contiguous leaves (Algorithm 4);
//      ExactSearch runs the CoconutTreeSIMS scan (Algorithm 5).
#include <cstdio>

#include "src/common/env.h"
#include "src/core/coconut_tree.h"
#include "src/series/dataset.h"
#include "src/series/generator.h"

using namespace coconut;

int main() {
  std::string dir;
  if (!MakeTempDir("coconut-quickstart-", &dir).ok()) return 1;
  const std::string raw_path = JoinPath(dir, "walks.bin");
  const std::string index_path = JoinPath(dir, "walks.ctree");

  // 1. Generate 50,000 random-walk series of 256 points (~50 MB).
  const size_t kCount = 50000, kLength = 256;
  RandomWalkGenerator gen(kLength, /*seed=*/42);
  if (!WriteDataset(raw_path, &gen, kCount).ok()) return 1;
  std::printf("dataset: %zu series of %zu points at %s\n", kCount, kLength,
              raw_path.c_str());

  // 2. Build the index. Options default to the paper's configuration
  //    (16 segments, 8-bit symbols, 2000-record leaves, fill factor 1.0).
  CoconutOptions options;
  options.summary.series_length = kLength;
  TreeBuildStats stats;
  Status st = CoconutTree::Build(raw_path, index_path, options, &stats);
  if (!st.ok()) {
    std::printf("build failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf(
      "built in %.2fs (summarize %.2fs, sort %.2fs, bulk-load %.2fs)\n",
      stats.total_seconds(), stats.summarize_seconds, stats.sort_seconds,
      stats.load_seconds);

  std::unique_ptr<CoconutTree> tree;
  if (!CoconutTree::Open(index_path, raw_path, &tree).ok()) return 1;
  std::printf("index: %llu entries, %llu leaves, height %llu, fill %.2f\n",
              (unsigned long long)tree->num_entries(),
              (unsigned long long)tree->num_leaves(),
              (unsigned long long)tree->height(), tree->AvgLeafFill());

  // 3. Query: approximate (fast, one leaf) then exact (SIMS).
  RandomWalkGenerator qgen(kLength, /*seed=*/7);
  Series query = qgen.NextSeries();
  SearchResult approx, exact;
  if (!tree->ApproxSearch(query.data(), /*num_leaves=*/1, &approx).ok()) {
    return 1;
  }
  if (!tree->ExactSearch(query.data(), /*approx_leaves=*/1, &exact).ok()) {
    return 1;
  }
  std::printf("approximate NN: distance %.4f (visited %llu records)\n",
              approx.distance, (unsigned long long)approx.visited_records);
  std::printf("exact NN:       distance %.4f (visited %llu records, "
              "series at byte offset %llu)\n",
              exact.distance, (unsigned long long)exact.visited_records,
              (unsigned long long)exact.offset);

  (void)RemoveAll(dir);
  return 0;
}
