// Tests for PAA, SAX breakpoints, invSAX interleaving, and the MINDIST
// lower bounds — including the property tests that underpin exactness of
// every index in the repository.
#include <algorithm>
#include <cmath>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/random.h"
#include "src/series/distance.h"
#include "src/series/generator.h"
#include "src/summary/breakpoints.h"
#include "src/summary/invsax.h"
#include "src/summary/mindist.h"
#include "src/summary/paa.h"
#include "src/summary/sax.h"

namespace coconut {
namespace {

TEST(InverseNormalCdf, MatchesKnownQuantiles) {
  EXPECT_NEAR(InverseNormalCdf(0.5), 0.0, 1e-9);
  EXPECT_NEAR(InverseNormalCdf(0.8413447), 1.0, 1e-4);
  EXPECT_NEAR(InverseNormalCdf(0.1586553), -1.0, 1e-4);
  EXPECT_NEAR(InverseNormalCdf(0.975), 1.959964, 1e-5);
}

TEST(Breakpoints, MonotonicAndSymmetric) {
  const SaxBreakpoints& bp = SaxBreakpoints::Get();
  for (unsigned bits = 1; bits <= kMaxCardinalityBits; ++bits) {
    const std::vector<double>& t = bp.ForBits(bits);
    ASSERT_EQ(t.size(), (1u << bits) - 1);
    EXPECT_TRUE(std::is_sorted(t.begin(), t.end()));
    // Gaussian quantiles are symmetric around zero.
    for (size_t i = 0; i < t.size(); ++i) {
      EXPECT_NEAR(t[i], -t[t.size() - 1 - i], 1e-9);
    }
  }
}

TEST(Breakpoints, NestingAcrossCardinalities) {
  // The breakpoints at 2^b must be a subset of those at 2^(b+1): this is
  // what makes a low-cardinality symbol the bit-prefix of the
  // high-cardinality one (iSAX multiresolution).
  const SaxBreakpoints& bp = SaxBreakpoints::Get();
  for (unsigned bits = 1; bits < kMaxCardinalityBits; ++bits) {
    const std::vector<double>& coarse = bp.ForBits(bits);
    const std::vector<double>& fine = bp.ForBits(bits + 1);
    for (size_t i = 0; i < coarse.size(); ++i) {
      EXPECT_NEAR(coarse[i], fine[2 * i + 1], 1e-9);
    }
  }
}

TEST(Breakpoints, SymbolPrefixProperty) {
  const SaxBreakpoints& bp = SaxBreakpoints::Get();
  Rng rng(3);
  for (int trial = 0; trial < 1000; ++trial) {
    const double v = 4.0 * rng.Gaussian();
    const uint32_t full = bp.Symbol(8, v);
    for (unsigned bits = 1; bits < 8; ++bits) {
      EXPECT_EQ(bp.Symbol(bits, v), full >> (8 - bits))
          << "value " << v << " bits " << bits;
    }
  }
}

TEST(Paa, AveragesSegments) {
  const std::vector<Value> s = {1, 1, 3, 3, -2, -2, 0, 8};
  std::vector<double> paa(4);
  PaaTransform(s.data(), s.size(), 4, paa.data());
  EXPECT_DOUBLE_EQ(paa[0], 1.0);
  EXPECT_DOUBLE_EQ(paa[1], 3.0);
  EXPECT_DOUBLE_EQ(paa[2], -2.0);
  EXPECT_DOUBLE_EQ(paa[3], 4.0);
}

TEST(Paa, SingleSegmentIsMean) {
  const std::vector<Value> s = {2, 4, 6, 8};
  std::vector<double> paa(1);
  PaaTransform(s.data(), s.size(), 1, paa.data());
  EXPECT_DOUBLE_EQ(paa[0], 5.0);
}

SummaryOptions SmallOpts() {
  SummaryOptions o;
  o.series_length = 64;
  o.segments = 8;
  o.cardinality_bits = 8;
  return o;
}

TEST(InvSax, RoundTripsRandomWords) {
  SummaryOptions opts = SmallOpts();
  Rng rng(11);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<uint8_t> sax(opts.segments);
    for (auto& s : sax) s = static_cast<uint8_t>(rng.UniformInt(256));
    const ZKey key = InvSaxFromSax(sax.data(), opts);
    std::vector<uint8_t> back(opts.segments);
    SaxFromInvSax(key, opts, back.data());
    EXPECT_EQ(back, sax);
  }
}

TEST(InvSax, RoundTripsAtAllConfigurations) {
  Rng rng(17);
  for (unsigned bits = 1; bits <= 8; ++bits) {
    for (size_t segs : {1, 4, 16, 32}) {
      SummaryOptions opts;
      opts.series_length = 256;
      opts.segments = segs;
      opts.cardinality_bits = bits;
      ASSERT_TRUE(opts.Validate().ok());
      std::vector<uint8_t> sax(segs);
      for (auto& s : sax) {
        s = static_cast<uint8_t>(rng.UniformInt(1ull << bits));
      }
      const ZKey key = InvSaxFromSax(sax.data(), opts);
      std::vector<uint8_t> back(segs);
      SaxFromInvSax(key, opts, back.data());
      EXPECT_EQ(back, sax) << "bits=" << bits << " segs=" << segs;
    }
  }
}

TEST(InvSax, InterleavingPutsLevelBitsFirst) {
  // Paper Algorithm 1: the first w key bits are the most significant bits
  // of the w segments, in segment order.
  SummaryOptions opts = SmallOpts();
  std::vector<uint8_t> sax(opts.segments, 0);
  sax[3] = 0x80;  // only segment 3 has its top bit set
  const ZKey key = InvSaxFromSax(sax.data(), opts);
  for (size_t pos = 0; pos < opts.key_bits(); ++pos) {
    EXPECT_EQ(key.GetBit(pos), pos == 3 ? 1u : 0u) << "pos " << pos;
  }
}

TEST(InvSax, PaperFigure2Example) {
  // Paper Figure 2/4: S1=ec, S2=ee, S3=fc, S4=ge with 3-bit symbols
  // (a=000 ... h=111). Lexicographic SAX order is S1,S2,S3,S4; z-order must
  // instead put the similar pairs (S1,S3) and (S2,S4) adjacent.
  SummaryOptions opts;
  opts.series_length = 16;
  opts.segments = 2;
  opts.cardinality_bits = 3;
  auto word = [](uint8_t a, uint8_t b) { return std::vector<uint8_t>{a, b}; };
  const auto s1 = word(4, 2);  // e c
  const auto s2 = word(4, 4);  // e e
  const auto s3 = word(5, 2);  // f c
  const auto s4 = word(6, 4);  // g e
  std::vector<std::pair<ZKey, int>> keys = {
      {InvSaxFromSax(s1.data(), opts), 1},
      {InvSaxFromSax(s2.data(), opts), 2},
      {InvSaxFromSax(s3.data(), opts), 3},
      {InvSaxFromSax(s4.data(), opts), 4},
  };
  std::sort(keys.begin(), keys.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  // Expected z-order: S1 (100,010), S3 (101,010), S2 (100,100), S4 (110,100).
  EXPECT_EQ(keys[0].second, 1);
  EXPECT_EQ(keys[1].second, 3);
  EXPECT_EQ(keys[2].second, 2);
  EXPECT_EQ(keys[3].second, 4);
}

class MindistPropertyTest : public ::testing::TestWithParam<DatasetKind> {};

TEST_P(MindistPropertyTest, SaxMindistLowerBoundsTrueDistance) {
  SummaryOptions opts;
  opts.series_length = 128;
  opts.segments = 16;
  opts.cardinality_bits = 8;
  auto gen = MakeGenerator(GetParam(), opts.series_length, 99);
  Series q(opts.series_length), x(opts.series_length);
  std::vector<double> qpaa(opts.segments);
  std::vector<uint8_t> xsax(opts.segments);
  for (int trial = 0; trial < 300; ++trial) {
    gen->Next(q.data());
    gen->Next(x.data());
    PaaTransform(q.data(), opts.series_length, opts.segments, qpaa.data());
    SaxFromSeries(x.data(), opts, xsax.data());
    const double lb = MindistSqPaaToSax(qpaa.data(), xsax.data(), opts);
    const double actual = SquaredEuclidean(q.data(), x.data(),
                                           opts.series_length);
    EXPECT_LE(lb, actual + 1e-6);
  }
}

TEST_P(MindistPropertyTest, PaaMindistLowerBoundsTrueDistance) {
  SummaryOptions opts;
  opts.series_length = 128;
  opts.segments = 16;
  auto gen = MakeGenerator(GetParam(), opts.series_length, 123);
  Series q(opts.series_length), x(opts.series_length);
  std::vector<double> qpaa(opts.segments), xpaa(opts.segments);
  for (int trial = 0; trial < 300; ++trial) {
    gen->Next(q.data());
    gen->Next(x.data());
    PaaTransform(q.data(), opts.series_length, opts.segments, qpaa.data());
    PaaTransform(x.data(), opts.series_length, opts.segments, xpaa.data());
    const double lb = MindistSqPaaToPaa(qpaa.data(), xpaa.data(), opts);
    const double actual = SquaredEuclidean(q.data(), x.data(),
                                           opts.series_length);
    EXPECT_LE(lb, actual + 1e-6);
  }
}

TEST_P(MindistPropertyTest, PrefixMindistWeakensMonotonically) {
  // Fewer prefix bits -> looser (smaller or equal) bound, and every prefix
  // bound still lower-bounds the true distance.
  SummaryOptions opts;
  opts.series_length = 128;
  opts.segments = 16;
  opts.cardinality_bits = 8;
  auto gen = MakeGenerator(GetParam(), opts.series_length, 321);
  Series q(opts.series_length), x(opts.series_length);
  std::vector<double> qpaa(opts.segments);
  std::vector<uint8_t> xsax(opts.segments);
  for (int trial = 0; trial < 100; ++trial) {
    gen->Next(q.data());
    gen->Next(x.data());
    PaaTransform(q.data(), opts.series_length, opts.segments, qpaa.data());
    SaxFromSeries(x.data(), opts, xsax.data());
    const double actual = SquaredEuclidean(q.data(), x.data(),
                                           opts.series_length);
    double prev = -1.0;
    for (unsigned p = 0; p <= 8; ++p) {
      std::vector<uint8_t> prefix_bits(opts.segments,
                                       static_cast<uint8_t>(p));
      const double lb = MindistSqPaaToSaxPrefix(qpaa.data(), xsax.data(),
                                                prefix_bits.data(), opts);
      EXPECT_GE(lb, prev - 1e-9) << "prefix bits " << p;
      EXPECT_LE(lb, actual + 1e-6);
      prev = lb;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, MindistPropertyTest,
                         ::testing::Values(DatasetKind::kRandomWalk,
                                           DatasetKind::kSeismic,
                                           DatasetKind::kAstronomy),
                         [](const auto& info) {
                           return DatasetKindName(info.param);
                         });

TEST(Mindist, RectBoundMatchesSaxRegionBound) {
  SummaryOptions opts = SmallOpts();
  Rng rng(5);
  const SaxBreakpoints& bp = SaxBreakpoints::Get();
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<double> qpaa(opts.segments);
    std::vector<uint8_t> sax(opts.segments);
    std::vector<double> lo(opts.segments), hi(opts.segments);
    for (size_t j = 0; j < opts.segments; ++j) {
      qpaa[j] = 3.0 * rng.Gaussian();
      sax[j] = static_cast<uint8_t>(rng.UniformInt(256));
      lo[j] = bp.RegionLower(8, sax[j]);
      hi[j] = bp.RegionUpper(8, sax[j]);
    }
    EXPECT_NEAR(MindistSqPaaToSax(qpaa.data(), sax.data(), opts),
                MindistSqPaaToRect(qpaa.data(), lo.data(), hi.data(), opts),
                1e-9);
  }
}

TEST(Sax, QuantileBreakpointsSpreadSymbolsAcrossAlphabet) {
  // The breakpoints follow the normal distribution precisely so that
  // z-normalized data occupies all regions (paper §2: "an approximately
  // equal distribution of the raw data series values across the regions").
  // Each quarter of the alphabet should carry a meaningful share of mass.
  SummaryOptions opts;
  opts.series_length = 256;
  opts.segments = 16;
  opts.cardinality_bits = 8;
  RandomWalkGenerator gen(opts.series_length, 77);
  Series s(opts.series_length);
  std::vector<uint8_t> sax(opts.segments);
  size_t quarter[4] = {0, 0, 0, 0};
  size_t total = 0;
  for (int i = 0; i < 200; ++i) {
    gen.Next(s.data());
    SaxFromSeries(s.data(), opts, sax.data());
    for (uint8_t sym : sax) {
      ++total;
      ++quarter[sym / 64];
    }
  }
  for (int q = 0; q < 4; ++q) {
    EXPECT_GT(static_cast<double>(quarter[q]) / total, 0.10)
        << "alphabet quarter " << q << " nearly unused";
    EXPECT_LT(static_cast<double>(quarter[q]) / total, 0.45)
        << "alphabet quarter " << q << " dominates";
  }
}

}  // namespace
}  // namespace coconut
