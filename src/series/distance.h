// Euclidean distance between equal-length series, the distance metric used
// throughout the paper's evaluation (paper §2). Squared forms avoid the sqrt
// until results are reported; the early-abandoning variant stops as soon as
// the partial sum exceeds a best-so-far bound.
#ifndef COCONUT_SERIES_DISTANCE_H_
#define COCONUT_SERIES_DISTANCE_H_

#include <cmath>
#include <limits>

#include "src/series/series.h"

namespace coconut {

/// Squared Euclidean distance between two series of length n.
inline double SquaredEuclidean(const Value* a, const Value* b, size_t n) {
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    sum += d * d;
  }
  return sum;
}

/// Squared Euclidean distance with early abandoning: returns a value
/// >= `bound_sq` as soon as the partial sum crosses `bound_sq`.
inline double SquaredEuclideanEarlyAbandon(const Value* a, const Value* b,
                                           size_t n, double bound_sq) {
  double sum = 0.0;
  size_t i = 0;
  while (i < n) {
    const size_t stop = (i + 16 < n) ? i + 16 : n;
    for (; i < stop; ++i) {
      const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
      sum += d * d;
    }
    if (sum >= bound_sq) return sum;
  }
  return sum;
}

inline double Euclidean(const Value* a, const Value* b, size_t n) {
  return std::sqrt(SquaredEuclidean(a, b, n));
}

inline double Euclidean(SeriesView a, SeriesView b) {
  return Euclidean(a.data, b.data, a.length);
}

}  // namespace coconut

#endif  // COCONUT_SERIES_DISTANCE_H_
