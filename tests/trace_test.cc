// Span tracer (src/obs/trace.h): flight-recorder ring wraparound, drain
// windowing, disabled-path inertness, Chrome trace-event JSON shape, and
// ThreadPool flow-event pairing across real worker threads (a
// ThreadSanitizer target, see .github/workflows/ci.yml).
#include "src/obs/trace.h"

#include <atomic>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/exec/thread_pool.h"

namespace coconut {
namespace {

// --- Ring semantics (private Tracer instances; Record* writes land in the
// calling thread's ring regardless of the enabled flag, which only gates
// the TraceSpan/TraceStages call sites) ---

TEST(Tracer, RingWrapsKeepingTheLatestEvents) {
  Tracer tracer(16);  // capacity is already a power of two
  constexpr uint64_t kTotal = 100;
  for (uint64_t i = 0; i < kTotal; ++i) {
    tracer.RecordComplete("wrap", "test", i * 1000, i * 1000 + 500);
  }
  const std::vector<TraceEvent> events = tracer.DrainEvents();
  ASSERT_EQ(events.size(), 16u);
  // The 16 survivors are exactly the 16 most recent appends, in order.
  for (size_t i = 0; i < events.size(); ++i) {
    const uint64_t expect = (kTotal - 16 + i) * 1000;
    EXPECT_EQ(events[i].ts_ns, expect);
    EXPECT_EQ(events[i].dur_ns, 500u);
    EXPECT_STREQ(events[i].name, "wrap");
    EXPECT_EQ(events[i].phase, 'X');
  }
}

TEST(Tracer, CapacityRoundsUpToPowerOfTwo) {
  Tracer tracer(10);  // rounds to 16
  for (uint64_t i = 0; i < 40; ++i) {
    tracer.RecordComplete("n", "test", i, i + 1);
  }
  EXPECT_EQ(tracer.DrainEvents().size(), 16u);
}

TEST(Tracer, DrainSinceFiltersOldEvents) {
  Tracer tracer(64);
  tracer.RecordComplete("old", "test", 100, 200);
  tracer.RecordComplete("new", "test", 5000, 5100);
  const std::vector<TraceEvent> events = tracer.DrainEvents(1000);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "new");
}

TEST(Tracer, DrainIsNonDestructive) {
  // Flight-recorder contract: draining never clears; two drains agree.
  Tracer tracer(64);
  tracer.RecordComplete("a", "test", 1, 2);
  tracer.RecordComplete("b", "test", 3, 4);
  EXPECT_EQ(tracer.DrainEvents().size(), 2u);
  EXPECT_EQ(tracer.DrainEvents().size(), 2u);
}

TEST(Tracer, EventsFromMultipleThreadsCarryDistinctTids) {
  Tracer tracer(64);
  constexpr int kThreads = 3;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t]() {
      tracer.RecordComplete("per-thread", "test",
                            static_cast<uint64_t>(t) * 10,
                            static_cast<uint64_t>(t) * 10 + 5);
    });
  }
  for (auto& t : threads) t.join();
  const std::vector<TraceEvent> events = tracer.DrainEvents();
  ASSERT_EQ(events.size(), static_cast<size_t>(kThreads));
  std::set<uint32_t> tids;
  for (const TraceEvent& e : events) tids.insert(e.tid);
  EXPECT_EQ(tids.size(), static_cast<size_t>(kThreads));
}

// --- JSON shape ---

TEST(Tracer, JsonIsChromeTraceEventFormat) {
  Tracer tracer(64);
  tracer.RecordComplete("span_one", "cat_a", 1000, 3500);
  tracer.RecordFlow('s', "hop", 42, 1500);
  tracer.RecordFlow('f', "hop", 42, 2500);
  const std::string json = tracer.ToJson();

  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  // Complete span: microsecond ts/dur with fractional nanoseconds.
  EXPECT_NE(json.find("\"name\":\"span_one\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2.500"), std::string::npos);
  // Flow pair: same id on 's' and 'f'; the finish binds to its enclosing
  // slice so the viewer draws the arrow into the slice body.
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("\"id\":42"), std::string::npos);
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
}

// --- Disabled path ---

TEST(TraceSpan, InertWhileTracingDisabled) {
  Tracer::Default().Stop();
  TraceSpan span("should.not.record", "test");
  EXPECT_FALSE(span.active());
}

TEST(TraceStages, MarksRecordContiguousSegments) {
  Tracer& tracer = Tracer::Default();
  const uint64_t t0 = Tracer::NowNanos();
  tracer.Start();
  {
    TraceStages stages;
    stages.Mark("stage.one", "test");
    stages.Mark("stage.two", "test");
  }
  tracer.Stop();
  const std::vector<TraceEvent> events = tracer.DrainEvents(t0);
  std::vector<TraceEvent> stages;
  for (const TraceEvent& e : events) {
    if (std::string(e.name).rfind("stage.", 0) == 0) stages.push_back(e);
  }
  ASSERT_EQ(stages.size(), 2u);
  EXPECT_STREQ(stages[0].name, "stage.one");
  EXPECT_STREQ(stages[1].name, "stage.two");
  // Second segment starts exactly where the first ended.
  EXPECT_EQ(stages[1].ts_ns, stages[0].ts_ns + stages[0].dur_ns);
}

// --- ThreadPool flow events across real threads ---

TEST(TracerFlow, PoolSubmitPairsEnqueueWithExecution) {
  Tracer& tracer = Tracer::Default();
  const uint64_t t0 = Tracer::NowNanos();
  tracer.Start();
  constexpr int kTasks = 3;
  {
    // 3 workers + caller. Each task holds its worker until all three have
    // started, forcing three DISTINCT worker threads to execute one task
    // each (a worker cannot take a second task while spinning in its
    // first); the test then observes >= 4 threads in the trace: three
    // "pool.task" slices plus the submitting thread's "pool.submit".
    ThreadPool pool(4);
    std::atomic<int> started{0};
    std::atomic<int> done{0};
    for (int i = 0; i < kTasks; ++i) {
      pool.Submit([&started, &done]() {
        started.fetch_add(1);
        while (started.load() < kTasks) std::this_thread::yield();
        done.fetch_add(1);
      });
    }
    while (done.load() < kTasks) std::this_thread::yield();
  }  // pool joins: every queued entry has fully executed
  tracer.Stop();

  const std::vector<TraceEvent> events = tracer.DrainEvents(t0);
  std::set<uint32_t> tids;
  std::map<uint64_t, int> starts, finishes;
  int task_slices = 0, submit_slices = 0;
  for (const TraceEvent& e : events) {
    tids.insert(e.tid);
    if (e.phase == 's') ++starts[e.flow_id];
    if (e.phase == 'f') ++finishes[e.flow_id];
    if (e.phase == 'X' && std::string(e.name) == "pool.task") ++task_slices;
    if (e.phase == 'X' && std::string(e.name) == "pool.submit") {
      ++submit_slices;
    }
  }
  EXPECT_GE(tids.size(), 4u);
  EXPECT_GE(task_slices, kTasks);
  EXPECT_GE(submit_slices, kTasks);
  ASSERT_GE(starts.size(), static_cast<size_t>(kTasks));
  // Every flow id is a clean pair: one 's', one 'f', no orphans either way.
  for (const auto& [id, n] : starts) {
    EXPECT_EQ(n, 1) << "flow " << id;
    EXPECT_EQ(finishes[id], 1) << "flow " << id;
  }
  for (const auto& [id, n] : finishes) {
    EXPECT_EQ(n, 1) << "flow " << id;
    EXPECT_EQ(starts.count(id), 1u) << "orphan flow-finish " << id;
  }
}

TEST(TracerFlow, ParallelForFansOutOneFlowPerHelper) {
  Tracer& tracer = Tracer::Default();
  const uint64_t t0 = Tracer::NowNanos();
  tracer.Start();
  std::atomic<uint64_t> sum{0};
  {
    ThreadPool pool(4);
    pool.ParallelFor(0, 400, 1, [&sum](uint64_t lo, uint64_t hi) {
      sum.fetch_add(hi - lo, std::memory_order_relaxed);
    });
  }
  tracer.Stop();
  EXPECT_EQ(sum.load(), 400u);

  const std::vector<TraceEvent> events = tracer.DrainEvents(t0);
  int fan_slices = 0;
  std::map<uint64_t, int> starts, finishes;
  for (const TraceEvent& e : events) {
    if (e.phase == 's') ++starts[e.flow_id];
    if (e.phase == 'f') ++finishes[e.flow_id];
    if (e.phase == 'X' &&
        std::string(e.name) == "pool.submit_parallel_for") {
      ++fan_slices;
    }
  }
  EXPECT_EQ(fan_slices, 1);
  // 3 helper entries were enqueued (min(workers, chunks - 1)); each runs
  // eventually (even if it finds the chunk cursor drained) and emits its
  // flow-finish before the pool joins.
  EXPECT_EQ(starts.size(), 3u);
  for (const auto& [id, n] : starts) {
    EXPECT_EQ(n, 1) << "flow " << id;
    EXPECT_EQ(finishes[id], 1) << "flow " << id;
  }
}

}  // namespace
}  // namespace coconut
