#include "src/common/failpoint.h"

#include <chrono>
#include <cstdlib>
#include <thread>  // coconut-lint: allow(raw-thread) -- sleep_for only, no thread spawn
#include <utility>
#include <vector>

namespace coconut {
namespace {

Status InjectedError(const std::string& site) {
  return Status::IOError("failpoint: " + site);
}

}  // namespace

Failpoints& Failpoints::Default() {
  static Failpoints* const instance = new Failpoints();
  return *instance;
}

Failpoints::Failpoints() {
  // COCONUT_FAILPOINTS="site=kind[:p],site=kind[:p],..."
  // kind: error | torn | bitflip | delay<ms>. Malformed clauses are skipped
  // (fault injection must never take down a production process by itself).
  const char* env = std::getenv("COCONUT_FAILPOINTS");
  if (env == nullptr || *env == '\0') return;
  const std::string spec(env);
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string clause = spec.substr(pos, comma - pos);
    pos = comma + 1;
    const size_t eq = clause.find('=');
    if (eq == std::string::npos || eq == 0) continue;
    const std::string site = clause.substr(0, eq);
    std::string kind = clause.substr(eq + 1);
    Action action;
    const size_t colon = kind.find(':');
    if (colon != std::string::npos) {
      const std::string prob = kind.substr(colon + 1);
      kind = kind.substr(0, colon);
      char* end = nullptr;
      const double p = std::strtod(prob.c_str(), &end);
      if (end == nullptr || *end != '\0' || p < 0.0 || p > 1.0) continue;
      action.probability = p;
    }
    if (kind == "error") {
      action.kind = Kind::kError;
    } else if (kind == "torn") {
      action.kind = Kind::kTornWrite;
    } else if (kind == "bitflip") {
      action.kind = Kind::kBitFlip;
    } else if (kind.rfind("delay", 0) == 0) {
      action.kind = Kind::kDelayMs;
      char* end = nullptr;
      const long ms = std::strtol(kind.c_str() + 5, &end, 10);
      if (end == nullptr || *end != '\0' || ms < 0) continue;
      action.delay_ms = static_cast<int>(ms);
    } else {
      continue;
    }
    Arm(site, std::move(action));
  }
}

void Failpoints::ArmLocked(const std::string& site, Action action) {
  auto it = sites_.find(site);
  if (it == sites_.end()) {
    armed_count_.fetch_add(1, std::memory_order_relaxed);
    sites_[site] = Entry{std::move(action), 0};
  } else {
    it->second.action = std::move(action);  // hit count survives a re-arm
  }
}

void Failpoints::Arm(const std::string& site, Action action) {
  MutexLock lock(&mu_);
  ArmLocked(site, std::move(action));
}

void Failpoints::ArmError(const std::string& site, double probability) {
  Action action;
  action.kind = Kind::kError;
  action.probability = probability;
  Arm(site, std::move(action));
}

void Failpoints::ArmCallback(const std::string& site,
                             std::function<Status(size_t)> callback) {
  Action action;
  action.kind = Kind::kCallback;
  action.callback = std::move(callback);
  Arm(site, std::move(action));
}

void Failpoints::Disarm(const std::string& site) {
  MutexLock lock(&mu_);
  if (sites_.erase(site) != 0) {
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Failpoints::DisarmAll() {
  MutexLock lock(&mu_);
  armed_count_.fetch_sub(static_cast<int>(sites_.size()),
                         std::memory_order_relaxed);
  sites_.clear();
}

uint64_t Failpoints::HitCount(const std::string& site) const {
  MutexLock lock(&mu_);
  const auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

const Failpoints::Entry* Failpoints::Roll(const std::string& site) {
  auto it = sites_.find(site);
  if (it == sites_.end()) return nullptr;
  Entry& entry = it->second;
  if (entry.action.remaining == 0) return nullptr;
  if (entry.action.probability < 1.0) {
    std::uniform_real_distribution<double> uniform(0.0, 1.0);
    if (uniform(rng_) >= entry.action.probability) return nullptr;
  }
  if (entry.action.remaining > 0) --entry.action.remaining;
  ++entry.hits;
  return &entry;
}

Status Failpoints::Hit(const char* site, size_t arg) {
  if (armed_count_.load(std::memory_order_relaxed) == 0) return Status::OK();
  Kind kind;
  int delay_ms = 0;
  std::function<Status(size_t)> callback;
  {
    MutexLock lock(&mu_);
    const Entry* entry = Roll(site);
    if (entry == nullptr) return Status::OK();
    kind = entry->action.kind;
    delay_ms = entry->action.delay_ms;
    callback = entry->action.callback;  // copy: invoked outside the lock
  }
  switch (kind) {
    case Kind::kError:
      return InjectedError(site);
    case Kind::kDelayMs:
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      return Status::OK();
    case Kind::kCallback:
      return callback ? callback(arg) : Status::OK();
    case Kind::kTornWrite:
    case Kind::kBitFlip:
      // Write-only mutations at a non-write site degrade to a plain error:
      // the arm was almost certainly meant to make this operation fail.
      return InjectedError(site);
  }
  return Status::OK();
}

Status Failpoints::HitWrite(const char* site, size_t n, WriteFault* fault) {
  *fault = WriteFault{};
  if (armed_count_.load(std::memory_order_relaxed) == 0) return Status::OK();
  Kind kind;
  int delay_ms = 0;
  std::function<Status(size_t)> callback;
  {
    MutexLock lock(&mu_);
    const Entry* entry = Roll(site);
    if (entry == nullptr) return Status::OK();
    kind = entry->action.kind;
    delay_ms = entry->action.delay_ms;
    callback = entry->action.callback;
    switch (kind) {
      case Kind::kTornWrite:
        fault->torn = true;
        fault->torn_bytes =
            n == 0 ? 0 : std::uniform_int_distribution<size_t>(0, n - 1)(rng_);
        return Status::OK();
      case Kind::kBitFlip:
        fault->bit_flip = n != 0;
        fault->flip_index =
            n == 0 ? 0
                   : std::uniform_int_distribution<size_t>(0, n * 8 - 1)(rng_);
        return Status::OK();
      default:
        break;
    }
  }
  switch (kind) {
    case Kind::kError:
      return InjectedError(site);
    case Kind::kDelayMs:
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      return Status::OK();
    case Kind::kCallback:
      return callback ? callback(n) : Status::OK();
    default:
      return Status::OK();
  }
}

}  // namespace coconut
