// Admission control for query execution: bounded in-flight batches and
// bounded queued payload bytes. When either gate is full the request is shed
// immediately with Status::ResourceExhausted instead of queueing unboundedly
// behind the ThreadPool — a shed costs microseconds, an unbounded queue
// costs every later request its latency. See docs/ROBUSTNESS.md.
//
// Counters are lock-free; admission is a compare-and-retry over a packed
// (inflight, bytes) pair kept as two atomics with optimistic admission and
// rollback on overshoot. Exactness at the boundary is not required — the
// gates bound resources, they do not ration them fairly.
#ifndef COCONUT_EXEC_ADMISSION_CONTROLLER_H_
#define COCONUT_EXEC_ADMISSION_CONTROLLER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "src/common/status.h"

namespace coconut {

struct AdmissionOptions {
  /// Maximum batches executing concurrently; 0 = unlimited.
  size_t max_inflight = 0;
  /// Maximum total payload bytes admitted-and-executing; 0 = unlimited.
  size_t max_queued_bytes = 0;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options);
  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// RAII admission ticket: releases the controller's inflight/bytes budget
  /// when destroyed. Default-constructed tickets are empty (no-op release),
  /// so callers without a controller share the same code path.
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& other) noexcept
        : controller_(other.controller_), bytes_(other.bytes_) {
      other.controller_ = nullptr;
    }
    Ticket& operator=(Ticket&& other) noexcept {
      Release();
      controller_ = other.controller_;
      bytes_ = other.bytes_;
      other.controller_ = nullptr;
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket() { Release(); }

    void Release() {
      if (controller_ != nullptr) {
        controller_->Finish(bytes_);
        controller_ = nullptr;
      }
    }

   private:
    friend class AdmissionController;
    Ticket(AdmissionController* controller, size_t bytes)
        : controller_(controller), bytes_(bytes) {}
    AdmissionController* controller_ = nullptr;
    size_t bytes_ = 0;
  };

  /// Admits one batch carrying `bytes` of query payload, or sheds it with
  /// ResourceExhausted. On success `*ticket` holds the admission and must
  /// stay alive for the duration of the batch.
  Status Admit(size_t bytes, Ticket* ticket);

  uint64_t admitted() const {
    return admitted_.load(std::memory_order_relaxed);
  }
  uint64_t shed() const { return shed_.load(std::memory_order_relaxed); }
  size_t inflight() const {
    return inflight_.load(std::memory_order_relaxed);
  }
  size_t queued_bytes() const {
    return queued_bytes_.load(std::memory_order_relaxed);
  }
  const AdmissionOptions& options() const { return options_; }

 private:
  friend class Ticket;
  void Finish(size_t bytes);

  const AdmissionOptions options_;
  std::atomic<size_t> inflight_{0};
  std::atomic<size_t> queued_bytes_{0};
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> shed_{0};
};

}  // namespace coconut

#endif  // COCONUT_EXEC_ADMISSION_CONTROLLER_H_
