#include "src/exec/query_engine.h"

#include <algorithm>
#include <mutex>

namespace coconut {

namespace {

/// Runs `one(i, scratch)` for every query index on the pool, collecting the
/// first failure. Chunks share a per-chunk scratch; the chunk size keeps a
/// few chunks per thread for load balancing without allocating scratch per
/// query.
template <typename Fn>
Status RunBatch(ThreadPool* pool, size_t num_queries, const Fn& one) {
  Status first_error = Status::OK();
  std::mutex error_mu;
  pool->ParallelFor(
      0, num_queries, /*grain=*/0,
      [&](uint64_t lo, uint64_t hi) {
        CoconutTree::QueryScratch scratch;
        for (uint64_t i = lo; i < hi; ++i) {
          Status st = one(i, &scratch);
          if (!st.ok()) {
            std::lock_guard<std::mutex> lock(error_mu);
            if (first_error.ok()) first_error = st;
            return;
          }
        }
      });
  return first_error;
}

}  // namespace

Status QueryEngine::ExecuteBatch(const CoconutTree& tree,
                                 const std::vector<Series>& queries,
                                 const QuerySpec& spec,
                                 std::vector<SearchResult>* results) const {
  results->assign(queries.size(), SearchResult{});
  return RunBatch(
      pool_, queries.size(),
      [&](uint64_t i, CoconutTree::QueryScratch* scratch) {
        const Value* q = queries[i].data();
        SearchResult* r = &(*results)[i];
        return spec.mode == QuerySpec::Mode::kExact
                   ? tree.ExactSearch(q, spec.approx_leaves, r, spec.k,
                                      scratch)
                   : tree.ApproxSearch(q, spec.approx_leaves, r, spec.k,
                                       scratch);
      });
}

Status QueryEngine::ExecuteBatch(const CoconutForest& forest,
                                 const std::vector<Series>& queries,
                                 const QuerySpec& spec,
                                 std::vector<SearchResult>* results) const {
  return ExecuteBatch(forest, forest.GetSnapshot(), queries, spec, results);
}

Status QueryEngine::ExecuteBatch(const CoconutForest& forest,
                                 const CoconutForest::Snapshot& snapshot,
                                 const std::vector<Series>& queries,
                                 const QuerySpec& spec,
                                 std::vector<SearchResult>* results) const {
  results->assign(queries.size(), SearchResult{});
  return RunBatch(
      pool_, queries.size(),
      [&](uint64_t i, CoconutTree::QueryScratch* scratch) {
        const Value* q = queries[i].data();
        SearchResult* r = &(*results)[i];
        return spec.mode == QuerySpec::Mode::kExact
                   ? forest.ExactSearch(snapshot, q, r, spec.k, scratch)
                   : forest.ApproxSearch(snapshot, q, spec.approx_leaves, r,
                                         spec.k, scratch);
      });
}

}  // namespace coconut
