// Index comparison walkthrough: builds every index in the repository over
// the same small dataset and prints a side-by-side summary of construction
// time, structure, and one exact query — a miniature of the paper's
// evaluation for readers exploring the trade-offs.
#include <cstdio>

#include "src/baselines/ads/ads_index.h"
#include "src/baselines/dstree/dstree_index.h"
#include "src/baselines/rtree/rtree.h"
#include "src/baselines/vertical/vertical_index.h"
#include "src/common/env.h"
#include "src/common/timer.h"
#include "src/core/coconut_tree.h"
#include "src/core/coconut_trie.h"
#include "src/series/dataset.h"
#include "src/series/generator.h"

using namespace coconut;

int main() {
  std::string dir;
  if (!MakeTempDir("coconut-compare-", &dir).ok()) return 1;
  const std::string raw_path = JoinPath(dir, "data.bin");
  const size_t kCount = 10000, kLength = 256;
  {
    RandomWalkGenerator gen(kLength, 3);
    if (!WriteDataset(raw_path, &gen, kCount).ok()) return 1;
  }
  RandomWalkGenerator qgen(kLength, 77);
  const Series query = qgen.NextSeries();

  SummaryOptions summary;
  summary.series_length = kLength;

  std::printf("%-14s %10s %10s %12s %14s\n", "index", "build_s", "leaves",
              "exact_dist", "visited");
  auto row = [](const char* name, double secs, uint64_t leaves,
                const SearchResult& r) {
    std::printf("%-14s %10.3f %10llu %12.4f %14llu\n", name, secs,
                (unsigned long long)leaves, r.distance,
                (unsigned long long)r.visited_records);
  };

  {  // Coconut-Tree (the paper's contribution).
    CoconutOptions opts;
    opts.summary = summary;
    opts.leaf_capacity = 100;
    Stopwatch w;
    if (!CoconutTree::Build(raw_path, JoinPath(dir, "i.ctree"), opts).ok()) {
      return 1;
    }
    const double secs = w.ElapsedSeconds();
    std::unique_ptr<CoconutTree> t;
    if (!CoconutTree::Open(JoinPath(dir, "i.ctree"), raw_path, &t).ok()) {
      return 1;
    }
    SearchResult r;
    if (!t->ExactSearch(query.data(), 1, &r).ok()) return 1;
    row("Coconut-Tree", secs, t->num_leaves(), r);
  }
  {  // Coconut-Trie.
    CoconutOptions opts;
    opts.summary = summary;
    opts.leaf_capacity = 100;
    Stopwatch w;
    if (!CoconutTrie::Build(raw_path, JoinPath(dir, "i.ctrie"), opts).ok()) {
      return 1;
    }
    const double secs = w.ElapsedSeconds();
    std::unique_ptr<CoconutTrie> t;
    if (!CoconutTrie::Open(JoinPath(dir, "i.ctrie"), raw_path, &t).ok()) {
      return 1;
    }
    SearchResult r;
    if (!t->ExactSearch(query.data(), 1, &r).ok()) return 1;
    row("Coconut-Trie", secs, t->num_pages(), r);
  }
  {  // ADS+.
    AdsOptions opts;
    opts.summary = summary;
    opts.leaf_capacity = 100;
    Stopwatch w;
    std::unique_ptr<AdsIndex> index;
    if (!AdsIndex::Build(raw_path, JoinPath(dir, "ads.pages"), opts, &index)
             .ok()) {
      return 1;
    }
    const double secs = w.ElapsedSeconds();
    SearchResult r;
    if (!index->ExactSearch(query.data(), &r).ok()) return 1;
    row("ADS+", secs, index->num_leaves(), r);
  }
  {  // R-tree+ (STR over PAA).
    RtreeOptions opts;
    opts.summary = summary;
    opts.leaf_capacity = 100;
    opts.tmp_dir = dir;
    Stopwatch w;
    std::unique_ptr<RTree> tree;
    if (!RTree::Build(raw_path, JoinPath(dir, "r.pages"), opts, &tree).ok()) {
      return 1;
    }
    const double secs = w.ElapsedSeconds();
    SearchResult r;
    if (!tree->ExactSearch(query.data(), &r).ok()) return 1;
    row("R-tree+", secs, tree->num_leaves(), r);
  }
  {  // Vertical (DHWT).
    VerticalOptions opts;
    opts.series_length = kLength;
    Stopwatch w;
    std::unique_ptr<VerticalIndex> index;
    if (!VerticalIndex::Build(raw_path, JoinPath(dir, "vertical"), opts,
                              &index)
             .ok()) {
      return 1;
    }
    const double secs = w.ElapsedSeconds();
    SearchResult r;
    if (!index->ExactSearch(query.data(), &r).ok()) return 1;
    row("Vertical", secs, 0, r);
  }
  {  // DSTree.
    DstreeOptions opts;
    opts.series_length = kLength;
    opts.leaf_capacity = 100;
    Stopwatch w;
    std::unique_ptr<DstreeIndex> index;
    if (!DstreeIndex::Create(opts, JoinPath(dir, "d.pages"), &index).ok()) {
      return 1;
    }
    DatasetScanner scanner;
    if (!scanner.Open(raw_path, kLength).ok()) return 1;
    Series s(kLength);
    Status st;
    uint64_t pos = 0;
    while (scanner.Next(s.data(), &st)) {
      if (!index->Insert(s.data(), pos).ok()) return 1;
      pos += kLength * sizeof(Value);
    }
    const double secs = w.ElapsedSeconds();
    SearchResult r;
    if (!index->ExactSearch(query.data(), &r).ok()) return 1;
    row("DSTree", secs, index->num_leaves(), r);
  }

  std::printf(
      "\nAll exact distances agree — every index returns the true nearest\n"
      "neighbor; they differ in construction cost, I/O pattern, and space.\n");
  (void)RemoveAll(dir);
  return 0;
}
