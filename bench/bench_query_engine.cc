// QueryEngine throughput: batched exact k-NN search over a multi-run
// CoconutForest, executed on thread pools of increasing size. The expected
// shape is throughput scaling with thread count up to the hardware's
// parallelism (on a single-core container the parallel rows mainly
// demonstrate that concurrency adds no correctness or large scheduling
// cost).
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/coconut_forest.h"
#include "src/exec/query_engine.h"
#include "src/exec/thread_pool.h"

namespace coconut {
namespace bench {
namespace {

constexpr size_t kLength = 256;
constexpr size_t kBatch = 64;

void Run() {
  Banner("bench_query_engine",
         "batched exact search throughput vs thread count");
  const size_t count = 20000 * Scale();

  BenchDir dir;
  ForestOptions opts;
  opts.tree.summary.series_length = kLength;
  opts.tree.leaf_capacity = 512;
  opts.tree.tmp_dir = dir.path();
  opts.tree.num_threads = 1;  // per-query SIMS stays serial: we measure
                              // cross-query parallelism only
  opts.memtable_series = 2048;
  opts.max_runs = 16;  // keep several runs: the realistic serving shape

  const std::string raw = PrepareDataset(dir, DatasetKind::kRandomWalk,
                                         count, kLength, 23, "data.bin");
  std::unique_ptr<CoconutForest> forest;
  CheckOk(CoconutForest::Open(raw, dir.File("forest"), opts, &forest),
          "forest open");
  // Add a few more waves so queries span multiple runs plus a memtable.
  auto extra = MakeQueries(DatasetKind::kRandomWalk, 3 * 2048 + 512, kLength,
                           24);
  CheckOk(forest->InsertBatch(extra), "insert");
  std::printf("forest: %llu entries in %zu runs + %llu buffered\n\n",
              static_cast<unsigned long long>(forest->num_entries()),
              forest->num_runs(),
              static_cast<unsigned long long>(forest->memtable_size()));

  auto queries = MakeQueries(DatasetKind::kRandomWalk, kBatch, kLength, 2300);
  QuerySpec spec;
  spec.mode = QuerySpec::Mode::kExact;
  spec.k = 1;

  // Warm the SIMS arrays so every row measures steady-state search.
  {
    ThreadPool warm(1);
    QueryEngine engine(&warm);
    std::vector<SearchResult> results;
    CheckOk(engine.ExecuteBatch(*forest, queries, spec, &results), "warmup");
  }

  PrintHeader({"threads", "batch_time", "queries/s", "speedup"});
  double serial_seconds = 0.0;
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    QueryEngine engine(&pool);
    std::vector<SearchResult> results;
    Stopwatch w;
    CheckOk(engine.ExecuteBatch(*forest, queries, spec, &results), "batch");
    const double secs = w.ElapsedSeconds();
    if (threads == 1) serial_seconds = secs;
    PrintRow({FmtCount(threads), FmtSeconds(secs),
              FmtDouble(kBatch / secs, 1),
              FmtDouble(serial_seconds / secs, 2) + "x"});
  }
  std::printf(
      "\nExpectation: queries/s grows with the thread count until the\n"
      "hardware's core count; results are identical across rows (same\n"
      "snapshot, same per-query algorithm).\n");
}

}  // namespace
}  // namespace bench
}  // namespace coconut

int main() {
  coconut::bench::Run();
  return 0;
}
