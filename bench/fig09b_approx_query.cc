// Figure 9b: approximate query answering time vs dataset size. Paper
// result: the Coconut family is always faster, and the materialized
// variants beat the non-materialized ones (records served straight from the
// leaf instead of the raw file).
#include "bench/bench_util.h"
#include "bench/query_fixture.h"

namespace coconut {
namespace bench {
namespace {

constexpr size_t kLength = 256;
// Leaf capacity scaled with the laptop-scale N so that leaf/N matches the
// paper's ratio (2000 leaves of 2000 entries over tens of millions).
constexpr size_t kLeafCapacity = 100;

void Run() {
  Banner("Figure 9b", "approximate query answering vs dataset size");
  const size_t queries = 100;
  PrintHeader({"N", "method", "avg_query_ms"});
  for (size_t count : {10000 * Scale(), 20000 * Scale(), 40000 * Scale()}) {
    BenchDir dir;
    const std::string raw = PrepareDataset(dir, DatasetKind::kRandomWalk,
                                           count, kLength, 18, "data.bin");
    QueryFixture f =
        BuildQueryFixture(dir, raw, kLength, kLeafCapacity, 64ull << 20);
    auto qs = MakeQueries(DatasetKind::kRandomWalk, queries, kLength, 1800);

    auto run = [&](const char* name, auto&& approx) {
      Stopwatch w;
      for (const Series& q : qs) {
        SearchResult r;
        CheckOk(approx(q, &r), name);
      }
      PrintRow({FmtCount(count), name,
                FmtDouble(w.ElapsedMillis() / queries, 3)});
    };
    run("CTree", [&](const Series& q, SearchResult* r) {
      return f.ctree->ApproxSearch(q.data(), 1, r);
    });
    run("CTreeFull", [&](const Series& q, SearchResult* r) {
      return f.ctree_full->ApproxSearch(q.data(), 1, r);
    });
    run("ADS+", [&](const Series& q, SearchResult* r) {
      return f.ads_plus->ApproxSearch(q.data(), r);
    });
    run("ADSFull", [&](const Series& q, SearchResult* r) {
      return f.ads_full->ApproxSearch(q.data(), r);
    });
  }
  std::printf(
      "\nExpectation (paper Fig 9b): Coconut variants faster than ADS;\n"
      "materialized variants faster than non-materialized ones.\n");
}

}  // namespace
}  // namespace bench
}  // namespace coconut

int main() {
  coconut::bench::Run();
  return 0;
}
