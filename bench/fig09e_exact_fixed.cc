// Figure 9e: exact query answering at a fixed dataset size, including the
// effect of a wider approximate seed (CTree(10)). Paper result: the Coconut
// family is fastest; CTree(10) prunes more records than CTree(1) but the
// extra approximate-phase leaf reads cancel the benefit in wall time.
#include "bench/bench_util.h"
#include "bench/query_fixture.h"

namespace coconut {
namespace bench {
namespace {

constexpr size_t kLength = 256;
// Leaf capacity scaled with the laptop-scale N so that leaf/N matches the
// paper's ratio (2000 leaves of 2000 entries over tens of millions).
constexpr size_t kLeafCapacity = 100;

void Run() {
  Banner("Figure 9e", "exact query answering, fixed dataset size");
  const size_t count = 40000 * Scale();
  const size_t queries = 20;
  BenchDir dir;
  const std::string raw = PrepareDataset(dir, DatasetKind::kRandomWalk, count,
                                         kLength, 21, "data.bin");
  QueryFixture f = BuildQueryFixture(dir, raw, kLength, kLeafCapacity, 64ull << 20);
  auto qs = MakeQueries(DatasetKind::kRandomWalk, queries, kLength, 2100);

  PrintHeader({"method", "avg_query", "avg_visited"});
  auto run = [&](const char* name, auto&& exact) {
    double total = 0.0;
    uint64_t visited = 0;
    for (const Series& q : qs) {
      SearchResult r;
      Stopwatch w;
      CheckOk(exact(q, &r), name);
      total += w.ElapsedSeconds();
      visited += r.visited_records;
    }
    PrintRow({name, FmtSeconds(total / queries),
              FmtCount(visited / queries)});
  };
  run("CTree(1)", [&](const Series& q, SearchResult* r) {
    return f.ctree->ExactSearch(q.data(), 1, r);
  });
  run("CTree(10)", [&](const Series& q, SearchResult* r) {
    return f.ctree->ExactSearch(q.data(), 10, r);
  });
  run("CTreeFull(1)", [&](const Series& q, SearchResult* r) {
    return f.ctree_full->ExactSearch(q.data(), 1, r);
  });
  run("ADS+", [&](const Series& q, SearchResult* r) {
    return f.ads_plus->ExactSearch(q.data(), r);
  });
  run("ADSFull", [&](const Series& q, SearchResult* r) {
    return f.ads_full->ExactSearch(q.data(), r);
  });
  std::printf(
      "\nExpectation (paper Fig 9e): Coconut faster; CTree(10) visits fewer\n"
      "records than CTree(1) but gains no net time (extra approximate-phase\n"
      "leaf visits).\n");
}

}  // namespace
}  // namespace bench
}  // namespace coconut

int main() {
  coconut::bench::Run();
  return 0;
}
