// Retained per-query evidence: the last N QueryTraces plus every query that
// crossed a latency threshold, queryable long after the queries finished
// (the admin server's /queryz endpoint).
//
// Aggregate histograms (query.exact.latency_ns) tell you *that* p99 moved;
// this log keeps the actual offending queries — their full stage breakdown
// and work counters — so "what made it slow" is answerable without
// reproducing the workload.
//
// Recording cost: one uncontended striped mutex and a ~100-byte struct copy
// per query, paid once per query by the batch executor (never inside the
// search loops). Stripes are selected by the same per-thread index the
// Counter stripes use, so concurrent recording threads land on different
// mutexes; reading (ToJson / SnapshotEntries) locks all stripes briefly.
#ifndef COCONUT_OBS_SLOW_QUERY_LOG_H_
#define COCONUT_OBS_SLOW_QUERY_LOG_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/sync.h"
#include "src/obs/query_trace.h"

namespace coconut {

/// One retained query: the trace plus enough context to order and date it.
struct SlowQueryEntry {
  QueryTrace trace;
  bool exact = false;
  /// Process-wide arrival order (monotone across stripes).
  uint64_t seq = 0;
  /// Completion time on the tracer clock (ns since process trace epoch).
  uint64_t ts_ns = 0;
};

class SlowQueryLog {
 public:
  static constexpr size_t kStripes = 8;
  static constexpr size_t kDefaultRecentPerStripe = 16;   // 128 total
  static constexpr size_t kDefaultSlowPerStripe = 32;     // 256 total

  /// Queries with total_ns >= threshold_ns enter the slow ring (as well as
  /// the recent ring, which takes everything).
  explicit SlowQueryLog(uint64_t threshold_ns,
                        size_t recent_per_stripe = kDefaultRecentPerStripe,
                        size_t slow_per_stripe = kDefaultSlowPerStripe);

  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  /// The process-wide log QueryEngine records into. Threshold comes from
  /// COCONUT_SLOW_QUERY_MS (default 100 ms), latched on first use.
  static SlowQueryLog& Default();

  void Record(const QueryTrace& trace, bool exact);

  uint64_t threshold_ns() const {
    return threshold_ns_.load(std::memory_order_relaxed);
  }
  /// Retunable at runtime (operators chase different tails on different
  /// days); affects future Record calls only.
  void set_threshold_ns(uint64_t v) {
    threshold_ns_.store(v, std::memory_order_relaxed);
  }

  /// All retained entries, newest first. `slow_only` restricts to the
  /// over-threshold ring.
  std::vector<SlowQueryEntry> SnapshotEntries(bool slow_only) const;

  /// /queryz payload: {"threshold_ns":..,"total_recorded":..,
  /// "slow":[entry...],"recent":[entry...]} with per-entry stage
  /// breakdowns. Entries are newest-first.
  std::string ToJson() const;

 private:
  /// Fixed-capacity overwrite-oldest ring of entries.
  struct Ring {
    std::vector<SlowQueryEntry> slots;
    uint64_t head = 0;  // total pushes; next slot is head % capacity
    void Push(const SlowQueryEntry& e) {
      slots[head % slots.size()] = e;
      ++head;
    }
  };
  struct alignas(64) Stripe {
    mutable Mutex mu;
    Ring recent GUARDED_BY(mu);
    Ring slow GUARDED_BY(mu);
  };

  std::atomic<uint64_t> threshold_ns_;
  std::atomic<uint64_t> next_seq_{1};
  std::atomic<uint64_t> total_recorded_{0};
  Stripe stripes_[kStripes];
};

}  // namespace coconut

#endif  // COCONUT_OBS_SLOW_QUERY_LOG_H_
