// Status, env helpers, options validation, and bit utilities.
#include "gtest/gtest.h"
#include "src/common/bits.h"
#include "src/common/env.h"
#include "src/common/status.h"
#include "src/core/coconut_options.h"
#include "src/summary/options.h"
#include "tests/test_util.h"

namespace coconut {
namespace {

using testing::ScratchDir;

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, CodesAndMessages) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_EQ(Status::IOError("disk on fire").ToString(),
            "IOError: disk on fire");
}

TEST(Status, ReturnIfErrorMacro) {
  auto inner = []() { return Status::NotFound("missing"); };
  auto outer = [&]() -> Status {
    COCONUT_RETURN_IF_ERROR(inner());
    return Status::Internal("unreachable");
  };
  EXPECT_TRUE(outer().IsNotFound());
}

TEST(Bits, Helpers) {
  EXPECT_EQ(GetBit(0b1010, 1), 1u);
  EXPECT_EQ(GetBit(0b1010, 2), 0u);
  uint64_t v = 0;
  AssignBit(&v, 5, 1);
  EXPECT_EQ(v, 32u);
  AssignBit(&v, 5, 0);
  EXPECT_EQ(v, 0u);
  EXPECT_EQ(CeilDiv(10, 3), 4u);
  EXPECT_EQ(CeilDiv(9, 3), 3u);
  EXPECT_EQ(RoundUp(10, 8), 16u);
}

TEST(Env, TempDirAndRemoveAll) {
  std::string dir;
  ASSERT_OK(MakeTempDir("coconut-envtest-", &dir));
  EXPECT_FALSE(dir.empty());
  const std::string file = JoinPath(dir, "x.txt");
  {
    BufferedWriter w;
    ASSERT_OK(w.Open(file));
    ASSERT_OK(w.Write("hi", 2));
    ASSERT_OK(w.Finish());
  }
  EXPECT_TRUE(FileExists(file));
  uint64_t size = 0;
  ASSERT_OK(FileSize(file, &size));
  EXPECT_EQ(size, 2u);
  ASSERT_OK(RemoveAll(dir));
  EXPECT_FALSE(FileExists(file));
  // Removing a missing path is not an error.
  ASSERT_OK(RemoveAll(dir));
}

TEST(Env, RenameFile) {
  ScratchDir dir;
  const std::string a = dir.File("a"), b = dir.File("b");
  {
    BufferedWriter w;
    ASSERT_OK(w.Open(a));
    ASSERT_OK(w.Write("z", 1));
    ASSERT_OK(w.Finish());
  }
  ASSERT_OK(RenameFile(a, b));
  EXPECT_FALSE(FileExists(a));
  EXPECT_TRUE(FileExists(b));
}

TEST(Env, JoinPath) {
  EXPECT_EQ(JoinPath("a", "b"), "a/b");
  EXPECT_EQ(JoinPath("a/", "b"), "a/b");
  EXPECT_EQ(JoinPath("", "b"), "b");
}

TEST(SummaryOptions, ValidatesConfigurations) {
  SummaryOptions s;
  EXPECT_OK(s.Validate());  // defaults: 256 / 16 / 8
  s.segments = 7;
  EXPECT_TRUE(s.Validate().IsInvalidArgument());  // 256 % 7 != 0
  s.segments = 16;
  s.cardinality_bits = 0;
  EXPECT_TRUE(s.Validate().IsInvalidArgument());
  s.cardinality_bits = 9;
  EXPECT_TRUE(s.Validate().IsInvalidArgument());
  s.cardinality_bits = 8;
  s.segments = 64;  // 64 * 8 = 512 bits > 256-bit key
  s.series_length = 512;
  EXPECT_TRUE(s.Validate().IsInvalidArgument());
}

TEST(CoconutOptions, ValidatesAndDerives) {
  CoconutOptions o;
  EXPECT_OK(o.Validate());
  EXPECT_EQ(o.EntriesPerLeaf(), 2000u);
  o.fill_factor = 0.5;
  EXPECT_EQ(o.EntriesPerLeaf(), 1000u);
  o.fill_factor = 1.5;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
  o.fill_factor = 1.0;
  o.leaf_capacity = 0;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
  o.leaf_capacity = 100;
  o.memory_budget_bytes = 1;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
  EXPECT_GT(o.EffectiveThreads(), 0u);
}

}  // namespace
}  // namespace coconut
