#include "src/common/status.h"

namespace coconut {

std::string Status::ToString() const {
  if (ok()) return "OK";
  const char* name = "Unknown";
  switch (code_) {
    case Code::kOk:
      name = "OK";
      break;
    case Code::kNotFound:
      name = "NotFound";
      break;
    case Code::kCorruption:
      name = "Corruption";
      break;
    case Code::kNotSupported:
      name = "NotSupported";
      break;
    case Code::kInvalidArgument:
      name = "InvalidArgument";
      break;
    case Code::kIOError:
      name = "IOError";
      break;
    case Code::kInternal:
      name = "Internal";
      break;
    case Code::kDeadlineExceeded:
      name = "DeadlineExceeded";
      break;
    case Code::kResourceExhausted:
      name = "ResourceExhausted";
      break;
    case Code::kAborted:
      name = "Aborted";
      break;
  }
  std::string out(name);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace coconut
