// Shared fixture for the Figure 9/10 query benches: builds the four indexes
// the paper focuses on after Fig 8 ("we proceed in the evaluation only with
// the Coconut-Tree and the ADS families") over one dataset.
#ifndef COCONUT_BENCH_QUERY_FIXTURE_H_
#define COCONUT_BENCH_QUERY_FIXTURE_H_

#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "src/baselines/ads/ads_index.h"
#include "src/core/coconut_tree.h"

namespace coconut {
namespace bench {

struct QueryFixture {
  std::unique_ptr<CoconutTree> ctree;
  std::unique_ptr<CoconutTree> ctree_full;
  std::unique_ptr<AdsIndex> ads_plus;
  std::unique_ptr<AdsIndex> ads_full;
};

inline SummaryOptions DefaultSummary(size_t length) {
  SummaryOptions s;
  s.series_length = length;
  s.segments = 16;
  s.cardinality_bits = 8;
  return s;
}

/// Builds all four indexes over `raw`. `budget` applies to every build.
inline QueryFixture BuildQueryFixture(const BenchDir& dir,
                                      const std::string& raw, size_t length,
                                      size_t leaf_capacity, size_t budget) {
  QueryFixture f;
  {
    CoconutOptions opts;
    opts.summary = DefaultSummary(length);
    opts.leaf_capacity = leaf_capacity;
    opts.memory_budget_bytes = budget;
    opts.tmp_dir = dir.path();
    CheckOk(CoconutTree::Build(raw, dir.File("q-ctree.idx"), opts),
            "CTree build");
    CheckOk(CoconutTree::Open(dir.File("q-ctree.idx"), raw, &f.ctree),
            "CTree open");
    opts.materialized = true;
    CheckOk(CoconutTree::Build(raw, dir.File("q-ctreefull.idx"), opts),
            "CTreeFull build");
    CheckOk(
        CoconutTree::Open(dir.File("q-ctreefull.idx"), raw, &f.ctree_full),
        "CTreeFull open");
  }
  {
    AdsOptions opts;
    opts.summary = DefaultSummary(length);
    opts.leaf_capacity = leaf_capacity;
    opts.memory_budget_bytes = budget;
    CheckOk(AdsIndex::Build(raw, dir.File("q-adsplus.pages"), opts,
                            &f.ads_plus),
            "ADS+ build");
    opts.materialized = true;
    CheckOk(AdsIndex::Build(raw, dir.File("q-adsfull.pages"), opts,
                            &f.ads_full),
            "ADSFull build");
  }
  return f;
}

}  // namespace bench
}  // namespace coconut

#endif  // COCONUT_BENCH_QUERY_FIXTURE_H_
