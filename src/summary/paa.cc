#include "src/summary/paa.h"

namespace coconut {

void PaaTransform(const Value* series, size_t n, size_t segments,
                  double* out) {
  const size_t seg_len = n / segments;
  const double inv = 1.0 / static_cast<double>(seg_len);
  for (size_t s = 0; s < segments; ++s) {
    double sum = 0.0;
    const Value* p = series + s * seg_len;
    for (size_t i = 0; i < seg_len; ++i) sum += p[i];
    out[s] = sum * inv;
  }
}

}  // namespace coconut
