// Crash-safe text manifest for the sharded forest store.
//
// The manifest is the store's root metadata record (the couchstore /
// LSM-engine "manifest per partition" pattern): it pins the shard count and
// the invSAX key-space boundaries so a store reopened after a restart — or
// a crash — partitions the key space exactly as it did when the data was
// written. Per-shard run state (which runs exist, what the memtable held)
// is intentionally *not* authoritative here: every shard's raw dataset file
// is its write-ahead source of truth, and CoconutForest::Open rebuilds the
// run set from it. The manifest's per-shard entry counts are advisory
// (useful for inspection and consistency checks), never trusted over the
// raw files.
//
// Commit protocol: the manifest is written to MANIFEST.tmp, synced, then
// atomically renamed over MANIFEST. A crash at any point leaves either the
// old committed manifest or the new one — never a torn file.
//
// Format (line-oriented text, '#' comments ignored):
//
//   coconut-store-manifest v1
//   series_length <n>
//   last_committed_epoch <e>
//   shards <N>
//   shard <i> <lower-bound: 64 hex chars> <dir> <entries>
//   ...
//   checksum <8 hex chars>
//
// The trailer is the CRC32C of every byte above it; the writer always emits
// it and the reader verifies it when present (manifests written before the
// trailer existed still parse) and requires it to be the final line. A bit
// flip anywhere in the file therefore fails the reopen instead of silently
// repartitioning the key space.
//
// Parsing is strict: every directive must be well-formed with no trailing
// tokens, `series_length` and `shards` must appear exactly once (and
// `last_committed_epoch` at most once — absent means 0, for manifests
// written before the epoch journal existed), and shard lines must be dense
// and in order. Any violation is reported as Corruption naming the
// offending line.
//
// Shard i owns keys in [lower_bound[i], lower_bound[i+1]) — the last shard
// is unbounded above. lower_bound[0] must be the zero key so every key is
// owned by exactly one shard.
#ifndef COCONUT_STORE_MANIFEST_H_
#define COCONUT_STORE_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/zkey.h"

namespace coconut {

/// One shard's manifest record.
struct ShardInfo {
  /// Inclusive lower bound of the shard's key range (zero key for shard 0).
  ZKey lower_bound;
  /// Shard directory name, relative to the store root.
  std::string dir;
  /// Advisory entry count at the last manifest commit. Recovery trusts the
  /// shard's raw dataset file, not this number.
  uint64_t entries = 0;
};

struct StoreManifest {
  uint64_t version = 1;
  uint64_t series_length = 0;
  /// Highest cross-shard commit epoch known durable at the last manifest
  /// commit. A lower bound only: the JOURNAL may record later committed
  /// epochs; recovery takes the max of both. New epochs always number above
  /// this even when the journal has been reset.
  uint64_t last_committed_epoch = 0;
  std::vector<ShardInfo> shards;

  /// Structural checks: version, non-empty strictly-increasing boundaries
  /// starting at the zero key, non-empty shard dirs.
  Status Validate() const;
};

inline constexpr char kStoreManifestName[] = "MANIFEST";

/// True if `store_dir` holds a committed manifest.
bool StoreManifestExists(const std::string& store_dir);

/// Commits `manifest` into `store_dir` atomically (temp file + rename).
Status WriteStoreManifest(const std::string& store_dir,
                          const StoreManifest& manifest);

/// Loads and validates the committed manifest of `store_dir`.
Status ReadStoreManifest(const std::string& store_dir, StoreManifest* out);

}  // namespace coconut

#endif  // COCONUT_STORE_MANIFEST_H_
