#include "src/series/dataset.h"

#include <cstring>

namespace coconut {

Status WriteDataset(const std::string& path, SeriesGenerator* gen,
                    size_t count) {
  BufferedWriter writer;
  COCONUT_RETURN_IF_ERROR(writer.Open(path));
  Series buf(gen->length());
  for (size_t i = 0; i < count; ++i) {
    gen->Next(buf.data());
    COCONUT_RETURN_IF_ERROR(
        writer.Write(buf.data(), buf.size() * sizeof(Value)));
  }
  return writer.Finish();
}

Status AppendToDataset(const std::string& path,
                       const std::vector<Series>& batch) {
  std::unique_ptr<WritableFile> file;
  COCONUT_RETURN_IF_ERROR(WritableFile::OpenForAppend(path, &file));
  for (const Series& s : batch) {
    COCONUT_RETURN_IF_ERROR(file->Append(s.data(), s.size() * sizeof(Value)));
  }
  return file->Close();
}

Status RawSeriesFile::Open(const std::string& path, size_t length,
                           std::unique_ptr<RawSeriesFile>* out) {
  if (length == 0) {
    return Status::InvalidArgument("series length must be positive");
  }
  std::unique_ptr<RandomAccessFile> file;
  COCONUT_RETURN_IF_ERROR(RandomAccessFile::Open(path, &file));
  const uint64_t bytes = file->size();
  const uint64_t series_bytes = length * sizeof(Value);
  if (bytes % series_bytes != 0) {
    return Status::Corruption("dataset file " + path +
                              " is not a multiple of the series size");
  }
  out->reset(new RawSeriesFile(std::move(file), length, bytes / series_bytes));
  return Status::OK();
}

Status RawSeriesFile::ReadAt(uint64_t offset, Value* out) {
  if (offset % sizeof(Value) != 0 || offset + series_bytes() > size_bytes()) {
    return Status::InvalidArgument("bad series offset");
  }
  return file_->Read(offset, series_bytes(), out);
}

Status RawSeriesFile::LoadAll(size_t budget_bytes, std::vector<Value>* out) {
  if (size_bytes() > budget_bytes) {
    return Status::InvalidArgument("raw file exceeds memory budget");
  }
  out->resize(size_bytes() / sizeof(Value));
  return file_->Read(0, size_bytes(), out->data());
}

Status DatasetScanner::Open(const std::string& path, size_t length) {
  if (length == 0) {
    return Status::InvalidArgument("series length must be positive");
  }
  length_ = length;
  COCONUT_RETURN_IF_ERROR(reader_.Open(path));
  const uint64_t series_bytes = length * sizeof(Value);
  if (reader_.file_size() % series_bytes != 0) {
    return Status::Corruption("dataset file " + path +
                              " is not a multiple of the series size");
  }
  count_ = reader_.file_size() / series_bytes;
  next_index_ = 0;
  return Status::OK();
}

bool DatasetScanner::Next(Value* out, Status* status) {
  if (next_index_ >= count_) {
    *status = Status::OK();
    return false;
  }
  *status = reader_.Read(out, length_ * sizeof(Value));
  if (!status->ok()) return false;
  ++next_index_;
  return true;
}

}  // namespace coconut
