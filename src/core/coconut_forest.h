// CoconutForest: the paper's future-work direction (§6 — "we would also
// like to explore how ideas from LSM trees [35] could be used to enable the
// efficient updates") built on top of Coconut-Tree.
//
// Incoming series accumulate in an in-memory buffer (the memtable). When the
// buffer fills, it is sorted by invSAX and bulk-loaded as an immutable
// Coconut-Tree run — a sequential write, exactly like an LSM level flush.
// When the number of runs exceeds the configured threshold, all runs are
// merged into one (tiered full compaction): a single sequential pass, since
// every run is already in invSAX order.
//
// Queries consult the buffer plus every run; exact search takes the minimum
// of the per-run exact answers (each run's SIMS scan is exact over its
// data, so the minimum is the global exact nearest neighbor).
//
// Compared to CoconutTree::MergeBatch (which rebuilds the whole index per
// batch), the forest amortizes ingestion: small fragmented batches no
// longer trigger full rebuilds — the weakness paper Fig 10a shows for
// per-batch merging.
#ifndef COCONUT_CORE_COCONUT_FOREST_H_
#define COCONUT_CORE_COCONUT_FOREST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/coconut_options.h"
#include "src/core/coconut_tree.h"
#include "src/series/series.h"

namespace coconut {

struct ForestOptions {
  CoconutOptions tree;
  /// Series buffered in memory before a run is flushed.
  size_t memtable_series = 4096;
  /// Maximum number of on-disk runs before a full (tiered) compaction.
  size_t max_runs = 4;

  Status Validate() const {
    COCONUT_RETURN_IF_ERROR(tree.Validate());
    if (memtable_series == 0 || max_runs == 0) {
      return Status::InvalidArgument("memtable_series and max_runs must be > 0");
    }
    return Status::OK();
  }
};

class CoconutForest {
 public:
  /// Creates a forest over the dataset at `raw_path` (which may be empty or
  /// already populated — existing series are bulk-loaded as the first run).
  /// Run files are stored under `dir`.
  static Status Open(const std::string& raw_path, const std::string& dir,
                     const ForestOptions& options,
                     std::unique_ptr<CoconutForest>* out);

  /// Appends one series to the raw file and the memtable; may flush a run
  /// and/or trigger compaction.
  Status Insert(const Series& series);

  /// Batch variant of Insert.
  Status InsertBatch(const std::vector<Series>& batch);

  /// Flushes the memtable to a run (no-op when empty).
  Status Flush();

  /// Merges all runs into one (always safe; also triggered automatically
  /// when run count exceeds options.max_runs).
  Status CompactAll();

  /// Exact nearest neighbor across the memtable and all runs.
  Status ExactSearch(const Value* query, SearchResult* result);

  /// Approximate search: best candidate across the memtable and the target
  /// leaf window of every run.
  Status ApproxSearch(const Value* query, size_t num_leaves,
                      SearchResult* result);

  size_t num_runs() const { return runs_.size(); }
  uint64_t num_entries() const;
  uint64_t memtable_size() const { return memtable_.size(); }

 private:
  CoconutForest() = default;

  Status FlushLocked();
  std::string RunPath(uint64_t id) const;

  ForestOptions options_;
  std::string raw_path_;
  std::string dir_;
  uint64_t next_run_id_ = 0;
  uint64_t raw_bytes_ = 0;  // current size of the raw file

  struct MemEntry {
    Series series;
    uint64_t offset;
  };
  std::vector<MemEntry> memtable_;
  std::vector<std::unique_ptr<CoconutTree>> runs_;
};

}  // namespace coconut

#endif  // COCONUT_CORE_COCONUT_FOREST_H_
