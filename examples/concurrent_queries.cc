// Minimal end-to-end tour of the concurrent query-execution engine:
//
//   1. open a CoconutForest and stream series into it,
//   2. keep a writer thread inserting (flushes + compactions included),
//   3. answer batches of exact k-NN queries on a thread pool at the same
//      time, each batch against one consistent snapshot.
//
// Build:  cmake -B build -S . && cmake --build build --target concurrent_queries
// Run:    ./build/concurrent_queries
#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/env.h"
#include "src/core/coconut_forest.h"
#include "src/exec/query_engine.h"
#include "src/exec/thread_pool.h"
#include "src/series/generator.h"

namespace {

constexpr size_t kSeriesLen = 128;

void Check(const coconut::Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  using namespace coconut;

  std::string dir;
  Check(MakeTempDir("coconut-example-", &dir), "tmp dir");

  ForestOptions opts;
  opts.tree.summary.series_length = kSeriesLen;
  opts.tree.leaf_capacity = 256;
  opts.tree.tmp_dir = dir;
  opts.memtable_series = 1024;
  opts.max_runs = 4;

  std::unique_ptr<CoconutForest> forest;
  Check(CoconutForest::Open(JoinPath(dir, "data.bin"),
                            JoinPath(dir, "forest"), opts, &forest),
        "open forest");

  // Writer: streams 20k series into the forest while queries run.
  std::atomic<bool> done{false};
  std::thread writer([&]() {
    RandomWalkGenerator gen(kSeriesLen, /*seed=*/1);
    for (int wave = 0; wave < 20; ++wave) {
      std::vector<Series> batch;
      for (int i = 0; i < 1000; ++i) batch.push_back(gen.NextSeries());
      Check(forest->InsertBatch(batch), "insert");
    }
    done.store(true);
  });

  // Reader: batches of 32 exact 3-NN queries on a 4-way pool. Every batch
  // sees one immutable snapshot; the writer never blocks it.
  ThreadPool pool(4);
  QueryEngine engine(&pool);
  QuerySpec spec;
  spec.mode = QuerySpec::Mode::kExact;
  spec.k = 3;

  RandomWalkGenerator qgen(kSeriesLen, /*seed=*/2);
  int batches = 0;
  while (!done.load()) {
    std::vector<Series> queries;
    for (int i = 0; i < 32; ++i) queries.push_back(qgen.NextSeries());
    const CoconutForest::Snapshot snap = forest->GetSnapshot();
    if (snap.num_entries() == 0) continue;
    std::vector<SearchResult> results;
    Check(engine.ExecuteBatch(*forest, snap, queries, spec, &results),
          "batch");
    ++batches;
    std::printf("batch %2d: %llu entries visible, q0 3-NN = [",
                batches,
                static_cast<unsigned long long>(snap.num_entries()));
    for (size_t j = 0; j < results[0].neighbors.size(); ++j) {
      std::printf("%s%.3f", j ? ", " : "", results[0].neighbors[j].distance);
    }
    std::printf("]\n");
  }
  writer.join();
  std::printf("done: %llu entries in %zu runs after %d query batches\n",
              static_cast<unsigned long long>(forest->num_entries()),
              forest->num_runs(), batches);
  Check(RemoveAll(dir), "cleanup");
  return 0;
}
