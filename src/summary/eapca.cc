#include "src/summary/eapca.h"

#include <cmath>

namespace coconut {

namespace {
inline double DistToRange(double q, double lo, double hi) {
  if (q < lo) return lo - q;
  if (q > hi) return q - hi;
  return 0.0;
}
}  // namespace

void EapcaTransform(const Value* series, const Segmentation& seg,
                    std::vector<SegmentStats>* out) {
  out->resize(seg.size());
  size_t begin = 0;
  for (size_t s = 0; s < seg.size(); ++s) {
    const size_t end = seg[s];
    const size_t len = end - begin;
    double sum = 0.0;
    for (size_t i = begin; i < end; ++i) sum += series[i];
    const double mean = sum / static_cast<double>(len);
    double sq = 0.0;
    for (size_t i = begin; i < end; ++i) {
      const double d = series[i] - mean;
      sq += d * d;
    }
    (*out)[s].mean = mean;
    (*out)[s].stddev = std::sqrt(sq / static_cast<double>(len));
    begin = end;
  }
}

double EapcaLowerBoundSq(const std::vector<SegmentStats>& query,
                         const std::vector<SegmentEnvelope>& node,
                         const Segmentation& seg) {
  double sum = 0.0;
  size_t begin = 0;
  for (size_t s = 0; s < seg.size(); ++s) {
    const size_t len = seg[s] - begin;
    const double dm =
        DistToRange(query[s].mean, node[s].mean_min, node[s].mean_max);
    const double ds =
        DistToRange(query[s].stddev, node[s].std_min, node[s].std_max);
    sum += static_cast<double>(len) * (dm * dm + ds * ds);
    begin = seg[s];
  }
  return sum;
}

}  // namespace coconut
