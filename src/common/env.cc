#include "src/common/env.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <random>

namespace coconut {

namespace fs = std::filesystem;

namespace {

// Tri-state durability latch: -1 = not yet resolved (consult COCONUT_SYNC on
// first read), 0/1 = resolved. SetSyncOnCommit may flip it at any time.
std::atomic<int> g_sync_on_commit{-1};

}  // namespace

bool SyncOnCommitEnabled() {
  int state = g_sync_on_commit.load(std::memory_order_relaxed);
  if (state < 0) {
    const char* env = std::getenv("COCONUT_SYNC");
    state = (env != nullptr &&
             (std::strcmp(env, "1") == 0 || std::strcmp(env, "true") == 0))
                ? 1
                : 0;
    g_sync_on_commit.store(state, std::memory_order_relaxed);
  }
  return state == 1;
}

void SetSyncOnCommit(bool enabled) {
  g_sync_on_commit.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

Status MakeTempDir(const std::string& prefix, std::string* out) {
  std::error_code ec;
  fs::path root = fs::temp_directory_path(ec);
  if (ec) return Status::IOError("temp_directory_path: " + ec.message());
  static std::mt19937_64 rng{std::random_device{}()};
  for (int attempt = 0; attempt < 64; ++attempt) {
    fs::path candidate = root / (prefix + std::to_string(rng()));
    if (fs::create_directories(candidate, ec) && !ec) {
      *out = candidate.string();
      return Status::OK();
    }
  }
  return Status::IOError("unable to create temp dir with prefix " + prefix);
}

Status RemoveAll(const std::string& path) {
  std::error_code ec;
  fs::remove_all(path, ec);
  if (ec) return Status::IOError("remove_all " + path + ": " + ec.message());
  return Status::OK();
}

Status MakeDirs(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) {
    return Status::IOError("create_directories " + path + ": " + ec.message());
  }
  return Status::OK();
}

Status FileSize(const std::string& path, uint64_t* size) {
  std::error_code ec;
  const auto s = fs::file_size(path, ec);
  if (ec) return Status::IOError("file_size " + path + ": " + ec.message());
  *size = static_cast<uint64_t>(s);
  return Status::OK();
}

bool FileExists(const std::string& path) {
  std::error_code ec;
  return fs::is_regular_file(path, ec);
}

Status RenameFile(const std::string& from, const std::string& to) {
  std::error_code ec;
  fs::rename(from, to, ec);
  if (ec) {
    return Status::IOError("rename " + from + " -> " + to + ": " +
                           ec.message());
  }
  if (SyncOnCommitEnabled()) {
    // A rename is only power-loss durable once the directory entry is: fsync
    // the destination's parent (the durability opt-in's second barrier, next
    // to WritableFile::Sync's fdatasync).
    fs::path parent = fs::path(to).parent_path();
    if (parent.empty()) parent = ".";
    const int dir_fd = ::open(parent.c_str(), O_RDONLY | O_DIRECTORY);
    if (dir_fd < 0) {
      return Status::IOError("open dir " + parent.string() + ": " +
                             std::strerror(errno));
    }
    const int rc = ::fsync(dir_fd);
    const int saved_errno = errno;
    ::close(dir_fd);
    if (rc != 0) {
      return Status::IOError("fsync dir " + parent.string() + ": " +
                             std::strerror(saved_errno));
    }
  }
  return Status::OK();
}

Status TruncateFile(const std::string& path, uint64_t size) {
  std::error_code ec;
  const auto current = fs::file_size(path, ec);
  if (ec) return Status::IOError("file_size " + path + ": " + ec.message());
  if (static_cast<uint64_t>(current) < size) {
    return Status::InvalidArgument("truncate would grow " + path);
  }
  fs::resize_file(path, size, ec);
  if (ec) return Status::IOError("resize_file " + path + ": " + ec.message());
  return Status::OK();
}

std::string JoinPath(const std::string& a, const std::string& b) {
  if (a.empty()) return b;
  if (a.back() == '/') return a + b;
  return a + "/" + b;
}

}  // namespace coconut
