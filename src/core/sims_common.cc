#include "src/core/sims_common.h"

#include <algorithm>

#include "src/exec/thread_pool.h"
#include "src/summary/mindist.h"

namespace coconut {

void ParallelMindists(const double* query_paa, const uint8_t* sax_array,
                      uint64_t n, const SummaryOptions& opts, unsigned threads,
                      std::vector<double>* out) {
  out->resize(n);
  if (threads == 0) threads = 1;
  const size_t w = opts.segments;
  double* dst = out->data();
  // One batched-kernel call per contiguous chunk of SAX records (record
  // stride == w bytes here) instead of a per-entry call: the SIMD backend
  // amortizes its table setup and the call overhead across the chunk.
  const auto body = [&](uint64_t begin, uint64_t end) {
    MindistSqPaaToSaxBatch(query_paa, sax_array + begin * w, w, end - begin,
                           opts, dst + begin);
  };
  if (threads == 1 || n < 2) {
    body(0, n);  // serial fallback: no pool round-trip for 1-thread configs
    return;
  }
  // Route through the shared pool instead of spawning std::threads per
  // query; `threads` bounds the chunking, the pool bounds the parallelism.
  const uint64_t grain = std::max<uint64_t>(1, (n + threads - 1) / threads);
  ThreadPool::Shared()->ParallelFor(0, n, grain, body);
}

}  // namespace coconut
