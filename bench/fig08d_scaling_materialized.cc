// Figure 8d: construction time of the MATERIALIZED Coconut-Tree-Full vs
// ADSFull with a FIXED memory budget and growing dataset. Paper result: with
// data small relative to memory the two are comparable; as data grows,
// ADSFull's random I/O makes it fall behind while CTreeFull spends its time
// in (sequential) external sorting.
#include "bench/bench_util.h"
#include "src/baselines/ads/ads_index.h"
#include "src/core/coconut_tree.h"

namespace coconut {
namespace bench {
namespace {

constexpr size_t kLength = 256;
constexpr size_t kLeafCapacity = 2000;
constexpr size_t kBudget = 8ull << 20;  // fixed "workstation" budget

SummaryOptions Summary() {
  SummaryOptions s;
  s.series_length = kLength;
  s.segments = 16;
  s.cardinality_bits = 8;
  return s;
}

void Run() {
  Banner("Figure 8d",
         "materialized construction vs dataset size, fixed 8MB budget");
  PrintHeader({"N", "method", "build_time", "sort_time", "rand_io"});
  for (size_t count : {10000 * Scale(), 20000 * Scale(), 40000 * Scale()}) {
    BenchDir dir;
    const std::string raw = PrepareDataset(dir, DatasetKind::kRandomWalk,
                                           count, kLength, 14, "data.bin");
    {
      CoconutOptions opts;
      opts.summary = Summary();
      opts.leaf_capacity = kLeafCapacity;
      opts.materialized = true;
      opts.memory_budget_bytes = kBudget;
      opts.tmp_dir = dir.path();
      TreeBuildStats stats;
      Measured m;
      CheckOk(CoconutTree::Build(raw, dir.File("ctreefull.idx"), opts,
                                 &stats),
              "CTreeFull build");
      const IoSnapshot io = m.io();
      PrintRow({FmtCount(count), "CTreeFull", FmtSeconds(m.seconds()),
                FmtSeconds(stats.sort_seconds),
                FmtCount(io.random_read_ops + io.random_write_ops)});
    }
    {
      AdsOptions opts;
      opts.summary = Summary();
      opts.leaf_capacity = kLeafCapacity;
      opts.materialized = true;
      opts.memory_budget_bytes = kBudget;
      std::unique_ptr<AdsIndex> index;
      AdsBuildStats stats;
      Measured m;
      CheckOk(AdsIndex::Build(raw, dir.File("adsfull.pages"), opts, &index,
                              &stats),
              "ADSFull build");
      const IoSnapshot io = m.io();
      PrintRow({FmtCount(count), "ADSFull", FmtSeconds(m.seconds()),
                FmtSeconds(0.0),
                FmtCount(io.random_read_ops + io.random_write_ops)});
    }
  }
  std::printf(
      "\nExpectation (paper Fig 8d): comparable when data fits in memory;\n"
      "ADSFull's random I/O grows linearly with N (see rand_io) while\n"
      "CTreeFull stays sequential — at disk scale that is the gap that\n"
      "makes ADSFull fall behind.\n");
}

}  // namespace
}  // namespace bench
}  // namespace coconut

int main() {
  coconut::bench::Run();
  return 0;
}
