// Opt-in periodic metrics logger: a background thread that snapshots the
// registry every `interval` and writes the metrics that changed since the
// previous tick to stderr (or a caller-supplied FILE*). Meant for
// long-running ingest/bench sessions; one-shot tools use the
// COCONUT_STATS=dump-at-exit toggle instead.
#ifndef COCONUT_OBS_STATS_REPORTER_H_
#define COCONUT_OBS_STATS_REPORTER_H_

#include <chrono>
#include <cstdio>
#include <thread>

#include "src/common/sync.h"
#include "src/obs/metrics.h"

namespace coconut {

class StatsReporter {
 public:
  /// Starts reporting `registry` every `interval` to `out` (default
  /// stderr). The first report happens one interval after construction.
  explicit StatsReporter(
      std::chrono::milliseconds interval,
      MetricRegistry* registry = &MetricRegistry::Default(),
      std::FILE* out = stderr);

  /// Stops the reporter thread (idempotent; also run by the destructor).
  void Stop();

  ~StatsReporter() { Stop(); }

  StatsReporter(const StatsReporter&) = delete;
  StatsReporter& operator=(const StatsReporter&) = delete;

 private:
  void Loop();
  void ReportOnce();

  std::chrono::milliseconds interval_;
  MetricRegistry* registry_;
  std::FILE* out_;

  Mutex mu_;
  CondVar cv_;
  bool stop_ GUARDED_BY(mu_) = false;
  // Owned by the reporter thread after construction: only Loop()/ReportOnce
  // touch it (with mu_ deliberately released around the snapshot work), so
  // it carries no GUARDED_BY.
  RegistrySnapshot last_;
  // coconut-lint: allow(raw-thread) -- the reporter mostly sleeps on cv_;
  // parking a ThreadPool worker for the process lifetime would steal a slot
  // from real work.
  std::thread thread_;
};

}  // namespace coconut

#endif  // COCONUT_OBS_STATS_REPORTER_H_
