// Request context: deadline + cooperative cancellation + priority, threaded
// through every long-running path (query search loops, store commits,
// external sort stages). See docs/ROBUSTNESS.md for the check-point
// granularity each layer guarantees.
//
// Design constraints:
//  - The no-deadline default must be effectively free: a caller that never
//    sets a deadline or cancel token pays one branch per check (Check() on a
//    default Context is two compares, no clock read, no atomic).
//  - Checks are cooperative: nothing is interrupted mid-I/O. A layer promises
//    to poll at its documented granularity (leaf fetch for searches, stage
//    boundary for commits, run/merge boundary for sorts), so the worst-case
//    overrun is one unit of that granularity.
//  - Context is a small value type; it does not own the CancelToken. The
//    token must outlive every operation that was handed a Context pointing
//    at it (typically: token on the caller's stack, CancelGuard below it).
#ifndef COCONUT_COMMON_CONTEXT_H_
#define COCONUT_COMMON_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "src/common/status.h"

namespace coconut {

/// \brief Shared cancellation flag, flipped once by the canceller and polled
/// (relaxed) by workers. Relaxed is sufficient: cancellation carries no data
/// dependency — observers only need to see the flag eventually, and every
/// polling site sits next to real work (I/O, page scans) that bounds the lag.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// \brief RAII canceller: fires the token when the owning scope unwinds, so
/// work observing the Context stops once the caller no longer wants the
/// answer (client disconnect, early return, exception-free error unwind).
/// Call Release() after a normal completion to keep the token clean.
class CancelGuard {
 public:
  explicit CancelGuard(CancelToken* token) : token_(token) {}
  ~CancelGuard() {
    if (token_ != nullptr) token_->Cancel();
  }
  CancelGuard(const CancelGuard&) = delete;
  CancelGuard& operator=(const CancelGuard&) = delete;

  /// Detaches the guard: the destructor becomes a no-op.
  void Release() { token_ = nullptr; }

 private:
  CancelToken* token_;
};

/// \brief Per-request deadline / cancellation / priority bundle.
///
/// Passed by const reference (or stashed as a const pointer in scratch
/// state); copying is cheap. The default-constructed Context never expires
/// and is what every API defaults to, so existing callers are unaffected.
class Context {
 public:
  using Clock = std::chrono::steady_clock;

  enum class Priority : std::uint8_t {
    kBackground = 0,  // compaction, maintenance
    kDefault = 1,     // ordinary ingest/query traffic
    kInteractive = 2, // latency-sensitive foreground queries
  };

  Context() = default;

  /// The shared no-deadline, no-cancellation context; default for every
  /// Context-accepting API. Lives for the process lifetime.
  static const Context& Background();

  /// Absolute-deadline constructor.
  static Context WithDeadline(Clock::time_point deadline) {
    Context ctx;
    ctx.deadline_ = deadline;
    ctx.has_deadline_ = true;
    return ctx;
  }

  /// Relative-deadline convenience: now + timeout.
  static Context WithTimeout(std::chrono::nanoseconds timeout) {
    return WithDeadline(Clock::now() + timeout);
  }

  Context& set_cancel_token(const CancelToken* token) {
    cancel_ = token;
    return *this;
  }
  Context& set_priority(Priority p) {
    priority_ = p;
    return *this;
  }

  bool has_deadline() const { return has_deadline_; }
  Clock::time_point deadline() const { return deadline_; }
  const CancelToken* cancel_token() const { return cancel_; }
  Priority priority() const { return priority_; }

  /// Time left before the deadline (clamped at zero), or
  /// nanoseconds::max() when no deadline is set.
  std::chrono::nanoseconds remaining() const {
    if (!has_deadline_) return std::chrono::nanoseconds::max();
    auto left = deadline_ - Clock::now();
    if (left < std::chrono::nanoseconds::zero()) {
      return std::chrono::nanoseconds::zero();
    }
    return std::chrono::duration_cast<std::chrono::nanoseconds>(left);
  }

  /// Deadline expired? (Never true without a deadline; costs one clock read
  /// only when a deadline is set.)
  bool expired() const {
    return has_deadline_ && Clock::now() >= deadline_;
  }

  bool cancelled() const { return cancel_ != nullptr && cancel_->cancelled(); }

  /// The cooperative poll: OK while live, Aborted once cancelled,
  /// DeadlineExceeded once past the deadline. `where` names the check site
  /// ("tree.leaf", "store.commit.stage", ...) so the error pinpoints which
  /// layer gave up. Cancellation is checked first — a cancelled request
  /// should report Aborted even if its deadline also lapsed.
  Status Check(const char* where) const {
    if (cancel_ != nullptr && cancel_->cancelled()) {
      return Status::Aborted(std::string("cancelled at ") + where);
    }
    if (has_deadline_ && Clock::now() >= deadline_) {
      return Status::DeadlineExceeded(std::string("deadline exceeded at ") +
                                      where);
    }
    return Status::OK();
  }

 private:
  Clock::time_point deadline_{};
  const CancelToken* cancel_ = nullptr;
  bool has_deadline_ = false;
  Priority priority_ = Priority::kDefault;
};

/// Polls an optional context: `ctx` may be null (the common fast path in
/// scratch state), in which case this is a single branch.
#define COCONUT_CHECK_CONTEXT(ctx, where)                   \
  do {                                                      \
    if ((ctx) != nullptr) {                                 \
      ::coconut::Status _ctx_st = (ctx)->Check(where);      \
      if (!_ctx_st.ok()) return _ctx_st;                    \
    }                                                       \
  } while (false)

}  // namespace coconut

#endif  // COCONUT_COMMON_CONTEXT_H_
