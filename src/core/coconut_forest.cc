#include "src/core/coconut_forest.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <limits>
#include <numeric>

#include "src/common/crc32c.h"
#include "src/common/env.h"
#include "src/core/knn.h"
#include "src/io/file.h"
#include "src/exec/thread_pool.h"
#include "src/obs/stage_timer.h"
#include "src/obs/trace.h"
#include "src/series/distance.h"
#include "src/summary/invsax.h"

namespace coconut {

namespace {

/// Sorted in-memory entries (a flushed memtable) as a record stream.
class VectorStream : public SortedRecordStream {
 public:
  VectorStream(std::vector<uint8_t> data, size_t record_bytes)
      : data_(std::move(data)), record_bytes_(record_bytes) {}

  bool Next(uint8_t* out, Status* status) override {
    *status = Status::OK();
    if (pos_ + record_bytes_ > data_.size()) return false;
    std::memcpy(out, data_.data() + pos_, record_bytes_);
    pos_ += record_bytes_;
    return true;
  }
  uint64_t count() const override { return data_.size() / record_bytes_; }

 private:
  std::vector<uint8_t> data_;
  size_t record_bytes_;
  size_t pos_ = 0;
};

/// Streaming k-way merge over the (already sorted) leaf entries of several
/// runs: O(runs x page) memory. The fallback merge when the in-memory
/// parallel merge would exceed the configured memory budget.
class MergedRunStream : public SortedRecordStream {
 public:
  MergedRunStream(std::vector<const CoconutTree*> runs, size_t entry_bytes)
      : entry_bytes_(entry_bytes) {
    for (const CoconutTree* run : runs) {
      cursors_.push_back(Cursor{run, 0, 0, {}, 0});
      total_ += run->num_entries();
    }
  }

  bool Next(uint8_t* out, Status* status) override {
    *status = Status::OK();
    int best = -1;
    for (size_t i = 0; i < cursors_.size(); ++i) {
      Cursor& c = cursors_[i];
      if (!EnsurePage(&c, status)) {
        if (!status->ok()) return false;
        continue;  // exhausted
      }
      if (best < 0 ||
          std::memcmp(CurrentEntry(c), CurrentEntry(cursors_[best]),
                      ZKey::kBytes) < 0) {
        best = static_cast<int>(i);
      }
    }
    if (best < 0) return false;
    Cursor& c = cursors_[best];
    std::memcpy(out, CurrentEntry(c), entry_bytes_);
    ++c.slot;
    return true;
  }

  uint64_t count() const override { return total_; }

 private:
  struct Cursor {
    const CoconutTree* run;
    uint64_t next_leaf;
    size_t slot;
    std::vector<uint8_t> page;
    size_t page_count;
  };

  const uint8_t* CurrentEntry(const Cursor& c) const {
    return c.page.data() + c.slot * entry_bytes_;
  }

  /// Loads the next leaf page when the current one is exhausted; returns
  /// false when the run has no entries left.
  bool EnsurePage(Cursor* c, Status* status) {
    while (c->page.empty() || c->slot >= c->page_count) {
      if (c->next_leaf >= c->run->num_leaves()) return false;
      *status = c->run->ReadLeafEntriesRaw(c->next_leaf, &c->page,
                                           &c->page_count);
      if (!status->ok()) return false;
      ++c->next_leaf;
      c->slot = 0;
    }
    return true;
  }

  std::vector<Cursor> cursors_;
  size_t entry_bytes_;
  uint64_t total_ = 0;
};

/// First index in the sorted record array `records` whose key is >= `key`.
size_t LowerBoundByKey(const std::vector<uint8_t>& records, size_t entry_bytes,
                       const uint8_t* key) {
  size_t lo = 0, hi = records.size() / entry_bytes;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (std::memcmp(records.data() + mid * entry_bytes, key, ZKey::kBytes) <
        0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// Encodes and key-sorts `count` memtable entries into leaf-entry records.
std::vector<uint8_t> EncodeSortedRecords(
    const std::vector<CoconutForest::MemEntry>& entries, size_t count,
    const CoconutOptions& tree_opts) {
  const size_t entry_bytes = LeafEntryBytes(tree_opts);
  const SummaryOptions& sum = tree_opts.summary;
  std::vector<uint8_t> records(count * entry_bytes);
  for (size_t i = 0; i < count; ++i) {
    const ZKey key = InvSaxFromSeries(entries[i].series.data(), sum);
    EncodeLeafEntry(key, entries[i].offset,
                    tree_opts.materialized ? entries[i].series.data()
                                           : nullptr,
                    sum.series_length, records.data() + i * entry_bytes);
  }
  std::vector<uint32_t> order(count);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return std::memcmp(records.data() + size_t{a} * entry_bytes,
                       records.data() + size_t{b} * entry_bytes,
                       ZKey::kBytes) < 0;
  });
  std::vector<uint8_t> sorted(records.size());
  for (size_t i = 0; i < count; ++i) {
    std::memcpy(sorted.data() + i * entry_bytes,
                records.data() + size_t{order[i]} * entry_bytes, entry_bytes);
  }
  return sorted;
}

/// The raw dataset's checksum sidecar: one 4-byte little-endian CRC32C per
/// series, appended in lockstep with the raw appends. It is advisory the
/// way a WAL checksum is — verified (and repaired) at Open, never consulted
/// on the query path.
constexpr size_t kRawCrcBytes = 4;

std::string RawSidecarPath(const std::string& raw_path) {
  return raw_path + ".crc";
}

void EncodeCrcLE(uint32_t crc, uint8_t* out) {
  out[0] = static_cast<uint8_t>(crc);
  out[1] = static_cast<uint8_t>(crc >> 8);
  out[2] = static_cast<uint8_t>(crc >> 16);
  out[3] = static_cast<uint8_t>(crc >> 24);
}

uint32_t DecodeCrcLE(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

/// Appends one CRC per series of `batch` to the sidecar. Called after the
/// raw append: a crash between the two leaves the sidecar short, which Open
/// repairs by backfilling (the raw bytes were never acknowledged torn-free,
/// exactly like a missing legacy sidecar).
Status AppendRawCrcs(const std::string& raw_path,
                     const std::vector<Series>& batch) {
  std::unique_ptr<WritableFile> file;
  COCONUT_RETURN_IF_ERROR(
      WritableFile::OpenForAppend(RawSidecarPath(raw_path), &file));
  std::vector<uint8_t> buf(batch.size() * kRawCrcBytes);
  for (size_t i = 0; i < batch.size(); ++i) {
    const Series& s = batch[i];
    EncodeCrcLE(crc32c::Value(s.data(), s.size() * sizeof(Value)),
                buf.data() + i * kRawCrcBytes);
  }
  COCONUT_RETURN_IF_ERROR(file->Append(buf.data(), buf.size()));
  COCONUT_RETURN_IF_ERROR(file->Sync());
  return file->Close();
}

/// Loads the sidecar, trimmed to whole records and to the raw file's series
/// count (recovery may have truncated the raw file; the sidecar follows in
/// lockstep here). Missing sidecar loads as empty.
Status LoadTrimmedSidecar(const std::string& side_path, uint64_t count,
                          std::vector<uint8_t>* side) {
  side->clear();
  if (!FileExists(side_path)) return Status::OK();
  std::unique_ptr<RandomAccessFile> f;
  COCONUT_RETURN_IF_ERROR(RandomAccessFile::Open(side_path, &f));
  const uint64_t covered =
      std::min<uint64_t>(f->size() / kRawCrcBytes, count);
  const uint64_t keep = covered * kRawCrcBytes;
  side->resize(keep);
  if (keep > 0) COCONUT_RETURN_IF_ERROR(f->Read(0, keep, side->data()));
  if (f->size() != keep) {
    // Torn sidecar append or a recovery-truncated raw file: drop the tail
    // so the next append lands record-aligned.
    COCONUT_RETURN_IF_ERROR(TruncateFile(side_path, keep));
  }
  return Status::OK();
}

/// Verifies every raw series against the sidecar and backfills CRCs the
/// sidecar is missing (legacy files, crash between raw append and sidecar
/// append). A mismatch is Corruption naming the series and byte offset —
/// the caller (ShardedStore) decides between failing the open and
/// salvaging. Runs once per Open; the bulk load scans the same bytes anyway.
Status VerifyOrRepairRawCrcs(const std::string& raw_path,
                             size_t series_bytes) {
  static Counter* verified =
      MetricRegistry::Default().GetCounter("io.checksum.verified");
  static Counter* failed =
      MetricRegistry::Default().GetCounter("io.checksum.failed");
  uint64_t raw_size = 0;
  COCONUT_RETURN_IF_ERROR(FileSize(raw_path, &raw_size));
  const uint64_t count = raw_size / series_bytes;
  const std::string side_path = RawSidecarPath(raw_path);
  std::vector<uint8_t> side;
  COCONUT_RETURN_IF_ERROR(LoadTrimmedSidecar(side_path, count, &side));
  const uint64_t covered = side.size() / kRawCrcBytes;
  if (count == 0) return Status::OK();

  std::unique_ptr<RandomAccessFile> raw;
  COCONUT_RETURN_IF_ERROR(RandomAccessFile::Open(raw_path, &raw));
  const uint64_t chunk_series =
      std::max<uint64_t>(1, (4u << 20) / series_bytes);
  std::vector<uint8_t> buf;
  std::vector<uint8_t> backfill;
  for (uint64_t i = 0; i < count; i += chunk_series) {
    const uint64_t n = std::min<uint64_t>(chunk_series, count - i);
    buf.resize(n * series_bytes);
    COCONUT_RETURN_IF_ERROR(
        raw->Read(i * series_bytes, buf.size(), buf.data()));
    for (uint64_t j = 0; j < n; ++j) {
      const uint32_t crc =
          crc32c::Value(buf.data() + j * series_bytes, series_bytes);
      const uint64_t idx = i + j;
      if (idx < covered) {
        if (DecodeCrcLE(side.data() + idx * kRawCrcBytes) != crc) {
          failed->Increment();
          return Status::Corruption(
              "raw checksum mismatch at series " + std::to_string(idx) +
              " (byte offset " + std::to_string(idx * series_bytes) +
              "): " + raw_path);
        }
      } else {
        backfill.resize(backfill.size() + kRawCrcBytes);
        EncodeCrcLE(crc, backfill.data() + backfill.size() - kRawCrcBytes);
      }
    }
  }
  verified->Add(covered);
  if (!backfill.empty()) {
    std::unique_ptr<WritableFile> f;
    COCONUT_RETURN_IF_ERROR(WritableFile::OpenForAppend(side_path, &f));
    COCONUT_RETURN_IF_ERROR(f->Append(backfill.data(), backfill.size()));
    COCONUT_RETURN_IF_ERROR(f->Sync());
    COCONUT_RETURN_IF_ERROR(f->Close());
  }
  return Status::OK();
}

}  // namespace

std::string CoconutForest::RunPath(uint64_t id) const {
  return JoinPath(dir_, "run-" + std::to_string(id) + ".ctree");
}

Status CoconutForest::Open(const std::string& raw_path,
                           const std::string& dir,
                           const ForestOptions& options,
                           std::unique_ptr<CoconutForest>* out) {
  COCONUT_RETURN_IF_ERROR(options.Validate());
  std::unique_ptr<CoconutForest> forest(new CoconutForest());
  // Not shared with any other thread yet, but the guarded members still
  // demand their locks; both are uncontended here.
  MutexLock writer_lock(&forest->writer_mu_);
  WriterLock state_lock(&forest->state_mu_);
  forest->options_ = options;
  forest->raw_path_ = raw_path;
  forest->dir_ = dir;
  forest->memtable_ = std::make_shared<std::vector<MemEntry>>();
  forest->memtable_->reserve(options.memtable_series);
  COCONUT_RETURN_IF_ERROR(MakeDirs(dir));

  if (!FileExists(raw_path)) {
    std::unique_ptr<WritableFile> f;
    COCONUT_RETURN_IF_ERROR(WritableFile::Create(raw_path, &f));
    COCONUT_RETURN_IF_ERROR(f->Close());
  }
  COCONUT_RETURN_IF_ERROR(FileSize(raw_path, &forest->raw_bytes_));
  // Integrity gate: every series the bulk load below would index must match
  // its sidecar CRC (missing entries are backfilled — see the helper).
  COCONUT_RETURN_IF_ERROR(VerifyOrRepairRawCrcs(
      raw_path, options.tree.summary.series_length * sizeof(Value)));
  if (forest->raw_bytes_ > 0) {
    // Existing data becomes the first run (a plain bulk load).
    const std::string path = forest->RunPath(forest->next_run_id_++);
    COCONUT_RETURN_IF_ERROR(
        CoconutTree::Build(raw_path, path, options.tree));
    std::unique_ptr<CoconutTree> run;
    COCONUT_RETURN_IF_ERROR(CoconutTree::Open(path, raw_path, &run));
    forest->runs_.emplace_back(std::move(run));
  }
  *out = std::move(forest);
  return Status::OK();
}

Status CoconutForest::Insert(const Series& series) {
  return InsertBatch({series});
}

Status CoconutForest::InsertBatch(const std::vector<Series>& batch) {
  const size_t n = options_.tree.summary.series_length;
  for (const Series& s : batch) {
    if (s.size() != n) {
      return Status::InvalidArgument("series length mismatch");
    }
  }
  MutexLock writer_lock(&writer_mu_);
  COCONUT_RETURN_IF_ERROR(AppendToDataset(raw_path_, batch));
  COCONUT_RETURN_IF_ERROR(AppendRawCrcs(raw_path_, batch));
  // The whole batch is on disk now; advance raw_bytes_ up front so it can
  // never desync from the file even if a flush below fails mid-batch (the
  // un-published tail is then orphaned bytes, not mis-addressed entries).
  uint64_t offset = raw_bytes_;
  raw_bytes_ += batch.size() * n * sizeof(Value);
  for (const Series& s : batch) {
    if (MemtableCountWriterLocked() >= options_.memtable_series) {
      // Reachable when an earlier flush failed, or when a staged publish
      // filled the memtable exactly to capacity: the flush must succeed
      // before another push_back, or the vector would reallocate under
      // lock-free snapshot readers.
      COCONUT_RETURN_IF_ERROR(FlushWriterLocked());
    }
    {
      // Publish the entry: the vector never reallocates (capacity is
      // reserved up to memtable_series, the flush threshold), so snapshot
      // holders reading entries below the published count are unaffected.
      StateWriteLock state_lock(this);
      memtable_->push_back(MemEntry{s, offset});
      ++memtable_count_;
    }
    offset += n * sizeof(Value);
    if (MemtableCountWriterLocked() >= options_.memtable_series) {
      COCONUT_RETURN_IF_ERROR(FlushWriterLocked());
    }
  }
  if (NumRunsWriterLocked() > options_.max_runs) {
    COCONUT_RETURN_IF_ERROR(CompactWriterLocked());
  }
  return Status::OK();
}

Status CoconutForest::StageBatch(const std::vector<Series>& batch,
                                 StagedBatch* out) {
  const size_t n = options_.tree.summary.series_length;
  for (const Series& s : batch) {
    if (s.size() != n) {
      return Status::InvalidArgument("series length mismatch");
    }
  }
  if (batch.empty()) return Status::InvalidArgument("empty staged batch");
  MutexLock writer_lock(&writer_mu_);
  out->pre_raw_bytes = raw_bytes_;
  out->raw_bytes = batch.size() * n * sizeof(Value);
  COCONUT_RETURN_IF_ERROR(AppendToDataset(raw_path_, batch));
  COCONUT_RETURN_IF_ERROR(AppendRawCrcs(raw_path_, batch));
  uint64_t offset = raw_bytes_;
  raw_bytes_ += out->raw_bytes;
  if (batch.size() > options_.memtable_series) {
    // The slice cannot fit even an empty memtable: pre-build it as its own
    // sorted run now, in stage phase, so publication is an O(1) run-set
    // push instead of an impossible sequence of flushes under the store's
    // visibility lock.
    std::vector<MemEntry> entries;
    entries.reserve(batch.size());
    for (const Series& s : batch) {
      entries.push_back(MemEntry{s, offset});
      offset += n * sizeof(Value);
    }
    std::vector<uint8_t> sorted =
        EncodeSortedRecords(entries, entries.size(), options_.tree);
    const size_t entry_bytes = LeafEntryBytes(options_.tree);
    const std::string path = RunPath(next_run_id_++);
    {
      VectorStream stream(std::move(sorted), entry_bytes);
      COCONUT_RETURN_IF_ERROR(
          CoconutTreeBuilder::BulkLoad(&stream, options_.tree, path));
    }
    std::unique_ptr<CoconutTree> run;
    COCONUT_RETURN_IF_ERROR(CoconutTree::Open(path, raw_path_, &run));
    out->run = std::move(run);
    return Status::OK();
  }
  if (MemtableCountWriterLocked() + batch.size() > options_.memtable_series) {
    // Make room now so PublishStaged never has to flush.
    COCONUT_RETURN_IF_ERROR(FlushWriterLocked());
  }
  out->entries.reserve(batch.size());
  for (const Series& s : batch) {
    out->entries.push_back(MemEntry{s, offset});
    offset += n * sizeof(Value);
  }
  return Status::OK();
}

bool CoconutForest::StagedFits(const StagedBatch& staged) const {
  if (staged.run != nullptr) return true;  // run install is always O(1)
  MutexLock writer_lock(&writer_mu_);
  return MemtableCountWriterLocked() + staged.entries.size() <=
         options_.memtable_series;
}

Status CoconutForest::PublishStaged(StagedBatch&& staged) {
  MutexLock writer_lock(&writer_mu_);
  if (staged.run == nullptr &&
      MemtableCountWriterLocked() + staged.entries.size() >
          options_.memtable_series) {
    // Impossible under the store's commit lock (StageBatch made room, no
    // writer ran in between, and the store re-checked StagedFits);
    // publishing anyway would reallocate the memtable under lock-free
    // snapshot readers.
    return Status::Internal("staged batch no longer fits the memtable");
  }
  StateWriteLock state_lock(this);
  if (staged.run != nullptr) {
    runs_.push_back(std::move(staged.run));
  } else {
    for (MemEntry& e : staged.entries) {
      memtable_->push_back(std::move(e));
      ++memtable_count_;
    }
  }
  return Status::OK();
}

Status CoconutForest::CompactIfNeeded() {
  MutexLock writer_lock(&writer_mu_);
  if (NumRunsWriterLocked() > options_.max_runs) {
    return CompactWriterLocked();
  }
  return Status::OK();
}

Status CoconutForest::TruncateRawForRecovery(const std::string& raw_path,
                                             uint64_t target_bytes) {
  if (!FileExists(raw_path)) {
    if (target_bytes == 0) return Status::OK();
    return Status::Corruption("raw file missing but committed epochs expect " +
                              std::to_string(target_bytes) + " bytes: " +
                              raw_path);
  }
  uint64_t size = 0;
  COCONUT_RETURN_IF_ERROR(FileSize(raw_path, &size));
  if (size < target_bytes) {
    return Status::Corruption("raw file shorter than committed epoch extent: " +
                              raw_path);
  }
  if (size == target_bytes) return Status::OK();
  return TruncateFile(raw_path, target_bytes);
}

Status CoconutForest::SalvageRaw(const std::string& raw_path,
                                 size_t series_bytes,
                                 uint64_t* salvaged_bytes) {
  *salvaged_bytes = 0;
  if (!FileExists(raw_path)) return Status::OK();
  uint64_t raw_size = 0;
  COCONUT_RETURN_IF_ERROR(FileSize(raw_path, &raw_size));
  const uint64_t count = raw_size / series_bytes;
  const std::string side_path = RawSidecarPath(raw_path);
  std::vector<uint8_t> side;
  COCONUT_RETURN_IF_ERROR(LoadTrimmedSidecar(side_path, count, &side));
  const uint64_t covered = side.size() / kRawCrcBytes;

  // Longest prefix of whole series whose CRCs verify. Series beyond the
  // sidecar's coverage are unverifiable (crash-window appends); they are
  // kept only when everything before them verified, same trust rule as the
  // Open-time backfill.
  uint64_t keep = count;
  if (count > 0) {
    std::unique_ptr<RandomAccessFile> raw;
    COCONUT_RETURN_IF_ERROR(RandomAccessFile::Open(raw_path, &raw));
    std::vector<uint8_t> buf(series_bytes);
    for (uint64_t i = 0; i < covered; ++i) {
      COCONUT_RETURN_IF_ERROR(
          raw->Read(i * series_bytes, series_bytes, buf.data()));
      if (crc32c::Value(buf.data(), series_bytes) !=
          DecodeCrcLE(side.data() + i * kRawCrcBytes)) {
        keep = i;
        break;
      }
    }
  }
  *salvaged_bytes = keep * series_bytes;
  if (*salvaged_bytes < raw_size) {
    COCONUT_RETURN_IF_ERROR(TruncateFile(raw_path, *salvaged_bytes));
  }
  if (FileExists(side_path)) {
    const uint64_t side_keep = std::min<uint64_t>(covered, keep) * kRawCrcBytes;
    if (side_keep < side.size()) {
      COCONUT_RETURN_IF_ERROR(TruncateFile(side_path, side_keep));
    }
  }
  return Status::OK();
}

uint64_t CoconutForest::raw_size() const {
  MutexLock writer_lock(&writer_mu_);
  return raw_bytes_;
}

Status CoconutForest::Flush() {
  MutexLock writer_lock(&writer_mu_);
  return FlushWriterLocked();
}

Status CoconutForest::FlushWriterLocked() {
  // Encode and sort the memtable entries, then bulk-load a new run — the
  // sequential LSM flush. All of this happens before readers are touched:
  // the memtable entries below memtable_count_ are immutable, so the run
  // can be built without holding state_mu_. The run is published and the
  // memtable retired in one atomic swap at the end, so a snapshot sees the
  // flushed entries exactly once (either in the memtable or in the run).
  size_t count = 0;
  std::shared_ptr<std::vector<MemEntry>> mem;
  {
    ReaderLock state_lock(&state_mu_);
    count = memtable_count_;
    mem = memtable_;
  }
  if (count == 0) return Status::OK();
  static Histogram* flush_ns =
      MetricRegistry::Default().GetHistogram("forest.flush_ns");
  static Counter* flush_entries =
      MetricRegistry::Default().GetCounter("forest.flush_entries");
  ScopedTimer flush_timer(flush_ns);
  TraceSpan flush_span("forest.flush", "forest");
  flush_entries->Add(count);
  std::vector<uint8_t> sorted =
      EncodeSortedRecords(*mem, count, options_.tree);
  const size_t entry_bytes = LeafEntryBytes(options_.tree);
  const std::string path = RunPath(next_run_id_++);
  {
    VectorStream stream(std::move(sorted), entry_bytes);
    COCONUT_RETURN_IF_ERROR(
        CoconutTreeBuilder::BulkLoad(&stream, options_.tree, path));
  }
  std::unique_ptr<CoconutTree> run;
  COCONUT_RETURN_IF_ERROR(CoconutTree::Open(path, raw_path_, &run));
  auto fresh = std::make_shared<std::vector<MemEntry>>();
  fresh->reserve(options_.memtable_series);
  {
    StateWriteLock state_lock(this);
    runs_.emplace_back(std::move(run));
    memtable_ = std::move(fresh);
    memtable_count_ = 0;
  }
  return Status::OK();
}

Status CoconutForest::CompactAll() {
  MutexLock writer_lock(&writer_mu_);
  return CompactWriterLocked();
}

Status CoconutForest::MergeRunsParallel(
    const std::vector<std::shared_ptr<const CoconutTree>>& inputs,
    std::vector<uint8_t>* out) const {
  assert(!state_write_locked_.load(std::memory_order_relaxed) &&
         "runs merge must never execute under the reader-visible state lock");
  const size_t entry_bytes = LeafEntryBytes(options_.tree);
  ThreadPool* pool = ThreadPool::Shared();
  Status first_error;
  Mutex error_mu;
  auto record_error = [&](const Status& st) {
    MutexLock lock(&error_mu);
    if (first_error.ok()) first_error = st;
  };

  // Stage 1: load every run's (already sorted) leaf entries into memory,
  // one run per chunk — page reads of distinct runs are independent. The
  // transient working set is ~2x the merged leaf region (per-run buffers
  // plus the output); CompactWriterLocked only routes here when that fits
  // options_.tree.memory_budget_bytes, falling back to the streaming merge
  // otherwise (materialized leaves carry the full series payload, so the
  // budget check is what keeps large materialized compactions bounded).
  std::vector<std::vector<uint8_t>> run_entries(inputs.size());
  pool->ParallelFor(0, inputs.size(), 1, [&](uint64_t lo, uint64_t hi) {
    for (uint64_t r = lo; r < hi; ++r) {
      const CoconutTree& run = *inputs[r];
      std::vector<uint8_t>& dst = run_entries[r];
      dst.reserve(static_cast<size_t>(run.num_entries()) * entry_bytes);
      std::vector<uint8_t> page;
      size_t count = 0;
      for (uint64_t leaf = 0; leaf < run.num_leaves(); ++leaf) {
        const Status st = run.ReadLeafEntriesRaw(leaf, &page, &count);
        if (!st.ok()) {
          record_error(st);
          return;
        }
        dst.insert(dst.end(), page.data(), page.data() + count * entry_bytes);
      }
    }
  });
  COCONUT_RETURN_IF_ERROR(first_error);

  uint64_t total = 0;
  size_t largest = 0;
  for (size_t r = 0; r < run_entries.size(); ++r) {
    total += run_entries[r].size() / entry_bytes;
    if (run_entries[r].size() > run_entries[largest].size()) largest = r;
  }
  out->resize(static_cast<size_t>(total) * entry_bytes);
  if (total == 0) return Status::OK();

  // Stage 2: partition the key space so the merge itself can be chunked
  // over the pool. Pivots are evenly spaced keys of the largest run (a good
  // sample of the global distribution); every run is split at the same
  // pivot keys with lower-bound semantics, so each entry lands in exactly
  // one chunk and chunk-local merges are independent.
  constexpr uint64_t kMinEntriesPerChunk = 2048;
  const uint64_t largest_count = run_entries[largest].size() / entry_bytes;
  size_t chunks = static_cast<size_t>(
      std::min<uint64_t>(uint64_t{pool->parallelism()} * 2,
                         std::max<uint64_t>(1, total / kMinEntriesPerChunk)));
  chunks = static_cast<size_t>(
      std::min<uint64_t>(chunks, std::max<uint64_t>(1, largest_count)));

  // splits[r][c] .. splits[r][c+1] is run r's subrange for chunk c.
  std::vector<std::vector<size_t>> splits(inputs.size());
  for (size_t r = 0; r < run_entries.size(); ++r) {
    splits[r].push_back(0);
    for (size_t c = 1; c < chunks; ++c) {
      const uint8_t* pivot =
          run_entries[largest].data() +
          (largest_count * c / chunks) * entry_bytes;
      splits[r].push_back(LowerBoundByKey(run_entries[r], entry_bytes, pivot));
    }
    splits[r].push_back(run_entries[r].size() / entry_bytes);
  }
  std::vector<size_t> chunk_offset(chunks + 1, 0);
  for (size_t c = 0; c < chunks; ++c) {
    size_t size = 0;
    for (size_t r = 0; r < run_entries.size(); ++r) {
      size += splits[r][c + 1] - splits[r][c];
    }
    chunk_offset[c + 1] = chunk_offset[c] + size;
  }

  // Stage 3: chunk-local k-way merges, in parallel, each writing its own
  // disjoint slice of the output.
  pool->ParallelFor(0, chunks, 1, [&](uint64_t lo, uint64_t hi) {
    for (uint64_t c = lo; c < hi; ++c) {
      struct Cursor {
        const uint8_t* next;
        const uint8_t* end;
      };
      std::vector<Cursor> cursors;
      cursors.reserve(run_entries.size());
      for (size_t r = 0; r < run_entries.size(); ++r) {
        cursors.push_back(
            Cursor{run_entries[r].data() + splits[r][c] * entry_bytes,
                   run_entries[r].data() + splits[r][c + 1] * entry_bytes});
      }
      uint8_t* dst = out->data() + chunk_offset[c] * entry_bytes;
      while (true) {
        int best = -1;
        for (size_t r = 0; r < cursors.size(); ++r) {
          if (cursors[r].next == cursors[r].end) continue;
          if (best < 0 || std::memcmp(cursors[r].next, cursors[best].next,
                                      ZKey::kBytes) < 0) {
            best = static_cast<int>(r);
          }
        }
        if (best < 0) break;
        std::memcpy(dst, cursors[best].next, entry_bytes);
        dst += entry_bytes;
        cursors[best].next += entry_bytes;
      }
    }
  });
  return Status::OK();
}

Status CoconutForest::CompactWriterLocked() {
  COCONUT_RETURN_IF_ERROR(FlushWriterLocked());
  // The writer lock excludes every mutator of runs_; the copy still takes a
  // brief shared acquisition, and the merge below then runs on immutable
  // trees outside any lock.
  std::vector<std::shared_ptr<const CoconutTree>> inputs;
  {
    ReaderLock state_lock(&state_mu_);
    inputs = runs_;
  }
  if (inputs.size() <= 1) return Status::OK();
  static Histogram* compaction_ns =
      MetricRegistry::Default().GetHistogram("forest.compaction_ns");
  static Histogram* merge_fan_in =
      MetricRegistry::Default().GetHistogram("forest.compaction.merge_fan_in");
  ScopedTimer compaction_timer(compaction_ns);
  TraceSpan compaction_span("forest.compaction", "forest");
  merge_fan_in->Record(inputs.size());
  const size_t entry_bytes = LeafEntryBytes(options_.tree);
  const std::string path = RunPath(next_run_id_++);
  uint64_t total_entries = 0;
  for (const auto& run : inputs) total_entries += run->num_entries();
  // The parallel merge materializes the runs plus the merged output
  // (~2x the leaf region, and materialized entries embed the raw series);
  // only take it when that fits the configured memory budget.
  const bool merge_in_memory =
      2 * total_entries * entry_bytes <= options_.tree.memory_budget_bytes;
  if (merge_in_memory) {
    std::vector<uint8_t> merged_records;
    COCONUT_RETURN_IF_ERROR(MergeRunsParallel(inputs, &merged_records));
    VectorStream stream(std::move(merged_records), entry_bytes);
    COCONUT_RETURN_IF_ERROR(
        CoconutTreeBuilder::BulkLoad(&stream, options_.tree, path));
  } else {
    std::vector<const CoconutTree*> raw_inputs;
    raw_inputs.reserve(inputs.size());
    for (const auto& run : inputs) raw_inputs.push_back(run.get());
    MergedRunStream stream(std::move(raw_inputs), entry_bytes);
    COCONUT_RETURN_IF_ERROR(
        CoconutTreeBuilder::BulkLoad(&stream, options_.tree, path));
  }
  std::unique_ptr<CoconutTree> merged;
  COCONUT_RETURN_IF_ERROR(CoconutTree::Open(path, raw_path_, &merged));
  {
    StateWriteLock state_lock(this);
    runs_.clear();
    runs_.emplace_back(std::move(merged));
  }
  // Unlink the merged-away files; snapshot holders that still reference the
  // old trees keep reading through their open descriptors.
  for (const auto& run : inputs) {
    (void)RemoveAll(run->index_path());
    (void)RemoveAll(run->index_path() + ".sax");
  }
  return Status::OK();
}

CoconutForest::Snapshot CoconutForest::GetSnapshot() const {
  ReaderLock state_lock(&state_mu_);
  Snapshot snap;
  snap.memtable = memtable_;
  snap.memtable_count = memtable_count_;
  snap.runs = runs_;
  return snap;
}

size_t CoconutForest::num_runs() const {
  ReaderLock state_lock(&state_mu_);
  return runs_.size();
}

uint64_t CoconutForest::num_entries() const { return GetSnapshot().num_entries(); }

uint64_t CoconutForest::memtable_size() const {
  ReaderLock state_lock(&state_mu_);
  return memtable_count_;
}

Status CoconutForest::ExactSearch(const Value* query, SearchResult* result,
                                  size_t k) const {
  return ExactSearch(GetSnapshot(), query, result, k);
}

Status CoconutForest::ExactSearch(const Snapshot& snapshot,
                                  const Value* query, SearchResult* result,
                                  size_t k,
                                  CoconutTree::QueryScratch* scratch) const {
  if (snapshot.num_entries() == 0) return Status::NotFound("empty forest");
  CoconutTree::QueryScratch local_scratch;
  if (scratch == nullptr) scratch = &local_scratch;
  const size_t n = options_.tree.summary.series_length;
  KnnCollector knn(k);
  uint64_t visited = 0;
  uint64_t leaves_read = 0;
  // Memtable: brute force (it is small by construction).
  for (size_t i = 0; i < snapshot.memtable_count; ++i) {
    const MemEntry& e = (*snapshot.memtable)[i];
    knn.Offer(e.offset, SquaredEuclidean(e.series.data(), query, n));
    ++visited;
  }
  if (QueryTrace* t = scratch->trace) {
    t->memtable_scanned += snapshot.memtable_count;
    t->records_fetched += snapshot.memtable_count;
  }
  // Runs: per-run exact k-NN answers; runs partition the data, so the
  // merged top-k is the global top-k.
  for (const auto& run : snapshot.runs) {
    SearchResult r;
    COCONUT_RETURN_IF_ERROR(run->ExactSearch(query, 1, &r, k, scratch));
    visited += r.visited_records;
    leaves_read += r.leaves_read;
    knn.Seed(r);
  }
  knn.Finalize(result);
  result->visited_records = visited;
  result->leaves_read = leaves_read;
  return Status::OK();
}

Status CoconutForest::ApproxSearch(const Value* query, size_t num_leaves,
                                   SearchResult* result, size_t k) const {
  return ApproxSearch(GetSnapshot(), query, num_leaves, result, k);
}

Status CoconutForest::ApproxSearch(const Snapshot& snapshot,
                                   const Value* query, size_t num_leaves,
                                   SearchResult* result, size_t k,
                                   CoconutTree::QueryScratch* scratch) const {
  if (snapshot.num_entries() == 0) return Status::NotFound("empty forest");
  CoconutTree::QueryScratch local_scratch;
  if (scratch == nullptr) scratch = &local_scratch;
  const size_t n = options_.tree.summary.series_length;
  KnnCollector knn(k);
  uint64_t visited = 0;
  uint64_t leaves_read = 0;
  for (size_t i = 0; i < snapshot.memtable_count; ++i) {
    const MemEntry& e = (*snapshot.memtable)[i];
    knn.Offer(e.offset, SquaredEuclidean(e.series.data(), query, n));
    ++visited;
  }
  if (QueryTrace* t = scratch->trace) {
    t->memtable_scanned += snapshot.memtable_count;
    t->records_fetched += snapshot.memtable_count;
  }
  for (const auto& run : snapshot.runs) {
    SearchResult r;
    COCONUT_RETURN_IF_ERROR(
        run->ApproxSearch(query, num_leaves, &r, k, scratch));
    visited += r.visited_records;
    leaves_read += r.leaves_read;
    knn.Seed(r);
  }
  knn.Finalize(result);
  result->visited_records = visited;
  result->leaves_read = leaves_read;
  return Status::OK();
}

}  // namespace coconut
