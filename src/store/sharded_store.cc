#include "src/store/sharded_store.h"

#include <algorithm>
#include <future>
#include <utility>

#include "src/common/env.h"
#include "src/common/failpoint.h"
#include "src/core/knn.h"
#include "src/io/io_stats.h"
#include "src/io/retry.h"
#include "src/obs/metrics.h"
#include "src/obs/stage_timer.h"
#include "src/obs/trace.h"
#include "src/summary/invsax.h"

namespace coconut {

namespace {

/// Builds a ZKey from four big-endian 64-bit words (most significant first).
ZKey KeyFromWords(const uint64_t words[ZKey::kWords]) {
  uint8_t bytes[ZKey::kBytes];
  for (size_t i = 0; i < ZKey::kWords; ++i) {
    for (size_t b = 0; b < 8; ++b) {
      bytes[i * 8 + b] = static_cast<uint8_t>(words[i] >> (56 - 8 * b));
    }
  }
  return ZKey::DeserializeBE(bytes);
}

/// Lower bound of shard `index` when the 256-bit key space is split into
/// `num_shards` even ranges: floor(index * 2^256 / num_shards), computed by
/// base-2^64 long division (the numerator's digits are [index, 0, 0, 0, 0]).
ZKey ShardLowerBound(size_t index, size_t num_shards) {
  uint64_t words[ZKey::kWords];
  unsigned __int128 rem = index;  // index < num_shards, so digit 0 yields 0
  for (size_t w = 0; w < ZKey::kWords; ++w) {
    const unsigned __int128 cur = rem << 64;
    words[w] = static_cast<uint64_t>(cur / num_shards);
    rem = cur % num_shards;
  }
  return KeyFromWords(words);
}

/// Prefixes a shard failure with the shard id so callers can tell WHICH
/// shard of a routed write failed.
Status TagShard(size_t shard, const Status& st) {
  if (st.ok()) return st;
  const std::string msg = "shard " + std::to_string(shard) + ": " +
                          st.ToString();
  switch (st.code()) {
    case Status::Code::kInvalidArgument:
      return Status::InvalidArgument(msg);
    case Status::Code::kCorruption:
      return Status::Corruption(msg);
    case Status::Code::kNotFound:
      return Status::NotFound(msg);
    case Status::Code::kNotSupported:
      return Status::NotSupported(msg);
    case Status::Code::kInternal:
      return Status::Internal(msg);
    default:
      return Status::IOError(msg);
  }
}

}  // namespace

Status ShardedStore::RecoverFromJournal(const std::string& dir,
                                        StoreManifest* manifest,
                                        uint64_t* next_epoch) {
  uint64_t max_epoch = manifest->last_committed_epoch;
  uint64_t last_committed = manifest->last_committed_epoch;
  const size_t num_shards = manifest->shards.size();
  const uint64_t series_bytes = manifest->series_length * sizeof(Value);

  // Per-shard rollback point (smallest pre-append offset of any uncommitted
  // epoch) and committed floor (largest extent any committed epoch reaches;
  // the raw file must never end below it).
  std::vector<uint64_t> cut(num_shards, UINT64_MAX);
  std::vector<uint64_t> committed_floor(num_shards, 0);
  if (CommitJournal::Exists(dir)) {
    std::vector<EpochRecord> records;
    COCONUT_RETURN_IF_ERROR(CommitJournal::Scan(dir, &records));
    for (const EpochRecord& rec : records) {
      max_epoch = std::max(max_epoch, rec.epoch);
      if (rec.committed) last_committed = std::max(last_committed, rec.epoch);
      for (const EpochSlice& slice : rec.slices) {
        if (slice.shard >= num_shards) {
          return Status::Corruption("journal: record names unknown shard " +
                                    std::to_string(slice.shard));
        }
        if (rec.committed) {
          committed_floor[slice.shard] =
              std::max(committed_floor[slice.shard],
                       slice.pre_raw_bytes + slice.count * series_bytes);
        } else {
          cut[slice.shard] =
              std::min(cut[slice.shard], slice.pre_raw_bytes);
        }
      }
    }
  }

  for (size_t i = 0; i < num_shards; ++i) {
    const std::string raw_path =
        JoinPath(JoinPath(dir, manifest->shards[i].dir), "raw.bin");
    uint64_t size = 0;
    if (FileExists(raw_path)) {
      COCONUT_RETURN_IF_ERROR(FileSize(raw_path, &size));
    }
    if (cut[i] < committed_floor[i]) {
      // Epochs are serialized, so a torn epoch can only sit AFTER every
      // committed one; overlap means the journal itself is damaged.
      return Status::Corruption(
          "journal: torn epoch overlaps a committed epoch on shard " +
          std::to_string(i));
    }
    // Roll back the torn epoch's slice, then any torn single-series write
    // left by a crashed journal-free append (the raw file is a headerless
    // array of fixed-size series, so a tail that is not a whole series
    // count is by definition torn).
    uint64_t target = std::min<uint64_t>(size, cut[i]);
    target -= target % series_bytes;
    if (target < committed_floor[i]) {
      return Status::Corruption(
          "shard " + std::to_string(i) +
          " raw file shorter than its committed epoch extent");
    }
    if (size > target) {
      COCONUT_RETURN_IF_ERROR(
          CoconutForest::TruncateRawForRecovery(raw_path, target));
    }
  }

  manifest->last_committed_epoch = last_committed;
  *next_epoch = max_epoch + 1;
  return Status::OK();
}

Status ShardedStore::Open(const std::string& dir, const StoreOptions& options,
                          std::unique_ptr<ShardedStore>* out) {
  COCONUT_RETURN_IF_ERROR(options.Validate());
  std::unique_ptr<ShardedStore> store(new ShardedStore());
  store->options_ = options;
  store->dir_ = dir;
  store->pool_ = ThreadPool::Shared();
  COCONUT_RETURN_IF_ERROR(MakeDirs(dir));

  const size_t series_length = options.forest.tree.summary.series_length;
  if (StoreManifestExists(dir)) {
    // Reopen: the committed manifest pins shard count and boundaries;
    // options.num_shards is ignored so routing matches the stored data.
    COCONUT_RETURN_IF_ERROR(ReadStoreManifest(dir, &store->manifest_));
    if (store->manifest_.series_length != series_length) {
      return Status::InvalidArgument(
          "store was created with a different series_length");
    }
    // Replay the epoch journal BEFORE any forest opens: torn shard tails
    // must be truncated away before recovery bulk-loads the raw files.
    // (The store is not shared yet; the lock just satisfies the guarded
    // next_epoch_ write and is uncontended.)
    MutexLock commit_lock(&store->commit_mu_);
    COCONUT_RETURN_IF_ERROR(RecoverFromJournal(dir, &store->manifest_,
                                               &store->next_epoch_));
    // Persist the recovered state, then retire the applied records. The
    // order is crash-safe: truncation is idempotent, so a crash between
    // these steps just replays the same (now no-op) recovery.
    COCONUT_RETURN_IF_ERROR(WriteStoreManifest(dir, store->manifest_));
    COCONUT_RETURN_IF_ERROR(CommitJournal::Reset(dir));
  } else {
    // A directory holding shard data but no manifest is a damaged store,
    // not a new one: re-partitioning with the caller's num_shards would
    // silently mis-route (and possibly drop) the existing data.
    if (FileExists(JoinPath(JoinPath(dir, "shard-0"), "raw.bin"))) {
      return Status::Corruption(
          "store directory has shard data but no manifest");
    }
    // New store: commit the manifest before any data exists, so a crash
    // between manifest commit and first insert reopens as a valid empty
    // store.
    StoreManifest manifest;
    manifest.series_length = series_length;
    for (size_t i = 0; i < options.num_shards; ++i) {
      ShardInfo info;
      info.lower_bound = ShardLowerBound(i, options.num_shards);
      info.dir = "shard-" + std::to_string(i);
      manifest.shards.push_back(std::move(info));
    }
    COCONUT_RETURN_IF_ERROR(WriteStoreManifest(dir, manifest));
    COCONUT_RETURN_IF_ERROR(CommitJournal::Reset(dir));
    store->manifest_ = std::move(manifest);
  }
  store->committed_epoch_.store(store->manifest_.last_committed_epoch,
                                std::memory_order_release);
  COCONUT_RETURN_IF_ERROR(CommitJournal::Open(dir, &store->journal_));

  // Open every shard forest. Each forest recovers its run state from the
  // shard's raw dataset file (the write-ahead source of truth), so no run
  // bookkeeping in the manifest is needed for crash recovery.
  {
    MutexLock quarantine_lock(&store->quarantine_mu_);
    store->quarantined_.assign(store->manifest_.shards.size(), false);
    store->quarantine_causes_.assign(store->manifest_.shards.size(), "");
  }
  for (size_t i = 0; i < store->manifest_.shards.size(); ++i) {
    const ShardInfo& info = store->manifest_.shards[i];
    const std::string shard_dir = JoinPath(dir, info.dir);
    COCONUT_RETURN_IF_ERROR(MakeDirs(shard_dir));
    store->raw_paths_.push_back(JoinPath(shard_dir, "raw.bin"));
    std::unique_ptr<CoconutForest> forest;
    Status st = CoconutForest::Open(store->raw_paths_.back(), shard_dir,
                                    options.forest, &forest);
    if (st.code() == Status::Code::kCorruption) {
      // Per-shard salvage: truncate the raw file back to its longest
      // checksum-valid prefix and retry once. Everything dropped either
      // failed its CRC or sits behind a series that did, so nothing
      // servable is lost. A salvage error is folded into the quarantine
      // cause, not returned — the healthy shards must still come up.
      uint64_t salvaged_bytes = 0;
      const Status salvage = CoconutForest::SalvageRaw(
          store->raw_paths_.back(), series_length * sizeof(Value),
          &salvaged_bytes);
      // The manifest's per-shard entry count is a committed floor (every
      // committed series occupies series_bytes of raw file). A salvage
      // that kept less than the floor lost COMMITTED data; serving the
      // prefix would silently hide it, so the shard quarantines instead.
      const uint64_t floor_bytes =
          info.entries * uint64_t{series_length} * sizeof(Value);
      if (!salvage.ok()) {
        st = salvage;
      } else if (salvaged_bytes < floor_bytes) {
        st = Status::Corruption(
            st.ToString() + "; salvage kept " +
            std::to_string(salvaged_bytes) +
            " bytes, below the committed floor of " +
            std::to_string(floor_bytes));
      } else {
        forest.reset();
        st = CoconutForest::Open(store->raw_paths_.back(), shard_dir,
                                 options.forest, &forest);
      }
    }
    if (!st.ok()) {
      if (st.code() != Status::Code::kCorruption) return TagShard(i, st);
      // Corruption that salvage could not clear: quarantine the shard
      // instead of poisoning the whole store. Reads continue (degraded)
      // over the healthy shards; writes are refused until the operator
      // repairs the shard and reopens.
      store->QuarantineShard(i, st);
      store->shards_.push_back(nullptr);
      continue;
    }
    store->shards_.push_back(std::move(forest));
  }
  *out = std::move(store);
  return Status::OK();
}

size_t ShardedStore::ShardForKey(const ZKey& key) const {
  // Largest shard whose lower bound is <= key; boundaries are immutable
  // after Open, so no lock is needed.
  size_t lo = 0, hi = manifest_.shards.size();
  while (lo + 1 < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (manifest_.shards[mid].lower_bound <= key) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

size_t ShardedStore::ShardForSeries(const Series& series) const {
  return ShardForKey(
      InvSaxFromSeries(series.data(), options_.forest.tree.summary));
}

Status ShardedStore::Poison(const Status& cause) {
  if (!cause.ok()) {
    MutexLock poison_lock(&poison_mu_);
    if (poison_.ok()) {
      poison_ = Status::IOError(
          "store is read-only until reopened (commit protocol failure): " +
          cause.ToString());
    }
  }
  return cause;
}

void ShardedStore::QuarantineShard(size_t i, const Status& cause) const {
  static Gauge* quarantined_gauge =
      MetricRegistry::Default().GetGauge("store.shard.quarantined");
  MutexLock quarantine_lock(&quarantine_mu_);
  if (quarantined_[i]) return;
  quarantined_[i] = true;
  quarantine_causes_[i] = cause.ToString();
  const size_t count =
      quarantined_count_.load(std::memory_order_relaxed) + 1;
  quarantined_count_.store(count, std::memory_order_release);
  quarantined_gauge->Set(static_cast<int64_t>(count));
}

size_t ShardedStore::QuarantinedShards(std::string* detail) const {
  if (quarantined_count_.load(std::memory_order_acquire) == 0) {
    if (detail) detail->clear();
    return 0;
  }
  MutexLock quarantine_lock(&quarantine_mu_);
  size_t count = 0;
  std::string text;
  for (size_t i = 0; i < quarantined_.size(); ++i) {
    if (!quarantined_[i]) continue;
    ++count;
    if (detail) {
      if (!text.empty()) text += "; ";
      text += "shard " + std::to_string(i) + " quarantined: " +
              quarantine_causes_[i];
    }
  }
  if (detail) *detail = std::move(text);
  return count;
}

Status ShardedStore::QuarantineWriteCheck() const {
  if (quarantined_count_.load(std::memory_order_acquire) == 0) {
    return Status::OK();
  }
  std::string detail;
  QuarantinedShards(&detail);
  return Status::IOError(
      "store is degraded, writes refused until repaired and reopened: " +
      detail);
}

Status ShardedStore::WriteHealth() const {
  // Deliberately NOT commit_mu_: an epoch commit stages durable appends
  // (real I/O) under that lock, and a health probe must report during one,
  // not block behind it.
  COCONUT_RETURN_IF_ERROR(PoisonStatus());
  return QuarantineWriteCheck();
}

Status ShardedStore::Insert(const Series& series) {
  if (series.size() != options_.forest.tree.summary.series_length) {
    return Status::InvalidArgument("series length mismatch");
  }
  const size_t shard = ShardForSeries(series);
  MutexLock commit_lock(&commit_mu_);
  COCONUT_RETURN_IF_ERROR(PoisonStatus());
  COCONUT_RETURN_IF_ERROR(QuarantineWriteCheck());
  return TagShard(shard, shards_[shard]->Insert(series));
}

Status ShardedStore::InsertBatch(const std::vector<Series>& batch,
                                 const Context& ctx) {
  if (batch.empty()) return Status::OK();
  const size_t n = options_.forest.tree.summary.series_length;
  for (const Series& s : batch) {
    if (s.size() != n) {
      return Status::InvalidArgument("series length mismatch");
    }
  }
  // Route every series (invSAX summarization) before taking the commit
  // lock: summarizing is pure CPU work on caller-owned data.
  std::vector<size_t> owner(batch.size());
  bool single_shard = true;
  for (size_t i = 0; i < batch.size(); ++i) {
    owner[i] = ShardForSeries(batch[i]);
    if (owner[i] != owner[0]) single_shard = false;
  }

  MutexLock commit_lock(&commit_mu_);
  COCONUT_RETURN_IF_ERROR(PoisonStatus());
  COCONUT_RETURN_IF_ERROR(QuarantineWriteCheck());
  // Clean abort point: nothing journaled, nothing staged — an expired
  // deadline here costs the caller nothing but the routing work above.
  COCONUT_RETURN_IF_ERROR(ctx.Check("store.insert"));
  if (single_shard) {
    // Fast path (always taken by 1-shard stores): the epoch journal is
    // skipped entirely. Crash semantics are the unsharded forest's
    // raw-file-as-WAL semantics — reopen restores a whole-series prefix
    // of the append (never a torn series, but possibly a prefix of a
    // multi-series batch); there is no cross-shard state to tear.
    static Counter* single_shard_batches = MetricRegistry::Default().GetCounter(
        "store.commit.single_shard_batches");
    single_shard_batches->Increment();
    return TagShard(owner[0], shards_[owner[0]]->InsertBatch(batch));
  }

  std::vector<std::vector<Series>> buckets(shards_.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    buckets[owner[i]].push_back(batch[i]);
  }
  return CommitCrossShardLocked(std::move(buckets), ctx);
}

Status ShardedStore::CommitCrossShardLocked(
    std::vector<std::vector<Series>> buckets, const Context& ctx) {
  // Commit-protocol metrics: whole-epoch latency plus the staged-vs-
  // published breakdown (stage = durable appends, publish = visibility
  // flip under the lock).
  static Histogram* epoch_ns =
      MetricRegistry::Default().GetHistogram("store.commit.epoch_ns");
  static Histogram* stage_ns =
      MetricRegistry::Default().GetHistogram("store.commit.stage_ns");
  static Histogram* publish_ns =
      MetricRegistry::Default().GetHistogram("store.commit.publish_ns");
  static Counter* epochs =
      MetricRegistry::Default().GetCounter("store.commit.epochs");
  ScopedTimer epoch_timer(epoch_ns);
  TraceSpan epoch_span("store.commit.epoch", "store");
  TraceStages commit_spans;

  std::vector<size_t> touched;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (!buckets[i].empty()) touched.push_back(i);
  }

  // 1. Stamp the batch with the next epoch and journal its begin record —
  //    which shards it touches, where each slice will land, how many
  //    series each gets — BEFORE any shard is touched. O(shards), not
  //    O(batch).
  // Last clean abort point: once the begin record is journaled the only
  // abort path is the torn-epoch machinery (poison + reopen rollback),
  // because later epochs appended behind an abandoned begin would read as
  // an overlap at recovery.
  COCONUT_RETURN_IF_ERROR(ctx.Check("store.commit.begin"));

  const uint64_t epoch = next_epoch_++;
  std::vector<EpochSlice> slices;
  slices.reserve(touched.size());
  for (size_t i : touched) {
    slices.push_back(EpochSlice{i, shards_[i]->raw_size(), buckets[i].size()});
  }
  COCONUT_RETURN_IF_ERROR(Poison(journal_->AppendBegin(epoch, slices)));
  COCONUT_RETURN_IF_ERROR(
      Poison(Failpoints::Default().Hit("store.commit.after_begin")));

  // 2. Stage every sub-batch concurrently: durable raw appends plus
  //    run/memtable preparation, with nothing published yet. The calling
  //    thread stages the first shard itself (caller participation keeps a
  //    saturated pool from stalling the write).
  std::vector<CoconutForest::StagedBatch> staged(buckets.size());
  std::vector<Status> stage_status(buckets.size());
  const Context* stage_ctx =
      (ctx.has_deadline() || ctx.cancel_token() != nullptr) ? &ctx : nullptr;
  auto stage_one = [this, &buckets, &staged, stage_ctx](size_t i) {
    // Attribute the durable staging appends to the commit component
    // ("io.commit.*"); the epoch journal's own records are counted
    // separately in src/store/journal.cc.
    IoComponentScope io_scope("commit");
    IoDeadlineScope io_deadline(stage_ctx);
    TraceSpan stage_span("store.shard_stage", "store");
    // A deadline firing here fails this shard's stage exactly like an
    // injected stage error: the epoch tears, the store poisons, and reopen
    // rolls every staged slice back — nothing is ever published.
    COCONUT_CHECK_CONTEXT(stage_ctx, "store.commit.shard_stage");
    COCONUT_RETURN_IF_ERROR(
        Failpoints::Default().Hit("store.commit.shard_stage", i));
    return shards_[i]->StageBatch(buckets[i], &staged[i]);
  };
  Stopwatch stage_watch;
  std::vector<std::future<Status>> pending;
  for (size_t t = 1; t < touched.size(); ++t) {
    const size_t i = touched[t];
    pending.push_back(pool_->Async([&stage_one, i]() { return stage_one(i); }));
  }
  stage_status[touched[0]] = stage_one(touched[0]);
  for (size_t t = 1; t < touched.size(); ++t) {
    stage_status[touched[t]] = pending[t - 1].get();
  }
  stage_ns->Record(stage_watch.ElapsedNanos());
  commit_spans.Mark("store.commit.stage", "store");
  std::string failed;
  bool ctx_deadline = false;
  bool ctx_cancel = false;
  for (size_t i : touched) {
    if (stage_status[i].ok()) continue;
    ctx_deadline |= stage_status[i].IsDeadlineExceeded();
    ctx_cancel |= stage_status[i].IsAborted();
    if (!failed.empty()) failed += "; ";
    failed += "shard " + std::to_string(i) + ": " + stage_status[i].ToString();
  }
  if (!failed.empty()) {
    // The batch is torn: some shards hold their slice durably, others do
    // not. Name every failed shard (the journal keeps the partial state
    // recoverable; the status makes it observable) and poison the store so
    // the torn tail stays the LAST journaled epoch until recovery runs.
    // A deadline/cancellation abort keeps its code so the caller can tell
    // "your budget ran out" from "the disk failed".
    const std::string torn_msg = "cross-shard batch torn at epoch " +
                                 std::to_string(epoch) + ": " + failed;
    if (ctx_deadline) return Poison(Status::DeadlineExceeded(torn_msg));
    if (ctx_cancel) return Poison(Status::Aborted(torn_msg));
    return Poison(Status::IOError(torn_msg));
  }

  // 3. Every slice is durable: commit the epoch. The deadline gets one
  //    last poll before the commit record makes the epoch irrevocable;
  //    past this point the batch always publishes, deadline or not.
  {
    const Status ctx_st = ctx.Check("store.commit.before_journal_commit");
    if (!ctx_st.ok()) {
      const std::string msg = "cross-shard batch torn at epoch " +
                              std::to_string(epoch) + ": " +
                              ctx_st.ToString();
      return Poison(ctx_st.IsAborted() ? Status::Aborted(msg)
                                       : Status::DeadlineExceeded(msg));
    }
  }
  COCONUT_RETURN_IF_ERROR(Poison(
      Failpoints::Default().Hit("store.commit.before_journal_commit")));
  COCONUT_RETURN_IF_ERROR(Poison(journal_->AppendCommit(epoch)));
  COCONUT_RETURN_IF_ERROR(Poison(
      Failpoints::Default().Hit("store.commit.after_journal_commit")));

  // 4. Publish all slices in one step. Readers capture snapshots under the
  //    shared side of visibility_mu_, so a snapshot sees either none or
  //    all of this epoch — no cross-shard read skew. Publication is bounded
  //    work (memtable pushes or an O(1) run install; staging pre-flushed),
  //    never I/O. Every shard's fit is verified BEFORE any shard publishes:
  //    a failure here (impossible under the commit lock, but an invariant
  //    bug must not half-publish the epoch) leaves the epoch entirely
  //    unpublished — journal-committed, so reopen recovers it, exactly the
  //    kAfterJournalCommit crash shape.
  {
    ScopedTimer publish_timer(publish_ns);
    TraceSpan publish_span("store.commit.publish", "store");
    WriterLock visibility_lock(&visibility_mu_);
    for (size_t i : touched) {
      if (!shards_[i]->StagedFits(staged[i])) {
        return Poison(Status::Internal(
            "epoch " + std::to_string(epoch) + " slice for shard " +
            std::to_string(i) + " no longer fits its memtable"));
      }
    }
    for (size_t i : touched) {
      COCONUT_RETURN_IF_ERROR(
          Poison(shards_[i]->PublishStaged(std::move(staged[i]))));
    }
    committed_epoch_.store(epoch, std::memory_order_release);
  }
  epochs->Increment();

  // 5. Deferred maintenance outside the visibility lock: staged
  //    publications skip the forest's automatic compaction trigger, so run
  //    it now for every touched shard (concurrently). The batch IS
  //    committed at this point, so the batch reports OK even if a
  //    compaction fails — returning the failure here would read as "batch
  //    did not land" and invite a duplicating retry. A failed compaction
  //    just leaves extra runs (slower queries, nothing lost); the error
  //    resurfaces from the next explicit CompactAll/Flush or the next
  //    trigger on that shard.
  std::vector<std::future<Status>> compactions;
  for (size_t t = 1; t < touched.size(); ++t) {
    const size_t i = touched[t];
    compactions.push_back(
        pool_->Async([this, i]() { return shards_[i]->CompactIfNeeded(); }));
  }
  (void)shards_[touched[0]]->CompactIfNeeded();
  for (auto& f : compactions) (void)f.get();

  // Size-triggered journal checkpoint: once the journal outgrows the
  // configured bound, re-commit the manifest (which durably records the
  // epoch floor) and reset it. The batch IS committed, so like deferred
  // compaction a checkpoint hiccup must not fail it — a genuinely broken
  // journal poisons the store from inside CommitManifestLocked anyway.
  if (options_.journal_checkpoint_bytes > 0 &&
      journal_->size() > options_.journal_checkpoint_bytes) {
    (void)CommitManifestLocked();
  }
  return Status::OK();
}

Status ShardedStore::ForEachShardParallel(
    const std::function<Status(size_t)>& fn) const {
  std::vector<std::future<Status>> pending;
  pending.reserve(shards_.size());
  for (size_t i = 1; i < shards_.size(); ++i) {
    pending.push_back(pool_->Async([&fn, i]() { return fn(i); }));
  }
  Status first_error = fn(0);  // caller participates with shard 0
  for (auto& f : pending) {
    const Status st = f.get();
    if (first_error.ok() && !st.ok()) first_error = st;
  }
  return first_error;
}

Status ShardedStore::CommitManifestLocked() {
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (!shards_[i]) continue;  // quarantined: keep the last committed count
    manifest_.shards[i].entries = shards_[i]->num_entries();
  }
  manifest_.last_committed_epoch =
      committed_epoch_.load(std::memory_order_acquire);
  COCONUT_RETURN_IF_ERROR(WriteStoreManifest(dir_, manifest_));
  // Checkpoint the journal: under commit_mu_ no epoch is in flight, the
  // store is not poisoned (write entry points check first), and the
  // manifest just durably recorded the committed-epoch floor — every
  // journal record is now obsolete. Resetting here bounds journal growth
  // (and the next open's replay) to the epochs between manifest commits.
  // A crash between the manifest write and the reset only means the next
  // open replays records that are all committed — a no-op. A failed Reset
  // leaves the old journal (and our handle to it) fully intact, so that is
  // a plain error; losing the handle AFTER a successful reset must poison,
  // or the next multi-shard batch would journal into a null handle.
  COCONUT_RETURN_IF_ERROR(CommitJournal::Reset(dir_));
  journal_.reset();
  const Status reopened = CommitJournal::Open(dir_, &journal_);
  if (!reopened.ok()) return Poison(reopened);
  static Counter* checkpoints =
      MetricRegistry::Default().GetCounter("store.journal.checkpoints");
  checkpoints->Increment();
  return Status::OK();
}

Status ShardedStore::Flush(const Context& ctx) {
  static Histogram* flush_ns =
      MetricRegistry::Default().GetHistogram("store.flush_ns");
  ScopedTimer flush_timer(flush_ns);
  TraceSpan flush_span("store.flush", "store");
  MutexLock commit_lock(&commit_mu_);
  COCONUT_RETURN_IF_ERROR(PoisonStatus());
  COCONUT_RETURN_IF_ERROR(QuarantineWriteCheck());
  // Per-shard deadline poll: a shard flush is independently crash-
  // consistent, so giving up between shards is safe (the skipped shards
  // just keep their memtables).
  COCONUT_RETURN_IF_ERROR(ForEachShardParallel([this, &ctx](size_t i) {
    COCONUT_RETURN_IF_ERROR(ctx.Check("store.flush.shard"));
    return shards_[i]->Flush();
  }));
  return CommitManifestLocked();
}

Status ShardedStore::CompactAll(const Context& ctx) {
  // Level 1 of parallel compaction: independent shards compact
  // concurrently. Level 2 happens inside each shard, where the runs-merge
  // is chunked over the same pool (nested ParallelFor is deadlock-free by
  // caller participation).
  MutexLock commit_lock(&commit_mu_);
  COCONUT_RETURN_IF_ERROR(PoisonStatus());
  COCONUT_RETURN_IF_ERROR(QuarantineWriteCheck());
  // Per-shard deadline poll, same contract as Flush: per-shard compactions
  // are independent, so a deadline abort leaves some shards compacted and
  // the rest untouched — never a half-compacted shard.
  COCONUT_RETURN_IF_ERROR(ForEachShardParallel([this, &ctx](size_t i) {
    COCONUT_RETURN_IF_ERROR(ctx.Check("store.compact.shard"));
    return shards_[i]->CompactAll();
  }));
  return CommitManifestLocked();
}

ShardedStore::Snapshot ShardedStore::GetSnapshot() const {
  ReaderLock visibility_lock(&visibility_mu_);
  Snapshot snap;
  snap.epoch = committed_epoch_.load(std::memory_order_acquire);
  snap.degraded = quarantined_count_.load(std::memory_order_acquire) > 0;
  snap.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    // A quarantined shard contributes an empty per-shard snapshot so shard
    // ids keep indexing snap.shards; snap.degraded records the omission.
    snap.shards.push_back(shard ? shard->GetSnapshot()
                                : CoconutForest::Snapshot{});
  }
  return snap;
}

uint64_t ShardedStore::num_entries() const {
  ReaderLock visibility_lock(&visibility_mu_);
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    if (shard) total += shard->num_entries();
  }
  return total;
}

void ShardedStore::MergeShardResults(const std::vector<SearchResult>& per_shard,
                                     size_t k, SearchResult* out) {
  KnnCollector knn(k);
  uint64_t visited = 0;
  uint64_t leaves_read = 0;
  for (size_t s = 0; s < per_shard.size(); ++s) {
    visited += per_shard[s].visited_records;
    leaves_read += per_shard[s].leaves_read;
    for (const Neighbor& nb : per_shard[s].neighbors) {
      knn.Offer(EncodeOffset(s, nb.offset), nb.distance * nb.distance);
    }
  }
  knn.Finalize(out);
  out->visited_records = visited;
  out->leaves_read = leaves_read;
}

Status ShardedStore::ExactSearch(const Value* query, SearchResult* result,
                                 size_t k) const {
  return ExactSearch(GetSnapshot(), query, result, k);
}

Status ShardedStore::ExactSearch(const Snapshot& snapshot, const Value* query,
                                 SearchResult* result, size_t k,
                                 CoconutTree::QueryScratch* scratch) const {
  if (snapshot.shards.size() != shards_.size()) {
    return Status::InvalidArgument("snapshot shard count mismatch");
  }
  if (snapshot.num_entries() == 0) return Status::NotFound("empty store");
  CoconutTree::QueryScratch local_scratch;
  if (scratch == nullptr) scratch = &local_scratch;
  // Shards partition the data, so merging per-shard exact top-k answers
  // yields the global top-k (the forest's per-run argument, one level up).
  // Over a degraded snapshot the same merge is exact over the HEALTHY
  // shards only, and the result says so.
  bool degraded = snapshot.degraded;
  std::vector<SearchResult> per_shard(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (!shards_[i]) {
      degraded = true;
      continue;
    }
    if (snapshot.shards[i].num_entries() == 0) continue;
    const Status st = shards_[i]->ExactSearch(
        snapshot.shards[i], query, &per_shard[i], k, scratch);
    if (st.code() == Status::Code::kCorruption) {
      // A checksum failure surfacing mid-query quarantines the shard and
      // the search continues over the rest — one bad device must not take
      // reads down store-wide. (Non-corruption errors still propagate.)
      QuarantineShard(i, TagShard(i, st));
      per_shard[i] = SearchResult{};
      degraded = true;
      continue;
    }
    COCONUT_RETURN_IF_ERROR(TagShard(i, st));
  }
  MergeShardResults(per_shard, k, result);
  result->degraded = degraded;
  return Status::OK();
}

Status ShardedStore::ApproxSearch(const Value* query, size_t num_leaves,
                                  SearchResult* result, size_t k) const {
  return ApproxSearch(GetSnapshot(), query, num_leaves, result, k);
}

Status ShardedStore::ApproxSearch(const Snapshot& snapshot, const Value* query,
                                  size_t num_leaves, SearchResult* result,
                                  size_t k,
                                  CoconutTree::QueryScratch* scratch) const {
  if (snapshot.shards.size() != shards_.size()) {
    return Status::InvalidArgument("snapshot shard count mismatch");
  }
  if (snapshot.num_entries() == 0) return Status::NotFound("empty store");
  CoconutTree::QueryScratch local_scratch;
  if (scratch == nullptr) scratch = &local_scratch;
  bool degraded = snapshot.degraded;
  std::vector<SearchResult> per_shard(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (!shards_[i]) {
      degraded = true;
      continue;
    }
    if (snapshot.shards[i].num_entries() == 0) continue;
    const Status st = shards_[i]->ApproxSearch(
        snapshot.shards[i], query, num_leaves, &per_shard[i], k, scratch);
    if (st.code() == Status::Code::kCorruption) {
      QuarantineShard(i, TagShard(i, st));
      per_shard[i] = SearchResult{};
      degraded = true;
      continue;
    }
    COCONUT_RETURN_IF_ERROR(TagShard(i, st));
  }
  MergeShardResults(per_shard, k, result);
  result->degraded = degraded;
  return Status::OK();
}

}  // namespace coconut
