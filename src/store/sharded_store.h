// ShardedStore: a key-space partitioned forest of forests.
//
// Coconut's bottom-up design makes summarizations sortable, which is what
// lets the LSM-style CoconutForest be *range-partitioned* by invSAX key:
// the store splits the 256-bit z-order key space into N contiguous ranges
// and backs each range with its own CoconutForest in its own directory
// (which may live on its own device). A crash-safe text manifest
// (src/store/manifest.h) pins the shard count and boundaries so a store
// reopened after a restart routes keys identically.
//
// Writes route by invSAX key to the owning shard; batch inserts are split
// per shard and the sub-batches staged concurrently on the shared
// ThreadPool (the calling thread works one sub-batch itself, so a saturated
// pool degrades to serial execution, never deadlock). Each shard compacts
// independently — CompactAll runs the per-shard compactions concurrently,
// and within one shard the runs-merge is itself chunked over the pool
// (CoconutForest::MergeRunsParallel) — the two levels of parallel
// compaction.
//
// Cross-shard batches are ATOMIC and crash-consistent (the group-commit
// epoch protocol, see src/store/README.md and journal.h): a multi-shard
// InsertBatch is stamped with a store-wide epoch, journaled before any
// shard is touched, staged durably per shard, journal-committed, and only
// then published — all shards' slices become visible in one step, so a
// concurrent snapshot never sees half a batch, and a crash at any point
// reopens to exactly the prefix of fully-committed epochs (torn shard
// tails are truncated on recovery). Single-shard batches skip the journal
// entirely: one raw-file append is already atomic on recovery.
//
// Queries take a store snapshot (one CoconutForest::Snapshot per shard) and
// fan out across shards; per-shard k-NN answers merge through KnnCollector.
// Shards partition the data, so the merged per-shard exact top-k is the
// global top-k — the same argument that makes the forest's per-run merge
// exact. A QueryEngine batch takes ONE store snapshot up front, so snapshot
// isolation holds across the whole store: every query in the batch sees the
// same point-in-time state on every shard, and only fully-committed
// cross-shard epochs.
//
// Offsets: each shard has its own raw dataset file, so a neighbor's
// raw-file offset is only meaningful within its shard. Store-level results
// carry an *encoded* offset with the shard id in the high bits
// (EncodeOffset/DecodeOffset); a single-shard store encodes to the plain
// local offset, bit-for-bit compatible with an unsharded forest.
#ifndef COCONUT_STORE_SHARDED_STORE_H_
#define COCONUT_STORE_SHARDED_STORE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/context.h"
#include "src/common/status.h"
#include "src/common/sync.h"
#include "src/common/zkey.h"
#include "src/core/coconut_forest.h"
#include "src/exec/thread_pool.h"
#include "src/series/series.h"
#include "src/store/journal.h"
#include "src/store/manifest.h"

namespace coconut {

// Fault injection: the cross-shard commit protocol exposes one failpoint
// site per kill point, in protocol order (src/common/failpoint.h; arm with
// Failpoints::Default().Arm*/ArmCallback or COCONUT_FAILPOINTS):
//
//   store.commit.after_begin            begin record durable, no shard
//                                       touched yet
//   store.commit.shard_stage            about to stage one shard's
//                                       sub-batch (arg = shard id); failing
//                                       here leaves OTHER shards' slices on
//                                       disk — torn-batch recovery rolls
//                                       them back
//   store.commit.before_journal_commit  every shard durable, commit record
//                                       not yet written
//   store.commit.after_journal_commit   commit record durable, nothing
//                                       published; the batch must SURVIVE
//                                       reopen
//
// A failure at any site fails the batch and poisons the store until it is
// reopened, exactly as a real I/O error at that point would.

struct StoreOptions {
  /// Per-shard forest configuration (memtable size, run threshold, tree).
  ForestOptions forest;
  /// Shards to create for a NEW store. Reopening an existing store always
  /// uses the shard count and boundaries pinned in its manifest.
  size_t num_shards = 4;

  /// Size-triggered journal checkpointing: after a cross-shard commit, if
  /// the JOURNAL has grown past this many bytes the store re-commits the
  /// manifest (which durably records the committed-epoch floor) and resets
  /// the journal, bounding both its size and the next open's replay.
  /// 0 disables the trigger (Flush/CompactAll still checkpoint).
  uint64_t journal_checkpoint_bytes = 4u << 20;

  Status Validate() const {
    COCONUT_RETURN_IF_ERROR(forest.Validate());
    if (num_shards == 0 || num_shards > kMaxShards) {
      return Status::InvalidArgument("num_shards must be in [1, 4096]");
    }
    return Status::OK();
  }

  static constexpr size_t kMaxShards = 4096;
};

class ShardedStore {
 public:
  /// Bits of an encoded offset reserved for the local raw-file offset; the
  /// shard id lives in the bits above (48 bits ≈ 256 TiB per shard file).
  static constexpr unsigned kShardOffsetBits = 48;

  /// A point-in-time view of the whole store: one forest snapshot per
  /// shard, indexed by shard id. Cheap to copy; queries against it never
  /// block, and are never affected by, concurrent writers. Captured under
  /// the store's visibility lock, so it exposes whole cross-shard epochs
  /// only — never half a batch.
  struct Snapshot {
    std::vector<CoconutForest::Snapshot> shards;
    /// Last cross-shard epoch committed (and published) at capture time.
    uint64_t epoch = 0;
    /// True when at least one shard was quarantined at capture time: the
    /// snapshot covers only the healthy shards (quarantined entries appear
    /// empty) and results computed from it carry the same flag.
    bool degraded = false;

    uint64_t num_entries() const {
      uint64_t total = 0;
      for (const auto& s : shards) total += s.num_entries();
      return total;
    }
  };

  /// Opens (creating if needed) the store rooted at `dir`. A new store is
  /// partitioned into options.num_shards even key ranges and its manifest
  /// committed before any data is written; an existing store is reopened
  /// from its manifest (each shard forest recovers its runs from the
  /// shard's raw dataset file).
  ///
  /// Degraded reopen: a shard whose raw file fails its checksum scan is
  /// first salvaged (truncated back to the longest checksum-valid prefix,
  /// CoconutForest::SalvageRaw) and retried; if it still cannot open, the
  /// shard is QUARANTINED instead of failing the whole open: reads continue
  /// over the healthy shards with results flagged `degraded`, and writes
  /// are refused until the operator repairs and reopens. Store-level
  /// corruption (manifest, journal interior) still fails the open — there
  /// is no healthy subset to serve.
  static Status Open(const std::string& dir, const StoreOptions& options,
                     std::unique_ptr<ShardedStore>* out);

  /// Routes one series to its owning shard. Store-level writers are
  /// serialized by the commit lock.
  Status Insert(const Series& series);

  /// Splits the batch by invSAX key and stages the per-shard sub-batches
  /// concurrently on the shared pool. A batch touching a single shard
  /// (always true for 1-shard stores) takes the journal-free fast path; a
  /// multi-shard batch commits atomically under the epoch protocol. OK
  /// means the whole batch is committed and published (deferred
  /// compaction hiccups never fail a committed batch — they resurface
  /// from the next Flush/CompactAll); on a torn commit the returned
  /// Status names every failed shard and the store refuses further writes
  /// until reopened (recovery rolls the torn epoch back).
  ///
  /// `ctx` bounds the batch (default: no deadline). The deadline is polled
  /// at the commit protocol's stage boundaries; where the abort lands
  /// decides the cleanup (see docs/ROBUSTNESS.md): before the epoch's
  /// begin record is journaled the batch returns DeadlineExceeded with no
  /// side effects; between begin and the journal commit record the abort
  /// rides the torn-epoch machinery (store poisons, reopen rolls the epoch
  /// back — nothing is ever published); after the commit record the epoch
  /// is durable, so publication proceeds and the batch reports OK.
  Status InsertBatch(const std::vector<Series>& batch,
                     const Context& ctx = Context::Background());

  /// Flushes every shard's memtable (concurrently) and re-commits the
  /// manifest with fresh advisory entry counts. `ctx` is polled per shard:
  /// a deadline abort between shards leaves some memtables flushed and
  /// others not (safe — flushes are independently crash-consistent) and
  /// skips the manifest re-commit.
  Status Flush(const Context& ctx = Context::Background());

  /// Compacts every shard to a single run. Shards compact concurrently and
  /// each shard's runs-merge is itself parallel — see CoconutForest. `ctx`
  /// is polled per shard, like Flush.
  Status CompactAll(const Context& ctx = Context::Background());

  /// Captures a store-wide snapshot (one per-shard snapshot each).
  Snapshot GetSnapshot() const;

  /// Exact k nearest neighbors across every shard. Neighbor offsets are
  /// encoded with EncodeOffset.
  Status ExactSearch(const Value* query, SearchResult* result,
                     size_t k = 1) const;
  Status ExactSearch(const Snapshot& snapshot, const Value* query,
                     SearchResult* result, size_t k = 1,
                     CoconutTree::QueryScratch* scratch = nullptr) const;

  /// Approximate search: best k candidates across every shard's memtable
  /// and target leaf windows.
  Status ApproxSearch(const Value* query, size_t num_leaves,
                      SearchResult* result, size_t k = 1) const;
  Status ApproxSearch(const Snapshot& snapshot, const Value* query,
                      size_t num_leaves, SearchResult* result, size_t k = 1,
                      CoconutTree::QueryScratch* scratch = nullptr) const;

  /// Merges per-shard k-NN answers (indexed by shard id) into one result,
  /// retagging neighbor offsets with the shard id. Exposed for QueryEngine.
  static void MergeShardResults(const std::vector<SearchResult>& per_shard,
                                size_t k, SearchResult* out);

  static uint64_t EncodeOffset(size_t shard, uint64_t local_offset) {
    return (static_cast<uint64_t>(shard) << kShardOffsetBits) | local_offset;
  }
  static void DecodeOffset(uint64_t encoded, size_t* shard,
                           uint64_t* local_offset) {
    *shard = static_cast<size_t>(encoded >> kShardOffsetBits);
    *local_offset = encoded & ((uint64_t{1} << kShardOffsetBits) - 1);
  }

  /// Shard id owning `key` (binary search over the manifest boundaries).
  size_t ShardForKey(const ZKey& key) const;
  /// Shard id owning `series` (summarize, then route).
  size_t ShardForSeries(const Series& series) const;

  /// Write-path health: OK while the store accepts writes, or the poison
  /// status after a torn cross-shard commit / the quarantine status while
  /// shards are quarantined (every write is refused until the store is
  /// reopened). The admin server's /healthz maps a non-OK result to HTTP
  /// 503 — except quarantine, which it reports as 200 "degraded" via
  /// QuarantinedShards (reads still work).
  Status WriteHealth() const;

  /// Number of quarantined shards; when non-zero and `detail` is non-null,
  /// fills it with a human-readable summary (shard ids and causes).
  size_t QuarantinedShards(std::string* detail = nullptr) const;

  size_t num_shards() const { return shards_.size(); }
  /// Total entries across shards (direct per-shard sums under the
  /// visibility lock — no store snapshot is materialized).
  uint64_t num_entries() const;
  /// Last cross-shard epoch committed and published.
  uint64_t committed_epoch() const {
    return committed_epoch_.load(std::memory_order_acquire);
  }
  const CoconutForest& shard(size_t i) const { return *shards_[i]; }
  /// The shard's raw dataset file (local offsets point into this).
  const std::string& shard_raw_path(size_t i) const { return raw_paths_[i]; }
  const StoreManifest& manifest() const { return manifest_; }

 private:
  ShardedStore() = default;

  /// Runs `fn(shard)` for every shard concurrently on the pool (the caller
  /// executes one shard itself) and returns the first failure.
  Status ForEachShardParallel(
      const std::function<Status(size_t)>& fn) const;
  /// Re-commits the manifest with current advisory entry counts and the
  /// last committed epoch, then checkpoints (resets) the journal — its
  /// records are all obsolete once the manifest holds the epoch floor.
  /// The store must not be poisoned.
  Status CommitManifestLocked() REQUIRES(commit_mu_);
  /// Journal replay at Open: truncates torn shard tails (uncommitted
  /// epochs, torn single-series writes) and advances the epoch floor.
  static Status RecoverFromJournal(const std::string& dir,
                                   StoreManifest* manifest,
                                   uint64_t* next_epoch);
  /// The atomic multi-shard commit (epoch + journal + staged publication).
  Status CommitCrossShardLocked(std::vector<std::vector<Series>> buckets,
                                const Context& ctx) REQUIRES(commit_mu_);
  /// Marks shard `i` quarantined with `cause` (idempotent; const because
  /// the read path quarantines on checksum failure) and updates the
  /// store.shard.quarantined gauge.
  void QuarantineShard(size_t i, const Status& cause) const;
  bool IsQuarantined(size_t i) const EXCLUDES(quarantine_mu_) {
    MutexLock lock(&quarantine_mu_);
    return quarantined_[i];
  }
  /// Non-OK while any shard is quarantined (writes are refused: a write
  /// routed to a quarantined shard would silently drop, and rebalancing is
  /// an operator decision).
  Status QuarantineWriteCheck() const;
  /// Marks the store write-poisoned after a torn commit (writers are
  /// serialized, so only a commit_mu_ holder ever poisons). Returns `cause`
  /// for convenient chaining.
  Status Poison(const Status& cause) REQUIRES(commit_mu_);
  /// Current poison status under its own innermost lock, so health probes
  /// (and the write entry points' pre-checks) never wait behind an
  /// in-flight epoch commit holding commit_mu_.
  Status PoisonStatus() const EXCLUDES(poison_mu_) {
    MutexLock lock(&poison_mu_);
    return poison_;
  }

  StoreOptions options_;
  std::string dir_;
  StoreManifest manifest_;
  ThreadPool* pool_ = nullptr;
  std::vector<std::unique_ptr<CoconutForest>> shards_;
  std::vector<std::string> raw_paths_;
  std::unique_ptr<CommitJournal> journal_;

  // Store-level writers (Insert/InsertBatch/Flush/CompactAll) serialize on
  // commit_mu_: epochs are assigned, journaled, staged, and published in
  // order (the group-commit discipline — batching concurrent writers into
  // one epoch is the named follow-on). The manifest is also re-committed
  // under this lock.
  mutable Mutex commit_mu_;
  // Next epoch to assign; always above every epoch ever journaled, even
  // across reopens.
  uint64_t next_epoch_ GUARDED_BY(commit_mu_) = 1;
  // Set after a torn cross-shard commit: every later write returns this
  // status until the store is reopened (recovery rolls the epoch back).
  // Guarded by its own innermost mutex (ordering: commit_mu_ before
  // poison_mu_) so WriteHealth stays responsive while a long epoch commit
  // holds commit_mu_ — a health probe must report, not hang.
  mutable Mutex poison_mu_;
  Status poison_ GUARDED_BY(poison_mu_);
  // Degraded-mode state: per-shard quarantine flags plus their causes.
  // Innermost like poison_mu_ (never held across I/O or other locks);
  // quarantined_count_ mirrors the flag count so snapshot capture and the
  // search hot path can check for degradation without the mutex.
  mutable Mutex quarantine_mu_;
  mutable std::vector<bool> quarantined_ GUARDED_BY(quarantine_mu_);
  mutable std::vector<std::string> quarantine_causes_
      GUARDED_BY(quarantine_mu_);
  mutable std::atomic<size_t> quarantined_count_{0};
  // Last epoch committed AND published (atomic so snapshots can stamp
  // themselves without taking commit_mu_).
  std::atomic<uint64_t> committed_epoch_{0};
  // Publication/visibility lock: multi-shard publications hold it
  // exclusively (short, no I/O), snapshots and counts hold it shared — a
  // snapshot can never observe half an epoch.
  mutable SharedMutex visibility_mu_;
};

}  // namespace coconut

#endif  // COCONUT_STORE_SHARDED_STORE_H_
