// Unified failpoint registry: named fault-injection sites compiled into the
// production binary, free when disarmed (one relaxed atomic load), armed
// programmatically by tests or via the COCONUT_FAILPOINTS environment
// variable. This replaces ad-hoc per-subsystem fault hooks (the old
// StoreOptions::commit_fault_hook) with one mechanism every layer shares:
// the I/O layer (src/io/file.cc) consults write-site failpoints so every
// subsystem above it gets error/torn-write/bit-flip injection for free, and
// higher layers add protocol-point sites (e.g. "store.commit.after_begin").
//
// Site naming: lowercase dotted paths mirroring the metric scheme —
// "io.file.write", "store.journal.append", "store.commit.shard_stage".
//
// Programmatic use (tests):
//
//   Failpoints::Default().ArmError("store.commit.after_begin");
//   ...
//   Failpoints::Default().DisarmAll();   // or use FailpointGuard (RAII)
//
// Environment use (whole-process):
//
//   COCONUT_FAILPOINTS="io.file.write=error:0.01,io.file.read=delay20"
//
// where each clause is site=kind[:probability], kind one of `error`,
// `torn`, `bitflip`, or `delay<ms>`. Probability defaults to 1.
//
// Hit sites are declared with the FAILPOINT macro:
//
//   Status Append(...) {
//     FAILPOINT("store.journal.append");
//     ...
//   }
#ifndef COCONUT_COMMON_FAILPOINT_H_
#define COCONUT_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <random>
#include <string>

#include "src/common/status.h"
#include "src/common/sync.h"

namespace coconut {

class Failpoints {
 public:
  enum class Kind {
    kError,     // return Status::IOError("failpoint: <site>")
    kTornWrite, // write sites: persist a random prefix, then fail
    kBitFlip,   // write sites: flip one random bit, then SUCCEED (silent)
    kDelayMs,   // sleep delay_ms, then continue
    kCallback,  // invoke callback(arg); non-OK is the injected failure
  };

  struct Action {
    Kind kind = Kind::kError;
    double probability = 1.0;  // chance each hit fires, in [0, 1]
    int remaining = -1;        // fire at most this many times; -1 = unlimited
    int delay_ms = 0;          // kDelayMs only
    // kCallback only. Invoked OUTSIDE the registry lock (it may block, e.g.
    // to park a commit mid-protocol while a test probes health).
    std::function<Status(size_t arg)> callback;
  };

  /// How a write site should mutilate the buffer it was about to persist.
  /// Filled by HitWrite; interpreted by WritableFile::WriteAt.
  struct WriteFault {
    bool torn = false;       // persist only torn_bytes, then report failure
    size_t torn_bytes = 0;
    bool bit_flip = false;   // flip bit flip_index, persist fully, succeed
    size_t flip_index = 0;   // bit index into the buffer
  };

  /// The process-wide registry (never destroyed). First use parses
  /// COCONUT_FAILPOINTS.
  static Failpoints& Default();

  void Arm(const std::string& site, Action action);
  void ArmError(const std::string& site, double probability = 1.0);
  void ArmCallback(const std::string& site,
                   std::function<Status(size_t)> callback);
  void Disarm(const std::string& site);
  void DisarmAll();

  /// Times `site` fired (injected a fault), for test assertions.
  uint64_t HitCount(const std::string& site) const;

  /// Evaluates a plain site. Returns the injected error (or delays, or runs
  /// the armed callback) when armed and the probability roll fires; OK
  /// otherwise. `arg` carries site-specific context (e.g. a shard index)
  /// through to callbacks. Disarmed fast path: one relaxed load.
  Status Hit(const char* site, size_t arg = static_cast<size_t>(-1));

  /// Evaluates a write site about to persist `n` bytes. kError/kDelayMs/
  /// kCallback behave as Hit(); kTornWrite/kBitFlip fill `*fault` with the
  /// mutation the caller must apply to its buffer (sized against `n`) and
  /// return OK — the caller then persists the mutilated write.
  Status HitWrite(const char* site, size_t n, WriteFault* fault);

 private:
  struct Entry {
    Action action;
    uint64_t hits = 0;
  };

  Failpoints();

  void ArmLocked(const std::string& site, Action action) REQUIRES(mu_);
  /// nullptr when the site should not fire this time. Bumps hits and
  /// decrements remaining when it does fire.
  const Entry* Roll(const std::string& site) REQUIRES(mu_);

  // Armed-site count for the disarmed fast path: Hit loads it relaxed and
  // returns immediately when zero, so shipping the macros in hot I/O paths
  // costs one load + branch.
  std::atomic<int> armed_count_{0};
  mutable Mutex mu_;
  std::map<std::string, Entry> sites_ GUARDED_BY(mu_);
  std::mt19937_64 rng_ GUARDED_BY(mu_){0x5eedf41155eedull};
};

/// RAII disarm-all, so a test that fails mid-body cannot leak armed sites
/// into the next test.
class FailpointGuard {
 public:
  FailpointGuard() = default;
  FailpointGuard(const FailpointGuard&) = delete;
  FailpointGuard& operator=(const FailpointGuard&) = delete;
  ~FailpointGuard() { Failpoints::Default().DisarmAll(); }
};

/// Declares a failpoint site: returns the injected Status when armed.
#define FAILPOINT(site) \
  COCONUT_RETURN_IF_ERROR(::coconut::Failpoints::Default().Hit(site))

/// Site with a context argument (e.g. shard index) passed to callbacks.
#define FAILPOINT_ARG(site, arg) \
  COCONUT_RETURN_IF_ERROR(::coconut::Failpoints::Default().Hit(site, arg))

}  // namespace coconut

#endif  // COCONUT_COMMON_FAILPOINT_H_
