// Figure 10b: complete workload (construction + 100 exact queries) on the
// astronomy-sim dataset under shrinking memory budgets.
#include "bench/workload_fixture.h"

int main() {
  coconut::bench::Banner("Figure 10b",
                         "complete workload on the astronomy-sim dataset");
  coconut::bench::RunWorkload(coconut::DatasetKind::kAstronomy, "Fig 10b", 41);
  return 0;
}
