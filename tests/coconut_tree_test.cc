// Coconut-Tree: structural invariants (balance, fill, sorted contiguous
// leaves), query correctness (exact search == brute force on every dataset
// family, materialized and not), persistence, and batch updates.
#include "src/core/coconut_tree.h"

#include <algorithm>
#include <cmath>

#include "gtest/gtest.h"
#include "src/io/io_stats.h"
#include "src/series/distance.h"
#include "src/summary/invsax.h"
#include "tests/test_util.h"

namespace coconut {
namespace {

using testing::BruteForceNn;
using testing::MakeDatasetFile;
using testing::ScratchDir;

struct TreeCase {
  DatasetKind kind;
  bool materialized;
  size_t count;
  size_t length;
  size_t leaf_capacity;
};

class CoconutTreeTest : public ::testing::TestWithParam<TreeCase> {
 protected:
  CoconutOptions MakeOptions(const TreeCase& c, const ScratchDir& dir) {
    CoconutOptions opts;
    opts.summary.series_length = c.length;
    opts.summary.segments = 16;
    opts.summary.cardinality_bits = 8;
    opts.leaf_capacity = c.leaf_capacity;
    opts.materialized = c.materialized;
    opts.memory_budget_bytes = 8 << 20;
    opts.tmp_dir = dir.path();
    return opts;
  }
};

TEST_P(CoconutTreeTest, ExactSearchEqualsBruteForce) {
  const TreeCase& c = GetParam();
  ScratchDir dir;
  const std::string raw = dir.File("data.bin");
  const std::string index = dir.File("index.ctree");
  std::vector<Series> data = MakeDatasetFile(raw, c.kind, c.count, c.length, 5);

  CoconutOptions opts = MakeOptions(c, dir);
  ASSERT_OK(CoconutTree::Build(raw, index, opts));
  std::unique_ptr<CoconutTree> tree;
  ASSERT_OK(CoconutTree::Open(index, raw, &tree));
  ASSERT_EQ(tree->num_entries(), c.count);

  auto qgen = MakeGenerator(c.kind, c.length, 777);
  for (int q = 0; q < 20; ++q) {
    const Series query = qgen->NextSeries();
    const auto [bf_idx, bf_dist] = BruteForceNn(data, query);
    SearchResult result;
    ASSERT_OK(tree->ExactSearch(query.data(), 1, &result));
    EXPECT_NEAR(result.distance, bf_dist, 1e-4)
        << "query " << q << ": exact search disagrees with brute force";
    EXPECT_GT(result.visited_records, 0u);
    EXPECT_LE(result.visited_records, c.count + c.leaf_capacity);
  }
}

TEST_P(CoconutTreeTest, ApproxNeverBeatsExactAndIsValid) {
  const TreeCase& c = GetParam();
  ScratchDir dir;
  const std::string raw = dir.File("data.bin");
  const std::string index = dir.File("index.ctree");
  std::vector<Series> data = MakeDatasetFile(raw, c.kind, c.count, c.length, 6);

  CoconutOptions opts = MakeOptions(c, dir);
  ASSERT_OK(CoconutTree::Build(raw, index, opts));
  std::unique_ptr<CoconutTree> tree;
  ASSERT_OK(CoconutTree::Open(index, raw, &tree));

  auto qgen = MakeGenerator(c.kind, c.length, 888);
  for (int q = 0; q < 10; ++q) {
    const Series query = qgen->NextSeries();
    SearchResult approx, exact;
    ASSERT_OK(tree->ApproxSearch(query.data(), 1, &approx));
    ASSERT_OK(tree->ExactSearch(query.data(), 1, &exact));
    // The approximate answer is a real series, so its distance is an upper
    // bound of the exact distance.
    EXPECT_GE(approx.distance + 1e-6, exact.distance);
    // And it must equal the true distance of the series it points at.
    const size_t idx = approx.offset / (c.length * sizeof(Value));
    ASSERT_LT(idx, data.size());
    const double d = Euclidean(data[idx].data(), query.data(), c.length);
    EXPECT_NEAR(approx.distance, d, 1e-4);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, CoconutTreeTest,
    ::testing::Values(
        TreeCase{DatasetKind::kRandomWalk, false, 3000, 64, 128},
        TreeCase{DatasetKind::kRandomWalk, true, 3000, 64, 128},
        TreeCase{DatasetKind::kSeismic, false, 2000, 64, 100},
        TreeCase{DatasetKind::kSeismic, true, 2000, 64, 100},
        TreeCase{DatasetKind::kAstronomy, false, 2000, 64, 100},
        TreeCase{DatasetKind::kAstronomy, true, 2000, 64, 100},
        // Single leaf and exactly-full-leaf boundary cases.
        TreeCase{DatasetKind::kRandomWalk, false, 100, 64, 128},
        TreeCase{DatasetKind::kRandomWalk, false, 256, 64, 128},
        // Deep tree: tiny leaves force multiple internal levels.
        TreeCase{DatasetKind::kRandomWalk, false, 4000, 32, 8}),
    [](const auto& info) {
      const TreeCase& c = info.param;
      return std::string(DatasetKindName(c.kind)) +
             (c.materialized ? "_mat_" : "_nonmat_") +
             std::to_string(c.count) + "x" + std::to_string(c.length) +
             "_leaf" + std::to_string(c.leaf_capacity);
    });

class CoconutTreeStructureTest : public ::testing::Test {
 protected:
  void BuildSmall(size_t count, size_t leaf_capacity, double fill,
                  bool materialized = false) {
    raw_ = dir_.File("data.bin");
    index_ = dir_.File("index.ctree");
    data_ = MakeDatasetFile(raw_, DatasetKind::kRandomWalk, count, 64, 9);
    opts_.summary.series_length = 64;
    opts_.summary.segments = 16;
    opts_.leaf_capacity = leaf_capacity;
    opts_.fill_factor = fill;
    opts_.materialized = materialized;
    opts_.tmp_dir = dir_.path();
    ASSERT_OK(CoconutTree::Build(raw_, index_, opts_));
    ASSERT_OK(CoconutTree::Open(index_, raw_, &tree_));
  }

  ScratchDir dir_;
  std::string raw_, index_;
  std::vector<Series> data_;
  CoconutOptions opts_;
  std::unique_ptr<CoconutTree> tree_;
};

TEST_F(CoconutTreeStructureTest, LeavesAreGloballySortedAndDense) {
  BuildSmall(5000, 100, 1.0);
  EXPECT_EQ(tree_->num_leaves(), 50u);
  EXPECT_DOUBLE_EQ(tree_->AvgLeafFill(), 1.0);
  ZKey prev;
  bool first = true;
  uint64_t total = 0;
  std::vector<bool> seen(data_.size(), false);
  for (uint64_t lf = 0; lf < tree_->num_leaves(); ++lf) {
    std::vector<ZKey> keys;
    std::vector<uint64_t> offsets;
    ASSERT_OK(tree_->ReadLeafEntries(lf, &keys, &offsets));
    for (size_t i = 0; i < keys.size(); ++i) {
      if (!first) {
        EXPECT_TRUE(prev <= keys[i]) << "leaf " << lf;
      }
      prev = keys[i];
      first = false;
      const size_t idx = offsets[i] / (64 * sizeof(Value));
      ASSERT_LT(idx, seen.size());
      EXPECT_FALSE(seen[idx]) << "offset appears twice";
      seen[idx] = true;
      // The stored key must be the invSAX of the series it points at.
      EXPECT_EQ(keys[i], InvSaxFromSeries(data_[idx].data(), opts_.summary));
      ++total;
    }
  }
  EXPECT_EQ(total, data_.size());
}

TEST_F(CoconutTreeStructureTest, FillFactorControlsPacking) {
  BuildSmall(1000, 100, 0.5);
  // 1000 entries at 50 per leaf.
  EXPECT_EQ(tree_->num_leaves(), 20u);
  EXPECT_NEAR(tree_->AvgLeafFill(), 0.5, 1e-9);
}

TEST_F(CoconutTreeStructureTest, HeightGrowsLogarithmically) {
  BuildSmall(4000, 4, 1.0);  // 1000 leaves, fanout ~102 -> 2 internal levels
  EXPECT_EQ(tree_->num_leaves(), 1000u);
  EXPECT_EQ(tree_->height(), 3u);
}

TEST_F(CoconutTreeStructureTest, SingleLeafTreeHasNoInternalLevels) {
  BuildSmall(50, 100, 1.0);
  EXPECT_EQ(tree_->num_leaves(), 1u);
  EXPECT_EQ(tree_->height(), 1u);
}

TEST_F(CoconutTreeStructureTest, ReopenedIndexAnswersQueries) {
  BuildSmall(2000, 100, 1.0);
  tree_.reset();
  std::unique_ptr<CoconutTree> reopened;
  ASSERT_OK(CoconutTree::Open(index_, raw_, &reopened));
  auto qgen = MakeGenerator(DatasetKind::kRandomWalk, 64, 11);
  const Series query = qgen->NextSeries();
  const auto [bf_idx, bf_dist] = BruteForceNn(data_, query);
  SearchResult result;
  ASSERT_OK(reopened->ExactSearch(query.data(), 1, &result));
  EXPECT_NEAR(result.distance, bf_dist, 1e-4);
}

TEST_F(CoconutTreeStructureTest, BuildIsSequentialIo) {
  const IoSnapshot before = IoStats::Instance().Snapshot();
  BuildSmall(5000, 100, 1.0);
  const IoSnapshot s = IoStats::Instance().Snapshot() - before;
  // Bottom-up bulk loading must be nearly all sequential I/O: allow only a
  // handful of random accesses (superblock rewrite, file opens).
  EXPECT_LE(s.random_write_ops, 5u) << s.ToString();
  EXPECT_GE(s.write_ops, 1u);
}

TEST_F(CoconutTreeStructureTest, MergeBatchKeepsExactness) {
  BuildSmall(1500, 100, 1.0);
  auto gen = MakeGenerator(DatasetKind::kRandomWalk, 64, 33);
  for (int round = 0; round < 3; ++round) {
    std::vector<Series> batch;
    for (int i = 0; i < 400; ++i) {
      batch.push_back(gen->NextSeries());
      data_.push_back(batch.back());
    }
    ASSERT_OK(tree_->MergeBatch(batch));
    ASSERT_EQ(tree_->num_entries(), data_.size());
    auto qgen = MakeGenerator(DatasetKind::kRandomWalk, 64, 100 + round);
    const Series query = qgen->NextSeries();
    const auto [bf_idx, bf_dist] = BruteForceNn(data_, query);
    SearchResult result;
    ASSERT_OK(tree_->ExactSearch(query.data(), 1, &result));
    EXPECT_NEAR(result.distance, bf_dist, 1e-4) << "round " << round;
  }
}

TEST_F(CoconutTreeStructureTest, MergeBatchMaterialized) {
  BuildSmall(1000, 100, 1.0, /*materialized=*/true);
  auto gen = MakeGenerator(DatasetKind::kRandomWalk, 64, 34);
  std::vector<Series> batch;
  for (int i = 0; i < 300; ++i) {
    batch.push_back(gen->NextSeries());
    data_.push_back(batch.back());
  }
  ASSERT_OK(tree_->MergeBatch(batch));
  const Series query = gen->NextSeries();
  const auto [bf_idx, bf_dist] = BruteForceNn(data_, query);
  SearchResult result;
  ASSERT_OK(tree_->ExactSearch(query.data(), 1, &result));
  EXPECT_NEAR(result.distance, bf_dist, 1e-4);
}

TEST_F(CoconutTreeStructureTest, LargerApproxRadiusNeverWorsensAnswer) {
  BuildSmall(4000, 50, 1.0);
  auto qgen = MakeGenerator(DatasetKind::kRandomWalk, 64, 55);
  for (int q = 0; q < 10; ++q) {
    const Series query = qgen->NextSeries();
    double prev = std::numeric_limits<double>::infinity();
    for (size_t r : {1, 2, 4, 10}) {
      SearchResult res;
      ASSERT_OK(tree_->ApproxSearch(query.data(), r, &res));
      EXPECT_LE(res.distance, prev + 1e-9)
          << "radius " << r << " worsened the approximate answer";
      prev = res.distance;
      EXPECT_EQ(res.leaves_read, std::min<uint64_t>(r, tree_->num_leaves()));
    }
  }
}

TEST(CoconutTreeErrors, EmptyDatasetRejected) {
  ScratchDir dir;
  const std::string raw = dir.File("empty.bin");
  {
    BufferedWriter w;
    ASSERT_OK(w.Open(raw));
    ASSERT_OK(w.Finish());
  }
  CoconutOptions opts;
  opts.summary.series_length = 64;
  opts.tmp_dir = dir.path();
  Status st = CoconutTree::Build(raw, dir.File("i.ctree"), opts);
  EXPECT_FALSE(st.ok());
}

TEST(CoconutTreeErrors, InvalidOptionsRejected) {
  ScratchDir dir;
  const std::string raw = dir.File("data.bin");
  MakeDatasetFile(raw, DatasetKind::kRandomWalk, 10, 64, 1);
  CoconutOptions opts;
  opts.summary.series_length = 64;
  opts.summary.segments = 7;  // does not divide 64
  opts.tmp_dir = dir.path();
  EXPECT_FALSE(CoconutTree::Build(raw, dir.File("i.ctree"), opts).ok());
  opts.summary.segments = 16;
  opts.fill_factor = 0.0;
  EXPECT_FALSE(CoconutTree::Build(raw, dir.File("i.ctree"), opts).ok());
}

TEST(CoconutTreeErrors, OpenMissingFileFails) {
  ScratchDir dir;
  std::unique_ptr<CoconutTree> tree;
  EXPECT_FALSE(
      CoconutTree::Open(dir.File("missing.ctree"), dir.File("m.bin"), &tree)
          .ok());
}

TEST(CoconutTreeErrors, OpenCorruptSuperblockFails) {
  ScratchDir dir;
  const std::string index = dir.File("bogus.ctree");
  {
    BufferedWriter w;
    ASSERT_OK(w.Open(index));
    std::vector<uint8_t> junk(kSuperblockBytes, 0xAB);
    ASSERT_OK(w.Write(junk.data(), junk.size()));
    ASSERT_OK(w.Finish());
  }
  const std::string raw = dir.File("data.bin");
  MakeDatasetFile(raw, DatasetKind::kRandomWalk, 10, 64, 2);
  std::unique_ptr<CoconutTree> tree;
  Status st = CoconutTree::Open(index, raw, &tree);
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
}

}  // namespace
}  // namespace coconut
