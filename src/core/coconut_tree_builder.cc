// Bulk-loading of the Coconut-Tree (paper Algorithm 3): scan the raw file
// computing sortable summarizations, external-sort (invSAX, position)
// records — with the raw payload inline for the materialized variant — and
// build the balanced tree bottom-up with sequential writes.
#include <algorithm>
#include <cstring>
#include <vector>

#include "src/common/crc32c.h"
#include "src/common/env.h"
#include "src/common/timer.h"
#include "src/core/coconut_tree.h"
#include "src/exec/thread_pool.h"
#include "src/io/buffered_io.h"
#include "src/io/io_stats.h"
#include "src/summary/invsax.h"
#include "src/summary/paa.h"
#include "src/summary/sax.h"

namespace coconut {

namespace {

/// Writes the sidecar record (SAX word + raw offset) for one leaf entry; the
/// SAX word is recovered from the interleaved key, so the sidecar costs no
/// extra information (paper §4.1: the transform is invertible).
Status AppendSidecarRecord(const uint8_t* entry, const CoconutOptions& opts,
                           std::vector<uint8_t>* scratch,
                           BufferedWriter* sidecar, uint32_t* sidecar_crc) {
  const ZKey key = DecodeLeafEntryKey(entry);
  scratch->resize(opts.summary.segments + 8);
  SaxFromInvSax(key, opts.summary, scratch->data());
  const uint64_t offset = DecodeLeafEntryOffset(entry);
  std::memcpy(scratch->data() + opts.summary.segments, &offset, 8);
  *sidecar_crc = crc32c::Extend(*sidecar_crc, scratch->data(),
                                scratch->size());
  return sidecar->Write(scratch->data(), scratch->size());
}

void AppendCrcLE(uint32_t crc, std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(crc));
  out->push_back(static_cast<uint8_t>(crc >> 8));
  out->push_back(static_cast<uint8_t>(crc >> 16));
  out->push_back(static_cast<uint8_t>(crc >> 24));
}

}  // namespace

Status CoconutTreeBuilder::BulkLoad(SortedRecordStream* stream,
                                    const CoconutOptions& options,
                                    const std::string& index_path) {
  IoComponentScope io_scope("build");
  COCONUT_RETURN_IF_ERROR(options.Validate());
  const uint64_t count = stream->count();
  if (count == 0) {
    return Status::InvalidArgument("cannot bulk-load an empty dataset");
  }
  const size_t entry_bytes = LeafEntryBytes(options);
  const size_t epl = options.EntriesPerLeaf();
  const size_t leaf_page_bytes = options.leaf_capacity * entry_bytes;
  const uint64_t num_leaves = (count + epl - 1) / epl;

  TreeSuperblock super;
  super.materialized = options.materialized ? 1 : 0;
  super.series_length = options.summary.series_length;
  super.segments = options.summary.segments;
  super.cardinality_bits = options.summary.cardinality_bits;
  super.leaf_capacity = options.leaf_capacity;
  super.entries_per_leaf = epl;
  super.entry_bytes = entry_bytes;
  super.leaf_page_bytes = leaf_page_bytes;
  super.num_entries = count;
  super.num_leaves = num_leaves;

  std::unique_ptr<WritableFile> file;
  COCONUT_RETURN_IF_ERROR(WritableFile::Create(index_path, &file));
  // Reserve the superblock page; it is rewritten once offsets are known.
  std::vector<uint8_t> zero_page(kSuperblockBytes, 0);
  COCONUT_RETURN_IF_ERROR(file->Append(zero_page.data(), zero_page.size()));

  BufferedWriter sidecar;
  COCONUT_RETURN_IF_ERROR(sidecar.Open(index_path + ".sax"));

  // --- Pass over the sorted stream: write packed leaf pages. ---
  std::vector<ZKey> leaf_first_keys;
  leaf_first_keys.reserve(num_leaves);
  std::vector<uint8_t> page(leaf_page_bytes, 0);
  std::vector<uint8_t> record(entry_bytes);
  std::vector<uint8_t> scratch;
  // v2 integrity accumulators: one CRC per on-disk leaf page (zero padding
  // included), one over the .sax sidecar, one over the internal region.
  std::vector<uint8_t> leaf_crcs;
  leaf_crcs.reserve(static_cast<size_t>(num_leaves) * 4);
  uint32_t sidecar_crc = 0;
  uint64_t emitted = 0;
  size_t in_page = 0;
  Status st;
  while (stream->Next(record.data(), &st)) {
    if (in_page == 0) {
      leaf_first_keys.push_back(DecodeLeafEntryKey(record.data()));
      std::fill(page.begin(), page.end(), 0);
    }
    std::memcpy(page.data() + in_page * entry_bytes, record.data(),
                entry_bytes);
    COCONUT_RETURN_IF_ERROR(AppendSidecarRecord(record.data(), options,
                                                &scratch, &sidecar,
                                                &sidecar_crc));
    ++in_page;
    ++emitted;
    if (in_page == epl) {
      COCONUT_RETURN_IF_ERROR(file->Append(page.data(), page.size()));
      AppendCrcLE(crc32c::Value(page.data(), page.size()), &leaf_crcs);
      in_page = 0;
    }
  }
  COCONUT_RETURN_IF_ERROR(st);
  if (in_page > 0) {
    COCONUT_RETURN_IF_ERROR(file->Append(page.data(), page.size()));
    AppendCrcLE(crc32c::Value(page.data(), page.size()), &leaf_crcs);
  }
  if (emitted != count) {
    return Status::Internal("sorted stream count mismatch");
  }
  COCONUT_RETURN_IF_ERROR(sidecar.Finish());

  // --- Build internal levels bottom-up from the collected first keys. ---
  std::vector<ZKey> level_keys = std::move(leaf_first_keys);
  uint32_t internal_crc = 0;
  size_t level = 0;
  while (level_keys.size() > 1) {
    if (level >= kMaxLevels) {
      return Status::Internal("tree exceeds maximum height");
    }
    super.level_file_offset[level] = file->size();
    const size_t nodes =
        (level_keys.size() + kInternalFanout - 1) / kInternalFanout;
    super.level_page_count[level] = nodes;
    std::vector<ZKey> next_keys;
    next_keys.reserve(nodes);
    std::vector<uint8_t> ipage(kInternalPageBytes, 0);
    for (size_t n = 0; n < nodes; ++n) {
      const size_t begin = n * kInternalFanout;
      const size_t end =
          std::min(level_keys.size(), begin + kInternalFanout);
      const uint64_t cnt = end - begin;
      std::fill(ipage.begin(), ipage.end(), 0);
      std::memcpy(ipage.data(), &cnt, 8);
      for (size_t i = begin; i < end; ++i) {
        uint8_t* slot = ipage.data() + 8 + (i - begin) * kInternalEntryBytes;
        level_keys[i].SerializeBE(slot);
        const uint64_t child = i;  // child index within the level below
        std::memcpy(slot + ZKey::kBytes, &child, 8);
      }
      COCONUT_RETURN_IF_ERROR(file->Append(ipage.data(), ipage.size()));
      internal_crc = crc32c::Extend(internal_crc, ipage.data(), ipage.size());
      next_keys.push_back(level_keys[begin]);
    }
    level_keys.swap(next_keys);
    ++level;
  }
  super.num_internal_levels = level;

  // --- Integrity section: per-leaf-page CRCs, then the internal-region
  // CRC. Written before the superblock is stamped, so a crash mid-build
  // leaves a file whose superblock (all zeroes) fails the magic check. ---
  super.integrity_offset = file->size();
  AppendCrcLE(internal_crc, &leaf_crcs);
  COCONUT_RETURN_IF_ERROR(file->Append(leaf_crcs.data(), leaf_crcs.size()));
  super.sidecar_crc = sidecar_crc;

  // --- Rewrite the superblock with the final metadata. ---
  super.superblock_crc = 0;
  super.superblock_crc = crc32c::Value(&super, sizeof(super));
  std::vector<uint8_t> sb(kSuperblockBytes, 0);
  std::memcpy(sb.data(), &super, sizeof(super));
  COCONUT_RETURN_IF_ERROR(file->WriteAt(0, sb.data(), sb.size()));
  return file->Close();
}

Status CoconutTreeBuilder::BuildFromDataset(const std::string& raw_path,
                                            const std::string& index_path,
                                            const CoconutOptions& options,
                                            TreeBuildStats* stats) {
  IoComponentScope io_scope("build");
  COCONUT_RETURN_IF_ERROR(options.Validate());
  TreeBuildStats local_stats;
  TreeBuildStats* out_stats = stats != nullptr ? stats : &local_stats;

  std::string tmp_dir = options.tmp_dir;
  bool owns_tmp = false;
  if (tmp_dir.empty()) {
    COCONUT_RETURN_IF_ERROR(MakeTempDir("coconut-sort-", &tmp_dir));
    owns_tmp = true;
  }

  const size_t entry_bytes = LeafEntryBytes(options);
  ExternalSortOptions sort_opts;
  sort_opts.record_bytes = entry_bytes;
  sort_opts.key_bytes = ZKey::kBytes;
  sort_opts.memory_budget_bytes = options.memory_budget_bytes;
  sort_opts.tmp_dir = tmp_dir;
  sort_opts.num_threads = options.num_threads;
  ExternalSorter sorter(sort_opts);

  // Phase 1: scan the raw file, summarize, feed the sorter (Algorithm 3
  // lines 2-11). The paper stores (invSAX, position) in the FBL; the
  // materialized variant additionally carries the raw payload so that the
  // sort phase orders the full records (Coconut-Tree-Full).
  //
  // The scan stays sequential (one reader), but summarization — PAA, SAX,
  // key interleaving, record encoding — is CPU work done per series, so it
  // runs over the shared pool in fixed-size strides. Records are handed to
  // the sorter in file order, making the output byte-identical to the
  // serial path.
  Stopwatch watch;
  {
    DatasetScanner scanner;
    COCONUT_RETURN_IF_ERROR(
        scanner.Open(raw_path, options.summary.series_length));
    const size_t series_len = options.summary.series_length;
    const uint64_t series_bytes = series_len * sizeof(Value);
    const bool serial = options.num_threads == 1;
    // Stride sized from a byte budget so the staging buffers stay a few
    // MiB even for long or materialized series; the serial path uses a
    // stride of 1 to keep memory flat.
    const size_t stride =
        serial ? 1
               : std::max<size_t>(
                     1, (size_t{8} << 20) /
                            std::max<size_t>(series_bytes, entry_bytes));
    std::vector<Value> series_buf(stride * series_len);
    std::vector<uint8_t> records(stride * entry_bytes);
    Status st;
    uint64_t position = 0;
    while (true) {
      size_t filled = 0;
      while (filled < stride &&
             scanner.Next(series_buf.data() + filled * series_len, &st)) {
        ++filled;
      }
      COCONUT_RETURN_IF_ERROR(st);
      if (filled == 0) break;
      const auto summarize = [&](uint64_t lo, uint64_t hi) {
        std::vector<double> paa(options.summary.segments);
        std::vector<uint8_t> sax(options.summary.segments);
        for (uint64_t i = lo; i < hi; ++i) {
          const Value* s = series_buf.data() + i * series_len;
          PaaTransform(s, series_len, options.summary.segments, paa.data());
          SaxFromPaa(paa.data(), options.summary, sax.data());
          const ZKey key = InvSaxFromSax(sax.data(), options.summary);
          EncodeLeafEntry(key, position + i * series_bytes,
                          options.materialized ? s : nullptr, series_len,
                          records.data() + i * entry_bytes);
        }
      };
      if (serial) {
        summarize(0, filled);
      } else {
        ThreadPool::Shared()->ParallelFor(0, filled, /*grain=*/0, summarize);
      }
      COCONUT_RETURN_IF_ERROR(sorter.AddBatch(records.data(), filled));
      position += filled * series_bytes;
      if (filled < stride) break;  // scanner exhausted
    }
  }
  out_stats->summarize_seconds = watch.ElapsedSeconds();

  // Phase 2: external sort (Algorithm 3 line 12).
  watch.Restart();
  std::unique_ptr<SortedRecordStream> sorted;
  COCONUT_RETURN_IF_ERROR(sorter.Finish(&sorted));
  out_stats->sort_seconds = watch.ElapsedSeconds();
  out_stats->spilled_runs = sorter.spilled_runs();
  out_stats->num_entries = sorted->count();

  // Phase 3: bottom-up bulk load (Algorithm 3 line 13).
  watch.Restart();
  Status st = BulkLoad(sorted.get(), options, index_path);
  out_stats->load_seconds = watch.ElapsedSeconds();

  if (owns_tmp) (void)RemoveAll(tmp_dir);
  return st;
}

Status CoconutTree::Build(const std::string& raw_path,
                          const std::string& index_path,
                          const CoconutOptions& options,
                          TreeBuildStats* stats) {
  return CoconutTreeBuilder::BuildFromDataset(raw_path, index_path, options,
                                              stats);
}

}  // namespace coconut
