// iSAX 2.0 (Camerra et al., ICDM 2010) — the top-down insertion baseline the
// paper builds its analysis around (§2, §3.1, Figure 3).
//
// Every node is identified by one symbol prefix per segment. The root fans
// out on the first bit of every segment; an internal node splits one segment
// by one additional bit (the segment whose next unprefixed bit divides the
// resident series most evenly). Inserts are buffered in memory (the FBL);
// when the buffer budget is exhausted, all buffers are flushed: each touched
// leaf is re-read from disk, merged, and re-written — the O(N) random-I/O
// pattern the paper contrasts with bulk-loading. Leaf pages are allocated
// append-first-fit, so sibling leaves produced by splits are NOT contiguous.
//
// The index is also the substrate for ADS/ADS+/ADSFull (src/baselines/ads).
#ifndef COCONUT_BASELINES_ISAX2_ISAX2_INDEX_H_
#define COCONUT_BASELINES_ISAX2_ISAX2_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/core/coconut_options.h"
#include "src/io/file.h"
#include "src/series/dataset.h"
#include "src/series/series.h"

namespace coconut {

class KnnCollector;

struct Isax2Options {
  SummaryOptions summary;
  size_t leaf_capacity = 2000;
  /// Materialized leaves store the raw series inline.
  bool materialized = false;
  /// FBL buffer budget; exceeding it flushes every buffered leaf.
  size_t memory_budget_bytes = 256ull * 1024 * 1024;
  unsigned num_threads = 0;

  unsigned EffectiveThreads() const {
    CoconutOptions tmp;
    tmp.num_threads = num_threads;
    return tmp.EffectiveThreads();
  }

  Status Validate() const {
    COCONUT_RETURN_IF_ERROR(summary.Validate());
    if (leaf_capacity == 0) {
      return Status::InvalidArgument("leaf_capacity must be > 0");
    }
    return Status::OK();
  }
};

class Isax2Index {
 public:
  /// Creates an empty index whose leaf pages live in `storage_path`;
  /// `raw_path` is the dataset file offsets refer to.
  static Status Create(const Isax2Options& options,
                       const std::string& storage_path,
                       const std::string& raw_path,
                       std::unique_ptr<Isax2Index>* out);

  /// Inserts one series (top-down). `offset` is its byte position in the
  /// raw file. The series payload is stored only when materialized.
  Status Insert(const Value* series, uint64_t offset);

  /// Inserts by precomputed SAX word (used by ADS, which indexes
  /// summarizations without touching the raw payload).
  Status InsertSummary(const uint8_t* sax, uint64_t offset,
                       const Value* series);

  /// Flushes all FBL buffers to disk (also invoked automatically when the
  /// memory budget is exceeded, and lazily before queries).
  Status FlushAll();

  /// Approximate k-NN search: descends to the most promising leaf and
  /// computes true distances over its entries.
  Status ApproxSearch(const Value* query, SearchResult* result, size_t k = 1);

  /// Exact k-NN search: best-first traversal ordered by per-node iSAX
  /// MINDIST lower bounds, seeded by the approximate answers.
  Status ExactSearch(const Value* query, SearchResult* result, size_t k = 1);

  /// Splits the leaf containing `sax` until every piece holds at most
  /// `target` entries (ADS+ on-access refinement). No-op on small leaves.
  Status RefineLeafFor(const uint8_t* sax, size_t target);

  /// Re-opens the raw dataset file after it has grown (update workloads
  /// append new series before inserting them).
  Status ReopenRaw();

  /// Converts a non-materialized index into a materialized one by fetching
  /// every entry's raw series and rewriting all leaves into
  /// `storage_path` (the ADSFull second pass). If the raw file fits in
  /// `memory_budget_bytes` it is cached; otherwise each series is fetched
  /// with a random read, the regime where ADSFull degrades (paper Fig 8a/8d).
  Status MaterializeInto(const std::string& storage_path);

  // --- introspection ---
  uint64_t num_entries() const { return num_entries_; }
  uint64_t num_leaves() const { return num_leaves_; }
  uint64_t num_pages() const { return next_page_; }
  double AvgLeafFill() const;
  /// Bytes of leaf storage allocated on disk.
  uint64_t StorageBytes() const;
  const Isax2Options& options() const { return options_; }

  /// Entry layout: [sax: segments bytes][offset: 8][series?: 4 * length].
  size_t entry_bytes() const { return entry_bytes_; }

 private:
  Isax2Index() = default;

  struct Node {
    // Identity: full-cardinality symbols with `bits[j]` significant prefix
    // bits per segment.
    std::vector<uint8_t> symbols;
    std::vector<uint8_t> bits;
    bool is_leaf = true;
    int split_segment = -1;
    int64_t children[2] = {-1, -1};
    // Leaf state: disk pages (in allocation order) + in-memory FBL buffer.
    std::vector<int64_t> pages;
    uint64_t disk_count = 0;
    std::vector<uint8_t> buffer;  // buffered entries, entry_bytes_ each
    uint64_t total_count = 0;
    bool unsplittable = false;  // identical summaries; grows overflow pages
  };

  Status DescendToLeaf(const uint8_t* sax, int64_t* leaf_id);
  /// Lookup-only variant: returns -1 when the query's root subtree does not
  /// exist (never creates nodes; used by query-side refinement).
  int64_t FindLeaf(const uint8_t* sax) const;
  Status AppendToLeaf(int64_t leaf_id, const uint8_t* entry);
  Status FlushLeaf(int64_t leaf_id);
  Status ReadLeafEntries(const Node& node, std::vector<uint8_t>* out);
  Status WriteLeafEntries(Node* node, const std::vector<uint8_t>& entries);
  Status SplitLeaf(int64_t leaf_id, std::vector<uint8_t> entries,
                   size_t target);
  /// Best balancing segment for the given entries; -1 when unsplittable.
  int ChooseSplitSegment(const Node& node,
                         const std::vector<uint8_t>& entries) const;
  int64_t AllocNode();
  Status LeafTrueDistances(const Node& node, const Value* query,
                           KnnCollector* knn, uint64_t* visited,
                           uint64_t* pages_read);

  Isax2Options options_;
  size_t entry_bytes_ = 0;
  std::string storage_path_;
  std::unique_ptr<WritableFile> storage_write_;
  std::unique_ptr<RandomAccessFile> storage_read_;
  std::unique_ptr<RawSeriesFile> raw_file_;
  std::vector<Node> nodes_;
  // Root children keyed by the first bit of every segment (<= 32 segments).
  std::unordered_map<uint32_t, int64_t> root_children_;
  int64_t next_page_ = 0;
  uint64_t num_entries_ = 0;
  uint64_t num_leaves_ = 0;
  size_t buffered_bytes_ = 0;
  std::vector<Value> fetch_buf_;
};

}  // namespace coconut

#endif  // COCONUT_BASELINES_ISAX2_ISAX2_INDEX_H_
