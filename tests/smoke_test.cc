// Build-system smoke test; real suites live in the per-module *_test.cc files.
#include "gtest/gtest.h"
#include "src/common/status.h"

namespace coconut {
namespace {

TEST(Smoke, StatusOk) { EXPECT_TRUE(Status::OK().ok()); }

}  // namespace
}  // namespace coconut
