#include "src/obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <thread>

#include "src/obs/exit_hooks.h"
#include "src/obs/metrics.h"

namespace coconut {

namespace {

/// Common clock epoch for every event; latched on first use so timestamps
/// from different threads are comparable.
std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

/// Appends `ns` nanoseconds as a microsecond decimal ("12.345"), the unit
/// Chrome trace-event timestamps use. Avoids float formatting entirely.
void AppendMicros(std::string* out, uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  out->append(buf);
}

}  // namespace

// ---------------------------------------------------------------------------
// Ring

/// Single-producer flight-recorder ring. Every field is a relaxed atomic so
/// a concurrent drain is data-race-free; `head` is the only release/acquire
/// edge (publishes the slot written before it).
struct Tracer::Ring {
  struct Slot {
    std::atomic<const char*> name{nullptr};
    std::atomic<const char*> cat{nullptr};
    std::atomic<uint64_t> ts_ns{0};
    std::atomic<uint64_t> dur_ns{0};
    std::atomic<uint64_t> flow_id{0};
    std::atomic<uint32_t> phase{0};
  };

  explicit Ring(size_t capacity, uint32_t tid_)
      : mask(capacity - 1), tid(tid_), slots(capacity) {}

  void Append(const char* name, const char* cat, char phase, uint64_t ts_ns,
              uint64_t dur_ns, uint64_t flow_id) {
    const uint64_t h = head.load(std::memory_order_relaxed);
    Slot& s = slots[h & mask];
    s.name.store(name, std::memory_order_relaxed);
    s.cat.store(cat, std::memory_order_relaxed);
    s.ts_ns.store(ts_ns, std::memory_order_relaxed);
    s.dur_ns.store(dur_ns, std::memory_order_relaxed);
    s.flow_id.store(flow_id, std::memory_order_relaxed);
    s.phase.store(static_cast<uint32_t>(phase), std::memory_order_relaxed);
    head.store(h + 1, std::memory_order_release);
  }

  const uint64_t mask;
  const uint32_t tid;
  std::thread::id owner;  // writing thread; set once under rings_mu_
  std::atomic<uint64_t> head{0};
  std::vector<Slot> slots;
};

// ---------------------------------------------------------------------------
// Tracer

std::atomic<Tracer*> Tracer::default_instance_{nullptr};

Tracer::Tracer(size_t ring_capacity)
    : tracer_id_([]() {
        static std::atomic<uint64_t> next{1};
        return next.fetch_add(1, std::memory_order_relaxed);
      }()),
      ring_capacity_(RoundUpPow2(std::max<size_t>(ring_capacity, 8))) {
  TraceEpoch();  // pin the epoch no later than tracer construction
}

Tracer::~Tracer() = default;

uint64_t Tracer::NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - TraceEpoch())
          .count());
}

Tracer::Ring* Tracer::ThreadRing() {
  // One ring per (thread, tracer). Rings are owned by the tracer's registry
  // and never removed, so drains stay valid after the thread exits; the
  // thread_local caches the lookup (keyed by tracer_id_, not address — see
  // the field comment). The cache holds one tracer at a time: a thread
  // alternating between tracers re-finds its ring in the registry scan
  // below rather than registering duplicates.
  thread_local struct Cache {
    uint64_t tracer_id = 0;
    Ring* ring = nullptr;
  } cache;
  if (cache.tracer_id == tracer_id_) return cache.ring;
  const std::thread::id self = std::this_thread::get_id();
  std::shared_ptr<Ring> ring;
  {
    MutexLock lock(&rings_mu_);
    for (const auto& r : rings_) {
      if (r->owner == self) {
        ring = r;
        break;
      }
    }
    if (ring == nullptr) {
      ring = std::make_shared<Ring>(
          ring_capacity_, next_tid_.fetch_add(1, std::memory_order_relaxed));
      ring->owner = self;
      rings_.push_back(ring);
    }
  }
  cache.tracer_id = tracer_id_;
  cache.ring = ring.get();
  return cache.ring;
}

void Tracer::RecordComplete(const char* name, const char* cat,
                            uint64_t start_ns, uint64_t end_ns) {
  static Counter* events =
      MetricRegistry::Default().GetCounter("obs.trace.events");
  events->Increment();
  ThreadRing()->Append(name, cat, 'X', start_ns,
                       end_ns > start_ns ? end_ns - start_ns : 0, 0);
}

void Tracer::RecordFlow(char phase, const char* name, uint64_t flow_id,
                        uint64_t ts_ns) {
  static Counter* events =
      MetricRegistry::Default().GetCounter("obs.trace.events");
  events->Increment();
  ThreadRing()->Append(name, "flow", phase, ts_ns, 0, flow_id);
}

std::vector<TraceEvent> Tracer::DrainEvents(uint64_t since_ns) const {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    MutexLock lock(&rings_mu_);
    rings = rings_;
  }
  std::vector<TraceEvent> out;
  for (const auto& ring : rings) {
    const uint64_t head = ring->head.load(std::memory_order_acquire);
    const uint64_t cap = ring->mask + 1;
    const uint64_t n = std::min(head, cap);
    for (uint64_t i = head - n; i < head; ++i) {
      const Ring::Slot& s = ring->slots[i & ring->mask];
      TraceEvent e;
      e.name = s.name.load(std::memory_order_relaxed);
      e.cat = s.cat.load(std::memory_order_relaxed);
      e.ts_ns = s.ts_ns.load(std::memory_order_relaxed);
      e.dur_ns = s.dur_ns.load(std::memory_order_relaxed);
      e.flow_id = s.flow_id.load(std::memory_order_relaxed);
      e.phase = static_cast<char>(s.phase.load(std::memory_order_relaxed));
      e.tid = ring->tid;
      // Torn-slot filter: a slot overwritten mid-drain can mix two events'
      // fields; drop anything structurally impossible rather than emit it.
      if (e.name == nullptr || e.ts_ns < since_ns) continue;
      if (e.phase != 'X' && e.phase != 's' && e.phase != 'f') continue;
      out.push_back(e);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.ts_ns < b.ts_ns;
            });
  return out;
}

std::string Tracer::ToJson(uint64_t since_ns) const {
  const std::vector<TraceEvent> events = DrainEvents(since_ns);
  std::string out;
  out.reserve(events.size() * 96 + 64);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    out += e.name;  // span names are literals from our own call sites
    out += "\",\"cat\":\"";
    out += e.cat != nullptr ? e.cat : "";
    out += "\",\"ph\":\"";
    out.push_back(e.phase);
    out += "\",\"pid\":1,\"tid\":";
    out += std::to_string(e.tid);
    out += ",\"ts\":";
    AppendMicros(&out, e.ts_ns);
    if (e.phase == 'X') {
      out += ",\"dur\":";
      AppendMicros(&out, e.dur_ns);
    } else {
      // Flow events pair by id; 'f' binds to the enclosing slice ("bp":"e").
      out += ",\"id\":";
      out += std::to_string(e.flow_id);
      if (e.phase == 'f') out += ",\"bp\":\"e\"";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

std::string Tracer::CaptureWindow(uint64_t duration_ms) {
  const bool was_active = active();
  const uint64_t window_start = NowNanos();
  if (!was_active) Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  if (!was_active) Stop();
  // Spans still open when the window closed record after Stop()'s relaxed
  // store becomes visible; they are simply absent from this drain.
  return ToJson(window_start);
}

namespace {

std::string* g_trace_path = nullptr;

void DumpTraceToPath() {
  Tracer& tracer = Tracer::Default();
  tracer.Stop();
  std::FILE* f = std::fopen(g_trace_path->c_str(), "w");
  if (f == nullptr) return;
  const std::string json = tracer.ToJson();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

}  // namespace

Tracer& Tracer::Default() {
  // Leaked singleton, same lifetime rules as MetricRegistry::Default():
  // rings stay drainable through static destruction and the exit dumps.
  static Tracer* tracer = []() {
    size_t capacity = kDefaultRingCapacity;
    if (const char* env = std::getenv("COCONUT_TRACE_RING")) {
      const unsigned long v = std::strtoul(env, nullptr, 10);
      if (v > 0) capacity = static_cast<size_t>(v);
    }
    auto* t = new Tracer(capacity);
    default_instance_.store(t, std::memory_order_release);
    if (const char* env = std::getenv("COCONUT_TRACE")) {
      if (env[0] != '\0') {
        g_trace_path = new std::string(env);
        t->Start();
        RegisterExitDump(DumpTraceToPath);
      }
    }
    return t;
  }();
  return *tracer;
}

}  // namespace coconut
