// Figure 9f: number of raw records visited during exact query answering.
// Paper result: the ADS family visits more than 80K records on average, the
// Coconut family fewer than 59K — the better approximate seed translates
// directly into pruning power for SIMS.
//
// Coconut rows count through the per-query QueryTrace (the same counters
// the QueryEngine flushes into the metric registry) and cross-check the
// trace against the SearchResult counters — one source of truth, verified
// to agree. The ADS baselines predate the trace plumbing and keep the
// SearchResult fields.
#include <cstdlib>

#include "bench/bench_util.h"
#include "bench/query_fixture.h"
#include "src/core/query_scratch.h"

namespace coconut {
namespace bench {
namespace {

constexpr size_t kLength = 256;
// Leaf capacity scaled with the laptop-scale N so that leaf/N matches the
// paper's ratio (2000 leaves of 2000 entries over tens of millions).
constexpr size_t kLeafCapacity = 100;

void Run() {
  Banner("Figure 9f", "records visited during exact query answering");
  const size_t count = 40000 * Scale();
  const size_t queries = 30;
  BenchDir dir;
  const std::string raw = PrepareDataset(dir, DatasetKind::kRandomWalk, count,
                                         kLength, 22, "data.bin");
  QueryFixture f = BuildQueryFixture(dir, raw, kLength, kLeafCapacity, 64ull << 20);
  auto qs = MakeQueries(DatasetKind::kRandomWalk, queries, kLength, 2200);

  // Total visits split into the approximate seeding phase (bounded by the
  // leaf window) and the SIMS scan phase (the paper's pruning-power story).
  PrintHeader({"method", "avg_total", "avg_sims_phase", "share_of_N%"});
  auto print = [&](const char* name, uint64_t visited,
                   uint64_t approx_visited) {
    const double avg = static_cast<double>(visited) / queries;
    const double sims =
        static_cast<double>(visited - approx_visited) / queries;
    PrintRow({name, FmtDouble(avg, 1), FmtDouble(sims, 1),
              FmtDouble(100.0 * avg / count, 2)});
  };

  // Coconut rows: count via QueryTrace, cross-checked against the
  // SearchResult counters so the two surfaces can never drift apart.
  auto run_coconut = [&](const char* name, const auto& tree, size_t leaves) {
    QueryScratch scratch;
    QueryTrace trace;
    scratch.trace = &trace;
    uint64_t visited = 0;
    uint64_t approx_visited = 0;
    for (const Series& q : qs) {
      SearchResult a, r;
      trace.Clear();
      CheckOk(tree->ApproxSearch(q.data(), leaves, &a, 1, &scratch), name);
      if (trace.records_fetched != a.visited_records) {
        std::fprintf(stderr, "%s: trace/result approx mismatch %llu vs %llu\n",
                     name,
                     static_cast<unsigned long long>(trace.records_fetched),
                     static_cast<unsigned long long>(a.visited_records));
        std::exit(1);
      }
      approx_visited += trace.records_fetched;
      trace.Clear();
      CheckOk(tree->ExactSearch(q.data(), leaves, &r, 1, &scratch), name);
      if (trace.records_fetched != r.visited_records) {
        std::fprintf(stderr, "%s: trace/result exact mismatch %llu vs %llu\n",
                     name,
                     static_cast<unsigned long long>(trace.records_fetched),
                     static_cast<unsigned long long>(r.visited_records));
        std::exit(1);
      }
      visited += trace.records_fetched;
    }
    print(name, visited, approx_visited);
  };

  // ADS baselines: no trace plumbing; SearchResult counters as before.
  auto run = [&](const char* name, auto&& approx, auto&& exact) {
    uint64_t visited = 0;
    uint64_t approx_visited = 0;
    for (const Series& q : qs) {
      SearchResult a, r;
      CheckOk(approx(q, &a), name);
      approx_visited += a.visited_records;
      CheckOk(exact(q, &r), name);
      visited += r.visited_records;
    }
    print(name, visited, approx_visited);
  };

  run_coconut("CTree(1)", f.ctree, 1);
  run_coconut("CTree(10)", f.ctree, 10);
  run_coconut("CTreeFull(1)", f.ctree_full, 1);
  run(
      "ADS+",
      [&](const Series& q, SearchResult* r) {
        return f.ads_plus->ApproxSearch(q.data(), r);
      },
      [&](const Series& q, SearchResult* r) {
        return f.ads_plus->ExactSearch(q.data(), r);
      });
  run(
      "ADSFull",
      [&](const Series& q, SearchResult* r) {
        return f.ads_full->ApproxSearch(q.data(), r);
      },
      [&](const Series& q, SearchResult* r) {
        return f.ads_full->ExactSearch(q.data(), r);
      });
  std::printf(
      "\nExpectation (paper Fig 9f): the ADS family visits noticeably more\n"
      "records than the Coconut family; CTree(10) visits the fewest.\n");
}

}  // namespace
}  // namespace bench
}  // namespace coconut

int main() {
  coconut::bench::Run();
  return 0;
}
