// Reusable per-caller scratch for the index query paths. Queries allocate
// one internally when none is supplied; batch executors (QueryEngine) pass
// one per worker to avoid repeated allocation. Shared by CoconutTree and
// CoconutTrie (their leaf formats differ but the per-query buffers do not).
#ifndef COCONUT_CORE_QUERY_SCRATCH_H_
#define COCONUT_CORE_QUERY_SCRATCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/context.h"
#include "src/obs/query_trace.h"
#include "src/series/series.h"

namespace coconut {

struct QueryScratch {
  std::vector<Value> fetch;      // raw-series fetch buffer
  std::vector<uint8_t> page;     // leaf page buffer
  std::vector<double> paa;       // query PAA
  std::vector<uint8_t> sax;      // query SAX word
  std::vector<double> mindists;  // SIMS lower bounds

  /// Optional per-query trace: when set, the search paths accumulate their
  /// visited/pruned counters and stage timings into it (plain writes — the
  /// trace is owned by this query execution). Null = no tracing cost.
  QueryTrace* trace = nullptr;

  /// Optional request context: when set, the search paths poll it at leaf-
  /// fetch granularity and return DeadlineExceeded/Aborted mid-search (see
  /// docs/ROBUSTNESS.md). Null = one pointer compare per leaf visit.
  const Context* context = nullptr;

  /// Sizes the fixed-size buffers for an index's summary options once; a
  /// no-op when already sized, so the query hot loops (per-entry distance
  /// fetches in particular) never touch vector sizes.
  void Prepare(size_t series_length, size_t segments) {
    if (sized_series_length == series_length && sized_segments == segments) {
      return;
    }
    fetch.resize(series_length);
    paa.resize(segments);
    sax.resize(segments);
    sized_series_length = series_length;
    sized_segments = segments;
  }

 private:
  size_t sized_series_length = 0;
  size_t sized_segments = 0;
};

}  // namespace coconut

#endif  // COCONUT_CORE_QUERY_SCRATCH_H_
