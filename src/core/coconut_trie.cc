// Coconut-Trie construction (Algorithm 2: external sort -> insertBottomUp ->
// CompactSubtree -> contiguous leaf pages) and queries.
#include "src/core/coconut_trie.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "src/common/env.h"
#include "src/common/timer.h"
#include "src/obs/trace.h"
#include "src/core/knn.h"
#include "src/core/sims_common.h"
#include "src/core/tree_format.h"
#include "src/io/buffered_io.h"
#include "src/series/distance.h"
#include "src/sort/external_sort.h"
#include "src/summary/invsax.h"
#include "src/summary/paa.h"
#include "src/summary/sax.h"

namespace coconut {

namespace {

constexpr size_t kNodeRecordBytes = 32;
constexpr size_t kSortedEntryBytes = ZKey::kBytes + 8;  // (key, offset)

struct BuildNode {
  uint32_t depth = 0;
  bool is_leaf = false;
  uint64_t entry_begin = 0;
  uint64_t entry_count = 0;  // subtree count once aggregated
  int64_t left = -1;
  int64_t right = -1;
};

/// Distinct invSAX key and its run of entries in the sorted order.
struct KeyGroup {
  ZKey key;
  uint64_t entry_begin;
  uint64_t count;
};

/// insertBottomUp (paper Algorithm 2): builds a path-compressed binary trie
/// over the sorted distinct keys with the classic stack/LCP construction:
/// consecutive keys are joined at a split node whose depth is their longest
/// common prefix — exactly the star-masking of least significant interleaved
/// bits the paper describes (Example 4.1). Returns the root id.
int64_t InsertBottomUp(const std::vector<KeyGroup>& groups, size_t key_bits,
                       std::vector<BuildNode>* arena) {
  std::vector<int64_t> stack;
  ZKey prev_key;
  for (size_t g = 0; g < groups.size(); ++g) {
    const int64_t leaf = static_cast<int64_t>(arena->size());
    BuildNode ln;
    ln.depth = static_cast<uint32_t>(key_bits);
    ln.is_leaf = true;
    ln.entry_begin = groups[g].entry_begin;
    ln.entry_count = groups[g].count;
    arena->push_back(ln);
    if (stack.empty()) {
      stack.push_back(leaf);
      prev_key = groups[g].key;
      continue;
    }
    const size_t lcp = ZKey::CommonPrefixBits(prev_key, groups[g].key);
    // Pop the rightmost-path nodes deeper than the common prefix; the last
    // popped subtree becomes the left child of the new split node. With a
    // binary alphabet and sorted input, no existing node can sit exactly at
    // depth lcp, so a fresh internal node is always created.
    int64_t last = -1;
    while (!stack.empty() &&
           (*arena)[stack.back()].depth > static_cast<uint32_t>(lcp)) {
      last = stack.back();
      stack.pop_back();
    }
    BuildNode in;
    in.depth = static_cast<uint32_t>(lcp);
    in.left = last;
    in.right = leaf;
    const int64_t internal = static_cast<int64_t>(arena->size());
    arena->push_back(in);
    if (!stack.empty()) {
      (*arena)[stack.back()].right = internal;
    }
    stack.push_back(internal);
    stack.push_back(leaf);
    prev_key = groups[g].key;
  }
  return stack.empty() ? -1 : stack.front();
}

/// Post-order aggregation of subtree entry counts and leftmost entry_begin.
void AggregateCounts(std::vector<BuildNode>* arena, int64_t root) {
  std::vector<std::pair<int64_t, bool>> stack = {{root, false}};
  while (!stack.empty()) {
    auto [id, expanded] = stack.back();
    stack.pop_back();
    BuildNode& n = (*arena)[id];
    if (n.is_leaf) continue;
    if (!expanded) {
      stack.push_back({id, true});
      stack.push_back({n.left, false});
      stack.push_back({n.right, false});
    } else {
      n.entry_count =
          (*arena)[n.left].entry_count + (*arena)[n.right].entry_count;
      n.entry_begin = (*arena)[n.left].entry_begin;
    }
  }
}

/// CompactSubtree (Algorithm 2 line 23): every maximal subtree whose total
/// entries fit in one leaf collapses into a single leaf (the fixed point of
/// the paper's iterative sibling merging). Emits the compacted trie in
/// preorder, assigning leaf pages left-to-right, and returns the new root
/// (always 0). Recursion depth is bounded by the key width (<= 256).
int64_t EmitCompacted(const std::vector<BuildNode>& arena, int64_t src,
                      size_t leaf_capacity, std::vector<CoconutTrie::Node>* out,
                      uint64_t* next_page) {
  const BuildNode& s = arena[src];
  const int64_t dst = static_cast<int64_t>(out->size());
  out->push_back({});
  CoconutTrie::Node node;
  node.depth = s.depth;
  if (s.is_leaf || s.entry_count <= leaf_capacity) {
    node.is_leaf = true;
    node.entry_begin = s.entry_begin;
    node.entry_count = s.entry_count;
    node.first_page = *next_page;
    *next_page += std::max<uint64_t>(
        1, (s.entry_count + leaf_capacity - 1) / leaf_capacity);
    (*out)[dst] = node;
    return dst;
  }
  node.is_leaf = false;
  (*out)[dst] = node;
  const int64_t l =
      EmitCompacted(arena, s.left, leaf_capacity, out, next_page);
  const int64_t r =
      EmitCompacted(arena, s.right, leaf_capacity, out, next_page);
  (*out)[dst].left = l;
  (*out)[dst].right = r;
  return dst;
}

void PackNode(const CoconutTrie::Node& n, uint8_t* out) {
  std::memcpy(out, &n.depth, 4);
  const uint32_t flags = n.is_leaf ? 1u : 0u;
  std::memcpy(out + 4, &flags, 4);
  uint64_t a, b, c;
  if (n.is_leaf) {
    a = n.entry_begin;
    b = n.entry_count;
    c = n.first_page;
  } else {
    a = static_cast<uint64_t>(n.left);
    b = static_cast<uint64_t>(n.right);
    c = 0;
  }
  std::memcpy(out + 8, &a, 8);
  std::memcpy(out + 16, &b, 8);
  std::memcpy(out + 24, &c, 8);
}

CoconutTrie::Node UnpackNode(const uint8_t* in) {
  CoconutTrie::Node n;
  uint32_t flags;
  std::memcpy(&n.depth, in, 4);
  std::memcpy(&flags, in + 4, 4);
  n.is_leaf = (flags & 1u) != 0;
  uint64_t a, b, c;
  std::memcpy(&a, in + 8, 8);
  std::memcpy(&b, in + 16, 8);
  std::memcpy(&c, in + 24, 8);
  if (n.is_leaf) {
    n.entry_begin = a;
    n.entry_count = b;
    n.first_page = c;
  } else {
    n.left = static_cast<int64_t>(a);
    n.right = static_cast<int64_t>(b);
  }
  return n;
}

}  // namespace

Status CoconutTrie::Build(const std::string& raw_path,
                          const std::string& index_path,
                          const CoconutOptions& options,
                          TrieBuildStats* stats) {
  COCONUT_RETURN_IF_ERROR(options.Validate());
  TrieBuildStats local;
  TrieBuildStats* st_out = stats != nullptr ? stats : &local;

  std::string tmp_dir = options.tmp_dir;
  bool owns_tmp = false;
  if (tmp_dir.empty()) {
    COCONUT_RETURN_IF_ERROR(MakeTempDir("coconut-trie-", &tmp_dir));
    owns_tmp = true;
  }
  auto cleanup = [&](const Status& st) {
    if (owns_tmp) (void)RemoveAll(tmp_dir);
    return st;
  };

  // --- Phase 1: scan + summarize; the trie always sorts only the
  // (invSAX, position) pairs (Algorithm 2 line 8); materialization happens
  // in a final pass. ---
  Stopwatch watch;
  ExternalSortOptions sort_opts;
  sort_opts.record_bytes = kSortedEntryBytes;
  sort_opts.key_bytes = ZKey::kBytes;
  sort_opts.memory_budget_bytes = options.memory_budget_bytes;
  sort_opts.tmp_dir = tmp_dir;
  sort_opts.num_threads = options.num_threads;
  ExternalSorter sorter(sort_opts);
  {
    DatasetScanner scanner;
    Status st = scanner.Open(raw_path, options.summary.series_length);
    if (!st.ok()) return cleanup(st);
    std::vector<Value> series(options.summary.series_length);
    std::vector<double> paa(options.summary.segments);
    std::vector<uint8_t> sax(options.summary.segments);
    // Stage summarized records and hand them to the sorter in bulk; the
    // scan order is preserved, which the sorter's stability turns into a
    // deterministic sorted output.
    constexpr size_t kStageRecords = 1024;
    std::vector<uint8_t> staged(kStageRecords * kSortedEntryBytes);
    size_t staged_count = 0;
    uint64_t position = 0;
    const uint64_t series_bytes =
        options.summary.series_length * sizeof(Value);
    while (scanner.Next(series.data(), &st)) {
      PaaTransform(series.data(), options.summary.series_length,
                   options.summary.segments, paa.data());
      SaxFromPaa(paa.data(), options.summary, sax.data());
      uint8_t* record = staged.data() + staged_count * kSortedEntryBytes;
      InvSaxFromSax(sax.data(), options.summary).SerializeBE(record);
      std::memcpy(record + ZKey::kBytes, &position, 8);
      position += series_bytes;
      if (++staged_count == kStageRecords) {
        Status add = sorter.AddBatch(staged.data(), staged_count);
        if (!add.ok()) return cleanup(add);
        staged_count = 0;
      }
    }
    if (!st.ok()) return cleanup(st);
    if (staged_count > 0) {
      Status add = sorter.AddBatch(staged.data(), staged_count);
      if (!add.ok()) return cleanup(add);
    }
  }
  st_out->summarize_seconds = watch.ElapsedSeconds();

  // --- Phase 2: external sort. ---
  watch.Restart();
  std::unique_ptr<SortedRecordStream> sorted;
  {
    Status st = sorter.Finish(&sorted);
    if (!st.ok()) return cleanup(st);
  }
  st_out->sort_seconds = watch.ElapsedSeconds();
  st_out->spilled_runs = sorter.spilled_runs();
  st_out->num_entries = sorted->count();
  if (sorted->count() == 0) {
    return cleanup(Status::InvalidArgument("cannot build an empty trie"));
  }

  // --- Phase 3: spool the sorted entries and collect distinct-key groups,
  // then insertBottomUp + CompactSubtree. ---
  watch.Restart();
  const std::string entries_path = JoinPath(tmp_dir, "sorted-entries.bin");
  std::vector<KeyGroup> groups;
  {
    BufferedWriter spool;
    Status st = spool.Open(entries_path);
    if (!st.ok()) return cleanup(st);
    uint8_t record[kSortedEntryBytes];
    uint64_t idx = 0;
    while (sorted->Next(record, &st)) {
      const ZKey key = ZKey::DeserializeBE(record);
      if (groups.empty() || !(groups.back().key == key)) {
        groups.push_back(KeyGroup{key, idx, 0});
      }
      ++groups.back().count;
      Status ws = spool.Write(record, kSortedEntryBytes);
      if (!ws.ok()) return cleanup(ws);
      ++idx;
    }
    if (!st.ok()) return cleanup(st);
    st = spool.Finish();
    if (!st.ok()) return cleanup(st);
  }
  std::vector<BuildNode> arena;
  arena.reserve(groups.size() * 2);
  const int64_t raw_root =
      InsertBottomUp(groups, options.summary.key_bits(), &arena);
  AggregateCounts(&arena, raw_root);
  std::vector<Node> nodes;
  uint64_t total_pages = 0;
  EmitCompacted(arena, raw_root, options.leaf_capacity, &nodes, &total_pages);
  arena.clear();
  arena.shrink_to_fit();
  st_out->build_seconds = watch.ElapsedSeconds();

  // --- Phase 4: write the index file: leaf pages (optionally materialized),
  // node table, sidecar. ---
  watch.Restart();
  const size_t entry_bytes = LeafEntryBytes(options);
  const size_t leaf_page_bytes = options.leaf_capacity * entry_bytes;
  const size_t series_len = options.summary.series_length;

  TrieSuperblock super;
  super.materialized = options.materialized ? 1 : 0;
  super.series_length = series_len;
  super.segments = options.summary.segments;
  super.cardinality_bits = options.summary.cardinality_bits;
  super.leaf_capacity = options.leaf_capacity;
  super.entry_bytes = entry_bytes;
  super.leaf_page_bytes = leaf_page_bytes;
  super.num_entries = st_out->num_entries;
  super.num_pages = total_pages;
  super.num_nodes = nodes.size();

  // Raw-data source for materialization: cache the whole file if the memory
  // budget allows (ample-memory regime of Fig 8a); otherwise fetch each
  // series individually — random I/O, since leaf order != file order.
  std::unique_ptr<RawSeriesFile> raw;
  std::vector<Value> raw_cache;
  bool raw_cached = false;
  if (options.materialized) {
    Status st = RawSeriesFile::Open(raw_path, series_len, &raw);
    if (!st.ok()) return cleanup(st);
    if (raw->size_bytes() <= options.memory_budget_bytes) {
      st = raw->LoadAll(options.memory_budget_bytes, &raw_cache);
      if (!st.ok()) return cleanup(st);
      raw_cached = true;
    }
  }

  std::unique_ptr<WritableFile> file;
  {
    Status st = WritableFile::Create(index_path, &file);
    if (!st.ok()) return cleanup(st);
  }
  std::vector<uint8_t> zero(kSuperblockBytes, 0);
  {
    Status st = file->Append(zero.data(), zero.size());
    if (!st.ok()) return cleanup(st);
  }
  BufferedWriter sidecar;
  {
    Status st = sidecar.Open(index_path + ".sax");
    if (!st.ok()) return cleanup(st);
  }

  {
    BufferedReader entries;
    Status st = entries.Open(entries_path);
    if (!st.ok()) return cleanup(st);
    std::vector<uint8_t> page(leaf_page_bytes);
    std::vector<uint8_t> sidecar_rec(options.summary.segments + 8);
    std::vector<Value> series(series_len);
    uint8_t record[kSortedEntryBytes];
    uint64_t num_leaves = 0;
    // Leaves appear in `nodes` preorder in left-to-right key order, which is
    // also the order of the sorted entry spool.
    for (const Node& n : nodes) {
      if (!n.is_leaf) continue;
      ++num_leaves;
      uint64_t remaining = n.entry_count;
      while (remaining > 0) {
        const size_t in_page = static_cast<size_t>(
            std::min<uint64_t>(remaining, options.leaf_capacity));
        std::fill(page.begin(), page.end(), 0);
        for (size_t i = 0; i < in_page; ++i) {
          st = entries.Read(record, kSortedEntryBytes);
          if (!st.ok()) return cleanup(st);
          const ZKey key = ZKey::DeserializeBE(record);
          uint64_t offset;
          std::memcpy(&offset, record + ZKey::kBytes, 8);
          uint8_t* slot = page.data() + i * entry_bytes;
          if (options.materialized) {
            const Value* src;
            if (raw_cached) {
              src = raw_cache.data() + offset / sizeof(Value);
            } else {
              st = raw->ReadAt(offset, series.data());
              if (!st.ok()) return cleanup(st);
              src = series.data();
            }
            EncodeLeafEntry(key, offset, src, series_len, slot);
          } else {
            EncodeLeafEntry(key, offset, nullptr, series_len, slot);
          }
          // Sidecar: SAX word (recovered from the key) + offset.
          SaxFromInvSax(key, options.summary, sidecar_rec.data());
          std::memcpy(sidecar_rec.data() + options.summary.segments, &offset,
                      8);
          st = sidecar.Write(sidecar_rec.data(), sidecar_rec.size());
          if (!st.ok()) return cleanup(st);
        }
        st = file->Append(page.data(), page.size());
        if (!st.ok()) return cleanup(st);
        remaining -= in_page;
      }
    }
    super.num_leaves = num_leaves;
    st = sidecar.Finish();
    if (!st.ok()) return cleanup(st);
  }

  // Node table.
  super.node_region_offset = file->size();
  {
    std::vector<uint8_t> rec(kNodeRecordBytes);
    for (const Node& n : nodes) {
      PackNode(n, rec.data());
      Status st = file->Append(rec.data(), rec.size());
      if (!st.ok()) return cleanup(st);
    }
  }

  std::vector<uint8_t> sb(kSuperblockBytes, 0);
  std::memcpy(sb.data(), &super, sizeof(super));
  {
    Status st = file->WriteAt(0, sb.data(), sb.size());
    if (!st.ok()) return cleanup(st);
    st = file->Close();
    if (!st.ok()) return cleanup(st);
  }
  st_out->write_seconds = watch.ElapsedSeconds();
  return cleanup(Status::OK());
}

Status CoconutTrie::Open(const std::string& index_path,
                         const std::string& raw_path,
                         std::unique_ptr<CoconutTrie>* out) {
  std::unique_ptr<CoconutTrie> trie(new CoconutTrie());
  trie->index_path_ = index_path;
  trie->raw_path_ = raw_path;
  COCONUT_RETURN_IF_ERROR(
      RandomAccessFile::Open(index_path, &trie->index_file_));
  std::vector<uint8_t> sb(kSuperblockBytes);
  COCONUT_RETURN_IF_ERROR(
      trie->index_file_->Read(0, kSuperblockBytes, sb.data()));
  std::memcpy(&trie->super_, sb.data(), sizeof(TrieSuperblock));
  COCONUT_RETURN_IF_ERROR(trie->super_.Check());

  trie->options_.summary.series_length = trie->super_.series_length;
  trie->options_.summary.segments = trie->super_.segments;
  trie->options_.summary.cardinality_bits =
      static_cast<unsigned>(trie->super_.cardinality_bits);
  trie->options_.leaf_capacity = trie->super_.leaf_capacity;
  trie->options_.materialized = trie->super_.materialized != 0;

  COCONUT_RETURN_IF_ERROR(RawSeriesFile::Open(
      raw_path, trie->options_.summary.series_length, &trie->raw_file_));
  COCONUT_RETURN_IF_ERROR(trie->LoadNodes());
  *out = std::move(trie);
  return Status::OK();
}

Status CoconutTrie::LoadNodes() {
  nodes_.clear();
  nodes_.reserve(super_.num_nodes);
  std::vector<uint8_t> table(super_.num_nodes * kNodeRecordBytes);
  COCONUT_RETURN_IF_ERROR(index_file_->Read(super_.node_region_offset,
                                            table.size(), table.data()));
  for (uint64_t i = 0; i < super_.num_nodes; ++i) {
    nodes_.push_back(UnpackNode(table.data() + i * kNodeRecordBytes));
  }
  root_ = nodes_.empty() ? -1 : 0;

  // Leaves in serialized (preorder) order are in left-to-right key order.
  leaf_order_.clear();
  page_owner_.assign(super_.num_pages, 0);
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (!n.is_leaf) continue;
    const uint64_t pages = std::max<uint64_t>(
        1, (n.entry_count + super_.leaf_capacity - 1) / super_.leaf_capacity);
    for (uint64_t p = 0; p < pages; ++p) {
      if (n.first_page + p >= super_.num_pages) {
        return Status::Corruption("leaf page range out of bounds");
      }
      page_owner_[n.first_page + p] = leaf_order_.size();
    }
    leaf_order_.push_back(static_cast<int64_t>(i));
  }
  if (leaf_order_.size() != super_.num_leaves) {
    return Status::Corruption("leaf count mismatch in node table");
  }
  return Status::OK();
}

int64_t CoconutTrie::DescendToLeaf(const ZKey& key) const {
  int64_t id = root_;
  while (id >= 0 && !nodes_[id].is_leaf) {
    const Node& n = nodes_[id];
    id = key.GetBit(n.depth) ? n.right : n.left;
  }
  return id;
}

Status CoconutTrie::ReadPage(uint64_t page, std::vector<uint8_t>* buf,
                             size_t* entry_count) const {
  if (page >= super_.num_pages) {
    return Status::InvalidArgument("page index out of range");
  }
  buf->resize(super_.leaf_page_bytes);
  COCONUT_RETURN_IF_ERROR(
      index_file_->Read(kSuperblockBytes + page * super_.leaf_page_bytes,
                        super_.leaf_page_bytes, buf->data()));
  const Node& leaf = nodes_[leaf_order_[page_owner_[page]]];
  const uint64_t page_in_leaf = page - leaf.first_page;
  const uint64_t before = page_in_leaf * super_.leaf_capacity;
  *entry_count = static_cast<size_t>(std::min<uint64_t>(
      super_.leaf_capacity,
      leaf.entry_count > before ? leaf.entry_count - before : 0));
  return Status::OK();
}

Status CoconutTrie::ApproxSearch(const Value* query, size_t num_pages,
                                 SearchResult* result, size_t k) const {
  QueryScratch scratch;
  return ApproxSearch(query, num_pages, result, k, &scratch);
}

Status CoconutTrie::ApproxSearch(const Value* query, size_t num_pages,
                                 SearchResult* result, size_t k,
                                 QueryScratch* scratch) const {
  if (num_pages == 0) num_pages = 1;
  QueryTrace* const trace = scratch->trace;
  Stopwatch stage;  // consulted only when tracing
  TraceStages spans;
  const SummaryOptions& sum = options_.summary;
  scratch->Prepare(sum.series_length, sum.segments);
  double* paa = scratch->paa.data();
  PaaTransform(query, sum.series_length, sum.segments, paa);
  SaxFromPaa(paa, sum, scratch->sax.data());
  const ZKey key = InvSaxFromSax(scratch->sax.data(), sum);

  const int64_t leaf_id = DescendToLeaf(key);
  if (leaf_id < 0) return Status::Internal("empty trie");
  const uint64_t target = nodes_[leaf_id].first_page;
  uint64_t lo =
      target > (num_pages - 1) / 2 ? target - (num_pages - 1) / 2 : 0;
  uint64_t hi = std::min<uint64_t>(super_.num_pages - 1, lo + num_pages - 1);
  lo = (hi + 1 >= num_pages) ? hi + 1 - num_pages : 0;
  spans.Mark("trie.route", "query");
  if (trace != nullptr) {
    trace->route_ns += stage.ElapsedNanos();
    stage.Restart();
  }

  KnnCollector knn(k);
  uint64_t visited = 0;
  std::vector<uint8_t>& page = scratch->page;
  const size_t n = sum.series_length;
  for (uint64_t p = lo; p <= hi; ++p) {
    COCONUT_CHECK_CONTEXT(scratch->context, "trie.approx.page");
    size_t cnt;
    COCONUT_RETURN_IF_ERROR(ReadPage(p, &page, &cnt));
    for (size_t i = 0; i < cnt; ++i) {
      const uint8_t* entry = page.data() + i * super_.entry_bytes;
      double d;
      if (options_.materialized) {
        d = SquaredEuclideanEarlyAbandon(LeafEntrySeries(entry), query, n,
                                         knn.bound_sq());
      } else {
        // scratch->fetch was sized by Prepare() above. Each entry is a
        // raw-file read, so poll per fetch (the per-page poll above is too
        // coarse when every entry costs real I/O).
        COCONUT_CHECK_CONTEXT(scratch->context, "trie.approx.fetch");
        COCONUT_RETURN_IF_ERROR(
            raw_file_->ReadAt(DecodeLeafEntryOffset(entry),
                              scratch->fetch.data()));
        d = SquaredEuclideanEarlyAbandon(scratch->fetch.data(), query, n,
                                         knn.bound_sq());
      }
      ++visited;
      knn.Offer(DecodeLeafEntryOffset(entry), d);
    }
  }
  knn.Finalize(result);
  result->visited_records = visited;
  result->leaves_read = hi - lo + 1;
  spans.Mark("trie.approx", "query");
  if (trace != nullptr) {
    trace->approx_ns += stage.ElapsedNanos();
    trace->leaves_visited += hi - lo + 1;
    trace->records_fetched += visited;
  }
  return Status::OK();
}

Status CoconutTrie::EnsureSimsLoaded() const {
  // Load-once latch (same shape as CoconutTree::EnsureSimsLoaded): the
  // first exact query loads the sidecar; concurrent callers block on the
  // mutex and find sims_loaded_ set. The arrays are immutable afterwards,
  // so the steady state is a lock-free acquire-load.
  if (sims_loaded_.load(std::memory_order_acquire)) return Status::OK();
  MutexLock lock(&sims_mu_);
  if (sims_loaded_.load(std::memory_order_relaxed)) return Status::OK();
  const size_t w = options_.summary.segments;
  const uint64_t n = super_.num_entries;
  BufferedReader reader;
  COCONUT_RETURN_IF_ERROR(reader.Open(index_path_ + ".sax"));
  if (reader.file_size() != n * (w + 8)) {
    return Status::Corruption("sidecar size mismatch");
  }
  sims_sax_.resize(n * w);
  sims_offsets_.resize(n);
  std::vector<uint8_t> rec(w + 8);
  for (uint64_t i = 0; i < n; ++i) {
    COCONUT_RETURN_IF_ERROR(reader.Read(rec.data(), rec.size()));
    std::memcpy(sims_sax_.data() + i * w, rec.data(), w);
    std::memcpy(&sims_offsets_[i], rec.data() + w, 8);
  }
  sims_loaded_.store(true, std::memory_order_release);
  return Status::OK();
}

size_t CoconutTrie::LeafIndexForEntry(uint64_t i) const {
  // Binary search over leaves' entry_begin (leaf_order_ is key-ordered).
  size_t lo = 0, hi = leaf_order_.size();
  while (lo + 1 < hi) {
    const size_t mid = (lo + hi) / 2;
    if (nodes_[leaf_order_[mid]].entry_begin <= i) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

Status CoconutTrie::ExactSearch(const Value* query, size_t approx_pages,
                                SearchResult* result, size_t k) const {
  QueryScratch scratch;
  return ExactSearch(query, approx_pages, result, k, &scratch);
}

Status CoconutTrie::ExactSearch(const Value* query, size_t approx_pages,
                                SearchResult* result, size_t k,
                                QueryScratch* scratch) const {
  COCONUT_RETURN_IF_ERROR(EnsureSimsLoaded());

  SearchResult approx;
  COCONUT_RETURN_IF_ERROR(
      ApproxSearch(query, approx_pages, &approx, k, scratch));
  KnnCollector knn(k);
  knn.Seed(approx);

  QueryTrace* const trace = scratch->trace;
  Stopwatch stage;  // refine stage: lower bounds + skip-sequential scan
  TraceStages spans;
  const SummaryOptions& sum = options_.summary;
  scratch->Prepare(sum.series_length, sum.segments);
  PaaTransform(query, sum.series_length, sum.segments, scratch->paa.data());
  std::vector<double>& mindists = scratch->mindists;
  ParallelMindists(scratch->paa.data(), sims_sax_.data(), super_.num_entries,
                   sum, options_.EffectiveThreads(), &mindists);

  uint64_t visited = 0;
  uint64_t pages_read = 0;
  const size_t series_len = sum.series_length;
  if (options_.materialized) {
    std::vector<uint8_t>& page = scratch->page;
    uint64_t cached_page = std::numeric_limits<uint64_t>::max();
    size_t cached_cnt = 0;
    for (uint64_t i = 0; i < super_.num_entries; ++i) {
      if (mindists[i] >= knn.bound_sq()) continue;
      const Node& leaf = nodes_[leaf_order_[LeafIndexForEntry(i)]];
      const uint64_t in_leaf = i - leaf.entry_begin;
      const uint64_t pg = leaf.first_page + in_leaf / super_.leaf_capacity;
      const size_t slot =
          static_cast<size_t>(in_leaf % super_.leaf_capacity);
      if (pg != cached_page) {
        COCONUT_CHECK_CONTEXT(scratch->context, "trie.exact.page");
        COCONUT_RETURN_IF_ERROR(ReadPage(pg, &page, &cached_cnt));
        cached_page = pg;
        ++pages_read;
      }
      const uint8_t* entry = page.data() + slot * super_.entry_bytes;
      const double d = SquaredEuclideanEarlyAbandon(
          LeafEntrySeries(entry), query, series_len, knn.bound_sq());
      ++visited;
      knn.Offer(DecodeLeafEntryOffset(entry), d);
    }
  } else {
    for (uint64_t i = 0; i < super_.num_entries; ++i) {
      if (mindists[i] >= knn.bound_sq()) continue;
      COCONUT_CHECK_CONTEXT(scratch->context, "trie.exact.fetch");
      COCONUT_RETURN_IF_ERROR(
          raw_file_->ReadAt(sims_offsets_[i], scratch->fetch.data()));
      const double d = SquaredEuclideanEarlyAbandon(
          scratch->fetch.data(), query, series_len, knn.bound_sq());
      ++visited;
      knn.Offer(sims_offsets_[i], d);
    }
  }

  knn.Finalize(result);
  result->visited_records = approx.visited_records + visited;
  result->leaves_read = approx.leaves_read + pages_read;
  spans.Mark("trie.refine", "query");
  if (trace != nullptr) {
    trace->refine_ns += stage.ElapsedNanos();
    trace->leaves_visited += pages_read;
    trace->records_fetched += visited;
    trace->pruned_mindist += super_.num_entries - visited;
  }
  return Status::OK();
}

double CoconutTrie::AvgLeafFill() const {
  if (super_.num_pages == 0) return 0.0;
  return static_cast<double>(super_.num_entries) /
         (static_cast<double>(super_.num_pages) *
          static_cast<double>(super_.leaf_capacity));
}

uint64_t CoconutTrie::Height() const {
  if (root_ < 0) return 0;
  uint64_t max_depth = 0;
  std::vector<std::pair<int64_t, uint64_t>> stack = {{root_, 1}};
  while (!stack.empty()) {
    auto [id, depth] = stack.back();
    stack.pop_back();
    const Node& n = nodes_[id];
    if (n.is_leaf) {
      max_depth = std::max(max_depth, depth);
    } else {
      stack.push_back({n.left, depth + 1});
      stack.push_back({n.right, depth + 1});
    }
  }
  return max_depth;
}

Status CoconutTrie::IndexSizeBytes(uint64_t* bytes) const {
  uint64_t index_bytes = 0;
  uint64_t sidecar_bytes = 0;
  COCONUT_RETURN_IF_ERROR(FileSize(index_path_, &index_bytes));
  COCONUT_RETURN_IF_ERROR(FileSize(index_path_ + ".sax", &sidecar_bytes));
  *bytes = index_bytes + sidecar_bytes;
  return Status::OK();
}

}  // namespace coconut
