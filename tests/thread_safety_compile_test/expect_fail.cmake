# Compiles SOURCE with clang's thread-safety analysis promoted to an error
# and asserts the outcome named by EXPECT:
#   EXPECT=FAIL  the file must be rejected, and rejected BY THE ANALYSIS
#                (a failure mentioning no thread-safety diagnostic means the
#                fixture itself broke — report that separately)
#   EXPECT=PASS  the file must compile cleanly (the control case)
#
# Invoked by CTest (see CMakeLists.txt, clang builds only):
#   cmake -DCOMPILER=... -DSOURCE=... -DINCLUDE_DIR=... -DEXPECT=FAIL \
#         -P expect_fail.cmake
foreach(var COMPILER SOURCE INCLUDE_DIR EXPECT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}=...")
  endif()
endforeach()

execute_process(
  COMMAND ${COMPILER} -std=c++20 -fsyntax-only
          -Wthread-safety -Werror=thread-safety-analysis
          -I${INCLUDE_DIR} ${SOURCE}
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)

if(EXPECT STREQUAL "FAIL")
  if(exit_code EQUAL 0)
    message(FATAL_ERROR
        "${SOURCE} compiled cleanly, but every function in it violates the "
        "locking contract: thread-safety analysis is not running "
        "(annotations compiled away?)")
  endif()
  if(NOT err MATCHES "thread-safety")
    message(FATAL_ERROR
        "${SOURCE} failed to compile, but not because of the thread-safety "
        "analysis — the fixture is broken:\n${err}")
  endif()
elseif(EXPECT STREQUAL "PASS")
  if(NOT exit_code EQUAL 0)
    message(FATAL_ERROR
        "control file ${SOURCE} must compile cleanly but did not:\n${err}")
  endif()
else()
  message(FATAL_ERROR "EXPECT must be FAIL or PASS, got '${EXPECT}'")
endif()
