#include "src/summary/dhwt.h"

#include <cmath>
#include <vector>

namespace coconut {

Status DhwtTransform(const Value* series, size_t n, double* out) {
  if (!IsPowerOfTwo(n)) {
    return Status::InvalidArgument("DHWT requires power-of-two length");
  }
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  std::vector<double> work(series, series + n);
  std::vector<double> next(n);
  size_t len = n;
  // Repeatedly split into (scaled) averages and details; details of the
  // current pass are the finest remaining level, stored back-to-front.
  size_t detail_end = n;
  while (len > 1) {
    const size_t half = len / 2;
    for (size_t i = 0; i < half; ++i) {
      next[i] = (work[2 * i] + work[2 * i + 1]) * inv_sqrt2;
      out[detail_end - half + i] = (work[2 * i] - work[2 * i + 1]) * inv_sqrt2;
    }
    detail_end -= half;
    len = half;
    work.swap(next);
  }
  out[0] = work[0];
  return Status::OK();
}

Status DhwtInverse(const double* coeffs, size_t n, double* out) {
  if (!IsPowerOfTwo(n)) {
    return Status::InvalidArgument("DHWT requires power-of-two length");
  }
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  std::vector<double> work(n);
  std::vector<double> next(n);
  work[0] = coeffs[0];
  size_t len = 1;
  size_t detail_begin = 1;
  while (len < n) {
    for (size_t i = 0; i < len; ++i) {
      const double avg = work[i];
      const double det = coeffs[detail_begin + i];
      next[2 * i] = (avg + det) * inv_sqrt2;
      next[2 * i + 1] = (avg - det) * inv_sqrt2;
    }
    detail_begin += len;
    len *= 2;
    work.swap(next);
  }
  for (size_t i = 0; i < n; ++i) out[i] = work[i];
  return Status::OK();
}

size_t DhwtLevels(size_t n) {
  size_t levels = 1;
  while (n > 1) {
    ++levels;
    n /= 2;
  }
  return levels;
}

void DhwtLevelRange(size_t level, size_t* begin, size_t* end) {
  if (level == 0) {
    *begin = 0;
    *end = 1;
    return;
  }
  *begin = size_t{1} << (level - 1);
  *end = size_t{1} << level;
}

}  // namespace coconut
