// Raw dataset files: headerless binary float32 arrays, the same on-disk
// convention the original ADS/Coconut tooling uses. A dataset of N series of
// length n is exactly N*n*4 bytes; the "position" stored in index entries is
// the byte offset of the series in this file (paper Algorithm 2, line 3).
#ifndef COCONUT_SERIES_DATASET_H_
#define COCONUT_SERIES_DATASET_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/io/buffered_io.h"
#include "src/io/file.h"
#include "src/series/generator.h"
#include "src/series/series.h"

namespace coconut {

/// Writes `count` series from `gen` to a raw dataset file at `path`.
Status WriteDataset(const std::string& path, SeriesGenerator* gen,
                    size_t count);

/// Appends `series` (each of length `length`) to an existing dataset file.
Status AppendToDataset(const std::string& path,
                       const std::vector<Series>& batch);

/// Read-side handle over a raw dataset file.
class RawSeriesFile {
 public:
  /// Opens `path`; `length` is the series length (not stored in the file).
  static Status Open(const std::string& path, size_t length,
                     std::unique_ptr<RawSeriesFile>* out);

  /// Number of series in the file.
  uint64_t count() const { return count_; }
  size_t length() const { return length_; }
  size_t series_bytes() const { return length_ * sizeof(Value); }
  const std::string& path() const { return file_->path(); }
  uint64_t size_bytes() const { return file_->size(); }

  /// Reads the series starting at byte `offset` into `out` (length() floats).
  Status ReadAt(uint64_t offset, Value* out);

  /// Reads series number `index` (0-based).
  Status ReadIndex(uint64_t index, Value* out) {
    return ReadAt(index * series_bytes(), out);
  }

  /// Loads the whole file into memory (used when the memory budget allows
  /// caching the raw data, e.g. Coconut-Trie-Full materialization with ample
  /// memory). Fails if the file does not fit in `budget_bytes`.
  Status LoadAll(size_t budget_bytes, std::vector<Value>* out);

 private:
  RawSeriesFile(std::unique_ptr<RandomAccessFile> file, size_t length,
                uint64_t count)
      : file_(std::move(file)), length_(length), count_(count) {}

  std::unique_ptr<RandomAccessFile> file_;
  size_t length_;
  uint64_t count_;
};

/// Sequential scanner over a raw dataset file (one pass, buffered I/O).
class DatasetScanner {
 public:
  Status Open(const std::string& path, size_t length);

  /// Reads the next series into `out`; returns false at end of file.
  bool Next(Value* out, Status* status);

  uint64_t count() const { return count_; }
  uint64_t position() const { return next_index_; }

 private:
  BufferedReader reader_;
  size_t length_ = 0;
  uint64_t count_ = 0;
  uint64_t next_index_ = 0;
};

}  // namespace coconut

#endif  // COCONUT_SERIES_DATASET_H_
