// Per-query execution trace: the counters and stage timings one k-NN query
// accumulates on its way through route → approx descent → exact refine →
// merge. A trace is plain data owned by a single query execution (no
// atomics, no locks): the hot loops bump local fields, and the batch
// executor flushes the finished trace into the process-wide MetricRegistry
// once per query — so per-record work never touches shared state.
//
// This header is deliberately dependency-light (<cstdint> only) so the core
// index read paths can carry a trace pointer without pulling in the
// registry.
#ifndef COCONUT_OBS_QUERY_TRACE_H_
#define COCONUT_OBS_QUERY_TRACE_H_

#include <cstdint>

namespace coconut {

struct QueryTrace {
  // ---- work counters -----------------------------------------------------
  /// Leaf nodes (tree/trie leaf pages, forest run leaves) visited.
  uint64_t leaves_visited = 0;
  /// Raw records fetched and distance-evaluated.
  uint64_t records_fetched = 0;
  /// Candidates skipped because their MINDIST lower bound met the k-th best
  /// (the SIMS pruning the paper's cost model is about).
  uint64_t pruned_mindist = 0;
  /// Memtable entries brute-force scanned (forest/store paths).
  uint64_t memtable_scanned = 0;

  // ---- per-stage wall time (ns) ------------------------------------------
  /// Summarize + locate: PAA → SAX → invSAX → leaf search.
  uint64_t route_ns = 0;
  /// Approximate answer from the target leaf window.
  uint64_t approx_ns = 0;
  /// Exact refinement: lower-bound computation + skip-sequential scan.
  uint64_t refine_ns = 0;
  /// Cross-run / cross-shard result merging.
  uint64_t merge_ns = 0;
  /// Whole-query execution time as measured by the batch executor. For
  /// store batches this is summed per-shard work time (cells run
  /// concurrently), not wall time.
  uint64_t total_ns = 0;
  /// Thread-CPU time over the same region (CLOCK_THREAD_CPUTIME_ID from
  /// dispatch): excludes time the executing thread spent descheduled, so
  /// identical work reports identical cost no matter how oversubscribed
  /// the pool is. Work a query fans out to *other* threads (nested
  /// per-query parallelism) is not counted here — total_ns still is.
  uint64_t cpu_ns = 0;

  void Clear() { *this = QueryTrace{}; }

  /// Accumulates another trace (e.g. per-shard sub-traces into the query's
  /// total).
  void MergeFrom(const QueryTrace& other) {
    leaves_visited += other.leaves_visited;
    records_fetched += other.records_fetched;
    pruned_mindist += other.pruned_mindist;
    memtable_scanned += other.memtable_scanned;
    route_ns += other.route_ns;
    approx_ns += other.approx_ns;
    refine_ns += other.refine_ns;
    merge_ns += other.merge_ns;
    total_ns += other.total_ns;
    cpu_ns += other.cpu_ns;
  }
};

}  // namespace coconut

#endif  // COCONUT_OBS_QUERY_TRACE_H_
