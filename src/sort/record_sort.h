// Stable in-memory sort of fixed-width byte records by a memcmp key prefix,
// the run-generation kernel of the external sorter.
//
// The sort produces an index permutation rather than moving records: for
// 40-byte (invSAX, position) entries the 4-byte indices are an order of
// magnitude cheaper to shuffle, and the caller materializes the order once
// while writing the run. Two algorithms share the contract:
//
//  * MSD radix (default): counting sort on the leading key bytes, one byte
//    per level, falling back to comparison sort for small buckets and for
//    whatever key tail the radix levels have not consumed. invSAX zkeys are
//    fixed-width and SerializeBE makes memcmp order equal numeric order, so
//    byte-at-a-time bucketing is exact, never approximate.
//  * Comparison (use_radix = false): std::sort with a (key, index)
//    comparator. Kept as the baseline for benchmarks and as the fallback
//    inside radix buckets.
//
// Both are *stable*: records with equal keys keep their arrival order
// (ties break on the record index). Stability is what makes the whole
// external sort deterministic — the final output equals the stable sort of
// the input stream no matter how records were cut into runs or how many
// threads sorted them — so the parallel sorter can promise byte-identical
// output to the serial one.
//
// With a ThreadPool the top radix level runs as a chunked parallel counting
// sort (per-chunk histograms, prefix-summed scatter offsets, so stability is
// preserved) and the 256 buckets then sort concurrently; the comparison
// path sorts contiguous chunks in parallel and merges them with a stable
// loser tree. pool == nullptr (or small inputs) runs fully serial.
#ifndef COCONUT_SORT_RECORD_SORT_H_
#define COCONUT_SORT_RECORD_SORT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace coconut {

class ThreadPool;

struct RecordSortSpec {
  const uint8_t* base = nullptr;  // `count` contiguous records
  size_t record_bytes = 0;
  size_t key_bytes = 0;  // memcmp prefix defining the order
  size_t count = 0;
  bool use_radix = true;
  ThreadPool* pool = nullptr;  // nullptr = serial
};

/// Fills `order` with the stable ascending permutation of [0, count):
/// iterating order[] visits records in (key, arrival index) order.
void StableSortRecords(const RecordSortSpec& spec,
                       std::vector<uint32_t>* order);

}  // namespace coconut

#endif  // COCONUT_SORT_RECORD_SORT_H_
