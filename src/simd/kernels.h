// Runtime-dispatched SIMD kernels for the per-record hot loops: squared
// Euclidean distance (plain and block-wise early-abandoning), the MINDIST
// lower bounds, PAA summarization, and z-normalization. Every query and
// build path in the repository bottoms out in one of these loops, so they
// are the multiplier on N for both construction (paper §4-5) and SIMS
// pruning (Algorithm 5).
//
// The backend (AVX2+FMA on x86-64, NEON on aarch64, portable scalar
// otherwise) is selected once per process on first use, via CPU feature
// detection, and can be overridden with COCONUT_SIMD=scalar|avx2|neon for
// testing. All backends implement the same contracts as the scalar
// reference; accumulation order may differ, so results agree to rounding
// (the parity suite in tests/simd_test.cc pins a 1-ulp-scaled tolerance),
// not bit-for-bit. See src/simd/README.md for the dispatch rules and the
// batch-kernel stride contract.
#ifndef COCONUT_SIMD_KERNELS_H_
#define COCONUT_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace coconut {
namespace simd {

/// One backend's implementations. All pointers are non-null in every table.
struct KernelTable {
  /// Backend name as reported in benchmarks/JSON: "scalar", "avx2", "neon".
  const char* name;

  /// sum_i ((double)a[i] - (double)b[i])^2 over n float32 values.
  double (*squared_euclidean)(const float* a, const float* b, size_t n);

  /// Early-abandoning variant: the partial sum is checked against
  /// `bound_sq` after every full 16-element block; the final partial block
  /// (n % 16 trailing elements) is summed without a check. Returns either
  /// the full sum (never abandoned) or a partial sum >= bound_sq.
  double (*squared_euclidean_ea)(const float* a, const float* b, size_t n,
                                 double bound_sq);

  /// PAA-to-PAA lower bound: scale * sum_j (a[j] - b[j])^2, w segments.
  double (*mindist_paa_paa)(const double* a, const double* b, size_t w,
                            double scale);

  /// PAA-to-rectangle lower bound: scale * sum_j distsq(q[j], [lo[j],hi[j]])
  /// where distsq(x, [l,h]) = max(l - x, x - h, 0)^2. `lo`/`hi` entries may
  /// be -+HUGE_VAL (unbounded axis contributes 0).
  double (*mindist_paa_rect)(const double* q, const double* lo,
                             const double* hi, size_t w, double scale);

  /// Table-gathered PAA-to-SAX lower bound: segment j's region is
  /// [edges[sax[j]], edges[sax[j] + 1]] in a flat table of 2^bits + 1
  /// region edges (edges[0] == -HUGE_VAL, edges[2^bits] == +HUGE_VAL).
  double (*mindist_paa_sax)(const double* q, const uint8_t* sax,
                            const double* edges, size_t w, double scale);

  /// Batched PAA-to-SAX lower bounds over `count` records laid out at
  /// `stride_bytes` intervals from `sax_base` (stride >= w; the SAX word is
  /// the first w bytes of each record). Fills out[0..count). Equivalent to
  /// count independent mindist_paa_sax calls; exists so the SIMS pruning
  /// pass is one kernel call per chunk instead of one call per entry.
  void (*mindist_paa_sax_batch)(const double* q, const uint8_t* sax_base,
                                size_t stride_bytes, size_t count,
                                const double* edges, size_t w, double scale,
                                double* out);

  /// PAA transform: out[s] = mean of segment s (n divisible by segments;
  /// accumulation in double).
  void (*paa_transform)(const float* series, size_t n, size_t segments,
                        double* out);

  /// In-place z-normalization of n float32 values: subtract the mean,
  /// divide by the population stddev; constant series (stddev < 1e-9)
  /// become all zeros.
  void (*znormalize)(float* values, size_t n);
};

/// The process-wide dispatched table: resolved once, on first call, to the
/// best backend the CPU supports (avx2 > neon > scalar), or to the backend
/// named by the COCONUT_SIMD environment variable when that backend is
/// compiled in and supported by the CPU (unknown/unsupported values fall
/// back to auto-detection; COCONUT_SIMD=scalar always honors).
const KernelTable& Kernels();

/// The portable reference implementations (always available; also the
/// ground truth for the parity tests).
const KernelTable& ScalarKernels();

/// Per-backend tables for tests and benchmarks: null when the backend is
/// not compiled in or the CPU lacks the features to run it.
const KernelTable* Avx2Kernels();
const KernelTable* NeonKernels();

}  // namespace simd
}  // namespace coconut

#endif  // COCONUT_SIMD_KERNELS_H_
