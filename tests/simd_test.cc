// Scalar <-> SIMD parity suite for the dispatched kernel layer
// (src/simd/kernels.h). Every backend available on the build machine is
// compared against the portable scalar reference over random inputs across
// lengths 1..257 (covering all remainder-tail shapes of the 4/8/16-wide
// vector loops). SIMD backends may associate the accumulation differently,
// so results are required to agree to a ulp-scaled tolerance, not
// bit-for-bit; early-abandon variants must land on the same side of the
// bound as the reference. Run the whole tier-1 suite with
// COCONUT_SIMD=scalar to exercise the fallback end to end (CI does).
#include "src/simd/kernels.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/random.h"
#include "src/series/distance.h"
#include "src/summary/breakpoints.h"
#include "src/summary/mindist.h"
#include "src/summary/options.h"

namespace coconut {
namespace {

using simd::KernelTable;

/// Every table compiled in AND runnable on this machine, scalar included.
std::vector<const KernelTable*> AvailableBackends() {
  std::vector<const KernelTable*> v = {&simd::ScalarKernels()};
  if (simd::Avx2Kernels() != nullptr) v.push_back(simd::Avx2Kernels());
  if (simd::NeonKernels() != nullptr) v.push_back(simd::NeonKernels());
  return v;
}

std::vector<float> RandomFloats(Rng* rng, size_t n) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng->Gaussian());
  return v;
}

std::vector<double> RandomDoubles(Rng* rng, size_t n) {
  std::vector<double> v(n);
  for (auto& x : v) x = 3.0 * (rng->Uniform() - 0.5);
  return v;
}

/// |a - b| <= tol * max(1, |a|, |b|): scaled tolerance for sums whose
/// association differs across backends.
::testing::AssertionResult NearScaled(double a, double b, double tol) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  if (std::fabs(a - b) <= tol * scale) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << a << " vs " << b << " differ by " << std::fabs(a - b)
         << " (allowed " << tol * scale << ")";
}

constexpr double kTol = 1e-10;  // ~500 ulps at scale 1: generous for <=257
                                // reassociated double terms

TEST(SimdDispatch, TablesAreWellFormed) {
  for (const KernelTable* t : AvailableBackends()) {
    ASSERT_NE(t->name, nullptr);
    EXPECT_NE(t->squared_euclidean, nullptr);
    EXPECT_NE(t->squared_euclidean_ea, nullptr);
    EXPECT_NE(t->mindist_paa_paa, nullptr);
    EXPECT_NE(t->mindist_paa_rect, nullptr);
    EXPECT_NE(t->mindist_paa_sax, nullptr);
    EXPECT_NE(t->mindist_paa_sax_batch, nullptr);
    EXPECT_NE(t->paa_transform, nullptr);
    EXPECT_NE(t->znormalize, nullptr);
  }
  EXPECT_STREQ(simd::ScalarKernels().name, "scalar");
  const std::string active = simd::Kernels().name;
  EXPECT_TRUE(active == "scalar" || active == "avx2" || active == "neon")
      << active;
  // The dispatched table must be one of the runnable ones.
  bool found = false;
  for (const KernelTable* t : AvailableBackends()) {
    if (t == &simd::Kernels()) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(SimdParity, SquaredEuclidean) {
  Rng rng(101);
  const KernelTable& ref = simd::ScalarKernels();
  for (size_t n = 1; n <= 257; ++n) {
    const std::vector<float> a = RandomFloats(&rng, n);
    const std::vector<float> b = RandomFloats(&rng, n);
    const double want = ref.squared_euclidean(a.data(), b.data(), n);
    for (const KernelTable* t : AvailableBackends()) {
      const double got = t->squared_euclidean(a.data(), b.data(), n);
      EXPECT_TRUE(NearScaled(want, got, kTol))
          << t->name << " n=" << n;
    }
  }
}

TEST(SimdParity, SquaredEuclideanEarlyAbandon) {
  Rng rng(102);
  const KernelTable& ref = simd::ScalarKernels();
  const double kInf = std::numeric_limits<double>::infinity();
  for (size_t n = 1; n <= 257; ++n) {
    const std::vector<float> a = RandomFloats(&rng, n);
    const std::vector<float> b = RandomFloats(&rng, n);
    const double full = ref.squared_euclidean(a.data(), b.data(), n);
    // An infinite bound never abandons: the result is the full sum.
    // Fractional bounds abandon somewhere in the middle; bound 0 abandons
    // at the first full-block check.
    const double bounds[] = {kInf, full * 1.5, full * 0.5, full * 0.1, 0.0};
    for (const double bound : bounds) {
      const double want = ref.squared_euclidean_ea(a.data(), b.data(), n,
                                                   bound);
      const bool want_abandoned = want >= bound;
      for (const KernelTable* t : AvailableBackends()) {
        const double got = t->squared_euclidean_ea(a.data(), b.data(), n,
                                                   bound);
        // Same side of the bound as the reference...
        EXPECT_EQ(want_abandoned, got >= bound)
            << t->name << " n=" << n << " bound=" << bound;
        // ...and the same partial sum (all backends check at the same
        // 16-element block boundaries, so they abandon at the same block).
        EXPECT_TRUE(NearScaled(want, got, kTol))
            << t->name << " n=" << n << " bound=" << bound;
        // A non-abandoned result is the full sum.
        if (got < bound) {
          EXPECT_TRUE(NearScaled(full, got, kTol)) << t->name << " n=" << n;
        }
      }
    }
  }
}

// Regression for the pre-dispatch tail bug: with fewer than 16 elements
// there is no full block, so no bound check fires and the result must be
// the complete sum even when the bound is crossed mid-way.
TEST(SimdParity, EarlyAbandonShortSeriesReturnsFullSum) {
  Rng rng(103);
  for (size_t n = 1; n < 16; ++n) {
    const std::vector<float> a = RandomFloats(&rng, n);
    const std::vector<float> b = RandomFloats(&rng, n);
    for (const KernelTable* t : AvailableBackends()) {
      const double full = t->squared_euclidean(a.data(), b.data(), n);
      const double got =
          t->squared_euclidean_ea(a.data(), b.data(), n, /*bound_sq=*/1e-30);
      EXPECT_TRUE(NearScaled(full, got, kTol)) << t->name << " n=" << n;
    }
  }
  // Same at a trailing partial block: bound crossed only inside the tail.
  const size_t n = 23;  // one full block + 7-element tail
  std::vector<float> a(n, 0.0f), b(n, 0.0f);
  b[20] = 10.0f;  // the only difference lives in the tail
  for (const KernelTable* t : AvailableBackends()) {
    const double got =
        t->squared_euclidean_ea(a.data(), b.data(), n, /*bound_sq=*/1.0);
    EXPECT_DOUBLE_EQ(got, 100.0) << t->name;
  }
}

TEST(SimdParity, MindistPaaToPaa) {
  Rng rng(104);
  const KernelTable& ref = simd::ScalarKernels();
  for (size_t w = 1; w <= 65; ++w) {
    const std::vector<double> a = RandomDoubles(&rng, w);
    const std::vector<double> b = RandomDoubles(&rng, w);
    const double scale = 1.0 + rng.Uniform() * 16.0;
    const double want = ref.mindist_paa_paa(a.data(), b.data(), w, scale);
    for (const KernelTable* t : AvailableBackends()) {
      EXPECT_TRUE(NearScaled(
          want, t->mindist_paa_paa(a.data(), b.data(), w, scale), kTol))
          << t->name << " w=" << w;
    }
  }
}

TEST(SimdParity, MindistPaaToRect) {
  Rng rng(105);
  const KernelTable& ref = simd::ScalarKernels();
  for (size_t w = 1; w <= 65; ++w) {
    const std::vector<double> q = RandomDoubles(&rng, w);
    std::vector<double> lo(w), hi(w);
    for (size_t j = 0; j < w; ++j) {
      // Mix of tight boxes and unbounded (+-HUGE_VAL) axes, as produced by
      // the breakpoint tables' extreme symbols.
      const double c = 3.0 * (rng.Uniform() - 0.5);
      lo[j] = rng.Uniform() < 0.2 ? -HUGE_VAL : c - rng.Uniform();
      hi[j] = rng.Uniform() < 0.2 ? HUGE_VAL : c + rng.Uniform();
    }
    const double want =
        ref.mindist_paa_rect(q.data(), lo.data(), hi.data(), w, 16.0);
    for (const KernelTable* t : AvailableBackends()) {
      EXPECT_TRUE(NearScaled(
          want, t->mindist_paa_rect(q.data(), lo.data(), hi.data(), w, 16.0),
          kTol))
          << t->name << " w=" << w;
    }
  }
}

TEST(SimdParity, MindistPaaToSaxAndBatch) {
  Rng rng(106);
  const KernelTable& ref = simd::ScalarKernels();
  const SaxBreakpoints& bp = SaxBreakpoints::Get();
  for (const unsigned bits : {1u, 3u, 8u}) {
    const double* edges = bp.EdgeTable(bits);
    for (size_t w = 1; w <= 33; ++w) {
      const std::vector<double> q = RandomDoubles(&rng, w);
      // A strided batch of records whose first w bytes are the SAX word
      // (stride w+8 mirrors the sidecar record layout sax||offset).
      const size_t stride = w + 8;
      const size_t count = 17;
      std::vector<uint8_t> recs(count * stride);
      for (auto& byte : recs) {
        byte = static_cast<uint8_t>(rng.UniformInt(1u << bits));
      }
      std::vector<double> want(count), got(count);
      for (const KernelTable* t : AvailableBackends()) {
        for (size_t i = 0; i < count; ++i) {
          want[i] = ref.mindist_paa_sax(q.data(), recs.data() + i * stride,
                                        edges, w, 16.0);
          // Single-record parity.
          EXPECT_TRUE(NearScaled(
              want[i],
              t->mindist_paa_sax(q.data(), recs.data() + i * stride, edges, w,
                                 16.0),
              kTol))
              << t->name << " bits=" << bits << " w=" << w << " i=" << i;
        }
        // Batch == per-record, honoring the stride.
        t->mindist_paa_sax_batch(q.data(), recs.data(), stride, count, edges,
                                 w, 16.0, got.data());
        for (size_t i = 0; i < count; ++i) {
          EXPECT_TRUE(NearScaled(want[i], got[i], kTol))
              << t->name << " bits=" << bits << " w=" << w << " i=" << i;
        }
      }
    }
  }
}

TEST(SimdParity, PaaTransform) {
  Rng rng(107);
  const KernelTable& ref = simd::ScalarKernels();
  for (const size_t segments : {size_t{1}, size_t{4}, size_t{16}}) {
    for (size_t seg_len = 1; seg_len <= 33; ++seg_len) {
      const size_t n = segments * seg_len;
      const std::vector<float> s = RandomFloats(&rng, n);
      std::vector<double> want(segments), got(segments);
      ref.paa_transform(s.data(), n, segments, want.data());
      for (const KernelTable* t : AvailableBackends()) {
        t->paa_transform(s.data(), n, segments, got.data());
        for (size_t j = 0; j < segments; ++j) {
          EXPECT_TRUE(NearScaled(want[j], got[j], kTol))
              << t->name << " segments=" << segments << " seg_len=" << seg_len;
        }
      }
    }
  }
}

TEST(SimdParity, ZNormalize) {
  Rng rng(108);
  const KernelTable& ref = simd::ScalarKernels();
  for (size_t n = 1; n <= 257; ++n) {
    const std::vector<float> orig = RandomFloats(&rng, n);
    std::vector<float> want = orig;
    ref.znormalize(want.data(), n);
    for (const KernelTable* t : AvailableBackends()) {
      std::vector<float> got = orig;
      t->znormalize(got.data(), n);
      for (size_t i = 0; i < n; ++i) {
        // Final values are float32; a couple float ulps absorbs the
        // reassociated mean/stddev.
        EXPECT_NEAR(want[i], got[i], 1e-5f)
            << t->name << " n=" << n << " i=" << i;
      }
    }
  }
  // Constant series collapse to zeros on every backend.
  for (const KernelTable* t : AvailableBackends()) {
    std::vector<float> flat(37, 4.25f);
    t->znormalize(flat.data(), flat.size());
    for (const float v : flat) EXPECT_EQ(v, 0.0f) << t->name;
  }
}

// The public entry points (distance.h / mindist.h) must agree with the
// dispatched table they forward to, including the batch API used by the
// SIMS pruning pass.
TEST(SimdRouting, PublicApisMatchDispatchedKernels) {
  Rng rng(109);
  const KernelTable& k = simd::Kernels();
  const size_t n = 256;
  const std::vector<float> a = RandomFloats(&rng, n);
  const std::vector<float> b = RandomFloats(&rng, n);
  EXPECT_EQ(SquaredEuclidean(a.data(), b.data(), n),
            k.squared_euclidean(a.data(), b.data(), n));
  EXPECT_EQ(SquaredEuclideanEarlyAbandon(a.data(), b.data(), n, 10.0),
            k.squared_euclidean_ea(a.data(), b.data(), n, 10.0));

  SummaryOptions opts;
  opts.series_length = n;
  opts.segments = 16;
  opts.cardinality_bits = 8;
  const std::vector<double> q = RandomDoubles(&rng, opts.segments);
  const size_t count = 9;
  std::vector<uint8_t> sax(count * opts.segments);
  for (auto& byte : sax) byte = static_cast<uint8_t>(rng.UniformInt(256));
  std::vector<double> batch(count);
  MindistSqPaaToSaxBatch(q.data(), sax.data(), opts.segments, count, opts,
                         batch.data());
  for (size_t i = 0; i < count; ++i) {
    EXPECT_EQ(batch[i], MindistSqPaaToSax(
                            q.data(), sax.data() + i * opts.segments, opts))
        << i;
  }
}

}  // namespace
}  // namespace coconut
