#include "src/baselines/vertical/vertical_index.h"

#include <algorithm>
#include <numeric>
#include <cmath>
#include <cstring>
#include <limits>

#include "src/common/env.h"
#include "src/core/knn.h"
#include "src/common/timer.h"
#include "src/io/buffered_io.h"
#include "src/series/distance.h"
#include "src/summary/dhwt.h"

namespace coconut {

namespace {
std::string LevelPath(const std::string& dir, size_t level) {
  return JoinPath(dir, "level-" + std::to_string(level) + ".bin");
}
}  // namespace

Status VerticalOptions::Validate() const {
  if (!IsPowerOfTwo(series_length)) {
    return Status::InvalidArgument(
        "Vertical requires a power-of-two series length");
  }
  return Status::OK();
}

Status VerticalIndex::Build(const std::string& raw_path,
                            const std::string& storage_dir,
                            const VerticalOptions& options,
                            std::unique_ptr<VerticalIndex>* out,
                            VerticalBuildStats* stats) {
  COCONUT_RETURN_IF_ERROR(options.Validate());
  VerticalBuildStats local;
  VerticalBuildStats* st_out = stats != nullptr ? stats : &local;
  COCONUT_RETURN_IF_ERROR(MakeDirs(storage_dir));

  std::unique_ptr<VerticalIndex> index(new VerticalIndex());
  index->storage_dir_ = storage_dir;
  index->options_ = options;
  index->levels_ = DhwtLevels(options.series_length);
  COCONUT_RETURN_IF_ERROR(RawSeriesFile::Open(raw_path, options.series_length,
                                              &index->raw_file_));
  index->count_ = index->raw_file_->count();
  if (index->count_ == 0) {
    return Status::InvalidArgument("cannot build over an empty dataset");
  }

  // One sequential pass over the raw file per resolution level: the
  // "stepwise" construction the paper attributes to Vertical, which is why
  // its construction time trails the single-pass approaches.
  Stopwatch watch;
  const size_t n = options.series_length;
  for (size_t level = 0; level < index->levels_; ++level) {
    size_t begin, end;
    DhwtLevelRange(level, &begin, &end);
    DatasetScanner scanner;
    COCONUT_RETURN_IF_ERROR(scanner.Open(raw_path, n));
    BufferedWriter writer;
    COCONUT_RETURN_IF_ERROR(writer.Open(LevelPath(storage_dir, level)));
    std::vector<Value> series(n);
    std::vector<double> coeffs(n);
    std::vector<float> level_out(end - begin);
    Status st;
    while (scanner.Next(series.data(), &st)) {
      COCONUT_RETURN_IF_ERROR(DhwtTransform(series.data(), n, coeffs.data()));
      for (size_t c = begin; c < end; ++c) {
        level_out[c - begin] = static_cast<float>(coeffs[c]);
      }
      COCONUT_RETURN_IF_ERROR(
          writer.Write(level_out.data(), level_out.size() * sizeof(float)));
    }
    COCONUT_RETURN_IF_ERROR(st);
    COCONUT_RETURN_IF_ERROR(writer.Finish());
    ++st_out->passes;
  }
  st_out->total_seconds = watch.ElapsedSeconds();
  *out = std::move(index);
  return Status::OK();
}

Status VerticalIndex::FilterLevels(const Value* query,
                                   const std::vector<double>& query_coeffs,
                                   size_t max_level, KnnCollector* knn,
                                   std::vector<double>* partial,
                                   std::vector<bool>* alive,
                                   uint64_t* visited) {
  const size_t n = options_.series_length;
  const uint64_t series_bytes = n * sizeof(Value);
  partial->assign(count_, 0.0);
  alive->assign(count_, true);
  uint64_t alive_count = count_;

  for (size_t level = 0; level < max_level; ++level) {
    size_t begin, end;
    DhwtLevelRange(level, &begin, &end);
    const size_t k = end - begin;
    BufferedReader reader;
    COCONUT_RETURN_IF_ERROR(reader.Open(LevelPath(storage_dir_, level)));
    std::vector<float> coeffs(k);
    for (uint64_t i = 0; i < count_; ++i) {
      COCONUT_RETURN_IF_ERROR(
          reader.Read(coeffs.data(), k * sizeof(float)));
      if (!(*alive)[i]) continue;
      double p = (*partial)[i];
      for (size_t c = 0; c < k; ++c) {
        const double d = query_coeffs[begin + c] - coeffs[c];
        p += d * d;
      }
      (*partial)[i] = p;
      // Slack absorbs float32 rounding of the stored coefficients, so the
      // partial sums remain safe lower bounds of the true distance. The
      // pruning bound is the k-th best distance so far (+inf until k
      // candidates have been verified).
      if (p > knn->bound_sq() * (1.0 + 1e-6) + 1e-9) {
        (*alive)[i] = false;
        --alive_count;
      }
    }
    if (level == 0) {
      // Seed the best-so-far set with the k most promising candidates so
      // deeper levels can prune (the heap must hold k entries before
      // bound_sq() becomes finite).
      std::vector<uint64_t> order(count_);
      std::iota(order.begin(), order.end(), uint64_t{0});
      const size_t seed = std::min<size_t>(knn->k(), order.size());
      std::partial_sort(order.begin(), order.begin() + seed, order.end(),
                        [&](uint64_t a, uint64_t b) {
                          return (*partial)[a] < (*partial)[b];
                        });
      fetch_buf_.resize(n);
      for (size_t j = 0; j < seed; ++j) {
        COCONUT_RETURN_IF_ERROR(
            raw_file_->ReadAt(order[j] * series_bytes, fetch_buf_.data()));
        const double d = SquaredEuclidean(fetch_buf_.data(), query, n);
        ++*visited;
        knn->Offer(order[j] * series_bytes, d);
      }
    }
    if (alive_count <= options_.verify_threshold) break;
  }
  return Status::OK();
}

Status VerticalIndex::ExactSearch(const Value* query, SearchResult* result,
                                  size_t k) {
  const size_t n = options_.series_length;
  const uint64_t series_bytes = n * sizeof(Value);
  std::vector<double> query_coeffs(n);
  COCONUT_RETURN_IF_ERROR(DhwtTransform(query, n, query_coeffs.data()));

  KnnCollector knn(k);
  std::vector<double> partial;
  std::vector<bool> alive;
  uint64_t visited = 0;
  COCONUT_RETURN_IF_ERROR(FilterLevels(query, query_coeffs, levels_, &knn,
                                       &partial, &alive, &visited));

  // Verify every surviving candidate against the raw data (skip-sequential).
  fetch_buf_.resize(n);
  for (uint64_t i = 0; i < count_; ++i) {
    if (!alive[i]) continue;
    COCONUT_RETURN_IF_ERROR(
        raw_file_->ReadAt(i * series_bytes, fetch_buf_.data()));
    const double d = SquaredEuclideanEarlyAbandon(fetch_buf_.data(), query, n,
                                                  knn.bound_sq());
    ++visited;
    knn.Offer(i * series_bytes, d);
  }
  knn.Finalize(result);
  result->visited_records = visited;
  result->leaves_read = 0;
  return Status::OK();
}

Status VerticalIndex::ApproxSearch(const Value* query, SearchResult* result,
                                   size_t k) {
  const size_t n = options_.series_length;
  const uint64_t series_bytes = n * sizeof(Value);
  std::vector<double> query_coeffs(n);
  COCONUT_RETURN_IF_ERROR(DhwtTransform(query, n, query_coeffs.data()));

  KnnCollector knn(k);
  std::vector<double> partial;
  std::vector<bool> alive;
  uint64_t visited = 0;
  // Coarse half of the levels only.
  COCONUT_RETURN_IF_ERROR(FilterLevels(query, query_coeffs, (levels_ + 1) / 2,
                                       &knn, &partial, &alive, &visited));

  // Verify the best k surviving candidates by partial distance.
  std::vector<uint64_t> order;
  order.reserve(count_);
  for (uint64_t i = 0; i < count_; ++i) {
    if (alive[i]) order.push_back(i);
  }
  const size_t verify = std::min<size_t>(knn.k(), order.size());
  std::partial_sort(order.begin(), order.begin() + verify, order.end(),
                    [&](uint64_t a, uint64_t b) {
                      return partial[a] < partial[b];
                    });
  for (size_t j = 0; j < verify; ++j) {
    const uint64_t i = order[j];
    fetch_buf_.resize(n);
    COCONUT_RETURN_IF_ERROR(
        raw_file_->ReadAt(i * series_bytes, fetch_buf_.data()));
    const double d = SquaredEuclidean(fetch_buf_.data(), query, n);
    ++visited;
    knn.Offer(i * series_bytes, d);
  }
  knn.Finalize(result);
  result->visited_records = visited;
  result->leaves_read = 0;
  return Status::OK();
}

uint64_t VerticalIndex::StorageBytes() const {
  uint64_t total = 0;
  for (size_t level = 0; level < levels_; ++level) {
    uint64_t sz = 0;
    if (FileSize(LevelPath(storage_dir_, level), &sz).ok()) total += sz;
  }
  return total;
}

}  // namespace coconut
