// Instrumented I/O layer: read/write correctness, sequential vs random
// classification, buffered reader/writer behaviour, and error paths.
#include <cstring>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/random.h"
#include "src/io/buffered_io.h"
#include "src/io/file.h"
#include "src/io/io_stats.h"
#include "tests/test_util.h"

namespace coconut {
namespace {

using testing::ScratchDir;

TEST(WritableFile, AppendThenReadBack) {
  ScratchDir dir;
  const std::string path = dir.File("f.bin");
  std::vector<uint8_t> payload(10000);
  Rng rng(1);
  for (auto& b : payload) b = static_cast<uint8_t>(rng.UniformInt(256));
  {
    std::unique_ptr<WritableFile> f;
    ASSERT_OK(WritableFile::Create(path, &f));
    ASSERT_OK(f->Append(payload.data(), 4000));
    ASSERT_OK(f->Append(payload.data() + 4000, 6000));
    EXPECT_EQ(f->size(), 10000u);
    ASSERT_OK(f->Close());
  }
  std::unique_ptr<RandomAccessFile> f;
  ASSERT_OK(RandomAccessFile::Open(path, &f));
  EXPECT_EQ(f->size(), 10000u);
  std::vector<uint8_t> back(10000);
  ASSERT_OK(f->Read(0, 10000, back.data()));
  EXPECT_EQ(back, payload);
}

TEST(WritableFile, WriteAtOverwritesAndExtends) {
  ScratchDir dir;
  const std::string path = dir.File("f.bin");
  std::unique_ptr<WritableFile> f;
  ASSERT_OK(WritableFile::Create(path, &f));
  const char a[] = "aaaaaaaa";
  const char b[] = "bb";
  ASSERT_OK(f->Append(a, 8));
  ASSERT_OK(f->WriteAt(2, b, 2));  // overwrite inside
  ASSERT_OK(f->WriteAt(10, b, 2));  // write past the end (hole at 8..10)
  EXPECT_EQ(f->size(), 12u);
  ASSERT_OK(f->Close());
  std::unique_ptr<RandomAccessFile> r;
  ASSERT_OK(RandomAccessFile::Open(path, &r));
  char out[12];
  ASSERT_OK(r->Read(0, 12, out));
  EXPECT_EQ(std::memcmp(out, "aabbaaaa", 8), 0);
  EXPECT_EQ(out[10], 'b');
}

TEST(WritableFile, OpenForAppendContinuesExistingFile) {
  ScratchDir dir;
  const std::string path = dir.File("f.bin");
  {
    std::unique_ptr<WritableFile> f;
    ASSERT_OK(WritableFile::Create(path, &f));
    ASSERT_OK(f->Append("hello", 5));
    ASSERT_OK(f->Close());
  }
  {
    std::unique_ptr<WritableFile> f;
    ASSERT_OK(WritableFile::OpenForAppend(path, &f));
    EXPECT_EQ(f->size(), 5u);
    ASSERT_OK(f->Append("world", 5));
    ASSERT_OK(f->Close());
  }
  uint64_t size = 0;
  ASSERT_OK(FileSize(path, &size));
  EXPECT_EQ(size, 10u);
}

TEST(IoStats, ClassifiesSequentialAndRandomReads) {
  ScratchDir dir;
  const std::string path = dir.File("f.bin");
  {
    std::unique_ptr<WritableFile> f;
    ASSERT_OK(WritableFile::Create(path, &f));
    std::vector<uint8_t> data(4096, 7);
    for (int i = 0; i < 8; ++i) ASSERT_OK(f->Append(data.data(), 4096));
    ASSERT_OK(f->Close());
  }
  std::unique_ptr<RandomAccessFile> f;
  ASSERT_OK(RandomAccessFile::Open(path, &f));
  uint8_t buf[4096];
  const IoSnapshot before = IoStats::Instance().Snapshot();
  // A scan from the file start is sequential (offset 0 is the initial
  // expected position); continuations stay sequential.
  ASSERT_OK(f->Read(0, 4096, buf));
  ASSERT_OK(f->Read(4096, 4096, buf));
  ASSERT_OK(f->Read(8192, 4096, buf));
  // A backwards seek is random; the read after it continues sequentially.
  ASSERT_OK(f->Read(0, 4096, buf));
  ASSERT_OK(f->Read(4096, 4096, buf));
  // A forward skip is also random.
  ASSERT_OK(f->Read(16384, 4096, buf));
  const IoSnapshot s = IoStats::Instance().Snapshot() - before;
  EXPECT_EQ(s.read_ops, 6u);
  EXPECT_EQ(s.random_read_ops, 2u);
  EXPECT_EQ(s.bytes_read, 6u * 4096u);
}

TEST(RandomAccessFile, ReadPastEofFails) {
  ScratchDir dir;
  const std::string path = dir.File("f.bin");
  {
    std::unique_ptr<WritableFile> f;
    ASSERT_OK(WritableFile::Create(path, &f));
    ASSERT_OK(f->Append("abc", 3));
    ASSERT_OK(f->Close());
  }
  std::unique_ptr<RandomAccessFile> f;
  ASSERT_OK(RandomAccessFile::Open(path, &f));
  char buf[8];
  EXPECT_FALSE(f->Read(0, 8, buf).ok());
}

TEST(RandomAccessFile, OpenMissingFails) {
  ScratchDir dir;
  std::unique_ptr<RandomAccessFile> f;
  EXPECT_TRUE(RandomAccessFile::Open(dir.File("nope"), &f).IsIOError());
}

TEST(BufferedWriter, SplitsLargePayloadsAcrossFlushes) {
  ScratchDir dir;
  const std::string path = dir.File("f.bin");
  BufferedWriter w(1024);  // tiny buffer
  ASSERT_OK(w.Open(path));
  std::vector<uint8_t> payload(10000);
  Rng rng(2);
  for (auto& b : payload) b = static_cast<uint8_t>(rng.UniformInt(256));
  ASSERT_OK(w.Write(payload.data(), payload.size()));
  ASSERT_OK(w.Finish());
  EXPECT_EQ(w.bytes_written(), 10000u);
  BufferedReader r(512);
  ASSERT_OK(r.Open(path));
  std::vector<uint8_t> back(10000);
  ASSERT_OK(r.Read(back.data(), back.size()));
  EXPECT_EQ(back, payload);
}

TEST(BufferedReader, SkipAndReadInterleave) {
  ScratchDir dir;
  const std::string path = dir.File("f.bin");
  {
    BufferedWriter w;
    ASSERT_OK(w.Open(path));
    for (uint32_t i = 0; i < 1000; ++i) {
      ASSERT_OK(w.Write(&i, sizeof(i)));
    }
    ASSERT_OK(w.Finish());
  }
  BufferedReader r(64);
  ASSERT_OK(r.Open(path));
  uint32_t v;
  ASSERT_OK(r.Read(&v, 4));
  EXPECT_EQ(v, 0u);
  ASSERT_OK(r.Skip(4 * 10));
  ASSERT_OK(r.Read(&v, 4));
  EXPECT_EQ(v, 11u);
  ASSERT_OK(r.Skip(4 * 900));
  ASSERT_OK(r.Read(&v, 4));
  EXPECT_EQ(v, 912u);
  EXPECT_FALSE(r.Skip(1 << 20).ok());
}

TEST(BufferedReader, ReadPastEofFails) {
  ScratchDir dir;
  const std::string path = dir.File("f.bin");
  {
    BufferedWriter w;
    ASSERT_OK(w.Open(path));
    ASSERT_OK(w.Write("xy", 2));
    ASSERT_OK(w.Finish());
  }
  BufferedReader r;
  ASSERT_OK(r.Open(path));
  char buf[4];
  EXPECT_FALSE(r.Read(buf, 4).ok());
}

}  // namespace
}  // namespace coconut
