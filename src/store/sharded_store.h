// ShardedStore: a key-space partitioned forest of forests.
//
// Coconut's bottom-up design makes summarizations sortable, which is what
// lets the LSM-style CoconutForest be *range-partitioned* by invSAX key:
// the store splits the 256-bit z-order key space into N contiguous ranges
// and backs each range with its own CoconutForest in its own directory
// (which may live on its own device). A crash-safe text manifest
// (src/store/manifest.h) pins the shard count and boundaries so a store
// reopened after a restart routes keys identically.
//
// Writes route by invSAX key to the owning shard; batch inserts are split
// per shard and dispatched concurrently on the shared ThreadPool (the
// calling thread works one sub-batch itself, so a saturated pool degrades
// to serial execution, never deadlock). Each shard compacts independently —
// CompactAll runs the per-shard compactions concurrently, and within one
// shard the runs-merge is itself chunked over the pool
// (CoconutForest::MergeRunsParallel) — the two levels of parallel
// compaction.
//
// Queries take a store snapshot (one CoconutForest::Snapshot per shard) and
// fan out across shards; per-shard k-NN answers merge through KnnCollector.
// Shards partition the data, so the merged per-shard exact top-k is the
// global top-k — the same argument that makes the forest's per-run merge
// exact. A QueryEngine batch takes ONE store snapshot up front, so snapshot
// isolation holds across the whole store: every query in the batch sees the
// same point-in-time state on every shard. (Each shard's snapshot is
// internally consistent; a concurrent cross-shard batch insert may be
// visible on some shards and not yet on others, exactly like two
// independent LSM engines.)
//
// Offsets: each shard has its own raw dataset file, so a neighbor's
// raw-file offset is only meaningful within its shard. Store-level results
// carry an *encoded* offset with the shard id in the high bits
// (EncodeOffset/DecodeOffset); a single-shard store encodes to the plain
// local offset, bit-for-bit compatible with an unsharded forest.
#ifndef COCONUT_STORE_SHARDED_STORE_H_
#define COCONUT_STORE_SHARDED_STORE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/zkey.h"
#include "src/core/coconut_forest.h"
#include "src/exec/thread_pool.h"
#include "src/series/series.h"
#include "src/store/manifest.h"

namespace coconut {

struct StoreOptions {
  /// Per-shard forest configuration (memtable size, run threshold, tree).
  ForestOptions forest;
  /// Shards to create for a NEW store. Reopening an existing store always
  /// uses the shard count and boundaries pinned in its manifest.
  size_t num_shards = 4;

  Status Validate() const {
    COCONUT_RETURN_IF_ERROR(forest.Validate());
    if (num_shards == 0 || num_shards > kMaxShards) {
      return Status::InvalidArgument("num_shards must be in [1, 4096]");
    }
    return Status::OK();
  }

  static constexpr size_t kMaxShards = 4096;
};

class ShardedStore {
 public:
  /// Bits of an encoded offset reserved for the local raw-file offset; the
  /// shard id lives in the bits above (48 bits ≈ 256 TiB per shard file).
  static constexpr unsigned kShardOffsetBits = 48;

  /// A point-in-time view of the whole store: one forest snapshot per
  /// shard, indexed by shard id. Cheap to copy; queries against it never
  /// block, and are never affected by, concurrent writers.
  struct Snapshot {
    std::vector<CoconutForest::Snapshot> shards;

    uint64_t num_entries() const {
      uint64_t total = 0;
      for (const auto& s : shards) total += s.num_entries();
      return total;
    }
  };

  /// Opens (creating if needed) the store rooted at `dir`. A new store is
  /// partitioned into options.num_shards even key ranges and its manifest
  /// committed before any data is written; an existing store is reopened
  /// from its manifest (each shard forest recovers its runs from the
  /// shard's raw dataset file).
  static Status Open(const std::string& dir, const StoreOptions& options,
                     std::unique_ptr<ShardedStore>* out);

  /// Routes one series to its owning shard. Serialized with other writers
  /// of that shard only.
  Status Insert(const Series& series);

  /// Splits the batch by invSAX key and inserts the per-shard sub-batches
  /// concurrently on the shared pool.
  Status InsertBatch(const std::vector<Series>& batch);

  /// Flushes every shard's memtable (concurrently) and re-commits the
  /// manifest with fresh advisory entry counts.
  Status Flush();

  /// Compacts every shard to a single run. Shards compact concurrently and
  /// each shard's runs-merge is itself parallel — see CoconutForest.
  Status CompactAll();

  /// Captures a store-wide snapshot (one per-shard snapshot each).
  Snapshot GetSnapshot() const;

  /// Exact k nearest neighbors across every shard. Neighbor offsets are
  /// encoded with EncodeOffset.
  Status ExactSearch(const Value* query, SearchResult* result,
                     size_t k = 1) const;
  Status ExactSearch(const Snapshot& snapshot, const Value* query,
                     SearchResult* result, size_t k = 1,
                     CoconutTree::QueryScratch* scratch = nullptr) const;

  /// Approximate search: best k candidates across every shard's memtable
  /// and target leaf windows.
  Status ApproxSearch(const Value* query, size_t num_leaves,
                      SearchResult* result, size_t k = 1) const;
  Status ApproxSearch(const Snapshot& snapshot, const Value* query,
                      size_t num_leaves, SearchResult* result, size_t k = 1,
                      CoconutTree::QueryScratch* scratch = nullptr) const;

  /// Merges per-shard k-NN answers (indexed by shard id) into one result,
  /// retagging neighbor offsets with the shard id. Exposed for QueryEngine.
  static void MergeShardResults(const std::vector<SearchResult>& per_shard,
                                size_t k, SearchResult* out);

  static uint64_t EncodeOffset(size_t shard, uint64_t local_offset) {
    return (static_cast<uint64_t>(shard) << kShardOffsetBits) | local_offset;
  }
  static void DecodeOffset(uint64_t encoded, size_t* shard,
                           uint64_t* local_offset) {
    *shard = static_cast<size_t>(encoded >> kShardOffsetBits);
    *local_offset = encoded & ((uint64_t{1} << kShardOffsetBits) - 1);
  }

  /// Shard id owning `key` (binary search over the manifest boundaries).
  size_t ShardForKey(const ZKey& key) const;
  /// Shard id owning `series` (summarize, then route).
  size_t ShardForSeries(const Series& series) const;

  size_t num_shards() const { return shards_.size(); }
  uint64_t num_entries() const;
  const CoconutForest& shard(size_t i) const { return *shards_[i]; }
  /// The shard's raw dataset file (local offsets point into this).
  const std::string& shard_raw_path(size_t i) const { return raw_paths_[i]; }
  const StoreManifest& manifest() const { return manifest_; }

 private:
  ShardedStore() = default;

  /// Runs `fn(shard)` for every shard concurrently on the pool (the caller
  /// executes one shard itself) and returns the first failure.
  Status ForEachShardParallel(
      const std::function<Status(size_t)>& fn) const;
  /// Re-commits the manifest with current advisory entry counts.
  Status CommitManifestLocked();

  StoreOptions options_;
  std::string dir_;
  StoreManifest manifest_;
  ThreadPool* pool_ = nullptr;
  std::vector<std::unique_ptr<CoconutForest>> shards_;
  std::vector<std::string> raw_paths_;
  // Serializes manifest re-commits (shard writers serialize themselves).
  mutable std::mutex manifest_mu_;
};

}  // namespace coconut

#endif  // COCONUT_STORE_SHARDED_STORE_H_
