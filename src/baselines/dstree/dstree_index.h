// DSTree (Wang et al., PVLDB 2013): a data-adaptive and dynamic segmentation
// index over EAPCA summarizations — the slowest-to-build baseline in the
// paper's evaluation (Fig 8a: "DSTree requires more than 24 hours in most
// cases, as it inserts all data series in the index one by one, in a
// top-down fashion").
//
// Every node carries its own segmentation and, per segment, the min/max
// envelope of the resident series' means and standard deviations. Internal
// nodes route by a split rule (segment, mean-or-stddev, threshold). Leaf
// overflow triggers a split that picks the (segment, statistic) whose value
// range is widest (weighted by segment length), using the median as the
// threshold; when a long segment's halves discriminate better, the split
// refines the segmentation first (the paper's vertical split, simplified to
// a midpoint refinement — see DESIGN.md).
//
// Exact search is best-first over the EAPCA lower bound (summary/eapca.h),
// which provably lower-bounds Euclidean distance, with true distances
// computed at the leaves.
#ifndef COCONUT_BASELINES_DSTREE_DSTREE_INDEX_H_
#define COCONUT_BASELINES_DSTREE_DSTREE_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/coconut_options.h"
#include "src/io/file.h"
#include "src/series/series.h"
#include "src/summary/eapca.h"

namespace coconut {

class KnnCollector;

struct DstreeOptions {
  size_t series_length = 256;
  /// Number of equal segments in the root segmentation.
  size_t initial_segments = 4;
  size_t leaf_capacity = 2000;
  /// Buffered-insert budget; exceeding it flushes leaf buffers to disk.
  size_t memory_budget_bytes = 256ull * 1024 * 1024;
  /// Minimum sub-segment length produced by vertical splits.
  size_t min_segment_length = 4;

  Status Validate() const {
    if (series_length == 0 || initial_segments == 0 ||
        initial_segments > series_length) {
      return Status::InvalidArgument("bad series_length/initial_segments");
    }
    if (leaf_capacity == 0) {
      return Status::InvalidArgument("leaf_capacity must be > 0");
    }
    return Status::OK();
  }
};

class DstreeIndex {
 public:
  /// Creates an empty index storing leaf pages in `storage_path`.
  static Status Create(const DstreeOptions& options,
                       const std::string& storage_path,
                       std::unique_ptr<DstreeIndex>* out);

  /// Top-down insertion. `offset` identifies the series (raw-file byte
  /// position); the payload is stored inside the leaf (materialized).
  Status Insert(const Value* series, uint64_t offset);

  Status FlushAll();

  /// Greedy descent by split rules; true k-NN distances over the target
  /// leaf.
  Status ApproxSearch(const Value* query, SearchResult* result, size_t k = 1);

  /// Best-first exact k-NN search over EAPCA lower bounds.
  Status ExactSearch(const Value* query, SearchResult* result, size_t k = 1);

  uint64_t num_entries() const { return num_entries_; }
  uint64_t num_leaves() const { return num_leaves_; }
  double AvgLeafFill() const;
  uint64_t StorageBytes() const;
  /// Maximum segments across nodes (shows the adaptive refinement).
  size_t MaxSegments() const;

 private:
  DstreeIndex() = default;

  struct Node {
    Segmentation seg;
    std::vector<SegmentEnvelope> env;
    bool env_valid = false;  // becomes true on first routed series
    bool is_leaf = true;
    // Split rule (internal nodes): routes on the statistic of the series
    // over the absolute point range [route_begin, route_end) — absolute so
    // the rule stays valid even though children refine their segmentation.
    size_t route_begin = 0;
    size_t route_end = 0;
    bool split_on_mean = true;
    double threshold = 0.0;
    int64_t children[2] = {-1, -1};
    // Leaf storage.
    std::vector<int64_t> pages;
    uint64_t disk_count = 0;
    std::vector<uint8_t> buffer;
    uint64_t total_count = 0;
  };

  size_t entry_bytes() const {
    return 8 + options_.series_length * sizeof(Value);
  }
  Status AppendToLeaf(int64_t id, const Value* series, uint64_t offset);
  Status FlushLeaf(int64_t id);
  Status ReadLeafEntries(const Node& node, std::vector<uint8_t>* out);
  Status WriteLeafEntries(Node* node, const std::vector<uint8_t>& entries);
  Status SplitLeaf(int64_t id, std::vector<uint8_t> entries);
  Status LeafTrueDistances(const Node& node, const Value* query,
                           KnnCollector* knn, uint64_t* visited,
                           uint64_t* pages_read);
  int64_t AllocNode();

  DstreeOptions options_;
  std::string storage_path_;
  std::unique_ptr<WritableFile> storage_write_;
  std::unique_ptr<RandomAccessFile> storage_read_;
  std::vector<Node> nodes_;
  int64_t root_ = -1;
  int64_t next_page_ = 0;
  uint64_t num_entries_ = 0;
  uint64_t num_leaves_ = 0;
  size_t buffered_bytes_ = 0;
};

}  // namespace coconut

#endif  // COCONUT_BASELINES_DSTREE_DSTREE_INDEX_H_
