// RAII stage timers: measure a scope's wall time in nanoseconds and record
// it on destruction — into a Histogram (latency distributions) or into a
// plain uint64_t accumulator (QueryTrace stage fields, where the trace is
// single-owner and atomics would be waste).
//
// Both adapters accept nullptr targets and then cost two branch
// instructions total, so call sites can keep one code path whether tracing
// is on or off.
#ifndef COCONUT_OBS_STAGE_TIMER_H_
#define COCONUT_OBS_STAGE_TIMER_H_

#include <cstdint>

#include "src/common/timer.h"
#include "src/obs/metrics.h"

namespace coconut {

/// Records the scope's duration into a latency histogram.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* hist) : hist_(hist) {}
  ~ScopedTimer() {
    if (hist_ != nullptr) hist_->Record(watch_.ElapsedNanos());
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  uint64_t ElapsedNanos() const { return watch_.ElapsedNanos(); }

 private:
  Histogram* hist_;
  Stopwatch watch_;
};

/// Accumulates the scope's duration into `*sink` (+=). Used for QueryTrace
/// stage fields, which are thread-local plain data.
class ScopedStageTimer {
 public:
  explicit ScopedStageTimer(uint64_t* sink) : sink_(sink) {}
  ~ScopedStageTimer() {
    if (sink_ != nullptr) *sink_ += watch_.ElapsedNanos();
  }

  ScopedStageTimer(const ScopedStageTimer&) = delete;
  ScopedStageTimer& operator=(const ScopedStageTimer&) = delete;

 private:
  uint64_t* sink_;
  Stopwatch watch_;
};

}  // namespace coconut

#endif  // COCONUT_OBS_STAGE_TIMER_H_
