// CRC32C (Castagnoli, polynomial 0x1EDC6F41): the integrity checksum behind
// every on-disk artifact — journal records, the MANIFEST trailer, raw-series
// block checksums, and Coconut-Tree run files. CRC32C is chosen over CRC32
// because commodity CPUs accelerate it: SSE4.2 has a dedicated instruction
// and ARMv8 an optional extension, so checksumming stays far below I/O cost.
//
// The backend is latched once per process, mirroring src/simd/kernels.cc:
// hardware (SSE4.2 / ARMv8+crc) when the CPU reports it, a slice-by-8 table
// fallback otherwise, with a COCONUT_CRC32C=scalar|sse42 env override that
// falls through to auto-detection when the requested backend cannot run.
#ifndef COCONUT_COMMON_CRC32C_H_
#define COCONUT_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace coconut {
namespace crc32c {

/// Extends `crc` (the CRC of some prefix) with `n` more bytes. Start with 0.
uint32_t Extend(uint32_t crc, const void* data, size_t n);

/// CRC32C of one contiguous buffer.
inline uint32_t Value(const void* data, size_t n) { return Extend(0, data, n); }

/// Name of the latched backend ("sse42", "armv8", or "scalar").
const char* BackendName();

/// Fixed-width lowercase hex rendering ("deadbeef"), used by the text
/// formats (journal records, MANIFEST trailer) so widths stay predictable.
std::string ToHex(uint32_t crc);

/// Parses exactly 8 lowercase/uppercase hex digits; false on anything else.
bool FromHex(const std::string& hex, uint32_t* crc);

}  // namespace crc32c
}  // namespace coconut

#endif  // COCONUT_COMMON_CRC32C_H_
