// Extended APCA (EAPCA) — the summarization used by the DSTree baseline
// (Wang et al., PVLDB 2013). A series is described per segment by its mean
// and standard deviation; a DSTree node stores, for each segment of its
// current segmentation, the min/max of the means and stddevs of the resident
// series, which yields a cheap lower bound:
//
//   ED^2(Q, X) >= sum_s len_s * [ d(q_mean_s, [mu_min, mu_max])^2
//                               + d(q_std_s,  [sd_min, sd_max])^2 ]
//
// using the decomposition sum(q_i - x_i)^2 = len*(q_mean - x_mean)^2 +
// ||(q - q_mean) - (x - x_mean)||^2 and the reverse triangle inequality on
// the centred parts.
#ifndef COCONUT_SUMMARY_EAPCA_H_
#define COCONUT_SUMMARY_EAPCA_H_

#include <cstddef>
#include <vector>

#include "src/series/series.h"

namespace coconut {

/// Per-segment (mean, stddev) pair.
struct SegmentStats {
  double mean = 0.0;
  double stddev = 0.0;
};

/// A segmentation is the sorted list of segment END indices (exclusive);
/// e.g. {64, 128, 192, 256} splits a 256-point series into four quarters.
using Segmentation = std::vector<size_t>;

/// Computes per-segment stats of `series` under `seg` into `out`
/// (out->size() == seg.size()).
void EapcaTransform(const Value* series, const Segmentation& seg,
                    std::vector<SegmentStats>* out);

/// Min/max envelope of segment stats across a set of series (a DSTree node
/// synopsis).
struct SegmentEnvelope {
  double mean_min = 0.0;
  double mean_max = 0.0;
  double std_min = 0.0;
  double std_max = 0.0;

  void InitFrom(const SegmentStats& s) {
    mean_min = mean_max = s.mean;
    std_min = std_max = s.stddev;
  }
  void Extend(const SegmentStats& s) {
    if (s.mean < mean_min) mean_min = s.mean;
    if (s.mean > mean_max) mean_max = s.mean;
    if (s.stddev < std_min) std_min = s.stddev;
    if (s.stddev > std_max) std_max = s.stddev;
  }
};

/// Squared lower bound from a query's segment stats to a node envelope under
/// segmentation `seg` (see file comment for the formula).
double EapcaLowerBoundSq(const std::vector<SegmentStats>& query,
                         const std::vector<SegmentEnvelope>& node,
                         const Segmentation& seg);

}  // namespace coconut

#endif  // COCONUT_SUMMARY_EAPCA_H_
