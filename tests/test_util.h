// Shared helpers for the test suite: scratch directories, dataset fixtures,
// and a brute-force nearest-neighbor oracle used to validate every index's
// exact search.
#ifndef COCONUT_TESTS_TEST_UTIL_H_
#define COCONUT_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/env.h"
#include "src/common/status.h"
#include "src/series/dataset.h"
#include "src/series/generator.h"
#include "src/series/series.h"

namespace coconut {
namespace testing {

/// gtest-friendly status assertion.
#define ASSERT_OK(expr)                                  \
  do {                                                   \
    ::coconut::Status _st = (expr);                      \
    ASSERT_TRUE(_st.ok()) << _st.ToString();             \
  } while (false)

#define EXPECT_OK(expr)                                  \
  do {                                                   \
    ::coconut::Status _st = (expr);                      \
    EXPECT_TRUE(_st.ok()) << _st.ToString();             \
  } while (false)

/// Creates a unique scratch directory, removed on destruction.
class ScratchDir {
 public:
  ScratchDir();
  ~ScratchDir();

  const std::string& path() const { return path_; }
  std::string File(const std::string& name) const {
    return JoinPath(path_, name);
  }

 private:
  std::string path_;
};

/// Generates `count` series and returns them both in memory and as a raw
/// dataset file at `path`.
std::vector<Series> MakeDatasetFile(const std::string& path, DatasetKind kind,
                                    size_t count, size_t length,
                                    uint64_t seed);

/// Brute-force exact nearest neighbor: returns the index of the closest
/// series and its (non-squared) Euclidean distance.
std::pair<size_t, double> BruteForceNn(const std::vector<Series>& data,
                                       const Series& query);

}  // namespace testing
}  // namespace coconut

#endif  // COCONUT_TESTS_TEST_UTIL_H_
