// Process-wide metric registry: named counters, gauges, and log-bucketed
// latency histograms with two exposition formats (Prometheus-style text and
// JSON). See src/obs/README.md for the naming scheme and the recording-cost
// contract.
//
// Recording is wait-free and TSan-clean:
//  * Counter spreads increments over cache-line-padded stripes indexed by a
//    per-thread id, so concurrent writers on different threads rarely share
//    a line; every operation is a relaxed fetch_add.
//  * Histogram::Record is two relaxed fetch_adds (bucket + sum) and a
//    relaxed CAS max. Buckets are log-linear (8 sub-buckets per octave,
//    HdrHistogram-style) so the relative quantile error is bounded by 12.5%
//    while the whole bucket array stays under 4 KiB.
//  * Gauge is a single relaxed atomic (gauges are low-frequency by nature).
//
// Reading (Snapshot / exposition) takes the registry mutex and sums
// stripes; it is intended for periodic scraping, not hot paths. Metric
// objects are never destroyed once registered — call sites may cache the
// returned pointer forever (the idiom is a function-local static).
#ifndef COCONUT_OBS_METRICS_H_
#define COCONUT_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/sync.h"

namespace coconut {

/// Monotonic counter. Striped relaxed atomics: Add never blocks and never
/// contends across threads mapped to different stripes.
class Counter {
 public:
  static constexpr size_t kStripes = 16;

  void Add(uint64_t delta) {
    cells_[StripeIndex()].v.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Cell& c : cells_) {
      total += c.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  static size_t StripeIndex();

  Cell cells_[kStripes];
};

/// Point-in-time value (queue depths, open snapshots, ...). Single relaxed
/// atomic: gauges are set/adjusted at low frequency.
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Read-only copy of a histogram's state; merge-able across histograms
/// (thread shards, processes) and subtractable for interval deltas.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  std::vector<uint64_t> buckets;  // dense, Histogram::kNumBuckets wide

  /// Value at quantile `q` in [0, 1]: the upper bound of the bucket holding
  /// the q-th sample (≤ 12.5% above the true value). 0 when empty.
  uint64_t ValueAtQuantile(double q) const;
  double Mean() const { return count == 0 ? 0.0 : double(sum) / double(count); }

  void Merge(const HistogramSnapshot& other);
  /// This snapshot minus an earlier one of the same histogram.
  HistogramSnapshot Delta(const HistogramSnapshot& earlier) const;
};

/// Log-linear (log-bucketed) histogram of non-negative integer samples,
/// typically nanoseconds. Values 0..7 get exact buckets; above that each
/// power-of-two octave is split into 8 linear sub-buckets, bounding the
/// relative error of any reported quantile by 1/8.
class Histogram {
 public:
  static constexpr int kSubBits = 3;  // 8 sub-buckets per octave
  static constexpr size_t kNumBuckets = 496;

  void Record(uint64_t value) {
    buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    uint64_t prev = max_.load(std::memory_order_relaxed);
    while (value > prev &&
           !max_.compare_exchange_weak(prev, value,
                                       std::memory_order_relaxed)) {
    }
  }

  HistogramSnapshot Snapshot() const;

  /// Bucket index for `value` (exposed for tests).
  static size_t BucketFor(uint64_t value);
  /// Smallest value mapping to bucket `b`; the bucket's upper bound is
  /// BucketLowerBound(b + 1) - 1 (exposed for tests).
  static uint64_t BucketLowerBound(size_t b);

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

/// Full-registry snapshot: plain data, safe to hold, merge, diff, or
/// serialize long after capture.
struct RegistrySnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Element-wise accumulate (union of names).
  void Merge(const RegistrySnapshot& other);
  std::string ToPrometheusText() const;
  std::string ToJson() const;
};

/// Named metric registry. Get* registers on first use and always returns
/// the same never-destroyed object for a name, so call sites cache the
/// pointer:
///
///   static Counter* c = MetricRegistry::Default().GetCounter("io.read_ops");
///   c->Increment();
///
/// Registration takes a mutex (cold path); recording through the returned
/// pointers never does.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  RegistrySnapshot Snapshot() const;
  std::string ToPrometheusText() const { return Snapshot().ToPrometheusText(); }
  std::string ToJson() const { return Snapshot().ToJson(); }

  /// The process-wide registry (never destroyed). First call also arms the
  /// COCONUT_STATS environment toggles:
  ///   COCONUT_STATS=dump-at-exit   -> Prometheus text dump to stderr at exit
  ///   COCONUT_STATS_JSON=<path>    -> JSON snapshot written to <path> at exit
  static MetricRegistry& Default();

 private:
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      GUARDED_BY(mu_);
};

}  // namespace coconut

#endif  // COCONUT_OBS_METRICS_H_
