#include "src/core/sims_common.h"

#include <algorithm>
#include <thread>

#include "src/summary/mindist.h"

namespace coconut {

void ParallelMindists(const double* query_paa, const uint8_t* sax_array,
                      uint64_t n, const SummaryOptions& opts, unsigned threads,
                      std::vector<double>* out) {
  out->resize(n);
  if (threads == 0) threads = 1;
  std::vector<std::thread> pool;
  const uint64_t chunk = (n + threads - 1) / threads;
  const size_t w = opts.segments;
  double* dst = out->data();
  for (unsigned t = 0; t < threads; ++t) {
    const uint64_t begin = t * chunk;
    const uint64_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    pool.emplace_back([=, &opts]() {
      for (uint64_t i = begin; i < end; ++i) {
        dst[i] = MindistSqPaaToSax(query_paa, sax_array + i * w, opts);
      }
    });
  }
  for (std::thread& th : pool) th.join();
}

}  // namespace coconut
