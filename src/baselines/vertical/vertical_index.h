// Vertical (Kashyap & Karras, SIGKDD 2011): kNN search over vertically
// (level-major) stored DHWT coefficients — the "Vertical" baseline of the
// paper's evaluation.
//
// Construction proceeds "in a stepwise sequential-scan manner, one level of
// resolution at a time" (paper §5): one pass over the raw file per
// resolution level, writing that level's Haar coefficients for all series
// into a dedicated level file. Queries scan the level files coarse-to-fine,
// accumulating partial squared distances that — because the orthonormal DHWT
// preserves Euclidean distance — are monotone lower bounds; candidates whose
// partial distance exceeds the best-so-far are dropped, and survivors are
// verified against the raw file.
#ifndef COCONUT_BASELINES_VERTICAL_VERTICAL_INDEX_H_
#define COCONUT_BASELINES_VERTICAL_VERTICAL_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/coconut_options.h"
#include "src/series/dataset.h"
#include "src/series/series.h"

namespace coconut {

class KnnCollector;

struct VerticalOptions {
  /// Series length; must be a power of two (DHWT requirement).
  size_t series_length = 256;
  size_t memory_budget_bytes = 256ull * 1024 * 1024;
  /// Candidates left before switching from level scans to raw verification.
  size_t verify_threshold = 128;

  Status Validate() const;
};

struct VerticalBuildStats {
  double total_seconds = 0.0;
  size_t passes = 0;  // one sequential pass over the raw data per level
};

class VerticalIndex {
 public:
  /// Builds the level files under `storage_dir` (one file per resolution
  /// level).
  static Status Build(const std::string& raw_path,
                      const std::string& storage_dir,
                      const VerticalOptions& options,
                      std::unique_ptr<VerticalIndex>* out,
                      VerticalBuildStats* stats = nullptr);

  /// Exact k nearest neighbors (filter over all levels + raw
  /// verification).
  Status ExactSearch(const Value* query, SearchResult* result, size_t k = 1);

  /// Approximate search: scans only the coarse half of the levels and
  /// verifies the best surviving candidates.
  Status ApproxSearch(const Value* query, SearchResult* result, size_t k = 1);

  uint64_t num_entries() const { return count_; }
  uint64_t StorageBytes() const;
  size_t num_levels() const { return levels_; }

 private:
  VerticalIndex() = default;

  /// Runs the stepwise filter over levels [0, max_level); returns partial
  /// distances and the alive set.
  Status FilterLevels(const Value* query,
                      const std::vector<double>& query_coeffs,
                      size_t max_level, KnnCollector* knn,
                      std::vector<double>* partial, std::vector<bool>* alive,
                      uint64_t* visited);

  std::string storage_dir_;
  VerticalOptions options_;
  std::unique_ptr<RawSeriesFile> raw_file_;
  uint64_t count_ = 0;
  size_t levels_ = 0;
  std::vector<Value> fetch_buf_;
};

}  // namespace coconut

#endif  // COCONUT_BASELINES_VERTICAL_VERTICAL_INDEX_H_
