// Global I/O instrumentation in the spirit of the disk access model the paper
// analyzes under (Aggarwal & Vitter). Every read/write issued through the
// src/io file wrappers is counted and classified as sequential (it starts
// exactly where the previous access on the same file ended) or random.
//
// The benchmark harnesses report these counters next to wall-clock time: on a
// laptop the OS page cache absorbs much of the physical cost of random I/O,
// but the counted block accesses preserve the complexity shape the paper
// reasons about (O(N) random I/Os for top-down insertion vs O(N/B) sequential
// I/Os for bottom-up bulk-loading).
//
// The counters live in the process-wide MetricRegistry ("io.read_ops",
// "io.bytes_written", ...) so they appear in every exposition dump, and the
// recording path additionally attributes each operation to the active
// *component scope* on the calling thread (IoComponentScope below):
// "io.query.read_ops", "io.sort.bytes_written", and so on. There is
// deliberately no Reset(): a plain-store reset racing RecordRead/RecordWrite
// silently lost counts — consumers take Snapshot() before and after and
// subtract (IoSnapshot::operator-).
#ifndef COCONUT_IO_IO_STATS_H_
#define COCONUT_IO_IO_STATS_H_

#include <cstdint>
#include <string>

#include "src/obs/metrics.h"

namespace coconut {

struct IoSnapshot {
  uint64_t read_ops = 0;
  uint64_t write_ops = 0;
  uint64_t random_read_ops = 0;
  uint64_t random_write_ops = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;

  uint64_t seq_read_ops() const { return read_ops - random_read_ops; }
  uint64_t seq_write_ops() const { return write_ops - random_write_ops; }

  IoSnapshot operator-(const IoSnapshot& other) const {
    IoSnapshot d;
    d.read_ops = read_ops - other.read_ops;
    d.write_ops = write_ops - other.write_ops;
    d.random_read_ops = random_read_ops - other.random_read_ops;
    d.random_write_ops = random_write_ops - other.random_write_ops;
    d.bytes_read = bytes_read - other.bytes_read;
    d.bytes_written = bytes_written - other.bytes_written;
    return d;
  }

  std::string ToString() const;
};

/// The six I/O counters for one attribution bucket (the process total or
/// one named component), registry-backed.
struct IoCounterSet {
  Counter* read_ops;
  Counter* write_ops;
  Counter* random_read_ops;
  Counter* random_write_ops;
  Counter* bytes_read;
  Counter* bytes_written;

  void RecordRead(uint64_t bytes, bool random) const {
    read_ops->Increment();
    bytes_read->Add(bytes);
    if (random) random_read_ops->Increment();
  }
  void RecordWrite(uint64_t bytes, bool random) const {
    write_ops->Increment();
    bytes_written->Add(bytes);
    if (random) random_write_ops->Increment();
  }
  IoSnapshot Snapshot() const {
    IoSnapshot s;
    s.read_ops = read_ops->Value();
    s.write_ops = write_ops->Value();
    s.random_read_ops = random_read_ops->Value();
    s.random_write_ops = random_write_ops->Value();
    s.bytes_read = bytes_read->Value();
    s.bytes_written = bytes_written->Value();
    return s;
  }
};

/// Process-wide I/O counters. Thread-safe; recording is wait-free (striped
/// relaxed counters, see src/obs/metrics.h).
class IoStats {
 public:
  static IoStats& Instance();

  void RecordRead(uint64_t bytes, bool random);
  void RecordWrite(uint64_t bytes, bool random);

  IoSnapshot Snapshot() const { return total_.Snapshot(); }

 private:
  IoStats();

  IoCounterSet total_;
};

/// Returns the (never-destroyed) counter set for a named component —
/// "query", "sort", "build", "journal", ... — registering
/// "io.<component>.*" metrics on first use. Snapshot it directly for
/// per-component deltas.
const IoCounterSet& GetIoComponent(const std::string& component);

/// RAII thread-local attribution scope: while alive on this thread, every
/// I/O the thread issues through the src/io wrappers is ALSO counted
/// against `component`. Scopes nest (the inner component wins, the outer is
/// restored on exit). Attribution is per-thread: work a scope fans out to
/// pool threads is only attributed where those threads establish their own
/// scope — place scopes inside the chunk/task bodies, not around the
/// fan-out.
class IoComponentScope {
 public:
  explicit IoComponentScope(const std::string& component);
  ~IoComponentScope();

  IoComponentScope(const IoComponentScope&) = delete;
  IoComponentScope& operator=(const IoComponentScope&) = delete;

 private:
  const IoCounterSet* prev_;
};

}  // namespace coconut

#endif  // COCONUT_IO_IO_STATS_H_
