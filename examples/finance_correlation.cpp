// Finance scenario: find the most correlated price history. On z-normalized
// series, minimizing Euclidean distance is equivalent to maximizing
// Pearson's correlation (paper §2), so an exact 1-NN query over z-normalized
// random walks — which the paper notes model financial data — is a maximum-
// correlation search. Correlation = 1 - ED^2 / (2n).
#include <cstdio>

#include "src/common/env.h"
#include "src/core/coconut_tree.h"
#include "src/series/dataset.h"
#include "src/series/generator.h"

using namespace coconut;

int main() {
  std::string dir;
  if (!MakeTempDir("coconut-finance-", &dir).ok()) return 1;
  const std::string raw_path = JoinPath(dir, "prices.bin");
  const std::string index_path = JoinPath(dir, "prices.ctree");

  // A universe of 40,000 z-normalized daily price histories (256 days).
  const size_t kCount = 40000, kLength = 256;
  RandomWalkGenerator gen(kLength, /*seed=*/2024);
  if (!WriteDataset(raw_path, &gen, kCount).ok()) return 1;

  CoconutOptions options;
  options.summary.series_length = kLength;
  options.leaf_capacity = 500;
  if (!CoconutTree::Build(raw_path, index_path, options).ok()) return 1;
  std::unique_ptr<CoconutTree> tree;
  if (!CoconutTree::Open(index_path, raw_path, &tree).ok()) return 1;
  std::printf("indexed %llu price histories\n",
              (unsigned long long)tree->num_entries());

  // Screen prospective strategies (return profiles NOT in the index)
  // against the universe: the exact 1-NN is the most correlated instrument.
  RandomWalkGenerator strategy_gen(kLength, /*seed=*/555);
  for (int candidate = 0; candidate < 3; ++candidate) {
    const Series profile = strategy_gen.NextSeries();
    SearchResult nn;
    if (!tree->ExactSearch(profile.data(), 1, &nn).ok()) return 1;
    const uint64_t peer = nn.offset / (kLength * sizeof(Value));
    const double corr =
        1.0 - (nn.distance * nn.distance) / (2.0 * kLength);
    std::printf(
        "strategy %d: most correlated instrument #%llu (ED %.3f, Pearson "
        "r = %.4f, %llu histories checked)\n",
        candidate, (unsigned long long)peer, nn.distance, corr,
        (unsigned long long)nn.visited_records);
  }

  (void)RemoveAll(dir);
  return 0;
}
