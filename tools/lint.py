#!/usr/bin/env python3
"""Repo lint for conventions the compiler cannot check.

Rules (see docs/CONCURRENCY.md and src/obs/README.md):

  raw-sync      std::mutex / std::shared_mutex / std::condition_variable /
                std::lock_guard / std::unique_lock / std::shared_lock /
                std::scoped_lock are banned outside src/common/ — use the
                annotated wrappers in src/common/sync.h so Clang Thread
                Safety Analysis sees every acquisition.
  raw-thread    std::thread is banned outside src/common/ and src/exec/ —
                route work through ThreadPool so it shows up in exec.*
                metrics and stays bounded.
  metric-name   Metric names are lowercase dotted paths; histograms carry a
                `_ns` suffix unless allowlisted as dimensionless.
  include-guard Headers use COCONUT_<PATH>_H_ guards.

A finding on one specific line can be suppressed with a trailing comment:

    std::thread t;  // coconut-lint: allow(raw-thread) -- <why>

Run from the repo root:  python3 tools/lint.py
"""

import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Histograms that measure something other than nanoseconds, so the `_ns`
# suffix rule does not apply. Keep this list short and justified.
DIMENSIONLESS_HISTOGRAMS = {
    "forest.compaction.merge_fan_in",  # counts input runs, not time
}

# First path segment of every metric registered from src/ (the component
# vocabulary documented in src/obs/README.md). A new component is a naming
# decision, not a typo: add it here and to the README table in the same
# change. Tests are exempt — they register throwaway names on purpose.
KNOWN_COMPONENTS = {
    "exec",    # thread pool / task execution
    "forest",  # LSM forest: flushes, compactions
    "io",      # file layer: reads, checksums, fdatasync
    "net",     # admin HTTP endpoint
    "obs",     # the obs subsystem's own internals
    "query",   # query engine stages
    "sort",    # external sort
    "store",   # sharded store: commits, journal, quarantine
}

RAW_SYNC_RE = re.compile(
    r"std::(recursive_mutex|timed_mutex|mutex|shared_mutex|shared_timed_mutex|"
    r"condition_variable_any|condition_variable|lock_guard|unique_lock|"
    r"shared_lock|scoped_lock)\b"
)
RAW_THREAD_RE = re.compile(r"std::thread\b(?!::)")
METRIC_CALL_RE = re.compile(
    r"Get(Counter|Gauge|Histogram)\(\s*\"([^\"]+)\"")
METRIC_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)*$")
ALLOW_RE = re.compile(r"coconut-lint:\s*allow\(([a-z-]+)\)")


def strip_comments_and_strings(line):
    """Removes // comments and string literal bodies so the sync/thread
    regexes only match code. Good enough for this codebase: no multi-line
    strings, and block comments are not used for code."""
    out = []
    i, n = 0, len(line)
    in_str = None
    while i < n:
        c = line[i]
        if in_str:
            if c == "\\":
                i += 2
                continue
            if c == in_str:
                in_str = None
            i += 1
            continue
        if c in ('"', "'"):
            in_str = c
            out.append(c)
            i += 1
            continue
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        out.append(c)
        i += 1
    return "".join(out)


def rel(path):
    return os.path.relpath(path, REPO_ROOT).replace(os.sep, "/")


def source_files(subdir, exts):
    for root, dirs, files in os.walk(os.path.join(REPO_ROOT, subdir)):
        dirs[:] = sorted(d for d in dirs if not d.startswith("."))
        for name in sorted(files):
            if os.path.splitext(name)[1] in exts:
                yield os.path.join(root, name)


def expected_guard(relpath):
    stem = relpath[:-len(".h")] if relpath.endswith(".h") else relpath
    # Guards drop the src/ prefix: src/core/knn.h -> COCONUT_CORE_KNN_H_.
    if stem.startswith("src/"):
        stem = stem[len("src/"):]
    return "COCONUT_" + re.sub(r"[/.\-]", "_", stem).upper() + "_H_"


def check_file(path, findings):
    relpath = rel(path)
    with open(path, encoding="utf-8") as f:
        lines = f.read().splitlines()

    in_common = relpath.startswith("src/common/")
    in_exec = relpath.startswith("src/exec/")

    pending_allow = set()
    for lineno, raw in enumerate(lines, start=1):
        allow = set(ALLOW_RE.findall(raw))
        code = strip_comments_and_strings(raw)
        # An allow on a comment-only line covers the next code line (long
        # declarations cannot always fit a trailing comment).
        if not code.strip():
            pending_allow |= allow
            continue
        allow |= pending_allow
        pending_allow = set()

        if not in_common and "raw-sync" not in allow:
            m = RAW_SYNC_RE.search(code)
            if m:
                findings.append(
                    (relpath, lineno, "raw-sync",
                     f"{m.group(0)} outside src/common/; use the annotated "
                     "wrappers in src/common/sync.h"))
        if not in_common and not in_exec and "raw-thread" not in allow:
            m = RAW_THREAD_RE.search(code)
            if m:
                findings.append(
                    (relpath, lineno, "raw-thread",
                     "std::thread outside src/common/ and src/exec/; use "
                     "ThreadPool, or justify with "
                     "// coconut-lint: allow(raw-thread)"))
        for m in METRIC_CALL_RE.finditer(raw):
            kind, name = m.group(1), m.group(2)
            if "metric-name" in allow:
                continue
            if not METRIC_NAME_RE.match(name):
                findings.append(
                    (relpath, lineno, "metric-name",
                     f'"{name}" is not a lowercase dotted path '
                     "(see src/obs/README.md)"))
            elif name.split(".")[0] not in KNOWN_COMPONENTS:
                findings.append(
                    (relpath, lineno, "metric-name",
                     f'"{name}" starts with unknown component '
                     f'"{name.split(".")[0]}"; add it to KNOWN_COMPONENTS '
                     "in tools/lint.py and the src/obs/README.md table"))
            elif (kind == "Histogram" and not name.endswith("_ns")
                  and name not in DIMENSIONLESS_HISTOGRAMS):
                findings.append(
                    (relpath, lineno, "metric-name",
                     f'histogram "{name}" lacks the _ns suffix; if it is '
                     "not nanoseconds, add it to DIMENSIONLESS_HISTOGRAMS "
                     "in tools/lint.py"))

    if relpath.endswith(".h"):
        guard = expected_guard(relpath)
        ifndef = next((l for l in lines if l.startswith("#ifndef ")), None)
        if ifndef is None or ifndef.split()[1] != guard:
            got = ifndef.split()[1] if ifndef else "<missing>"
            findings.append(
                (relpath, 1, "include-guard",
                 f"expected guard {guard}, found {got}"))


def main():
    findings = []
    for path in source_files("src", {".h", ".cc"}):
        check_file(path, findings)
    # Tests may use raw threads/mutexes to exercise races, but metric names
    # registered from tests still follow the scheme.
    for path in source_files("tests", {".h", ".cc"}):
        relpath = rel(path)
        with open(path, encoding="utf-8") as f:
            for lineno, raw in enumerate(f.read().splitlines(), start=1):
                if ALLOW_RE.search(raw):
                    continue
                for m in METRIC_CALL_RE.finditer(raw):
                    if not METRIC_NAME_RE.match(m.group(2)):
                        findings.append(
                            (relpath, lineno, "metric-name",
                             f'"{m.group(2)}" is not a lowercase dotted '
                             "path (see src/obs/README.md)"))

    for relpath, lineno, rule, msg in findings:
        print(f"{relpath}:{lineno}: [{rule}] {msg}")
    if findings:
        print(f"\n{len(findings)} finding(s).", file=sys.stderr)
        return 1
    print("lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
