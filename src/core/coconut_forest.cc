#include "src/core/coconut_forest.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <numeric>
#include <queue>

#include "src/common/env.h"
#include "src/series/distance.h"
#include "src/summary/invsax.h"

namespace coconut {

namespace {

/// Sorted in-memory entries (a flushed memtable) as a record stream.
class VectorStream : public SortedRecordStream {
 public:
  VectorStream(std::vector<uint8_t> data, size_t record_bytes)
      : data_(std::move(data)), record_bytes_(record_bytes) {}

  bool Next(uint8_t* out, Status* status) override {
    *status = Status::OK();
    if (pos_ + record_bytes_ > data_.size()) return false;
    std::memcpy(out, data_.data() + pos_, record_bytes_);
    pos_ += record_bytes_;
    return true;
  }
  uint64_t count() const override { return data_.size() / record_bytes_; }

 private:
  std::vector<uint8_t> data_;
  size_t record_bytes_;
  size_t pos_ = 0;
};

/// K-way merge over the (already sorted) leaf entries of several runs.
class MergedRunStream : public SortedRecordStream {
 public:
  MergedRunStream(std::vector<CoconutTree*> runs, size_t entry_bytes)
      : entry_bytes_(entry_bytes) {
    for (CoconutTree* run : runs) {
      cursors_.push_back(Cursor{run, 0, 0, {}, 0});
      total_ += run->num_entries();
    }
  }

  bool Next(uint8_t* out, Status* status) override {
    *status = Status::OK();
    int best = -1;
    for (size_t i = 0; i < cursors_.size(); ++i) {
      Cursor& c = cursors_[i];
      if (!EnsurePage(&c, status)) {
        if (!status->ok()) return false;
        continue;  // exhausted
      }
      if (best < 0 ||
          std::memcmp(CurrentEntry(c), CurrentEntry(cursors_[best]),
                      ZKey::kBytes) < 0) {
        best = static_cast<int>(i);
      }
    }
    if (best < 0) return false;
    Cursor& c = cursors_[best];
    std::memcpy(out, CurrentEntry(c), entry_bytes_);
    ++c.slot;
    return true;
  }

  uint64_t count() const override { return total_; }

 private:
  struct Cursor {
    CoconutTree* run;
    uint64_t next_leaf;
    size_t slot;
    std::vector<uint8_t> page;
    size_t page_count;
  };

  const uint8_t* CurrentEntry(const Cursor& c) const {
    return c.page.data() + c.slot * entry_bytes_;
  }

  /// Loads the next leaf page when the current one is exhausted; returns
  /// false when the run has no entries left.
  bool EnsurePage(Cursor* c, Status* status) {
    while (c->page.empty() || c->slot >= c->page_count) {
      if (c->next_leaf >= c->run->num_leaves()) return false;
      *status = c->run->ReadLeafEntriesRaw(c->next_leaf, &c->page,
                                           &c->page_count);
      if (!status->ok()) return false;
      ++c->next_leaf;
      c->slot = 0;
    }
    return true;
  }

  std::vector<Cursor> cursors_;
  size_t entry_bytes_;
  uint64_t total_ = 0;
};

}  // namespace

std::string CoconutForest::RunPath(uint64_t id) const {
  return JoinPath(dir_, "run-" + std::to_string(id) + ".ctree");
}

Status CoconutForest::Open(const std::string& raw_path,
                           const std::string& dir,
                           const ForestOptions& options,
                           std::unique_ptr<CoconutForest>* out) {
  COCONUT_RETURN_IF_ERROR(options.Validate());
  std::unique_ptr<CoconutForest> forest(new CoconutForest());
  forest->options_ = options;
  forest->raw_path_ = raw_path;
  forest->dir_ = dir;
  COCONUT_RETURN_IF_ERROR(MakeDirs(dir));

  if (!FileExists(raw_path)) {
    std::unique_ptr<WritableFile> f;
    COCONUT_RETURN_IF_ERROR(WritableFile::Create(raw_path, &f));
    COCONUT_RETURN_IF_ERROR(f->Close());
  }
  COCONUT_RETURN_IF_ERROR(FileSize(raw_path, &forest->raw_bytes_));
  if (forest->raw_bytes_ > 0) {
    // Existing data becomes the first run (a plain bulk load).
    const std::string path = forest->RunPath(forest->next_run_id_++);
    COCONUT_RETURN_IF_ERROR(
        CoconutTree::Build(raw_path, path, options.tree));
    std::unique_ptr<CoconutTree> run;
    COCONUT_RETURN_IF_ERROR(CoconutTree::Open(path, raw_path, &run));
    forest->runs_.push_back(std::move(run));
  }
  *out = std::move(forest);
  return Status::OK();
}

Status CoconutForest::Insert(const Series& series) {
  return InsertBatch({series});
}

Status CoconutForest::InsertBatch(const std::vector<Series>& batch) {
  const size_t n = options_.tree.summary.series_length;
  for (const Series& s : batch) {
    if (s.size() != n) {
      return Status::InvalidArgument("series length mismatch");
    }
  }
  COCONUT_RETURN_IF_ERROR(AppendToDataset(raw_path_, batch));
  for (const Series& s : batch) {
    memtable_.push_back(MemEntry{s, raw_bytes_});
    raw_bytes_ += n * sizeof(Value);
    if (memtable_.size() >= options_.memtable_series) {
      COCONUT_RETURN_IF_ERROR(FlushLocked());
    }
  }
  if (runs_.size() > options_.max_runs) {
    COCONUT_RETURN_IF_ERROR(CompactAll());
  }
  return Status::OK();
}

Status CoconutForest::Flush() {
  if (memtable_.empty()) return Status::OK();
  return FlushLocked();
}

Status CoconutForest::FlushLocked() {
  // Encode and sort the memtable entries, then bulk-load a new run — the
  // sequential LSM flush.
  const size_t entry_bytes = LeafEntryBytes(options_.tree);
  const SummaryOptions& sum = options_.tree.summary;
  std::vector<uint8_t> records(memtable_.size() * entry_bytes);
  for (size_t i = 0; i < memtable_.size(); ++i) {
    const ZKey key = InvSaxFromSeries(memtable_[i].series.data(), sum);
    EncodeLeafEntry(key, memtable_[i].offset,
                    options_.tree.materialized ? memtable_[i].series.data()
                                               : nullptr,
                    sum.series_length, records.data() + i * entry_bytes);
  }
  std::vector<uint32_t> order(memtable_.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return std::memcmp(records.data() + size_t{a} * entry_bytes,
                       records.data() + size_t{b} * entry_bytes,
                       ZKey::kBytes) < 0;
  });
  std::vector<uint8_t> sorted(records.size());
  for (size_t i = 0; i < memtable_.size(); ++i) {
    std::memcpy(sorted.data() + i * entry_bytes,
                records.data() + size_t{order[i]} * entry_bytes, entry_bytes);
  }
  const std::string path = RunPath(next_run_id_++);
  {
    VectorStream stream(std::move(sorted), entry_bytes);
    COCONUT_RETURN_IF_ERROR(
        CoconutTreeBuilder::BulkLoad(&stream, options_.tree, path));
  }
  std::unique_ptr<CoconutTree> run;
  COCONUT_RETURN_IF_ERROR(CoconutTree::Open(path, raw_path_, &run));
  runs_.push_back(std::move(run));
  memtable_.clear();
  return Status::OK();
}

Status CoconutForest::CompactAll() {
  COCONUT_RETURN_IF_ERROR(Flush());
  if (runs_.size() <= 1) return Status::OK();
  const size_t entry_bytes = LeafEntryBytes(options_.tree);
  const std::string path = RunPath(next_run_id_++);
  {
    std::vector<CoconutTree*> inputs;
    inputs.reserve(runs_.size());
    for (auto& run : runs_) inputs.push_back(run.get());
    MergedRunStream stream(std::move(inputs), entry_bytes);
    COCONUT_RETURN_IF_ERROR(
        CoconutTreeBuilder::BulkLoad(&stream, options_.tree, path));
  }
  // Swap in the merged run; drop and delete the inputs.
  std::vector<std::string> old_paths;
  for (auto& run : runs_) old_paths.push_back(run->index_path());
  runs_.clear();
  std::unique_ptr<CoconutTree> merged;
  COCONUT_RETURN_IF_ERROR(CoconutTree::Open(path, raw_path_, &merged));
  runs_.push_back(std::move(merged));
  for (const std::string& p : old_paths) {
    (void)RemoveAll(p);
    (void)RemoveAll(p + ".sax");
  }
  return Status::OK();
}

uint64_t CoconutForest::num_entries() const {
  uint64_t total = memtable_.size();
  for (const auto& run : runs_) total += run->num_entries();
  return total;
}

Status CoconutForest::ExactSearch(const Value* query, SearchResult* result) {
  if (num_entries() == 0) return Status::NotFound("empty forest");
  const size_t n = options_.tree.summary.series_length;
  SearchResult best;
  best.distance = std::numeric_limits<double>::infinity();
  // Memtable: brute force (it is small by construction).
  for (const MemEntry& e : memtable_) {
    const double d = Euclidean(e.series.data(), query, n);
    ++best.visited_records;
    if (d < best.distance) {
      best.distance = d;
      best.offset = e.offset;
    }
  }
  // Runs: per-run exact answers; the global exact NN is their minimum.
  for (auto& run : runs_) {
    SearchResult r;
    COCONUT_RETURN_IF_ERROR(run->ExactSearch(query, 1, &r));
    best.visited_records += r.visited_records;
    best.leaves_read += r.leaves_read;
    if (r.distance < best.distance) {
      best.distance = r.distance;
      best.offset = r.offset;
    }
  }
  *result = best;
  return Status::OK();
}

Status CoconutForest::ApproxSearch(const Value* query, size_t num_leaves,
                                   SearchResult* result) {
  if (num_entries() == 0) return Status::NotFound("empty forest");
  const size_t n = options_.tree.summary.series_length;
  SearchResult best;
  best.distance = std::numeric_limits<double>::infinity();
  for (const MemEntry& e : memtable_) {
    const double d = Euclidean(e.series.data(), query, n);
    ++best.visited_records;
    if (d < best.distance) {
      best.distance = d;
      best.offset = e.offset;
    }
  }
  for (auto& run : runs_) {
    SearchResult r;
    COCONUT_RETURN_IF_ERROR(run->ApproxSearch(query, num_leaves, &r));
    best.visited_records += r.visited_records;
    best.leaves_read += r.leaves_read;
    if (r.distance < best.distance) {
      best.distance = r.distance;
      best.offset = r.offset;
    }
  }
  *result = best;
  return Status::OK();
}

}  // namespace coconut
