// Bounded, deadline-aware retry for transient file-I/O failures.
//
// Retry taxonomy (full table in docs/ROBUSTNESS.md):
//  - EINTR        retried inline at the syscall loop, immediately, forever —
//                 an interrupted syscall did nothing.
//  - short read/  the pread/pwrite loops already resume partial transfers;
//    short write  a short transfer is progress, not an error.
//  - other read   positional reads are side-effect free, so any IOError
//    errors       except a deterministic "unexpected EOF" (file really is
//                 too short) is worth RetryPolicy::max_attempts tries with
//                 exponential backoff. This also covers failpoint-injected
//                 errors, which is how the tests drive this layer
//                 (probability / budget actions on io.file.read).
//  - write errors retried ONLY when no byte of the attempt persisted (the
//                 failure came before the first successful pwrite); once a
//                 prefix is durable a blind retry could interleave with a
//                 concurrent append, so the error propagates to the commit
//                 protocol, which owns recovery.
//  - torn writes  never retried: the model is a crashed sector, the caller's
//                 journal/checksum machinery is the answer.
//  - fdatasync    never retried: after a failed fsync the kernel may have
//                 dropped the dirty pages, so a second fsync that "succeeds"
//                 proves nothing (the classic fsync-gate).
//
// Deadline awareness: the backoff sleeps consult the calling thread's
// ambient request context (IoDeadlineScope). A retry never sleeps past the
// deadline; once the context is expired or cancelled the original error
// propagates immediately (the caller's next cooperative poll turns it into
// DeadlineExceeded/Aborted with proper attribution).
#ifndef COCONUT_IO_RETRY_H_
#define COCONUT_IO_RETRY_H_

#include <cstdint>

#include "src/common/context.h"
#include "src/common/status.h"

namespace coconut {

struct RetryPolicy {
  /// Total tries including the first; <= 1 disables retry.
  int max_attempts = 4;
  uint64_t initial_backoff_us = 100;
  double backoff_multiplier = 4.0;
  uint64_t max_backoff_us = 20000;  // 20 ms

  /// The process-default policy for the src/io/file.cc sites.
  static const RetryPolicy& IoDefault();
};

/// RAII ambient context for I/O issued by this thread: the retry backoff
/// consults it so a request with 30 ms left never burns 20 ms sleeping.
/// Mirrors the IoComponentScope idiom (src/io/io_stats.h); scopes nest.
class IoDeadlineScope {
 public:
  explicit IoDeadlineScope(const Context* ctx);
  ~IoDeadlineScope();
  IoDeadlineScope(const IoDeadlineScope&) = delete;
  IoDeadlineScope& operator=(const IoDeadlineScope&) = delete;

  /// The innermost scope's context on this thread, or null.
  static const Context* Current();

 private:
  const Context* prev_;
};

/// Per-operation retry driver. Cheap to construct (no metrics touch until a
/// failure happens); the file.cc sites build one per logical operation:
///
///   RetryState retry("io.file.read");
///   for (;;) {
///     Status st = AttemptOnce(...);
///     if (st.ok()) { retry.NoteSuccess(); return st; }
///     if (!retry.ShouldRetry(st)) return st;
///   }
class RetryState {
 public:
  explicit RetryState(const char* site,
                      const RetryPolicy& policy = RetryPolicy::IoDefault())
      : site_(site), policy_(&policy) {}

  /// Classifies `st`, and when it is worth another attempt: sleeps the
  /// (deadline-clamped) backoff, records io.retry.attempts, returns true.
  /// Returns false when the error is permanent, attempts are exhausted
  /// (io.retry.exhausted), or the ambient context is already dead.
  bool ShouldRetry(const Status& st);

  /// Records io.retry.recovered when the operation succeeded after >= 1
  /// retry; call on the success path.
  void NoteSuccess();

  int attempts_used() const { return attempts_used_; }

 private:
  const char* site_;
  const RetryPolicy* policy_;
  int attempts_used_ = 0;  // retries performed so far
};

}  // namespace coconut

#endif  // COCONUT_IO_RETRY_H_
