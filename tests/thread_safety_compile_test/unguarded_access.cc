// Negative-compile fixture: every function below violates the annotated
// locking contract, and clang -Werror=thread-safety-analysis must REJECT
// this file. If it ever compiles, the annotations in src/common/sync.h
// have stopped doing their job (macros defined away, capability attribute
// lost, ...) and the whole static locking story is silently off.
//
// Driven by tests/thread_safety_compile_test/expect_fail.cmake; the
// guarded_access.cc control proves failures come from the analysis, not
// from the fixture being unbuildable. GCC compiles the annotations to
// nothing, so these tests exist only in clang builds.
#include "src/common/sync.h"

namespace {

class Counter {
 public:
  // Violation 1: writes a GUARDED_BY member with no lock held.
  void IncrementUnlocked() { ++value_; }

  // Violation 2: reads a GUARDED_BY member with no lock held.
  int ReadUnlocked() const { return value_; }

  // Violation 3: calls a REQUIRES function without holding the mutex.
  void CallRequiresUnlocked() { IncrementLocked(); }

  // Violation 4: returns while still holding the scoped lock's mutex via a
  // manual double-unlock bookkeeping error (lock released twice).
  void DoubleUnlock() {
    coconut::MutexLock lock(&mu_);
    lock.Unlock();
    lock.Unlock();
  }

 private:
  void IncrementLocked() REQUIRES(mu_) { ++value_; }

  mutable coconut::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.IncrementUnlocked();
  c.CallRequiresUnlocked();
  c.DoubleUnlock();
  return c.ReadUnlocked();
}
