// Embedded HTTP admin endpoint (src/net/): request routing, Prometheus
// exposition parseability, health-check 503 flips on a genuinely poisoned
// store, live /tracez windows, and serving under concurrent QueryEngine
// load (a ThreadSanitizer target, see .github/workflows/ci.yml).
#include "src/net/admin_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/failpoint.h"
#include "src/core/coconut_forest.h"
#include "src/exec/query_engine.h"
#include "src/exec/thread_pool.h"
#include "src/obs/metrics.h"
#include "src/series/generator.h"
#include "src/store/sharded_store.h"
#include "tests/test_util.h"

namespace coconut {
namespace {

using testing::ScratchDir;

constexpr size_t kSeriesLen = 64;

/// Minimal blocking HTTP/1.1 client: one GET (or arbitrary-method) request
/// to 127.0.0.1:`port`, returns the status code and fills `body`.
int HttpRequest(uint16_t port, const std::string& method,
                const std::string& target, std::string* body) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  const std::string req = method + " " + target +
                          " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                          "Connection: close\r\n\r\n";
  size_t sent = 0;
  while (sent < req.size()) {
    const ssize_t n = ::send(fd, req.data() + sent, req.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return -1;
    }
    sent += static_cast<size_t>(n);
  }
  std::string resp;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    resp.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);

  // "HTTP/1.1 200 OK\r\n...\r\n\r\n<body>"
  if (resp.compare(0, 9, "HTTP/1.1 ") != 0) return -1;
  const int status = std::atoi(resp.c_str() + 9);
  const size_t sep = resp.find("\r\n\r\n");
  if (body != nullptr) {
    *body = sep == std::string::npos ? "" : resp.substr(sep + 4);
  }
  return status;
}

int HttpGet(uint16_t port, const std::string& target, std::string* body) {
  return HttpRequest(port, "GET", target, body);
}

std::vector<Series> MakeSeries(size_t count, uint64_t seed) {
  auto gen = MakeGenerator(DatasetKind::kRandomWalk, kSeriesLen, seed);
  std::vector<Series> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) out.push_back(gen->NextSeries());
  return out;
}

TEST(AdminServer, BindsEphemeralPortAndStops) {
  AdminServer server;
  ASSERT_OK(server.Start(0));
  EXPECT_TRUE(server.running());
  EXPECT_GT(server.port(), 0);
  server.Stop();
  EXPECT_FALSE(server.running());
  server.Stop();  // idempotent
}

TEST(AdminServer, RejectsDoubleStart) {
  AdminServer server;
  ASSERT_OK(server.Start(0));
  EXPECT_FALSE(server.Start(0).ok());
  server.Stop();
}

TEST(AdminServer, ConcurrentStopCallsAreSafe) {
  // Regression: Stop() used to read listen_fd_/thread_ without
  // serialization, so two racing Stop calls (e.g. an explicit Stop racing
  // the destructor) could double-join or double-close. Both the data race
  // and the double-free show up under the TSan/ASan CI jobs.
  for (int round = 0; round < 8; ++round) {
    AdminServer server;
    ASSERT_OK(server.Start(0));
    const uint16_t port = server.port();
    // A request in flight while the stops race, so the serve thread is
    // genuinely busy rather than parked in poll().
    std::thread client([port]() {
      std::string body;
      HttpGet(port, "/metrics.json", &body);  // outcome irrelevant
    });
    std::vector<std::thread> stoppers;
    for (int i = 0; i < 4; ++i) {
      stoppers.emplace_back([&server]() { server.Stop(); });
    }
    for (std::thread& t : stoppers) t.join();
    client.join();
    EXPECT_FALSE(server.running());
    // The port must be released: a fresh server can bind it again.
    AdminServer rebind;
    ASSERT_OK(rebind.Start(port));
    rebind.Stop();
  }
}

TEST(AdminServer, ServesAllEndpointsUnderConcurrentQueryLoad) {
  ScratchDir dir;
  ForestOptions opts;
  opts.tree.summary.series_length = kSeriesLen;
  opts.tree.summary.segments = 16;
  opts.tree.leaf_capacity = 64;
  opts.tree.tmp_dir = dir.path();
  opts.memtable_series = 100;
  opts.max_runs = 4;

  std::vector<Series> data;
  testing::MakeDatasetFile(dir.File("data.bin"), DatasetKind::kRandomWalk,
                           400, kSeriesLen, 7)
      .swap(data);
  std::unique_ptr<CoconutForest> forest;
  ASSERT_OK(CoconutForest::Open(dir.File("data.bin"), dir.File("forest"),
                                opts, &forest));

  AdminServer server;
  ASSERT_OK(server.Start(0));
  const uint16_t port = server.port();

  // One synchronous batch before the scrapes: registers the query.* metric
  // families the /metrics assertions look for (families appear in the
  // registry on first use).
  {
    ThreadPool warm(1);
    QueryEngine engine(&warm);
    std::vector<SearchResult> results;
    QuerySpec spec;
    spec.mode = QuerySpec::Mode::kExact;
    spec.k = 1;
    ASSERT_OK(engine.ExecuteBatch(*forest, MakeSeries(2, 98), spec, &results));
  }

  // Background query pressure for the whole scrape sequence: the server
  // renders registry/trace snapshots while these threads record into them.
  std::atomic<bool> stop{false};
  std::thread load([&forest, &stop]() {
    ThreadPool pool(4);
    QueryEngine engine(&pool);
    const std::vector<Series> queries = MakeSeries(8, 99);
    QuerySpec spec;
    spec.mode = QuerySpec::Mode::kExact;
    spec.k = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      std::vector<SearchResult> results;
      const Status st = engine.ExecuteBatch(*forest, queries, spec, &results);
      if (!st.ok()) {
        ADD_FAILURE() << st.ToString();
        break;
      }
    }
  });

  std::string body;
  // /metrics: Prometheus text; every non-comment line is "<name> <value>".
  EXPECT_EQ(HttpGet(port, "/metrics", &body), 200);
  EXPECT_NE(body.find("# TYPE "), std::string::npos);
  EXPECT_NE(body.find("coconut_query_count"), std::string::npos);
  size_t parsed_lines = 0;
  std::istringstream lines(body);
  for (std::string line; std::getline(lines, line);) {
    if (line.empty() || line[0] == '#') continue;
    const size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    ASSERT_GT(sp, 0u) << line;
    // The value is a plain non-negative number (counters/buckets) or a
    // float rendered by ToPrometheusText.
    const std::string value = line.substr(sp + 1);
    EXPECT_NE(value.find_first_of("0123456789"), std::string::npos) << line;
    ++parsed_lines;
  }
  EXPECT_GT(parsed_lines, 10u);

  EXPECT_EQ(HttpGet(port, "/metrics.json", &body), 200);
  EXPECT_EQ(body[0], '{');
  EXPECT_NE(body.find("\"counters\""), std::string::npos);

  EXPECT_EQ(HttpGet(port, "/healthz", &body), 200);
  EXPECT_EQ(body, "ok\n");

  EXPECT_EQ(HttpGet(port, "/statusz", &body), 200);
  EXPECT_NE(body.find("\"simd_kernel\""), std::string::npos);
  EXPECT_NE(body.find("\"uptime_s\""), std::string::npos);
  EXPECT_NE(body.find("\"integrity\""), std::string::npos);
  EXPECT_NE(body.find("\"crc32c_backend\""), std::string::npos);
  EXPECT_NE(body.find("\"checksums_verified\""), std::string::npos);
  EXPECT_NE(body.find("\"shards_quarantined\""), std::string::npos);
  EXPECT_NE(body.find("\"journal_checkpoints\""), std::string::npos);
  EXPECT_NE(body.find("\"gauges\""), std::string::npos);

  EXPECT_EQ(HttpGet(port, "/queryz", &body), 200);
  EXPECT_NE(body.find("\"recent\""), std::string::npos);
  EXPECT_NE(body.find("\"threshold_ns\""), std::string::npos);

  // /tracez records a live window while the load thread is querying, so
  // the JSON must contain real spans from the query path.
  EXPECT_EQ(HttpGet(port, "/tracez?duration_ms=150", &body), 200);
  EXPECT_NE(body.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(body.find("query.exact"), std::string::npos);

  EXPECT_EQ(HttpGet(port, "/nope", &body), 404);
  EXPECT_EQ(HttpRequest(port, "POST", "/metrics", &body), 405);

  stop.store(true);
  load.join();
  server.Stop();
}

StoreOptions SmallStoreOptions(const ScratchDir& dir, size_t num_shards) {
  StoreOptions opts;
  opts.forest.tree.summary.series_length = kSeriesLen;
  opts.forest.tree.summary.segments = 16;
  opts.forest.tree.leaf_capacity = 64;
  opts.forest.tree.tmp_dir = dir.path();
  opts.forest.memtable_series = 100;
  opts.forest.max_runs = 3;
  opts.num_shards = num_shards;
  return opts;
}

/// The intended store wiring for /healthz: poison (torn commit) makes the
/// process unavailable, quarantine (a corrupt shard) only degrades it —
/// reads still answer over the healthy shards.
AdminServer::HealthProbe StoreHealthProbe(ShardedStore* store) {
  return [store]() {
    AdminServer::HealthStatus h;
    std::string detail;
    if (store->QuarantinedShards(&detail) > 0) {
      h.state = AdminServer::HealthStatus::State::kDegraded;
      h.detail = detail;
      return h;
    }
    const Status s = store->WriteHealth();
    if (!s.ok()) {
      h.state = AdminServer::HealthStatus::State::kUnavailable;
      h.detail = s.ToString();
    }
    return h;
  };
}

TEST(AdminServer, HealthzFlipsTo503WhenStorePoisoned) {
  FailpointGuard failpoints;
  ScratchDir dir;
  std::unique_ptr<ShardedStore> store;
  ASSERT_OK(
      ShardedStore::Open(dir.File("store"), SmallStoreOptions(dir, 2), &store));

  AdminServer server;
  server.SetHealthCheck([&store]() { return store->WriteHealth(); });
  ASSERT_OK(server.Start(0));
  const uint16_t port = server.port();

  std::string body;
  EXPECT_EQ(HttpGet(port, "/healthz", &body), 200);
  EXPECT_EQ(body, "ok\n");

  // A multi-shard batch takes the journaled commit path, hits the armed
  // kill point, and poisons the store.
  std::vector<Series> batch = MakeSeries(120, 11);
  std::map<size_t, size_t> owners;
  for (const Series& s : batch) ++owners[store->ShardForSeries(s)];
  ASSERT_GT(owners.size(), 1u) << "batch routed to a single shard";
  Failpoints::Default().ArmError("store.commit.after_begin");
  EXPECT_FALSE(store->InsertBatch(batch).ok());

  EXPECT_EQ(HttpGet(port, "/healthz", &body), 503);
  EXPECT_NE(body.find("read-only"), std::string::npos) << body;
  server.Stop();
}

TEST(AdminServer, HealthzReportsDegradedNotUnavailableOnQuarantine) {
  ScratchDir dir;
  const std::string root = dir.File("store");
  std::unique_ptr<ShardedStore> store;
  ASSERT_OK(ShardedStore::Open(root, SmallStoreOptions(dir, 2), &store));
  const std::vector<Series> data = MakeSeries(300, 21);
  std::map<size_t, size_t> owners;
  for (const Series& s : data) ++owners[store->ShardForSeries(s)];
  ASSERT_GT(owners.size(), 1u) << "batch routed to a single shard";
  ASSERT_OK(store->InsertBatch(data));
  ASSERT_OK(store->Flush());

  AdminServer server;
  server.SetHealthProbe(StoreHealthProbe(store.get()));
  ASSERT_OK(server.Start(0));
  const uint16_t port = server.port();

  std::string body;
  EXPECT_EQ(HttpGet(port, "/healthz", &body), 200);
  EXPECT_EQ(body, "ok\n");

  // Corrupt one shard's run sidecar under the live store; the next exact
  // query detects the checksum failure and quarantines that shard.
  bool corrupted = false;
  for (size_t i = 0; i < store->num_shards() && !corrupted; ++i) {
    const std::string shard_dir = JoinPath(root, "shard-" + std::to_string(i));
    for (const auto& entry : std::filesystem::directory_iterator(shard_dir)) {
      if (!entry.is_regular_file()) continue;
      if (entry.path().extension() != ".sax") continue;
      std::fstream f(entry.path(),
                     std::ios::in | std::ios::out | std::ios::binary);
      ASSERT_TRUE(f.good());
      f.seekg(0, std::ios::end);
      const std::streamoff size = f.tellg();
      ASSERT_GT(size, 0);
      f.seekg(size / 2);
      char b = 0;
      f.read(&b, 1);
      b = static_cast<char>(b ^ 0x01);
      f.seekp(size / 2);
      f.write(&b, 1);
      corrupted = true;
      break;
    }
  }
  ASSERT_TRUE(corrupted) << "no run sidecar found to corrupt";
  SearchResult r;
  const std::vector<Series> queries = MakeSeries(1, 22);
  ASSERT_OK(store->ExactSearch(queries[0].data(), &r, 1));
  EXPECT_TRUE(r.degraded);

  // Degraded, not down: 200 so load balancers keep routing reads, with the
  // quarantine cause in the body for operators.
  EXPECT_EQ(HttpGet(port, "/healthz", &body), 200);
  EXPECT_EQ(body.rfind("degraded: ", 0), 0u) << body;
  EXPECT_NE(body.find("quarantined"), std::string::npos) << body;
  server.Stop();
}

TEST(AdminServer, StatuszReportsAdmissionSection) {
  AdminServer server;  // not started: Handle() needs no port
  const AdminServer::Response statusz = server.Handle("GET", "/statusz");
  EXPECT_EQ(statusz.status, 200);
  EXPECT_NE(statusz.body.find("\"admission\":{"), std::string::npos)
      << statusz.body;
  EXPECT_NE(statusz.body.find("\"shed\":"), std::string::npos);
  EXPECT_NE(statusz.body.find("\"inflight\":"), std::string::npos);
}

TEST(AdminServer, SlowClientCannotWedgeTheServeLoop) {
  // Inflate /metrics until the response dwarfs any socket buffer — the
  // kernel auto-grows a blocked sender's buffer to tcp_wmem[2] (commonly
  // 4 MiB), so only a response well past that forces the server's send
  // loop to actually block on a client that never reads.
  MetricRegistry& reg = MetricRegistry::Default();
  for (int i = 0; i < 80000; ++i) {
    reg.GetCounter("net.slow_client_padding.extremely_long_counter_name_" +
                   std::to_string(i))
        ->Increment();
  }

  AdminServer server;
  ASSERT_OK(server.Start(0));
  const uint16_t port = server.port();

  // The slow client: shrink its receive buffer before connecting, send a
  // /metrics request, then never read a byte. Without the send-side
  // timeout this wedges the (single-threaded) serve loop forever.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  int rcvbuf = 1024;  // kernel clamps to its minimum; still far below body
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string req =
      "GET /metrics HTTP/1.1\r\nHost: 127.0.0.1\r\nConnection: close\r\n\r\n";
  ASSERT_EQ(::send(fd, req.data(), req.size(), 0),
            static_cast<ssize_t>(req.size()));

  // A well-behaved request completes once the 2 s SO_SNDTIMEO abandons the
  // wedged connection. Generous bound: timeout + scheduling slack.
  const auto t0 = std::chrono::steady_clock::now();
  std::string body;
  EXPECT_EQ(HttpGet(port, "/healthz", &body), 200);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  // The lower bound proves the serve loop genuinely wedged on the slow
  // client (and was freed by the timeout) rather than the response
  // disappearing into kernel buffers.
  EXPECT_GT(elapsed, std::chrono::milliseconds(1500));
  EXPECT_LT(elapsed, std::chrono::seconds(10));
  ::close(fd);
  server.Stop();
}

TEST(AdminServer, HandleRoutesWithoutSockets) {
  AdminServer server;  // not started: Handle() needs no port
  const AdminServer::Response metrics = server.Handle("GET", "/metrics");
  EXPECT_EQ(metrics.status, 200);
  const AdminServer::Response tracez =
      server.Handle("GET", "/tracez?duration_ms=1");
  EXPECT_EQ(tracez.status, 200);
  EXPECT_NE(tracez.body.find("traceEvents"), std::string::npos);
  EXPECT_EQ(server.Handle("GET", "/missing").status, 404);
  EXPECT_EQ(server.Handle("DELETE", "/metrics").status, 405);
}

}  // namespace
}  // namespace coconut
