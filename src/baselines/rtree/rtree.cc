#include "src/baselines/rtree/rtree.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <queue>

#include "src/common/env.h"
#include "src/common/timer.h"
#include "src/io/buffered_io.h"
#include "src/core/knn.h"
#include "src/series/distance.h"
#include "src/sort/external_sort.h"
#include "src/summary/mindist.h"
#include "src/summary/paa.h"

namespace coconut {

namespace {

/// Order-preserving big-endian encoding of a float: unsigned comparison of
/// the encoding equals numeric comparison of the float.
void EncodeFloatKey(float v, uint8_t* out) {
  uint32_t u;
  std::memcpy(&u, &v, 4);
  u = (u & 0x80000000u) ? ~u : (u | 0x80000000u);
  out[0] = static_cast<uint8_t>(u >> 24);
  out[1] = static_cast<uint8_t>(u >> 16);
  out[2] = static_cast<uint8_t>(u >> 8);
  out[3] = static_cast<uint8_t>(u);
}

/// STR slab record: [sort key: 4][paa: w * 4][offset: 8][series?].
struct StrLayout {
  size_t w;
  size_t series_len;
  bool materialized;

  size_t payload_bytes() const {
    return w * 4 + 8 + (materialized ? series_len * sizeof(Value) : 0);
  }
  size_t record_bytes() const { return 4 + payload_bytes(); }

  float Dim(const uint8_t* rec, size_t d) const {
    float v;
    std::memcpy(&v, rec + 4 + d * 4, 4);
    return v;
  }
  void SetKey(uint8_t* rec, size_t d) const {
    EncodeFloatKey(Dim(rec, d), rec);
  }
};

/// Recursive STR: sorts `path` (count records) by dimension `dim`, then
/// either emits leaf runs (count <= capacity) or splits into slabs and
/// recurses with the next dimension. Emitted records (payload only, key
/// stripped) arrive at `emit` in final leaf order.
Status StrPartition(const std::string& path, uint64_t count, size_t dim,
                    const StrLayout& layout, const RtreeOptions& options,
                    const std::string& tmp_dir, uint64_t* next_tmp_id,
                    size_t* sort_passes, BufferedWriter* emit) {
  // Sort this range by `dim` (keys are rewritten for the current dim).
  ExternalSortOptions so;
  so.record_bytes = layout.record_bytes();
  so.key_bytes = 4;
  so.memory_budget_bytes = options.memory_budget_bytes;
  so.tmp_dir = tmp_dir;
  so.num_threads = options.num_threads;
  ExternalSorter sorter(so);
  {
    BufferedReader reader;
    COCONUT_RETURN_IF_ERROR(reader.Open(path));
    // Rewrite keys a chunk at a time and feed the sorter in bulk.
    const size_t rb = layout.record_bytes();
    const size_t chunk_records = std::max<size_t>(1, (size_t{1} << 20) / rb);
    std::vector<uint8_t> chunk(chunk_records * rb);
    uint64_t remaining = count;
    while (remaining > 0) {
      const size_t take = static_cast<size_t>(
          std::min<uint64_t>(remaining, chunk_records));
      COCONUT_RETURN_IF_ERROR(reader.Read(chunk.data(), take * rb));
      for (size_t i = 0; i < take; ++i) {
        layout.SetKey(chunk.data() + i * rb, dim);
      }
      COCONUT_RETURN_IF_ERROR(sorter.AddBatch(chunk.data(), take));
      remaining -= take;
    }
  }
  ++*sort_passes;
  std::unique_ptr<SortedRecordStream> sorted;
  COCONUT_RETURN_IF_ERROR(sorter.Finish(&sorted));

  const size_t dims = layout.w;
  const uint64_t cap = options.leaf_capacity;
  if (count <= cap || dim + 1 >= dims) {
    // Emit leaf runs directly (the last dimension chops into pages).
    std::vector<uint8_t> rec(layout.record_bytes());
    Status st;
    while (sorted->Next(rec.data(), &st)) {
      COCONUT_RETURN_IF_ERROR(
          emit->Write(rec.data() + 4, layout.payload_bytes()));
    }
    return st;
  }

  // Slab count: S = ceil((P)^(1/(D-d))) with P = pages in this range.
  const double pages = std::ceil(static_cast<double>(count) / cap);
  const double power = 1.0 / static_cast<double>(dims - dim);
  const uint64_t slabs = std::max<uint64_t>(
      2, static_cast<uint64_t>(std::ceil(std::pow(pages, power))));
  const uint64_t slab_size = (count + slabs - 1) / slabs;

  std::vector<uint8_t> rec(layout.record_bytes());
  Status st;
  uint64_t emitted = 0;
  while (emitted < count) {
    const uint64_t this_slab = std::min<uint64_t>(slab_size, count - emitted);
    const std::string slab_path = JoinPath(
        tmp_dir, "str-slab-" + std::to_string((*next_tmp_id)++) + ".bin");
    {
      BufferedWriter slab;
      COCONUT_RETURN_IF_ERROR(slab.Open(slab_path));
      for (uint64_t i = 0; i < this_slab; ++i) {
        if (!sorted->Next(rec.data(), &st)) {
          COCONUT_RETURN_IF_ERROR(st);
          return Status::Internal("STR slab underflow");
        }
        COCONUT_RETURN_IF_ERROR(slab.Write(rec.data(), rec.size()));
      }
      COCONUT_RETURN_IF_ERROR(slab.Finish());
    }
    COCONUT_RETURN_IF_ERROR(StrPartition(slab_path, this_slab, dim + 1,
                                         layout, options, tmp_dir,
                                         next_tmp_id, sort_passes, emit));
    COCONUT_RETURN_IF_ERROR(RemoveAll(slab_path));
    emitted += this_slab;
  }
  return Status::OK();
}

}  // namespace

Status RTree::Build(const std::string& raw_path,
                    const std::string& storage_path,
                    const RtreeOptions& options, std::unique_ptr<RTree>* out,
                    RtreeBuildStats* stats) {
  COCONUT_RETURN_IF_ERROR(options.Validate());
  RtreeBuildStats local;
  RtreeBuildStats* st_out = stats != nullptr ? stats : &local;

  StrLayout layout;
  layout.w = options.summary.segments;
  layout.series_len = options.summary.series_length;
  layout.materialized = options.materialized;

  // Pass 0: scan raw data, compute PAA points, write the initial STR input.
  Stopwatch watch;
  const std::string input_path = JoinPath(options.tmp_dir, "str-input.bin");
  uint64_t count = 0;
  {
    DatasetScanner scanner;
    COCONUT_RETURN_IF_ERROR(
        scanner.Open(raw_path, options.summary.series_length));
    BufferedWriter writer;
    COCONUT_RETURN_IF_ERROR(writer.Open(input_path));
    std::vector<Value> series(options.summary.series_length);
    std::vector<double> paa(layout.w);
    std::vector<uint8_t> rec(layout.record_bytes(), 0);
    Status st;
    uint64_t position = 0;
    const uint64_t series_bytes =
        options.summary.series_length * sizeof(Value);
    while (scanner.Next(series.data(), &st)) {
      PaaTransform(series.data(), options.summary.series_length, layout.w,
                   paa.data());
      for (size_t d = 0; d < layout.w; ++d) {
        const float f = static_cast<float>(paa[d]);
        std::memcpy(rec.data() + 4 + d * 4, &f, 4);
      }
      std::memcpy(rec.data() + 4 + layout.w * 4, &position, 8);
      if (options.materialized) {
        std::memcpy(rec.data() + 4 + layout.w * 4 + 8, series.data(),
                    series_bytes);
      }
      COCONUT_RETURN_IF_ERROR(writer.Write(rec.data(), rec.size()));
      position += series_bytes;
      ++count;
    }
    COCONUT_RETURN_IF_ERROR(st);
    COCONUT_RETURN_IF_ERROR(writer.Finish());
  }
  if (count == 0) {
    return Status::InvalidArgument("cannot build an R-tree over no data");
  }
  st_out->summarize_seconds = watch.ElapsedSeconds();

  // STR recursion emits payload records in final leaf order.
  watch.Restart();
  const std::string ordered_path = JoinPath(options.tmp_dir, "str-out.bin");
  {
    BufferedWriter emit;
    COCONUT_RETURN_IF_ERROR(emit.Open(ordered_path));
    uint64_t next_tmp = 0;
    COCONUT_RETURN_IF_ERROR(StrPartition(input_path, count, 0, layout,
                                         options, options.tmp_dir, &next_tmp,
                                         &st_out->sort_passes, &emit));
    COCONUT_RETURN_IF_ERROR(emit.Finish());
  }
  COCONUT_RETURN_IF_ERROR(RemoveAll(input_path));
  st_out->str_seconds = watch.ElapsedSeconds();

  // Write leaf pages and build the in-memory directory bottom-up.
  watch.Restart();
  std::unique_ptr<RTree> tree(new RTree());
  tree->options_ = options;
  tree->entry_bytes_ = layout.payload_bytes();
  tree->num_entries_ = count;
  COCONUT_RETURN_IF_ERROR(RawSeriesFile::Open(
      raw_path, options.summary.series_length, &tree->raw_file_));
  {
    BufferedReader reader;
    COCONUT_RETURN_IF_ERROR(reader.Open(ordered_path));
    std::unique_ptr<WritableFile> storage;
    COCONUT_RETURN_IF_ERROR(WritableFile::Create(storage_path, &storage));
    const size_t page_bytes = options.leaf_capacity * tree->entry_bytes_;
    std::vector<uint8_t> page(page_bytes);
    uint64_t done = 0;
    while (done < count) {
      const uint64_t in_page =
          std::min<uint64_t>(options.leaf_capacity, count - done);
      std::fill(page.begin(), page.end(), 0);
      COCONUT_RETURN_IF_ERROR(
          reader.Read(page.data(), in_page * tree->entry_bytes_));
      COCONUT_RETURN_IF_ERROR(storage->Append(page.data(), page.size()));
      LeafInfo leaf;
      leaf.entry_count = in_page;
      leaf.rect.lo.assign(layout.w, HUGE_VAL);
      leaf.rect.hi.assign(layout.w, -HUGE_VAL);
      for (uint64_t i = 0; i < in_page; ++i) {
        for (size_t d = 0; d < layout.w; ++d) {
          float v;
          std::memcpy(&v, page.data() + i * tree->entry_bytes_ + d * 4, 4);
          leaf.rect.lo[d] = std::min(leaf.rect.lo[d], double{v});
          leaf.rect.hi[d] = std::max(leaf.rect.hi[d], double{v});
        }
      }
      tree->leaves_.push_back(std::move(leaf));
      done += in_page;
    }
    COCONUT_RETURN_IF_ERROR(storage->Close());
  }
  COCONUT_RETURN_IF_ERROR(RemoveAll(ordered_path));
  COCONUT_RETURN_IF_ERROR(
      RandomAccessFile::Open(storage_path, &tree->storage_));

  // Directory levels (in memory) bottom-up.
  {
    auto union_into = [&](NodeRect* dst, const NodeRect& src) {
      for (size_t d = 0; d < layout.w; ++d) {
        dst->lo[d] = std::min(dst->lo[d], src.lo[d]);
        dst->hi[d] = std::max(dst->hi[d], src.hi[d]);
      }
    };
    std::vector<uint64_t> current;  // ids at the level being grouped
    bool leaves_level = true;
    for (uint64_t i = 0; i < tree->leaves_.size(); ++i) current.push_back(i);
    while (current.size() > 1 || leaves_level) {
      std::vector<uint64_t> next;
      for (size_t b = 0; b < current.size(); b += options.fanout) {
        const size_t e = std::min(current.size(), b + options.fanout);
        DirNode node;
        node.children_are_leaves = leaves_level;
        node.rect.lo.assign(layout.w, HUGE_VAL);
        node.rect.hi.assign(layout.w, -HUGE_VAL);
        for (size_t i = b; i < e; ++i) {
          node.children.push_back(current[i]);
          const NodeRect& r = leaves_level
                                  ? tree->leaves_[current[i]].rect
                                  : tree->dir_[current[i]].rect;
          union_into(&node.rect, r);
        }
        tree->dir_.push_back(std::move(node));
        next.push_back(tree->dir_.size() - 1);
      }
      current.swap(next);
      leaves_level = false;
      if (current.size() == 1) break;
    }
    tree->root_ = static_cast<int64_t>(current[0]);
  }
  st_out->load_seconds = watch.ElapsedSeconds();
  *out = std::move(tree);
  return Status::OK();
}

Status RTree::ReadLeafPage(uint64_t leaf, std::vector<uint8_t>* page) {
  const size_t page_bytes = options_.leaf_capacity * entry_bytes_;
  page->resize(page_bytes);
  return storage_->Read(leaf * page_bytes, page_bytes, page->data());
}

Status RTree::LeafTrueDistances(uint64_t leaf, const Value* query,
                                KnnCollector* knn, uint64_t* visited) {
  std::vector<uint8_t> page;
  COCONUT_RETURN_IF_ERROR(ReadLeafPage(leaf, &page));
  const size_t w = options_.summary.segments;
  const size_t n = options_.summary.series_length;
  for (uint64_t i = 0; i < leaves_[leaf].entry_count; ++i) {
    const uint8_t* e = page.data() + i * entry_bytes_;
    uint64_t offset;
    std::memcpy(&offset, e + w * 4, 8);
    double d;
    if (options_.materialized) {
      const Value* series = reinterpret_cast<const Value*>(e + w * 4 + 8);
      d = SquaredEuclideanEarlyAbandon(series, query, n, knn->bound_sq());
    } else {
      fetch_buf_.resize(n);
      COCONUT_RETURN_IF_ERROR(raw_file_->ReadAt(offset, fetch_buf_.data()));
      d = SquaredEuclideanEarlyAbandon(fetch_buf_.data(), query, n,
                                       knn->bound_sq());
    }
    ++*visited;
    knn->Offer(offset, d);
  }
  return Status::OK();
}

Status RTree::ApproxSearch(const Value* query, SearchResult* result,
                           size_t k) {
  const SummaryOptions& sum = options_.summary;
  std::vector<double> paa(sum.segments);
  PaaTransform(query, sum.series_length, sum.segments, paa.data());

  int64_t id = root_;
  uint64_t leaf = 0;
  while (true) {
    const DirNode& node = dir_[id];
    double best = HUGE_VAL;
    uint64_t best_child = 0;
    for (uint64_t child : node.children) {
      const NodeRect& r = node.children_are_leaves ? leaves_[child].rect
                                                   : dir_[child].rect;
      const double lb =
          MindistSqPaaToRect(paa.data(), r.lo.data(), r.hi.data(), sum);
      if (lb < best) {
        best = lb;
        best_child = child;
      }
    }
    if (node.children_are_leaves) {
      leaf = best_child;
      break;
    }
    id = static_cast<int64_t>(best_child);
  }

  KnnCollector knn(k);
  uint64_t visited = 0;
  COCONUT_RETURN_IF_ERROR(LeafTrueDistances(leaf, query, &knn, &visited));
  knn.Finalize(result);
  result->visited_records = visited;
  result->leaves_read = 1;
  return Status::OK();
}

Status RTree::ExactSearch(const Value* query, SearchResult* result,
                          size_t k) {
  SearchResult approx;
  COCONUT_RETURN_IF_ERROR(ApproxSearch(query, &approx, k));
  KnnCollector knn(k);
  knn.Seed(approx);
  uint64_t visited = approx.visited_records;
  uint64_t leaves_read = approx.leaves_read;

  const SummaryOptions& sum = options_.summary;
  std::vector<double> paa(sum.segments);
  PaaTransform(query, sum.series_length, sum.segments, paa.data());

  // Best-first over (mindist, is_leaf, id).
  using Item = std::tuple<double, bool, uint64_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
  pq.push({0.0, false, static_cast<uint64_t>(root_)});
  while (!pq.empty()) {
    const auto [lb, is_leaf, id] = pq.top();
    pq.pop();
    if (lb >= knn.bound_sq()) break;
    if (is_leaf) {
      COCONUT_RETURN_IF_ERROR(LeafTrueDistances(id, query, &knn, &visited));
      ++leaves_read;
      continue;
    }
    const DirNode& node = dir_[id];
    for (uint64_t child : node.children) {
      const NodeRect& r = node.children_are_leaves ? leaves_[child].rect
                                                   : dir_[child].rect;
      pq.push({MindistSqPaaToRect(paa.data(), r.lo.data(), r.hi.data(), sum),
               node.children_are_leaves, child});
    }
  }
  knn.Finalize(result);
  result->visited_records = visited;
  result->leaves_read = leaves_read;
  return Status::OK();
}

double RTree::AvgLeafFill() const {
  if (leaves_.empty()) return 0.0;
  return static_cast<double>(num_entries_) /
         (static_cast<double>(leaves_.size()) *
          static_cast<double>(options_.leaf_capacity));
}

uint64_t RTree::StorageBytes() const {
  return static_cast<uint64_t>(leaves_.size()) * options_.leaf_capacity *
         entry_bytes_;
}

}  // namespace coconut
