#include "src/summary/mindist.h"

#include "src/summary/breakpoints.h"

namespace coconut {

namespace {
/// Squared distance from point q to the interval [lo, hi] (0 if inside).
inline double DistToRangeSq(double q, double lo, double hi) {
  if (q < lo) {
    const double d = lo - q;
    return d * d;
  }
  if (q > hi) {
    const double d = q - hi;
    return d * d;
  }
  return 0.0;
}
}  // namespace

double MindistSqPaaToPaa(const double* a, const double* b,
                         const SummaryOptions& opts) {
  double sum = 0.0;
  for (size_t j = 0; j < opts.segments; ++j) {
    const double d = a[j] - b[j];
    sum += d * d;
  }
  return opts.segment_size() * sum;
}

double MindistSqPaaToSax(const double* query_paa, const uint8_t* sax,
                         const SummaryOptions& opts) {
  const SaxBreakpoints& bp = SaxBreakpoints::Get();
  const unsigned bits = opts.cardinality_bits;
  double sum = 0.0;
  for (size_t j = 0; j < opts.segments; ++j) {
    const double lo = bp.RegionLower(bits, sax[j]);
    const double hi = bp.RegionUpper(bits, sax[j]);
    sum += DistToRangeSq(query_paa[j], lo, hi);
  }
  return opts.segment_size() * sum;
}

double MindistSqPaaToSaxPrefix(const double* query_paa, const uint8_t* symbols,
                               const uint8_t* prefix_bits,
                               const SummaryOptions& opts) {
  const SaxBreakpoints& bp = SaxBreakpoints::Get();
  const unsigned max_bits = opts.cardinality_bits;
  double sum = 0.0;
  for (size_t j = 0; j < opts.segments; ++j) {
    const unsigned p = prefix_bits[j];
    if (p == 0) continue;  // whole axis: contributes nothing
    // The meaningful symbol at p bits is the top p bits of the full symbol.
    const uint32_t sym = static_cast<uint32_t>(symbols[j]) >> (max_bits - p);
    const double lo = bp.RegionLower(p, sym);
    const double hi = bp.RegionUpper(p, sym);
    sum += DistToRangeSq(query_paa[j], lo, hi);
  }
  return opts.segment_size() * sum;
}

double MindistSqPaaToRect(const double* query_paa, const double* lo,
                          const double* hi, const SummaryOptions& opts) {
  double sum = 0.0;
  for (size_t j = 0; j < opts.segments; ++j) {
    sum += DistToRangeSq(query_paa[j], lo[j], hi[j]);
  }
  return opts.segment_size() * sum;
}

}  // namespace coconut
