// CoconutForest (LSM-style updates, paper §6 future work): streaming
// ingestion stays exact, flushes create runs, compaction bounds run count.
#include "src/core/coconut_forest.h"

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace coconut {
namespace {

using testing::BruteForceNn;
using testing::MakeDatasetFile;
using testing::ScratchDir;

ForestOptions SmallForest(const ScratchDir& dir, bool materialized = false) {
  ForestOptions opts;
  opts.tree.summary.series_length = 64;
  opts.tree.summary.segments = 16;
  opts.tree.leaf_capacity = 64;
  opts.tree.materialized = materialized;
  opts.tree.tmp_dir = dir.path();
  opts.memtable_series = 200;
  opts.max_runs = 3;
  return opts;
}

TEST(CoconutForest, StreamingInsertsStayExact) {
  ScratchDir dir;
  const std::string raw = dir.File("data.bin");
  std::unique_ptr<CoconutForest> forest;
  ASSERT_OK(CoconutForest::Open(raw, dir.File("forest"), SmallForest(dir),
                                &forest));

  auto gen = MakeGenerator(DatasetKind::kRandomWalk, 64, 71);
  auto qgen = MakeGenerator(DatasetKind::kRandomWalk, 64, 72);
  std::vector<Series> data;
  for (int wave = 0; wave < 6; ++wave) {
    std::vector<Series> batch;
    for (int i = 0; i < 150; ++i) {
      batch.push_back(gen->NextSeries());
      data.push_back(batch.back());
    }
    ASSERT_OK(forest->InsertBatch(batch));
    const Series query = qgen->NextSeries();
    const auto [bf_idx, bf_dist] = BruteForceNn(data, query);
    SearchResult r;
    ASSERT_OK(forest->ExactSearch(query.data(), &r));
    EXPECT_NEAR(r.distance, bf_dist, 1e-4) << "wave " << wave;
  }
  EXPECT_EQ(forest->num_entries(), data.size());
}

TEST(CoconutForest, FlushCreatesRunsAndCompactionBoundsThem) {
  ScratchDir dir;
  const std::string raw = dir.File("data.bin");
  ForestOptions opts = SmallForest(dir);
  opts.memtable_series = 100;
  opts.max_runs = 2;
  std::unique_ptr<CoconutForest> forest;
  ASSERT_OK(CoconutForest::Open(raw, dir.File("forest"), opts, &forest));

  auto gen = MakeGenerator(DatasetKind::kRandomWalk, 64, 73);
  std::vector<Series> batch;
  for (int i = 0; i < 850; ++i) batch.push_back(gen->NextSeries());
  ASSERT_OK(forest->InsertBatch(batch));
  // 850 series at 100 per run would be 8 runs without compaction; the
  // max_runs=2 policy must have compacted along the way.
  EXPECT_LE(forest->num_runs(), 3u);
  EXPECT_EQ(forest->num_entries(), 850u);
  ASSERT_OK(forest->CompactAll());
  EXPECT_EQ(forest->num_runs(), 1u);
  EXPECT_EQ(forest->num_entries(), 850u);

  const auto [bf_idx, bf_dist] = BruteForceNn(batch, batch[123]);
  SearchResult r;
  ASSERT_OK(forest->ExactSearch(batch[123].data(), &r));
  EXPECT_NEAR(r.distance, 0.0, 1e-4);
  (void)bf_idx;
  (void)bf_dist;
}

TEST(CoconutForest, BootstrapsFromExistingDataset) {
  ScratchDir dir;
  const std::string raw = dir.File("data.bin");
  auto data = MakeDatasetFile(raw, DatasetKind::kRandomWalk, 500, 64, 74);
  std::unique_ptr<CoconutForest> forest;
  ASSERT_OK(CoconutForest::Open(raw, dir.File("forest"), SmallForest(dir),
                                &forest));
  EXPECT_EQ(forest->num_runs(), 1u);
  EXPECT_EQ(forest->num_entries(), 500u);
  auto qgen = MakeGenerator(DatasetKind::kRandomWalk, 64, 75);
  const Series query = qgen->NextSeries();
  const auto [bf_idx, bf_dist] = BruteForceNn(data, query);
  SearchResult r;
  ASSERT_OK(forest->ExactSearch(query.data(), &r));
  EXPECT_NEAR(r.distance, bf_dist, 1e-4);
}

TEST(CoconutForest, MaterializedRunsWork) {
  ScratchDir dir;
  const std::string raw = dir.File("data.bin");
  std::unique_ptr<CoconutForest> forest;
  ASSERT_OK(CoconutForest::Open(raw, dir.File("forest"),
                                SmallForest(dir, /*materialized=*/true),
                                &forest));
  auto gen = MakeGenerator(DatasetKind::kRandomWalk, 64, 76);
  std::vector<Series> data;
  for (int i = 0; i < 500; ++i) data.push_back(gen->NextSeries());
  ASSERT_OK(forest->InsertBatch(data));
  ASSERT_OK(forest->CompactAll());
  const Series query = gen->NextSeries();
  const auto [bf_idx, bf_dist] = BruteForceNn(data, query);
  SearchResult r;
  ASSERT_OK(forest->ExactSearch(query.data(), &r));
  EXPECT_NEAR(r.distance, bf_dist, 1e-4);
}

TEST(CoconutForest, CompactionFallsBackToStreamingMergeUnderTightBudget) {
  // Materialized leaf entries embed the raw series, so a tight memory
  // budget routes compaction through the streaming k-way merge instead of
  // the in-memory parallel merge. Results must stay exact either way.
  ScratchDir dir;
  ForestOptions opts = SmallForest(dir, /*materialized=*/true);
  opts.tree.memory_budget_bytes = 1024 * 1024;  // minimum allowed
  opts.memtable_series = 500;
  std::unique_ptr<CoconutForest> forest;
  ASSERT_OK(CoconutForest::Open(dir.File("data.bin"), dir.File("forest"),
                                opts, &forest));
  auto gen = MakeGenerator(DatasetKind::kRandomWalk, 64, 78);
  std::vector<Series> data;
  for (int i = 0; i < 2400; ++i) data.push_back(gen->NextSeries());
  // 2400 entries x 296 bytes x 2 > 1 MiB: the merge must take the
  // streaming path.
  ASSERT_OK(forest->InsertBatch(data));
  ASSERT_OK(forest->CompactAll());
  EXPECT_EQ(forest->num_runs(), 1u);
  EXPECT_EQ(forest->num_entries(), data.size());
  for (int q = 0; q < 3; ++q) {
    const Series query = gen->NextSeries();
    const auto [bf_idx, bf_dist] = BruteForceNn(data, query);
    SearchResult r;
    ASSERT_OK(forest->ExactSearch(query.data(), &r));
    EXPECT_NEAR(r.distance, bf_dist, 1e-4);
    (void)bf_idx;
  }
}

TEST(CoconutForest, ApproxIsUpperBoundOfExact) {
  ScratchDir dir;
  const std::string raw = dir.File("data.bin");
  std::unique_ptr<CoconutForest> forest;
  ASSERT_OK(CoconutForest::Open(raw, dir.File("forest"), SmallForest(dir),
                                &forest));
  auto gen = MakeGenerator(DatasetKind::kRandomWalk, 64, 77);
  std::vector<Series> data;
  for (int i = 0; i < 700; ++i) data.push_back(gen->NextSeries());
  ASSERT_OK(forest->InsertBatch(data));
  for (int q = 0; q < 5; ++q) {
    const Series query = gen->NextSeries();
    SearchResult approx, exact;
    ASSERT_OK(forest->ApproxSearch(query.data(), 1, &approx));
    ASSERT_OK(forest->ExactSearch(query.data(), &exact));
    EXPECT_GE(approx.distance + 1e-6, exact.distance);
  }
}

TEST(CoconutForest, EmptyForestRejectsQueries) {
  ScratchDir dir;
  std::unique_ptr<CoconutForest> forest;
  ASSERT_OK(CoconutForest::Open(dir.File("data.bin"), dir.File("forest"),
                                SmallForest(dir), &forest));
  Series query(64, 0.0f);
  SearchResult r;
  EXPECT_TRUE(forest->ExactSearch(query.data(), &r).IsNotFound());
}

}  // namespace
}  // namespace coconut
