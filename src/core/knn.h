// Bounded max-heap collector for k-nearest-neighbor search. Every index's
// search loop keeps the same shape it had for 1-NN — compute a (squared)
// distance, compare against a best-so-far bound, update — except the scalar
// bound is replaced by the k-th best distance held here. With k == 1 the
// collector degenerates to exactly the old bsf_sq/best_offset pair.
#ifndef COCONUT_CORE_KNN_H_
#define COCONUT_CORE_KNN_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "src/core/coconut_options.h"

namespace coconut {

class KnnCollector {
 public:
  explicit KnnCollector(size_t k) : k_(k == 0 ? 1 : k) {
    heap_.reserve(k_);
  }

  size_t k() const { return k_; }
  size_t size() const { return heap_.size(); }

  /// Squared distance of the current k-th best answer; +inf until k
  /// candidates have been collected. Searches prune with
  /// `lower_bound_sq >= bound_sq()` and early-abandon true distances at it.
  double bound_sq() const {
    return heap_.size() < k_ ? std::numeric_limits<double>::infinity()
                             : heap_.front().dist_sq;
  }

  /// Offers a candidate. Candidates are identified by their raw-file byte
  /// offset; re-offering an offset already collected is a no-op, which makes
  /// it safe to seed a collector from an approximate pass and then re-scan
  /// the same entries exactly. Returns true if the heap changed.
  bool Offer(uint64_t offset, double dist_sq) {
    if (heap_.size() == k_ && dist_sq >= heap_.front().dist_sq) return false;
    for (const Entry& e : heap_) {
      if (e.offset == offset) return false;
    }
    if (heap_.size() == k_) {
      std::pop_heap(heap_.begin(), heap_.end());
      heap_.pop_back();
    }
    heap_.push_back(Entry{dist_sq, offset});
    std::push_heap(heap_.begin(), heap_.end());
    return true;
  }

  /// Merges another collector's candidates (e.g. per-run answers).
  void Merge(const KnnCollector& other) {
    for (const Entry& e : other.heap_) Offer(e.offset, e.dist_sq);
  }

  /// Seeds from a previous result's neighbor list.
  void Seed(const SearchResult& result) {
    for (const Neighbor& nb : result.neighbors) {
      Offer(nb.offset, nb.distance * nb.distance);
    }
  }

  /// Writes the collected neighbors (ascending distance) into `result`,
  /// keeping the legacy top-1 fields in sync. visited/leaves counters are
  /// left untouched for the caller to fill.
  void Finalize(SearchResult* result) const {
    std::vector<Entry> sorted = heap_;
    std::sort(sorted.begin(), sorted.end(),
              [](const Entry& a, const Entry& b) {
                return a.dist_sq < b.dist_sq ||
                       (a.dist_sq == b.dist_sq && a.offset < b.offset);
              });
    result->neighbors.clear();
    result->neighbors.reserve(sorted.size());
    for (const Entry& e : sorted) {
      result->neighbors.push_back(
          Neighbor{e.offset, std::sqrt(e.dist_sq)});
    }
    if (!result->neighbors.empty()) {
      result->offset = result->neighbors.front().offset;
      result->distance = result->neighbors.front().distance;
    } else {
      result->offset = 0;
      result->distance = std::numeric_limits<double>::infinity();
    }
  }

 private:
  struct Entry {
    double dist_sq;
    uint64_t offset;
    // Max-heap by distance: std::push_heap keeps the largest on top.
    bool operator<(const Entry& other) const {
      return dist_sq < other.dist_sq;
    }
  };

  size_t k_;
  std::vector<Entry> heap_;
};

}  // namespace coconut

#endif  // COCONUT_CORE_KNN_H_
