// Figure 10a: mixed workload — bulk loads of arriving batches interleaved
// with exact queries, with limited memory. Paper result: with highly
// fragmented updates (small batches) the ADS family is better; as batches
// grow, Coconut-Tree wins because its bulk merge performs fewer "splits"
// (it rebuilds the contiguous run sequentially once per batch).
#include "bench/bench_util.h"
#include "src/baselines/ads/ads_index.h"
#include "src/core/coconut_tree.h"

namespace coconut {
namespace bench {
namespace {

constexpr size_t kLength = 256;
// Scaled with laptop N, as in the Figure 9 benches.
constexpr size_t kLeafCapacity = 100;
constexpr size_t kBudget = 4ull << 20;

SummaryOptions DefaultSummaryForUpdates() {
  SummaryOptions s;
  s.series_length = kLength;
  s.segments = 16;
  s.cardinality_bits = 8;
  return s;
}

void Run() {
  Banner("Figure 10a", "interleaved batch loads + exact queries");
  const size_t total = 40000 * Scale();
  const size_t initial = total / 4;
  const size_t total_queries = 20;
  PrintHeader({"batch_size", "method", "total_time", "rand_io"});

  for (size_t batch_size : {total / 32, total / 8, total / 2}) {
    // --- Coconut-Tree: sort the batch, merge-rebuild sequentially. ---
    {
      BenchDir dir;
      auto gen = MakeGenerator(DatasetKind::kRandomWalk, kLength, 31);
      const std::string raw = dir.File("data.bin");
      {
        auto init_gen = MakeGenerator(DatasetKind::kRandomWalk, kLength, 30);
        CheckOk(WriteDataset(raw, init_gen.get(), initial), "init dataset");
      }
      auto queries =
          MakeQueries(DatasetKind::kRandomWalk, total_queries, kLength, 3100);

      CoconutOptions opts;
      opts.summary = DefaultSummaryForUpdates();
      opts.leaf_capacity = kLeafCapacity;
      opts.memory_budget_bytes = kBudget;
      opts.tmp_dir = dir.path();
      Measured m;
      CheckOk(CoconutTree::Build(raw, dir.File("ctree.idx"), opts),
              "initial build");
      std::unique_ptr<CoconutTree> tree;
      CheckOk(CoconutTree::Open(dir.File("ctree.idx"), raw, &tree), "open");

      size_t loaded = initial;
      size_t qi = 0;
      const size_t batches = (total - initial + batch_size - 1) / batch_size;
      const size_t queries_per_batch =
          std::max<size_t>(1, total_queries / std::max<size_t>(1, batches));
      while (loaded < total) {
        const size_t this_batch = std::min(batch_size, total - loaded);
        std::vector<Series> batch;
        batch.reserve(this_batch);
        for (size_t i = 0; i < this_batch; ++i) {
          batch.push_back(gen->NextSeries());
        }
        CheckOk(tree->MergeBatch(batch), "merge batch");
        loaded += this_batch;
        for (size_t q = 0; q < queries_per_batch && qi < total_queries;
             ++q, ++qi) {
          SearchResult r;
          CheckOk(tree->ExactSearch(queries[qi].data(), 1, &r), "query");
        }
      }
      while (qi < total_queries) {
        SearchResult r;
        CheckOk(tree->ExactSearch(queries[qi++].data(), 1, &r), "query");
      }
      const IoSnapshot io = m.io();
      PrintRow({FmtCount(batch_size), "CTree", FmtSeconds(m.seconds()),
                FmtCount(io.random_read_ops + io.random_write_ops)});
    }
    // --- ADS+: per-series top-down inserts. ---
    {
      BenchDir dir;
      auto gen = MakeGenerator(DatasetKind::kRandomWalk, kLength, 31);
      const std::string raw = dir.File("data.bin");
      {
        auto init_gen = MakeGenerator(DatasetKind::kRandomWalk, kLength, 30);
        CheckOk(WriteDataset(raw, init_gen.get(), initial), "init dataset");
      }
      auto queries =
          MakeQueries(DatasetKind::kRandomWalk, total_queries, kLength, 3100);

      AdsOptions opts;
      opts.summary = DefaultSummaryForUpdates();
      opts.leaf_capacity = kLeafCapacity;
      opts.memory_budget_bytes = kBudget;
      std::unique_ptr<AdsIndex> index;
      Measured m;
      CheckOk(AdsIndex::Build(raw, dir.File("ads.pages"), opts, &index),
              "initial build");

      size_t loaded = initial;
      size_t qi = 0;
      const size_t batches = (total - initial + batch_size - 1) / batch_size;
      const size_t queries_per_batch =
          std::max<size_t>(1, total_queries / std::max<size_t>(1, batches));
      uint64_t raw_bytes = initial * kLength * sizeof(Value);
      while (loaded < total) {
        const size_t this_batch = std::min(batch_size, total - loaded);
        std::vector<Series> batch;
        batch.reserve(this_batch);
        for (size_t i = 0; i < this_batch; ++i) {
          batch.push_back(gen->NextSeries());
        }
        CheckOk(AppendToDataset(raw, batch), "append raw");
        CheckOk(index->InsertBatch(batch, raw_bytes), "insert batch");
        raw_bytes += this_batch * kLength * sizeof(Value);
        loaded += this_batch;
        for (size_t q = 0; q < queries_per_batch && qi < total_queries;
             ++q, ++qi) {
          SearchResult r;
          CheckOk(index->ExactSearch(queries[qi].data(), &r), "query");
        }
      }
      while (qi < total_queries) {
        SearchResult r;
        CheckOk(index->ExactSearch(queries[qi++].data(), &r), "query");
      }
      const IoSnapshot io = m.io();
      PrintRow({FmtCount(batch_size), "ADS+", FmtSeconds(m.seconds()),
                FmtCount(io.random_read_ops + io.random_write_ops)});
    }
  }
  std::printf(
      "\nExpectation (paper Fig 10a): small, fragmented batches favour the\n"
      "ADS family (Coconut pays a full merge per batch); large batches\n"
      "favour Coconut-Tree.\n");
}

}  // namespace
}  // namespace bench
}  // namespace coconut

int main() {
  coconut::bench::Run();
  return 0;
}
