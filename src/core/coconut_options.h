// Options shared by the Coconut indexes (Tree and Trie variants).
#ifndef COCONUT_CORE_COCONUT_OPTIONS_H_
#define COCONUT_CORE_COCONUT_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "src/common/status.h"
#include "src/summary/options.h"

namespace coconut {

struct CoconutOptions {
  SummaryOptions summary;

  /// Maximum data series records per leaf node. The paper's evaluation uses
  /// 2000 records for every index.
  size_t leaf_capacity = 2000;

  /// Bulk-load fill factor in (0, 1]: fraction of leaf_capacity that
  /// bulk-loading actually packs into each leaf (paper §4.3: "a fill-factor
  /// that can be controlled by the user"). 1.0 = fully packed.
  double fill_factor = 1.0;

  /// Materialized indexes store the raw series inside the leaves
  /// (Coconut-Tree-Full / Coconut-Trie-Full); non-materialized ones store
  /// (invSAX, file position) pairs only.
  bool materialized = false;

  /// Memory budget for index construction (external sort buffers, raw-data
  /// caching). This emulates the paper's varying-RAM experiments.
  size_t memory_budget_bytes = 256ull * 1024 * 1024;

  /// Scratch directory for sort runs; empty = alongside the index file.
  std::string tmp_dir;

  /// Worker threads for the parallel lower-bound scan in SIMS (paper
  /// Algorithm 5 line 10). 0 = hardware concurrency.
  unsigned num_threads = 0;

  unsigned EffectiveThreads() const {
    if (num_threads > 0) return num_threads;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 4;
  }

  size_t EntriesPerLeaf() const {
    const double epl = static_cast<double>(leaf_capacity) * fill_factor;
    return epl < 1.0 ? 1 : static_cast<size_t>(epl);
  }

  Status Validate() const {
    COCONUT_RETURN_IF_ERROR(summary.Validate());
    if (leaf_capacity == 0) {
      return Status::InvalidArgument("leaf_capacity must be > 0");
    }
    if (fill_factor <= 0.0 || fill_factor > 1.0) {
      return Status::InvalidArgument("fill_factor must be in (0, 1]");
    }
    if (memory_budget_bytes < 1024 * 1024) {
      return Status::InvalidArgument("memory budget must be at least 1 MiB");
    }
    return Status::OK();
  }
};

/// One answer of a k-NN search.
struct Neighbor {
  /// Byte offset of the series in the raw dataset file.
  uint64_t offset = 0;
  /// Euclidean distance from the query.
  double distance = 0.0;
};

/// Result of an approximate or exact nearest-neighbor search. Searches take
/// a `k` parameter (default 1); `neighbors` holds up to k answers in
/// ascending distance order, and the legacy top-1 fields always mirror
/// `neighbors.front()`.
struct SearchResult {
  /// Byte offset of the nearest answer in the raw dataset file.
  uint64_t offset = 0;
  /// Euclidean distance from the query to the nearest answer.
  double distance = 0.0;
  /// Number of raw series whose true distance was computed.
  uint64_t visited_records = 0;
  /// Number of leaf pages fetched from the index.
  uint64_t leaves_read = 0;
  /// k nearest answers, ascending by distance (size <= requested k).
  std::vector<Neighbor> neighbors;
  /// True when the answer was computed over a partial view — some shard of
  /// a sharded store was quarantined after a checksum failure and skipped.
  /// The neighbors are exact over the healthy shards, but a better answer
  /// may exist in the quarantined data.
  bool degraded = false;
};

}  // namespace coconut

#endif  // COCONUT_CORE_COCONUT_OPTIONS_H_
