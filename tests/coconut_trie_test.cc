// Coconut-Trie: trie structure invariants (prefix partitioning, compaction
// fixed point), contiguity, sparse-fill behaviour vs the median-split tree,
// and query correctness (exact == brute force).
#include "src/core/coconut_trie.h"

#include <algorithm>
#include <cmath>

#include "gtest/gtest.h"
#include "src/core/coconut_tree.h"
#include "src/exec/query_engine.h"
#include "src/exec/thread_pool.h"
#include "src/series/distance.h"
#include "src/summary/invsax.h"
#include "tests/test_util.h"

namespace coconut {
namespace {

using testing::BruteForceNn;
using testing::MakeDatasetFile;
using testing::ScratchDir;

struct TrieCase {
  DatasetKind kind;
  bool materialized;
  size_t count;
  size_t leaf_capacity;
};

class CoconutTrieTest : public ::testing::TestWithParam<TrieCase> {
 protected:
  void Build(const TrieCase& c) {
    raw_ = dir_.File("data.bin");
    index_ = dir_.File("index.ctrie");
    data_ = MakeDatasetFile(raw_, c.kind, c.count, 64, 21);
    opts_.summary.series_length = 64;
    opts_.summary.segments = 16;
    opts_.summary.cardinality_bits = 8;
    opts_.leaf_capacity = c.leaf_capacity;
    opts_.materialized = c.materialized;
    opts_.tmp_dir = dir_.path();
    ASSERT_OK(CoconutTrie::Build(raw_, index_, opts_));
    ASSERT_OK(CoconutTrie::Open(index_, raw_, &trie_));
  }

  ScratchDir dir_;
  std::string raw_, index_;
  std::vector<Series> data_;
  CoconutOptions opts_;
  std::unique_ptr<CoconutTrie> trie_;
};

TEST_P(CoconutTrieTest, ExactSearchEqualsBruteForce) {
  Build(GetParam());
  auto qgen = MakeGenerator(GetParam().kind, 64, 500);
  for (int q = 0; q < 15; ++q) {
    const Series query = qgen->NextSeries();
    const auto [bf_idx, bf_dist] = BruteForceNn(data_, query);
    SearchResult result;
    ASSERT_OK(trie_->ExactSearch(query.data(), 1, &result));
    EXPECT_NEAR(result.distance, bf_dist, 1e-4) << "query " << q;
  }
}

TEST_P(CoconutTrieTest, ApproxIsUpperBoundOfExact) {
  Build(GetParam());
  auto qgen = MakeGenerator(GetParam().kind, 64, 501);
  for (int q = 0; q < 10; ++q) {
    const Series query = qgen->NextSeries();
    SearchResult approx, exact;
    ASSERT_OK(trie_->ApproxSearch(query.data(), 1, &approx));
    ASSERT_OK(trie_->ExactSearch(query.data(), 1, &exact));
    EXPECT_GE(approx.distance + 1e-6, exact.distance);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, CoconutTrieTest,
    ::testing::Values(TrieCase{DatasetKind::kRandomWalk, false, 2500, 100},
                      TrieCase{DatasetKind::kRandomWalk, true, 2500, 100},
                      TrieCase{DatasetKind::kSeismic, false, 1500, 64},
                      TrieCase{DatasetKind::kAstronomy, true, 1500, 64},
                      // Everything fits in a single (root) leaf.
                      TrieCase{DatasetKind::kRandomWalk, false, 50, 100}),
    [](const auto& info) {
      const TrieCase& c = info.param;
      return std::string(DatasetKindName(c.kind)) +
             (c.materialized ? "_mat_" : "_nonmat_") + std::to_string(c.count) +
             "_leaf" + std::to_string(c.leaf_capacity);
    });

class TrieStructureTest : public ::testing::Test {
 protected:
  void Build(size_t count, size_t leaf_capacity) {
    raw_ = dir_.File("data.bin");
    index_ = dir_.File("index.ctrie");
    data_ = MakeDatasetFile(raw_, DatasetKind::kRandomWalk, count, 64, 31);
    opts_.summary.series_length = 64;
    opts_.summary.segments = 16;
    opts_.leaf_capacity = leaf_capacity;
    opts_.tmp_dir = dir_.path();
    ASSERT_OK(CoconutTrie::Build(raw_, index_, opts_));
    ASSERT_OK(CoconutTrie::Open(index_, raw_, &trie_));
  }

  ScratchDir dir_;
  std::string raw_, index_;
  std::vector<Series> data_;
  CoconutOptions opts_;
  std::unique_ptr<CoconutTrie> trie_;
};

TEST_F(TrieStructureTest, NodeInvariants) {
  Build(3000, 50);
  const auto& nodes = trie_->nodes();
  ASSERT_FALSE(nodes.empty());
  uint64_t leaf_entries = 0;
  for (size_t i = 0; i < nodes.size(); ++i) {
    const auto& n = nodes[i];
    if (n.is_leaf) {
      leaf_entries += n.entry_count;
      EXPECT_GT(n.entry_count, 0u) << "empty leaf " << i;
    } else {
      ASSERT_GE(n.left, 0);
      ASSERT_GE(n.right, 0);
      // Children are strictly deeper: path compression never stalls.
      EXPECT_GT(nodes[n.left].depth, n.depth);
      EXPECT_GT(nodes[n.right].depth, n.depth);
    }
  }
  EXPECT_EQ(leaf_entries, trie_->num_entries());
}

TEST_F(TrieStructureTest, CompactionIsMaximal) {
  // After CompactSubtree no two sibling subtrees that fit together in one
  // leaf may remain separate: every internal node's subtree must exceed the
  // leaf capacity.
  Build(3000, 50);
  const auto& nodes = trie_->nodes();
  std::vector<uint64_t> subtree_count(nodes.size(), 0);
  // Nodes are serialized in preorder; children follow parents, so a reverse
  // pass computes subtree counts bottom-up.
  for (size_t i = nodes.size(); i-- > 0;) {
    if (nodes[i].is_leaf) {
      subtree_count[i] = nodes[i].entry_count;
    } else {
      subtree_count[i] =
          subtree_count[nodes[i].left] + subtree_count[nodes[i].right];
      EXPECT_GT(subtree_count[i], opts_.leaf_capacity)
          << "internal node " << i << " should have been compacted";
    }
  }
}

TEST_F(TrieStructureTest, LeavesPartitionKeySpaceByPrefix) {
  // Every entry in a leaf must share the leaf's interleaved-bit prefix with
  // every other entry of that leaf (prefix-split semantics), and the keys
  // across leaves (left to right) must be globally sorted.
  Build(3000, 50);
  const auto& nodes = trie_->nodes();
  // Recover each leaf's depth from the trie and check entries agree on the
  // leading `depth` bits by walking pages in order via search structures.
  // Leaf entries are exactly the sorted key ranges [entry_begin,
  // entry_begin + count), so global sortedness is checked by scanning pages.
  ZKey prev;
  bool first = true;
  for (uint64_t p = 0; p < trie_->num_pages(); ++p) {
    // Pages follow leaf order; read through the public search path by
    // scanning small windows is awkward, so use the node table directly.
    (void)p;
  }
  // Structural check per leaf via the node table.
  std::vector<std::pair<uint64_t, const CoconutTrie::Node*>> leaves;
  for (const auto& n : nodes) {
    if (n.is_leaf) leaves.push_back({n.entry_begin, &n});
  }
  std::sort(leaves.begin(), leaves.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  uint64_t expected_begin = 0;
  for (const auto& [begin, leaf] : leaves) {
    EXPECT_EQ(begin, expected_begin) << "leaf ranges must tile the entries";
    expected_begin = begin + leaf->entry_count;
  }
  EXPECT_EQ(expected_begin, trie_->num_entries());
  (void)prev;
  (void)first;
}

TEST_F(TrieStructureTest, PrefixSplittingIsSparserThanMedianSplitting) {
  // The headline structural claim of the paper (§3.2 and Fig 8c): prefix
  // splits leave leaves sparse, median splits pack them. Compare fill
  // factors of the two Coconut variants on the same data.
  Build(4000, 100);
  const std::string tree_index = dir_.File("index.ctree");
  ASSERT_OK(CoconutTree::Build(raw_, tree_index, opts_));
  std::unique_ptr<CoconutTree> tree;
  ASSERT_OK(CoconutTree::Open(tree_index, raw_, &tree));
  EXPECT_GE(tree->AvgLeafFill(), 0.99);
  EXPECT_LT(trie_->AvgLeafFill(), tree->AvgLeafFill());
  EXPECT_GE(trie_->num_pages(), tree->num_leaves());
  uint64_t trie_bytes = 0, tree_bytes = 0;
  ASSERT_OK(trie_->IndexSizeBytes(&trie_bytes));
  ASSERT_OK(tree->IndexSizeBytes(&tree_bytes));
  EXPECT_GE(trie_bytes, tree_bytes);
}

TEST_F(TrieStructureTest, SingleLeafWhenEverythingFits) {
  Build(40, 100);
  EXPECT_EQ(trie_->num_leaves(), 1u);
  EXPECT_EQ(trie_->Height(), 1u);
  EXPECT_EQ(trie_->num_pages(), 1u);
}

TEST_F(TrieStructureTest, ReopenAnswersQueries) {
  Build(2000, 100);
  trie_.reset();
  std::unique_ptr<CoconutTrie> reopened;
  ASSERT_OK(CoconutTrie::Open(index_, raw_, &reopened));
  auto qgen = MakeGenerator(DatasetKind::kRandomWalk, 64, 41);
  const Series query = qgen->NextSeries();
  const auto [bf_idx, bf_dist] = BruteForceNn(data_, query);
  SearchResult res;
  ASSERT_OK(reopened->ExactSearch(query.data(), 1, &res));
  EXPECT_NEAR(res.distance, bf_dist, 1e-4);
}

TEST(CoconutTrieDuplicates, IdenticalSeriesOverflowOneKeyGroup) {
  // More identical series than fit in one leaf: the group cannot be prefix-
  // split (identical summarizations), so it must span multiple pages and
  // still answer queries exactly.
  ScratchDir dir;
  const std::string raw = dir.File("dup.bin");
  auto gen = MakeGenerator(DatasetKind::kRandomWalk, 64, 51);
  const Series base = gen->NextSeries();
  std::vector<Series> data;
  {
    BufferedWriter w;
    ASSERT_OK(w.Open(raw));
    for (int i = 0; i < 300; ++i) {
      data.push_back(base);
      ASSERT_OK(w.Write(base.data(), base.size() * sizeof(Value)));
    }
    for (int i = 0; i < 100; ++i) {
      data.push_back(gen->NextSeries());
      ASSERT_OK(w.Write(data.back().data(), data.back().size() * sizeof(Value)));
    }
    ASSERT_OK(w.Finish());
  }
  CoconutOptions opts;
  opts.summary.series_length = 64;
  opts.summary.segments = 16;
  opts.leaf_capacity = 64;  // 300 identical series >> capacity
  opts.tmp_dir = dir.path();
  const std::string index = dir.File("dup.ctrie");
  ASSERT_OK(CoconutTrie::Build(raw, index, opts));
  std::unique_ptr<CoconutTrie> trie;
  ASSERT_OK(CoconutTrie::Open(index, raw, &trie));
  EXPECT_EQ(trie->num_entries(), 400u);
  const auto [bf_idx, bf_dist] = BruteForceNn(data, base);
  SearchResult res;
  ASSERT_OK(trie->ExactSearch(base.data(), 1, &res));
  EXPECT_NEAR(res.distance, bf_dist, 1e-4);
  EXPECT_NEAR(res.distance, 0.0, 1e-4);
}

TEST(CoconutTrieConcurrency, ConstReadPathsAreThreadSafe) {
  // The trie's query paths are const with per-call scratch (no shared
  // fetch buffer) and a load-once SIMS latch, so many threads may search
  // one trie concurrently — including through QueryEngine. Results must
  // match the serial answers bit-for-bit.
  ScratchDir dir;
  const std::string raw = dir.File("data.bin");
  const std::string index = dir.File("index.ctrie");
  const auto data = MakeDatasetFile(raw, DatasetKind::kRandomWalk, 1500, 64, 81);
  CoconutOptions opts;
  opts.summary.series_length = 64;
  opts.summary.segments = 16;
  opts.leaf_capacity = 64;
  opts.tmp_dir = dir.path();
  ASSERT_OK(CoconutTrie::Build(raw, index, opts));
  std::unique_ptr<CoconutTrie> trie;
  ASSERT_OK(CoconutTrie::Open(index, raw, &trie));

  std::vector<Series> queries;
  auto qgen = MakeGenerator(DatasetKind::kRandomWalk, 64, 82);
  for (int i = 0; i < 32; ++i) queries.push_back(qgen->NextSeries());

  std::vector<SearchResult> serial(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_OK(trie->ExactSearch(queries[i].data(), 1, &serial[i], 2));
  }

  ThreadPool pool(4);
  QueryEngine engine(&pool);
  QuerySpec spec;
  spec.mode = QuerySpec::Mode::kExact;
  spec.k = 2;
  spec.approx_leaves = 1;
  // The first exact query on each worker races the SIMS load; run the batch
  // a few times to exercise both the cold and warm paths.
  for (int round = 0; round < 3; ++round) {
    std::vector<SearchResult> batch;
    ASSERT_OK(engine.ExecuteBatch(*trie, queries, spec, &batch));
    ASSERT_EQ(batch.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      ASSERT_EQ(batch[i].neighbors.size(), serial[i].neighbors.size());
      for (size_t j = 0; j < serial[i].neighbors.size(); ++j) {
        EXPECT_EQ(batch[i].neighbors[j].offset, serial[i].neighbors[j].offset);
        EXPECT_EQ(batch[i].neighbors[j].distance,
                  serial[i].neighbors[j].distance);
      }
    }
  }
}

TEST(CoconutTrieErrors, EmptyDatasetRejected) {
  ScratchDir dir;
  const std::string raw = dir.File("empty.bin");
  {
    BufferedWriter w;
    ASSERT_OK(w.Open(raw));
    ASSERT_OK(w.Finish());
  }
  CoconutOptions opts;
  opts.summary.series_length = 64;
  opts.tmp_dir = dir.path();
  EXPECT_FALSE(CoconutTrie::Build(raw, dir.File("i.ctrie"), opts).ok());
}

TEST(CoconutTrieErrors, TreeFileRejectedByTrieOpen) {
  ScratchDir dir;
  const std::string raw = dir.File("data.bin");
  MakeDatasetFile(raw, DatasetKind::kRandomWalk, 200, 64, 61);
  CoconutOptions opts;
  opts.summary.series_length = 64;
  opts.tmp_dir = dir.path();
  const std::string tree_index = dir.File("i.ctree");
  ASSERT_OK(CoconutTree::Build(raw, tree_index, opts));
  std::unique_ptr<CoconutTrie> trie;
  Status st = CoconutTrie::Open(tree_index, raw, &trie);
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
}

}  // namespace
}  // namespace coconut
