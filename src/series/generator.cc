#include "src/series/generator.h"

#include <cmath>
#include <cstring>

#include "src/series/znorm.h"

namespace coconut {

RandomWalkGenerator::RandomWalkGenerator(size_t length, uint64_t seed)
    : SeriesGenerator(length), rng_(seed) {}

void RandomWalkGenerator::Next(Value* out) {
  double level = rng_.Gaussian();
  for (size_t i = 0; i < length_; ++i) {
    out[i] = static_cast<Value>(level);
    level += rng_.Gaussian();
  }
  ZNormalize(out, length_);
}

SeismicGenerator::SeismicGenerator(size_t length, uint64_t seed,
                                   size_t window_step)
    : SeriesGenerator(length), rng_(seed), window_step_(window_step) {}

void SeismicGenerator::ExtendSignal(size_t needed) {
  while (signal_.size() < needed) {
    // Background microseismic noise.
    double sample = 0.15 * rng_.Gaussian();
    // Poisson-ish arrivals of seismic events: each event is a superposition
    // of damped sinusoids (a crude but shape-faithful model of P/S phases).
    if (rng_.Uniform() < 0.002) {
      EventState ev;
      ev.amplitude = 0.5 + 2.5 * rng_.Uniform();
      ev.frequency = 0.05 + 0.2 * rng_.Uniform();  // radians/sample
      ev.decay = 0.005 + 0.02 * rng_.Uniform();
      ev.phase = 2.0 * M_PI * rng_.Uniform();
      ev.remaining = 400 + rng_.UniformInt(600);
      active_events_.push_back(ev);
    }
    for (size_t e = 0; e < active_events_.size();) {
      EventState& ev = active_events_[e];
      sample += ev.amplitude * std::sin(ev.phase);
      ev.phase += ev.frequency;
      ev.amplitude *= (1.0 - ev.decay);
      if (--ev.remaining == 0 || ev.amplitude < 1e-3) {
        active_events_[e] = active_events_.back();
        active_events_.pop_back();
      } else {
        ++e;
      }
    }
    signal_.push_back(static_cast<Value>(sample));
  }
}

void SeismicGenerator::Next(Value* out) {
  const size_t start = window_pos_ - signal_base_;
  ExtendSignal(start + length_);
  std::memcpy(out, signal_.data() + start, length_ * sizeof(Value));
  ZNormalize(out, length_);
  window_pos_ += window_step_;
  // Trim consumed prefix occasionally to bound memory.
  const size_t consumed = window_pos_ - signal_base_;
  if (consumed > 1 << 20) {
    signal_.erase(signal_.begin(), signal_.begin() + consumed);
    signal_base_ = window_pos_;
  }
}

AstronomyGenerator::AstronomyGenerator(size_t length, uint64_t seed,
                                       size_t window_step)
    : SeriesGenerator(length), rng_(seed), window_step_(window_step) {
  period_ = 32.0 + 96.0 * rng_.Uniform();
}

void AstronomyGenerator::ExtendSignal(size_t needed) {
  while (signal_.size() < needed) {
    // Periodic baseline (e.g., variable star) + AR(1) red noise.
    phase_ += 2.0 * M_PI / period_;
    red_state_ = 0.97 * red_state_ + 0.1 * rng_.Gaussian();
    double sample = 0.8 * std::sin(phase_) + red_state_;
    // Occasional flares: sharp rise, exponential decay (AGN/stellar flares).
    if (flare_remaining_ == 0 && rng_.Uniform() < 0.001) {
      flare_remaining_ = 64 + rng_.UniformInt(128);
      flare_level_ = 1.5 + 3.0 * rng_.Uniform();
    }
    if (flare_remaining_ > 0) {
      sample += flare_level_;
      flare_level_ *= 0.97;
      --flare_remaining_;
    }
    // Mild positive skew: fluxes are non-negative-ish and heavy on the high
    // side; expm1 keeps the body near-linear but stretches the right tail.
    sample = std::expm1(0.35 * sample) / 0.35;
    signal_.push_back(static_cast<Value>(sample));
  }
}

void AstronomyGenerator::Next(Value* out) {
  const size_t start = window_pos_ - signal_base_;
  ExtendSignal(start + length_);
  std::memcpy(out, signal_.data() + start, length_ * sizeof(Value));
  ZNormalize(out, length_);
  window_pos_ += window_step_;
  const size_t consumed = window_pos_ - signal_base_;
  if (consumed > 1 << 20) {
    signal_.erase(signal_.begin(), signal_.begin() + consumed);
    signal_base_ = window_pos_;
  }
}

std::unique_ptr<SeriesGenerator> MakeGenerator(DatasetKind kind, size_t length,
                                               uint64_t seed) {
  switch (kind) {
    case DatasetKind::kRandomWalk:
      return std::make_unique<RandomWalkGenerator>(length, seed);
    case DatasetKind::kSeismic:
      return std::make_unique<SeismicGenerator>(length, seed);
    case DatasetKind::kAstronomy:
      return std::make_unique<AstronomyGenerator>(length, seed);
  }
  return nullptr;
}

const char* DatasetKindName(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kRandomWalk:
      return "randomwalk";
    case DatasetKind::kSeismic:
      return "seismic";
    case DatasetKind::kAstronomy:
      return "astronomy";
  }
  return "unknown";
}

}  // namespace coconut
