#include "src/io/buffered_io.h"

#include <algorithm>
#include <cstring>

namespace coconut {

Status BufferedWriter::Open(const std::string& path) {
  buffer_.reserve(capacity_);
  return WritableFile::Create(path, &file_);
}

Status BufferedWriter::Write(const void* data, size_t n) {
  const uint8_t* src = static_cast<const uint8_t*>(data);
  while (n > 0) {
    const size_t room = capacity_ - buffer_.size();
    const size_t take = std::min(room, n);
    buffer_.insert(buffer_.end(), src, src + take);
    src += take;
    n -= take;
    if (buffer_.size() == capacity_) {
      COCONUT_RETURN_IF_ERROR(FlushBuffer());
    }
  }
  return Status::OK();
}

Status BufferedWriter::FlushBuffer() {
  if (!buffer_.empty()) {
    COCONUT_RETURN_IF_ERROR(file_->Append(buffer_.data(), buffer_.size()));
    bytes_written_ += buffer_.size();
    buffer_.clear();
  }
  return Status::OK();
}

Status BufferedWriter::Finish() {
  COCONUT_RETURN_IF_ERROR(FlushBuffer());
  return file_->Close();
}

Status BufferedReader::Open(const std::string& path) {
  buffer_.resize(capacity_);
  buffer_pos_ = buffer_len_ = 0;
  position_ = buffer_start_ = 0;
  return RandomAccessFile::Open(path, &file_);
}

Status BufferedReader::Refill() {
  buffer_start_ = position_;
  const uint64_t remaining = file_->size() - position_;
  const size_t n = static_cast<size_t>(
      std::min<uint64_t>(remaining, capacity_));
  if (n == 0) {
    return Status::IOError("read past EOF in " + file_->path());
  }
  COCONUT_RETURN_IF_ERROR(file_->Read(buffer_start_, n, buffer_.data()));
  buffer_pos_ = 0;
  buffer_len_ = n;
  return Status::OK();
}

Status BufferedReader::Read(void* out, size_t n) {
  uint8_t* dst = static_cast<uint8_t*>(out);
  while (n > 0) {
    if (buffer_pos_ == buffer_len_) {
      COCONUT_RETURN_IF_ERROR(Refill());
    }
    const size_t take = std::min(n, buffer_len_ - buffer_pos_);
    std::memcpy(dst, buffer_.data() + buffer_pos_, take);
    dst += take;
    buffer_pos_ += take;
    position_ += take;
    n -= take;
  }
  return Status::OK();
}

Status BufferedReader::Skip(uint64_t n) {
  while (n > 0) {
    if (buffer_pos_ < buffer_len_) {
      const uint64_t in_buffer = buffer_len_ - buffer_pos_;
      const uint64_t take = std::min(in_buffer, n);
      buffer_pos_ += static_cast<size_t>(take);
      position_ += take;
      n -= take;
      continue;
    }
    // Skip whole buffers without reading them.
    if (position_ + n > file_size()) {
      return Status::IOError("skip past EOF in " + file_->path());
    }
    position_ += n;
    buffer_pos_ = buffer_len_ = 0;
    n = 0;
  }
  return Status::OK();
}

}  // namespace coconut
