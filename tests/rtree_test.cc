// R-tree / R-tree+ baseline: STR packing invariants and exact best-first NN
// correctness.
#include "src/baselines/rtree/rtree.h"

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace coconut {
namespace {

using testing::BruteForceNn;
using testing::MakeDatasetFile;
using testing::ScratchDir;

struct RtreeCase {
  DatasetKind kind;
  bool materialized;
  size_t count;
  size_t leaf_capacity;
  size_t budget;
};

class RtreeTest : public ::testing::TestWithParam<RtreeCase> {
 protected:
  void Build(const RtreeCase& c) {
    raw_ = dir_.File("data.bin");
    data_ = MakeDatasetFile(raw_, c.kind, c.count, 64, 101);
    RtreeOptions opts;
    opts.summary.series_length = 64;
    opts.summary.segments = 8;
    opts.leaf_capacity = c.leaf_capacity;
    opts.materialized = c.materialized;
    opts.memory_budget_bytes = c.budget;
    opts.tmp_dir = dir_.path();
    ASSERT_OK(
        RTree::Build(raw_, dir_.File("rtree.pages"), opts, &tree_, &stats_));
  }

  ScratchDir dir_;
  std::string raw_;
  std::vector<Series> data_;
  std::unique_ptr<RTree> tree_;
  RtreeBuildStats stats_;
};

TEST_P(RtreeTest, ExactSearchEqualsBruteForce) {
  Build(GetParam());
  auto qgen = MakeGenerator(GetParam().kind, 64, 800);
  for (int q = 0; q < 15; ++q) {
    const Series query = qgen->NextSeries();
    const auto [bf_idx, bf_dist] = BruteForceNn(data_, query);
    SearchResult res;
    ASSERT_OK(tree_->ExactSearch(query.data(), &res));
    EXPECT_NEAR(res.distance, bf_dist, 1e-4) << "query " << q;
  }
}

TEST_P(RtreeTest, StrPacksLeavesDensely) {
  Build(GetParam());
  // STR packs every leaf full except possibly the boundary leaves of slabs.
  EXPECT_GE(tree_->AvgLeafFill(), 0.5);
  EXPECT_EQ(tree_->num_entries(), GetParam().count);
  EXPECT_GE(stats_.sort_passes, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, RtreeTest,
    ::testing::Values(
        RtreeCase{DatasetKind::kRandomWalk, false, 2000, 100, 64 << 20},
        RtreeCase{DatasetKind::kRandomWalk, true, 2000, 100, 64 << 20},
        // Tiny budget: every STR level spills through the external sorter.
        RtreeCase{DatasetKind::kRandomWalk, false, 3000, 50, 1 << 20},
        RtreeCase{DatasetKind::kSeismic, false, 1500, 64, 64 << 20},
        // Single-leaf edge case.
        RtreeCase{DatasetKind::kRandomWalk, false, 80, 100, 64 << 20}),
    [](const auto& info) {
      const RtreeCase& c = info.param;
      return std::string(DatasetKindName(c.kind)) +
             (c.materialized ? "_mat_" : "_plus_") + std::to_string(c.count) +
             "_leaf" + std::to_string(c.leaf_capacity) + "_buf" +
             std::to_string(c.budget >> 20) + "m";
    });

TEST(RtreeStr, MoreDimensionsMoreSortPasses) {
  // STR re-sorts per dimension level: more data -> deeper recursion ->
  // more passes, the O(N * D) construction the paper criticizes.
  ScratchDir dir;
  const std::string raw = dir.File("data.bin");
  MakeDatasetFile(raw, DatasetKind::kRandomWalk, 4000, 64, 102);
  RtreeOptions opts;
  opts.summary.series_length = 64;
  opts.summary.segments = 8;
  opts.leaf_capacity = 50;
  opts.tmp_dir = dir.path();
  std::unique_ptr<RTree> tree;
  RtreeBuildStats stats;
  ASSERT_OK(RTree::Build(raw, dir.File("r.pages"), opts, &tree, &stats));
  EXPECT_GT(stats.sort_passes, 3u);
}

}  // namespace
}  // namespace coconut
