// Orthonormal Discrete Haar Wavelet Transform, the summarization used by the
// Vertical baseline (Kashyap & Karras, "Scalable kNN search on vertically
// stored time series"). The transform is orthonormal, so Euclidean distance
// is preserved exactly in coefficient space (Parseval), and prefixes of the
// coefficient vector (coarse levels first) give monotonically tightening
// lower bounds — the property the Vertical index's stepwise scan exploits.
#ifndef COCONUT_SUMMARY_DHWT_H_
#define COCONUT_SUMMARY_DHWT_H_

#include <cstddef>

#include "src/common/status.h"
#include "src/series/series.h"

namespace coconut {

/// True if n is a power of two (DHWT requirement).
inline bool IsPowerOfTwo(size_t n) { return n != 0 && (n & (n - 1)) == 0; }

/// Computes the orthonormal Haar transform of `series` (length n, a power of
/// two) into `out` (length n). Layout: out[0] is the overall (scaled)
/// average, followed by detail coefficients from the coarsest level (1
/// coefficient) to the finest (n/2 coefficients). A prefix of k coefficients
/// is the best k-term coarse representation.
Status DhwtTransform(const Value* series, size_t n, double* out);

/// Inverse transform (used in tests to verify orthonormality).
Status DhwtInverse(const double* coeffs, size_t n, double* out);

/// Number of resolution levels for length n: 1 (average) + log2(n) detail
/// levels.
size_t DhwtLevels(size_t n);

/// Coefficient index range [begin, end) of resolution level `level`, where
/// level 0 is the single average coefficient and level k >= 1 holds 2^(k-1)
/// detail coefficients.
void DhwtLevelRange(size_t level, size_t* begin, size_t* end);

}  // namespace coconut

#endif  // COCONUT_SUMMARY_DHWT_H_
