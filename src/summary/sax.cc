#include "src/summary/sax.h"

#include <vector>

#include "src/summary/breakpoints.h"
#include "src/summary/paa.h"

namespace coconut {

void SaxFromPaa(const double* paa, const SummaryOptions& opts, uint8_t* out) {
  const SaxBreakpoints& bp = SaxBreakpoints::Get();
  for (size_t s = 0; s < opts.segments; ++s) {
    out[s] = static_cast<uint8_t>(bp.Symbol(opts.cardinality_bits, paa[s]));
  }
}

void SaxFromSeries(const Value* series, const SummaryOptions& opts,
                   uint8_t* out) {
  std::vector<double> paa(opts.segments);
  PaaTransform(series, opts.series_length, opts.segments, paa.data());
  SaxFromPaa(paa.data(), opts, out);
}

}  // namespace coconut
