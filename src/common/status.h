// Status: lightweight error propagation without exceptions, in the style of
// LevelDB/RocksDB. All fallible operations in the library return a Status (or
// fill an output parameter and return a Status).
#ifndef COCONUT_COMMON_STATUS_H_
#define COCONUT_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace coconut {

/// \brief Result of a fallible operation.
///
/// A Status is cheap to copy in the OK case (no allocation). Error statuses
/// carry a code and a human-readable message.
class Status {
 public:
  enum class Code : unsigned char {
    kOk = 0,
    kNotFound = 1,
    kCorruption = 2,
    kNotSupported = 3,
    kInvalidArgument = 4,
    kIOError = 5,
    kInternal = 6,
    kDeadlineExceeded = 7,
    kResourceExhausted = 8,
    kAborted = 9,
  };

  Status() : code_(Code::kOk) {}

  /// Returns an OK status (no error).
  static Status OK() { return Status(); }

  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(Code::kAborted, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsInternal() const { return code_ == Code::kInternal; }
  bool IsDeadlineExceeded() const {
    return code_ == Code::kDeadlineExceeded;
  }
  bool IsResourceExhausted() const {
    return code_ == Code::kResourceExhausted;
  }
  bool IsAborted() const { return code_ == Code::kAborted; }

  /// True when the failure is a load/timing condition that can succeed on a
  /// plain retry: the operation was shed (kResourceExhausted) or gave up a
  /// lock/epoch without side effects (kAborted). DeadlineExceeded is NOT
  /// transient — the caller's time budget is gone, retrying inside the same
  /// request only makes the overrun worse. Data errors (Corruption, IOError,
  /// InvalidArgument, ...) are never transient at this level; syscall-level
  /// transience (EINTR/EAGAIN) is classified by errno in src/io/retry.h
  /// before it ever becomes a Status.
  bool IsTransient() const {
    return code_ == Code::kResourceExhausted || code_ == Code::kAborted;
  }

  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Renders "OK" or "<code>: <message>" for logs and test failures.
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  Code code_;
  std::string msg_;
};

/// Propagates a non-OK status to the caller.
#define COCONUT_RETURN_IF_ERROR(expr)            \
  do {                                           \
    ::coconut::Status _st = (expr);              \
    if (!_st.ok()) return _st;                   \
  } while (false)

}  // namespace coconut

#endif  // COCONUT_COMMON_STATUS_H_
