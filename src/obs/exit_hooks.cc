#include "src/obs/exit_hooks.h"

#include <csignal>
#include <cstdlib>
#include <vector>

#include "src/common/sync.h"

namespace coconut {

namespace {

struct DumpEntry {
  void (*fn)();
  bool ran;
};

Mutex& Mu() {
  static Mutex mu;
  return mu;
}

std::vector<DumpEntry>& Dumps() {
  static std::vector<DumpEntry>* dumps = new std::vector<DumpEntry>();
  return *dumps;
}

void SignalDumpHandler(int sig) {
  RunExitDumps();
  // Restore the default disposition and re-raise, so the process still dies
  // by signal (exit status, core behavior, shell job control all intact).
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

void InstallOnce() {
  static bool installed = []() {
    std::atexit(RunExitDumps);
    // Only replace dispositions the process has not customized: a host
    // application with its own SIGINT handling keeps it (and takes on the
    // duty of calling RunExitDumps itself).
    for (int sig : {SIGINT, SIGTERM}) {
      auto prev = std::signal(sig, SignalDumpHandler);
      if (prev != SIG_DFL && prev != SIG_ERR) std::signal(sig, prev);
    }
    return true;
  }();
  (void)installed;
}

}  // namespace

void RegisterExitDump(void (*fn)()) {
  MutexLock lock(&Mu());
  InstallOnce();
  Dumps().push_back(DumpEntry{fn, false});
}

void RunExitDumps() {
  // Claim unrun entries under the lock, run them outside it: dumps may
  // register metrics or allocate, and a signal arriving mid-exit must not
  // self-deadlock on Mu().
  std::vector<void (*)()> to_run;
  {
    MutexLock lock(&Mu());
    auto& dumps = Dumps();
    for (auto it = dumps.rbegin(); it != dumps.rend(); ++it) {
      if (!it->ran) {
        it->ran = true;
        to_run.push_back(it->fn);
      }
    }
  }
  for (void (*fn)() : to_run) fn();
}

}  // namespace coconut
