// Filesystem helpers: temp directories, file sizes, removal. Kept separate
// from the instrumented I/O layer (src/io) because these are control-plane
// operations whose cost we do not model.
#ifndef COCONUT_COMMON_ENV_H_
#define COCONUT_COMMON_ENV_H_

#include <cstdint>
#include <string>

#include "src/common/status.h"

namespace coconut {

/// Creates a fresh unique directory under the system temp root (or $TMPDIR)
/// and returns its path in *out.
Status MakeTempDir(const std::string& prefix, std::string* out);

/// Recursively removes `path` if it exists. Missing paths are not an error.
Status RemoveAll(const std::string& path);

/// Creates directory `path` (and parents). Existing directories are OK.
Status MakeDirs(const std::string& path);

/// Returns the size of the file at `path` in bytes.
Status FileSize(const std::string& path, uint64_t* size);

/// True if a regular file exists at `path`.
bool FileExists(const std::string& path);

/// Atomically renames `from` to `to` (same filesystem). When the durability
/// opt-in is on (see SyncOnCommitEnabled), the destination's parent
/// directory is fsync'd after the rename so the new directory entry itself
/// survives power loss.
Status RenameFile(const std::string& from, const std::string& to);

/// Whether real durability barriers are enabled: `WritableFile::Sync`
/// issues fdatasync and RenameFile fsyncs the parent directory. Defaults to
/// the COCONUT_SYNC environment variable ("1"/"true"); latched on first
/// query unless overridden first via SetSyncOnCommit. See
/// src/store/README.md ("Durability scope").
bool SyncOnCommitEnabled();

/// Programmatic override of the COCONUT_SYNC default (tests, embedders).
void SetSyncOnCommit(bool enabled);

/// Truncates the file at `path` to exactly `size` bytes (used by crash
/// recovery to roll back uncommitted appends; never grows the file).
Status TruncateFile(const std::string& path, uint64_t size);

/// Joins two path components with exactly one '/'.
std::string JoinPath(const std::string& a, const std::string& b);

}  // namespace coconut

#endif  // COCONUT_COMMON_ENV_H_
