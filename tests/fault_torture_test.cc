// Randomized crash-and-corrupt torture for the sharded store (CI job
// `fault-torture`, see .github/workflows/ci.yml). Three phases, all driven
// by one seeded mt19937_64 so every failure reproduces from the seed alone:
//
//   1. Crash rounds: arm a random failpoint on the commit path (protocol
//      kill points plus torn low-level writes), attempt a batch, and on
//      failure reopen the store. The reopened store must hold exactly the
//      committed prefix — the failed batch either vanished or (for faults
//      after the journal commit) survived whole, never partially.
//   2. Corrupt rounds: copy the store directory, flip one random byte in
//      one random file, and reopen the copy. The flip must either be
//      detected at open (Corruption), be repaired/quarantined (degraded
//      serving over the healthy shards), or hit a byte the engine rebuilds
//      anyway — but a corrupted answer must never be served as truth.
//   3. Deadline rounds: arm delay failpoints on the raw I/O sites and run
//      inserts/queries under random deadlines. Calls return OK /
//      DeadlineExceeded / Aborted only (never Corruption, never a hang),
//      and an aborted commit rolls back to the exact committed prefix.
//
// The seed comes from COCONUT_TORTURE_SEED (default 1); CI runs a small
// fixed set of seeds so a red run names the seed to replay locally.
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/context.h"
#include "src/common/failpoint.h"
#include "src/core/coconut_forest.h"
#include "src/exec/query_engine.h"
#include "src/store/sharded_store.h"
#include "tests/test_util.h"

namespace coconut {
namespace {

using testing::ScratchDir;

constexpr size_t kSeriesLen = 64;
constexpr size_t kTopK = 5;

uint64_t TortureSeed() {
  const char* env = std::getenv("COCONUT_TORTURE_SEED");
  if (env == nullptr || *env == '\0') return 1;
  return std::strtoull(env, nullptr, 10);
}

StoreOptions TortureOptions(const ScratchDir& dir) {
  StoreOptions opts;
  opts.forest.tree.summary.series_length = kSeriesLen;
  opts.forest.tree.summary.segments = 16;
  opts.forest.tree.leaf_capacity = 64;
  opts.forest.tree.tmp_dir = dir.path();
  opts.forest.memtable_series = 100;
  opts.forest.max_runs = 3;
  opts.num_shards = 3;
  // Small threshold so the journal checkpoints mid-run and the torture also
  // crosses checkpoint boundaries.
  opts.journal_checkpoint_bytes = 8u << 10;
  return opts;
}

std::vector<Series> RandomBatch(std::mt19937_64& rng, size_t count) {
  auto gen = MakeGenerator(DatasetKind::kRandomWalk, kSeriesLen, rng());
  std::vector<Series> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) out.push_back(gen->NextSeries());
  return out;
}

/// All model->query distances, ascending.
std::vector<double> AllDistances(const std::vector<Series>& data,
                                 const Series& query) {
  std::vector<double> dists;
  dists.reserve(data.size());
  for (const Series& s : data) {
    double sum = 0.0;
    for (size_t j = 0; j < kSeriesLen; ++j) {
      const double d =
          static_cast<double>(s[j]) - static_cast<double>(query[j]);
      sum += d * d;
    }
    dists.push_back(std::sqrt(sum));
  }
  std::sort(dists.begin(), dists.end());
  return dists;
}

/// True when `d` matches some element of sorted `dists` within `eps`.
bool IsKnownDistance(const std::vector<double>& dists, double d, double eps) {
  auto it = std::lower_bound(dists.begin(), dists.end(), d - eps);
  return it != dists.end() && *it <= d + eps;
}

/// Exact search over `store` must reproduce the brute-force oracle over
/// `model` — the crash-round ground truth check.
void ExpectExactMatchesOracle(ShardedStore* store,
                              const std::vector<Series>& model,
                              std::mt19937_64& rng) {
  auto gen = MakeGenerator(DatasetKind::kRandomWalk, kSeriesLen, rng());
  const Series query = gen->NextSeries();
  SearchResult r;
  ASSERT_OK(store->ExactSearch(query.data(), &r, kTopK));
  EXPECT_FALSE(r.degraded);
  std::vector<double> oracle = AllDistances(model, query);
  if (oracle.size() > kTopK) oracle.resize(kTopK);
  ASSERT_EQ(r.neighbors.size(), oracle.size());
  for (size_t j = 0; j < oracle.size(); ++j) {
    EXPECT_NEAR(r.neighbors[j].distance, oracle[j], 1e-4)
        << "neighbor " << j << " diverged from the oracle";
  }
}

TEST(FaultTorture, CrashAndCorruptRounds) {
  const uint64_t seed = TortureSeed();
  SCOPED_TRACE("COCONUT_TORTURE_SEED=" + std::to_string(seed));
  std::mt19937_64 rng(seed);
  FailpointGuard failpoints;

  ScratchDir dir;
  const std::string root = dir.File("store");
  const StoreOptions opts = TortureOptions(dir);
  std::unique_ptr<ShardedStore> store;
  ASSERT_OK(ShardedStore::Open(root, opts, &store));

  // The model: series the store has durably committed, in commit order.
  std::vector<Series> model;

  // ---- Phase 1: crash rounds -------------------------------------------
  // Fault menu. The commit protocol promises all-or-nothing for journaled
  // (multi-shard) batches, so any of these must leave either the old state
  // or old+batch — never a partial batch.
  struct Fault {
    const char* site;
    Failpoints::Kind kind;
  };
  const Fault kFaults[] = {
      {"store.commit.after_begin", Failpoints::Kind::kError},
      {"store.commit.shard_stage", Failpoints::Kind::kError},
      {"store.commit.before_journal_commit", Failpoints::Kind::kError},
      {"store.commit.after_journal_commit", Failpoints::Kind::kError},
      {"io.file.write", Failpoints::Kind::kTornWrite},
      {"io.file.sync", Failpoints::Kind::kError},
  };
  constexpr int kCrashRounds = 12;
  for (int round = 0; round < kCrashRounds; ++round) {
    SCOPED_TRACE("crash round " + std::to_string(round));
    const size_t batch_size = 20 + rng() % 61;
    std::vector<Series> batch = RandomBatch(rng, batch_size);

    // Only arm protocol faults when the batch actually takes the journaled
    // multi-shard path; a single-shard batch would sail past them and the
    // round would test nothing. Leave ~1/3 of rounds fault-free so the
    // committed prefix keeps growing no matter which faults the seed draws.
    std::map<size_t, size_t> owners;
    for (const Series& s : batch) ++owners[store->ShardForSeries(s)];
    const bool multi_shard = owners.size() > 1;
    if (multi_shard && rng() % 3 != 0) {
      const Fault& f = kFaults[rng() % std::size(kFaults)];
      Failpoints::Action action;
      action.kind = f.kind;
      action.remaining = 1;  // one shot: the reopen below must run clean
      Failpoints::Default().Arm(f.site, action);
    }

    const uint64_t before = store->num_entries();
    const Status st = store->InsertBatch(batch);
    Failpoints::Default().DisarmAll();

    if (st.ok()) {
      model.insert(model.end(), batch.begin(), batch.end());
      ASSERT_EQ(store->num_entries(), before + batch.size());
    } else {
      // The store is poisoned; recovery happens at reopen.
      store.reset();
      ASSERT_OK(ShardedStore::Open(root, opts, &store));
      ASSERT_EQ(store->QuarantinedShards(), 0u)
          << "a pure crash fault must not look like corruption";
      const uint64_t after = store->num_entries();
      ASSERT_TRUE(after == model.size() ||
                  after == model.size() + batch.size())
          << "reopened to " << after << " entries; committed prefix is "
          << model.size() << ", failed batch " << batch.size();
      if (after == model.size() + batch.size()) {
        model.insert(model.end(), batch.begin(), batch.end());
      }
    }

    if (round % 3 == 2 && !model.empty()) {
      ExpectExactMatchesOracle(store.get(), model, rng);
    }
  }
  ASSERT_GT(model.size(), 0u) << "every crash round rolled back";
  // Ensure on-disk run files exist so the corrupt phase has real targets.
  ASSERT_OK(store->Flush());
  ExpectExactMatchesOracle(store.get(), model, rng);
  store.reset();

  // ---- Phase 2: corrupt rounds -----------------------------------------
  constexpr int kCorruptRounds = 6;
  for (int round = 0; round < kCorruptRounds; ++round) {
    SCOPED_TRACE("corrupt round " + std::to_string(round));
    const std::string copy =
        dir.File("corrupt-" + std::to_string(round));
    std::filesystem::copy(root, copy,
                          std::filesystem::copy_options::recursive);

    // Deterministic victim: sorted file list, seeded pick.
    std::vector<std::filesystem::path> files;
    for (const auto& e :
         std::filesystem::recursive_directory_iterator(copy)) {
      if (e.is_regular_file() && e.file_size() > 0) files.push_back(e.path());
    }
    std::sort(files.begin(), files.end());
    ASSERT_FALSE(files.empty());
    const std::filesystem::path& victim = files[rng() % files.size()];
    const uint64_t size = std::filesystem::file_size(victim);
    const uint64_t offset = rng() % size;
    {
      std::fstream f(victim,
                     std::ios::in | std::ios::out | std::ios::binary);
      ASSERT_TRUE(f.good()) << victim;
      f.seekg(static_cast<std::streamoff>(offset));
      char b = 0;
      f.read(&b, 1);
      b = static_cast<char>(b ^ 0x40);
      f.seekp(static_cast<std::streamoff>(offset));
      f.write(&b, 1);
    }
    SCOPED_TRACE("flipped " + victim.string() + " @" +
                 std::to_string(offset));

    std::unique_ptr<ShardedStore> hurt;
    const Status open = ShardedStore::Open(copy, opts, &hurt);
    if (!open.ok()) {
      // Detected at open. Anything but Corruption means the flip was
      // misclassified (e.g. surfaced as a silent parse quirk).
      EXPECT_EQ(open.code(), Status::Code::kCorruption) << open.ToString();
      continue;
    }

    // Opened: either fully repaired (run files rebuild from checksummed
    // raw) or degraded with the bad shard quarantined. Served answers must
    // come from real committed data either way.
    std::string detail;
    const size_t quarantined = hurt->QuarantinedShards(&detail);
    bool degraded_seen = quarantined > 0;
    for (int q = 0; q < 3; ++q) {
      auto gen = MakeGenerator(DatasetKind::kRandomWalk, kSeriesLen, rng());
      const Series query = gen->NextSeries();
      const std::vector<double> oracle = AllDistances(model, query);
      SearchResult r;
      ASSERT_OK(hurt->ExactSearch(query.data(), &r, kTopK));
      degraded_seen = degraded_seen || r.degraded;
      ASSERT_LE(r.neighbors.size(), kTopK);
      for (size_t j = 0; j < r.neighbors.size(); ++j) {
        // Never serve fabricated data: every answer must be a distance to
        // a series the model actually committed.
        EXPECT_TRUE(IsKnownDistance(oracle, r.neighbors[j].distance, 1e-3))
            << "served distance " << r.neighbors[j].distance
            << " matches no committed series";
      }
      if (!r.degraded) {
        // Non-degraded answers must be the exact oracle top-k.
        ASSERT_EQ(r.neighbors.size(), std::min(oracle.size(), kTopK));
        for (size_t j = 0; j < r.neighbors.size(); ++j) {
          EXPECT_NEAR(r.neighbors[j].distance, oracle[j], 1e-4);
        }
      }
    }
    if (quarantined > 0) {
      EXPECT_TRUE(hurt->GetSnapshot().degraded);
      EXPECT_FALSE(hurt->InsertBatch(RandomBatch(rng, 4)).ok())
          << "a degraded store must refuse writes";
    }
    hurt.reset();
    std::filesystem::remove_all(copy);
  }

  // ---- Phase 3: deadline rounds ----------------------------------------
  // Arm delay failpoints on the low-level I/O sites and drive inserts and
  // queries under random (often unmeetable) deadlines. Every call must
  // return OK, DeadlineExceeded, or Aborted — never Corruption, never a
  // hang — and a deadline-aborted commit must roll back to the exact
  // committed prefix on reopen, just like a crash fault.
  ASSERT_OK(ShardedStore::Open(root, opts, &store));
  ASSERT_EQ(store->num_entries(), model.size());
  QueryEngine engine;
  QuerySpec spec;
  spec.mode = QuerySpec::Mode::kExact;
  spec.k = kTopK;
  constexpr int kDeadlineRounds = 10;
  for (int round = 0; round < kDeadlineRounds; ++round) {
    SCOPED_TRACE("deadline round " + std::to_string(round));
    Failpoints::Action delay;
    delay.kind = Failpoints::Kind::kDelayMs;
    delay.delay_ms = 1 + static_cast<int>(rng() % 8);
    delay.probability = 0.5 + 0.5 * static_cast<double>(rng() % 2);
    Failpoints::Default().Arm("io.file.read", delay);
    Failpoints::Default().Arm("io.file.write", delay);
    const Context ctx =
        Context::WithTimeout(std::chrono::milliseconds(rng() % 40));

    if (rng() % 2 == 0) {
      std::vector<Series> batch = RandomBatch(rng, 20 + rng() % 41);
      const Status st = store->InsertBatch(batch, ctx);
      Failpoints::Default().DisarmAll();
      ASSERT_TRUE(st.ok() || st.IsDeadlineExceeded() || st.IsAborted())
          << st.ToString();
      if (st.ok()) {
        model.insert(model.end(), batch.begin(), batch.end());
        ASSERT_EQ(store->num_entries(), model.size());
      } else {
        // Pre-begin aborts leave the store live; mid-commit aborts poison
        // it. Reopening handles both and must land on an exact prefix.
        store.reset();
        ASSERT_OK(ShardedStore::Open(root, opts, &store));
        ASSERT_EQ(store->QuarantinedShards(), 0u)
            << "a deadline abort must never look like corruption";
        const uint64_t after = store->num_entries();
        ASSERT_TRUE(after == model.size() ||
                    after == model.size() + batch.size())
            << "reopened to " << after << " entries; committed prefix is "
            << model.size() << ", aborted batch " << batch.size();
        if (after == model.size() + batch.size()) {
          model.insert(model.end(), batch.begin(), batch.end());
        }
      }
    } else {
      auto gen = MakeGenerator(DatasetKind::kRandomWalk, kSeriesLen, rng());
      const std::vector<Series> queries{gen->NextSeries(), gen->NextSeries()};
      std::vector<SearchResult> results;
      const Status st = engine.ExecuteBatch(*store, queries, spec, &results,
                                            /*traces=*/nullptr, ctx);
      Failpoints::Default().DisarmAll();
      ASSERT_TRUE(st.ok() || st.IsDeadlineExceeded() || st.IsAborted())
          << st.ToString();
      // A deadlined read path must not disturb the store.
      ASSERT_EQ(store->num_entries(), model.size());
    }
  }
  // With the delays gone the store serves the full committed model.
  Failpoints::Default().DisarmAll();
  ExpectExactMatchesOracle(store.get(), model, rng);
}

}  // namespace
}  // namespace coconut
