// Shared exit/signal dump machinery for the observability sinks.
//
// COCONUT_STATS / COCONUT_STATS_JSON / COCONUT_TRACE promise "a dump when
// the process ends", but a bench or server killed with Ctrl-C never reaches
// atexit handlers. RegisterExitDump gives both guarantees at once: the
// callback runs via atexit on clean exit, and — because arming any of those
// env toggles installs SIGINT/SIGTERM handlers (opt-in by construction:
// only processes that asked for dumps get their signal disposition touched)
// — it also runs when the process is interrupted, after which the signal is
// re-raised with the default disposition so exit codes stay honest.
//
// The handlers do call non-async-signal-safe code (snapshotting the
// registry, serializing JSON, fopen). That is a deliberate trade: these are
// diagnostic dumps on the way out of a cooperating process, not
// crash-safety machinery — a corrupt dump on a pathological interrupt
// costs nothing, a missing dump on every Ctrl-C costs the whole feature.
// Each callback runs at most once even if exit and a signal race.
#ifndef COCONUT_OBS_EXIT_HOOKS_H_
#define COCONUT_OBS_EXIT_HOOKS_H_

namespace coconut {

/// Registers `fn` to run once at process exit AND on SIGINT/SIGTERM (the
/// first registration installs the signal handlers). Callbacks run in
/// reverse registration order. Thread-safe; callable any time before exit.
void RegisterExitDump(void (*fn)());

/// Runs every registered dump that has not run yet (idempotent). Exposed
/// for tests and for embedders that flush on their own shutdown path.
void RunExitDumps();

}  // namespace coconut

#endif  // COCONUT_OBS_EXIT_HOOKS_H_
