#include "src/common/env.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <random>

namespace coconut {

namespace fs = std::filesystem;

Status MakeTempDir(const std::string& prefix, std::string* out) {
  std::error_code ec;
  fs::path root = fs::temp_directory_path(ec);
  if (ec) return Status::IOError("temp_directory_path: " + ec.message());
  static std::mt19937_64 rng{std::random_device{}()};
  for (int attempt = 0; attempt < 64; ++attempt) {
    fs::path candidate = root / (prefix + std::to_string(rng()));
    if (fs::create_directories(candidate, ec) && !ec) {
      *out = candidate.string();
      return Status::OK();
    }
  }
  return Status::IOError("unable to create temp dir with prefix " + prefix);
}

Status RemoveAll(const std::string& path) {
  std::error_code ec;
  fs::remove_all(path, ec);
  if (ec) return Status::IOError("remove_all " + path + ": " + ec.message());
  return Status::OK();
}

Status MakeDirs(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) {
    return Status::IOError("create_directories " + path + ": " + ec.message());
  }
  return Status::OK();
}

Status FileSize(const std::string& path, uint64_t* size) {
  std::error_code ec;
  const auto s = fs::file_size(path, ec);
  if (ec) return Status::IOError("file_size " + path + ": " + ec.message());
  *size = static_cast<uint64_t>(s);
  return Status::OK();
}

bool FileExists(const std::string& path) {
  std::error_code ec;
  return fs::is_regular_file(path, ec);
}

Status RenameFile(const std::string& from, const std::string& to) {
  std::error_code ec;
  fs::rename(from, to, ec);
  if (ec) {
    return Status::IOError("rename " + from + " -> " + to + ": " +
                           ec.message());
  }
  return Status::OK();
}

Status TruncateFile(const std::string& path, uint64_t size) {
  std::error_code ec;
  const auto current = fs::file_size(path, ec);
  if (ec) return Status::IOError("file_size " + path + ": " + ec.message());
  if (static_cast<uint64_t>(current) < size) {
    return Status::InvalidArgument("truncate would grow " + path);
  }
  fs::resize_file(path, size, ec);
  if (ec) return Status::IOError("resize_file " + path + ": " + ec.message());
  return Status::OK();
}

std::string JoinPath(const std::string& a, const std::string& b) {
  if (a.empty()) return b;
  if (a.back() == '/') return a + b;
  return a + "/" + b;
}

}  // namespace coconut
