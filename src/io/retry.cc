#include "src/io/retry.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>

#include "src/obs/metrics.h"

namespace coconut {

namespace {

thread_local const Context* g_io_context = nullptr;

struct RetryMetrics {
  Counter* attempts;
  Counter* recovered;
  Counter* exhausted;
};

RetryMetrics& Metrics() {
  static RetryMetrics m = [] {
    MetricRegistry& reg = MetricRegistry::Default();
    return RetryMetrics{
        reg.GetCounter("io.retry.attempts"),
        reg.GetCounter("io.retry.recovered"),
        reg.GetCounter("io.retry.exhausted"),
    };
  }();
  return m;
}

/// Permanent-by-content markers inside IOError messages. The torn-write and
/// EOF shapes are produced by this layer itself (src/io/file.cc), so the
/// coupling is local to src/io/.
bool PermanentIoError(const Status& st) {
  const std::string& m = st.message();
  return m.find("unexpected EOF") != std::string::npos ||
         m.find("(torn") != std::string::npos;
}

}  // namespace

const RetryPolicy& RetryPolicy::IoDefault() {
  static const RetryPolicy kDefault;
  return kDefault;
}

IoDeadlineScope::IoDeadlineScope(const Context* ctx) : prev_(g_io_context) {
  g_io_context = ctx;
}

IoDeadlineScope::~IoDeadlineScope() { g_io_context = prev_; }

const Context* IoDeadlineScope::Current() { return g_io_context; }

bool RetryState::ShouldRetry(const Status& st) {
  // Only I/O-shaped failures are retried here; higher-level taxonomy
  // (ResourceExhausted/Aborted) belongs to the caller's loop, and data
  // errors (Corruption, InvalidArgument, ...) never heal on retry.
  if (!st.IsIOError() || PermanentIoError(st)) return false;
  if (attempts_used_ + 1 >= policy_->max_attempts) {
    Metrics().exhausted->Increment();
    return false;
  }
  // Deadline-aware backoff: never sleep past the ambient deadline, and do
  // not bother retrying at all once the request is dead.
  uint64_t backoff_us = policy_->initial_backoff_us;
  for (int i = 0; i < attempts_used_; ++i) {
    backoff_us = static_cast<uint64_t>(
        static_cast<double>(backoff_us) * policy_->backoff_multiplier);
    if (backoff_us >= policy_->max_backoff_us) break;
  }
  backoff_us = std::min(backoff_us, policy_->max_backoff_us);
  const Context* ctx = g_io_context;
  if (ctx != nullptr) {
    if (ctx->cancelled() || ctx->expired()) return false;
    const auto remaining_us =
        std::chrono::duration_cast<std::chrono::microseconds>(
            ctx->remaining())
            .count();
    if (remaining_us <= 0) return false;
    backoff_us = std::min<uint64_t>(
        backoff_us, static_cast<uint64_t>(remaining_us));
  }
  ++attempts_used_;
  Metrics().attempts->Increment();
  if (backoff_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
  }
  return true;
}

void RetryState::NoteSuccess() {
  if (attempts_used_ > 0) Metrics().recovered->Increment();
}

}  // namespace coconut
