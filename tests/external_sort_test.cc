// External sorter: correctness (sorted permutation of the input) across
// memory budgets that force zero, few, and many spilled runs, including
// multi-pass merges.
#include "src/sort/external_sort.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/random.h"
#include "tests/test_util.h"

namespace coconut {
namespace {

using testing::ScratchDir;

struct SortCase {
  size_t record_bytes;
  size_t key_bytes;
  size_t count;
  size_t memory_budget;
  size_t max_fan_in;
};

class ExternalSortTest : public ::testing::TestWithParam<SortCase> {};

TEST_P(ExternalSortTest, ProducesSortedPermutation) {
  const SortCase& c = GetParam();
  ScratchDir dir;
  ExternalSortOptions opts;
  opts.record_bytes = c.record_bytes;
  opts.key_bytes = c.key_bytes;
  opts.memory_budget_bytes = c.memory_budget;
  opts.tmp_dir = dir.path();
  opts.max_fan_in = c.max_fan_in;

  Rng rng(c.count * 31 + c.memory_budget);
  std::vector<std::vector<uint8_t>> originals;
  ExternalSorter sorter(opts);
  for (size_t i = 0; i < c.count; ++i) {
    std::vector<uint8_t> rec(c.record_bytes);
    for (auto& b : rec) b = static_cast<uint8_t>(rng.UniformInt(256));
    originals.push_back(rec);
    ASSERT_OK(sorter.Add(rec.data()));
  }

  std::unique_ptr<SortedRecordStream> stream;
  ASSERT_OK(sorter.Finish(&stream));
  ASSERT_EQ(stream->count(), c.count);

  std::vector<std::vector<uint8_t>> output;
  std::vector<uint8_t> rec(c.record_bytes);
  Status st;
  while (stream->Next(rec.data(), &st)) {
    ASSERT_OK(st);
    output.push_back(rec);
  }
  ASSERT_OK(st);
  ASSERT_EQ(output.size(), c.count);

  // Sorted by key prefix.
  for (size_t i = 0; i + 1 < output.size(); ++i) {
    EXPECT_LE(std::memcmp(output[i].data(), output[i + 1].data(), c.key_bytes),
              0)
        << "output not sorted at position " << i;
  }
  // Permutation: same multiset of full records.
  auto full_less = [&](const std::vector<uint8_t>& a,
                       const std::vector<uint8_t>& b) {
    return std::memcmp(a.data(), b.data(), c.record_bytes) < 0;
  };
  std::sort(originals.begin(), originals.end(), full_less);
  std::vector<std::vector<uint8_t>> sorted_output = output;
  std::sort(sorted_output.begin(), sorted_output.end(), full_less);
  EXPECT_EQ(originals, sorted_output);
}

INSTANTIATE_TEST_SUITE_P(
    Budgets, ExternalSortTest,
    ::testing::Values(
        // All in memory: no spills.
        SortCase{40, 32, 1000, 4 << 20, 64},
        // Tiny budget relative to data: many runs, single merge pass.
        SortCase{40, 32, 5000, 1 << 20, 64},
        // Force multi-pass merging with a tiny fan-in.
        SortCase{40, 32, 5000, 1 << 20, 2},
        // Large materialized-style records (key + 1 KiB payload).
        SortCase{1064, 32, 800, 1 << 20, 64},
        // Key equals whole record.
        SortCase{16, 16, 3000, 1 << 20, 64},
        // Single record.
        SortCase{40, 32, 1, 2 << 20, 64}));

TEST(ExternalSort, EmptyInputYieldsEmptyStream) {
  ScratchDir dir;
  ExternalSortOptions opts;
  opts.record_bytes = 40;
  opts.key_bytes = 32;
  opts.memory_budget_bytes = 2 << 20;
  opts.tmp_dir = dir.path();
  ExternalSorter sorter(opts);
  std::unique_ptr<SortedRecordStream> stream;
  ASSERT_OK(sorter.Finish(&stream));
  EXPECT_EQ(stream->count(), 0u);
  uint8_t rec[40];
  Status st;
  EXPECT_FALSE(stream->Next(rec, &st));
  ASSERT_OK(st);
}

TEST(ExternalSort, SpillsWhenBudgetExceeded) {
  ScratchDir dir;
  ExternalSortOptions opts;
  opts.record_bytes = 1024;
  opts.key_bytes = 8;
  opts.memory_budget_bytes = 1 << 20;  // 1 MiB: holds ~512 records per half
  opts.tmp_dir = dir.path();
  ExternalSorter sorter(opts);
  Rng rng(1);
  std::vector<uint8_t> rec(opts.record_bytes);
  for (int i = 0; i < 2000; ++i) {
    for (auto& b : rec) b = static_cast<uint8_t>(rng.UniformInt(256));
    ASSERT_OK(sorter.Add(rec.data()));
  }
  EXPECT_GT(sorter.spilled_runs(), 1u);
  std::unique_ptr<SortedRecordStream> stream;
  ASSERT_OK(sorter.Finish(&stream));
  EXPECT_EQ(stream->count(), 2000u);
}

TEST(ExternalSort, ValidatesOptions) {
  ScratchDir dir;
  ExternalSortOptions opts;
  opts.record_bytes = 0;
  opts.key_bytes = 0;
  opts.tmp_dir = dir.path();
  ExternalSorter sorter(opts);
  std::unique_ptr<SortedRecordStream> stream;
  EXPECT_FALSE(sorter.Finish(&stream).ok());
}

TEST(ExternalSort, DuplicateKeysAllSurvive) {
  ScratchDir dir;
  ExternalSortOptions opts;
  opts.record_bytes = 16;
  opts.key_bytes = 8;
  opts.memory_budget_bytes = 1 << 20;
  opts.tmp_dir = dir.path();
  ExternalSorter sorter(opts);
  // 1000 records, only 4 distinct keys; payload disambiguates.
  for (uint64_t i = 0; i < 1000; ++i) {
    uint8_t rec[16] = {};
    const uint64_t key = i % 4;
    std::memcpy(rec, &key, 8);
    std::memcpy(rec + 8, &i, 8);
    ASSERT_OK(sorter.Add(rec));
  }
  std::unique_ptr<SortedRecordStream> stream;
  ASSERT_OK(sorter.Finish(&stream));
  EXPECT_EQ(stream->count(), 1000u);
  uint8_t rec[16];
  Status st;
  size_t n = 0;
  uint64_t prev_key = 0;
  std::vector<bool> seen(1000, false);
  while (stream->Next(rec, &st)) {
    ASSERT_OK(st);
    uint64_t key, payload;
    std::memcpy(&key, rec, 8);
    std::memcpy(&payload, rec + 8, 8);
    EXPECT_GE(key, prev_key);
    prev_key = key;
    ASSERT_LT(payload, 1000u);
    EXPECT_FALSE(seen[payload]);
    seen[payload] = true;
    ++n;
  }
  EXPECT_EQ(n, 1000u);
}

}  // namespace
}  // namespace coconut
