// NEON backend for aarch64, where Advanced SIMD is architectural baseline
// (no extra compile flags, no runtime CPUID needed). Floats are widened to
// double pairs before subtraction, matching the scalar reference up to the
// association of the final sum. NEON has no gather, so the SAX table
// lookups stay scalar loads packed into vector lanes.
#include "src/simd/kernels_internal.h"

#if defined(__aarch64__) && defined(__ARM_NEON)

#include <arm_neon.h>

#include <cmath>

namespace coconut {
namespace simd {
namespace {

/// Widens floats [i, i+4) of a and b, accumulating squared differences.
inline void Accum4Diff(const float* a, const float* b, size_t i,
                       float64x2_t* acc0, float64x2_t* acc1) {
  const float32x4_t va = vld1q_f32(a + i);
  const float32x4_t vb = vld1q_f32(b + i);
  const float64x2_t d0 =
      vsubq_f64(vcvt_f64_f32(vget_low_f32(va)), vcvt_f64_f32(vget_low_f32(vb)));
  const float64x2_t d1 = vsubq_f64(vcvt_f64_f32(vget_high_f32(va)),
                                   vcvt_f64_f32(vget_high_f32(vb)));
  *acc0 = vfmaq_f64(*acc0, d0, d0);
  *acc1 = vfmaq_f64(*acc1, d1, d1);
}

double SquaredEuclideanNeon(const float* a, const float* b, size_t n) {
  float64x2_t acc0 = vdupq_n_f64(0.0);
  float64x2_t acc1 = vdupq_n_f64(0.0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) Accum4Diff(a, b, i, &acc0, &acc1);
  double sum = vaddvq_f64(vaddq_f64(acc0, acc1));
  for (; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    sum += d * d;
  }
  return sum;
}

double SquaredEuclideanEaNeon(const float* a, const float* b, size_t n,
                              double bound_sq) {
  // Same block contract as the scalar reference: check after every full
  // 16-element block, sum the trailing partial block straight through.
  float64x2_t acc0 = vdupq_n_f64(0.0);
  float64x2_t acc1 = vdupq_n_f64(0.0);
  size_t i = 0;
  while (n - i >= 16) {
    Accum4Diff(a, b, i, &acc0, &acc1);
    Accum4Diff(a, b, i + 4, &acc0, &acc1);
    Accum4Diff(a, b, i + 8, &acc0, &acc1);
    Accum4Diff(a, b, i + 12, &acc0, &acc1);
    i += 16;
    const double sum = vaddvq_f64(vaddq_f64(acc0, acc1));
    if (sum >= bound_sq) return sum;
  }
  double sum = vaddvq_f64(vaddq_f64(acc0, acc1));
  for (; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    sum += d * d;
  }
  return sum;
}

double MindistPaaPaaNeon(const double* a, const double* b, size_t w,
                         double scale) {
  float64x2_t acc = vdupq_n_f64(0.0);
  size_t j = 0;
  for (; j + 2 <= w; j += 2) {
    const float64x2_t d = vsubq_f64(vld1q_f64(a + j), vld1q_f64(b + j));
    acc = vfmaq_f64(acc, d, d);
  }
  double sum = vaddvq_f64(acc);
  for (; j < w; ++j) {
    const double d = a[j] - b[j];
    sum += d * d;
  }
  return scale * sum;
}

/// Per-lane distsq(q, [lo, hi]) = max(lo - q, q - hi, 0)^2; -+HUGE_VAL
/// edges yield -inf on their side of the max, never a NaN (q is finite).
inline float64x2_t RangeAccum(float64x2_t q, float64x2_t lo, float64x2_t hi,
                              float64x2_t acc) {
  const float64x2_t below = vsubq_f64(lo, q);
  const float64x2_t above = vsubq_f64(q, hi);
  const float64x2_t d =
      vmaxq_f64(vmaxq_f64(below, above), vdupq_n_f64(0.0));
  return vfmaq_f64(acc, d, d);
}

double MindistPaaRectNeon(const double* q, const double* lo, const double* hi,
                          size_t w, double scale) {
  float64x2_t acc = vdupq_n_f64(0.0);
  size_t j = 0;
  for (; j + 2 <= w; j += 2) {
    acc = RangeAccum(vld1q_f64(q + j), vld1q_f64(lo + j), vld1q_f64(hi + j),
                     acc);
  }
  double sum = vaddvq_f64(acc);
  for (; j < w; ++j) sum += DistToRangeSq(q[j], lo[j], hi[j]);
  return scale * sum;
}

inline double MindistPaaSaxCore(const double* q, const uint8_t* sax,
                                const double* edges, size_t w) {
  // Region s of the flat edges table is [edges[s], edges[s + 1]].
  float64x2_t acc = vdupq_n_f64(0.0);
  size_t j = 0;
  for (; j + 2 <= w; j += 2) {
    // No NEON gather: pack two scalar table loads per edge vector.
    const double* e0 = edges + sax[j];
    const double* e1 = edges + sax[j + 1];
    const float64x2_t lo = vcombine_f64(vdup_n_f64(e0[0]), vdup_n_f64(e1[0]));
    const float64x2_t hi = vcombine_f64(vdup_n_f64(e0[1]), vdup_n_f64(e1[1]));
    acc = RangeAccum(vld1q_f64(q + j), lo, hi, acc);
  }
  double sum = vaddvq_f64(acc);
  for (; j < w; ++j) {
    sum += DistToRangeSq(q[j], edges[sax[j]], edges[sax[j] + 1]);
  }
  return sum;
}

double MindistPaaSaxNeon(const double* q, const uint8_t* sax,
                         const double* edges, size_t w, double scale) {
  return scale * MindistPaaSaxCore(q, sax, edges, w);
}

void MindistPaaSaxBatchNeon(const double* q, const uint8_t* sax_base,
                            size_t stride_bytes, size_t count,
                            const double* edges, size_t w, double scale,
                            double* out) {
  for (size_t i = 0; i < count; ++i) {
    out[i] = scale * MindistPaaSaxCore(q, sax_base + i * stride_bytes, edges,
                                       w);
  }
}

/// Sum of 4 widened floats appended to acc lanes.
inline void Accum4Sum(const float* p, float64x2_t* acc0, float64x2_t* acc1) {
  const float32x4_t v = vld1q_f32(p);
  *acc0 = vaddq_f64(*acc0, vcvt_f64_f32(vget_low_f32(v)));
  *acc1 = vaddq_f64(*acc1, vcvt_f64_f32(vget_high_f32(v)));
}

void PaaTransformNeon(const float* series, size_t n, size_t segments,
                      double* out) {
  const size_t seg_len = n / segments;
  const double inv = 1.0 / static_cast<double>(seg_len);
  for (size_t s = 0; s < segments; ++s) {
    const float* p = series + s * seg_len;
    float64x2_t acc0 = vdupq_n_f64(0.0);
    float64x2_t acc1 = vdupq_n_f64(0.0);
    size_t i = 0;
    for (; i + 4 <= seg_len; i += 4) Accum4Sum(p + i, &acc0, &acc1);
    double sum = vaddvq_f64(vaddq_f64(acc0, acc1));
    for (; i < seg_len; ++i) sum += p[i];
    out[s] = sum * inv;
  }
}

void ZNormalizeNeon(float* values, size_t n) {
  constexpr double kEpsilon = 1e-9;
  if (n == 0) return;
  float64x2_t acc0 = vdupq_n_f64(0.0);
  float64x2_t acc1 = vdupq_n_f64(0.0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) Accum4Sum(values + i, &acc0, &acc1);
  double sum = vaddvq_f64(vaddq_f64(acc0, acc1));
  for (; i < n; ++i) sum += values[i];
  const double mean = sum / static_cast<double>(n);

  const float64x2_t vmean = vdupq_n_f64(mean);
  float64x2_t sq0 = vdupq_n_f64(0.0);
  float64x2_t sq1 = vdupq_n_f64(0.0);
  i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t v = vld1q_f32(values + i);
    const float64x2_t d0 = vsubq_f64(vcvt_f64_f32(vget_low_f32(v)), vmean);
    const float64x2_t d1 = vsubq_f64(vcvt_f64_f32(vget_high_f32(v)), vmean);
    sq0 = vfmaq_f64(sq0, d0, d0);
    sq1 = vfmaq_f64(sq1, d1, d1);
  }
  double sq = vaddvq_f64(vaddq_f64(sq0, sq1));
  for (; i < n; ++i) {
    const double d = values[i] - mean;
    sq += d * d;
  }
  const double sd = std::sqrt(sq / static_cast<double>(n));
  if (sd < kEpsilon) {
    for (i = 0; i < n; ++i) values[i] = 0.0f;
    return;
  }
  const double inv = 1.0 / sd;
  const float64x2_t vinv = vdupq_n_f64(inv);
  i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t v = vld1q_f32(values + i);
    const float64x2_t lo =
        vmulq_f64(vsubq_f64(vcvt_f64_f32(vget_low_f32(v)), vmean), vinv);
    const float64x2_t hi =
        vmulq_f64(vsubq_f64(vcvt_f64_f32(vget_high_f32(v)), vmean), vinv);
    vst1q_f32(values + i, vcombine_f32(vcvt_f32_f64(lo), vcvt_f32_f64(hi)));
  }
  for (; i < n; ++i) {
    values[i] = static_cast<float>((values[i] - mean) * inv);
  }
}

}  // namespace

const KernelTable* NeonKernelsImpl() {
  static const KernelTable table = {
      "neon",
      SquaredEuclideanNeon,
      SquaredEuclideanEaNeon,
      MindistPaaPaaNeon,
      MindistPaaRectNeon,
      MindistPaaSaxNeon,
      MindistPaaSaxBatchNeon,
      PaaTransformNeon,
      ZNormalizeNeon,
  };
  return &table;
}

}  // namespace simd
}  // namespace coconut

#else  // !(__aarch64__ && __ARM_NEON)

namespace coconut {
namespace simd {

const KernelTable* NeonKernelsImpl() { return nullptr; }

}  // namespace simd
}  // namespace coconut

#endif
