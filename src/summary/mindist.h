// Lower-bound distance functions ("MINDIST") between a query and
// summarizations. All functions return SQUARED distances and satisfy the
// lower-bounding lemma: mindist_sq <= true squared Euclidean distance between
// the raw series, which is what makes index pruning exact.
#ifndef COCONUT_SUMMARY_MINDIST_H_
#define COCONUT_SUMMARY_MINDIST_H_

#include <cstdint>

#include "src/summary/options.h"

namespace coconut {

/// PAA-to-PAA lower bound (Keogh et al.): (n/w) * sum_j (a_j - b_j)^2.
double MindistSqPaaToPaa(const double* a, const double* b,
                         const SummaryOptions& opts);

/// PAA-to-SAX lower bound (Lin et al.): per segment, the squared distance
/// from the query PAA coefficient to the SAX region of the candidate, scaled
/// by n/w. The query is exact (PAA), the candidate is discretized.
double MindistSqPaaToSax(const double* query_paa, const uint8_t* sax,
                         const SummaryOptions& opts);

/// Batched PAA-to-SAX lower bounds over `count` records laid out at
/// `stride_bytes` intervals from `sax_base` (stride >= opts.segments; the
/// SAX word is the first opts.segments bytes of each record). Fills
/// out[0..count) with the same values as `count` MindistSqPaaToSax calls;
/// one kernel call per chunk is what makes the SIMS pruning pass (paper
/// Algorithm 5 line 10) SIMD-friendly.
void MindistSqPaaToSaxBatch(const double* query_paa, const uint8_t* sax_base,
                            size_t stride_bytes, size_t count,
                            const SummaryOptions& opts, double* out);

/// PAA-to-iSAX-node lower bound: the candidate region of segment j is known
/// only to `prefix_bits[j]` bits of precision (0 bits = whole axis). Symbols
/// are given at full cardinality; only the top prefix_bits[j] bits of
/// symbol j are meaningful.
double MindistSqPaaToSaxPrefix(const double* query_paa, const uint8_t* symbols,
                               const uint8_t* prefix_bits,
                               const SummaryOptions& opts);

/// PAA-to-rectangle lower bound for R-tree MBRs in PAA space: the squared
/// distance from the query PAA point to the box [lo, hi], scaled by n/w.
double MindistSqPaaToRect(const double* query_paa, const double* lo,
                          const double* hi, const SummaryOptions& opts);

}  // namespace coconut

#endif  // COCONUT_SUMMARY_MINDIST_H_
