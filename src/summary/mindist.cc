#include "src/summary/mindist.h"

#include "src/simd/kernels.h"
#include "src/summary/breakpoints.h"

namespace coconut {

namespace {
/// Squared distance from point q to the interval [lo, hi] (0 if inside).
inline double DistToRangeSq(double q, double lo, double hi) {
  if (q < lo) {
    const double d = lo - q;
    return d * d;
  }
  if (q > hi) {
    const double d = q - hi;
    return d * d;
  }
  return 0.0;
}
}  // namespace

double MindistSqPaaToPaa(const double* a, const double* b,
                         const SummaryOptions& opts) {
  return simd::Kernels().mindist_paa_paa(a, b, opts.segments,
                                         opts.segment_size());
}

double MindistSqPaaToSax(const double* query_paa, const uint8_t* sax,
                         const SummaryOptions& opts) {
  const SaxBreakpoints& bp = SaxBreakpoints::Get();
  return simd::Kernels().mindist_paa_sax(
      query_paa, sax, bp.EdgeTable(opts.cardinality_bits), opts.segments,
      opts.segment_size());
}

void MindistSqPaaToSaxBatch(const double* query_paa, const uint8_t* sax_base,
                            size_t stride_bytes, size_t count,
                            const SummaryOptions& opts, double* out) {
  const SaxBreakpoints& bp = SaxBreakpoints::Get();
  simd::Kernels().mindist_paa_sax_batch(
      query_paa, sax_base, stride_bytes, count,
      bp.EdgeTable(opts.cardinality_bits), opts.segments, opts.segment_size(),
      out);
}

double MindistSqPaaToSaxPrefix(const double* query_paa, const uint8_t* symbols,
                               const uint8_t* prefix_bits,
                               const SummaryOptions& opts) {
  const SaxBreakpoints& bp = SaxBreakpoints::Get();
  const unsigned max_bits = opts.cardinality_bits;
  double sum = 0.0;
  for (size_t j = 0; j < opts.segments; ++j) {
    const unsigned p = prefix_bits[j];
    if (p == 0) continue;  // whole axis: contributes nothing
    // The meaningful symbol at p bits is the top p bits of the full symbol.
    const uint32_t sym = static_cast<uint32_t>(symbols[j]) >> (max_bits - p);
    const double lo = bp.RegionLower(p, sym);
    const double hi = bp.RegionUpper(p, sym);
    sum += DistToRangeSq(query_paa[j], lo, hi);
  }
  return opts.segment_size() * sum;
}

double MindistSqPaaToRect(const double* query_paa, const double* lo,
                          const double* hi, const SummaryOptions& opts) {
  return simd::Kernels().mindist_paa_rect(query_paa, lo, hi, opts.segments,
                                          opts.segment_size());
}

}  // namespace coconut
