// iSAX 2.0 baseline: top-down insertion, buffered flushing, prefix splits,
// and exact best-first search correctness.
#include "src/baselines/isax2/isax2_index.h"

#include "gtest/gtest.h"
#include "src/io/io_stats.h"
#include "src/summary/sax.h"
#include "tests/test_util.h"

namespace coconut {
namespace {

using testing::BruteForceNn;
using testing::MakeDatasetFile;
using testing::ScratchDir;

struct Isax2Case {
  DatasetKind kind;
  bool materialized;
  size_t count;
  size_t leaf_capacity;
  size_t budget;
};

class Isax2Test : public ::testing::TestWithParam<Isax2Case> {
 protected:
  void Build(const Isax2Case& c) {
    raw_ = dir_.File("data.bin");
    data_ = MakeDatasetFile(raw_, c.kind, c.count, 64, 71);
    Isax2Options opts;
    opts.summary.series_length = 64;
    opts.summary.segments = 16;
    opts.leaf_capacity = c.leaf_capacity;
    opts.materialized = c.materialized;
    opts.memory_budget_bytes = c.budget;
    ASSERT_OK(Isax2Index::Create(opts, dir_.File("isax2.pages"), raw_,
                                 &index_));
    const uint64_t series_bytes = 64 * sizeof(Value);
    for (size_t i = 0; i < data_.size(); ++i) {
      ASSERT_OK(index_->Insert(data_[i].data(), i * series_bytes));
    }
  }

  ScratchDir dir_;
  std::string raw_;
  std::vector<Series> data_;
  std::unique_ptr<Isax2Index> index_;
};

TEST_P(Isax2Test, ExactSearchEqualsBruteForce) {
  Build(GetParam());
  auto qgen = MakeGenerator(GetParam().kind, 64, 600);
  for (int q = 0; q < 15; ++q) {
    const Series query = qgen->NextSeries();
    const auto [bf_idx, bf_dist] = BruteForceNn(data_, query);
    SearchResult res;
    ASSERT_OK(index_->ExactSearch(query.data(), &res));
    EXPECT_NEAR(res.distance, bf_dist, 1e-4) << "query " << q;
  }
}

TEST_P(Isax2Test, FlushedIndexStillExact) {
  Build(GetParam());
  ASSERT_OK(index_->FlushAll());
  auto qgen = MakeGenerator(GetParam().kind, 64, 601);
  const Series query = qgen->NextSeries();
  const auto [bf_idx, bf_dist] = BruteForceNn(data_, query);
  SearchResult res;
  ASSERT_OK(index_->ExactSearch(query.data(), &res));
  EXPECT_NEAR(res.distance, bf_dist, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, Isax2Test,
    ::testing::Values(
        // Ample budget: everything buffered until the final flush.
        Isax2Case{DatasetKind::kRandomWalk, false, 2000, 100, 64 << 20},
        Isax2Case{DatasetKind::kRandomWalk, true, 2000, 100, 64 << 20},
        // Tiny budget: repeated whole-FBL flushes and leaf rewrites.
        Isax2Case{DatasetKind::kRandomWalk, false, 2000, 100, 64 << 10},
        Isax2Case{DatasetKind::kSeismic, false, 1500, 64, 64 << 10},
        Isax2Case{DatasetKind::kAstronomy, true, 1500, 64, 1 << 20}),
    [](const auto& info) {
      const Isax2Case& c = info.param;
      return std::string(DatasetKindName(c.kind)) +
             (c.materialized ? "_mat_" : "_nonmat_") + std::to_string(c.count) +
             "_buf" + std::to_string(c.budget / 1024) + "k";
    });

TEST(Isax2Structure, PrefixLeavesAreSparse) {
  ScratchDir dir;
  const std::string raw = dir.File("data.bin");
  auto data = MakeDatasetFile(raw, DatasetKind::kRandomWalk, 4000, 64, 81);
  Isax2Options opts;
  opts.summary.series_length = 64;
  opts.summary.segments = 16;
  opts.leaf_capacity = 100;
  std::unique_ptr<Isax2Index> index;
  ASSERT_OK(Isax2Index::Create(opts, dir.File("p.pages"), raw, &index));
  const uint64_t series_bytes = 64 * sizeof(Value);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_OK(index->Insert(data[i].data(), i * series_bytes));
  }
  ASSERT_OK(index->FlushAll());
  EXPECT_EQ(index->num_entries(), 4000u);
  // Prefix splitting cannot balance: fill should be clearly below full.
  EXPECT_LT(index->AvgLeafFill(), 0.8);
  EXPECT_GT(index->num_leaves(), 4000u / 100u);
}

TEST(Isax2Structure, ConstrainedBudgetCausesRandomIo) {
  ScratchDir dir;
  const std::string raw = dir.File("data.bin");
  auto data = MakeDatasetFile(raw, DatasetKind::kRandomWalk, 3000, 64, 82);
  Isax2Options opts;
  opts.summary.series_length = 64;
  opts.summary.segments = 16;
  opts.leaf_capacity = 100;
  opts.memory_budget_bytes = 32 << 10;  // forces frequent FBL flushes
  std::unique_ptr<Isax2Index> index;
  ASSERT_OK(Isax2Index::Create(opts, dir.File("p.pages"), raw, &index));
  const IoSnapshot before = IoStats::Instance().Snapshot();
  const uint64_t series_bytes = 64 * sizeof(Value);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_OK(index->Insert(data[i].data(), i * series_bytes));
  }
  ASSERT_OK(index->FlushAll());
  const IoSnapshot s = IoStats::Instance().Snapshot() - before;
  // Top-down insertion with a small buffer must re-write leaves many times:
  // random writes dominate, unlike the bulk-loaded Coconut-Tree.
  EXPECT_GT(s.random_write_ops, 50u) << s.ToString();
}

TEST(Isax2Structure, RefineLeafSplitsOnAccess) {
  ScratchDir dir;
  const std::string raw = dir.File("data.bin");
  auto data = MakeDatasetFile(raw, DatasetKind::kRandomWalk, 1000, 64, 83);
  Isax2Options opts;
  opts.summary.series_length = 64;
  // Few segments: a small root fan-out concentrates entries into large
  // leaves, so on-access refinement has something to split.
  opts.summary.segments = 4;
  opts.leaf_capacity = 2000;  // everything lands in a handful of leaves
  std::unique_ptr<Isax2Index> index;
  ASSERT_OK(Isax2Index::Create(opts, dir.File("p.pages"), raw, &index));
  const uint64_t series_bytes = 64 * sizeof(Value);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_OK(index->Insert(data[i].data(), i * series_bytes));
  }
  ASSERT_OK(index->FlushAll());
  const uint64_t before = index->num_leaves();
  std::vector<uint8_t> sax(16);
  SaxFromSeries(data[0].data(), opts.summary, sax.data());
  ASSERT_OK(index->RefineLeafFor(sax.data(), 50));
  EXPECT_GT(index->num_leaves(), before);
  // Refinement must not lose entries.
  EXPECT_EQ(index->num_entries(), 1000u);
  const auto [bf_idx, bf_dist] = BruteForceNn(data, data[0]);
  SearchResult res;
  ASSERT_OK(index->ExactSearch(data[0].data(), &res));
  EXPECT_NEAR(res.distance, 0.0, 1e-4);
  (void)bf_idx;
  (void)bf_dist;
}

}  // namespace
}  // namespace coconut
