#include "src/io/file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "src/common/env.h"
#include "src/common/failpoint.h"
#include "src/io/io_stats.h"
#include "src/io/retry.h"
#include "src/obs/metrics.h"

namespace coconut {

namespace {
std::string ErrnoMessage(const std::string& op, const std::string& path) {
  return op + " " + path + ": " + std::strerror(errno);
}
}  // namespace

RandomAccessFile::~RandomAccessFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status RandomAccessFile::Open(const std::string& path,
                              std::unique_ptr<RandomAccessFile>* out) {
  FAILPOINT("io.file.open");
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IOError(ErrnoMessage("open", path));
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError(ErrnoMessage("fstat", path));
  }
  out->reset(new RandomAccessFile(path, fd, static_cast<uint64_t>(st.st_size)));
  return Status::OK();
}

Status RandomAccessFile::Read(uint64_t offset, size_t n, void* buf) {
  // Classification is best-effort under concurrency: the tracker holds the
  // end offset of whichever read on this handle updated it last.
  const bool random =
      (offset != next_sequential_offset_.load(std::memory_order_relaxed));
  // Positional reads are side-effect free, so a failed attempt (EAGAIN, an
  // injected fault, a transient device error) can simply be reissued from
  // the start; see src/io/retry.h for the taxonomy and backoff bounds.
  RetryState retry("io.file.read");
  for (;;) {
    Status st = [&]() -> Status {
      FAILPOINT_ARG("io.file.read", n);
      uint8_t* dst = static_cast<uint8_t*>(buf);
      size_t remaining = n;
      uint64_t pos = offset;
      while (remaining > 0) {
        ssize_t r = ::pread(fd_, dst, remaining, static_cast<off_t>(pos));
        if (r < 0) {
          if (errno == EINTR) continue;
          return Status::IOError(ErrnoMessage("pread", path_));
        }
        if (r == 0) {
          return Status::IOError("pread " + path_ + ": unexpected EOF");
        }
        dst += r;
        pos += static_cast<uint64_t>(r);
        remaining -= static_cast<size_t>(r);
      }
      return Status::OK();
    }();
    if (st.ok()) {
      retry.NoteSuccess();
      next_sequential_offset_.store(offset + n, std::memory_order_relaxed);
      IoStats::Instance().RecordRead(n, random);
      return st;
    }
    if (!retry.ShouldRetry(st)) return st;
  }
}

WritableFile::~WritableFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status WritableFile::Create(const std::string& path,
                            std::unique_ptr<WritableFile>* out) {
  FAILPOINT("io.file.open");
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IOError(ErrnoMessage("create", path));
  out->reset(new WritableFile(path, fd));
  return Status::OK();
}

Status WritableFile::OpenForAppend(const std::string& path,
                                   std::unique_ptr<WritableFile>* out) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd < 0) return Status::IOError(ErrnoMessage("open-append", path));
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError(ErrnoMessage("fstat", path));
  }
  auto* file = new WritableFile(path, fd);
  file->append_offset_ = static_cast<uint64_t>(st.st_size);
  out->reset(file);
  return Status::OK();
}

Status WritableFile::Append(const void* data, size_t n) {
  COCONUT_RETURN_IF_ERROR(WriteAt(append_offset_, data, n));
  return Status::OK();
}

Status WritableFile::WriteAt(uint64_t offset, const void* data, size_t n) {
  const bool random = (offset != append_offset_);
  // Writes retry only while nothing of this attempt persisted: once a
  // prefix is durable the failure is handed to the commit protocol (which
  // owns torn-write recovery) instead of risking a blind reissue.
  RetryState retry("io.file.write");
  for (;;) {
    size_t persisted = 0;
    Status st = [&]() -> Status {
      // Every write in the process funnels through here, so this one
      // failpoint gives all subsystems injected I/O errors, torn writes (a
      // prefix is persisted, then the write reports failure — a crashed
      // sector), and silent single-bit flips (persisted "successfully" —
      // latent media corruption for the checksum layer to catch).
      Failpoints::WriteFault fault;
      COCONUT_RETURN_IF_ERROR(
          Failpoints::Default().HitWrite("io.file.write", n, &fault));
      const uint8_t* src = static_cast<const uint8_t*>(data);
      std::vector<uint8_t> flipped;
      if (fault.bit_flip && n > 0) {
        flipped.assign(src, src + n);
        flipped[fault.flip_index / 8] ^=
            static_cast<uint8_t>(1u << (fault.flip_index % 8));
        src = flipped.data();
      }
      const size_t target = fault.torn ? fault.torn_bytes : n;
      size_t remaining = target;
      uint64_t pos = offset;
      while (remaining > 0) {
        ssize_t w = ::pwrite(fd_, src, remaining, static_cast<off_t>(pos));
        if (w < 0) {
          if (errno == EINTR) continue;
          return Status::IOError(ErrnoMessage("pwrite", path_));
        }
        src += w;
        pos += static_cast<uint64_t>(w);
        remaining -= static_cast<size_t>(w);
        persisted += static_cast<size_t>(w);
      }
      if (fault.torn) {
        if (offset + target > append_offset_) {
          append_offset_ = offset + target;
        }
        return Status::IOError("failpoint: io.file.write (torn after " +
                               std::to_string(target) + " of " +
                               std::to_string(n) + " bytes to " + path_ +
                               ")");
      }
      return Status::OK();
    }();
    if (st.ok()) {
      retry.NoteSuccess();
      if (offset + n > append_offset_) append_offset_ = offset + n;
      IoStats::Instance().RecordWrite(n, random);
      return st;
    }
    if (persisted > 0 || !retry.ShouldRetry(st)) return st;
  }
}

Status WritableFile::Sync() {
  FAILPOINT("io.file.sync");
  // Without the opt-in, Sync marks where the durability barriers belong but
  // issues nothing — real fdatasync would dominate laptop-scale benches and
  // durability is not among the reproduced claims (src/store/README.md,
  // "Durability scope").
  if (!SyncOnCommitEnabled()) return Status::OK();
  if (::fdatasync(fd_) != 0) {
    return Status::IOError(ErrnoMessage("fdatasync", path_));
  }
  static Counter* syncs =
      MetricRegistry::Default().GetCounter("io.sync.fdatasync");
  syncs->Increment();
  return Status::OK();
}

Status WritableFile::Close() {
  if (fd_ >= 0) {
    if (::close(fd_) != 0) {
      fd_ = -1;
      return Status::IOError(ErrnoMessage("close", path_));
    }
    fd_ = -1;
  }
  return Status::OK();
}

}  // namespace coconut
