// End-to-end tour of the sharded forest store:
//
//   1. open a 4-shard ShardedStore (key-space partitioned CoconutForests,
//      boundaries pinned in a crash-safe manifest),
//   2. keep a writer thread streaming batches in (each batch is split by
//      invSAX key and inserted into its shards concurrently; flushes and
//      two-level parallel compactions happen underneath),
//   3. answer batches of exact k-NN queries at the same time, each batch
//      against one consistent store-wide snapshot with cross-shard fan-out,
//   4. reopen the store from its manifest and show the data survived.
//
// Build:  cmake -B build -S . && cmake --build build --target sharded_store
// Run:    ./build/sharded_store
#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/env.h"
#include "src/exec/query_engine.h"
#include "src/exec/thread_pool.h"
#include "src/series/generator.h"
#include "src/store/sharded_store.h"

namespace {

constexpr size_t kSeriesLen = 128;

void Check(const coconut::Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  using namespace coconut;

  std::string dir;
  Check(MakeTempDir("coconut-store-example-", &dir), "tmp dir");

  StoreOptions opts;
  opts.forest.tree.summary.series_length = kSeriesLen;
  opts.forest.tree.leaf_capacity = 256;
  opts.forest.tree.tmp_dir = dir;
  opts.forest.memtable_series = 1024;
  opts.forest.max_runs = 4;
  opts.num_shards = 4;

  const std::string root = JoinPath(dir, "store");
  std::unique_ptr<ShardedStore> store;
  Check(ShardedStore::Open(root, opts, &store), "open store");
  std::printf("opened %zu-shard store at %s\n", store->num_shards(),
              root.c_str());

  // Writer: streams 20k series in; every batch fans out to its shards.
  std::atomic<bool> done{false};
  std::thread writer([&]() {
    RandomWalkGenerator gen(kSeriesLen, /*seed=*/1);
    for (int wave = 0; wave < 20; ++wave) {
      std::vector<Series> batch;
      for (int i = 0; i < 1000; ++i) batch.push_back(gen.NextSeries());
      Check(store->InsertBatch(batch), "insert");
    }
    Check(store->CompactAll(), "compact");
    done.store(true);
  });

  // Reader: batches of 32 exact 3-NN queries. Every batch sees ONE
  // store-wide snapshot (one forest snapshot per shard); the engine's work
  // grid is query x shard, so even one query keeps all cores busy.
  ThreadPool pool(4);
  QueryEngine engine(&pool);
  QuerySpec spec;
  spec.mode = QuerySpec::Mode::kExact;
  spec.k = 3;

  RandomWalkGenerator qgen(kSeriesLen, /*seed=*/2);
  int batches = 0;
  while (!done.load()) {
    std::vector<Series> queries;
    for (int i = 0; i < 32; ++i) queries.push_back(qgen.NextSeries());
    const ShardedStore::Snapshot snap = store->GetSnapshot();
    if (snap.num_entries() == 0) continue;
    std::vector<SearchResult> results;
    Check(engine.ExecuteBatch(*store, snap, queries, spec, &results),
          "batch");
    ++batches;
    size_t shard0;
    uint64_t local0;
    ShardedStore::DecodeOffset(results[0].neighbors[0].offset, &shard0,
                               &local0);
    std::printf("batch %2d: %llu entries visible, q0 3-NN = [", batches,
                static_cast<unsigned long long>(snap.num_entries()));
    for (size_t j = 0; j < results[0].neighbors.size(); ++j) {
      std::printf("%s%.3f", j ? ", " : "", results[0].neighbors[j].distance);
    }
    std::printf("] (best in shard %zu)\n", shard0);
  }
  writer.join();

  std::printf("ingest done: %llu entries across %zu shards after %d query "
              "batches\n",
              static_cast<unsigned long long>(store->num_entries()),
              store->num_shards(), batches);

  // Reopen from the manifest (the crash-recovery path) and re-answer.
  SearchResult before;
  RandomWalkGenerator vgen(kSeriesLen, /*seed=*/3);
  const Series probe = vgen.NextSeries();
  Check(store->ExactSearch(probe.data(), &before, 3), "probe before");
  store.reset();
  Check(ShardedStore::Open(root, opts, &store), "reopen store");
  SearchResult after;
  Check(store->ExactSearch(probe.data(), &after, 3), "probe after");
  std::printf("reopened: %llu entries, probe 1-NN %.3f == %.3f (%s)\n",
              static_cast<unsigned long long>(store->num_entries()),
              before.distance, after.distance,
              before.distance == after.distance ? "identical" : "MISMATCH");

  Check(RemoveAll(dir), "cleanup");
  return 0;
}
