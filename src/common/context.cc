#include "src/common/context.h"

namespace coconut {

const Context& Context::Background() {
  static const Context kBackground;
  return kBackground;
}

}  // namespace coconut
