#include "bench/bench_util.h"

#include <cstdlib>

namespace coconut {
namespace bench {

size_t Scale() {
  const char* env = std::getenv("COCONUT_BENCH_SCALE");
  if (env == nullptr) return 1;
  const long v = std::strtol(env, nullptr, 10);
  return v > 0 ? static_cast<size_t>(v) : 1;
}

void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL: %s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

BenchDir::BenchDir() {
  CheckOk(MakeTempDir("coconut-bench-", &path_), "create bench dir");
}

BenchDir::~BenchDir() { (void)RemoveAll(path_); }

std::string PrepareDataset(const BenchDir& dir, DatasetKind kind, size_t count,
                           size_t length, uint64_t seed,
                           const std::string& name) {
  const std::string path = dir.File(name);
  auto gen = MakeGenerator(kind, length, seed);
  CheckOk(WriteDataset(path, gen.get(), count), "generate dataset");
  return path;
}

std::vector<Series> MakeQueries(DatasetKind kind, size_t count, size_t length,
                                uint64_t seed) {
  auto gen = MakeGenerator(kind, length, seed);
  std::vector<Series> queries;
  queries.reserve(count);
  for (size_t i = 0; i < count; ++i) queries.push_back(gen->NextSeries());
  return queries;
}

void PrintHeader(const std::vector<std::string>& columns) {
  PrintRow(columns);
  std::string sep;
  for (size_t i = 0; i < columns.size(); ++i) {
    sep += (i == 0 ? "|" : "");
    sep += std::string(18, '-');
    sep += "|";
  }
  std::printf("%s\n", sep.c_str());
}

void PrintRow(const std::vector<std::string>& cells) {
  std::string row = "|";
  for (const std::string& c : cells) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), " %-16s |", c.c_str());
    row += buf;
  }
  std::printf("%s\n", row.c_str());
  std::fflush(stdout);
}

std::string FmtSeconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fs", s);
  return buf;
}

std::string FmtMb(uint64_t bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1fMB", bytes / 1048576.0);
  return buf;
}

std::string FmtCount(uint64_t n) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(n));
  return buf;
}

std::string FmtDouble(double v, int precision) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void Banner(const std::string& figure, const std::string& description) {
  std::printf(
      "==============================================================\n");
  std::printf("%s — %s\n", figure.c_str(), description.c_str());
  std::printf("(scale=%zu; set COCONUT_BENCH_SCALE to enlarge)\n", Scale());
  std::printf(
      "==============================================================\n");
  std::fflush(stdout);
}

}  // namespace bench
}  // namespace coconut
