#include "tests/test_util.h"

#include <limits>

#include "src/series/distance.h"

namespace coconut {
namespace testing {

ScratchDir::ScratchDir() {
  Status st = MakeTempDir("coconut-test-", &path_);
  EXPECT_TRUE(st.ok()) << st.ToString();
}

ScratchDir::~ScratchDir() {
  if (!path_.empty()) (void)RemoveAll(path_);
}

std::vector<Series> MakeDatasetFile(const std::string& path, DatasetKind kind,
                                    size_t count, size_t length,
                                    uint64_t seed) {
  auto gen = MakeGenerator(kind, length, seed);
  std::vector<Series> data;
  data.reserve(count);
  BufferedWriter writer;
  Status st = writer.Open(path);
  EXPECT_TRUE(st.ok()) << st.ToString();
  for (size_t i = 0; i < count; ++i) {
    data.push_back(gen->NextSeries());
    st = writer.Write(data.back().data(), length * sizeof(Value));
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  st = writer.Finish();
  EXPECT_TRUE(st.ok()) << st.ToString();
  return data;
}

std::pair<size_t, double> BruteForceNn(const std::vector<Series>& data,
                                       const Series& query) {
  size_t best = 0;
  double best_sq = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < data.size(); ++i) {
    const double d =
        SquaredEuclidean(data[i].data(), query.data(), query.size());
    if (d < best_sq) {
      best_sq = d;
      best = i;
    }
  }
  return {best, std::sqrt(best_sq)};
}

}  // namespace testing
}  // namespace coconut
