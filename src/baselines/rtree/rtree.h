// R-tree over PAA summarizations, bulk-loaded with the Sort-Tile-Recursive
// (STR) algorithm of Leutenegger et al. — the R-tree / R-tree+ baseline of
// the paper's evaluation (§5 "Algorithms").
//
// STR sorts the PAA points by the first dimension into slabs and recursively
// re-sorts each slab by the next dimension, so construction costs one full
// sorting pass per recursion level — the O(N * D) behaviour the paper
// contrasts with Coconut's single sort over the interleaved representation.
// Every level's sort runs through the memory-budgeted external sorter, so
// constrained-memory experiments spill per level.
//
// Nearest-neighbor search is best-first over minimum distances to node MBRs
// in PAA space (a valid lower bound of true Euclidean distance, scaled by
// n/w), with true distances computed at the leaves; this makes exact search
// exact. The materialized variant stores the raw series in the leaves;
// R-tree+ keeps (PAA, position) entries and fetches series from the raw
// file.
#ifndef COCONUT_BASELINES_RTREE_RTREE_H_
#define COCONUT_BASELINES_RTREE_RTREE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/coconut_options.h"
#include "src/io/file.h"
#include "src/series/dataset.h"
#include "src/series/series.h"

namespace coconut {

class KnnCollector;

struct RtreeOptions {
  SummaryOptions summary;
  size_t leaf_capacity = 2000;
  bool materialized = false;
  size_t memory_budget_bytes = 256ull * 1024 * 1024;
  std::string tmp_dir;
  /// Internal-node fanout (in-memory directory).
  size_t fanout = 32;
  /// Parallelism for the STR sorting passes (external sorter semantics:
  /// 0 = shared pool size, 1 = serial).
  unsigned num_threads = 0;

  Status Validate() const {
    COCONUT_RETURN_IF_ERROR(summary.Validate());
    if (leaf_capacity == 0 || fanout < 2) {
      return Status::InvalidArgument("bad leaf_capacity or fanout");
    }
    if (tmp_dir.empty()) {
      return Status::InvalidArgument("tmp_dir must be set");
    }
    return Status::OK();
  }
};

struct RtreeBuildStats {
  double summarize_seconds = 0.0;
  double str_seconds = 0.0;   // recursive sorting passes
  double load_seconds = 0.0;  // leaf write + directory build
  size_t sort_passes = 0;     // number of (re-)sorting passes performed

  double total_seconds() const {
    return summarize_seconds + str_seconds + load_seconds;
  }
};

class RTree {
 public:
  static Status Build(const std::string& raw_path,
                      const std::string& storage_path,
                      const RtreeOptions& options, std::unique_ptr<RTree>* out,
                      RtreeBuildStats* stats = nullptr);

  /// Greedy root-to-leaf descent to the most promising leaf; true k-NN
  /// distances over its entries.
  Status ApproxSearch(const Value* query, SearchResult* result, size_t k = 1);

  /// Best-first exact k nearest neighbors.
  Status ExactSearch(const Value* query, SearchResult* result, size_t k = 1);

  uint64_t num_entries() const { return num_entries_; }
  uint64_t num_leaves() const { return leaves_.size(); }
  double AvgLeafFill() const;
  uint64_t StorageBytes() const;
  const RtreeOptions& options() const { return options_; }

 private:
  RTree() = default;

  struct NodeRect {
    std::vector<double> lo;
    std::vector<double> hi;
  };
  struct DirNode {
    NodeRect rect;
    // Children: either directory-node ids or (at the lowest directory
    // level) leaf ids.
    std::vector<uint64_t> children;
    bool children_are_leaves = false;
  };
  struct LeafInfo {
    NodeRect rect;
    uint64_t entry_count = 0;
  };

  Status ReadLeafPage(uint64_t leaf, std::vector<uint8_t>* page);
  Status LeafTrueDistances(uint64_t leaf, const Value* query,
                           KnnCollector* knn, uint64_t* visited);

  RtreeOptions options_;
  size_t entry_bytes_ = 0;
  uint64_t num_entries_ = 0;
  std::unique_ptr<RandomAccessFile> storage_;
  std::unique_ptr<RawSeriesFile> raw_file_;
  std::vector<LeafInfo> leaves_;
  std::vector<DirNode> dir_;  // dir_[root_] is the root
  int64_t root_ = -1;
  std::vector<Value> fetch_buf_;
};

}  // namespace coconut

#endif  // COCONUT_BASELINES_RTREE_RTREE_H_
