#include "src/store/manifest.h"

#include <sstream>

#include "src/common/crc32c.h"
#include "src/common/env.h"
#include "src/io/file.h"
#include "src/obs/metrics.h"

namespace coconut {

namespace {

constexpr char kManifestHeader[] = "coconut-store-manifest v1";

/// Parses a 64-hex-char big-endian key (the ZKey::ToHex format).
Status KeyFromHex(const std::string& hex, ZKey* out) {
  if (hex.size() != ZKey::kBytes * 2) {
    return Status::Corruption("manifest: bad key width: " + hex);
  }
  uint8_t bytes[ZKey::kBytes];
  for (size_t i = 0; i < ZKey::kBytes; ++i) {
    unsigned v = 0;
    for (size_t j = 0; j < 2; ++j) {
      const char c = hex[i * 2 + j];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return Status::Corruption("manifest: bad hex digit in key");
      }
    }
    bytes[i] = static_cast<uint8_t>(v);
  }
  *out = ZKey::DeserializeBE(bytes);
  return Status::OK();
}

}  // namespace

Status StoreManifest::Validate() const {
  if (version != 1) {
    return Status::Corruption("manifest: unsupported version");
  }
  if (series_length == 0) {
    return Status::Corruption("manifest: series_length must be > 0");
  }
  if (shards.empty()) {
    return Status::Corruption("manifest: no shards");
  }
  if (!(shards.front().lower_bound == ZKey())) {
    return Status::Corruption("manifest: shard 0 must start at the zero key");
  }
  for (size_t i = 0; i < shards.size(); ++i) {
    if (shards[i].dir.empty()) {
      return Status::Corruption("manifest: empty shard dir");
    }
    if (i > 0 && !(shards[i - 1].lower_bound < shards[i].lower_bound)) {
      return Status::Corruption(
          "manifest: shard boundaries must be strictly increasing");
    }
  }
  return Status::OK();
}

bool StoreManifestExists(const std::string& store_dir) {
  return FileExists(JoinPath(store_dir, kStoreManifestName));
}

Status WriteStoreManifest(const std::string& store_dir,
                          const StoreManifest& manifest) {
  COCONUT_RETURN_IF_ERROR(manifest.Validate());
  std::ostringstream text;
  text << kManifestHeader << "\n";
  text << "series_length " << manifest.series_length << "\n";
  text << "last_committed_epoch " << manifest.last_committed_epoch << "\n";
  text << "shards " << manifest.shards.size() << "\n";
  for (size_t i = 0; i < manifest.shards.size(); ++i) {
    const ShardInfo& s = manifest.shards[i];
    text << "shard " << i << " " << s.lower_bound.ToHex() << " " << s.dir
         << " " << s.entries << "\n";
  }
  std::string body = text.str();
  // Trailer line: CRC32C of every byte above it. Must stay the last line —
  // the parser rejects directives after it.
  body += "checksum " + crc32c::ToHex(crc32c::Value(body.data(), body.size())) +
          "\n";

  const std::string final_path = JoinPath(store_dir, kStoreManifestName);
  const std::string tmp_path = final_path + ".tmp";
  std::unique_ptr<WritableFile> file;
  COCONUT_RETURN_IF_ERROR(WritableFile::Create(tmp_path, &file));
  COCONUT_RETURN_IF_ERROR(file->Append(body.data(), body.size()));
  COCONUT_RETURN_IF_ERROR(file->Sync());
  COCONUT_RETURN_IF_ERROR(file->Close());
  return RenameFile(tmp_path, final_path);
}

Status ReadStoreManifest(const std::string& store_dir, StoreManifest* out) {
  const std::string path = JoinPath(store_dir, kStoreManifestName);
  std::unique_ptr<RandomAccessFile> file;
  COCONUT_RETURN_IF_ERROR(RandomAccessFile::Open(path, &file));
  std::string body(file->size(), '\0');
  if (!body.empty()) {
    COCONUT_RETURN_IF_ERROR(file->Read(0, body.size(), body.data()));
  }

  StoreManifest manifest;
  std::istringstream lines(body);
  std::string line;
  if (!std::getline(lines, line) || line != kManifestHeader) {
    return Status::Corruption("manifest: bad header");
  }
  size_t declared_shards = 0;
  bool have_series_length = false;
  bool have_epoch = false;
  bool have_shards = false;
  bool have_checksum = false;
  // Byte offset of the line about to be parsed — the checksum trailer covers
  // [0, line_start) of the raw file.
  size_t line_start = 0;
  size_t next_line_start = line.size() + 1;  // header + '\n'
  while (std::getline(lines, line)) {
    line_start = next_line_start;
    next_line_start += line.size() + 1;
    if (line.empty() || line[0] == '#') continue;
    if (have_checksum) {
      return Status::Corruption("manifest: checksum line must be last: " +
                                line);
    }
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (tag == "series_length") {
      if (have_series_length) {
        return Status::Corruption("manifest: duplicate series_length: " + line);
      }
      have_series_length = true;
      fields >> manifest.series_length;
    } else if (tag == "last_committed_epoch") {
      if (have_epoch) {
        return Status::Corruption("manifest: duplicate last_committed_epoch: " +
                                  line);
      }
      have_epoch = true;
      fields >> manifest.last_committed_epoch;
    } else if (tag == "shards") {
      if (have_shards) {
        return Status::Corruption("manifest: duplicate shards directive: " +
                                  line);
      }
      have_shards = true;
      fields >> declared_shards;
    } else if (tag == "shard") {
      size_t index = 0;
      std::string hex;
      ShardInfo info;
      fields >> index >> hex >> info.dir >> info.entries;
      if (fields.fail() || index != manifest.shards.size()) {
        return Status::Corruption("manifest: bad shard line: " + line);
      }
      COCONUT_RETURN_IF_ERROR(KeyFromHex(hex, &info.lower_bound));
      manifest.shards.push_back(std::move(info));
    } else if (tag == "checksum") {
      static Counter* verified =
          MetricRegistry::Default().GetCounter("io.checksum.verified");
      static Counter* failed =
          MetricRegistry::Default().GetCounter("io.checksum.failed");
      std::string hex;
      uint32_t want = 0;
      fields >> hex;
      if (fields.fail() || !crc32c::FromHex(hex, &want)) {
        return Status::Corruption("manifest: bad checksum token: " + line);
      }
      if (crc32c::Value(body.data(), line_start) != want) {
        failed->Increment();
        return Status::Corruption("manifest: checksum mismatch in " + path);
      }
      verified->Increment();
      have_checksum = true;
    } else {
      return Status::Corruption("manifest: unknown directive: " + tag);
    }
    if (fields.fail()) {
      return Status::Corruption("manifest: malformed line: " + line);
    }
    std::string extra;
    if (fields >> extra) {
      return Status::Corruption("manifest: trailing tokens: " + line);
    }
  }
  if (!have_series_length) {
    return Status::Corruption("manifest: missing series_length directive");
  }
  if (!have_shards) {
    return Status::Corruption("manifest: missing shards directive");
  }
  if (manifest.shards.size() != declared_shards) {
    return Status::Corruption("manifest: shard count mismatch");
  }
  COCONUT_RETURN_IF_ERROR(manifest.Validate());
  *out = std::move(manifest);
  return Status::OK();
}

}  // namespace coconut
