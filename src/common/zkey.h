// ZKey: a fixed-width 256-bit big-endian key used to hold z-order
// (bit-interleaved) data series summarizations — the paper's "invSAX".
//
// Keys compare lexicographically from the most significant bit, so sorting
// byte-serialized keys with memcmp and sorting ZKey values with operator<
// agree. 256 bits accommodate up to 32 segments at 8-bit cardinality; the
// paper's default configuration (16 segments x 8 bits) uses the top 128 bits.
#ifndef COCONUT_COMMON_ZKEY_H_
#define COCONUT_COMMON_ZKEY_H_

#include <array>
#include <compare>
#include <cstdint>
#include <cstring>
#include <string>

namespace coconut {

class ZKey {
 public:
  static constexpr size_t kBits = 256;
  static constexpr size_t kWords = kBits / 64;
  static constexpr size_t kBytes = kBits / 8;

  /// Constructs the all-zero key (minimum possible key).
  ZKey() : words_{} {}

  /// Returns the maximum possible key (all bits set).
  static ZKey Max() {
    ZKey k;
    k.words_.fill(~uint64_t{0});
    return k;
  }

  /// Sets bit `pos`, where pos 0 is the MOST significant bit of the key.
  void SetBit(size_t pos) {
    words_[pos / 64] |= (uint64_t{1} << (63 - (pos % 64)));
  }

  /// Clears bit `pos`, where pos 0 is the most significant bit.
  void ClearBit(size_t pos) {
    words_[pos / 64] &= ~(uint64_t{1} << (63 - (pos % 64)));
  }

  /// Returns bit `pos` (0 = most significant) as 0 or 1.
  uint32_t GetBit(size_t pos) const {
    return static_cast<uint32_t>(
        (words_[pos / 64] >> (63 - (pos % 64))) & 1u);
  }

  /// Lexicographic comparison from the most significant word down.
  friend std::strong_ordering operator<=>(const ZKey& a, const ZKey& b) {
    for (size_t i = 0; i < kWords; ++i) {
      if (a.words_[i] != b.words_[i]) {
        return a.words_[i] < b.words_[i] ? std::strong_ordering::less
                                         : std::strong_ordering::greater;
      }
    }
    return std::strong_ordering::equal;
  }
  friend bool operator==(const ZKey& a, const ZKey& b) {
    return a.words_ == b.words_;
  }

  /// Serializes to `kBytes` big-endian bytes such that memcmp order on the
  /// serialized form equals operator< order on keys.
  void SerializeBE(uint8_t* out) const {
    for (size_t i = 0; i < kWords; ++i) {
      uint64_t w = words_[i];
      for (size_t b = 0; b < 8; ++b) {
        out[i * 8 + b] = static_cast<uint8_t>(w >> (56 - 8 * b));
      }
    }
  }

  /// Parses a key previously produced by SerializeBE().
  static ZKey DeserializeBE(const uint8_t* in) {
    ZKey k;
    for (size_t i = 0; i < kWords; ++i) {
      uint64_t w = 0;
      for (size_t b = 0; b < 8; ++b) {
        w = (w << 8) | in[i * 8 + b];
      }
      k.words_[i] = w;
    }
    return k;
  }

  /// Length (in bits) of the common prefix of `a` and `b`, counted from the
  /// most significant bit. Equal keys return kBits.
  static size_t CommonPrefixBits(const ZKey& a, const ZKey& b) {
    for (size_t i = 0; i < kWords; ++i) {
      const uint64_t diff = a.words_[i] ^ b.words_[i];
      if (diff != 0) {
        return i * 64 + static_cast<size_t>(__builtin_clzll(diff));
      }
    }
    return kBits;
  }

  /// Hex rendering (most significant nibble first), for tests and debugging.
  std::string ToHex() const;

  const std::array<uint64_t, kWords>& words() const { return words_; }

 private:
  // words_[0] holds the most significant 64 bits.
  std::array<uint64_t, kWords> words_;
};

}  // namespace coconut

#endif  // COCONUT_COMMON_ZKEY_H_
