// On-disk format of the Coconut-Tree index file.
//
// Layout (single file):
//   [superblock: 4096 bytes]
//   [leaf pages, contiguous, fixed size]          <- bulk-loaded in key order
//   [internal level 0 pages][level 1]...[root]    <- built bottom-up
//
// Leaf entries are fixed size:
//   non-materialized: [ZKey: 32 bytes BE][raw-file offset: 8 bytes LE]
//   materialized:     [ZKey: 32][offset: 8][series: length * 4 bytes]
// Leaves are packed at entries_per_leaf records (fill factor applied); the
// last leaf may be short. Because leaves are contiguous and uniformly
// packed, entry i lives in leaf i / entries_per_leaf at slot
// i % entries_per_leaf — no per-page directory is needed, and "pointers
// between neighboring leaves" (paper §4.3) are implicit in contiguity.
//
// Internal pages hold [count: 8][(first-key: 32, child: 8) x count]; child
// ids index into the level below (leaf index at the bottom internal level).
// All internal levels are loaded into memory on open (paper §3.1: "the
// index's internal nodes for most applications fit in main memory").
//
// Version 2 appends an integrity section after the internal levels (at
// integrity_offset):
//   [leaf-page CRC32C: 4 bytes LE, one per leaf][internal-region CRC32C: 4]
// plus three superblock fields: integrity_offset, sidecar_crc (CRC32C of
// the whole .sax sidecar) and superblock_crc (CRC32C of the superblock
// struct with that field zeroed, stamped last). Readers verify the
// superblock on open, the internal region while loading it, each leaf page
// on read, and the sidecar when it is first materialized. Version 1 files
// (no checksums) still open.
#ifndef COCONUT_CORE_TREE_FORMAT_H_
#define COCONUT_CORE_TREE_FORMAT_H_

#include <cstdint>
#include <cstring>

#include "src/common/status.h"
#include "src/common/zkey.h"
#include "src/core/coconut_options.h"

namespace coconut {

inline constexpr uint64_t kTreeMagic = 0x31454552544E4343ull;  // "CCNTREE1"
inline constexpr size_t kSuperblockBytes = 4096;
inline constexpr size_t kInternalPageBytes = 4096;
inline constexpr size_t kInternalEntryBytes = ZKey::kBytes + 8;  // key+child
inline constexpr size_t kInternalFanout =
    (kInternalPageBytes - 8) / kInternalEntryBytes;
inline constexpr size_t kMaxLevels = 10;

/// Fixed-layout superblock. Trivially copyable; written/read via memcpy into
/// the 4 KiB superblock page.
struct TreeSuperblock {
  uint64_t magic = kTreeMagic;
  uint64_t version = 2;
  uint64_t materialized = 0;
  uint64_t series_length = 0;
  uint64_t segments = 0;
  uint64_t cardinality_bits = 0;
  uint64_t leaf_capacity = 0;
  uint64_t entries_per_leaf = 0;
  uint64_t entry_bytes = 0;
  uint64_t leaf_page_bytes = 0;
  uint64_t num_entries = 0;
  uint64_t num_leaves = 0;
  uint64_t num_internal_levels = 0;
  uint64_t level_file_offset[kMaxLevels] = {};
  uint64_t level_page_count[kMaxLevels] = {};
  /// v2: file offset of the integrity section (0 in v1 files).
  uint64_t integrity_offset = 0;
  /// v2: CRC32C of the entire .sax sidecar file.
  uint32_t sidecar_crc = 0;
  /// v2: CRC32C of this struct with this field zeroed. Stamped last.
  uint32_t superblock_crc = 0;

  Status Check() const {
    if (magic != kTreeMagic) return Status::Corruption("bad tree magic");
    if (version != 1 && version != 2) {
      return Status::Corruption("unsupported tree version");
    }
    return Status::OK();
  }

  bool has_checksums() const { return version >= 2; }
};
static_assert(sizeof(TreeSuperblock) <= kSuperblockBytes);
static_assert(std::is_trivially_copyable_v<TreeSuperblock>);

/// Size of one leaf entry for the given options.
inline size_t LeafEntryBytes(const CoconutOptions& opts) {
  size_t n = ZKey::kBytes + 8;
  if (opts.materialized) n += opts.summary.series_length * sizeof(float);
  return n;
}

/// Encodes a leaf entry into `out` (entry_bytes). `series` may be null for
/// non-materialized entries.
inline void EncodeLeafEntry(const ZKey& key, uint64_t offset,
                            const float* series, size_t series_length,
                            uint8_t* out) {
  key.SerializeBE(out);
  std::memcpy(out + ZKey::kBytes, &offset, sizeof(offset));
  if (series != nullptr) {
    std::memcpy(out + ZKey::kBytes + 8, series,
                series_length * sizeof(float));
  }
}

inline ZKey DecodeLeafEntryKey(const uint8_t* entry) {
  return ZKey::DeserializeBE(entry);
}

inline uint64_t DecodeLeafEntryOffset(const uint8_t* entry) {
  uint64_t offset;
  std::memcpy(&offset, entry + ZKey::kBytes, sizeof(offset));
  return offset;
}

/// Pointer to the inline series payload of a materialized entry.
inline const float* LeafEntrySeries(const uint8_t* entry) {
  return reinterpret_cast<const float*>(entry + ZKey::kBytes + 8);
}

}  // namespace coconut

#endif  // COCONUT_CORE_TREE_FORMAT_H_
