#include "src/sort/external_sort.h"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <queue>

#include "src/common/env.h"

namespace coconut {

namespace {

/// Sorts the records in `buffer` (count records of record_bytes each) by
/// memcmp on the leading key_bytes, via an index permutation to keep moves
/// cheap, then materializes the sorted order into `out`.
void SortBuffer(const std::vector<uint8_t>& buffer, size_t record_bytes,
                size_t key_bytes, size_t count, std::vector<uint8_t>* out) {
  std::vector<uint32_t> order(count);
  std::iota(order.begin(), order.end(), 0u);
  const uint8_t* base = buffer.data();
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return std::memcmp(base + size_t{a} * record_bytes,
                       base + size_t{b} * record_bytes, key_bytes) < 0;
  });
  out->resize(count * record_bytes);
  for (size_t i = 0; i < count; ++i) {
    std::memcpy(out->data() + i * record_bytes,
                base + size_t{order[i]} * record_bytes, record_bytes);
  }
}

/// Stream over an in-memory sorted buffer.
class MemoryStream : public SortedRecordStream {
 public:
  MemoryStream(std::vector<uint8_t> data, size_t record_bytes)
      : data_(std::move(data)), record_bytes_(record_bytes) {}

  bool Next(uint8_t* out, Status* status) override {
    *status = Status::OK();
    if (pos_ + record_bytes_ > data_.size()) return false;
    std::memcpy(out, data_.data() + pos_, record_bytes_);
    pos_ += record_bytes_;
    return true;
  }

  uint64_t count() const override { return data_.size() / record_bytes_; }

 private:
  std::vector<uint8_t> data_;
  size_t record_bytes_;
  size_t pos_ = 0;
};

/// Stream over a single sorted run file.
class FileStream : public SortedRecordStream {
 public:
  FileStream(size_t record_bytes, size_t buffer_bytes)
      : record_bytes_(record_bytes), reader_(buffer_bytes) {}

  Status Open(const std::string& path) {
    COCONUT_RETURN_IF_ERROR(reader_.Open(path));
    count_ = reader_.file_size() / record_bytes_;
    return Status::OK();
  }

  bool Next(uint8_t* out, Status* status) override {
    *status = Status::OK();
    if (read_ >= count_) return false;
    *status = reader_.Read(out, record_bytes_);
    if (!status->ok()) return false;
    ++read_;
    return true;
  }

  uint64_t count() const override { return count_; }

 private:
  size_t record_bytes_;
  BufferedReader reader_;
  uint64_t count_ = 0;
  uint64_t read_ = 0;
};

}  // namespace

ExternalSorter::ExternalSorter(ExternalSortOptions options)
    : options_(std::move(options)) {
  // Reserve half the budget for run generation; the other half is available
  // to merge input buffers later (so the whole sorter respects the budget).
  buffer_capacity_records_ =
      std::max<size_t>(2, options_.memory_budget_bytes / 2 /
                              std::max<size_t>(1, options_.record_bytes));
}

ExternalSorter::~ExternalSorter() {
  for (const std::string& p : run_paths_) {
    (void)RemoveAll(p);
  }
}

Status ExternalSorter::Add(const uint8_t* record) {
  if (finished_) return Status::Internal("Add after Finish");
  buffer_.insert(buffer_.end(), record, record + options_.record_bytes);
  ++total_records_;
  if (buffer_.size() / options_.record_bytes >= buffer_capacity_records_) {
    COCONUT_RETURN_IF_ERROR(SortAndSpillBuffer());
  }
  return Status::OK();
}

Status ExternalSorter::SortAndSpillBuffer() {
  const size_t count = buffer_.size() / options_.record_bytes;
  if (count == 0) return Status::OK();
  std::vector<uint8_t> sorted;
  SortBuffer(buffer_, options_.record_bytes, options_.key_bytes, count,
             &sorted);
  buffer_.clear();
  buffer_.shrink_to_fit();
  const std::string path = JoinPath(
      options_.tmp_dir, "run-" + std::to_string(next_run_id_++) + ".bin");
  BufferedWriter writer;
  COCONUT_RETURN_IF_ERROR(writer.Open(path));
  COCONUT_RETURN_IF_ERROR(writer.Write(sorted.data(), sorted.size()));
  COCONUT_RETURN_IF_ERROR(writer.Finish());
  run_paths_.push_back(path);
  return Status::OK();
}

Status ExternalSorter::MergeRuns(const std::vector<std::string>& inputs,
                                 const std::string& output) {
  const size_t k = inputs.size();
  // Split half the budget across the input buffers (min 64 KiB each).
  const size_t per_input = std::max<size_t>(
      64 * 1024, options_.memory_budget_bytes / 2 / std::max<size_t>(1, k));

  struct Cursor {
    std::unique_ptr<FileStream> stream;
    std::vector<uint8_t> record;
    bool valid = false;
  };
  std::vector<Cursor> cursors(k);
  for (size_t i = 0; i < k; ++i) {
    cursors[i].stream =
        std::make_unique<FileStream>(options_.record_bytes, per_input);
    COCONUT_RETURN_IF_ERROR(cursors[i].stream->Open(inputs[i]));
    cursors[i].record.resize(options_.record_bytes);
    Status st;
    cursors[i].valid = cursors[i].stream->Next(cursors[i].record.data(), &st);
    COCONUT_RETURN_IF_ERROR(st);
  }

  const size_t key_bytes = options_.key_bytes;
  auto greater = [&](size_t a, size_t b) {
    return std::memcmp(cursors[a].record.data(), cursors[b].record.data(),
                       key_bytes) > 0;
  };
  std::priority_queue<size_t, std::vector<size_t>, decltype(greater)> heap(
      greater);
  for (size_t i = 0; i < k; ++i) {
    if (cursors[i].valid) heap.push(i);
  }

  BufferedWriter writer;
  COCONUT_RETURN_IF_ERROR(writer.Open(output));
  while (!heap.empty()) {
    const size_t i = heap.top();
    heap.pop();
    COCONUT_RETURN_IF_ERROR(
        writer.Write(cursors[i].record.data(), options_.record_bytes));
    Status st;
    cursors[i].valid = cursors[i].stream->Next(cursors[i].record.data(), &st);
    COCONUT_RETURN_IF_ERROR(st);
    if (cursors[i].valid) heap.push(i);
  }
  return writer.Finish();
}

Status ExternalSorter::Finish(std::unique_ptr<SortedRecordStream>* out) {
  if (finished_) return Status::Internal("Finish called twice");
  finished_ = true;
  COCONUT_RETURN_IF_ERROR(options_.Validate());

  if (run_paths_.empty()) {
    // Everything fits in memory: sort and serve directly, no disk I/O.
    const size_t count = buffer_.size() / options_.record_bytes;
    std::vector<uint8_t> sorted;
    SortBuffer(buffer_, options_.record_bytes, options_.key_bytes, count,
               &sorted);
    buffer_.clear();
    buffer_.shrink_to_fit();
    *out = std::make_unique<MemoryStream>(std::move(sorted),
                                          options_.record_bytes);
    return Status::OK();
  }

  // Spill any tail so that all data is in runs.
  COCONUT_RETURN_IF_ERROR(SortAndSpillBuffer());

  // Merge passes until one run remains, bounded by fan-in.
  const size_t budget_fan_in = std::max<size_t>(
      2, options_.memory_budget_bytes / 2 / (64 * 1024));
  const size_t fan_in = std::min(options_.max_fan_in, budget_fan_in);
  std::vector<std::string> current = run_paths_;
  run_paths_.clear();
  while (current.size() > 1) {
    std::vector<std::string> next_level;
    for (size_t i = 0; i < current.size(); i += fan_in) {
      const size_t end = std::min(current.size(), i + fan_in);
      std::vector<std::string> group(current.begin() + i,
                                     current.begin() + end);
      if (group.size() == 1) {
        next_level.push_back(group[0]);
        continue;
      }
      const std::string merged = JoinPath(
          options_.tmp_dir, "run-" + std::to_string(next_run_id_++) + ".bin");
      COCONUT_RETURN_IF_ERROR(MergeRuns(group, merged));
      for (const std::string& g : group) {
        COCONUT_RETURN_IF_ERROR(RemoveAll(g));
      }
      next_level.push_back(merged);
    }
    current.swap(next_level);
  }
  run_paths_ = current;  // single final run; destructor cleans it up

  auto stream = std::make_unique<FileStream>(options_.record_bytes,
                                             kDefaultIoBufferBytes);
  COCONUT_RETURN_IF_ERROR(stream->Open(current[0]));
  *out = std::move(stream);
  return Status::OK();
}

}  // namespace coconut
