#include "src/series/znorm.h"

#include <cmath>

#include "src/simd/kernels.h"

namespace coconut {

double Mean(const Value* values, size_t n) {
  if (n == 0) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) sum += values[i];
  return sum / static_cast<double>(n);
}

double StdDev(const Value* values, size_t n) {
  if (n == 0) return 0.0;
  const double mean = Mean(values, n);
  double sq = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = values[i] - mean;
    sq += d * d;
  }
  return std::sqrt(sq / static_cast<double>(n));
}

void ZNormalize(Value* values, size_t n) {
  simd::Kernels().znormalize(values, n);
}

}  // namespace coconut
