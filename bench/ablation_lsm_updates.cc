// Ablation (paper §6 future work): LSM-style updates. Compares three
// ingestion strategies under the Fig 10a mixed workload:
//   * CTree merge   — rebuild-merge the whole contiguous run per batch,
//   * CoconutForest — LSM: buffer, flush sorted runs, compact occasionally,
//   * ADS+          — per-series top-down inserts.
// Expectation: the forest removes the per-batch rebuild penalty that makes
// plain Coconut-Tree lose on small fragmented batches, while keeping
// ingestion sequential.
#include "bench/bench_util.h"
#include "src/baselines/ads/ads_index.h"
#include "src/core/coconut_forest.h"
#include "src/core/coconut_tree.h"

namespace coconut {
namespace bench {
namespace {

constexpr size_t kLength = 256;
constexpr size_t kLeafCapacity = 100;
constexpr size_t kBudget = 4ull << 20;

SummaryOptions Summary() {
  SummaryOptions s;
  s.series_length = kLength;
  s.segments = 16;
  s.cardinality_bits = 8;
  return s;
}

void Run() {
  Banner("Ablation: LSM updates",
         "per-batch merge vs LSM forest vs top-down inserts");
  const size_t total = 30000 * Scale();
  const size_t initial = total / 3;
  const size_t queries_total = 15;
  PrintHeader({"batch_size", "method", "total_time", "rand_io"});

  for (size_t batch_size : {total / 64, total / 16, total / 4}) {
    auto make_batches = [&](auto&& ingest, auto&& query) -> Status {
      auto gen = MakeGenerator(DatasetKind::kRandomWalk, kLength, 81);
      auto qs =
          MakeQueries(DatasetKind::kRandomWalk, queries_total, kLength, 8100);
      size_t loaded = initial;
      size_t qi = 0;
      const size_t batches =
          (total - initial + batch_size - 1) / batch_size;
      const size_t qpb =
          std::max<size_t>(1, queries_total / std::max<size_t>(1, batches));
      while (loaded < total) {
        const size_t this_batch = std::min(batch_size, total - loaded);
        std::vector<Series> batch;
        for (size_t i = 0; i < this_batch; ++i) {
          batch.push_back(gen->NextSeries());
        }
        COCONUT_RETURN_IF_ERROR(ingest(batch));
        loaded += this_batch;
        for (size_t q = 0; q < qpb && qi < queries_total; ++q, ++qi) {
          COCONUT_RETURN_IF_ERROR(query(qs[qi]));
        }
      }
      while (qi < queries_total) {
        COCONUT_RETURN_IF_ERROR(query(qs[qi++]));
      }
      return Status::OK();
    };

    {  // Plain Coconut-Tree with per-batch merge.
      BenchDir dir;
      const std::string raw = dir.File("data.bin");
      auto init = MakeGenerator(DatasetKind::kRandomWalk, kLength, 80);
      CheckOk(WriteDataset(raw, init.get(), initial), "init");
      CoconutOptions opts;
      opts.summary = Summary();
      opts.leaf_capacity = kLeafCapacity;
      opts.memory_budget_bytes = kBudget;
      opts.tmp_dir = dir.path();
      Measured m;
      CheckOk(CoconutTree::Build(raw, dir.File("i.ctree"), opts), "build");
      std::unique_ptr<CoconutTree> tree;
      CheckOk(CoconutTree::Open(dir.File("i.ctree"), raw, &tree), "open");
      CheckOk(make_batches(
                  [&](const std::vector<Series>& b) {
                    return tree->MergeBatch(b);
                  },
                  [&](const Series& q) {
                    SearchResult r;
                    return tree->ExactSearch(q.data(), 1, &r);
                  }),
              "ctree workload");
      const IoSnapshot io = m.io();
      PrintRow({FmtCount(batch_size), "CTree-merge", FmtSeconds(m.seconds()),
                FmtCount(io.random_read_ops + io.random_write_ops)});
    }
    {  // CoconutForest (LSM).
      BenchDir dir;
      const std::string raw = dir.File("data.bin");
      auto init = MakeGenerator(DatasetKind::kRandomWalk, kLength, 80);
      CheckOk(WriteDataset(raw, init.get(), initial), "init");
      ForestOptions opts;
      opts.tree.summary = Summary();
      opts.tree.leaf_capacity = kLeafCapacity;
      opts.tree.memory_budget_bytes = kBudget;
      opts.tree.tmp_dir = dir.path();
      opts.memtable_series = 4096;
      opts.max_runs = 4;
      Measured m;
      std::unique_ptr<CoconutForest> forest;
      CheckOk(CoconutForest::Open(raw, dir.File("forest"), opts, &forest),
              "forest open");
      CheckOk(make_batches(
                  [&](const std::vector<Series>& b) {
                    return forest->InsertBatch(b);
                  },
                  [&](const Series& q) {
                    SearchResult r;
                    return forest->ExactSearch(q.data(), &r);
                  }),
              "forest workload");
      const IoSnapshot io = m.io();
      PrintRow({FmtCount(batch_size), "Forest(LSM)", FmtSeconds(m.seconds()),
                FmtCount(io.random_read_ops + io.random_write_ops)});
    }
    {  // ADS+.
      BenchDir dir;
      const std::string raw = dir.File("data.bin");
      auto init = MakeGenerator(DatasetKind::kRandomWalk, kLength, 80);
      CheckOk(WriteDataset(raw, init.get(), initial), "init");
      AdsOptions opts;
      opts.summary = Summary();
      opts.leaf_capacity = kLeafCapacity;
      opts.memory_budget_bytes = kBudget;
      Measured m;
      std::unique_ptr<AdsIndex> index;
      CheckOk(AdsIndex::Build(raw, dir.File("a.pages"), opts, &index),
              "build");
      uint64_t raw_bytes = initial * kLength * sizeof(Value);
      CheckOk(make_batches(
                  [&](const std::vector<Series>& b) {
                    COCONUT_RETURN_IF_ERROR(AppendToDataset(raw, b));
                    Status st = index->InsertBatch(b, raw_bytes);
                    raw_bytes += b.size() * kLength * sizeof(Value);
                    return st;
                  },
                  [&](const Series& q) {
                    SearchResult r;
                    return index->ExactSearch(q.data(), &r);
                  }),
              "ads workload");
      const IoSnapshot io = m.io();
      PrintRow({FmtCount(batch_size), "ADS+", FmtSeconds(m.seconds()),
                FmtCount(io.random_read_ops + io.random_write_ops)});
    }
  }
  std::printf(
      "\nExpectation: the LSM forest avoids the per-batch full rebuild of\n"
      "CTree-merge on small batches while keeping ingestion sequential —\n"
      "the direction the paper's future-work section points at.\n");
}

}  // namespace
}  // namespace bench
}  // namespace coconut

int main() {
  coconut::bench::Run();
  return 0;
}
