// Z-normalization: subtract the mean, divide by the standard deviation.
// All datasets in the paper are z-normalized as a preprocessing step; on
// z-normalized series, minimizing Euclidean distance is equivalent to
// maximizing Pearson correlation (paper §2).
#ifndef COCONUT_SERIES_ZNORM_H_
#define COCONUT_SERIES_ZNORM_H_

#include <cstddef>

#include "src/series/series.h"

namespace coconut {

/// Z-normalizes `n` values in place. Constant series (stddev below epsilon)
/// become all zeros.
void ZNormalize(Value* values, size_t n);

/// Returns the mean of `n` values.
double Mean(const Value* values, size_t n);

/// Returns the population standard deviation of `n` values.
double StdDev(const Value* values, size_t n);

}  // namespace coconut

#endif  // COCONUT_SERIES_ZNORM_H_
