// Data series generators for the three dataset families in the paper's
// evaluation (§5, Figure 7):
//
//  * RandomWalkGenerator — the paper's synthetic workload: cumulative sums of
//    N(0,1) steps, shown to model real-world financial data.
//  * SeismicGenerator    — substitute for the IRIS seismic repository: a long
//    synthetic seismogram (background noise plus superposed damped-sinusoid
//    events) sampled with a sliding window, exactly how the paper extracted
//    its 100M seismic subsequences. Value distribution is near-Gaussian,
//    matching Fig 7, and overlapping windows make the dataset dense/"hard".
//  * AstronomyGenerator  — substitute for the celestial-object light curves:
//    smooth periodic baselines with occasional flare events and a skew
//    transform, reproducing the slight skew Fig 7 reports for astronomy.
//
// All generators emit z-normalized series (the paper z-normalizes all data).
#ifndef COCONUT_SERIES_GENERATOR_H_
#define COCONUT_SERIES_GENERATOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/random.h"
#include "src/series/series.h"

namespace coconut {

/// Abstract source of fixed-length data series.
class SeriesGenerator {
 public:
  virtual ~SeriesGenerator() = default;

  /// Fills `out` (length `length()`) with the next series. Output is
  /// z-normalized.
  virtual void Next(Value* out) = 0;

  size_t length() const { return length_; }

  /// Convenience: generate and return one owning series.
  Series NextSeries() {
    Series s(length_);
    Next(s.data());
    return s;
  }

 protected:
  explicit SeriesGenerator(size_t length) : length_(length) {}
  size_t length_;
};

/// Paper §5 "Datasets": "a random number is drawn from a Gaussian
/// distribution (0,1); then, at each time point a new number is drawn from
/// this distribution and added to the value of the last number."
class RandomWalkGenerator : public SeriesGenerator {
 public:
  RandomWalkGenerator(size_t length, uint64_t seed);
  void Next(Value* out) override;

 private:
  Rng rng_;
};

/// Sliding-window samples over a continuous synthetic seismogram.
class SeismicGenerator : public SeriesGenerator {
 public:
  /// `window_step`: how far the sliding window advances between consecutive
  /// series (the paper slides 4 samples at 1 Hz for seismic data).
  SeismicGenerator(size_t length, uint64_t seed, size_t window_step = 4);
  void Next(Value* out) override;

 private:
  void ExtendSignal(size_t needed);

  Rng rng_;
  size_t window_step_;
  size_t window_pos_ = 0;
  std::vector<Value> signal_;  // rolling buffer of the continuous seismogram
  size_t signal_base_ = 0;     // absolute index of signal_[0]
  // Event state: active damped oscillators.
  struct EventState {
    double amplitude;
    double frequency;
    double decay;
    double phase;
    size_t remaining;
  };
  std::vector<EventState> active_events_;
};

/// Sliding-window samples over synthetic light curves: periodic baseline +
/// red noise + occasional flares, then a mild exponential skew.
class AstronomyGenerator : public SeriesGenerator {
 public:
  AstronomyGenerator(size_t length, uint64_t seed, size_t window_step = 1);
  void Next(Value* out) override;

 private:
  void ExtendSignal(size_t needed);

  Rng rng_;
  size_t window_step_;
  size_t window_pos_ = 0;
  std::vector<Value> signal_;
  size_t signal_base_ = 0;
  double phase_ = 0.0;
  double period_ = 64.0;
  double red_state_ = 0.0;
  size_t flare_remaining_ = 0;
  double flare_level_ = 0.0;
};

/// Dataset family selector used by benches and examples.
enum class DatasetKind { kRandomWalk, kSeismic, kAstronomy };

/// Factory for the three dataset families.
std::unique_ptr<SeriesGenerator> MakeGenerator(DatasetKind kind, size_t length,
                                               uint64_t seed);

/// Human-readable dataset name ("randomwalk", "seismic", "astronomy").
const char* DatasetKindName(DatasetKind kind);

}  // namespace coconut

#endif  // COCONUT_SERIES_GENERATOR_H_
