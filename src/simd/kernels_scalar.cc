// Portable scalar backend: the reference semantics every SIMD backend must
// reproduce (to rounding). These bodies mirror the pre-dispatch code in
// src/series/distance.h, src/summary/{paa,mindist}.cc, and
// src/series/znorm.cc, with one structural fix: the early-abandoning
// distance checks the bound only after *full* 16-element blocks, so a
// series shorter than a block (or a trailing partial block) is summed
// straight through without a redundant check at i == n.
#include <cmath>

#include "src/simd/kernels_internal.h"

namespace coconut {
namespace simd {
namespace {

double SquaredEuclideanScalar(const float* a, const float* b, size_t n) {
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    sum += d * d;
  }
  return sum;
}

double SquaredEuclideanEaScalar(const float* a, const float* b, size_t n,
                                double bound_sq) {
  double sum = 0.0;
  size_t i = 0;
  while (n - i >= 16) {
    for (const size_t stop = i + 16; i < stop; ++i) {
      const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
      sum += d * d;
    }
    if (sum >= bound_sq) return sum;
  }
  for (; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    sum += d * d;
  }
  return sum;
}

double MindistPaaPaaScalar(const double* a, const double* b, size_t w,
                           double scale) {
  double sum = 0.0;
  for (size_t j = 0; j < w; ++j) {
    const double d = a[j] - b[j];
    sum += d * d;
  }
  return scale * sum;
}

double MindistPaaRectScalar(const double* q, const double* lo,
                            const double* hi, size_t w, double scale) {
  double sum = 0.0;
  for (size_t j = 0; j < w; ++j) {
    sum += DistToRangeSq(q[j], lo[j], hi[j]);
  }
  return scale * sum;
}

double MindistPaaSaxScalar(const double* q, const uint8_t* sax,
                           const double* edges, size_t w, double scale) {
  double sum = 0.0;
  for (size_t j = 0; j < w; ++j) {
    sum += DistToRangeSq(q[j], edges[sax[j]], edges[sax[j] + 1]);
  }
  return scale * sum;
}

void MindistPaaSaxBatchScalar(const double* q, const uint8_t* sax_base,
                              size_t stride_bytes, size_t count,
                              const double* edges, size_t w, double scale,
                              double* out) {
  for (size_t i = 0; i < count; ++i) {
    out[i] = MindistPaaSaxScalar(q, sax_base + i * stride_bytes, edges, w,
                                 scale);
  }
}

void PaaTransformScalar(const float* series, size_t n, size_t segments,
                        double* out) {
  const size_t seg_len = n / segments;
  const double inv = 1.0 / static_cast<double>(seg_len);
  for (size_t s = 0; s < segments; ++s) {
    double sum = 0.0;
    const float* p = series + s * seg_len;
    for (size_t i = 0; i < seg_len; ++i) sum += p[i];
    out[s] = sum * inv;
  }
}

void ZNormalizeScalar(float* values, size_t n) {
  constexpr double kEpsilon = 1e-9;
  if (n == 0) return;
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) sum += values[i];
  const double mean = sum / static_cast<double>(n);
  double sq = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = values[i] - mean;
    sq += d * d;
  }
  const double sd = std::sqrt(sq / static_cast<double>(n));
  if (sd < kEpsilon) {
    for (size_t i = 0; i < n; ++i) values[i] = 0.0f;
    return;
  }
  const double inv = 1.0 / sd;
  for (size_t i = 0; i < n; ++i) {
    values[i] = static_cast<float>((values[i] - mean) * inv);
  }
}

}  // namespace

const KernelTable& ScalarKernels() {
  static const KernelTable table = {
      "scalar",
      SquaredEuclideanScalar,
      SquaredEuclideanEaScalar,
      MindistPaaPaaScalar,
      MindistPaaRectScalar,
      MindistPaaSaxScalar,
      MindistPaaSaxBatchScalar,
      PaaTransformScalar,
      ZNormalizeScalar,
  };
  return table;
}

}  // namespace simd
}  // namespace coconut
