// DSTree baseline: EAPCA lower-bound property, adaptive segmentation, and
// exact best-first search correctness.
#include "src/baselines/dstree/dstree_index.h"

#include "gtest/gtest.h"
#include "src/series/distance.h"
#include "src/summary/eapca.h"
#include "tests/test_util.h"

namespace coconut {
namespace {

using testing::BruteForceNn;
using testing::MakeDatasetFile;
using testing::ScratchDir;

TEST(Eapca, TransformComputesSegmentStats) {
  const std::vector<Value> s = {1, 1, 1, 1, 2, 4, 2, 4};
  Segmentation seg = {4, 8};
  std::vector<SegmentStats> stats;
  EapcaTransform(s.data(), seg, &stats);
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_DOUBLE_EQ(stats[0].mean, 1.0);
  EXPECT_DOUBLE_EQ(stats[0].stddev, 0.0);
  EXPECT_DOUBLE_EQ(stats[1].mean, 3.0);
  EXPECT_DOUBLE_EQ(stats[1].stddev, 1.0);
}

TEST(Eapca, LowerBoundHoldsForRandomSeries) {
  // The envelope bound must lower-bound the true distance to every series
  // covered by the envelope, under any segmentation.
  Rng seg_rng(5);
  auto gen = MakeGenerator(DatasetKind::kRandomWalk, 128, 121);
  for (int trial = 0; trial < 50; ++trial) {
    // Random segmentation of 128 points.
    Segmentation seg;
    size_t pos = 0;
    while (pos < 128) {
      pos += 8 + seg_rng.UniformInt(32);
      seg.push_back(std::min<size_t>(pos, 128));
    }
    if (seg.back() != 128) seg.push_back(128);

    // Envelope over a small population.
    std::vector<Series> population;
    std::vector<SegmentEnvelope> env(seg.size());
    std::vector<SegmentStats> stats;
    for (int i = 0; i < 20; ++i) {
      population.push_back(gen->NextSeries());
      EapcaTransform(population.back().data(), seg, &stats);
      for (size_t s = 0; s < seg.size(); ++s) {
        if (i == 0) {
          env[s].InitFrom(stats[s]);
        } else {
          env[s].Extend(stats[s]);
        }
      }
    }
    const Series query = gen->NextSeries();
    std::vector<SegmentStats> qstats;
    EapcaTransform(query.data(), seg, &qstats);
    const double lb = EapcaLowerBoundSq(qstats, env, seg);
    for (const Series& x : population) {
      const double actual = SquaredEuclidean(query.data(), x.data(), 128);
      EXPECT_LE(lb, actual + 1e-6);
    }
  }
}

struct DstreeCase {
  DatasetKind kind;
  size_t count;
  size_t leaf_capacity;
};

class DstreeTest : public ::testing::TestWithParam<DstreeCase> {
 protected:
  void Build(const DstreeCase& c) {
    raw_ = dir_.File("data.bin");
    data_ = MakeDatasetFile(raw_, c.kind, c.count, 64, 131);
    DstreeOptions opts;
    opts.series_length = 64;
    opts.initial_segments = 4;
    opts.leaf_capacity = c.leaf_capacity;
    ASSERT_OK(DstreeIndex::Create(opts, dir_.File("dstree.pages"), &index_));
    const uint64_t series_bytes = 64 * sizeof(Value);
    for (size_t i = 0; i < data_.size(); ++i) {
      ASSERT_OK(index_->Insert(data_[i].data(), i * series_bytes));
    }
  }

  ScratchDir dir_;
  std::string raw_;
  std::vector<Series> data_;
  std::unique_ptr<DstreeIndex> index_;
};

TEST_P(DstreeTest, ExactSearchEqualsBruteForce) {
  Build(GetParam());
  auto qgen = MakeGenerator(GetParam().kind, 64, 1000);
  for (int q = 0; q < 15; ++q) {
    const Series query = qgen->NextSeries();
    const auto [bf_idx, bf_dist] = BruteForceNn(data_, query);
    SearchResult res;
    ASSERT_OK(index_->ExactSearch(query.data(), &res));
    EXPECT_NEAR(res.distance, bf_dist, 1e-4) << "query " << q;
  }
}

TEST_P(DstreeTest, AllEntriesAccounted) {
  Build(GetParam());
  EXPECT_EQ(index_->num_entries(), GetParam().count);
  ASSERT_OK(index_->FlushAll());
  const Series query = data_[0];
  SearchResult res;
  ASSERT_OK(index_->ExactSearch(query.data(), &res));
  EXPECT_NEAR(res.distance, 0.0, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, DstreeTest,
    ::testing::Values(DstreeCase{DatasetKind::kRandomWalk, 1500, 100},
                      DstreeCase{DatasetKind::kSeismic, 1200, 64},
                      DstreeCase{DatasetKind::kAstronomy, 1200, 64},
                      // Single-leaf edge case.
                      DstreeCase{DatasetKind::kRandomWalk, 60, 100}),
    [](const auto& info) {
      const DstreeCase& c = info.param;
      return std::string(DatasetKindName(c.kind)) + "_" +
             std::to_string(c.count) + "_leaf" +
             std::to_string(c.leaf_capacity);
    });

TEST(DstreeAdaptive, VerticalSplitsRefineSegmentation) {
  ScratchDir dir;
  const std::string raw = dir.File("data.bin");
  auto data = MakeDatasetFile(raw, DatasetKind::kSeismic, 3000, 64, 141);
  DstreeOptions opts;
  opts.series_length = 64;
  opts.initial_segments = 2;
  opts.leaf_capacity = 50;
  std::unique_ptr<DstreeIndex> index;
  ASSERT_OK(DstreeIndex::Create(opts, dir.File("d.pages"), &index));
  const uint64_t series_bytes = 64 * sizeof(Value);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_OK(index->Insert(data[i].data(), i * series_bytes));
  }
  // The adaptive index should have refined at least one node's segmentation
  // beyond the initial two segments.
  EXPECT_GT(index->MaxSegments(), 2u);
  EXPECT_GT(index->num_leaves(), 1u);
}

TEST(DstreeDuplicates, IdenticalSeriesFormOversizedLeaf) {
  ScratchDir dir;
  auto gen = MakeGenerator(DatasetKind::kRandomWalk, 64, 151);
  const Series base = gen->NextSeries();
  DstreeOptions opts;
  opts.series_length = 64;
  opts.leaf_capacity = 32;
  std::unique_ptr<DstreeIndex> index;
  ASSERT_OK(DstreeIndex::Create(opts, dir.File("d.pages"), &index));
  std::vector<Series> data;
  for (int i = 0; i < 100; ++i) {
    data.push_back(base);
    ASSERT_OK(index->Insert(base.data(), i * 64 * sizeof(Value)));
  }
  EXPECT_EQ(index->num_entries(), 100u);
  SearchResult res;
  ASSERT_OK(index->ExactSearch(base.data(), &res));
  EXPECT_NEAR(res.distance, 0.0, 1e-4);
}

}  // namespace
}  // namespace coconut
