// Wall-clock stopwatch used by the benchmark harnesses and the obs stage
// timers.
#ifndef COCONUT_COMMON_TIMER_H_
#define COCONUT_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace coconut {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Integer nanoseconds since construction or the last Restart(); the
  /// native unit for metric histograms (no seconds-as-double round trip).
  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace coconut

#endif  // COCONUT_COMMON_TIMER_H_
