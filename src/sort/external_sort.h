// Parallel external merge sort over fixed-size byte records (paper §3.1,
// "Bottom-up Bulk-Loading Using External Sorting"). Coconut reduces index
// construction to exactly this sort over sortable (invSAX) summarizations,
// so the sorter is the build path; see src/sort/README.md for the design.
//
// Phase 1 (partitioning): records accumulate into an in-memory buffer
// bounded by the memory budget and spill as sorted runs. Run generation is
// an MSD radix sort on the leading key bytes (comparison sort for the
// tails) chunked over the shared ThreadPool, and spilling is
// double-buffered: the next buffer fills in Add()/AddBatch() while the
// previous one sorts and writes on the pool, so ingest never stalls on
// disk.
// Phase 2 (merging): runs k-way merge through a loser tree (one comparison
// per level) with one background-prefetching input buffer per run and an
// async-flushing output buffer. When everything fits in memory the merge
// phase is skipped entirely (the paper notes this is the common case for
// non-materialized indexes, where only summarizations are sorted). If more
// runs exist than the fan-in budget allows, intermediate passes run first
// (groups merged concurrently); the final pass is key-range partitioned
// across threads, each range writing an independent output slice that the
// returned stream chains together in order.
//
// Records are opaque byte strings of a fixed size; ordering is memcmp over
// the first `key_bytes` (ZKey::SerializeBE produces keys whose memcmp order
// equals their numeric order, so invSAX records sort correctly).
//
// Determinism contract: every stage is stable by arrival order (in-buffer
// sorts tie-break on arrival index, merges on run index), so the output is
// the stable sort of the input stream — byte-identical across num_threads,
// radix vs comparison sort, and any run/partition structure the budget
// induces.
#ifndef COCONUT_SORT_EXTERNAL_SORT_H_
#define COCONUT_SORT_EXTERNAL_SORT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/context.h"
#include "src/common/status.h"
#include "src/io/buffered_io.h"

namespace coconut {

class OneShotTask;
class ThreadPool;

struct ExternalSortOptions {
  /// Record size in bytes (key + payload).
  size_t record_bytes = 0;
  /// memcmp prefix that defines the sort order.
  size_t key_bytes = 0;
  /// In-memory buffer budget for run generation and merge input buffers.
  size_t memory_budget_bytes = 64 * 1024 * 1024;
  /// Directory for spilled runs.
  std::string tmp_dir;
  /// Maximum number of runs merged in one pass (also bounded by the memory
  /// budget divided by the per-run input buffer size).
  size_t max_fan_in = 64;
  /// Sort/merge parallelism: 0 = the shared ThreadPool's size, 1 = fully
  /// serial in-place operation (no pool, no background I/O), > 1 = use the
  /// shared pool with this many key-range partitions / concurrent merges.
  /// The COCONUT_SORT_THREADS environment variable, when set to a positive
  /// integer, overrides this field. Output bytes never depend on it.
  unsigned num_threads = 0;
  /// Run generation algorithm: MSD radix on the key bytes (default) or pure
  /// comparison sort. Both are stable and produce identical output; the
  /// switch exists for benchmarks and regression tests.
  bool use_radix = true;
  /// Optional request context, polled at run/merge boundaries (run spill,
  /// merge-group start, final-merge partition start): a build driven by a
  /// caller with a deadline stops between stages with DeadlineExceeded /
  /// Aborted and leaves only spill files behind (the sorter's destructor
  /// and tmp-dir hygiene already handle abandoned runs). Must outlive the
  /// sorter. Null = no polling.
  const Context* context = nullptr;

  Status Validate() const {
    if (record_bytes == 0) {
      return Status::InvalidArgument("record_bytes must be > 0");
    }
    if (key_bytes == 0 || key_bytes > record_bytes) {
      return Status::InvalidArgument("key_bytes must be in [1, record_bytes]");
    }
    if (memory_budget_bytes < record_bytes * 2) {
      return Status::InvalidArgument("memory budget too small for two records");
    }
    if (tmp_dir.empty()) {
      return Status::InvalidArgument("tmp_dir must be set");
    }
    return Status::OK();
  }
};

/// Streaming interface over the sorted output.
class SortedRecordStream {
 public:
  virtual ~SortedRecordStream() = default;

  /// Copies the next record into `out` (record_bytes); returns false at end.
  virtual bool Next(uint8_t* out, Status* status) = 0;

  /// Total number of records in the stream.
  virtual uint64_t count() const = 0;
};

class ExternalSorter {
 public:
  explicit ExternalSorter(ExternalSortOptions options);
  ~ExternalSorter();

  ExternalSorter(const ExternalSorter&) = delete;
  ExternalSorter& operator=(const ExternalSorter&) = delete;

  /// Adds one record (options.record_bytes bytes). May spill a sorted run.
  Status Add(const uint8_t* record);

  /// Adds `n` contiguous records in one call: the bulk entry point for the
  /// tree/trie builders, which stage whole summarization strides. Copies
  /// capacity-sized slices instead of growing record-by-record.
  Status AddBatch(const uint8_t* records, size_t n);

  /// Finishes ingestion, performs merge passes if needed, and returns a
  /// stream over the fully sorted data. Call at most once.
  Status Finish(std::unique_ptr<SortedRecordStream>* out);

  /// Number of sorted runs spilled to disk so far (0 = all in memory).
  /// After Finish this still reports the phase-1 run count, not the merged
  /// survivors.
  size_t spilled_runs() const { return generated_runs_; }
  uint64_t total_records() const { return total_records_; }

  /// Resolved parallelism (after the COCONUT_SORT_THREADS override);
  /// 1 means the serial path. Exposed for tests.
  unsigned resolved_threads() const { return threads_; }

 private:
  Status SpillBuffer();
  Status SortAndWriteRun(const std::vector<uint8_t>& records, size_t count,
                         const std::string& path);
  Status WaitForSpill();
  Status MergeGroup(const std::vector<std::string>& inputs,
                    const std::string& output, size_t input_buffer_bytes);
  Status PartitionedFinalMerge(const std::vector<std::string>& inputs,
                               std::unique_ptr<SortedRecordStream>* out);

  /// Spill-file path unique to this sorter instance: nested or concurrent
  /// sorters may share a tmp_dir (the R-tree's recursive STR passes do),
  /// so names carry a process-wide instance token.
  std::string SpillPath(const char* kind);

  ExternalSortOptions options_;
  uint64_t instance_token_;
  unsigned threads_;    // resolved parallelism; 1 = serial
  /// Sized to num_threads when that differs from the shared pool's width,
  /// so the requested parallelism is what actually runs (benchmark thread
  /// sweeps measure what they claim). Declared before pool_ users so it
  /// outlives every task scheduled on it.
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_;    // shared or owned pool; nullptr when serial
  std::vector<uint8_t> buffer_;        // staged records, unsorted (filling)
  std::vector<uint8_t> spill_buffer_;  // records being sorted/written
  /// Outstanding background spill as a claim-or-wait task (not a plain
  /// future): if this sorter itself runs on a saturated pool, WaitForSpill
  /// executes the queued spill inline instead of deadlocking on it.
  std::shared_ptr<OneShotTask> spill_task_;
  Status spill_status_;  // written by the task
  size_t buffer_capacity_records_;
  std::vector<std::string> run_paths_;
  size_t generated_runs_ = 0;
  uint64_t total_records_ = 0;
  uint64_t next_run_id_ = 0;
  bool finished_ = false;
};

}  // namespace coconut

#endif  // COCONUT_SORT_EXTERNAL_SORT_H_
