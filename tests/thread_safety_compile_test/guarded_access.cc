// Control for the negative-compile fixture: the same shape of code as
// unguarded_access.cc with the locking done correctly. This file must
// compile cleanly under clang -Werror=thread-safety-analysis — it proves
// the sibling file's expected failure comes from the analysis catching the
// violations, not from the fixture itself being unbuildable (wrong include
// path, syntax error, ...).
#include "src/common/sync.h"

namespace {

class Counter {
 public:
  void Increment() {
    coconut::MutexLock lock(&mu_);
    ++value_;
  }

  int Read() const {
    coconut::MutexLock lock(&mu_);
    return value_;
  }

  void IncrementViaRequires() {
    coconut::MutexLock lock(&mu_);
    IncrementLocked();
  }

 private:
  void IncrementLocked() REQUIRES(mu_) { ++value_; }

  mutable coconut::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  c.IncrementViaRequires();
  return c.Read();
}
