// Figure 10c: complete workload (construction + 100 exact queries) on the
// seismic-sim dataset under shrinking memory budgets.
#include "bench/workload_fixture.h"

int main() {
  coconut::bench::Banner("Figure 10c",
                         "complete workload on the seismic-sim dataset");
  coconut::bench::RunWorkload(coconut::DatasetKind::kSeismic, "Fig 10c", 42);
  return 0;
}
