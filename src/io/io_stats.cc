#include "src/io/io_stats.h"

#include <cstdio>
#include <map>
#include <memory>

#include "src/common/sync.h"

namespace coconut {

namespace {

IoCounterSet MakeCounterSet(const std::string& prefix) {
  MetricRegistry& reg = MetricRegistry::Default();
  IoCounterSet s;
  s.read_ops = reg.GetCounter(prefix + "read_ops");
  s.write_ops = reg.GetCounter(prefix + "write_ops");
  s.random_read_ops = reg.GetCounter(prefix + "random_read_ops");
  s.random_write_ops = reg.GetCounter(prefix + "random_write_ops");
  s.bytes_read = reg.GetCounter(prefix + "bytes_read");
  s.bytes_written = reg.GetCounter(prefix + "bytes_written");
  return s;
}

/// Active per-thread attribution bucket; null outside any scope.
thread_local const IoCounterSet* t_component = nullptr;

}  // namespace

IoStats& IoStats::Instance() {
  // Leaked so recording through cached pointers stays valid during static
  // destruction (the registry itself is leaked too).
  static IoStats* instance = new IoStats();
  return *instance;
}

IoStats::IoStats() : total_(MakeCounterSet("io.")) {}

void IoStats::RecordRead(uint64_t bytes, bool random) {
  total_.RecordRead(bytes, random);
  if (const IoCounterSet* c = t_component) c->RecordRead(bytes, random);
}

void IoStats::RecordWrite(uint64_t bytes, bool random) {
  total_.RecordWrite(bytes, random);
  if (const IoCounterSet* c = t_component) c->RecordWrite(bytes, random);
}

const IoCounterSet& GetIoComponent(const std::string& component) {
  static Mutex* mu = new Mutex();
  static auto* sets = new std::map<std::string, std::unique_ptr<IoCounterSet>>();
  MutexLock lock(mu);
  auto& slot = (*sets)[component];
  if (!slot) {
    slot = std::make_unique<IoCounterSet>(
        MakeCounterSet("io." + component + "."));
  }
  return *slot;
}

IoComponentScope::IoComponentScope(const std::string& component)
    : prev_(t_component) {
  t_component = &GetIoComponent(component);
}

IoComponentScope::~IoComponentScope() { t_component = prev_; }

std::string IoSnapshot::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "reads=%llu (rand=%llu) writes=%llu (rand=%llu) "
                "MB_read=%.1f MB_written=%.1f",
                static_cast<unsigned long long>(read_ops),
                static_cast<unsigned long long>(random_read_ops),
                static_cast<unsigned long long>(write_ops),
                static_cast<unsigned long long>(random_write_ops),
                bytes_read / 1048576.0, bytes_written / 1048576.0);
  return std::string(buf);
}

}  // namespace coconut
