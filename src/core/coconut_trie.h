// Coconut-Trie (paper §4.2, Algorithm 2): a prefix-split iSAX-style trie
// bulk-loaded bottom-up from externally sorted invSAX keys.
//
// Because invSAX interleaves segment bits level by level, a common prefix of
// the z-order key corresponds exactly to an iSAX node identity (a per-segment
// symbol prefix, extended round-robin across segments). The construction
// therefore builds a path-compressed binary trie over the sorted keys with
// the classic stack/LCP bottom-up algorithm (insertBottomUp), then compacts
// it (CompactSubtree): any subtree whose total entry count fits in one leaf
// collapses into a single leaf.
//
// Leaves are written left-to-right as fixed-size pages, so the index is
// contiguous — the property Coconut-Trie adds over the state of the art.
// Prefix splitting still cannot balance occupancy, so many leaves stay
// sparse; the resulting space amplification is exactly what paper Fig 8c
// measures against the median-split Coconut-Tree.
//
// The materialized variant (Coconut-Trie-Full) sorts only the
// summarizations, then loads the raw series into the sorted leaves in a last
// pass — random I/O when the raw file exceeds the memory budget, which is
// why CTrieFull degrades with constrained memory in paper Fig 8a.
#ifndef COCONUT_CORE_COCONUT_TRIE_H_
#define COCONUT_CORE_COCONUT_TRIE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/sync.h"
#include "src/common/zkey.h"
#include "src/core/coconut_options.h"
#include "src/core/query_scratch.h"
#include "src/io/file.h"
#include "src/series/dataset.h"
#include "src/series/series.h"

namespace coconut {

struct TrieBuildStats {
  double summarize_seconds = 0.0;
  double sort_seconds = 0.0;
  double build_seconds = 0.0;      // insertBottomUp + CompactSubtree
  double write_seconds = 0.0;      // leaf pages (+ materialization pass)
  size_t spilled_runs = 0;
  uint64_t num_entries = 0;

  double total_seconds() const {
    return summarize_seconds + sort_seconds + build_seconds + write_seconds;
  }
};

inline constexpr uint64_t kTrieMagic = 0x31454952544E4343ull;  // "CCNTRIE1"

struct TrieSuperblock {
  uint64_t magic = kTrieMagic;
  uint64_t version = 1;
  uint64_t materialized = 0;
  uint64_t series_length = 0;
  uint64_t segments = 0;
  uint64_t cardinality_bits = 0;
  uint64_t leaf_capacity = 0;
  uint64_t entry_bytes = 0;
  uint64_t leaf_page_bytes = 0;
  uint64_t num_entries = 0;
  uint64_t num_leaves = 0;
  uint64_t num_pages = 0;
  uint64_t num_nodes = 0;
  uint64_t node_region_offset = 0;

  Status Check() const {
    if (magic != kTrieMagic) return Status::Corruption("bad trie magic");
    if (version != 1) return Status::Corruption("unsupported trie version");
    return Status::OK();
  }
};

class CoconutTrie {
 public:
  /// Reusable per-caller scratch for the query paths (see
  /// src/core/query_scratch.h): queries allocate one internally when none
  /// is supplied; batch executors pass one per worker. Replaces the old
  /// shared mutable fetch buffer, so the query paths are const and safe to
  /// call concurrently from many threads.
  using QueryScratch = coconut::QueryScratch;

  /// Builds the trie index over `raw_path` into `index_path` (plus a
  /// `<index_path>.sax` sidecar). Algorithm 2 of the paper.
  static Status Build(const std::string& raw_path,
                      const std::string& index_path,
                      const CoconutOptions& options,
                      TrieBuildStats* stats = nullptr);

  static Status Open(const std::string& index_path,
                     const std::string& raw_path,
                     std::unique_ptr<CoconutTrie>* out);

  /// Approximate k-NN search: descends to the most promising leaf and scans
  /// a window of `num_pages` contiguous leaf pages around it.
  Status ApproxSearch(const Value* query, size_t num_pages,
                      SearchResult* result, size_t k = 1) const;
  Status ApproxSearch(const Value* query, size_t num_pages,
                      SearchResult* result, size_t k,
                      QueryScratch* scratch) const;

  /// Exact k-NN search via the SIMS skip-sequential scan (paper §4.2 "we
  /// employee the SIMS algorithm" for exact search over the trie as well).
  Status ExactSearch(const Value* query, size_t approx_pages,
                     SearchResult* result, size_t k = 1) const;
  Status ExactSearch(const Value* query, size_t approx_pages,
                     SearchResult* result, size_t k,
                     QueryScratch* scratch) const;

  // --- introspection ---
  uint64_t num_entries() const { return super_.num_entries; }
  uint64_t num_leaves() const { return super_.num_leaves; }
  uint64_t num_pages() const { return super_.num_pages; }
  /// Mean page occupancy relative to leaf_capacity (sparse for prefix
  /// splitting; paper reports ~10%).
  double AvgLeafFill() const;
  /// Longest root-to-leaf path (node count).
  uint64_t Height() const;
  Status IndexSizeBytes(uint64_t* bytes) const;
  const CoconutOptions& options() const { return options_; }

  /// In-memory trie node, exposed for structural tests.
  struct Node {
    uint32_t depth = 0;   // interleaved key bits fixed above this node
    bool is_leaf = false;
    // Leaf fields: range in the global sorted entry order plus first page.
    uint64_t entry_begin = 0;
    uint64_t entry_count = 0;
    uint64_t first_page = 0;
    // Internal fields: child node ids (left = next bit 0, right = 1).
    int64_t left = -1;
    int64_t right = -1;
  };
  const std::vector<Node>& nodes() const { return nodes_; }
  int64_t root() const { return root_; }

 private:
  CoconutTrie() = default;

  Status LoadNodes();
  /// Loads the SIMS sidecar arrays once; concurrent callers block until the
  /// first load finishes (same load-once latch as CoconutTree).
  Status EnsureSimsLoaded() const;
  /// Leaf node id whose key range covers `key` (pure descent).
  int64_t DescendToLeaf(const ZKey& key) const;
  Status ReadPage(uint64_t page, std::vector<uint8_t>* buf,
                  size_t* entry_count) const;
  /// Leaf owning global entry index `i` (binary search over entry_begin).
  size_t LeafIndexForEntry(uint64_t i) const;

  CoconutOptions options_;
  TrieSuperblock super_;
  std::string index_path_;
  std::string raw_path_;
  std::unique_ptr<RandomAccessFile> index_file_;
  std::unique_ptr<RawSeriesFile> raw_file_;

  std::vector<Node> nodes_;
  int64_t root_ = -1;
  // Leaves in left-to-right order; used to map entries/pages to leaves.
  std::vector<int64_t> leaf_order_;
  std::vector<uint64_t> page_owner_;  // page -> index into leaf_order_

  // SIMS in-memory arrays, loaded lazily from the sidecar on first exact
  // query. Immutable once sims_loaded_ is set (release-store after the
  // arrays are filled; acquire-load fast path keeps the steady state
  // lock-free); sims_mu_ serializes the one-time load.
  mutable Mutex sims_mu_;
  mutable std::atomic<bool> sims_loaded_{false};
  mutable std::vector<uint8_t> sims_sax_;
  mutable std::vector<uint64_t> sims_offsets_;
};

}  // namespace coconut

#endif  // COCONUT_CORE_COCONUT_TRIE_H_
