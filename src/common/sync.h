// Annotated synchronization primitives: the ONLY lock types the engine
// uses (tools/lint.py enforces this; see docs/CONCURRENCY.md for the full
// lock catalogue and ordering).
//
// Every wrapper carries Clang Thread Safety Analysis attributes, so the
// locking invariants that used to live in comments — "guarded by
// state_mu_", "requires commit_mu_ held", "never runs under the
// visibility lock" — are compiler-checked interfaces on every clang build
// (`-Wthread-safety`, turned into errors by the static-analysis CI job).
// On GCC (and any compiler without the capability attributes) the macros
// expand to nothing and the wrappers compile down to the underlying std
// types with zero overhead.
//
// Usage:
//
//   class Account {
//     Mutex mu_;
//     int64_t balance_ GUARDED_BY(mu_);
//     void DepositLocked(int64_t v) REQUIRES(mu_);  // caller holds mu_
//    public:
//     void Deposit(int64_t v) {
//       MutexLock lock(&mu_);
//       balance_ += v;          // OK: mu_ is held
//     }
//   };
//
// Condition variables pair with Mutex through CondVar::Wait(mu), which the
// analysis treats as "requires mu held" (the temporary release inside the
// wait is invisible to the analysis, matching how every annotated C++
// codebase models condition waits). Predicate loops are written in the
// caller — `while (!pred) cv.Wait(mu);` — so the guarded reads in the
// predicate are analyzed in a scope that provably holds the lock.
#ifndef COCONUT_COMMON_SYNC_H_
#define COCONUT_COMMON_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// ---------------------------------------------------------------------------
// Clang Thread Safety Analysis attribute macros (no-ops elsewhere).
// Names follow the canonical set from the LLVM documentation so the
// annotations read the same here as in any other annotated codebase.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define COCONUT_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef COCONUT_THREAD_ANNOTATION_
#define COCONUT_THREAD_ANNOTATION_(x)  // not clang: annotations vanish
#endif

#define CAPABILITY(x) COCONUT_THREAD_ANNOTATION_(capability(x))
#define SCOPED_CAPABILITY COCONUT_THREAD_ANNOTATION_(scoped_lockable)
#define GUARDED_BY(x) COCONUT_THREAD_ANNOTATION_(guarded_by(x))
#define PT_GUARDED_BY(x) COCONUT_THREAD_ANNOTATION_(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) \
  COCONUT_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  COCONUT_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))
#define REQUIRES(...) \
  COCONUT_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  COCONUT_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) \
  COCONUT_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  COCONUT_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) \
  COCONUT_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  COCONUT_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  COCONUT_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  COCONUT_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) COCONUT_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) COCONUT_THREAD_ANNOTATION_(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  COCONUT_THREAD_ANNOTATION_(assert_shared_capability(x))
#define RETURN_CAPABILITY(x) COCONUT_THREAD_ANNOTATION_(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS \
  COCONUT_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace coconut {

// ---------------------------------------------------------------------------
// Mutex / SharedMutex

/// Plain mutual-exclusion lock (std::mutex with capability annotations).
/// Prefer the RAII MutexLock over calling Lock/Unlock directly.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Documents (and under clang, teaches the analysis) that the current
  /// thread holds this mutex, in code paths the analysis cannot follow.
  void AssertHeld() const ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Reader/writer lock (std::shared_mutex with capability annotations).
/// Exclusive side via WriterLock, shared side via ReaderLock.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }

  void AssertHeld() const ASSERT_CAPABILITY(this) {}
  void AssertReaderHeld() const ASSERT_SHARED_CAPABILITY(this) {}

 private:
  std::shared_mutex mu_;
};

// ---------------------------------------------------------------------------
// RAII lock holders

/// Scoped exclusive lock on a Mutex (the std::lock_guard replacement).
/// Supports manual Unlock()/Lock() for the condition-wait / "drop the lock
/// around heavy work" patterns; the destructor releases iff still held.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_->Lock();
  }
  ~MutexLock() RELEASE() {
    if (held_) mu_->Unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void Unlock() RELEASE() {
    held_ = false;
    mu_->Unlock();
  }
  void Lock() ACQUIRE() {
    mu_->Lock();
    held_ = true;
  }

 private:
  Mutex* const mu_;
  bool held_;
};

/// Scoped exclusive lock on a SharedMutex.
class SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~WriterLock() RELEASE() { mu_->Unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// Scoped shared (reader) lock on a SharedMutex.
class SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex* mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->LockShared();
  }
  ~ReaderLock() RELEASE() { mu_->UnlockShared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex* const mu_;
};

// ---------------------------------------------------------------------------
// CondVar

/// Condition variable paired with Mutex. Waits are annotated REQUIRES(mu):
/// the caller must hold the mutex (typically through a MutexLock whose
/// scope encloses the wait loop). Write predicate loops in the caller —
///
///   MutexLock lock(&mu_);
///   while (!done_) cv_.Wait(mu_);
///
/// so the guarded predicate reads are analyzed under the held lock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks until notified (or spuriously woken),
  /// and re-acquires `mu` before returning.
  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> adopted(mu.mu_, std::adopt_lock);
    cv_.wait(adopted);
    adopted.release();  // ownership stays with the caller's MutexLock
  }

  /// Wait with a deadline; returns std::cv_status::timeout when the
  /// deadline passed before a notification.
  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> adopted(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(adopted, deadline);
    adopted.release();
    return status;
  }

  /// Wait with a timeout, relative form of WaitUntil.
  template <typename Rep, typename Period>
  std::cv_status WaitFor(Mutex& mu,
                         const std::chrono::duration<Rep, Period>& timeout)
      REQUIRES(mu) {
    return WaitUntil(mu, std::chrono::steady_clock::now() + timeout);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace coconut

#endif  // COCONUT_COMMON_SYNC_H_
