// Coconut-Tree open/query paths: in-memory internal levels, approximate
// radius search (Algorithm 4), CoconutTreeSIMS exact search (Algorithm 5),
// and sequential merge-based batch updates.
#include "src/core/coconut_tree.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <numeric>

#include "src/common/crc32c.h"
#include "src/common/env.h"
#include "src/common/timer.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/core/knn.h"
#include "src/core/sims_common.h"
#include "src/io/buffered_io.h"
#include "src/series/distance.h"
#include "src/summary/invsax.h"
#include "src/summary/mindist.h"
#include "src/summary/paa.h"
#include "src/summary/sax.h"

namespace coconut {

namespace {

Counter* ChecksumVerifiedCounter() {
  static Counter* c =
      MetricRegistry::Default().GetCounter("io.checksum.verified");
  return c;
}

Counter* ChecksumFailedCounter() {
  static Counter* c =
      MetricRegistry::Default().GetCounter("io.checksum.failed");
  return c;
}

uint32_t DecodeCrc32LE(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

}  // namespace

Status CoconutTree::Open(const std::string& index_path,
                         const std::string& raw_path,
                         std::unique_ptr<CoconutTree>* out) {
  std::unique_ptr<CoconutTree> tree(new CoconutTree());
  tree->index_path_ = index_path;
  tree->raw_path_ = raw_path;
  COCONUT_RETURN_IF_ERROR(
      RandomAccessFile::Open(index_path, &tree->index_file_));
  std::vector<uint8_t> sb(kSuperblockBytes);
  COCONUT_RETURN_IF_ERROR(
      tree->index_file_->Read(0, kSuperblockBytes, sb.data()));
  std::memcpy(&tree->super_, sb.data(), sizeof(TreeSuperblock));
  COCONUT_RETURN_IF_ERROR(tree->super_.Check());
  if (tree->super_.has_checksums()) {
    TreeSuperblock clean = tree->super_;
    clean.superblock_crc = 0;
    if (crc32c::Value(&clean, sizeof(clean)) != tree->super_.superblock_crc) {
      ChecksumFailedCounter()->Increment();
      return Status::Corruption("tree superblock checksum mismatch: " +
                                index_path);
    }
    ChecksumVerifiedCounter()->Increment();
    // Load the integrity section: one CRC per leaf page, then the
    // internal-region CRC (LoadInternalLevels below verifies against it).
    const uint64_t n = tree->super_.num_leaves;
    const uint64_t need = (n + 1) * 4;
    if (tree->super_.integrity_offset < kSuperblockBytes ||
        tree->super_.integrity_offset + need > tree->index_file_->size()) {
      return Status::Corruption("tree integrity section out of range: " +
                                index_path);
    }
    std::vector<uint8_t> crcs(need);
    COCONUT_RETURN_IF_ERROR(tree->index_file_->Read(
        tree->super_.integrity_offset, need, crcs.data()));
    tree->leaf_crcs_.resize(n);
    for (uint64_t i = 0; i < n; ++i) {
      tree->leaf_crcs_[i] = DecodeCrc32LE(crcs.data() + i * 4);
    }
    tree->internal_crc_ = DecodeCrc32LE(crcs.data() + n * 4);
  }

  tree->options_.summary.series_length = tree->super_.series_length;
  tree->options_.summary.segments = tree->super_.segments;
  tree->options_.summary.cardinality_bits =
      static_cast<unsigned>(tree->super_.cardinality_bits);
  tree->options_.leaf_capacity = tree->super_.leaf_capacity;
  tree->options_.materialized = tree->super_.materialized != 0;
  tree->options_.fill_factor =
      static_cast<double>(tree->super_.entries_per_leaf) /
      static_cast<double>(tree->super_.leaf_capacity);

  COCONUT_RETURN_IF_ERROR(RawSeriesFile::Open(
      raw_path, tree->options_.summary.series_length, &tree->raw_file_));
  // Best-effort eager open of the .sax sidecar: holding the descriptor
  // lets snapshot readers lazy-load it even after compaction unlinks the
  // file. A missing sidecar is tolerated here (approx-only indexes work
  // without it); ExactSearch reports it when actually needed.
  (void)RandomAccessFile::Open(index_path + ".sax", &tree->sidecar_file_);
  COCONUT_RETURN_IF_ERROR(tree->LoadInternalLevels());
  *out = std::move(tree);
  return Status::OK();
}

Status CoconutTree::LoadInternalLevels() {
  levels_.clear();
  levels_.resize(super_.num_internal_levels);
  std::vector<uint8_t> page(kInternalPageBytes);
  // Pages are read in the builder's write order, so one running CRC over
  // them reproduces the internal-region CRC of the integrity section.
  uint32_t crc = 0;
  for (size_t lvl = 0; lvl < super_.num_internal_levels; ++lvl) {
    InternalLevel& level = levels_[lvl];
    for (uint64_t p = 0; p < super_.level_page_count[lvl]; ++p) {
      const uint64_t off =
          super_.level_file_offset[lvl] + p * kInternalPageBytes;
      COCONUT_RETURN_IF_ERROR(
          index_file_->Read(off, kInternalPageBytes, page.data()));
      crc = crc32c::Extend(crc, page.data(), page.size());
      uint64_t cnt;
      std::memcpy(&cnt, page.data(), 8);
      if (cnt > kInternalFanout) {
        return Status::Corruption("internal page count out of range");
      }
      for (uint64_t i = 0; i < cnt; ++i) {
        const uint8_t* slot = page.data() + 8 + i * kInternalEntryBytes;
        level.keys.push_back(ZKey::DeserializeBE(slot));
        uint64_t child;
        std::memcpy(&child, slot + ZKey::kBytes, 8);
        level.children.push_back(child);
      }
    }
  }
  if (super_.has_checksums()) {
    if (crc != internal_crc_) {
      ChecksumFailedCounter()->Increment();
      return Status::Corruption("tree internal-level checksum mismatch: " +
                                index_path_);
    }
    ChecksumVerifiedCounter()->Increment();
  }
  return Status::OK();
}

uint64_t CoconutTree::LocateLeaf(const ZKey& key) const {
  if (levels_.empty()) return 0;
  // Walk from the root down. At each level the search is confined to the
  // page the parent pointed at; at the root the whole (single-page) level is
  // searched. Keys are the first keys of the children, so the child covering
  // `key` is the last entry with first_key <= key.
  size_t lvl = levels_.size() - 1;
  size_t lo = 0;
  size_t hi = levels_[lvl].keys.size();
  while (true) {
    const InternalLevel& level = levels_[lvl];
    auto begin = level.keys.begin() + lo;
    auto end = level.keys.begin() + hi;
    auto it = std::upper_bound(begin, end, key);
    const size_t idx = (it == begin)
                           ? lo
                           : static_cast<size_t>(it - level.keys.begin()) - 1;
    const uint64_t child = level.children[idx];
    if (lvl == 0) return child;  // leaf index
    --lvl;
    // `child` is a page index in the level below.
    lo = static_cast<size_t>(child) * kInternalFanout;
    hi = std::min(levels_[lvl].keys.size(), lo + kInternalFanout);
  }
}

Status CoconutTree::ReadLeafPage(uint64_t leaf, std::vector<uint8_t>* page,
                                 size_t* entry_count) const {
  if (leaf >= super_.num_leaves) {
    return Status::InvalidArgument("leaf index out of range");
  }
  page->resize(super_.leaf_page_bytes);
  const uint64_t off = kSuperblockBytes + leaf * super_.leaf_page_bytes;
  COCONUT_RETURN_IF_ERROR(
      index_file_->Read(off, super_.leaf_page_bytes, page->data()));
  if (super_.has_checksums()) {
    // The page was read whole anyway; the CRC pass is cache-resident work.
    if (crc32c::Value(page->data(), page->size()) != leaf_crcs_[leaf]) {
      ChecksumFailedCounter()->Increment();
      return Status::Corruption("leaf page checksum mismatch at leaf " +
                                std::to_string(leaf) + ": " + index_path_);
    }
    ChecksumVerifiedCounter()->Increment();
  }
  const uint64_t epl = super_.entries_per_leaf;
  *entry_count = (leaf + 1 == super_.num_leaves)
                     ? static_cast<size_t>(super_.num_entries - leaf * epl)
                     : static_cast<size_t>(epl);
  return Status::OK();
}

Status CoconutTree::EntryDistanceSq(const uint8_t* entry, const Value* query,
                                    double bound_sq, QueryScratch* scratch,
                                    double* dist_sq) const {
  const size_t n = options_.summary.series_length;
  if (options_.materialized) {
    *dist_sq =
        SquaredEuclideanEarlyAbandon(LeafEntrySeries(entry), query, n,
                                     bound_sq);
    return Status::OK();
  }
  // scratch->fetch was sized by Prepare() in the calling search. Each
  // entry is a raw-file read, so poll per fetch (the per-leaf poll in the
  // caller is too coarse when every entry costs real I/O).
  COCONUT_CHECK_CONTEXT(scratch->context, "tree.approx.fetch");
  COCONUT_RETURN_IF_ERROR(
      raw_file_->ReadAt(DecodeLeafEntryOffset(entry), scratch->fetch.data()));
  *dist_sq = SquaredEuclideanEarlyAbandon(scratch->fetch.data(), query, n,
                                          bound_sq);
  return Status::OK();
}

Status CoconutTree::ApproxSearch(const Value* query, size_t num_leaves,
                                 SearchResult* result, size_t k) const {
  QueryScratch scratch;
  return ApproxSearch(query, num_leaves, result, k, &scratch);
}

Status CoconutTree::ApproxSearch(const Value* query, size_t num_leaves,
                                 SearchResult* result, size_t k,
                                 QueryScratch* scratch) const {
  if (num_leaves == 0) num_leaves = 1;
  QueryTrace* const trace = scratch->trace;
  Stopwatch stage;  // consulted only when tracing
  TraceStages spans;
  const SummaryOptions& sum = options_.summary;
  scratch->Prepare(sum.series_length, sum.segments);
  PaaTransform(query, sum.series_length, sum.segments, scratch->paa.data());
  SaxFromPaa(scratch->paa.data(), sum, scratch->sax.data());
  const ZKey key = InvSaxFromSax(scratch->sax.data(), sum);

  const uint64_t target = LocateLeaf(key);
  spans.Mark("tree.route", "query");
  if (trace != nullptr) {
    trace->route_ns += stage.ElapsedNanos();
    stage.Restart();
  }
  // Window of `num_leaves` contiguous pages centered on the target (paper:
  // "all data series in a specific radius from this specific point").
  uint64_t lo = target > (num_leaves - 1) / 2 ? target - (num_leaves - 1) / 2
                                              : 0;
  uint64_t hi = std::min<uint64_t>(super_.num_leaves - 1,
                                   lo + num_leaves - 1);
  lo = (hi + 1 >= num_leaves) ? hi + 1 - num_leaves : 0;

  KnnCollector knn(k);
  uint64_t visited = 0;
  std::vector<uint8_t>& page = scratch->page;
  for (uint64_t lf = lo; lf <= hi; ++lf) {
    COCONUT_CHECK_CONTEXT(scratch->context, "tree.approx.leaf");
    size_t cnt;
    COCONUT_RETURN_IF_ERROR(ReadLeafPage(lf, &page, &cnt));
    for (size_t i = 0; i < cnt; ++i) {
      const uint8_t* entry = page.data() + i * super_.entry_bytes;
      double d;
      COCONUT_RETURN_IF_ERROR(
          EntryDistanceSq(entry, query, knn.bound_sq(), scratch, &d));
      ++visited;
      knn.Offer(DecodeLeafEntryOffset(entry), d);
    }
  }
  knn.Finalize(result);
  result->visited_records = visited;
  result->leaves_read = hi - lo + 1;
  spans.Mark("tree.approx", "query");
  if (trace != nullptr) {
    trace->approx_ns += stage.ElapsedNanos();
    trace->leaves_visited += hi - lo + 1;
    trace->records_fetched += visited;
  }
  return Status::OK();
}

Status CoconutTree::EnsureSimsLoaded() const {
  // Load-once latch: the first exact query on this tree loads the sidecar;
  // concurrent callers block on the mutex and find sims_loaded_ set. The
  // arrays are immutable afterwards, so the steady state is a lock-free
  // acquire-load.
  if (sims_loaded_.load(std::memory_order_acquire)) return Status::OK();
  MutexLock lock(&sims_mu_);
  if (sims_loaded_.load(std::memory_order_relaxed)) return Status::OK();
  if (sidecar_file_ == nullptr) {
    // Open() tolerated a missing sidecar (approx-only usage); retry here
    // so a later-restored file still works.
    COCONUT_RETURN_IF_ERROR(
        RandomAccessFile::Open(index_path_ + ".sax", &sidecar_file_));
  }
  const size_t w = options_.summary.segments;
  const uint64_t n = super_.num_entries;
  if (sidecar_file_->size() != n * (w + 8)) {
    return Status::Corruption("sidecar size mismatch");
  }
  sims_sax_.resize(n * w);
  sims_offsets_.resize(n);
  // Read through the handle opened at Open() time: the file may already be
  // unlinked (compaction), but the descriptor keeps its data reachable.
  // Large chunks keep this O(N/B) block reads, not O(N) syscalls.
  const size_t rec_bytes = w + 8;
  const size_t chunk_recs =
      std::max<size_t>(1, (4u << 20) / rec_bytes);  // ~4 MiB per read
  std::vector<uint8_t> buf(chunk_recs * rec_bytes);
  uint32_t crc = 0;
  for (uint64_t base = 0; base < n; base += chunk_recs) {
    const uint64_t m = std::min<uint64_t>(chunk_recs, n - base);
    COCONUT_RETURN_IF_ERROR(
        sidecar_file_->Read(base * rec_bytes, m * rec_bytes, buf.data()));
    crc = crc32c::Extend(crc, buf.data(), m * rec_bytes);
    for (uint64_t i = 0; i < m; ++i) {
      const uint8_t* rec = buf.data() + i * rec_bytes;
      std::memcpy(sims_sax_.data() + (base + i) * w, rec, w);
      std::memcpy(&sims_offsets_[base + i], rec + w, 8);
    }
  }
  if (super_.has_checksums()) {
    if (crc != super_.sidecar_crc) {
      ChecksumFailedCounter()->Increment();
      sims_sax_.clear();
      sims_offsets_.clear();
      return Status::Corruption("sidecar checksum mismatch: " + index_path_ +
                                ".sax");
    }
    ChecksumVerifiedCounter()->Increment();
  }
  sims_loaded_.store(true, std::memory_order_release);
  return Status::OK();
}

Status CoconutTree::ExactSearch(const Value* query, size_t approx_leaves,
                                SearchResult* result, size_t k) const {
  QueryScratch scratch;
  return ExactSearch(query, approx_leaves, result, k, &scratch);
}

Status CoconutTree::ExactSearch(const Value* query, size_t approx_leaves,
                                SearchResult* result, size_t k,
                                QueryScratch* scratch) const {
  // Lines 3-4 of Algorithm 5: load the in-memory summarizations once.
  COCONUT_RETURN_IF_ERROR(EnsureSimsLoaded());

  // Line 6: seed the best-so-far set with the approximate answers.
  SearchResult approx;
  COCONUT_RETURN_IF_ERROR(ApproxSearch(query, approx_leaves, &approx, k,
                                       scratch));
  KnnCollector knn(k);
  knn.Seed(approx);

  QueryTrace* const trace = scratch->trace;
  Stopwatch stage;  // refine stage: lower bounds + skip-sequential scan
  TraceStages spans;
  const SummaryOptions& sum = options_.summary;
  scratch->Prepare(sum.series_length, sum.segments);
  PaaTransform(query, sum.series_length, sum.segments, scratch->paa.data());

  // Lines 8-10: compute lower bounds for every entry, in parallel.
  const uint64_t n = super_.num_entries;
  std::vector<double>& mindists = scratch->mindists;
  ParallelMindists(scratch->paa.data(), sims_sax_.data(), n, sum,
                   options_.EffectiveThreads(), &mindists);

  // Lines 12-19: skip-sequential scan in leaf order, fetching raw data only
  // for unpruned entries (pruning against the k-th best distance). For the
  // materialized tree the fetch is served from the contiguous leaf pages;
  // otherwise from the raw file by offset.
  uint64_t visited = 0;
  uint64_t leaves_read = 0;
  const size_t series_len = sum.series_length;
  if (options_.materialized) {
    std::vector<uint8_t>& page = scratch->page;
    uint64_t cached_leaf = std::numeric_limits<uint64_t>::max();
    size_t cached_cnt = 0;
    for (uint64_t i = 0; i < n; ++i) {
      if (mindists[i] >= knn.bound_sq()) continue;
      const uint64_t leaf = i / super_.entries_per_leaf;
      if (leaf != cached_leaf) {
        COCONUT_CHECK_CONTEXT(scratch->context, "tree.exact.leaf");
        COCONUT_RETURN_IF_ERROR(ReadLeafPage(leaf, &page, &cached_cnt));
        cached_leaf = leaf;
        ++leaves_read;
      }
      const size_t slot = static_cast<size_t>(i % super_.entries_per_leaf);
      const uint8_t* entry = page.data() + slot * super_.entry_bytes;
      const double d = SquaredEuclideanEarlyAbandon(
          LeafEntrySeries(entry), query, series_len, knn.bound_sq());
      ++visited;
      knn.Offer(DecodeLeafEntryOffset(entry), d);
    }
  } else {
    for (uint64_t i = 0; i < n; ++i) {
      if (mindists[i] >= knn.bound_sq()) continue;
      // Each unpruned entry is a raw-file read, so the per-fetch poll stays
      // proportionate to real I/O.
      COCONUT_CHECK_CONTEXT(scratch->context, "tree.exact.fetch");
      COCONUT_RETURN_IF_ERROR(
          raw_file_->ReadAt(sims_offsets_[i], scratch->fetch.data()));
      const double d = SquaredEuclideanEarlyAbandon(
          scratch->fetch.data(), query, series_len, knn.bound_sq());
      ++visited;
      knn.Offer(sims_offsets_[i], d);
    }
  }

  knn.Finalize(result);
  result->visited_records = approx.visited_records + visited;
  result->leaves_read = approx.leaves_read + leaves_read;
  spans.Mark("tree.refine", "query");
  if (trace != nullptr) {
    trace->refine_ns += stage.ElapsedNanos();
    trace->leaves_visited += leaves_read;
    trace->records_fetched += visited;
    trace->pruned_mindist += n - visited;
  }
  return Status::OK();
}

double CoconutTree::AvgLeafFill() const {
  if (super_.num_leaves == 0) return 0.0;
  return static_cast<double>(super_.num_entries) /
         (static_cast<double>(super_.num_leaves) *
          static_cast<double>(super_.leaf_capacity));
}

Status CoconutTree::IndexSizeBytes(uint64_t* bytes) const {
  uint64_t index_bytes = 0;
  uint64_t sidecar_bytes = 0;
  COCONUT_RETURN_IF_ERROR(FileSize(index_path_, &index_bytes));
  COCONUT_RETURN_IF_ERROR(FileSize(index_path_ + ".sax", &sidecar_bytes));
  *bytes = index_bytes + sidecar_bytes;
  return Status::OK();
}

Status CoconutTree::ReadLeafEntries(uint64_t leaf, std::vector<ZKey>* keys,
                                    std::vector<uint64_t>* offsets) const {
  std::vector<uint8_t> page;
  size_t cnt;
  COCONUT_RETURN_IF_ERROR(ReadLeafPage(leaf, &page, &cnt));
  keys->clear();
  offsets->clear();
  for (size_t i = 0; i < cnt; ++i) {
    const uint8_t* entry = page.data() + i * super_.entry_bytes;
    keys->push_back(DecodeLeafEntryKey(entry));
    offsets->push_back(DecodeLeafEntryOffset(entry));
  }
  return Status::OK();
}

namespace {

/// Merge of the existing leaf entries (read sequentially from the old index
/// file) with an in-memory sorted batch of new entries; feeds BulkLoad for
/// the rebuild. Both inputs are sorted by key, so this is a single
/// sequential pass (paper Fig 10a: bulk-loading "has to perform less splits
/// when larger pieces of data are loaded").
class MergeStream : public SortedRecordStream {
 public:
  MergeStream(CoconutTree* tree, const TreeSuperblock& super,
              std::vector<uint8_t> new_records, size_t entry_bytes)
      : tree_(tree),
        super_(super),
        new_records_(std::move(new_records)),
        entry_bytes_(entry_bytes) {}

  bool Next(uint8_t* out, Status* status) override {
    *status = Status::OK();
    const bool old_ok = old_index_ < super_.num_entries;
    const bool new_ok = new_pos_ < new_records_.size();
    if (!old_ok && !new_ok) return false;
    if (old_ok && page_pos_ == page_count_) {
      *status = FillPage();
      if (!status->ok()) return false;
    }
    bool take_old;
    if (!old_ok) {
      take_old = false;
    } else if (!new_ok) {
      take_old = true;
    } else {
      take_old = std::memcmp(page_.data() + page_pos_ * entry_bytes_,
                             new_records_.data() + new_pos_,
                             ZKey::kBytes) <= 0;
    }
    if (take_old) {
      std::memcpy(out, page_.data() + page_pos_ * entry_bytes_, entry_bytes_);
      ++page_pos_;
      ++old_index_;
    } else {
      std::memcpy(out, new_records_.data() + new_pos_, entry_bytes_);
      new_pos_ += entry_bytes_;
    }
    return true;
  }

  uint64_t count() const override {
    return super_.num_entries + new_records_.size() / entry_bytes_;
  }

 private:
  Status FillPage() {
    COCONUT_RETURN_IF_ERROR(tree_->ReadLeafEntriesRaw(next_leaf_, &page_,
                                                      &page_count_));
    ++next_leaf_;
    page_pos_ = 0;
    return Status::OK();
  }

  CoconutTree* tree_;
  const TreeSuperblock& super_;
  std::vector<uint8_t> new_records_;
  size_t entry_bytes_;
  uint64_t old_index_ = 0;
  uint64_t next_leaf_ = 0;
  std::vector<uint8_t> page_;
  size_t page_count_ = 0;
  size_t page_pos_ = 0;
  size_t new_pos_ = 0;
};

}  // namespace

Status CoconutTree::ReadLeafEntriesRaw(uint64_t leaf,
                                       std::vector<uint8_t>* page,
                                       size_t* entry_count) const {
  return ReadLeafPage(leaf, page, entry_count);
}

Status CoconutTree::MergeBatch(const std::vector<Series>& batch) {
  if (batch.empty()) return Status::OK();
  const SummaryOptions& sum = options_.summary;
  for (const Series& s : batch) {
    if (s.size() != sum.series_length) {
      return Status::InvalidArgument("batch series length mismatch");
    }
  }
  const uint64_t old_raw_bytes = raw_file_->size_bytes();
  COCONUT_RETURN_IF_ERROR(AppendToDataset(raw_path_, batch));

  // Encode and sort the new entries in memory (a batch is small relative to
  // the index; the paper's update experiment bulk-loads arriving batches).
  const size_t entry_bytes = super_.entry_bytes;
  std::vector<uint8_t> recs(batch.size() * entry_bytes);
  const uint64_t series_bytes = sum.series_length * sizeof(Value);
  for (size_t i = 0; i < batch.size(); ++i) {
    const ZKey key = InvSaxFromSeries(batch[i].data(), sum);
    EncodeLeafEntry(key, old_raw_bytes + i * series_bytes,
                    options_.materialized ? batch[i].data() : nullptr,
                    sum.series_length, recs.data() + i * entry_bytes);
  }
  std::vector<uint32_t> order(batch.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return std::memcmp(recs.data() + size_t{a} * entry_bytes,
                       recs.data() + size_t{b} * entry_bytes,
                       ZKey::kBytes) < 0;
  });
  std::vector<uint8_t> sorted(recs.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    std::memcpy(sorted.data() + i * entry_bytes,
                recs.data() + size_t{order[i]} * entry_bytes, entry_bytes);
  }

  // Sequentially merge old leaves with the sorted batch into a new file.
  const std::string tmp_index = index_path_ + ".rebuild";
  {
    MergeStream stream(this, super_, std::move(sorted), entry_bytes);
    COCONUT_RETURN_IF_ERROR(
        CoconutTreeBuilder::BulkLoad(&stream, options_, tmp_index));
  }
  COCONUT_RETURN_IF_ERROR(RenameFile(tmp_index, index_path_));
  COCONUT_RETURN_IF_ERROR(RenameFile(tmp_index + ".sax", index_path_ + ".sax"));

  // Refresh in-memory state from the rebuilt file.
  std::unique_ptr<CoconutTree> reopened;
  COCONUT_RETURN_IF_ERROR(Open(index_path_, raw_path_, &reopened));
  options_ = reopened->options_;
  super_ = reopened->super_;
  index_file_ = std::move(reopened->index_file_);
  sidecar_file_ = std::move(reopened->sidecar_file_);
  raw_file_ = std::move(reopened->raw_file_);
  levels_ = std::move(reopened->levels_);
  leaf_crcs_ = std::move(reopened->leaf_crcs_);
  internal_crc_ = reopened->internal_crc_;
  sims_loaded_.store(false, std::memory_order_release);
  sims_sax_.clear();
  sims_offsets_.clear();
  return Status::OK();
}

}  // namespace coconut
