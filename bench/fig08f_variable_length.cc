// Figure 8f: indexing collections of different series lengths (fixed total
// volume, limited memory). Paper result: the Coconut-Tree variants beat the
// ADS variants at every series length.
#include "bench/bench_util.h"
#include "src/baselines/ads/ads_index.h"
#include "src/core/coconut_tree.h"

namespace coconut {
namespace bench {
namespace {

constexpr size_t kLeafCapacity = 2000;
constexpr size_t kBudget = 4ull << 20;

SummaryOptions Summary(size_t length) {
  SummaryOptions s;
  s.series_length = length;
  s.segments = 16;
  s.cardinality_bits = 8;
  return s;
}

void Run() {
  Banner("Figure 8f", "variable series length, fixed total data volume");
  // Fixed ~20MB * scale of raw data across lengths.
  const size_t total_values = 5'000'000 * Scale();
  PrintHeader({"length", "method", "build_time", "rand_io"});
  for (size_t length : {128, 256, 512, 1024}) {
    const size_t count = total_values / length;
    BenchDir dir;
    const std::string raw = PrepareDataset(dir, DatasetKind::kRandomWalk,
                                           count, length, 16, "data.bin");
    {
      CoconutOptions opts;
      opts.summary = Summary(length);
      opts.leaf_capacity = kLeafCapacity;
      opts.memory_budget_bytes = kBudget;
      opts.tmp_dir = dir.path();
      Measured m;
      CheckOk(CoconutTree::Build(raw, dir.File("ctree.idx"), opts),
              "CTree build");
      const IoSnapshot io = m.io();
      PrintRow({FmtCount(length), "CTree", FmtSeconds(m.seconds()),
                FmtCount(io.random_read_ops + io.random_write_ops)});
    }
    {
      CoconutOptions opts;
      opts.summary = Summary(length);
      opts.leaf_capacity = kLeafCapacity;
      opts.materialized = true;
      opts.memory_budget_bytes = kBudget;
      opts.tmp_dir = dir.path();
      Measured m;
      CheckOk(CoconutTree::Build(raw, dir.File("ctreefull.idx"), opts),
              "CTreeFull build");
      const IoSnapshot io = m.io();
      PrintRow({FmtCount(length), "CTreeFull", FmtSeconds(m.seconds()),
                FmtCount(io.random_read_ops + io.random_write_ops)});
    }
    {
      AdsOptions opts;
      opts.summary = Summary(length);
      opts.leaf_capacity = kLeafCapacity;
      opts.memory_budget_bytes = kBudget;
      std::unique_ptr<AdsIndex> index;
      Measured m;
      CheckOk(AdsIndex::Build(raw, dir.File("adsplus.pages"), opts, &index),
              "ADS+ build");
      const IoSnapshot io = m.io();
      PrintRow({FmtCount(length), "ADS+", FmtSeconds(m.seconds()),
                FmtCount(io.random_read_ops + io.random_write_ops)});
    }
    {
      AdsOptions opts;
      opts.summary = Summary(length);
      opts.leaf_capacity = kLeafCapacity;
      opts.materialized = true;
      opts.memory_budget_bytes = kBudget;
      std::unique_ptr<AdsIndex> index;
      Measured m;
      CheckOk(AdsIndex::Build(raw, dir.File("adsfull.pages"), opts, &index),
              "ADSFull build");
      const IoSnapshot io = m.io();
      PrintRow({FmtCount(length), "ADSFull", FmtSeconds(m.seconds()),
                FmtCount(io.random_read_ops + io.random_write_ops)});
    }
  }
  std::printf(
      "\nExpectation (paper Fig 8f): the Coconut-Tree variants surpass the\n"
      "ADS variants at every series length.\n");
}

}  // namespace
}  // namespace bench
}  // namespace coconut

int main() {
  coconut::bench::Run();
  return 0;
}
