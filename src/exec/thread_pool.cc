#include "src/exec/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace coconut {

namespace {

unsigned ResolveThreads(unsigned threads) {
  if (threads > 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 4;
}

struct PoolMetrics {
  Counter* tasks_executed;
  Counter* oneshot_inline_claims;
  Histogram* queue_wait_ns;
};

PoolMetrics& Metrics() {
  static PoolMetrics m = []() {
    MetricRegistry& reg = MetricRegistry::Default();
    return PoolMetrics{reg.GetCounter("exec.tasks_executed"),
                       reg.GetCounter("exec.oneshot_inline_claims"),
                       reg.GetHistogram("exec.queue_wait_ns")};
  }();
  return m;
}

}  // namespace

void NoteOneShotInlineClaim() { Metrics().oneshot_inline_claims->Increment(); }

void ThreadPool::NoteDequeued(const QueueEntry& entry) {
  const auto wait = std::chrono::steady_clock::now() - entry.enqueued;
  Metrics().queue_wait_ns->Record(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(wait).count()));
  Metrics().tasks_executed->Increment();
}

void ThreadPool::RunEntryTraced(const QueueEntry& entry) {
  if (!Tracer::Enabled()) {
    entry.fn();
    return;
  }
  const uint64_t start = Tracer::NowNanos();
  entry.fn();
  const uint64_t end = Tracer::NowNanos();
  Tracer& tracer = Tracer::Default();
  tracer.RecordComplete("pool.task", "pool", start, end);
  if (entry.flow_id != 0) {
    // The flow-finish must land *inside* the task slice to bind to it
    // ("bp":"e"), so nudge it past the slice start but keep it within even
    // the shortest task.
    const uint64_t bind_ts =
        start + std::min<uint64_t>((end - start) / 2, 1000);
    tracer.RecordFlow('f', "pool.enqueue", entry.flow_id, bind_ts);
  }
}

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned total = ResolveThreads(threads);
  workers_.reserve(total > 0 ? total - 1 : 0);
  for (unsigned i = 1; i < total; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    QueueEntry entry;
    {
      MutexLock lock(&mu_);
      while (!shutdown_ && queue_.empty()) cv_.Wait(mu_);
      if (queue_.empty()) return;  // shutdown and drained
      entry = std::move(queue_.front());
      queue_.pop_front();
    }
    NoteDequeued(entry);
    RunEntryTraced(entry);
  }
}

void ThreadPool::Submit(std::function<void()> fn) {
  if (workers_.empty()) {
    Metrics().tasks_executed->Increment();
    fn();
    return;
  }
  // When tracing, stamp the entry with a flow id and emit the flow-start
  // inside a tiny "pool.submit" slice on this thread; the executing worker
  // emits the matching flow-finish inside its "pool.task" slice — the
  // enqueue->execute arrow in the trace viewer.
  const bool traced = Tracer::Enabled();
  const uint64_t flow_id = traced ? Tracer::Default().NextFlowId() : 0;
  const uint64_t t0 = traced ? Tracer::NowNanos() : 0;
  {
    MutexLock lock(&mu_);
    queue_.push_back(
        {std::move(fn), std::chrono::steady_clock::now(), flow_id});
  }
  cv_.NotifyOne();
  if (traced) {
    Tracer& tracer = Tracer::Default();
    const uint64_t t1 = Tracer::NowNanos();
    tracer.RecordComplete("pool.submit", "pool", t0, t1);
    tracer.RecordFlow('s', "pool.enqueue", flow_id, t0 + (t1 - t0) / 2);
  }
}

/// Shared chunk cursor for one ParallelFor invocation. Heap-allocated and
/// shared_ptr-owned so that helper tasks left in the queue after completion
/// (they find no chunks left) never touch freed state.
struct ThreadPool::ForState {
  uint64_t begin = 0;
  uint64_t grain = 1;
  uint64_t num_chunks = 0;
  const std::function<void(uint64_t, uint64_t)>* body = nullptr;
  std::atomic<uint64_t> next_chunk{0};
  std::atomic<uint64_t> done_chunks{0};
  Mutex mu;
  CondVar done_cv;

  uint64_t end() const { return begin + grain * num_chunks; }

  /// Claims and runs chunks until the cursor is exhausted; returns the
  /// number of chunks this thread completed.
  uint64_t Drain(uint64_t range_end) {
    uint64_t ran = 0;
    while (true) {
      const uint64_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) break;
      const uint64_t lo = begin + c * grain;
      const uint64_t hi = std::min(range_end, lo + grain);
      (*body)(lo, hi);
      ++ran;
    }
    if (ran > 0) {
      const uint64_t total =
          done_chunks.fetch_add(ran, std::memory_order_acq_rel) + ran;
      if (total == num_chunks) {
        MutexLock lock(&mu);
        done_cv.NotifyAll();
      }
    }
    return ran;
  }
};

void ThreadPool::ParallelFor(
    uint64_t begin, uint64_t end, uint64_t grain,
    const std::function<void(uint64_t, uint64_t)>& body) {
  if (end <= begin) return;
  const uint64_t n = end - begin;
  const unsigned par = parallelism();
  if (grain == 0) {
    // A few chunks per thread for load balancing, but at least 1 element.
    grain = std::max<uint64_t>(1, n / (uint64_t{par} * 4));
  }
  const uint64_t num_chunks = (n + grain - 1) / grain;
  if (workers_.empty() || num_chunks <= 1) {
    body(begin, end);
    return;
  }

  auto state = std::make_shared<ForState>();
  state->begin = begin;
  state->grain = grain;
  state->num_chunks = num_chunks;
  state->body = &body;

  // Offer helper tasks to the pool (at most one per worker and never more
  // than the chunk count); each helper drains chunks until none remain.
  // `body` stays alive because the caller blocks below until all chunks are
  // done, and late-running helpers that find the cursor exhausted return
  // without dereferencing it.
  const uint64_t helpers =
      std::min<uint64_t>(workers_.size(), num_chunks - 1);
  const bool traced = Tracer::Enabled();
  const uint64_t t0 = traced ? Tracer::NowNanos() : 0;
  std::vector<uint64_t> flow_ids;
  if (traced) {
    flow_ids.reserve(helpers);
    for (uint64_t i = 0; i < helpers; ++i) {
      flow_ids.push_back(Tracer::Default().NextFlowId());
    }
  }
  {
    const auto now = std::chrono::steady_clock::now();
    MutexLock lock(&mu_);
    for (uint64_t i = 0; i < helpers; ++i) {
      queue_.push_back({[state, end]() { state->Drain(end); }, now,
                        traced ? flow_ids[i] : 0});
    }
  }
  cv_.NotifyAll();
  if (traced) {
    // One flow-start per helper task, all inside one submit slice: the
    // viewer draws a fan of arrows from this thread to every worker that
    // picked up a chunk-drain task.
    Tracer& tracer = Tracer::Default();
    const uint64_t t1 = Tracer::NowNanos();
    tracer.RecordComplete("pool.submit_parallel_for", "pool", t0, t1);
    for (uint64_t id : flow_ids) {
      tracer.RecordFlow('s', "pool.enqueue", id, t0 + (t1 - t0) / 2);
    }
  }

  // The caller participates; this guarantees forward progress even when all
  // workers are busy with other (possibly enclosing) tasks.
  state->Drain(end);
  MutexLock lock(&state->mu);
  while (state->done_chunks.load(std::memory_order_acquire) !=
         state->num_chunks) {
    state->done_cv.Wait(state->mu);
  }
}

ThreadPool* ThreadPool::Shared() {
  static ThreadPool* pool = []() {
    unsigned threads = 0;
    if (const char* env = std::getenv("COCONUT_THREADS")) {
      threads = static_cast<unsigned>(std::strtoul(env, nullptr, 10));
    }
    return new ThreadPool(threads);
  }();
  return pool;
}

}  // namespace coconut
