#include "src/obs/stats_reporter.h"

#include <cinttypes>
#include <string>

namespace coconut {

StatsReporter::StatsReporter(std::chrono::milliseconds interval,
                             MetricRegistry* registry, std::FILE* out)
    : interval_(interval), registry_(registry), out_(out) {
  last_ = registry_->Snapshot();
  thread_ = std::thread([this]() { Loop(); });
}

void StatsReporter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void StatsReporter::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (cv_.wait_for(lock, interval_, [this]() { return stop_; })) break;
    lock.unlock();
    ReportOnce();
    lock.lock();
  }
}

void StatsReporter::ReportOnce() {
  const RegistrySnapshot now = registry_->Snapshot();
  std::string line = "[coconut-stats]";
  for (const auto& [name, v] : now.counters) {
    auto it = last_.counters.find(name);
    const uint64_t before = it == last_.counters.end() ? 0 : it->second;
    if (v != before) {
      line += " " + name + "=+" + std::to_string(v - before);
    }
  }
  for (const auto& [name, v] : now.gauges) {
    auto it = last_.gauges.find(name);
    if (it == last_.gauges.end() || it->second != v) {
      line += " " + name + "=" + std::to_string(v);
    }
  }
  for (const auto& [name, h] : now.histograms) {
    auto it = last_.histograms.find(name);
    const uint64_t before =
        it == last_.histograms.end() ? 0 : it->second.count;
    if (h.count != before) {
      const HistogramSnapshot d =
          it == last_.histograms.end() ? h : h.Delta(it->second);
      line += " " + name + "{n=+" + std::to_string(d.count) +
              ",p50=" + std::to_string(d.ValueAtQuantile(0.5)) +
              ",p99=" + std::to_string(d.ValueAtQuantile(0.99)) + "}";
    }
  }
  if (line.size() > sizeof("[coconut-stats]") - 1) {
    line += "\n";
    std::fputs(line.c_str(), out_);
    std::fflush(out_);
  }
  last_ = now;
}

}  // namespace coconut
