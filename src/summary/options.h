// Summarization configuration shared by every index in the repository.
#ifndef COCONUT_SUMMARY_OPTIONS_H_
#define COCONUT_SUMMARY_OPTIONS_H_

#include <cstddef>

#include "src/common/status.h"
#include "src/common/zkey.h"
#include "src/summary/breakpoints.h"

namespace coconut {

/// Parameters of the PAA/SAX summarization. Defaults mirror the paper's
/// evaluation: series of 256 points, 16 segments, 8-bit symbols (so a SAX
/// word is 16 bytes and an invSAX key uses 128 bits).
struct SummaryOptions {
  size_t series_length = 256;
  size_t segments = 16;
  unsigned cardinality_bits = 8;

  /// Number of bits used by the interleaved (invSAX) key.
  size_t key_bits() const { return segments * cardinality_bits; }

  /// Scaling factor n/w from the PAA/SAX lower-bound lemmas.
  double segment_size() const {
    return static_cast<double>(series_length) / static_cast<double>(segments);
  }

  Status Validate() const {
    if (series_length == 0 || segments == 0) {
      return Status::InvalidArgument("series_length and segments must be > 0");
    }
    if (series_length % segments != 0) {
      return Status::InvalidArgument(
          "series_length must be divisible by segments");
    }
    if (cardinality_bits == 0 || cardinality_bits > kMaxCardinalityBits) {
      return Status::InvalidArgument("cardinality_bits must be in [1, 8]");
    }
    if (key_bits() > ZKey::kBits) {
      return Status::InvalidArgument(
          "segments * cardinality_bits exceeds the 256-bit key width");
    }
    return Status::OK();
  }
};

}  // namespace coconut

#endif  // COCONUT_SUMMARY_OPTIONS_H_
