// Figure 8a: index construction time for the MATERIALIZED indexes as the
// memory budget shrinks. Paper result: Coconut-Tree-Full (CTreeFull) is
// fastest at every budget; Coconut-Trie-Full degrades sharply when memory is
// constrained (random fetches while loading unsorted raw data into sorted
// leaves); Vertical and R-tree are slower throughout; DSTree is far slower
// than everything (top-down one-by-one insertion).
#include "bench/bench_util.h"
#include "src/baselines/ads/ads_index.h"
#include "src/baselines/dstree/dstree_index.h"
#include "src/baselines/rtree/rtree.h"
#include "src/baselines/vertical/vertical_index.h"
#include "src/core/coconut_tree.h"
#include "src/core/coconut_trie.h"

namespace coconut {
namespace bench {
namespace {

constexpr size_t kLength = 256;
constexpr size_t kSegments = 16;
constexpr size_t kLeafCapacity = 2000;

SummaryOptions Summary() {
  SummaryOptions s;
  s.series_length = kLength;
  s.segments = kSegments;
  s.cardinality_bits = 8;
  return s;
}

void Run() {
  Banner("Figure 8a",
         "construction time, materialized indexes, shrinking memory budget");
  const size_t count = 20000 * Scale();
  BenchDir dir;
  const std::string raw = PrepareDataset(dir, DatasetKind::kRandomWalk, count,
                                         kLength, 11, "data.bin");
  std::printf("dataset: %zu series x %zu points (%.0f MB raw)\n\n", count,
              kLength, count * kLength * 4 / 1048576.0);

  PrintHeader({"method", "budget", "build_time", "rand_io", "seq_io"});
  const std::vector<std::pair<const char*, size_t>> budgets = {
      {"ample(256MB)", 256ull << 20},
      {"medium(8MB)", 8ull << 20},
      {"small(2MB)", 2ull << 20},
  };

  for (const auto& [label, budget] : budgets) {
    {  // Coconut-Tree-Full: external sort of the full records.
      CoconutOptions opts;
      opts.summary = Summary();
      opts.leaf_capacity = kLeafCapacity;
      opts.materialized = true;
      opts.memory_budget_bytes = budget;
      opts.tmp_dir = dir.path();
      Measured m;
      CheckOk(CoconutTree::Build(raw, dir.File("ctreefull.idx"), opts),
              "CTreeFull build");
      const IoSnapshot io = m.io();
      PrintRow({"CTreeFull", label, FmtSeconds(m.seconds()),
                FmtCount(io.random_read_ops + io.random_write_ops),
                FmtCount(io.seq_read_ops() + io.seq_write_ops())});
    }
    {  // Coconut-Trie-Full: sorts summaries, then materializes.
      CoconutOptions opts;
      opts.summary = Summary();
      opts.leaf_capacity = kLeafCapacity;
      opts.materialized = true;
      opts.memory_budget_bytes = budget;
      opts.tmp_dir = dir.path();
      Measured m;
      CheckOk(CoconutTrie::Build(raw, dir.File("ctriefull.idx"), opts),
              "CTrieFull build");
      const IoSnapshot io = m.io();
      PrintRow({"CTrieFull", label, FmtSeconds(m.seconds()),
                FmtCount(io.random_read_ops + io.random_write_ops),
                FmtCount(io.seq_read_ops() + io.seq_write_ops())});
    }
    {  // ADSFull: top-down inserts + materialization pass.
      AdsOptions opts;
      opts.summary = Summary();
      opts.leaf_capacity = kLeafCapacity;
      opts.materialized = true;
      opts.memory_budget_bytes = budget;
      std::unique_ptr<AdsIndex> index;
      Measured m;
      CheckOk(AdsIndex::Build(raw, dir.File("adsfull.pages"), opts, &index),
              "ADSFull build");
      const IoSnapshot io = m.io();
      PrintRow({"ADSFull", label, FmtSeconds(m.seconds()),
                FmtCount(io.random_read_ops + io.random_write_ops),
                FmtCount(io.seq_read_ops() + io.seq_write_ops())});
    }
    {  // R-tree (materialized) via STR.
      RtreeOptions opts;
      opts.summary = Summary();
      opts.leaf_capacity = kLeafCapacity;
      opts.materialized = true;
      opts.memory_budget_bytes = budget;
      opts.tmp_dir = dir.path();
      std::unique_ptr<RTree> tree;
      Measured m;
      CheckOk(RTree::Build(raw, dir.File("rtree.pages"), opts, &tree),
              "R-tree build");
      const IoSnapshot io = m.io();
      PrintRow({"R-tree", label, FmtSeconds(m.seconds()),
                FmtCount(io.random_read_ops + io.random_write_ops),
                FmtCount(io.seq_read_ops() + io.seq_write_ops())});
    }
    {  // Vertical: one pass per DHWT level.
      VerticalOptions opts;
      opts.series_length = kLength;
      opts.memory_budget_bytes = budget;
      std::unique_ptr<VerticalIndex> index;
      Measured m;
      CheckOk(VerticalIndex::Build(raw, dir.File("vertical"), opts, &index),
              "Vertical build");
      const IoSnapshot io = m.io();
      PrintRow({"Vertical", label, FmtSeconds(m.seconds()),
                FmtCount(io.random_read_ops + io.random_write_ops),
                FmtCount(io.seq_read_ops() + io.seq_write_ops())});
    }
    {  // DSTree: top-down one-by-one (the paper's 24h+ method). Run at a
      // quarter of the data so the harness stays interactive; the per-series
      // rate is what matters and is reported alongside.
      const size_t dstree_count = count / 4;
      DstreeOptions opts;
      opts.series_length = kLength;
      opts.leaf_capacity = kLeafCapacity;
      opts.memory_budget_bytes = budget;
      std::unique_ptr<DstreeIndex> index;
      CheckOk(DstreeIndex::Create(opts, dir.File("dstree.pages"), &index),
              "DSTree create");
      DatasetScanner scanner;
      CheckOk(scanner.Open(raw, kLength), "DSTree scan");
      Series s(kLength);
      Status st;
      Measured m;
      uint64_t position = 0;
      for (size_t i = 0; i < dstree_count && scanner.Next(s.data(), &st);
           ++i) {
        CheckOk(index->Insert(s.data(), position), "DSTree insert");
        position += kLength * sizeof(Value);
      }
      CheckOk(st, "DSTree scan");
      CheckOk(index->FlushAll(), "DSTree flush");
      const double scaled = m.seconds() * (static_cast<double>(count) /
                                           static_cast<double>(dstree_count));
      const IoSnapshot io = m.io();
      PrintRow({"DSTree(x4 est)", label, FmtSeconds(scaled),
                FmtCount(io.random_read_ops + io.random_write_ops),
                FmtCount(io.seq_read_ops() + io.seq_write_ops())});
    }
  }
  std::printf(
      "\nExpectation (paper Fig 8a): CTreeFull fastest at all budgets;\n"
      "CTrieFull degrades as the budget shrinks (random materialization\n"
      "reads blow up, see rand_io); R-tree/Vertical slower. At paper scale\n"
      "DSTree is slowest by orders of magnitude; at laptop scale the OS\n"
      "page cache absorbs its random I/O, so compare the I/O columns.\n");
}

}  // namespace
}  // namespace bench
}  // namespace coconut

int main() {
  coconut::bench::Run();
  return 0;
}
