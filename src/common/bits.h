// Small bit-manipulation helpers shared by the summarization and key code.
#ifndef COCONUT_COMMON_BITS_H_
#define COCONUT_COMMON_BITS_H_

#include <cstdint>
#include <cstddef>

namespace coconut {

/// Extracts bit `bit` (0 = least significant) of `v` as 0 or 1.
inline uint32_t GetBit(uint64_t v, unsigned bit) {
  return static_cast<uint32_t>((v >> bit) & 1u);
}

/// Sets bit `bit` (0 = least significant) of `*v` to `value` (0 or 1).
inline void AssignBit(uint64_t* v, unsigned bit, uint32_t value) {
  const uint64_t mask = uint64_t{1} << bit;
  if (value) {
    *v |= mask;
  } else {
    *v &= ~mask;
  }
}

/// Returns ceil(a / b) for positive integers.
inline size_t CeilDiv(size_t a, size_t b) { return (a + b - 1) / b; }

/// Rounds `v` up to the next multiple of `align` (align > 0).
inline size_t RoundUp(size_t v, size_t align) {
  return CeilDiv(v, align) * align;
}

}  // namespace coconut

#endif  // COCONUT_COMMON_BITS_H_
