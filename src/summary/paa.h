// Piecewise Aggregate Approximation: the series is partitioned into
// equal-sized segments and each segment is replaced by its mean value
// (paper §2, Figure 1 middle).
#ifndef COCONUT_SUMMARY_PAA_H_
#define COCONUT_SUMMARY_PAA_H_

#include <cstddef>

#include "src/series/series.h"

namespace coconut {

/// Computes the `segments` PAA coefficients of `series` (length `n`,
/// n divisible by segments) into `out`.
void PaaTransform(const Value* series, size_t n, size_t segments, double* out);

}  // namespace coconut

#endif  // COCONUT_SUMMARY_PAA_H_
