// Metric registry (src/obs/): histogram bucket math and percentile accuracy
// against a sorted-vector oracle, wait-free concurrent recording, snapshot
// merge/delta round-trips, exposition formats, and end-to-end QueryEngine
// integration (per-query traces and registry counters for a real batch).
#include <algorithm>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/random.h"
#include "src/core/coconut_tree.h"
#include "src/exec/query_engine.h"
#include "src/exec/thread_pool.h"
#include "src/obs/metrics.h"
#include "src/obs/query_trace.h"
#include "src/obs/stage_timer.h"
#include "tests/test_util.h"

namespace coconut {
namespace {

using testing::MakeDatasetFile;
using testing::ScratchDir;

// --- Counter ---

TEST(Counter, AccumulatesAcrossStripes) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(Counter, ConcurrentIncrementsAreExact) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
}

// --- Histogram bucket math ---

TEST(Histogram, SmallValuesGetExactBuckets) {
  for (uint64_t v = 0; v < 8; ++v) {
    EXPECT_EQ(Histogram::BucketFor(v), v);
    EXPECT_EQ(Histogram::BucketLowerBound(v), v);
  }
}

TEST(Histogram, BucketBoundsBracketEveryValue) {
  // Sweep values across many octaves: each value must fall inside the
  // [lower, next-lower) range of its own bucket, and bucket indices must be
  // non-decreasing in the value.
  size_t prev_bucket = 0;
  for (uint64_t v = 0; v < (1u << 20); v = v < 256 ? v + 1 : v + v / 7 + 1) {
    const size_t b = Histogram::BucketFor(v);
    ASSERT_LT(b, Histogram::kNumBuckets);
    ASSERT_GE(b, prev_bucket);
    prev_bucket = b;
    ASSERT_LE(Histogram::BucketLowerBound(b), v) << "value " << v;
    if (b + 1 < Histogram::kNumBuckets) {
      ASSERT_LT(v, Histogram::BucketLowerBound(b + 1)) << "value " << v;
    }
  }
  // Extremes: the top of the 64-bit range still maps inside the table.
  EXPECT_LT(Histogram::BucketFor(~uint64_t{0}), Histogram::kNumBuckets);
}

TEST(Histogram, BucketRelativeWidthBoundsQuantileError) {
  // The reported quantile is the bucket upper bound, so the worst-case
  // relative error is (upper - lower) / lower, which the 8-way octave split
  // bounds by 1/8.
  for (size_t b = 8; b + 1 < Histogram::kNumBuckets; ++b) {
    const uint64_t lo = Histogram::BucketLowerBound(b);
    const uint64_t hi = Histogram::BucketLowerBound(b + 1) - 1;
    ASSERT_GT(lo, 0u);
    EXPECT_LE(static_cast<double>(hi - lo) / static_cast<double>(lo), 0.125)
        << "bucket " << b;
  }
}

// --- Percentiles vs a sorted-vector oracle ---

TEST(Histogram, QuantilesMatchOracleWithin12Percent) {
  Histogram h;
  Rng rng(7);
  std::vector<uint64_t> values;
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform spread so every octave gets samples.
    const uint64_t v = uint64_t{1} << rng.UniformInt(28);
    const uint64_t sample = v + rng.UniformInt(v);
    values.push_back(sample);
    h.Record(sample);
  }
  std::sort(values.begin(), values.end());
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, values.size());
  EXPECT_EQ(snap.max, values.back());
  for (double q : {0.5, 0.9, 0.95, 0.99, 1.0}) {
    // Mirror ValueAtQuantile's rank rule: 1-based floor(q*n) clamped to
    // [1, n]; the oracle is that order statistic from the sorted samples.
    uint64_t rank =
        static_cast<uint64_t>(q * static_cast<double>(values.size()));
    rank = std::max<uint64_t>(1, std::min<uint64_t>(rank, values.size()));
    const uint64_t oracle = values[rank - 1];
    const uint64_t reported = snap.ValueAtQuantile(q);
    // Reported value is the bucket upper bound (clamped to max): never below
    // the true order statistic's bucket lower bound, never more than 12.5%
    // above the true value.
    EXPECT_GE(reported, Histogram::BucketLowerBound(Histogram::BucketFor(oracle)))
        << "q=" << q;
    EXPECT_LE(static_cast<double>(reported),
              static_cast<double>(oracle) * 1.125 + 1.0)
        << "q=" << q;
  }
  // Degenerate cases.
  Histogram empty;
  EXPECT_EQ(empty.Snapshot().ValueAtQuantile(0.99), 0u);
}

TEST(Histogram, ConcurrentRecordingKeepsTotals) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<uint64_t>(t) * 1000 + (i % 997));
      }
    });
  }
  for (auto& t : threads) t.join();
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  EXPECT_EQ(snap.max, 7 * 1000 + 996u);
}

// --- Snapshot merge / delta round-trips ---

TEST(HistogramSnapshot, MergeAndDeltaRoundTrip) {
  Histogram a, b;
  for (uint64_t v : {3u, 70u, 900u, 40000u}) a.Record(v);
  for (uint64_t v : {5u, 80u, 1000u}) b.Record(v);
  HistogramSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  EXPECT_EQ(merged.count, 7u);
  EXPECT_EQ(merged.sum, 3 + 70 + 900 + 40000 + 5 + 80 + 1000u);
  EXPECT_EQ(merged.max, 40000u);

  // Delta recovers exactly the samples recorded between two snapshots.
  const HistogramSnapshot before = a.Snapshot();
  a.Record(123456);
  a.Record(99);
  const HistogramSnapshot delta = a.Snapshot().Delta(before);
  EXPECT_EQ(delta.count, 2u);
  EXPECT_EQ(delta.sum, 123456 + 99u);
  EXPECT_GE(delta.ValueAtQuantile(1.0), 123456u);
}

TEST(MetricRegistry, SnapshotMergeAndExposition) {
  MetricRegistry reg;
  reg.GetCounter("test.ops")->Add(5);
  reg.GetGauge("test.depth")->Set(-3);
  reg.GetHistogram("test.lat_ns")->Record(1000);
  // Same name returns the same object.
  EXPECT_EQ(reg.GetCounter("test.ops"), reg.GetCounter("test.ops"));

  RegistrySnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.at("test.ops"), 5u);
  EXPECT_EQ(snap.gauges.at("test.depth"), -3);
  EXPECT_EQ(snap.histograms.at("test.lat_ns").count, 1u);

  // Merging a second snapshot accumulates overlapping names and unions the
  // rest.
  MetricRegistry other;
  other.GetCounter("test.ops")->Add(7);
  other.GetCounter("test.other")->Add(1);
  snap.Merge(other.Snapshot());
  EXPECT_EQ(snap.counters.at("test.ops"), 12u);
  EXPECT_EQ(snap.counters.at("test.other"), 1u);

  const std::string prom = snap.ToPrometheusText();
  EXPECT_NE(prom.find("coconut_test_ops 12"), std::string::npos) << prom;
  EXPECT_NE(prom.find("coconut_test_lat_ns"), std::string::npos) << prom;
  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"test.ops\""), std::string::npos) << json;
}

TEST(MetricRegistry, PrometheusExpositionGoldenFormat) {
  // Exact-string golden for the full exposition of one counter, one gauge,
  // and one histogram. Guards the cumulative-histogram contract scrapers
  // depend on: `_bucket{le="..."}` counts are monotone cumulative, the
  // `le="+Inf"` bucket equals `_count`, `le` bounds are the histogram's
  // native-unit bucket upper bounds, and quantiles/max live under derived
  // gauge names (one TYPE per metric name).
  MetricRegistry reg;
  reg.GetCounter("golden.ops")->Add(42);
  reg.GetGauge("golden.depth")->Set(-3);
  Histogram* h = reg.GetHistogram("golden.lat_ns");
  h->Record(2);  // values 0..7 land in exact unit-wide buckets
  h->Record(2);
  h->Record(5);

  const std::string expected =
      "# TYPE coconut_golden_ops counter\n"
      "coconut_golden_ops 42\n"
      "# TYPE coconut_golden_depth gauge\n"
      "coconut_golden_depth -3\n"
      "# TYPE coconut_golden_lat_ns histogram\n"
      "coconut_golden_lat_ns_bucket{le=\"2\"} 2\n"
      "coconut_golden_lat_ns_bucket{le=\"5\"} 3\n"
      "coconut_golden_lat_ns_bucket{le=\"+Inf\"} 3\n"
      "coconut_golden_lat_ns_sum 9\n"
      "coconut_golden_lat_ns_count 3\n"
      "# TYPE coconut_golden_lat_ns_max gauge\n"
      "coconut_golden_lat_ns_max 5\n"
      "# TYPE coconut_golden_lat_ns_quantiles gauge\n"
      "coconut_golden_lat_ns_quantiles{quantile=\"0.5\"} 2\n"
      "coconut_golden_lat_ns_quantiles{quantile=\"0.95\"} 2\n"
      "coconut_golden_lat_ns_quantiles{quantile=\"0.99\"} 2\n";
  EXPECT_EQ(reg.Snapshot().ToPrometheusText(), expected);
}

TEST(MetricRegistry, PrometheusBucketsStayCumulativeAcrossOctaves) {
  // Property check on wide-range samples: every emitted _bucket count is
  // monotone nondecreasing and the series ends exactly at _count.
  MetricRegistry reg;
  Histogram* h = reg.GetHistogram("wide.lat_ns");
  for (uint64_t v : {3u, 900u, 1000u, 65536u, 1u << 30}) h->Record(v);
  const std::string prom = reg.Snapshot().ToPrometheusText();

  std::istringstream lines(prom);
  uint64_t prev = 0, last = 0, inf = 0;
  size_t bucket_lines = 0;
  for (std::string line; std::getline(lines, line);) {
    if (line.rfind("coconut_wide_lat_ns_bucket{", 0) != 0) continue;
    ++bucket_lines;
    const uint64_t v = std::stoull(line.substr(line.rfind(' ') + 1));
    EXPECT_GE(v, prev) << line;
    prev = v;
    last = v;
    if (line.find("le=\"+Inf\"") != std::string::npos) inf = v;
  }
  EXPECT_EQ(bucket_lines, 6u);  // 5 distinct buckets + the +Inf bucket
  EXPECT_EQ(inf, 5u);
  EXPECT_EQ(last, inf);  // +Inf is last and equals _count
  EXPECT_NE(prom.find("coconut_wide_lat_ns_count 5"), std::string::npos);
}

// --- Timers ---

TEST(ScopedTimer, RecordsElapsedIntoHistogram) {
  Histogram h;
  {
    ScopedTimer t(&h);
  }
  EXPECT_EQ(h.Snapshot().count, 1u);
  {
    ScopedTimer t(nullptr);  // null sink is a no-op, not a crash
  }
  uint64_t sink = 0;
  {
    ScopedStageTimer t(&sink);
  }
  {
    ScopedStageTimer t(&sink);  // accumulates, not overwrites
  }
  EXPECT_GE(sink, 0u);
  Stopwatch w;
  EXPECT_GE(w.ElapsedNanos() + 1, 1u);  // monotone, non-crashing
}

// --- QueryEngine integration: a real batch populates traces + registry ---

TEST(QueryEngineObs, BatchPopulatesTracesAndRegistry) {
  ScratchDir dir;
  const std::string raw = dir.File("data.bin");
  const size_t kCount = 800, kLength = 64;
  auto data = MakeDatasetFile(raw, DatasetKind::kRandomWalk, kCount, kLength, 3);

  CoconutOptions opts;
  opts.summary.series_length = kLength;
  opts.summary.segments = 8;
  opts.leaf_capacity = 32;
  opts.tmp_dir = dir.path();
  ASSERT_OK(CoconutTree::Build(raw, dir.File("t.idx"), opts));
  std::unique_ptr<CoconutTree> tree;
  ASSERT_OK(CoconutTree::Open(dir.File("t.idx"), raw, &tree));

  const RegistrySnapshot before = MetricRegistry::Default().Snapshot();

  ThreadPool pool(2);
  QueryEngine engine(&pool);
  std::vector<Series> qs(data.begin(), data.begin() + 8);
  QuerySpec spec;
  spec.mode = QuerySpec::Mode::kExact;
  std::vector<SearchResult> results;
  std::vector<QueryTrace> traces;
  ASSERT_OK(engine.ExecuteBatch(*tree, qs, spec, &results, &traces));
  ASSERT_EQ(results.size(), qs.size());
  ASSERT_EQ(traces.size(), qs.size());

  for (size_t i = 0; i < traces.size(); ++i) {
    // Each query visited at least its own leaf and fetched records; the
    // trace's fetch count is the same counter SearchResult reports.
    EXPECT_GT(traces[i].leaves_visited, 0u) << "query " << i;
    EXPECT_GT(traces[i].records_fetched, 0u) << "query " << i;
    EXPECT_EQ(traces[i].records_fetched, results[i].visited_records)
        << "query " << i;
    EXPECT_GT(traces[i].total_ns, 0u) << "query " << i;
  }

  // The registry saw the batch: query counters and stage timers moved.
  const RegistrySnapshot after = MetricRegistry::Default().Snapshot();
  auto counter_delta = [&](const std::string& name) {
    const auto now = after.counters.find(name);
    const auto then = before.counters.find(name);
    return (now == after.counters.end() ? 0 : now->second) -
           (then == before.counters.end() ? 0 : then->second);
  };
  EXPECT_EQ(counter_delta("query.count"), qs.size());
  EXPECT_EQ(counter_delta("query.batches"), 1u);
  EXPECT_GT(counter_delta("query.leaves_visited"), 0u);
  EXPECT_GT(counter_delta("query.records_fetched"), 0u);
  EXPECT_GT(counter_delta("query.stage.refine_ns"), 0u);
  const auto lat = after.histograms.find("query.exact.latency_ns");
  ASSERT_NE(lat, after.histograms.end());
  HistogramSnapshot d = lat->second;
  const auto lat_before = before.histograms.find("query.exact.latency_ns");
  if (lat_before != before.histograms.end()) d = d.Delta(lat_before->second);
  EXPECT_EQ(d.count, qs.size());
  EXPECT_GT(d.ValueAtQuantile(0.99), 0u);
}

}  // namespace
}  // namespace coconut
