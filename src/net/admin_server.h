// Embedded HTTP/1.1 admin endpoint: the network frontend for the obs
// subsystem (ROADMAP "network frontend" item — the server only needs to
// serve strings the obs layer already produces).
//
// One dedicated thread runs a blocking accept loop (poll-gated so Stop()
// is prompt) and serves each connection to completion before accepting the
// next. That is deliberate: every endpoint renders a snapshot string in
// microseconds-to-milliseconds, the expected client is one curl or one
// scrape loop, and a serial server cannot amplify load on the engine it is
// observing. /tracez is the one slow endpoint (it sleeps for the capture
// window) and simply occupies the server for that window.
//
// Endpoints (GET only; anything else is 405, unknown paths 404):
//   /metrics                 Prometheus text exposition of the default
//                            metric registry
//   /metrics.json            the same snapshot as JSON
//   /healthz                 "ok\n" with 200; "degraded: <detail>\n" with
//                            200 when the health probe reports degraded
//                            (serving, but over a partial view — e.g. a
//                            quarantined shard); the failure string with
//                            503 when it reports unavailable
//   /statusz                 build/runtime facts: build type, compiler,
//                            SIMD kernel backend, uptime, thread-pool
//                            size, data-integrity summary (CRC32C backend,
//                            checksums verified/failed, quarantined
//                            shards, journal checkpoints), current gauge
//                            values
//   /queryz                  slow-query log (recent + over-threshold
//                            rings) as JSON
//   /tracez?duration_ms=N    records a live trace window of N ms
//                            (default 200, clamped to [1, 10000]) and
//                            returns Chrome trace-event JSON — load the
//                            response straight into Perfetto
//
// The server binds 127.0.0.1 only. It is an operator loopback port, not a
// public surface: no TLS, no auth, no request bodies.
#ifndef COCONUT_NET_ADMIN_SERVER_H_
#define COCONUT_NET_ADMIN_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "src/common/status.h"
#include "src/common/sync.h"

namespace coconut {

class AdminServer {
 public:
  AdminServer() = default;
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = kernel-assigned ephemeral port, see
  /// port()) and starts the serve thread. Fails if already running or the
  /// bind/listen fails.
  Status Start(uint16_t port);

  /// Stops the serve thread and closes the listening socket. Idempotent
  /// and safe against concurrent Start/Stop from other threads. An
  /// in-flight request (e.g. a /tracez window) is allowed to finish.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound port (resolves the ephemeral port after Start(0)).
  uint16_t port() const { return port_.load(std::memory_order_acquire); }

  /// Tri-state health reported by the probe backing /healthz.
  struct HealthStatus {
    enum class State {
      kOk,           // 200 "ok"
      kDegraded,     // 200 "degraded: <detail>" — serving a partial view
      kUnavailable,  // 503 "<detail>"
    };
    State state = State::kOk;
    std::string detail;
  };

  /// Health probe backing /healthz. Unset means always healthy. Typically
  /// wired to ShardedStore: WriteHealth poison -> kUnavailable, quarantined
  /// shards -> kDegraded (reads still answer over the healthy shards).
  using HealthProbe = std::function<HealthStatus()>;
  void SetHealthProbe(HealthProbe probe);

  /// Binary convenience wrapper over SetHealthProbe: OK -> kOk, non-OK ->
  /// kUnavailable with the status text as detail.
  using HealthCheck = std::function<Status()>;
  void SetHealthCheck(HealthCheck check);

  /// One routed response; Handle() is the whole server minus the sockets,
  /// exposed so tests can exercise routing without a port.
  struct Response {
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
  };
  Response Handle(const std::string& method, const std::string& target);

  /// Starts a process-wide server when COCONUT_ADMIN_PORT is set (port 0
  /// for ephemeral is honored; the chosen port is printed to stderr).
  /// Returns the server (leaked, lives until process exit) or nullptr when
  /// the env var is unset or the bind failed.
  static AdminServer* MaybeStartFromEnv();

 private:
  /// The accept loop owns its listening socket by value: the serve thread
  /// never touches lifecycle state, so Stop() can join it while holding
  /// lifecycle_mu_ without deadlock.
  void ServeLoop(int listen_fd);
  void HandleConnection(int fd);

  std::atomic<bool> running_{false};
  // Serializes Start/Stop (either may be called from any thread; the
  // destructor runs Stop too).
  mutable Mutex lifecycle_mu_;
  int listen_fd_ GUARDED_BY(lifecycle_mu_) = -1;
  // coconut-lint: allow(raw-thread) -- dedicated blocking accept loop; the
  // shared ThreadPool must never be occupied by an indefinite poll() wait.
  std::thread thread_ GUARDED_BY(lifecycle_mu_);
  // Atomics, not lifecycle_mu_: read by port()/Handle() on other threads
  // while Start holds the lock.
  std::atomic<uint16_t> port_{0};
  std::atomic<uint64_t> start_ns_{0};  // Tracer::NowNanos() at Start

  mutable Mutex health_mu_;
  HealthProbe health_ GUARDED_BY(health_mu_);
};

}  // namespace coconut

#endif  // COCONUT_NET_ADMIN_SERVER_H_
