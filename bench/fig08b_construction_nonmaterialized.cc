// Figure 8b: construction time for the NON-MATERIALIZED indexes as the
// memory budget shrinks. Paper result: with ample memory ADS+ is slightly
// faster than Coconut-Tree (6.3 vs 7.8 min in the paper's setup), but as
// memory tightens ADS+'s buffered top-down inserts turn into random I/O and
// Coconut-Tree wins; Coconut-Trie pays for subtree compaction; R-tree+
// mirrors the slow materialized R-tree.
#include "bench/bench_util.h"
#include "src/baselines/ads/ads_index.h"
#include "src/baselines/rtree/rtree.h"
#include "src/core/coconut_tree.h"
#include "src/core/coconut_trie.h"

namespace coconut {
namespace bench {
namespace {

constexpr size_t kLength = 256;
constexpr size_t kLeafCapacity = 2000;

SummaryOptions Summary() {
  SummaryOptions s;
  s.series_length = kLength;
  s.segments = 16;
  s.cardinality_bits = 8;
  return s;
}

void Run() {
  Banner("Figure 8b",
         "construction time, non-materialized indexes, shrinking memory");
  const size_t count = 80000 * Scale();
  BenchDir dir;
  const std::string raw = PrepareDataset(dir, DatasetKind::kRandomWalk, count,
                                         kLength, 12, "data.bin");
  std::printf("dataset: %zu series x %zu points (%.0f MB raw)\n\n", count,
              kLength, count * kLength * 4 / 1048576.0);

  PrintHeader({"method", "budget", "build_time", "rand_io", "seq_io"});
  const std::vector<std::pair<const char*, size_t>> budgets = {
      {"ample(256MB)", 256ull << 20},
      {"medium(2MB)", 2ull << 20},
      {"small(1MB)", 1ull << 20},
  };
  for (const auto& [label, budget] : budgets) {
    {
      CoconutOptions opts;
      opts.summary = Summary();
      opts.leaf_capacity = kLeafCapacity;
      opts.memory_budget_bytes = budget;
      opts.tmp_dir = dir.path();
      Measured m;
      CheckOk(CoconutTree::Build(raw, dir.File("ctree.idx"), opts),
              "CTree build");
      const IoSnapshot io = m.io();
      PrintRow({"CTree", label, FmtSeconds(m.seconds()),
                FmtCount(io.random_read_ops + io.random_write_ops),
                FmtCount(io.seq_read_ops() + io.seq_write_ops())});
    }
    {
      CoconutOptions opts;
      opts.summary = Summary();
      opts.leaf_capacity = kLeafCapacity;
      opts.memory_budget_bytes = budget;
      opts.tmp_dir = dir.path();
      Measured m;
      CheckOk(CoconutTrie::Build(raw, dir.File("ctrie.idx"), opts),
              "CTrie build");
      const IoSnapshot io = m.io();
      PrintRow({"CTrie", label, FmtSeconds(m.seconds()),
                FmtCount(io.random_read_ops + io.random_write_ops),
                FmtCount(io.seq_read_ops() + io.seq_write_ops())});
    }
    {
      AdsOptions opts;
      opts.summary = Summary();
      opts.leaf_capacity = kLeafCapacity;
      opts.memory_budget_bytes = budget;
      std::unique_ptr<AdsIndex> index;
      Measured m;
      CheckOk(AdsIndex::Build(raw, dir.File("adsplus.pages"), opts, &index),
              "ADS+ build");
      const IoSnapshot io = m.io();
      PrintRow({"ADS+", label, FmtSeconds(m.seconds()),
                FmtCount(io.random_read_ops + io.random_write_ops),
                FmtCount(io.seq_read_ops() + io.seq_write_ops())});
    }
    {
      RtreeOptions opts;
      opts.summary = Summary();
      opts.leaf_capacity = kLeafCapacity;
      opts.memory_budget_bytes = budget;
      opts.tmp_dir = dir.path();
      std::unique_ptr<RTree> tree;
      Measured m;
      CheckOk(RTree::Build(raw, dir.File("rtreeplus.pages"), opts, &tree),
              "R-tree+ build");
      const IoSnapshot io = m.io();
      PrintRow({"R-tree+", label, FmtSeconds(m.seconds()),
                FmtCount(io.random_read_ops + io.random_write_ops),
                FmtCount(io.seq_read_ops() + io.seq_write_ops())});
    }
  }
  std::printf(
      "\nExpectation (paper Fig 8b): ADS+ competitive (or slightly ahead)\n"
      "with ample memory; CTree overtakes it as the budget shrinks; CTrie\n"
      "pays compaction overhead; R-tree+ trails due to per-dimension "
      "sorting.\n");
}

}  // namespace
}  // namespace bench
}  // namespace coconut

int main() {
  coconut::bench::Run();
  return 0;
}
