// QueryEngine: concurrent batch execution of approximate/exact k-NN queries
// over Coconut indexes.
//
// A batch is distributed over the shared ThreadPool; each worker carries a
// per-thread scratch (CoconutTree::QueryScratch / CoconutTrie::QueryScratch)
// so the (const, thread-safe) read paths never contend on shared buffers.
// Forest batches take ONE snapshot up front, so every query in the batch
// observes the same point-in-time state while writers keep
// inserting/flushing/compacting underneath. Store batches do the same with
// one ShardedStore::Snapshot, and additionally fan each query out across
// the per-shard snapshots: the work grid is (query x shard) cells under
// ParallelFor, with per-query results merged through KnnCollector
// (ShardedStore::MergeShardResults), so even a single expensive query uses
// every core.
//
// Batch visibility: a store snapshot is captured under the store's
// visibility lock and is stamped with the last committed cross-shard epoch
// (Snapshot::epoch), so a batch never observes half of a concurrent
// multi-shard InsertBatch — the read-skew window where some shards showed
// their slice of a batch and others did not is closed at the store layer
// (see src/store/README.md, "Cross-shard atomic commit").
//
// Results are positionally aligned with the input queries and identical to
// running the same queries serially (the engine only parallelizes across
// queries and shards; each individual per-shard query is the ordinary
// search algorithm).
#ifndef COCONUT_EXEC_QUERY_ENGINE_H_
#define COCONUT_EXEC_QUERY_ENGINE_H_

#include <cstddef>
#include <vector>

#include "src/common/context.h"
#include "src/common/status.h"
#include "src/core/coconut_forest.h"
#include "src/core/coconut_tree.h"
#include "src/core/coconut_trie.h"
#include "src/exec/admission_controller.h"
#include "src/exec/thread_pool.h"
#include "src/obs/query_trace.h"
#include "src/series/series.h"
#include "src/store/sharded_store.h"

namespace coconut {

/// What to run for every query in a batch.
struct QuerySpec {
  enum class Mode { kExact, kApprox };
  Mode mode = Mode::kExact;
  /// Neighbors to return per query.
  size_t k = 1;
  /// Leaf-window radius: the window for kApprox, the seeding radius for
  /// kExact.
  size_t approx_leaves = 1;
};

class QueryEngine {
 public:
  /// Uses the given pool (defaults to the process-wide shared pool). When
  /// `admission` is non-null every batch passes its gates first and may be
  /// shed with ResourceExhausted before any work is queued (see
  /// src/exec/admission_controller.h); null = no gating, no overhead.
  explicit QueryEngine(ThreadPool* pool = ThreadPool::Shared(),
                       AdmissionController* admission = nullptr)
      : pool_(pool), admission_(admission) {}

  /// Runs every query against `tree`; `results` is resized to match
  /// `queries` and results are positionally aligned. On error the first
  /// failing status is returned (remaining queries may or may not have run).
  ///
  /// Every overload records per-query latency and work counters into the
  /// process-wide MetricRegistry ("query.*"), and — when `traces` is
  /// non-null — additionally returns the per-query QueryTrace, positionally
  /// aligned with `queries`.
  ///
  /// `ctx` bounds the batch: its deadline/cancellation is polled at leaf-
  /// fetch granularity inside every search (default Background() = no
  /// deadline, one pointer compare per poll). On DeadlineExceeded/Aborted
  /// the first failing status is returned; `results` entries for queries
  /// that had not finished are unspecified (default-constructed or partial
  /// never dangling). `ctx` must outlive the call only — it is not retained.
  Status ExecuteBatch(const CoconutTree& tree,
                      const std::vector<Series>& queries,
                      const QuerySpec& spec,
                      std::vector<SearchResult>* results,
                      std::vector<QueryTrace>* traces = nullptr,
                      const Context& ctx = Context::Background()) const;

  /// Snapshot-isolated batch over a forest: takes one snapshot and runs
  /// every query against it, concurrently with any writers.
  Status ExecuteBatch(const CoconutForest& forest,
                      const std::vector<Series>& queries,
                      const QuerySpec& spec,
                      std::vector<SearchResult>* results,
                      std::vector<QueryTrace>* traces = nullptr,
                      const Context& ctx = Context::Background()) const;

  /// Same, against a caller-held snapshot (e.g. to run several batches
  /// against the exact same state).
  Status ExecuteBatch(const CoconutForest& forest,
                      const CoconutForest::Snapshot& snapshot,
                      const std::vector<Series>& queries,
                      const QuerySpec& spec,
                      std::vector<SearchResult>* results,
                      std::vector<QueryTrace>* traces = nullptr,
                      const Context& ctx = Context::Background()) const;

  /// Runs every query against a (const, thread-safe) trie.
  Status ExecuteBatch(const CoconutTrie& trie,
                      const std::vector<Series>& queries,
                      const QuerySpec& spec,
                      std::vector<SearchResult>* results,
                      std::vector<QueryTrace>* traces = nullptr,
                      const Context& ctx = Context::Background()) const;

  /// Store-wide snapshot-isolated batch: takes one ShardedStore::Snapshot
  /// and fans every query out across the per-shard snapshots (the work
  /// grid is query x shard), merging per-shard answers per query. A
  /// query's trace is the merge of its per-shard cell traces (its
  /// total_ns is summed work time, not wall time, since cells run
  /// concurrently).
  Status ExecuteBatch(const ShardedStore& store,
                      const std::vector<Series>& queries,
                      const QuerySpec& spec,
                      std::vector<SearchResult>* results,
                      std::vector<QueryTrace>* traces = nullptr,
                      const Context& ctx = Context::Background()) const;

  /// Same, against a caller-held store snapshot.
  Status ExecuteBatch(const ShardedStore& store,
                      const ShardedStore::Snapshot& snapshot,
                      const std::vector<Series>& queries,
                      const QuerySpec& spec,
                      std::vector<SearchResult>* results,
                      std::vector<QueryTrace>* traces = nullptr,
                      const Context& ctx = Context::Background()) const;

 private:
  /// Passes the admission gates (no-op without a controller). On success
  /// `*ticket` holds the batch's budget for the caller's scope.
  Status Admit(const std::vector<Series>& queries,
               AdmissionController::Ticket* ticket) const;

  ThreadPool* pool_;
  AdmissionController* admission_;
};

}  // namespace coconut

#endif  // COCONUT_EXEC_QUERY_ENGINE_H_
