// Buffered sequential reader/writer built on the instrumented file wrappers.
// The buffer size is the unit at which I/O reaches the counted layer, so it
// plays the role of the block size B in the paper's disk-access-model
// analysis.
//
// Both classes optionally overlap I/O with the caller's compute:
// EnablePrefetch / EnableAsyncFlush hand the next block's read (resp. the
// full buffer's append) to a ThreadPool as a OneShotTask. Exactly one I/O is
// in flight per stream, so file offsets stay sequential, and the claim-or-
// wait protocol of OneShotTask keeps nested use on a saturated pool
// deadlock-free. Without a pool the behavior is the original synchronous
// one; toggling never changes the bytes produced or consumed.
#ifndef COCONUT_IO_BUFFERED_IO_H_
#define COCONUT_IO_BUFFERED_IO_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/io/file.h"

namespace coconut {

class ThreadPool;
class OneShotTask;

/// Default buffer of 256 KiB: large enough that sequential scans are cheap,
/// small enough that dozens of merge inputs fit in a modest memory budget.
inline constexpr size_t kDefaultIoBufferBytes = 256 * 1024;

class BufferedWriter {
 public:
  explicit BufferedWriter(size_t buffer_bytes = kDefaultIoBufferBytes)
      : capacity_(buffer_bytes) {}
  ~BufferedWriter();

  Status Open(const std::string& path);

  /// Flushes full buffers in the background on `pool` while the caller keeps
  /// filling the other buffer. Call before or after Open, but not while a
  /// flush may be outstanding.
  void EnableAsyncFlush(ThreadPool* pool) { pool_ = pool; }

  Status Write(const void* data, size_t n);

  /// Flushes buffered bytes and closes the file.
  Status Finish();

  uint64_t bytes_written() const { return bytes_written_; }

 private:
  Status FlushBuffer();
  /// Joins the outstanding background append (if any) and returns its status.
  Status WaitAsyncFlush();

  size_t capacity_;
  std::vector<uint8_t> buffer_;
  std::unique_ptr<WritableFile> file_;
  uint64_t bytes_written_ = 0;

  ThreadPool* pool_ = nullptr;
  std::vector<uint8_t> flush_buffer_;        // block being appended
  std::shared_ptr<OneShotTask> flush_task_;  // outstanding background append
  Status flush_status_;                      // written by the task
};

class BufferedReader {
 public:
  explicit BufferedReader(size_t buffer_bytes = kDefaultIoBufferBytes)
      : capacity_(buffer_bytes) {}
  ~BufferedReader();

  Status Open(const std::string& path);

  /// Reads the block after the current one in the background on `pool`; each
  /// Refill swaps it in and immediately schedules the next. Enable before
  /// the first Read (typically right after Open).
  void EnablePrefetch(ThreadPool* pool) { pool_ = pool; }

  /// Caps reads (including prefetch) at `end_offset` bytes into the file,
  /// as if the file ended there. Call after Open; used by merge cursors
  /// that consume a slice of a run so prefetch never crosses into another
  /// partition's byte range.
  void LimitReadsTo(uint64_t end_offset) {
    limit_ = std::min(end_offset, file_size());
  }

  /// Reads exactly `n` bytes; returns IOError at EOF.
  Status Read(void* out, size_t n);

  /// Skips `n` bytes forward.
  Status Skip(uint64_t n);

  uint64_t file_size() const { return file_ ? file_->size() : 0; }
  uint64_t position() const { return position_; }
  bool AtEnd() const { return position_ >= file_size(); }

 private:
  Status Refill();
  void SchedulePrefetch();
  /// Joins the outstanding prefetch (if any), discarding its result.
  void DrainPrefetch();

  size_t capacity_;
  std::vector<uint8_t> buffer_;
  size_t buffer_pos_ = 0;
  size_t buffer_len_ = 0;
  uint64_t position_ = 0;       // logical read position in the file
  uint64_t buffer_start_ = 0;   // file offset of buffer_[0]
  uint64_t limit_ = 0;          // readable end offset (== file size unless capped)
  std::unique_ptr<RandomAccessFile> file_;

  ThreadPool* pool_ = nullptr;
  std::vector<uint8_t> next_buffer_;            // block being prefetched
  std::shared_ptr<OneShotTask> prefetch_task_;  // outstanding background read
  uint64_t prefetch_offset_ = 0;
  size_t prefetch_len_ = 0;
  Status prefetch_status_;  // written by the task
};

}  // namespace coconut

#endif  // COCONUT_IO_BUFFERED_IO_H_
