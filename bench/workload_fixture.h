// Shared driver for the Figure 10b/10c complete-workload benches:
// index construction + 100 exact queries under shrinking memory budgets.
#ifndef COCONUT_BENCH_WORKLOAD_FIXTURE_H_
#define COCONUT_BENCH_WORKLOAD_FIXTURE_H_

#include "bench/bench_util.h"
#include "bench/query_fixture.h"

namespace coconut {
namespace bench {

inline void RunWorkload(DatasetKind kind, const char* figure, uint64_t seed) {
  const size_t count = 20000 * Scale();
  const size_t queries = 50;
  PrintHeader({"budget", "method", "total_time", "idx_size"});
  for (const auto& [label, budget] :
       std::vector<std::pair<const char*, size_t>>{
           {"ample(256MB)", 256ull << 20}, {"small(2MB)", 2ull << 20}}) {
    BenchDir dir;
    const std::string raw =
        PrepareDataset(dir, kind, count, size_t{256}, seed, "data.bin");
    auto qs = MakeQueries(kind, queries, size_t{256}, seed + 1);

    auto report = [&](const char* name, double seconds, uint64_t bytes) {
      PrintRow({label, name, FmtSeconds(seconds), FmtMb(bytes)});
    };
    {  // CTree
      CoconutOptions opts;
      opts.summary = DefaultSummary(size_t{256});
      opts.leaf_capacity = 100;
      opts.memory_budget_bytes = budget;
      opts.tmp_dir = dir.path();
      Stopwatch w;
      CheckOk(CoconutTree::Build(raw, dir.File("ctree.idx"), opts), "build");
      std::unique_ptr<CoconutTree> tree;
      CheckOk(CoconutTree::Open(dir.File("ctree.idx"), raw, &tree), "open");
      for (const Series& q : qs) {
        SearchResult r;
        CheckOk(tree->ExactSearch(q.data(), 1, &r), "query");
      }
      uint64_t bytes = 0;
      CheckOk(tree->IndexSizeBytes(&bytes), "size");
      report("CTree", w.ElapsedSeconds(), bytes);
    }
    {  // CTreeFull
      CoconutOptions opts;
      opts.summary = DefaultSummary(size_t{256});
      opts.leaf_capacity = 100;
      opts.materialized = true;
      opts.memory_budget_bytes = budget;
      opts.tmp_dir = dir.path();
      Stopwatch w;
      CheckOk(CoconutTree::Build(raw, dir.File("ctreefull.idx"), opts),
              "build");
      std::unique_ptr<CoconutTree> tree;
      CheckOk(CoconutTree::Open(dir.File("ctreefull.idx"), raw, &tree),
              "open");
      for (const Series& q : qs) {
        SearchResult r;
        CheckOk(tree->ExactSearch(q.data(), 1, &r), "query");
      }
      uint64_t bytes = 0;
      CheckOk(tree->IndexSizeBytes(&bytes), "size");
      report("CTreeFull", w.ElapsedSeconds(), bytes);
    }
    {  // ADS+
      AdsOptions opts;
      opts.summary = DefaultSummary(size_t{256});
      opts.leaf_capacity = 100;
      opts.memory_budget_bytes = budget;
      std::unique_ptr<AdsIndex> index;
      Stopwatch w;
      CheckOk(AdsIndex::Build(raw, dir.File("adsplus.pages"), opts, &index),
              "build");
      for (const Series& q : qs) {
        SearchResult r;
        CheckOk(index->ExactSearch(q.data(), &r), "query");
      }
      report("ADS+", w.ElapsedSeconds(), index->StorageBytes());
    }
    {  // ADSFull
      AdsOptions opts;
      opts.summary = DefaultSummary(size_t{256});
      opts.leaf_capacity = 100;
      opts.materialized = true;
      opts.memory_budget_bytes = budget;
      std::unique_ptr<AdsIndex> index;
      Stopwatch w;
      CheckOk(AdsIndex::Build(raw, dir.File("adsfull.pages"), opts, &index),
              "build");
      for (const Series& q : qs) {
        SearchResult r;
        CheckOk(index->ExactSearch(q.data(), &r), "query");
      }
      report("ADSFull", w.ElapsedSeconds(), index->StorageBytes());
    }
  }
  std::printf(
      "\nExpectation (paper %s): Coconut-Tree wins once memory is\n"
      "constrained, materialized and non-materialized alike; the dataset is\n"
      "denser than random walk so every index prunes less.\n",
      figure);
}

}  // namespace bench
}  // namespace coconut

#endif  // COCONUT_BENCH_WORKLOAD_FIXTURE_H_
