#include "src/io/buffered_io.h"

#include <algorithm>
#include <cstring>

#include "src/exec/thread_pool.h"
#include "src/obs/trace.h"

namespace coconut {

BufferedWriter::~BufferedWriter() {
  // A queued-but-unstarted flush would touch freed buffers when it finally
  // runs; claim-or-wait retires it before members go away.
  (void)WaitAsyncFlush();
}

Status BufferedWriter::Open(const std::string& path) {
  buffer_.reserve(capacity_);
  return WritableFile::Create(path, &file_);
}

Status BufferedWriter::Write(const void* data, size_t n) {
  const uint8_t* src = static_cast<const uint8_t*>(data);
  while (n > 0) {
    const size_t room = capacity_ - buffer_.size();
    const size_t take = std::min(room, n);
    buffer_.insert(buffer_.end(), src, src + take);
    src += take;
    n -= take;
    if (buffer_.size() == capacity_) {
      COCONUT_RETURN_IF_ERROR(FlushBuffer());
    }
  }
  return Status::OK();
}

Status BufferedWriter::WaitAsyncFlush() {
  if (flush_task_ == nullptr) return Status::OK();
  flush_task_->Wait();
  flush_task_.reset();
  return flush_status_;
}

Status BufferedWriter::FlushBuffer() {
  if (buffer_.empty()) return WaitAsyncFlush();
  if (pool_ == nullptr) {
    COCONUT_RETURN_IF_ERROR(file_->Append(buffer_.data(), buffer_.size()));
    bytes_written_ += buffer_.size();
    buffer_.clear();
    return Status::OK();
  }
  // One append in flight: join the previous block, swap the filled buffer
  // into its place, and hand it to the pool. Appends therefore stay ordered.
  COCONUT_RETURN_IF_ERROR(WaitAsyncFlush());
  buffer_.swap(flush_buffer_);
  buffer_.clear();
  buffer_.reserve(capacity_);
  bytes_written_ += flush_buffer_.size();
  flush_task_ = std::make_shared<OneShotTask>([this]() {
    TraceSpan span("io.async_flush", "io");
    flush_status_ = file_->Append(flush_buffer_.data(), flush_buffer_.size());
  });
  OneShotTask::Schedule(pool_, flush_task_);
  return Status::OK();
}

Status BufferedWriter::Finish() {
  COCONUT_RETURN_IF_ERROR(FlushBuffer());
  COCONUT_RETURN_IF_ERROR(WaitAsyncFlush());
  return file_->Close();
}

BufferedReader::~BufferedReader() { DrainPrefetch(); }

Status BufferedReader::Open(const std::string& path) {
  DrainPrefetch();
  buffer_.resize(capacity_);
  buffer_pos_ = buffer_len_ = 0;
  position_ = buffer_start_ = 0;
  COCONUT_RETURN_IF_ERROR(RandomAccessFile::Open(path, &file_));
  limit_ = file_->size();
  return Status::OK();
}

void BufferedReader::DrainPrefetch() {
  if (prefetch_task_ == nullptr) return;
  prefetch_task_->Wait();
  prefetch_task_.reset();
}

void BufferedReader::SchedulePrefetch() {
  const uint64_t off = buffer_start_ + buffer_len_;
  if (pool_ == nullptr || off >= limit_) return;
  next_buffer_.resize(capacity_);
  prefetch_offset_ = off;
  prefetch_len_ =
      static_cast<size_t>(std::min<uint64_t>(limit_ - off, capacity_));
  prefetch_task_ = std::make_shared<OneShotTask>([this]() {
    TraceSpan span("io.prefetch", "io");
    prefetch_status_ =
        file_->Read(prefetch_offset_, prefetch_len_, next_buffer_.data());
  });
  OneShotTask::Schedule(pool_, prefetch_task_);
}

Status BufferedReader::Refill() {
  if (prefetch_task_ != nullptr) {
    prefetch_task_->Wait();
    prefetch_task_.reset();
    if (prefetch_offset_ == position_) {
      // The common sequential case: adopt the prefetched block.
      COCONUT_RETURN_IF_ERROR(prefetch_status_);
      buffer_.swap(next_buffer_);
      buffer_start_ = prefetch_offset_;
      buffer_pos_ = 0;
      buffer_len_ = prefetch_len_;
      SchedulePrefetch();
      return Status::OK();
    }
    // A Skip moved past the prefetched block; fall through to a plain read
    // (the prefetch result, good or bad, is irrelevant now).
  }
  buffer_start_ = position_;
  const uint64_t remaining =
      limit_ > position_ ? limit_ - position_ : 0;
  const size_t n = static_cast<size_t>(
      std::min<uint64_t>(remaining, capacity_));
  if (n == 0) {
    return Status::IOError("read past EOF in " + file_->path());
  }
  COCONUT_RETURN_IF_ERROR(file_->Read(buffer_start_, n, buffer_.data()));
  buffer_pos_ = 0;
  buffer_len_ = n;
  SchedulePrefetch();
  return Status::OK();
}

Status BufferedReader::Read(void* out, size_t n) {
  uint8_t* dst = static_cast<uint8_t*>(out);
  while (n > 0) {
    if (buffer_pos_ == buffer_len_) {
      COCONUT_RETURN_IF_ERROR(Refill());
    }
    const size_t take = std::min(n, buffer_len_ - buffer_pos_);
    std::memcpy(dst, buffer_.data() + buffer_pos_, take);
    dst += take;
    buffer_pos_ += take;
    position_ += take;
    n -= take;
  }
  return Status::OK();
}

Status BufferedReader::Skip(uint64_t n) {
  while (n > 0) {
    if (buffer_pos_ < buffer_len_) {
      const uint64_t in_buffer = buffer_len_ - buffer_pos_;
      const uint64_t take = std::min(in_buffer, n);
      buffer_pos_ += static_cast<size_t>(take);
      position_ += take;
      n -= take;
      continue;
    }
    // Skip whole buffers without reading them.
    if (position_ + n > file_size()) {
      return Status::IOError("skip past EOF in " + file_->path());
    }
    position_ += n;
    buffer_pos_ = buffer_len_ = 0;
    n = 0;
  }
  return Status::OK();
}

}  // namespace coconut
