// Global I/O instrumentation in the spirit of the disk access model the paper
// analyzes under (Aggarwal & Vitter). Every read/write issued through the
// src/io file wrappers is counted and classified as sequential (it starts
// exactly where the previous access on the same file ended) or random.
//
// The benchmark harnesses report these counters next to wall-clock time: on a
// laptop the OS page cache absorbs much of the physical cost of random I/O,
// but the counted block accesses preserve the complexity shape the paper
// reasons about (O(N) random I/Os for top-down insertion vs O(N/B) sequential
// I/Os for bottom-up bulk-loading).
#ifndef COCONUT_IO_IO_STATS_H_
#define COCONUT_IO_IO_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace coconut {

struct IoSnapshot {
  uint64_t read_ops = 0;
  uint64_t write_ops = 0;
  uint64_t random_read_ops = 0;
  uint64_t random_write_ops = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;

  uint64_t seq_read_ops() const { return read_ops - random_read_ops; }
  uint64_t seq_write_ops() const { return write_ops - random_write_ops; }

  IoSnapshot operator-(const IoSnapshot& other) const {
    IoSnapshot d;
    d.read_ops = read_ops - other.read_ops;
    d.write_ops = write_ops - other.write_ops;
    d.random_read_ops = random_read_ops - other.random_read_ops;
    d.random_write_ops = random_write_ops - other.random_write_ops;
    d.bytes_read = bytes_read - other.bytes_read;
    d.bytes_written = bytes_written - other.bytes_written;
    return d;
  }

  std::string ToString() const;
};

/// Process-wide I/O counters. Thread-safe.
class IoStats {
 public:
  static IoStats& Instance();

  void RecordRead(uint64_t bytes, bool random) {
    read_ops_.fetch_add(1, std::memory_order_relaxed);
    bytes_read_.fetch_add(bytes, std::memory_order_relaxed);
    if (random) random_read_ops_.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordWrite(uint64_t bytes, bool random) {
    write_ops_.fetch_add(1, std::memory_order_relaxed);
    bytes_written_.fetch_add(bytes, std::memory_order_relaxed);
    if (random) random_write_ops_.fetch_add(1, std::memory_order_relaxed);
  }

  IoSnapshot Snapshot() const {
    IoSnapshot s;
    s.read_ops = read_ops_.load(std::memory_order_relaxed);
    s.write_ops = write_ops_.load(std::memory_order_relaxed);
    s.random_read_ops = random_read_ops_.load(std::memory_order_relaxed);
    s.random_write_ops = random_write_ops_.load(std::memory_order_relaxed);
    s.bytes_read = bytes_read_.load(std::memory_order_relaxed);
    s.bytes_written = bytes_written_.load(std::memory_order_relaxed);
    return s;
  }

  void Reset() {
    read_ops_ = 0;
    write_ops_ = 0;
    random_read_ops_ = 0;
    random_write_ops_ = 0;
    bytes_read_ = 0;
    bytes_written_ = 0;
  }

 private:
  IoStats() = default;

  std::atomic<uint64_t> read_ops_{0};
  std::atomic<uint64_t> write_ops_{0};
  std::atomic<uint64_t> random_read_ops_{0};
  std::atomic<uint64_t> random_write_ops_{0};
  std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> bytes_written_{0};
};

}  // namespace coconut

#endif  // COCONUT_IO_IO_STATS_H_
