// SAX words: one discretized symbol per PAA segment (paper §2, Figure 1).
// A word is stored as one byte per segment at the maximum cardinality
// (cardinality_bits); iSAX's lower-cardinality symbols are prefixes of these
// bytes (see isax.h).
#ifndef COCONUT_SUMMARY_SAX_H_
#define COCONUT_SUMMARY_SAX_H_

#include <cstdint>
#include <vector>

#include "src/series/series.h"
#include "src/summary/options.h"

namespace coconut {

/// A SAX word at full cardinality: `segments` symbols, one byte each.
using SaxWord = std::vector<uint8_t>;

/// Discretizes PAA coefficients into SAX symbols at cardinality
/// 2^cardinality_bits.
void SaxFromPaa(const double* paa, const SummaryOptions& opts, uint8_t* out);

/// One-shot helper: raw series -> SAX word (computes PAA internally).
void SaxFromSeries(const Value* series, const SummaryOptions& opts,
                   uint8_t* out);

}  // namespace coconut

#endif  // COCONUT_SUMMARY_SAX_H_
