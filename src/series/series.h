// Core data series types. A data series is an ordered sequence of float32
// values (paper Definition 1); positions are implicit (0..n-1) since all
// datasets in the evaluation are fixed-interval.
#ifndef COCONUT_SERIES_SERIES_H_
#define COCONUT_SERIES_SERIES_H_

#include <cstddef>
#include <vector>

namespace coconut {

/// Raw value type. The original Coconut/ADS tooling stores float32 series in
/// headerless binary files; we keep the same convention.
using Value = float;

/// Owning series.
using Series = std::vector<Value>;

/// Non-owning view over a contiguous series.
struct SeriesView {
  const Value* data = nullptr;
  size_t length = 0;

  SeriesView() = default;
  SeriesView(const Value* d, size_t n) : data(d), length(n) {}
  // NOLINTNEXTLINE(google-explicit-constructor): views are cheap adapters.
  SeriesView(const Series& s) : data(s.data()), length(s.size()) {}

  const Value* begin() const { return data; }
  const Value* end() const { return data + length; }
  Value operator[](size_t i) const { return data[i]; }
};

}  // namespace coconut

#endif  // COCONUT_SERIES_SERIES_H_
