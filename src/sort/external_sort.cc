#include "src/sort/external_sort.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "src/common/env.h"
#include "src/exec/thread_pool.h"
#include "src/io/io_stats.h"
#include "src/io/retry.h"
#include "src/obs/stage_timer.h"
#include "src/obs/trace.h"
#include "src/sort/loser_tree.h"
#include "src/sort/record_sort.h"

namespace coconut {

namespace {

/// Hard floor for one merge input buffer: below one page the buffered
/// reader degenerates to per-record I/O.
constexpr size_t kMergeInputFloorBytes = 4 * 1024;

/// Preferred merge input buffer: drives how many runs one pass may consume.
constexpr size_t kMergeInputPreferredBytes = 64 * 1024;

/// Key-range partitions are only worth their boundary searches when each
/// gets a few thousand records.
constexpr uint64_t kMinRecordsPerPartition = 4096;

// The preferred size bounding fan-in must dominate the floor by enough
// that a legal group's buffers (double-buffered, so 2x) always fit the
// share without the floor binding — the invariant MergePlan asserts.
static_assert(kMergeInputPreferredBytes >= 4 * kMergeInputFloorBytes);

/// Single source of truth for merge-phase memory accounting. The merge
/// phase owns half the memory budget (run-generation buffers own the other
/// half); `share` is that half divided by the number of merges (or
/// key-range partitions) running concurrently. Fan-in is how many inputs
/// fit a share at the preferred buffer size, and the per-input size is the
/// share split over the actual group — so fan-in and buffer size can never
/// disagree about the budget, which the seed implementation's independent
/// 64 KiB clamps allowed.
struct MergePlan {
  size_t fan_in;
  size_t share;

  /// Buffer size for one of `k` inputs; `double_buffered` (the prefetching
  /// reader) halves it so the pair of blocks still fits the share.
  size_t InputBufferBytes(size_t k, bool double_buffered) const {
    // Every caller must group within the fan-in this plan derived from the
    // same share — the disagreement the seed implementation allowed.
    assert(k <= fan_in);
    const size_t ways = std::max<size_t>(1, k) * (double_buffered ? 2 : 1);
    const size_t per = std::max(kMergeInputFloorBytes, share / ways);
    // The total stays within the share except when the budget is already
    // below the physical minimum of fan_in == 2 floor-sized buffers (the
    // tiny-budget escape Validate permits); a fan-in derived from the
    // preferred size can never trigger the floor otherwise.
    assert(ways * per <= share || share < ways * kMergeInputFloorBytes);
    return per;
  }
};

MergePlan MakeMergePlan(const ExternalSortOptions& options,
                        size_t concurrent) {
  MergePlan plan;
  plan.share =
      options.memory_budget_bytes / 2 / std::max<size_t>(1, concurrent);
  plan.fan_in = std::max<size_t>(
      2, std::min(options.max_fan_in,
                  plan.share / kMergeInputPreferredBytes));
  return plan;
}

/// Stream over an in-memory sorted buffer.
class MemoryStream : public SortedRecordStream {
 public:
  MemoryStream(std::vector<uint8_t> data, size_t record_bytes)
      : data_(std::move(data)), record_bytes_(record_bytes) {}

  bool Next(uint8_t* out, Status* status) override {
    *status = Status::OK();
    if (pos_ + record_bytes_ > data_.size()) return false;
    std::memcpy(out, data_.data() + pos_, record_bytes_);
    pos_ += record_bytes_;
    return true;
  }

  uint64_t count() const override { return data_.size() / record_bytes_; }

 private:
  std::vector<uint8_t> data_;
  size_t record_bytes_;
  size_t pos_ = 0;
};

/// Stream over a record range of a sorted run file. With a pool the reader
/// prefetches the next block in the background.
class FileStream : public SortedRecordStream {
 public:
  FileStream(size_t record_bytes, size_t buffer_bytes)
      : record_bytes_(record_bytes), reader_(buffer_bytes) {}

  Status Open(const std::string& path, ThreadPool* prefetch_pool) {
    COCONUT_RETURN_IF_ERROR(reader_.Open(path));
    count_ = reader_.file_size() / record_bytes_;
    if (prefetch_pool != nullptr) reader_.EnablePrefetch(prefetch_pool);
    return Status::OK();
  }

  /// Opens records [first, first + n) of the run at `path`. Reads are
  /// capped at the slice end so prefetch never crosses into the byte range
  /// another partition is consuming.
  Status OpenSlice(const std::string& path, uint64_t first, uint64_t n,
                   ThreadPool* prefetch_pool) {
    COCONUT_RETURN_IF_ERROR(reader_.Open(path));
    COCONUT_RETURN_IF_ERROR(reader_.Skip(first * record_bytes_));
    reader_.LimitReadsTo((first + n) * record_bytes_);
    count_ = n;
    if (prefetch_pool != nullptr) reader_.EnablePrefetch(prefetch_pool);
    return Status::OK();
  }

  bool Next(uint8_t* out, Status* status) override {
    *status = Status::OK();
    if (read_ >= count_) return false;
    *status = reader_.Read(out, record_bytes_);
    if (!status->ok()) return false;
    ++read_;
    return true;
  }

  uint64_t count() const override { return count_; }

 private:
  size_t record_bytes_;
  BufferedReader reader_;
  uint64_t count_ = 0;
  uint64_t read_ = 0;
};

/// Concatenation of sorted slices: the key-range partitioned final merge
/// writes one file per range, and chaining them in range order *is* the
/// fully sorted output — no extra copy pass.
class ChainStream : public SortedRecordStream {
 public:
  explicit ChainStream(std::vector<std::unique_ptr<SortedRecordStream>> parts)
      : parts_(std::move(parts)) {
    for (const auto& p : parts_) count_ += p->count();
  }

  bool Next(uint8_t* out, Status* status) override {
    *status = Status::OK();
    while (cur_ < parts_.size()) {
      if (parts_[cur_]->Next(out, status)) return true;
      if (!status->ok()) return false;
      ++cur_;
    }
    return false;
  }

  uint64_t count() const override { return count_; }

 private:
  std::vector<std::unique_ptr<SortedRecordStream>> parts_;
  size_t cur_ = 0;
  uint64_t count_ = 0;
};

/// Loser-tree k-way merge of `inputs` into `writer`. Ties break on the
/// input index, so runs listed in arrival order merge stably.
Status MergeStreams(std::vector<std::unique_ptr<FileStream>>* inputs,
                    size_t record_bytes, size_t key_bytes,
                    BufferedWriter* writer) {
  const size_t k = inputs->size();
  if (k == 0) return Status::OK();
  struct Cursor {
    FileStream* stream;
    std::vector<uint8_t> record;
    bool valid = false;
  };
  std::vector<Cursor> cursors(k);
  for (size_t i = 0; i < k; ++i) {
    cursors[i].stream = (*inputs)[i].get();
    cursors[i].record.resize(record_bytes);
    Status st;
    cursors[i].valid = cursors[i].stream->Next(cursors[i].record.data(), &st);
    COCONUT_RETURN_IF_ERROR(st);
  }
  auto less = [&cursors, key_bytes](size_t a, size_t b) {
    if (!cursors[a].valid) return false;
    if (!cursors[b].valid) return true;
    const int cmp = std::memcmp(cursors[a].record.data(),
                                cursors[b].record.data(), key_bytes);
    if (cmp != 0) return cmp < 0;
    return a < b;
  };
  LoserTree<decltype(less)> tree(k, less);
  while (cursors[tree.winner()].valid) {
    Cursor& c = cursors[tree.winner()];
    COCONUT_RETURN_IF_ERROR(writer->Write(c.record.data(), record_bytes));
    Status st;
    c.valid = c.stream->Next(c.record.data(), &st);
    COCONUT_RETURN_IF_ERROR(st);
    tree.Replay();
  }
  return Status::OK();
}

/// Index of the first record in the run whose key is >= `pivot` (binary
/// search over positional key reads). Equal keys land entirely on one side,
/// which is what keeps range-partitioned merging byte-identical to a global
/// merge.
Status LowerBoundRecord(RandomAccessFile* file, size_t record_bytes,
                        size_t key_bytes, const uint8_t* pivot, uint64_t n,
                        uint64_t* out) {
  uint64_t lo = 0, hi = n;
  std::vector<uint8_t> key(key_bytes);
  while (lo < hi) {
    const uint64_t mid = lo + (hi - lo) / 2;
    COCONUT_RETURN_IF_ERROR(
        file->Read(mid * record_bytes, key_bytes, key.data()));
    if (std::memcmp(key.data(), pivot, key_bytes) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  *out = lo;
  return Status::OK();
}

/// Opens a reader over final sorted output. One budget rule for both exits
/// of Finish: `ways` concurrent drain buffers (doubled under prefetch)
/// share the merge half of the budget, capped at the default block size.
/// The stream may outlive the sorter, so it prefetches on the
/// never-destroyed shared pool, not a possibly sorter-owned one.
Status OpenDrainStream(const ExternalSortOptions& options, bool parallel,
                       const std::string& path, size_t ways,
                       std::unique_ptr<FileStream>* out) {
  const size_t drain_bytes = std::clamp<size_t>(
      options.memory_budget_bytes / 2 / (ways * (parallel ? 2 : 1)),
      kMergeInputFloorBytes, kDefaultIoBufferBytes);
  auto stream =
      std::make_unique<FileStream>(options.record_bytes, drain_bytes);
  COCONUT_RETURN_IF_ERROR(
      stream->Open(path, parallel ? ThreadPool::Shared() : nullptr));
  *out = std::move(stream);
  return Status::OK();
}

unsigned ResolveSortThreads(unsigned requested) {
  if (const char* env = std::getenv("COCONUT_SORT_THREADS")) {
    const unsigned long v = std::strtoul(env, nullptr, 10);
    if (v > 0) {
      requested = static_cast<unsigned>(
          std::min<unsigned long>(v, std::numeric_limits<unsigned>::max()));
    }
  }
  return requested;
}

}  // namespace

std::string ExternalSorter::SpillPath(const char* kind) {
  return JoinPath(options_.tmp_dir,
                  "sort-" + std::to_string(instance_token_) + "-" + kind +
                      "-" + std::to_string(next_run_id_++) + ".bin");
}

ExternalSorter::ExternalSorter(ExternalSortOptions options)
    : options_(std::move(options)) {
  static std::atomic<uint64_t> next_token{0};
  instance_token_ = next_token.fetch_add(1, std::memory_order_relaxed);
  const unsigned requested = ResolveSortThreads(options_.num_threads);
  if (requested == 1) {
    pool_ = nullptr;
    threads_ = 1;
  } else {
    ThreadPool* shared = ThreadPool::Shared();
    if (requested == 0 || requested == shared->parallelism()) {
      pool_ = shared;
      threads_ = shared->parallelism();
    } else {
      // An explicit width different from the shared pool gets its own
      // right-sized pool: num_threads then bounds run-generation chunking
      // too, not just merge concurrency.
      owned_pool_ = std::make_unique<ThreadPool>(requested);
      pool_ = owned_pool_.get();
      threads_ = requested;
    }
    if (threads_ < 2) {  // a 1-wide pool degenerates to serial
      owned_pool_.reset();
      pool_ = nullptr;
      threads_ = 1;
    }
  }
  // Reserve half the budget for run generation; the other half is available
  // to merge input buffers later (so the whole sorter respects the budget).
  // The serial path holds exactly one such buffer (records are written
  // through the sort permutation, no sorted copy); the parallel spill
  // pipeline holds two — one filling, one sorting/writing — so its ingest
  // peak is the full budget, the price of never stalling on the disk.
  buffer_capacity_records_ = std::min<size_t>(
      std::numeric_limits<uint32_t>::max(),
      std::max<size_t>(2, options_.memory_budget_bytes / 2 /
                              std::max<size_t>(1, options_.record_bytes)));
}

ExternalSorter::~ExternalSorter() {
  (void)WaitForSpill();
  for (const std::string& p : run_paths_) {
    (void)RemoveAll(p);
  }
}

Status ExternalSorter::WaitForSpill() {
  if (spill_task_ == nullptr) return Status::OK();
  spill_task_->Wait();
  spill_task_.reset();
  return spill_status_;
}

Status ExternalSorter::Add(const uint8_t* record) {
  return AddBatch(record, 1);
}

Status ExternalSorter::AddBatch(const uint8_t* records, size_t n) {
  if (finished_) return Status::Internal("Add after Finish");
  const size_t record_bytes = options_.record_bytes;
  if (buffer_.capacity() == 0 && n > 0) {
    // One reservation per buffer lifetime instead of record-by-record
    // growth: the capacity never changes, so inserts below never reallocate.
    buffer_.reserve(buffer_capacity_records_ * record_bytes);
  }
  while (n > 0) {
    const size_t staged = buffer_.size() / record_bytes;
    const size_t take = std::min(n, buffer_capacity_records_ - staged);
    buffer_.insert(buffer_.end(), records, records + take * record_bytes);
    records += take * record_bytes;
    n -= take;
    total_records_ += take;
    if (staged + take >= buffer_capacity_records_) {
      COCONUT_RETURN_IF_ERROR(SpillBuffer());
    }
  }
  return Status::OK();
}

Status ExternalSorter::SpillBuffer() {
  const size_t count = buffer_.size() / options_.record_bytes;
  if (count == 0) return Status::OK();
  // Run boundary: give up before sorting/writing another run once the
  // caller's deadline is gone (spilled runs are cleaned by the destructor).
  COCONUT_CHECK_CONTEXT(options_.context, "sort.spill");
  const std::string path = SpillPath("run");
  run_paths_.push_back(path);
  ++generated_runs_;
  if (pool_ == nullptr) {
    // Serial in-place mode: sort and write on the calling thread.
    Status st = SortAndWriteRun(buffer_, count, path);
    buffer_.clear();
    return st;
  }
  // Double-buffered spill: join the previous background spill, swap the
  // full buffer out, and keep ingesting into the (already reserved) other
  // buffer while the pool sorts and writes this one.
  COCONUT_RETURN_IF_ERROR(WaitForSpill());
  buffer_.swap(spill_buffer_);
  buffer_.clear();
  buffer_.reserve(buffer_capacity_records_ * options_.record_bytes);
  spill_task_ = std::make_shared<OneShotTask>([this, count, path]() {
    spill_status_ = SortAndWriteRun(spill_buffer_, count, path);
  });
  OneShotTask::Schedule(pool_, spill_task_);
  return Status::OK();
}

Status ExternalSorter::SortAndWriteRun(const std::vector<uint8_t>& records,
                                       size_t count,
                                       const std::string& path) {
  static Histogram* run_gen_ns =
      MetricRegistry::Default().GetHistogram("sort.run_gen_ns");
  static Histogram* spill_write_ns =
      MetricRegistry::Default().GetHistogram("sort.spill_write_ns");
  static Counter* spill_bytes =
      MetricRegistry::Default().GetCounter("sort.spill_bytes");
  static Counter* runs_spilled =
      MetricRegistry::Default().GetCounter("sort.runs_spilled");
  // This may run on a pool worker (the double-buffered background spill),
  // so establish the I/O attribution scope here, not in the caller.
  IoComponentScope io_scope("sort");
  IoDeadlineScope io_deadline(options_.context);

  TraceStages sort_spans;
  Stopwatch sort_watch;
  RecordSortSpec spec;
  spec.base = records.data();
  spec.record_bytes = options_.record_bytes;
  spec.key_bytes = options_.key_bytes;
  spec.count = count;
  spec.use_radix = options_.use_radix;
  spec.pool = pool_;
  std::vector<uint32_t> order;
  StableSortRecords(spec, &order);
  run_gen_ns->Record(sort_watch.ElapsedNanos());
  sort_spans.Mark("sort.run_gen", "sort");

  ScopedTimer write_timer(spill_write_ns);
  TraceSpan spill_span("sort.spill_write", "sort");
  BufferedWriter writer;
  if (pool_ != nullptr) writer.EnableAsyncFlush(pool_);
  COCONUT_RETURN_IF_ERROR(writer.Open(path));
  const size_t record_bytes = options_.record_bytes;
  for (size_t i = 0; i < count; ++i) {
    COCONUT_RETURN_IF_ERROR(writer.Write(
        records.data() + size_t{order[i]} * record_bytes, record_bytes));
  }
  spill_bytes->Add(count * record_bytes);
  runs_spilled->Increment();
  return writer.Finish();
}

Status ExternalSorter::MergeGroup(const std::vector<std::string>& inputs,
                                  const std::string& output,
                                  size_t input_buffer_bytes) {
  static Histogram* merge_ns =
      MetricRegistry::Default().GetHistogram("sort.merge_ns");
  ScopedTimer merge_timer(merge_ns);
  TraceSpan merge_span("sort.merge", "sort");
  IoComponentScope io_scope("sort");
  IoDeadlineScope io_deadline(options_.context);
  // Merge boundary: a group merge is all-or-nothing, so poll before
  // starting one rather than mid-stream.
  COCONUT_CHECK_CONTEXT(options_.context, "sort.merge_group");
  std::vector<std::unique_ptr<FileStream>> streams;
  streams.reserve(inputs.size());
  for (const std::string& path : inputs) {
    auto stream = std::make_unique<FileStream>(options_.record_bytes,
                                               input_buffer_bytes);
    COCONUT_RETURN_IF_ERROR(stream->Open(path, pool_));
    streams.push_back(std::move(stream));
  }
  BufferedWriter writer;
  if (pool_ != nullptr) writer.EnableAsyncFlush(pool_);
  COCONUT_RETURN_IF_ERROR(writer.Open(output));
  COCONUT_RETURN_IF_ERROR(MergeStreams(&streams, options_.record_bytes,
                                       options_.key_bytes, &writer));
  return writer.Finish();
}

Status ExternalSorter::PartitionedFinalMerge(
    const std::vector<std::string>& inputs,
    std::unique_ptr<SortedRecordStream>* out) {
  static Histogram* merge_ns =
      MetricRegistry::Default().GetHistogram("sort.merge_ns");
  ScopedTimer merge_timer(merge_ns);
  TraceSpan merge_span("sort.final_merge", "sort");
  IoComponentScope io_scope("sort");
  const size_t record_bytes = options_.record_bytes;
  const size_t key_bytes = options_.key_bytes;
  const size_t k = inputs.size();

  // Per-run record counts, and the partition count the data supports.
  std::vector<std::unique_ptr<RandomAccessFile>> files(k);
  std::vector<uint64_t> counts(k);
  uint64_t total = 0;
  for (size_t i = 0; i < k; ++i) {
    COCONUT_RETURN_IF_ERROR(RandomAccessFile::Open(inputs[i], &files[i]));
    counts[i] = files[i]->size() / record_bytes;
    total += counts[i];
  }
  const size_t partitions = static_cast<size_t>(std::min<uint64_t>(
      threads_, std::max<uint64_t>(1, total / kMinRecordsPerPartition)));

  // Pivots from evenly spaced key samples of every run. Any pivot choice
  // yields the same output bytes (equal keys never straddle a boundary);
  // sampling just balances the ranges.
  std::vector<std::vector<uint8_t>> pivots;
  if (partitions > 1) {
    constexpr uint64_t kSamplesPerRun = 32;
    std::vector<std::vector<uint8_t>> samples;
    for (size_t i = 0; i < k; ++i) {
      const uint64_t s = std::min(kSamplesPerRun, counts[i]);
      for (uint64_t j = 0; j < s; ++j) {
        const uint64_t pos = counts[i] * (2 * j + 1) / (2 * s);
        std::vector<uint8_t> key(key_bytes);
        COCONUT_RETURN_IF_ERROR(
            files[i]->Read(pos * record_bytes, key_bytes, key.data()));
        samples.push_back(std::move(key));
      }
    }
    std::sort(samples.begin(), samples.end());
    for (size_t t = 1; t < partitions; ++t) {
      pivots.push_back(samples[t * samples.size() / partitions]);
    }
  }

  // boundaries[i] = record index in run i of each partition start.
  std::vector<std::vector<uint64_t>> boundaries(k);
  for (size_t i = 0; i < k; ++i) {
    boundaries[i].assign(partitions + 1, 0);
    boundaries[i][partitions] = counts[i];
    for (size_t t = 0; t < pivots.size(); ++t) {
      COCONUT_RETURN_IF_ERROR(
          LowerBoundRecord(files[i].get(), record_bytes, key_bytes,
                           pivots[t].data(), counts[i], &boundaries[i][t + 1]));
    }
  }
  files.clear();

  const MergePlan plan = MakeMergePlan(options_, partitions);
  const size_t input_bytes = plan.InputBufferBytes(k, pool_ != nullptr);

  // Each partition merges its slice of every run into an independent output
  // file; concurrent partitions touch disjoint byte ranges of the inputs
  // (pread) and their own outputs.
  std::vector<std::string> slices(partitions);
  for (size_t t = 0; t < partitions; ++t) {
    slices[t] = SpillPath("slice");
    run_paths_.push_back(slices[t]);
  }
  std::vector<Status> results(partitions);
  auto merge_partition = [&](size_t t) {
    IoDeadlineScope io_deadline(options_.context);
    std::vector<std::unique_ptr<FileStream>> streams;
    // Partition boundary poll: concurrent partitions each give up before
    // opening their slice once the deadline is gone.
    Status st = options_.context != nullptr
                    ? options_.context->Check("sort.final_merge.partition")
                    : Status::OK();
    for (size_t i = 0; i < k && st.ok(); ++i) {
      const uint64_t first = boundaries[i][t];
      const uint64_t n = boundaries[i][t + 1] - first;
      if (n == 0) continue;  // dropping empties keeps run order intact
      auto stream = std::make_unique<FileStream>(record_bytes, input_bytes);
      st = stream->OpenSlice(inputs[i], first, n, pool_);
      streams.push_back(std::move(stream));
    }
    BufferedWriter writer;
    if (pool_ != nullptr) writer.EnableAsyncFlush(pool_);
    if (st.ok()) st = writer.Open(slices[t]);
    if (st.ok()) st = MergeStreams(&streams, record_bytes, key_bytes, &writer);
    if (st.ok()) st = writer.Finish();
    results[t] = st;
  };
  if (pool_ == nullptr || partitions == 1) {
    for (size_t t = 0; t < partitions; ++t) merge_partition(t);
  } else {
    pool_->ParallelFor(0, partitions, 1, [&](uint64_t lo, uint64_t hi) {
      for (uint64_t t = lo; t < hi; ++t) merge_partition(t);
    });
  }
  for (const Status& st : results) COCONUT_RETURN_IF_ERROR(st);

  // The inputs are fully consumed; only the slices remain on disk.
  for (const std::string& path : inputs) {
    COCONUT_RETURN_IF_ERROR(RemoveAll(path));
    run_paths_.erase(std::remove(run_paths_.begin(), run_paths_.end(), path),
                     run_paths_.end());
  }

  std::vector<std::unique_ptr<SortedRecordStream>> parts;
  uint64_t streamed = 0;
  for (size_t t = 0; t < partitions; ++t) {
    std::unique_ptr<FileStream> stream;
    COCONUT_RETURN_IF_ERROR(OpenDrainStream(options_, pool_ != nullptr,
                                            slices[t], partitions, &stream));
    streamed += stream->count();
    parts.push_back(std::move(stream));
  }
  if (streamed != total) {
    return Status::Internal("partitioned merge lost records");
  }
  *out = std::make_unique<ChainStream>(std::move(parts));
  return Status::OK();
}

Status ExternalSorter::Finish(std::unique_ptr<SortedRecordStream>* out) {
  if (finished_) return Status::Internal("Finish called twice");
  finished_ = true;
  COCONUT_RETURN_IF_ERROR(options_.Validate());

  if (run_paths_.empty()) {
    // Everything fits in memory: sort and serve directly, no disk I/O.
    const size_t count = buffer_.size() / options_.record_bytes;
    RecordSortSpec spec;
    spec.base = buffer_.data();
    spec.record_bytes = options_.record_bytes;
    spec.key_bytes = options_.key_bytes;
    spec.count = count;
    spec.use_radix = options_.use_radix;
    spec.pool = pool_;
    std::vector<uint32_t> order;
    StableSortRecords(spec, &order);
    const size_t record_bytes = options_.record_bytes;
    std::vector<uint8_t> sorted(count * record_bytes);
    auto gather = [&](uint64_t lo, uint64_t hi) {
      for (uint64_t i = lo; i < hi; ++i) {
        std::memcpy(sorted.data() + i * record_bytes,
                    buffer_.data() + size_t{order[i]} * record_bytes,
                    record_bytes);
      }
    };
    if (pool_ == nullptr) {
      gather(0, count);
    } else {
      pool_->ParallelFor(0, count, 0, gather);
    }
    buffer_.clear();
    buffer_.shrink_to_fit();
    *out = std::make_unique<MemoryStream>(std::move(sorted),
                                          options_.record_bytes);
    return Status::OK();
  }

  // Spill any tail so that all data is in runs, and join the pipeline.
  Status tail = SpillBuffer();
  Status join = WaitForSpill();
  COCONUT_RETURN_IF_ERROR(tail);
  COCONUT_RETURN_IF_ERROR(join);
  buffer_.clear();
  buffer_.shrink_to_fit();
  spill_buffer_.clear();
  spill_buffer_.shrink_to_fit();

  std::vector<std::string> current = run_paths_;
  while (true) {
    // Pass boundary: each merge pass rewrites every surviving byte, so
    // this is the coarsest point where abandoning the build saves work.
    COCONUT_CHECK_CONTEXT(options_.context, "sort.merge_pass");
    if (current.size() == 1) {
      std::unique_ptr<FileStream> stream;
      COCONUT_RETURN_IF_ERROR(OpenDrainStream(options_, pool_ != nullptr,
                                              current[0], /*ways=*/1,
                                              &stream));
      *out = std::move(stream);
      return Status::OK();
    }
    // The final pass runs one key-range partitioned merge over all
    // remaining runs; it fits when every run gets an input buffer in each
    // partition's share.
    {
      const MergePlan final_plan = MakeMergePlan(options_, threads_);
      if (current.size() <= final_plan.fan_in) {
        return PartitionedFinalMerge(current, out);
      }
    }
    // Intermediate pass: merge fan-in-sized groups, concurrently when the
    // pool allows; the budget share accounts for that concurrency.
    const size_t concurrent =
        std::min<size_t>(threads_, (current.size() + 1) / 2);
    const MergePlan plan = MakeMergePlan(options_, concurrent);
    std::vector<std::vector<std::string>> groups;
    for (size_t i = 0; i < current.size(); i += plan.fan_in) {
      const size_t end = std::min(current.size(), i + plan.fan_in);
      groups.emplace_back(current.begin() + i, current.begin() + end);
    }
    std::vector<std::string> next_level(groups.size());
    std::vector<Status> results(groups.size());
    auto merge_group = [&](size_t g) {
      if (groups[g].size() == 1) {
        next_level[g] = groups[g][0];
        results[g] = Status::OK();
        return;
      }
      const std::string merged = next_level[g];
      results[g] = MergeGroup(
          groups[g], merged,
          plan.InputBufferBytes(groups[g].size(), pool_ != nullptr));
    };
    for (size_t g = 0; g < groups.size(); ++g) {
      if (groups[g].size() > 1) {
        next_level[g] = SpillPath("run");
        run_paths_.push_back(next_level[g]);
      }
    }
    if (pool_ == nullptr) {
      for (size_t g = 0; g < groups.size(); ++g) merge_group(g);
    } else {
      // Waves of at most `concurrent` merges keep the buffer total within
      // the budget share even when the pool is wider than num_threads.
      for (size_t g0 = 0; g0 < groups.size(); g0 += concurrent) {
        const size_t g1 = std::min(groups.size(), g0 + concurrent);
        pool_->ParallelFor(g0, g1, 1, [&](uint64_t lo, uint64_t hi) {
          for (uint64_t g = lo; g < hi; ++g) merge_group(g);
        });
      }
    }
    for (const Status& st : results) COCONUT_RETURN_IF_ERROR(st);
    for (const auto& group : groups) {
      if (group.size() == 1) continue;
      for (const std::string& path : group) {
        COCONUT_RETURN_IF_ERROR(RemoveAll(path));
        run_paths_.erase(
            std::remove(run_paths_.begin(), run_paths_.end(), path),
            run_paths_.end());
      }
    }
    current.swap(next_level);
  }
}

}  // namespace coconut
