// Figure 9d: quality of the approximate answers — the average Euclidean
// distance between queries and the approximate results, plus the fraction
// of queries where Coconut's answer beats ADSFull's. Paper result: the
// Coconut family returns closer neighbors; CTree(1) beat ADSFull on 69% of
// queries and CTree(10) on 94%.
#include "bench/bench_util.h"
#include "bench/query_fixture.h"

namespace coconut {
namespace bench {
namespace {

constexpr size_t kLength = 256;
// Leaf capacity scaled with the laptop-scale N so that leaf/N matches the
// paper's ratio (2000 leaves of 2000 entries over tens of millions).
constexpr size_t kLeafCapacity = 100;

void Run() {
  Banner("Figure 9d", "approximate answer quality (avg Euclidean distance)");
  const size_t count = 40000 * Scale();
  const size_t queries = 100;
  BenchDir dir;
  const std::string raw = PrepareDataset(dir, DatasetKind::kRandomWalk, count,
                                         kLength, 20, "data.bin");
  QueryFixture f = BuildQueryFixture(dir, raw, kLength, kLeafCapacity, 64ull << 20);
  auto qs = MakeQueries(DatasetKind::kRandomWalk, queries, kLength, 2000);

  std::vector<double> ctree1(queries), ctree10(queries), adsfull(queries),
      adsplus(queries), ctreefull(queries);
  for (size_t i = 0; i < queries; ++i) {
    SearchResult r;
    CheckOk(f.ctree->ApproxSearch(qs[i].data(), 1, &r), "CTree(1)");
    ctree1[i] = r.distance;
    CheckOk(f.ctree->ApproxSearch(qs[i].data(), 10, &r), "CTree(10)");
    ctree10[i] = r.distance;
    CheckOk(f.ctree_full->ApproxSearch(qs[i].data(), 1, &r), "CTreeFull");
    ctreefull[i] = r.distance;
    CheckOk(f.ads_plus->ApproxSearch(qs[i].data(), &r), "ADS+");
    adsplus[i] = r.distance;
    CheckOk(f.ads_full->ApproxSearch(qs[i].data(), &r), "ADSFull");
    adsfull[i] = r.distance;
  }

  auto avg = [&](const std::vector<double>& v) {
    double s = 0.0;
    for (double x : v) s += x;
    return s / v.size();
  };
  auto beats = [&](const std::vector<double>& a,
                   const std::vector<double>& b) {
    size_t wins = 0;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i] <= b[i]) ++wins;
    }
    return 100.0 * wins / a.size();
  };

  PrintHeader({"method", "avg_distance", "beats_ADSFull%"});
  PrintRow({"CTree(1)", FmtDouble(avg(ctree1), 3),
            FmtDouble(beats(ctree1, adsfull), 1)});
  PrintRow({"CTree(10)", FmtDouble(avg(ctree10), 3),
            FmtDouble(beats(ctree10, adsfull), 1)});
  PrintRow({"CTreeFull(1)", FmtDouble(avg(ctreefull), 3),
            FmtDouble(beats(ctreefull, adsfull), 1)});
  PrintRow({"ADS+", FmtDouble(avg(adsplus), 3),
            FmtDouble(beats(adsplus, adsfull), 1)});
  PrintRow({"ADSFull", FmtDouble(avg(adsfull), 3), "—"});
  std::printf(
      "\nExpectation (paper Fig 9d): Coconut answers are closer on average;\n"
      "paper reports CTree(1) better than ADSFull for 69%% of queries and\n"
      "CTree(10) for 94%%.\n");
}

}  // namespace
}  // namespace bench
}  // namespace coconut

int main() {
  coconut::bench::Run();
  return 0;
}
