// Snapshot isolation under concurrent load: writer threads stream inserts
// (triggering flushes and compactions) while reader threads run exact and
// approximate searches against snapshots, validated with a brute-force
// oracle over the prefix of the insertion sequence each snapshot exposes.
//
// This test is the primary ThreadSanitizer target for the exec subsystem
// (see .github/workflows/ci.yml).
#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/coconut_forest.h"
#include "src/exec/query_engine.h"
#include "src/exec/thread_pool.h"
#include "tests/test_util.h"

namespace coconut {
namespace {

using testing::ScratchDir;

constexpr size_t kSeriesLen = 64;

ForestOptions StressForest(const ScratchDir& dir) {
  ForestOptions opts;
  opts.tree.summary.series_length = kSeriesLen;
  opts.tree.summary.segments = 16;
  opts.tree.leaf_capacity = 64;
  opts.tree.tmp_dir = dir.path();
  opts.memtable_series = 80;  // frequent flushes
  opts.max_runs = 2;          // frequent compactions
  return opts;
}

/// Brute-force k-NN over the first `count` series; distances ascending.
std::vector<double> OracleDistances(const std::vector<Series>& data,
                                    size_t count, const Series& query,
                                    size_t k) {
  std::vector<double> dists;
  dists.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    double sum = 0.0;
    for (size_t j = 0; j < kSeriesLen; ++j) {
      const double d = static_cast<double>(data[i][j]) -
                       static_cast<double>(query[j]);
      sum += d * d;
    }
    dists.push_back(std::sqrt(sum));
  }
  std::sort(dists.begin(), dists.end());
  if (dists.size() > k) dists.resize(k);
  return dists;
}

TEST(ForestConcurrency, ReadersStayExactWhileWritersInsertFlushCompact) {
  ScratchDir dir;
  std::unique_ptr<CoconutForest> forest;
  ASSERT_OK(CoconutForest::Open(dir.File("data.bin"), dir.File("forest"),
                                StressForest(dir), &forest));

  // Pre-generate the full insertion sequence and the query set so readers
  // touch only immutable data.
  const size_t kTotal = 900;
  auto gen = MakeGenerator(DatasetKind::kRandomWalk, kSeriesLen, 4242);
  std::vector<Series> data;
  data.reserve(kTotal);
  for (size_t i = 0; i < kTotal; ++i) data.push_back(gen->NextSeries());
  std::vector<Series> queries;
  for (int i = 0; i < 16; ++i) queries.push_back(gen->NextSeries());

  std::atomic<bool> done{false};
  std::atomic<int> reader_checks{0};
  std::vector<std::string> failures;
  std::mutex failures_mu;

  // Writer: insert in small batches; every few batches force a flush or a
  // full compaction on top of the automatic ones.
  std::thread writer([&]() {
    const size_t kBatch = 30;
    for (size_t base = 0; base < kTotal; base += kBatch) {
      std::vector<Series> batch(
          data.begin() + base,
          data.begin() + std::min(kTotal, base + kBatch));
      Status st = forest->InsertBatch(batch);
      if (!st.ok()) {
        std::lock_guard<std::mutex> lock(failures_mu);
        failures.push_back("InsertBatch: " + st.ToString());
        break;
      }
      if ((base / kBatch) % 5 == 1) st = forest->Flush();
      if ((base / kBatch) % 7 == 2) st = forest->CompactAll();
      if (!st.ok()) {
        std::lock_guard<std::mutex> lock(failures_mu);
        failures.push_back("Flush/Compact: " + st.ToString());
        break;
      }
    }
    done.store(true);
  });

  // Readers: snapshot, search, validate against the oracle prefix. The
  // snapshot exposes exactly the first num_entries() inserted series
  // because the single writer assigns offsets in insertion order.
  auto reader_fn = [&](size_t seed) {
    size_t iter = seed;
    while (!done.load()) {
      const CoconutForest::Snapshot snap = forest->GetSnapshot();
      const size_t visible = static_cast<size_t>(snap.num_entries());
      if (visible == 0) continue;
      ASSERT_LE(visible, kTotal);
      const Series& query = queries[iter++ % queries.size()];
      const size_t k = 1 + iter % 3;

      SearchResult exact;
      Status st = forest->ExactSearch(snap, &query[0], &exact, k);
      if (!st.ok()) {
        std::lock_guard<std::mutex> lock(failures_mu);
        failures.push_back("ExactSearch: " + st.ToString());
        return;
      }
      const std::vector<double> oracle =
          OracleDistances(data, visible, query, k);
      ASSERT_EQ(exact.neighbors.size(), oracle.size());
      for (size_t j = 0; j < oracle.size(); ++j) {
        ASSERT_NEAR(exact.neighbors[j].distance, oracle[j], 1e-4)
            << "visible=" << visible << " k=" << k << " rank=" << j;
      }

      SearchResult approx;
      st = forest->ApproxSearch(snap, &query[0], 1, &approx, k);
      if (!st.ok()) {
        std::lock_guard<std::mutex> lock(failures_mu);
        failures.push_back("ApproxSearch: " + st.ToString());
        return;
      }
      // Approximate distance upper-bounds the exact one on the same state.
      ASSERT_GE(approx.distance + 1e-6, exact.distance);
      reader_checks.fetch_add(1, std::memory_order_relaxed);
    }
  };
  std::vector<std::thread> readers;
  for (size_t r = 0; r < 3; ++r) {
    readers.emplace_back(reader_fn, r + 1);
  }

  writer.join();
  for (auto& t : readers) t.join();
  for (const std::string& f : failures) ADD_FAILURE() << f;
  EXPECT_GT(reader_checks.load(), 0);

  // Final state: everything visible and still exact.
  EXPECT_EQ(forest->num_entries(), kTotal);
  SearchResult final_result;
  ASSERT_OK(forest->ExactSearch(queries[0].data(), &final_result, 3));
  const std::vector<double> oracle =
      OracleDistances(data, kTotal, queries[0], 3);
  ASSERT_EQ(final_result.neighbors.size(), oracle.size());
  for (size_t j = 0; j < oracle.size(); ++j) {
    EXPECT_NEAR(final_result.neighbors[j].distance, oracle[j], 1e-4);
  }
}

TEST(ForestConcurrency, QueryEngineBatchRunsConcurrentlyWithWriters) {
  ScratchDir dir;
  std::unique_ptr<CoconutForest> forest;
  ASSERT_OK(CoconutForest::Open(dir.File("data.bin"), dir.File("forest"),
                                StressForest(dir), &forest));

  const size_t kTotal = 600;
  auto gen = MakeGenerator(DatasetKind::kRandomWalk, kSeriesLen, 5151);
  std::vector<Series> data;
  for (size_t i = 0; i < kTotal; ++i) data.push_back(gen->NextSeries());
  std::vector<Series> queries;
  for (int i = 0; i < 64; ++i) queries.push_back(gen->NextSeries());

  // Seed the forest so the first batch has data, then keep writing while
  // batches execute.
  ASSERT_OK(forest->InsertBatch(
      std::vector<Series>(data.begin(), data.begin() + 200)));

  std::atomic<bool> done{false};
  std::thread writer([&]() {
    for (size_t base = 200; base < kTotal; base += 25) {
      std::vector<Series> batch(
          data.begin() + base,
          data.begin() + std::min(kTotal, base + 25));
      Status st = forest->InsertBatch(batch);
      ASSERT_TRUE(st.ok()) << st.ToString();
    }
    done.store(true);
  });

  ThreadPool pool(4);
  QueryEngine engine(&pool);
  QuerySpec spec;
  spec.mode = QuerySpec::Mode::kExact;
  spec.k = 2;
  int batches = 0;
  while (!done.load() || batches == 0) {
    // Each batch sees one consistent snapshot; verify against the oracle
    // prefix that snapshot exposes.
    const CoconutForest::Snapshot snap = forest->GetSnapshot();
    const size_t visible = static_cast<size_t>(snap.num_entries());
    std::vector<SearchResult> results;
    ASSERT_OK(engine.ExecuteBatch(*forest, snap, queries, spec, &results));
    ASSERT_EQ(results.size(), queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      const std::vector<double> oracle =
          OracleDistances(data, visible, queries[i], spec.k);
      ASSERT_EQ(results[i].neighbors.size(), oracle.size());
      for (size_t j = 0; j < oracle.size(); ++j) {
        ASSERT_NEAR(results[i].neighbors[j].distance, oracle[j], 1e-4)
            << "visible=" << visible;
      }
    }
    ++batches;
  }
  writer.join();
  EXPECT_GT(batches, 0);
}

}  // namespace
}  // namespace coconut
