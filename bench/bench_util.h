// Shared helpers for the per-figure benchmark harnesses. Every harness runs
// with no arguments at laptop scale; set COCONUT_BENCH_SCALE=k to multiply
// dataset sizes by k (e.g. 10 for a longer, closer-to-paper run).
#ifndef COCONUT_BENCH_BENCH_UTIL_H_
#define COCONUT_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/env.h"
#include "src/common/status.h"
#include "src/common/timer.h"
#include "src/io/io_stats.h"
#include "src/series/dataset.h"
#include "src/series/generator.h"
#include "src/series/series.h"

namespace coconut {
namespace bench {

/// Scale factor from COCONUT_BENCH_SCALE (default 1).
size_t Scale();

/// Crashes with a message if `status` is not OK (benches have no recovery
/// path; a failed phase invalidates the numbers).
void CheckOk(const Status& status, const char* what);

/// RAII scratch directory under the system temp root.
class BenchDir {
 public:
  BenchDir();
  ~BenchDir();
  const std::string& path() const { return path_; }
  std::string File(const std::string& name) const {
    return JoinPath(path_, name);
  }

 private:
  std::string path_;
};

/// Generates (once) a dataset file and returns its path.
std::string PrepareDataset(const BenchDir& dir, DatasetKind kind, size_t count,
                           size_t length, uint64_t seed,
                           const std::string& name);

/// Generates `count` query series from the same family.
std::vector<Series> MakeQueries(DatasetKind kind, size_t count, size_t length,
                                uint64_t seed);

/// Measured phase: wall time plus the I/O counter delta.
class Measured {
 public:
  Measured() : before_(IoStats::Instance().Snapshot()) {}

  double seconds() const { return watch_.ElapsedSeconds(); }
  IoSnapshot io() const { return IoStats::Instance().Snapshot() - before_; }

 private:
  Stopwatch watch_;
  IoSnapshot before_;
};

/// Prints a table header / row with '|' separators (fixed-ish widths keep
/// the output aligned well enough for terminals and logs).
void PrintHeader(const std::vector<std::string>& columns);
void PrintRow(const std::vector<std::string>& cells);

/// Formats helpers.
std::string FmtSeconds(double s);
std::string FmtMb(uint64_t bytes);
std::string FmtCount(uint64_t n);
std::string FmtDouble(double v, int precision = 3);

/// Prints the standard harness banner (figure id + configuration).
void Banner(const std::string& figure, const std::string& description);

}  // namespace bench
}  // namespace coconut

#endif  // COCONUT_BENCH_BENCH_UTIL_H_
