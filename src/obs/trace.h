// Low-overhead wall-clock span tracer: where does time go, per thread,
// across threads.
//
// The metric registry (metrics.h) answers "how much / how slow in
// aggregate"; this tracer answers "what was thread 3 doing between t=41ms
// and t=58ms, and which thread handed it that work". Every instrumented
// stage opens a TraceSpan; finished spans land in a per-thread lock-free
// ring buffer as plain timestamp+duration events, and the rings are drained
// into Chrome trace-event JSON (loadable in chrome://tracing and Perfetto)
// either at process exit (COCONUT_TRACE=<path>) or live over a capture
// window (the admin server's /tracez endpoint).
//
// Recording-cost contract (see src/obs/README.md):
//  * Tracing disabled: a TraceSpan is one relaxed atomic load and a branch
//    — cheap enough to leave compiled into every stage, always.
//  * Tracing enabled: one steady_clock read at open, one at close, and six
//    relaxed atomic stores into the calling thread's own ring. No locks,
//    no allocation, no cross-thread cache traffic on the hot path.
//  * Rings are fixed-size and overwrite their oldest events (it is a flight
//    recorder, not a log): a drain returns the most recent <= capacity
//    events per thread. "obs.trace.events" counts appends for drop math.
//
// Concurrency: each ring has exactly one writer (its owning thread); the
// drain runs on another thread. Every event field is a relaxed atomic, so
// concurrent drain-during-write is data-race-free; an event overwritten
// mid-drain can come out torn (mixed fields) and is filtered by sanity
// checks. Drains are expected to run after Stop() (or on idle rings in env
// mode), where no tearing is possible for settled slots.
//
// Span names must be string literals (or otherwise immortal): the ring
// stores the pointer, not a copy.
#ifndef COCONUT_OBS_TRACE_H_
#define COCONUT_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/sync.h"

namespace coconut {

/// One drained event, plain data. Phases follow the Chrome trace-event
/// format: 'X' = complete span, 's'/'f' = flow start / flow finish (the
/// arrow linking a ThreadPool enqueue to its dequeue+execution).
struct TraceEvent {
  const char* name = nullptr;
  const char* cat = nullptr;
  uint64_t ts_ns = 0;   // start, relative to the process trace epoch
  uint64_t dur_ns = 0;  // 'X' only
  uint64_t flow_id = 0; // 's'/'f' only
  uint32_t tid = 0;     // stable small id, assigned per thread on first use
  char phase = 'X';
};

class Tracer {
 public:
  /// `ring_capacity` is events retained per thread, rounded up to a power
  /// of two. The default keeps a ring under ~0.5 MiB per thread.
  explicit Tracer(size_t ring_capacity = kDefaultRingCapacity);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  static constexpr size_t kDefaultRingCapacity = 8192;

  /// The process-wide tracer (never destroyed). First use arms the env
  /// toggles:
  ///   COCONUT_TRACE=<path>     -> tracing on from startup, Chrome JSON
  ///                               written to <path> at exit (and on
  ///                               SIGINT/SIGTERM, see exit_hooks.h)
  ///   COCONUT_TRACE_RING=<n>   -> per-thread ring capacity in events
  static Tracer& Default();

  /// Hot-path check, kept branch-cheap: one relaxed load once the default
  /// tracer exists (the first call constructs it, arming the env toggles).
  static bool Enabled() {
    Tracer* t = default_instance_.load(std::memory_order_acquire);
    if (t == nullptr) t = &Default();
    return t->active();
  }

  bool active() const { return enabled_.load(std::memory_order_relaxed); }

  /// Starts recording. Events already in the rings stay (drains are
  /// windowed by timestamp, not by toggling).
  void Start() { enabled_.store(true, std::memory_order_relaxed); }
  void Stop() { enabled_.store(false, std::memory_order_relaxed); }

  /// Nanoseconds since the process trace epoch (first Tracer use); the
  /// common clock every event is stamped with.
  static uint64_t NowNanos();

  /// Appends a completed span to the calling thread's ring.
  void RecordComplete(const char* name, const char* cat, uint64_t start_ns,
                      uint64_t end_ns);
  /// Appends a flow event ('s' start on the enqueuing thread, 'f' finish on
  /// the executing thread) with an explicit timestamp.
  void RecordFlow(char phase, const char* name, uint64_t flow_id,
                  uint64_t ts_ns);
  /// Process-unique id linking one 's' to one 'f'. Never returns 0 (0 means
  /// "no flow" in carriers like ThreadPool::QueueEntry).
  uint64_t NextFlowId() {
    return next_flow_id_.fetch_add(1, std::memory_order_relaxed) | 1ull << 63;
  }

  /// Most recent events from every thread ring with ts_ns >= since_ns,
  /// sorted by timestamp. Torn slots (overwritten mid-drain) are filtered.
  std::vector<TraceEvent> DrainEvents(uint64_t since_ns = 0) const;

  /// DrainEvents rendered as Chrome trace-event JSON:
  ///   {"traceEvents":[...],"displayTimeUnit":"ms"}
  /// Load the string directly in Perfetto or chrome://tracing.
  std::string ToJson(uint64_t since_ns = 0) const;

  /// /tracez implementation: records for `duration_ms` (enabling tracing if
  /// it was off, restoring the previous state after) and returns the JSON
  /// for exactly that window.
  std::string CaptureWindow(uint64_t duration_ms);

 private:
  struct Ring;

  Ring* ThreadRing();

  // Set once Default() constructs; lets Enabled() avoid the magic-static
  // guard cost on the hot path.
  static std::atomic<Tracer*> default_instance_;

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_flow_id_{1};
  std::atomic<uint32_t> next_tid_{1};
  // Process-unique instance id; the thread-local ring cache keys on this
  // instead of `this` (a new tracer allocated at a destroyed one's address
  // must not revive the stale cached ring pointer).
  const uint64_t tracer_id_;
  size_t ring_capacity_;

  mutable Mutex rings_mu_;
  // One ring per thread, never removed. The registry vector is guarded;
  // the rings' slots themselves are lock-free atomics.
  std::vector<std::shared_ptr<Ring>> rings_ GUARDED_BY(rings_mu_);
};

/// RAII span: records [construction, destruction) of the current scope into
/// the default tracer when tracing is on. Name/category must be string
/// literals.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* cat = "stage")
      : name_(name),
        cat_(cat),
        start_ns_(Tracer::Enabled() ? Tracer::NowNanos() : kInactive) {}

  ~TraceSpan() {
    if (start_ns_ != kInactive) {
      Tracer::Default().RecordComplete(name_, cat_, start_ns_,
                                       Tracer::NowNanos());
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  bool active() const { return start_ns_ != kInactive; }

 private:
  static constexpr uint64_t kInactive = ~uint64_t{0};
  const char* name_;
  const char* cat_;
  uint64_t start_ns_;
};

/// Sequential-stage spans on one thread, mirroring the Stopwatch
/// stage/Restart() idiom the read paths use for QueryTrace fields: each
/// Mark(name) closes the segment since the previous Mark (or construction)
/// as a completed span named `name`. Segments after the last Mark are not
/// recorded.
class TraceStages {
 public:
  TraceStages()
      : active_(Tracer::Enabled()),
        start_ns_(active_ ? Tracer::NowNanos() : 0) {}

  TraceStages(const TraceStages&) = delete;
  TraceStages& operator=(const TraceStages&) = delete;

  void Mark(const char* name, const char* cat = "stage") {
    if (!active_) return;
    const uint64_t now = Tracer::NowNanos();
    Tracer::Default().RecordComplete(name, cat, start_ns_, now);
    start_ns_ = now;
  }

 private:
  bool active_;
  uint64_t start_ns_;
};

}  // namespace coconut

#endif  // COCONUT_OBS_TRACE_H_
