// QueryEngine throughput: batched exact k-NN search over a multi-run
// CoconutForest, executed on thread pools of increasing size, then over a
// ShardedStore with increasing shard counts (cross-shard fan-out). The
// expected shape is throughput scaling with thread count up to the
// hardware's parallelism (on a single-core container the parallel rows
// mainly demonstrate that concurrency adds no correctness or large
// scheduling cost).
//
// Set COCONUT_BENCH_JSON=<path> to also write the measurements as a JSON
// array (one object per row) for trajectory tracking in CI; the in-repo
// baseline lives at BENCH_query_engine.json (repo root). `rate_per_s` is
// queries/s for the query sections and series/s for store_ingest (whose
// 1-shard row is the journal-free single-shard fast path) and tree_build
// (bottom-up construction at 1/2/4 sort threads).
#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <chrono>
#include <thread>

#include "bench/bench_util.h"
#include "src/core/coconut_forest.h"
#include "src/exec/admission_controller.h"
#include "src/core/coconut_tree.h"
#include "src/exec/query_engine.h"
#include "src/exec/thread_pool.h"
#include "src/io/io_stats.h"
#include "src/net/admin_server.h"
#include "src/obs/metrics.h"
#include "src/simd/kernels.h"
#include "src/store/sharded_store.h"

namespace coconut {
namespace bench {
namespace {

constexpr size_t kLength = 256;
constexpr size_t kBatch = 64;

struct JsonRow {
  std::string section;
  uint64_t param;  // threads or shards
  size_t batch;    // queries per batch, or series per ingest batch
  double seconds;
  double qps;
  // Registry/I-O deltas over the measured region (query sections only for
  // the query.* fields; ingest/build rows report I/O ops alone).
  uint64_t io_read_ops = 0;
  uint64_t leaves_visited = 0;
  uint64_t p99_latency_ns = 0;
};

/// Captures registry + I/O state at construction; Fill() folds the delta
/// accumulated since then into a JSON row.
class MetricProbe {
 public:
  MetricProbe()
      : reg_(MetricRegistry::Default().Snapshot()),
        io_(IoStats::Instance().Snapshot()) {}

  void Fill(JsonRow* row) const {
    const RegistrySnapshot now = MetricRegistry::Default().Snapshot();
    row->io_read_ops = IoStats::Instance().Snapshot().read_ops - io_.read_ops;
    row->leaves_visited = CounterDelta(now, "query.leaves_visited");
    // Per-query cost from the thread-CPU clock, not wall time. The wall
    // histogram (query.exact.latency_ns) times each item from its dispatch,
    // so on an oversubscribed pool (8 threads on this 1-core container) a
    // query is also charged every time slice its thread spent descheduled
    // while siblings ran — which made p99 grow ~linearly with the thread
    // count for identical per-query work. query.exact.cpu_ns counts only
    // nanoseconds the executing thread actually ran, so the quantile tracks
    // algorithmic cost across thread-sweep rows.
    const auto it = now.histograms.find("query.exact.cpu_ns");
    if (it != now.histograms.end()) {
      HistogramSnapshot d = it->second;
      const auto old = reg_.histograms.find("query.exact.cpu_ns");
      if (old != reg_.histograms.end()) d = d.Delta(old->second);
      row->p99_latency_ns = d.ValueAtQuantile(0.99);
    }
  }

 private:
  uint64_t CounterDelta(const RegistrySnapshot& now,
                        const std::string& name) const {
    const auto cur = now.counters.find(name);
    const auto old = reg_.counters.find(name);
    return (cur == now.counters.end() ? 0 : cur->second) -
           (old == reg_.counters.end() ? 0 : old->second);
  }

  RegistrySnapshot reg_;
  IoSnapshot io_;
};

void WriteJson(const std::vector<JsonRow>& rows) {
  const char* path = std::getenv("COCONUT_BENCH_JSON");
  if (path == nullptr || *path == '\0') return;
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for JSON output\n", path);
    return;
  }
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    // "kernel" records which SIMD backend produced the row, so trajectory
    // comparisons never mix scalar-fallback and vectorized numbers.
    std::fprintf(f,
                 "  {\"bench\": \"bench_query_engine\", \"section\": \"%s\", "
                 "\"param\": %llu, \"batch\": %zu, \"seconds\": %.6f, "
                 "\"rate_per_s\": %.1f, \"io_read_ops\": %llu, "
                 "\"leaves_visited\": %llu, \"p99_latency_ns\": %llu, "
                 "\"kernel\": \"%s\"}%s\n",
                 rows[i].section.c_str(),
                 static_cast<unsigned long long>(rows[i].param),
                 rows[i].batch, rows[i].seconds, rows[i].qps,
                 static_cast<unsigned long long>(rows[i].io_read_ops),
                 static_cast<unsigned long long>(rows[i].leaves_visited),
                 static_cast<unsigned long long>(rows[i].p99_latency_ns),
                 simd::Kernels().name, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("\nJSON written to %s\n", path);
}

ForestOptions BaseForestOptions(const BenchDir& dir) {
  ForestOptions opts;
  opts.tree.summary.series_length = kLength;
  opts.tree.leaf_capacity = 512;
  opts.tree.tmp_dir = dir.path();
  opts.tree.num_threads = 1;  // per-query SIMS stays serial: we measure
                              // cross-query/cross-shard parallelism only
  opts.memtable_series = 2048;
  opts.max_runs = 16;  // keep several runs: the realistic serving shape
  return opts;
}

void Run() {
  Banner("bench_query_engine",
         "batched exact search throughput vs thread count and shard count");
  const size_t count = 20000 * Scale();
  std::vector<JsonRow> json;

  BenchDir dir;
  const ForestOptions opts = BaseForestOptions(dir);
  const std::string raw = PrepareDataset(dir, DatasetKind::kRandomWalk,
                                         count, kLength, 23, "data.bin");
  std::unique_ptr<CoconutForest> forest;
  CheckOk(CoconutForest::Open(raw, dir.File("forest"), opts, &forest),
          "forest open");
  // Add a few more waves so queries span multiple runs plus a memtable.
  auto extra = MakeQueries(DatasetKind::kRandomWalk, 3 * 2048 + 512, kLength,
                           24);
  CheckOk(forest->InsertBatch(extra), "insert");
  std::printf("forest: %llu entries in %zu runs + %llu buffered\n\n",
              static_cast<unsigned long long>(forest->num_entries()),
              forest->num_runs(),
              static_cast<unsigned long long>(forest->memtable_size()));

  auto queries = MakeQueries(DatasetKind::kRandomWalk, kBatch, kLength, 2300);
  QuerySpec spec;
  spec.mode = QuerySpec::Mode::kExact;
  spec.k = 1;

  // Warm the SIMS arrays so every row measures steady-state search.
  {
    ThreadPool warm(1);
    QueryEngine engine(&warm);
    std::vector<SearchResult> results;
    CheckOk(engine.ExecuteBatch(*forest, queries, spec, &results), "warmup");
  }

  std::printf("-- forest: thread sweep --\n");
  PrintHeader({"threads", "batch_time", "queries/s", "speedup"});
  double serial_seconds = 0.0;
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    QueryEngine engine(&pool);
    std::vector<SearchResult> results;
    MetricProbe probe;
    Stopwatch w;
    CheckOk(engine.ExecuteBatch(*forest, queries, spec, &results), "batch");
    const double secs = w.ElapsedSeconds();
    if (threads == 1) serial_seconds = secs;
    PrintRow({FmtCount(threads), FmtSeconds(secs),
              FmtDouble(kBatch / secs, 1),
              FmtDouble(serial_seconds / secs, 2) + "x"});
    json.push_back(
        JsonRow{"forest_threads", threads, kBatch, secs, kBatch / secs});
    probe.Fill(&json.back());
  }

  // Shard-count sweep: the same data in a ShardedStore with 1/2/4 shards,
  // ingested in batches (the 1-shard row is the journal-free single-shard
  // fast path; multi-shard rows pay the epoch commit protocol), then
  // queried through the store-aware engine path (query x shard fan-out).
  std::printf("\n-- sharded store: batch ingest (2048-series batches) --\n");
  PrintHeader({"shards", "ingest_time", "series/s"});
  const std::vector<Series> data =
      MakeQueries(DatasetKind::kRandomWalk, count, kLength, 23);
  constexpr size_t kIngestBatch = 2048;
  std::vector<std::unique_ptr<ShardedStore>> stores;
  for (size_t shards : {size_t{1}, size_t{2}, size_t{4}}) {
    StoreOptions sopts;
    sopts.forest = BaseForestOptions(dir);
    sopts.num_shards = shards;
    std::unique_ptr<ShardedStore> store;
    CheckOk(ShardedStore::Open(
                dir.File("store-" + std::to_string(shards)), sopts, &store),
            "store open");
    // Pre-slice the batches so the timed region measures ingest only, not
    // per-batch vector copies.
    std::vector<std::vector<Series>> batches;
    for (size_t base = 0; base < data.size(); base += kIngestBatch) {
      batches.emplace_back(
          data.begin() + base,
          data.begin() + std::min(data.size(), base + kIngestBatch));
    }
    MetricProbe probe;
    Stopwatch ingest;
    for (const std::vector<Series>& batch : batches) {
      CheckOk(store->InsertBatch(batch), "store insert");
    }
    const double ingest_secs = ingest.ElapsedSeconds();
    PrintRow({FmtCount(shards), FmtSeconds(ingest_secs),
              FmtDouble(data.size() / ingest_secs, 1)});
    json.push_back(JsonRow{"store_ingest", shards, kIngestBatch, ingest_secs,
                           data.size() / ingest_secs});
    probe.Fill(&json.back());
    stores.push_back(std::move(store));
  }

  // Tree-build sweep: full bottom-up construction (summarize -> external
  // sort -> bulk load) through CoconutTreeBuilder at 1/2/4 sort threads.
  // The 1 MiB budget forces the spill/merge pipeline; rate is series/s.
  std::printf("\n-- tree build: sort-thread sweep (1 MiB sort budget) --\n");
  PrintHeader({"threads", "build_time", "series/s", "speedup"});
  double serial_build_seconds = 0.0;
  for (unsigned threads : {1u, 2u, 4u}) {
    CoconutOptions topts;
    topts.summary.series_length = kLength;
    topts.leaf_capacity = 512;
    topts.tmp_dir = dir.path();
    topts.memory_budget_bytes = 1 << 20;
    topts.num_threads = threads;
    MetricProbe probe;
    Stopwatch w;
    CheckOk(CoconutTree::Build(
                raw, dir.File("tree-" + std::to_string(threads)), topts,
                nullptr),
            "tree build");
    const double secs = w.ElapsedSeconds();
    if (threads == 1) serial_build_seconds = secs;
    PrintRow({FmtCount(threads), FmtSeconds(secs),
              FmtDouble(count / secs, 1),
              FmtDouble(serial_build_seconds / secs, 2) + "x"});
    json.push_back(JsonRow{"tree_build", threads, count, secs, count / secs});
    probe.Fill(&json.back());
  }

  std::printf("\n-- sharded store: shard sweep (4 threads) --\n");
  PrintHeader({"shards", "batch_time", "queries/s", "speedup"});
  double one_shard_seconds = 0.0;
  for (size_t si = 0; si < stores.size(); ++si) {
    const size_t shards = stores[si]->num_shards();
    ShardedStore* store = stores[si].get();
    ThreadPool pool(4);
    QueryEngine engine(&pool);
    std::vector<SearchResult> results;
    // Warm every shard's SIMS arrays.
    CheckOk(engine.ExecuteBatch(*store, queries, spec, &results), "warmup");
    MetricProbe probe;
    Stopwatch w;
    CheckOk(engine.ExecuteBatch(*store, queries, spec, &results), "batch");
    const double secs = w.ElapsedSeconds();
    if (shards == 1) one_shard_seconds = secs;
    PrintRow({FmtCount(shards), FmtSeconds(secs),
              FmtDouble(kBatch / secs, 1),
              FmtDouble(one_shard_seconds / secs, 2) + "x"});
    json.push_back(
        JsonRow{"store_shards", shards, kBatch, secs, kBatch / secs});
    probe.Fill(&json.back());
  }

  // Overload section: closed-loop clients drive the engine well past its
  // admission capacity (max_inflight=2 against 8 clients). The gate sheds
  // the excess with ResourceExhausted in well under a millisecond, while
  // admitted batches keep completing; this measures both sides.
  std::printf("\n-- overload: admission control (8 clients, 2 slots) --\n");
  PrintHeader({"outcome", "count", "rate/s", "p99_latency"});
  {
    constexpr unsigned kClients = 8;
    constexpr auto kDuration = std::chrono::milliseconds(1500);
    AdmissionOptions aopts;
    aopts.max_inflight = 2;
    AdmissionController admission(aopts);
    ThreadPool pool(2);
    QueryEngine engine(&pool, &admission);

    struct ClientStats {
      std::vector<uint64_t> admitted_ns;
      std::vector<uint64_t> shed_ns;
    };
    std::vector<ClientStats> stats(kClients);
    Stopwatch wall;
    std::vector<std::thread> clients;
    for (unsigned c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c]() {
        std::vector<SearchResult> results;
        while (wall.ElapsedSeconds() * 1000 <
               static_cast<double>(kDuration.count())) {
          Stopwatch call;
          const Status st =
              engine.ExecuteBatch(*forest, queries, spec, &results);
          const uint64_t ns = call.ElapsedNanos();
          if (st.ok()) {
            stats[c].admitted_ns.push_back(ns);
          } else if (st.IsResourceExhausted()) {
            stats[c].shed_ns.push_back(ns);
            // A real client backs off before retrying; without this the
            // loop degenerates into a pure shed-throughput spin.
            std::this_thread::sleep_for(std::chrono::microseconds(200));
          } else {
            CheckOk(st, "overload batch");
          }
        }
      });
    }
    for (std::thread& t : clients) t.join();
    const double secs = wall.ElapsedSeconds();

    std::vector<uint64_t> admitted_ns, shed_ns;
    for (const ClientStats& s : stats) {
      admitted_ns.insert(admitted_ns.end(), s.admitted_ns.begin(),
                         s.admitted_ns.end());
      shed_ns.insert(shed_ns.end(), s.shed_ns.begin(), s.shed_ns.end());
    }
    auto p99 = [](std::vector<uint64_t>& v) -> uint64_t {
      if (v.empty()) return 0;
      std::sort(v.begin(), v.end());
      return v[std::min(v.size() - 1, (v.size() * 99) / 100)];
    };
    const uint64_t admitted_p99 = p99(admitted_ns);
    const uint64_t shed_p99 = p99(shed_ns);
    PrintRow({"admitted", FmtCount(admitted_ns.size()),
              FmtDouble(admitted_ns.size() / secs, 1),
              FmtDouble(admitted_p99 / 1e6, 3) + " ms"});
    PrintRow({"shed", FmtCount(shed_ns.size()),
              FmtDouble(shed_ns.size() / secs, 1),
              FmtDouble(shed_p99 / 1e3, 1) + " us"});
    const double shed_rate =
        shed_ns.empty()
            ? 0.0
            : static_cast<double>(shed_ns.size()) /
                  static_cast<double>(shed_ns.size() + admitted_ns.size());
    std::printf("shed rate: %.1f%%  (shed p99 %.1f us; target < 1 ms)\n",
                100.0 * shed_rate, shed_p99 / 1e3);
    json.push_back(JsonRow{"overload_admitted", kClients, kBatch, secs,
                           admitted_ns.size() / secs});
    json.back().p99_latency_ns = admitted_p99;
    json.push_back(JsonRow{"overload_shed", kClients, kBatch, secs,
                           shed_ns.size() / secs});
    json.back().p99_latency_ns = shed_p99;
  }

  std::printf(
      "\nExpectation: queries/s grows with threads (and stays roughly flat\n"
      "or improves with shard count at fixed threads) until the hardware's\n"
      "core count; results are identical across rows (same snapshot, same\n"
      "per-query algorithm). Under overload the admission gate sheds the\n"
      "excess in well under a millisecond while admitted work completes.\n");
  WriteJson(json);
}

}  // namespace
}  // namespace bench
}  // namespace coconut

int main() {
  // COCONUT_ADMIN_PORT=<p> serves /metrics, /tracez, ... while the bench
  // runs (CI curls them mid-run); COCONUT_ADMIN_LINGER_MS=<n> keeps the
  // process (and server) alive after the sweeps so short benches can still
  // be scraped.
  coconut::AdminServer* admin = coconut::AdminServer::MaybeStartFromEnv();
  coconut::bench::Run();
  if (admin != nullptr) {
    if (const char* env = std::getenv("COCONUT_ADMIN_LINGER_MS")) {
      const unsigned long ms = std::strtoul(env, nullptr, 10);
      std::printf("lingering %lu ms for admin scrapes on port %u\n", ms,
                  static_cast<unsigned>(admin->port()));
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    }
    admin->Stop();
  }
  return 0;
}
