// Seismic monitoring scenario (one of the paper's motivating applications):
// index a stream of sliding-window seismograms, then match incoming
// waveforms against the archive — first with a fast approximate probe, then
// exactly — and ingest a fresh batch of recordings (the paper's update
// workload, Fig 10a).
#include <cstdio>

#include "src/common/env.h"
#include "src/core/coconut_tree.h"
#include "src/series/dataset.h"
#include "src/series/distance.h"
#include "src/series/generator.h"

using namespace coconut;

int main() {
  std::string dir;
  if (!MakeTempDir("coconut-seismic-", &dir).ok()) return 1;
  const std::string raw_path = JoinPath(dir, "seismograms.bin");
  const std::string index_path = JoinPath(dir, "seismograms.ctree");

  // Archive: 30,000 overlapping windows from a continuous seismogram
  // (the paper used a 4-sample slide at 1 Hz over IRIS data).
  const size_t kCount = 30000, kLength = 256;
  SeismicGenerator archive_gen(kLength, /*seed=*/1, /*window_step=*/4);
  if (!WriteDataset(raw_path, &archive_gen, kCount).ok()) return 1;

  // Materialized index: waveform matching reads whole leaves, so storing
  // the series inside the index avoids raw-file fetches (paper Fig 9b).
  CoconutOptions options;
  options.summary.series_length = kLength;
  options.materialized = true;
  options.leaf_capacity = 500;
  if (!CoconutTree::Build(raw_path, index_path, options).ok()) return 1;
  std::unique_ptr<CoconutTree> tree;
  if (!CoconutTree::Open(index_path, raw_path, &tree).ok()) return 1;
  std::printf("seismic archive indexed: %llu windows, %llu leaves\n",
              (unsigned long long)tree->num_entries(),
              (unsigned long long)tree->num_leaves());

  // Incoming event: a waveform from a later part of the stream. Find the
  // most similar archived window (e.g. to match against known events).
  SeismicGenerator event_gen(kLength, /*seed=*/99, /*window_step=*/512);
  for (int event = 0; event < 3; ++event) {
    Series waveform = event_gen.NextSeries();
    SearchResult probe, exact;
    if (!tree->ApproxSearch(waveform.data(), 2, &probe).ok()) return 1;
    if (!tree->ExactSearch(waveform.data(), 2, &exact).ok()) return 1;
    const uint64_t window_id = exact.offset / (kLength * sizeof(Value));
    std::printf(
        "event %d: probe distance %.3f -> exact match window #%llu "
        "(distance %.3f, %llu records checked)\n",
        event, probe.distance, (unsigned long long)window_id, exact.distance,
        (unsigned long long)exact.visited_records);
  }

  // Overnight ingest: merge a new batch of windows into the index. The
  // merge is a single sequential pass (paper's bulk-update regime).
  std::vector<Series> batch;
  for (int i = 0; i < 2000; ++i) batch.push_back(event_gen.NextSeries());
  if (!tree->MergeBatch(batch).ok()) return 1;
  std::printf("ingested %zu new windows; index now holds %llu entries\n",
              batch.size(), (unsigned long long)tree->num_entries());

  (void)RemoveAll(dir);
  return 0;
}
