// Figure 8c: indexing space overhead. Paper result: median-based splitting
// (Coconut-Tree family) packs leaves ~97% full while prefix-based splitting
// (trie/ADS family) leaves them ~10% full, so Coconut-Tree-Full has the
// smallest materialized footprint (alongside DSTree) and Coconut-Tree needs
// about half the space of the other non-materialized indexes.
#include "bench/bench_util.h"
#include "src/baselines/ads/ads_index.h"
#include "src/baselines/dstree/dstree_index.h"
#include "src/baselines/rtree/rtree.h"
#include "src/baselines/vertical/vertical_index.h"
#include "src/core/coconut_tree.h"
#include "src/core/coconut_trie.h"

namespace coconut {
namespace bench {
namespace {

constexpr size_t kLength = 256;
// Leaf capacity scaled with N (paper: 2000 entries at N in the tens of
// millions; here N is tens of thousands).
constexpr size_t kLeafCapacity = 200;

SummaryOptions Summary() {
  SummaryOptions s;
  s.series_length = kLength;
  s.segments = 16;
  s.cardinality_bits = 8;
  return s;
}

void Run() {
  Banner("Figure 8c", "index space overhead and leaf fill factors");
  const size_t count = 40000 * Scale();
  BenchDir dir;
  const std::string raw = PrepareDataset(dir, DatasetKind::kRandomWalk, count,
                                         kLength, 13, "data.bin");
  const uint64_t raw_bytes = count * kLength * sizeof(Value);
  std::printf("dataset: %zu series (%.0f MB raw)\n\n", count,
              raw_bytes / 1048576.0);

  PrintHeader({"method", "index_size", "vs_raw", "leaves", "fill"});
  auto report = [&](const char* name, uint64_t bytes, uint64_t leaves,
                    double fill) {
    PrintRow({name, FmtMb(bytes), FmtDouble(bytes / double(raw_bytes), 2),
              FmtCount(leaves), FmtDouble(fill, 3)});
  };

  std::printf("--- materialized ---\n");
  {
    CoconutOptions opts;
    opts.summary = Summary();
    opts.leaf_capacity = kLeafCapacity;
    opts.materialized = true;
    opts.tmp_dir = dir.path();
    CheckOk(CoconutTree::Build(raw, dir.File("ctreefull.idx"), opts),
            "CTreeFull");
    std::unique_ptr<CoconutTree> t;
    CheckOk(CoconutTree::Open(dir.File("ctreefull.idx"), raw, &t), "open");
    uint64_t bytes;
    CheckOk(t->IndexSizeBytes(&bytes), "size");
    report("CTreeFull", bytes, t->num_leaves(), t->AvgLeafFill());
  }
  {
    CoconutOptions opts;
    opts.summary = Summary();
    opts.leaf_capacity = kLeafCapacity;
    opts.materialized = true;
    opts.tmp_dir = dir.path();
    CheckOk(CoconutTrie::Build(raw, dir.File("ctriefull.idx"), opts),
            "CTrieFull");
    std::unique_ptr<CoconutTrie> t;
    CheckOk(CoconutTrie::Open(dir.File("ctriefull.idx"), raw, &t), "open");
    uint64_t bytes;
    CheckOk(t->IndexSizeBytes(&bytes), "size");
    report("CTrieFull", bytes, t->num_pages(), t->AvgLeafFill());
  }
  {
    AdsOptions opts;
    opts.summary = Summary();
    opts.leaf_capacity = kLeafCapacity;
    opts.materialized = true;
    std::unique_ptr<AdsIndex> index;
    CheckOk(AdsIndex::Build(raw, dir.File("adsfull.pages"), opts, &index),
            "ADSFull");
    report("ADSFull", index->StorageBytes(), index->num_leaves(),
           index->AvgLeafFill());
  }
  {
    RtreeOptions opts;
    opts.summary = Summary();
    opts.leaf_capacity = kLeafCapacity;
    opts.materialized = true;
    opts.tmp_dir = dir.path();
    std::unique_ptr<RTree> tree;
    CheckOk(RTree::Build(raw, dir.File("rtree.pages"), opts, &tree),
            "R-tree");
    report("R-tree", tree->StorageBytes(), tree->num_leaves(),
           tree->AvgLeafFill());
  }
  {
    VerticalOptions opts;
    opts.series_length = kLength;
    std::unique_ptr<VerticalIndex> index;
    CheckOk(VerticalIndex::Build(raw, dir.File("vertical"), opts, &index),
            "Vertical");
    report("Vertical", index->StorageBytes(), 0, 1.0);
  }
  {
    DstreeOptions opts;
    opts.series_length = kLength;
    opts.leaf_capacity = kLeafCapacity;
    std::unique_ptr<DstreeIndex> index;
    CheckOk(DstreeIndex::Create(opts, dir.File("dstree.pages"), &index),
            "DSTree create");
    DatasetScanner scanner;
    CheckOk(scanner.Open(raw, kLength), "scan");
    Series s(kLength);
    Status st;
    uint64_t position = 0;
    while (scanner.Next(s.data(), &st)) {
      CheckOk(index->Insert(s.data(), position), "DSTree insert");
      position += kLength * sizeof(Value);
    }
    CheckOk(index->FlushAll(), "flush");
    report("DSTree", index->StorageBytes(), index->num_leaves(),
           index->AvgLeafFill());
  }

  std::printf("--- non-materialized ---\n");
  {
    CoconutOptions opts;
    opts.summary = Summary();
    opts.leaf_capacity = kLeafCapacity;
    opts.tmp_dir = dir.path();
    CheckOk(CoconutTree::Build(raw, dir.File("ctree.idx"), opts), "CTree");
    std::unique_ptr<CoconutTree> t;
    CheckOk(CoconutTree::Open(dir.File("ctree.idx"), raw, &t), "open");
    uint64_t bytes;
    CheckOk(t->IndexSizeBytes(&bytes), "size");
    report("CTree", bytes, t->num_leaves(), t->AvgLeafFill());
  }
  {
    CoconutOptions opts;
    opts.summary = Summary();
    opts.leaf_capacity = kLeafCapacity;
    opts.tmp_dir = dir.path();
    CheckOk(CoconutTrie::Build(raw, dir.File("ctrie.idx"), opts), "CTrie");
    std::unique_ptr<CoconutTrie> t;
    CheckOk(CoconutTrie::Open(dir.File("ctrie.idx"), raw, &t), "open");
    uint64_t bytes;
    CheckOk(t->IndexSizeBytes(&bytes), "size");
    report("CTrie", bytes, t->num_pages(), t->AvgLeafFill());
  }
  {
    AdsOptions opts;
    opts.summary = Summary();
    opts.leaf_capacity = kLeafCapacity;
    std::unique_ptr<AdsIndex> index;
    CheckOk(AdsIndex::Build(raw, dir.File("adsplus.pages"), opts, &index),
            "ADS+");
    report("ADS+", index->StorageBytes(), index->num_leaves(),
           index->AvgLeafFill());
  }
  {
    RtreeOptions opts;
    opts.summary = Summary();
    opts.leaf_capacity = kLeafCapacity;
    opts.tmp_dir = dir.path();
    std::unique_ptr<RTree> tree;
    CheckOk(RTree::Build(raw, dir.File("rtreeplus.pages"), opts, &tree),
            "R-tree+");
    report("R-tree+", tree->StorageBytes(), tree->num_leaves(),
           tree->AvgLeafFill());
  }
  std::printf(
      "\nExpectation (paper Fig 8c): median-split leaves ~97%% full vs\n"
      "~10%% for prefix splits; CTreeFull smallest materialized footprint;\n"
      "CTree about half the space of the other non-materialized indexes.\n");
}

}  // namespace
}  // namespace bench
}  // namespace coconut

int main() {
  coconut::bench::Run();
  return 0;
}
