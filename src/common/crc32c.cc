// CRC32C scalar backend (slice-by-8 table lookup), optional ARMv8 backend,
// and the one-shot backend dispatcher (see crc32c.h for the latching and
// override semantics).
#include "src/common/crc32c.h"

#include <cstdlib>
#include <cstring>

#include "src/common/crc32c_internal.h"

#if defined(__aarch64__) && defined(__ARM_FEATURE_CRC32)
#include <arm_acle.h>
#endif

namespace coconut {
namespace crc32c {
namespace {

// Reflected Castagnoli polynomial.
constexpr uint32_t kPoly = 0x82F63B78u;

// Slice-by-8 tables, generated once at first use (8 * 256 * 4 B = 8 KiB —
// smaller in the binary and exactly as fast as a checked-in literal table).
struct Tables {
  uint32_t t[8][256];
  Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c >> 1) ^ ((c & 1) ? kPoly : 0);
      t[0][i] = c;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = t[0][i];
      for (int s = 1; s < 8; ++s) {
        c = t[0][c & 0xFF] ^ (c >> 8);
        t[s][i] = c;
      }
    }
  }
};

const Tables& tables() {
  static const Tables kTables;
  return kTables;
}

uint32_t ExtendScalar(uint32_t crc, const uint8_t* p, size_t n) {
  const Tables& tb = tables();
  uint32_t c = ~crc;
  while (n != 0 && (reinterpret_cast<uintptr_t>(p) & 7u) != 0) {
    c = tb.t[0][(c ^ *p++) & 0xFF] ^ (c >> 8);
    --n;
  }
  while (n >= 8) {
    uint64_t v;
    std::memcpy(&v, p, 8);
    v ^= c;
    c = tb.t[7][v & 0xFF] ^ tb.t[6][(v >> 8) & 0xFF] ^
        tb.t[5][(v >> 16) & 0xFF] ^ tb.t[4][(v >> 24) & 0xFF] ^
        tb.t[3][(v >> 32) & 0xFF] ^ tb.t[2][(v >> 40) & 0xFF] ^
        tb.t[1][(v >> 48) & 0xFF] ^ tb.t[0][(v >> 56) & 0xFF];
    p += 8;
    n -= 8;
  }
  while (n != 0) {
    c = tb.t[0][(c ^ *p++) & 0xFF] ^ (c >> 8);
    --n;
  }
  return ~c;
}

#if defined(__aarch64__) && defined(__ARM_FEATURE_CRC32)
// Only compiled when the baseline target already enables the CRC extension
// (-march=...+crc), so no runtime HWCAP probe is needed.
uint32_t ExtendArm(uint32_t crc, const uint8_t* p, size_t n) {
  uint32_t c = ~crc;
  while (n != 0 && (reinterpret_cast<uintptr_t>(p) & 7u) != 0) {
    c = __crc32cb(c, *p++);
    --n;
  }
  while (n >= 8) {
    uint64_t v;
    std::memcpy(&v, p, 8);
    c = __crc32cd(c, v);
    p += 8;
    n -= 8;
  }
  while (n != 0) {
    c = __crc32cb(c, *p++);
    --n;
  }
  return ~c;
}
#endif

struct Backend {
  const char* name;
  internal::ExtendFn fn;
};

Backend Detect() {
  if (internal::ExtendFn hw = internal::Sse42Backend()) {
    return {"sse42", hw};
  }
#if defined(__aarch64__) && defined(__ARM_FEATURE_CRC32)
  return {"armv8", &ExtendArm};
#endif
  return {"scalar", &ExtendScalar};
}

Backend Select() {
  // Same override contract as src/simd/kernels.cc: an unrunnable or unknown
  // request falls through to auto-detection instead of crashing.
  if (const char* env = std::getenv("COCONUT_CRC32C")) {
    const std::string want(env);
    if (want == "scalar") return {"scalar", &ExtendScalar};
    if (want == "sse42") {
      if (internal::ExtendFn hw = internal::Sse42Backend()) {
        return {"sse42", hw};
      }
    }
  }
  return Detect();
}

const Backend& Latched() {
  static const Backend kBackend = Select();
  return kBackend;
}

}  // namespace

uint32_t Extend(uint32_t crc, const void* data, size_t n) {
  return Latched().fn(crc, static_cast<const uint8_t*>(data), n);
}

const char* BackendName() { return Latched().name; }

std::string ToHex(uint32_t crc) {
  static const char kDigits[] = "0123456789abcdef";
  std::string out(8, '0');
  for (int i = 7; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kDigits[crc & 0xF];
    crc >>= 4;
  }
  return out;
}

bool FromHex(const std::string& hex, uint32_t* crc) {
  if (hex.size() != 8) return false;
  uint32_t v = 0;
  for (char ch : hex) {
    uint32_t digit;
    if (ch >= '0' && ch <= '9') {
      digit = static_cast<uint32_t>(ch - '0');
    } else if (ch >= 'a' && ch <= 'f') {
      digit = static_cast<uint32_t>(ch - 'a') + 10;
    } else if (ch >= 'A' && ch <= 'F') {
      digit = static_cast<uint32_t>(ch - 'A') + 10;
    } else {
      return false;
    }
    v = (v << 4) | digit;
  }
  *crc = v;
  return true;
}

}  // namespace crc32c
}  // namespace coconut
