#include "src/baselines/isax2/isax2_index.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <queue>

#include "src/core/knn.h"
#include "src/series/distance.h"
#include "src/summary/mindist.h"
#include "src/summary/paa.h"
#include "src/summary/sax.h"

namespace coconut {

namespace {

/// Keeps the top `bits` bits of a full-cardinality symbol, zeroing the rest.
inline uint8_t MaskSymbol(uint8_t symbol, unsigned bits, unsigned card_bits) {
  if (bits == 0) return 0;
  const uint8_t mask =
      static_cast<uint8_t>(0xFFu << (card_bits - bits));
  return static_cast<uint8_t>(symbol & mask);
}

}  // namespace

Status Isax2Index::Create(const Isax2Options& options,
                          const std::string& storage_path,
                          const std::string& raw_path,
                          std::unique_ptr<Isax2Index>* out) {
  COCONUT_RETURN_IF_ERROR(options.Validate());
  if (options.summary.segments > 32) {
    return Status::InvalidArgument("iSAX root fan-out supports <= 32 segments");
  }
  std::unique_ptr<Isax2Index> index(new Isax2Index());
  index->options_ = options;
  index->entry_bytes_ = options.summary.segments + 8 +
                        (options.materialized
                             ? options.summary.series_length * sizeof(Value)
                             : 0);
  index->storage_path_ = storage_path;
  COCONUT_RETURN_IF_ERROR(
      WritableFile::Create(storage_path, &index->storage_write_));
  COCONUT_RETURN_IF_ERROR(
      RandomAccessFile::Open(storage_path, &index->storage_read_));
  COCONUT_RETURN_IF_ERROR(RawSeriesFile::Open(
      raw_path, options.summary.series_length, &index->raw_file_));
  *out = std::move(index);
  return Status::OK();
}

int64_t Isax2Index::AllocNode() {
  nodes_.push_back(Node{});
  Node& n = nodes_.back();
  n.symbols.assign(options_.summary.segments, 0);
  n.bits.assign(options_.summary.segments, 0);
  return static_cast<int64_t>(nodes_.size()) - 1;
}

Status Isax2Index::DescendToLeaf(const uint8_t* sax, int64_t* leaf_id) {
  const unsigned card = options_.summary.cardinality_bits;
  const size_t w = options_.summary.segments;
  // Root fan-out: the first bit of every segment (paper Figure 3).
  uint32_t root_key = 0;
  for (size_t j = 0; j < w; ++j) {
    root_key |= static_cast<uint32_t>((sax[j] >> (card - 1)) & 1u) << j;
  }
  auto it = root_children_.find(root_key);
  int64_t id;
  if (it == root_children_.end()) {
    id = AllocNode();
    Node& n = nodes_[id];
    for (size_t j = 0; j < w; ++j) {
      n.bits[j] = 1;
      n.symbols[j] = MaskSymbol(sax[j], 1, card);
    }
    root_children_[root_key] = id;
    ++num_leaves_;
  } else {
    id = it->second;
  }
  while (!nodes_[id].is_leaf) {
    const Node& n = nodes_[id];
    const int s = n.split_segment;
    const unsigned child_bits = n.bits[s] + 1u;
    const uint32_t bit = (sax[s] >> (card - child_bits)) & 1u;
    id = n.children[bit];
  }
  *leaf_id = id;
  return Status::OK();
}

Status Isax2Index::Insert(const Value* series, uint64_t offset) {
  std::vector<uint8_t> sax(options_.summary.segments);
  SaxFromSeries(series, options_.summary, sax.data());
  return InsertSummary(sax.data(), offset, series);
}

Status Isax2Index::InsertSummary(const uint8_t* sax, uint64_t offset,
                                 const Value* series) {
  if (options_.materialized && series == nullptr) {
    return Status::InvalidArgument(
        "materialized insert requires the series payload");
  }
  int64_t leaf;
  COCONUT_RETURN_IF_ERROR(DescendToLeaf(sax, &leaf));
  std::vector<uint8_t> entry(entry_bytes_);
  const size_t w = options_.summary.segments;
  std::memcpy(entry.data(), sax, w);
  std::memcpy(entry.data() + w, &offset, 8);
  if (options_.materialized) {
    std::memcpy(entry.data() + w + 8, series,
                options_.summary.series_length * sizeof(Value));
  }
  return AppendToLeaf(leaf, entry.data());
}

Status Isax2Index::AppendToLeaf(int64_t leaf_id, const uint8_t* entry) {
  Node& n = nodes_[leaf_id];
  n.buffer.insert(n.buffer.end(), entry, entry + entry_bytes_);
  ++n.total_count;
  ++num_entries_;
  buffered_bytes_ += entry_bytes_;
  if (buffered_bytes_ > options_.memory_budget_bytes) {
    COCONUT_RETURN_IF_ERROR(FlushAll());
  }
  return Status::OK();
}

Status Isax2Index::FlushAll() {
  // Splits append to nodes_; the snapshot is safe because newly created
  // leaves are written out immediately and have empty buffers.
  const size_t snapshot = nodes_.size();
  for (size_t id = 0; id < snapshot; ++id) {
    if (nodes_[id].is_leaf && !nodes_[id].buffer.empty()) {
      COCONUT_RETURN_IF_ERROR(FlushLeaf(static_cast<int64_t>(id)));
    }
  }
  return Status::OK();
}

Status Isax2Index::ReadLeafEntries(const Node& node,
                                   std::vector<uint8_t>* out) {
  out->clear();
  const size_t page_bytes = options_.leaf_capacity * entry_bytes_;
  std::vector<uint8_t> page(page_bytes);
  uint64_t remaining = node.disk_count;
  for (size_t p = 0; p < node.pages.size() && remaining > 0; ++p) {
    const uint64_t in_page =
        std::min<uint64_t>(remaining, options_.leaf_capacity);
    COCONUT_RETURN_IF_ERROR(storage_read_->Read(
        static_cast<uint64_t>(node.pages[p]) * page_bytes,
        in_page * entry_bytes_, page.data()));
    out->insert(out->end(), page.data(),
                page.data() + in_page * entry_bytes_);
    remaining -= in_page;
  }
  return Status::OK();
}

Status Isax2Index::WriteLeafEntries(Node* node,
                                    const std::vector<uint8_t>& entries) {
  const size_t page_bytes = options_.leaf_capacity * entry_bytes_;
  const uint64_t count = entries.size() / entry_bytes_;
  const size_t pages_needed = static_cast<size_t>(
      std::max<uint64_t>(1, (count + options_.leaf_capacity - 1) /
                                options_.leaf_capacity));
  while (node->pages.size() < pages_needed) {
    node->pages.push_back(next_page_++);
  }
  std::vector<uint8_t> page(page_bytes, 0);
  uint64_t written = 0;
  for (size_t p = 0; p < pages_needed; ++p) {
    const uint64_t in_page =
        std::min<uint64_t>(count - written, options_.leaf_capacity);
    // Only the occupied prefix of the page is written (allocation stays
    // page-granular, preserving the space amplification of sparse leaves).
    // Leaf pages are scattered over the storage file (allocation order), so
    // these writes are classified random — the paper's non-contiguity.
    COCONUT_RETURN_IF_ERROR(storage_write_->WriteAt(
        static_cast<uint64_t>(node->pages[p]) * page_bytes,
        entries.data() + written * entry_bytes_, in_page * entry_bytes_));
    written += in_page;
  }
  node->disk_count = count;
  return Status::OK();
}

Status Isax2Index::FlushLeaf(int64_t leaf_id) {
  std::vector<uint8_t> entries;
  COCONUT_RETURN_IF_ERROR(ReadLeafEntries(nodes_[leaf_id], &entries));
  {
    Node& n = nodes_[leaf_id];
    entries.insert(entries.end(), n.buffer.begin(), n.buffer.end());
    buffered_bytes_ -= n.buffer.size();
    n.buffer.clear();
    n.buffer.shrink_to_fit();
  }
  const uint64_t count = entries.size() / entry_bytes_;
  if (count <= options_.leaf_capacity || nodes_[leaf_id].unsplittable) {
    return WriteLeafEntries(&nodes_[leaf_id], entries);
  }
  return SplitLeaf(leaf_id, std::move(entries), options_.leaf_capacity);
}

int Isax2Index::ChooseSplitSegment(
    const Node& node, const std::vector<uint8_t>& entries) const {
  const unsigned card = options_.summary.cardinality_bits;
  const size_t w = options_.summary.segments;
  const uint64_t count = entries.size() / entry_bytes_;
  int best = -1;
  uint64_t best_balance = 0;
  unsigned best_bits = card + 1;
  for (size_t j = 0; j < w; ++j) {
    if (node.bits[j] >= card) continue;
    uint64_t ones = 0;
    for (uint64_t i = 0; i < count; ++i) {
      const uint8_t sym = entries[i * entry_bytes_ + j];
      ones += (sym >> (card - node.bits[j] - 1)) & 1u;
    }
    const uint64_t balance = std::min(ones, count - ones);
    if (balance == 0) continue;  // does not divide the series at all
    // Prefer the most even division; break ties toward the least-refined
    // segment (iSAX 2.0's round-robin tendency).
    if (balance > best_balance ||
        (balance == best_balance && node.bits[j] < best_bits)) {
      best = static_cast<int>(j);
      best_balance = balance;
      best_bits = node.bits[j];
    }
  }
  return best;
}

Status Isax2Index::SplitLeaf(int64_t leaf_id, std::vector<uint8_t> entries,
                             size_t target) {
  const int s = ChooseSplitSegment(nodes_[leaf_id], entries);
  if (s < 0) {
    // Identical prefixes on every splittable bit: an unsplittable jumbo
    // leaf, stored across overflow pages.
    nodes_[leaf_id].unsplittable = true;
    return WriteLeafEntries(&nodes_[leaf_id], entries);
  }
  const unsigned card = options_.summary.cardinality_bits;
  const int64_t left = AllocNode();
  const int64_t right = AllocNode();
  {
    Node& parent = nodes_[leaf_id];
    for (int64_t child_id : {left, right}) {
      Node& c = nodes_[child_id];
      c.symbols = parent.symbols;
      c.bits = parent.bits;
      c.bits[s] = static_cast<uint8_t>(parent.bits[s] + 1);
    }
    nodes_[right].symbols[s] = static_cast<uint8_t>(
        nodes_[right].symbols[s] | (1u << (card - parent.bits[s] - 1)));
    // The left child inherits the parent's pages (rewritten below); the
    // right child allocates fresh pages elsewhere in the file.
    nodes_[left].pages = std::move(parent.pages);
    parent.pages.clear();
    parent.is_leaf = false;
    parent.split_segment = s;
    parent.children[0] = left;
    parent.children[1] = right;
    parent.disk_count = 0;
    num_leaves_ += 1;  // one leaf became two
  }

  const uint64_t count = entries.size() / entry_bytes_;
  const unsigned child_bit_pos = card - nodes_[left].bits[s];
  std::vector<uint8_t> left_entries, right_entries;
  for (uint64_t i = 0; i < count; ++i) {
    const uint8_t* e = entries.data() + i * entry_bytes_;
    const uint32_t bit = (e[s] >> child_bit_pos) & 1u;
    std::vector<uint8_t>& dst = bit ? right_entries : left_entries;
    dst.insert(dst.end(), e, e + entry_bytes_);
  }
  entries.clear();
  entries.shrink_to_fit();
  nodes_[left].total_count = left_entries.size() / entry_bytes_;
  nodes_[right].total_count = right_entries.size() / entry_bytes_;

  if (left_entries.size() / entry_bytes_ > target) {
    COCONUT_RETURN_IF_ERROR(SplitLeaf(left, std::move(left_entries), target));
  } else {
    COCONUT_RETURN_IF_ERROR(WriteLeafEntries(&nodes_[left], left_entries));
  }
  if (right_entries.size() / entry_bytes_ > target) {
    COCONUT_RETURN_IF_ERROR(
        SplitLeaf(right, std::move(right_entries), target));
  } else {
    COCONUT_RETURN_IF_ERROR(WriteLeafEntries(&nodes_[right], right_entries));
  }
  return Status::OK();
}

int64_t Isax2Index::FindLeaf(const uint8_t* sax) const {
  const unsigned card = options_.summary.cardinality_bits;
  const size_t w = options_.summary.segments;
  uint32_t root_key = 0;
  for (size_t j = 0; j < w; ++j) {
    root_key |= static_cast<uint32_t>((sax[j] >> (card - 1)) & 1u) << j;
  }
  auto it = root_children_.find(root_key);
  if (it == root_children_.end()) return -1;
  int64_t id = it->second;
  while (!nodes_[id].is_leaf) {
    const Node& n = nodes_[id];
    const int s = n.split_segment;
    const unsigned child_bits = n.bits[s] + 1u;
    const uint32_t bit = (sax[s] >> (card - child_bits)) & 1u;
    id = n.children[bit];
  }
  return id;
}

Status Isax2Index::RefineLeafFor(const uint8_t* sax, size_t target) {
  const int64_t leaf = FindLeaf(sax);
  if (leaf < 0) return Status::OK();  // query subtree does not exist
  if (nodes_[leaf].total_count <= target || nodes_[leaf].unsplittable) {
    return Status::OK();
  }
  std::vector<uint8_t> entries;
  COCONUT_RETURN_IF_ERROR(ReadLeafEntries(nodes_[leaf], &entries));
  {
    Node& n = nodes_[leaf];
    entries.insert(entries.end(), n.buffer.begin(), n.buffer.end());
    buffered_bytes_ -= n.buffer.size();
    n.buffer.clear();
  }
  return SplitLeaf(leaf, std::move(entries), target);
}

Status Isax2Index::LeafTrueDistances(const Node& node, const Value* query,
                                     KnnCollector* knn, uint64_t* visited,
                                     uint64_t* pages_read) {
  std::vector<uint8_t> entries;
  COCONUT_RETURN_IF_ERROR(ReadLeafEntries(node, &entries));
  *pages_read += node.pages.size();
  entries.insert(entries.end(), node.buffer.begin(), node.buffer.end());
  const size_t w = options_.summary.segments;
  const size_t n = options_.summary.series_length;
  const uint64_t count = entries.size() / entry_bytes_;
  for (uint64_t i = 0; i < count; ++i) {
    const uint8_t* e = entries.data() + i * entry_bytes_;
    uint64_t offset;
    std::memcpy(&offset, e + w, 8);
    double d;
    if (options_.materialized) {
      const Value* series = reinterpret_cast<const Value*>(e + w + 8);
      d = SquaredEuclideanEarlyAbandon(series, query, n, knn->bound_sq());
    } else {
      fetch_buf_.resize(n);
      COCONUT_RETURN_IF_ERROR(raw_file_->ReadAt(offset, fetch_buf_.data()));
      d = SquaredEuclideanEarlyAbandon(fetch_buf_.data(), query, n,
                                       knn->bound_sq());
    }
    ++*visited;
    knn->Offer(offset, d);
  }
  return Status::OK();
}

Status Isax2Index::ApproxSearch(const Value* query, SearchResult* result,
                                size_t k) {
  if (root_children_.empty()) return Status::NotFound("empty index");
  const SummaryOptions& sum = options_.summary;
  std::vector<double> paa(sum.segments);
  PaaTransform(query, sum.series_length, sum.segments, paa.data());
  std::vector<uint8_t> sax(sum.segments);
  SaxFromPaa(paa.data(), sum, sax.data());

  // Follow the query's own path if that root subtree exists; otherwise pick
  // the root child with the smallest lower bound.
  const unsigned card = sum.cardinality_bits;
  uint32_t root_key = 0;
  for (size_t j = 0; j < sum.segments; ++j) {
    root_key |= static_cast<uint32_t>((sax[j] >> (card - 1)) & 1u) << j;
  }
  int64_t id = -1;
  auto it = root_children_.find(root_key);
  if (it != root_children_.end()) {
    id = it->second;
  } else {
    double best = std::numeric_limits<double>::infinity();
    for (const auto& [key, child] : root_children_) {
      const Node& n = nodes_[child];
      const double lb = MindistSqPaaToSaxPrefix(paa.data(), n.symbols.data(),
                                                n.bits.data(), sum);
      if (lb < best) {
        best = lb;
        id = child;
      }
    }
  }
  while (!nodes_[id].is_leaf) {
    const Node& n = nodes_[id];
    const int s = n.split_segment;
    const unsigned child_bits = n.bits[s] + 1u;
    const uint32_t bit = (sax[s] >> (card - child_bits)) & 1u;
    id = n.children[bit];
  }

  KnnCollector knn(k);
  uint64_t visited = 0;
  uint64_t pages = 0;
  COCONUT_RETURN_IF_ERROR(LeafTrueDistances(nodes_[id], query, &knn,
                                            &visited, &pages));
  knn.Finalize(result);
  result->visited_records = visited;
  result->leaves_read = pages;
  return Status::OK();
}

Status Isax2Index::ExactSearch(const Value* query, SearchResult* result,
                               size_t k) {
  SearchResult approx;
  COCONUT_RETURN_IF_ERROR(ApproxSearch(query, &approx, k));
  KnnCollector knn(k);
  knn.Seed(approx);
  uint64_t visited = approx.visited_records;
  uint64_t pages = approx.leaves_read;

  const SummaryOptions& sum = options_.summary;
  std::vector<double> paa(sum.segments);
  PaaTransform(query, sum.series_length, sum.segments, paa.data());

  using Item = std::pair<double, int64_t>;  // (mindist_sq, node)
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
  for (const auto& [key, child] : root_children_) {
    const Node& n = nodes_[child];
    pq.push({MindistSqPaaToSaxPrefix(paa.data(), n.symbols.data(),
                                     n.bits.data(), sum),
             child});
  }
  while (!pq.empty()) {
    const auto [lb, id] = pq.top();
    pq.pop();
    if (lb >= knn.bound_sq()) break;  // everything else is pruned
    const Node& n = nodes_[id];
    if (n.is_leaf) {
      COCONUT_RETURN_IF_ERROR(LeafTrueDistances(n, query, &knn, &visited,
                                                &pages));
    } else {
      for (int64_t child : n.children) {
        const Node& c = nodes_[child];
        pq.push({MindistSqPaaToSaxPrefix(paa.data(), c.symbols.data(),
                                         c.bits.data(), sum),
                 child});
      }
    }
  }
  knn.Finalize(result);
  result->visited_records = visited;
  result->leaves_read = pages;
  return Status::OK();
}

Status Isax2Index::ReopenRaw() {
  const std::string path = raw_file_->path();
  return RawSeriesFile::Open(path, options_.summary.series_length,
                             &raw_file_);
}

Status Isax2Index::MaterializeInto(const std::string& storage_path) {
  if (options_.materialized) {
    return Status::InvalidArgument("index is already materialized");
  }
  COCONUT_RETURN_IF_ERROR(FlushAll());
  const size_t w = options_.summary.segments;
  const size_t series_len = options_.summary.series_length;
  const size_t new_entry_bytes = w + 8 + series_len * sizeof(Value);

  // Raw-data source: cache if the budget allows, else random per-series
  // fetches (leaf order is unrelated to file order).
  std::vector<Value> raw_cache;
  const bool cached =
      raw_file_->size_bytes() <= options_.memory_budget_bytes &&
      raw_file_->LoadAll(options_.memory_budget_bytes, &raw_cache).ok();

  std::unique_ptr<WritableFile> new_write;
  COCONUT_RETURN_IF_ERROR(WritableFile::Create(storage_path, &new_write));

  const size_t new_page_bytes = options_.leaf_capacity * new_entry_bytes;
  std::vector<uint8_t> page(new_page_bytes);
  std::vector<Value> series(series_len);
  int64_t new_next_page = 0;
  for (Node& node : nodes_) {
    if (!node.is_leaf) continue;
    std::vector<uint8_t> entries;
    COCONUT_RETURN_IF_ERROR(ReadLeafEntries(node, &entries));
    const uint64_t count = entries.size() / entry_bytes_;
    std::vector<int64_t> new_pages;
    uint64_t i = 0;
    while (i < count || (count == 0 && new_pages.empty())) {
      const uint64_t in_page =
          std::min<uint64_t>(count - i, options_.leaf_capacity);
      for (uint64_t k = 0; k < in_page; ++k, ++i) {
        const uint8_t* e = entries.data() + i * entry_bytes_;
        uint64_t offset;
        std::memcpy(&offset, e + w, 8);
        const Value* src;
        if (cached) {
          src = raw_cache.data() + offset / sizeof(Value);
        } else {
          COCONUT_RETURN_IF_ERROR(raw_file_->ReadAt(offset, series.data()));
          src = series.data();
        }
        uint8_t* slot = page.data() + k * new_entry_bytes;
        std::memcpy(slot, e, w + 8);
        std::memcpy(slot + w + 8, src, series_len * sizeof(Value));
      }
      // Only the occupied prefix is written; allocation is page-granular.
      COCONUT_RETURN_IF_ERROR(new_write->WriteAt(
          static_cast<uint64_t>(new_next_page) * new_page_bytes, page.data(),
          in_page * new_entry_bytes));
      new_pages.push_back(new_next_page++);
      if (count == 0) break;
    }
    node.pages = std::move(new_pages);
    node.disk_count = count;
  }

  storage_write_ = std::move(new_write);
  storage_path_ = storage_path;
  COCONUT_RETURN_IF_ERROR(
      RandomAccessFile::Open(storage_path, &storage_read_));
  entry_bytes_ = new_entry_bytes;
  next_page_ = new_next_page;
  options_.materialized = true;
  return Status::OK();
}

double Isax2Index::AvgLeafFill() const {
  if (next_page_ == 0) return 0.0;
  return static_cast<double>(num_entries_) /
         (static_cast<double>(next_page_) *
          static_cast<double>(options_.leaf_capacity));
}

uint64_t Isax2Index::StorageBytes() const {
  // Disk-block-granular accounting (4 KiB blocks, one block minimum per
  // leaf): every leaf occupies its entries rounded up to whole blocks, the
  // allocation a per-leaf-file layout (as in the original ADS) would use.
  constexpr uint64_t kBlock = 4096;
  uint64_t total = 0;
  for (const Node& n : nodes_) {
    if (!n.is_leaf) continue;
    const uint64_t occupied = n.total_count * entry_bytes_;
    total += std::max<uint64_t>(1, (occupied + kBlock - 1) / kBlock) * kBlock;
  }
  return total;
}

}  // namespace coconut
