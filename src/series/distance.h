// Euclidean distance between equal-length series, the distance metric used
// throughout the paper's evaluation (paper §2). Squared forms avoid the sqrt
// until results are reported; the early-abandoning variant stops as soon as
// the partial sum exceeds a best-so-far bound. Both dispatch to the SIMD
// kernel layer (src/simd/kernels.h), selected once per process.
#ifndef COCONUT_SERIES_DISTANCE_H_
#define COCONUT_SERIES_DISTANCE_H_

#include <cmath>
#include <limits>

#include "src/series/series.h"
#include "src/simd/kernels.h"

namespace coconut {

/// Squared Euclidean distance between two series of length n.
inline double SquaredEuclidean(const Value* a, const Value* b, size_t n) {
  return simd::Kernels().squared_euclidean(a, b, n);
}

/// Squared Euclidean distance with early abandoning: returns a value
/// >= `bound_sq` as soon as the partial sum crosses `bound_sq`. The bound
/// is checked after every full 16-element block; the trailing partial
/// block is summed straight through (the result is the full sum whenever
/// no full-block check fires).
inline double SquaredEuclideanEarlyAbandon(const Value* a, const Value* b,
                                           size_t n, double bound_sq) {
  return simd::Kernels().squared_euclidean_ea(a, b, n, bound_sq);
}

inline double Euclidean(const Value* a, const Value* b, size_t n) {
  return std::sqrt(SquaredEuclidean(a, b, n));
}

inline double Euclidean(SeriesView a, SeriesView b) {
  return Euclidean(a.data, b.data, a.length);
}

}  // namespace coconut

#endif  // COCONUT_SERIES_DISTANCE_H_
