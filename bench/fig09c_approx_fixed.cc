// Figure 9c: approximate query answering at a fixed dataset size (the
// paper's 40GB point), including the effect of visiting more leaves
// (CTree(1) vs CTree(10)). Paper result: Coconut family fastest;
// materialized variants fastest of all.
#include "bench/bench_util.h"
#include "bench/query_fixture.h"

namespace coconut {
namespace bench {
namespace {

constexpr size_t kLength = 256;
// Leaf capacity scaled with the laptop-scale N so that leaf/N matches the
// paper's ratio (2000 leaves of 2000 entries over tens of millions).
constexpr size_t kLeafCapacity = 100;

void Run() {
  Banner("Figure 9c", "approximate query answering, fixed dataset size");
  const size_t count = 40000 * Scale();
  const size_t queries = 100;
  BenchDir dir;
  const std::string raw = PrepareDataset(dir, DatasetKind::kRandomWalk, count,
                                         kLength, 19, "data.bin");
  QueryFixture f = BuildQueryFixture(dir, raw, kLength, kLeafCapacity, 64ull << 20);
  auto qs = MakeQueries(DatasetKind::kRandomWalk, queries, kLength, 1900);

  PrintHeader({"method", "avg_query_ms", "avg_distance"});
  auto run = [&](const char* name, auto&& approx) {
    Stopwatch w;
    double dist = 0.0;
    for (const Series& q : qs) {
      SearchResult r;
      CheckOk(approx(q, &r), name);
      dist += r.distance;
    }
    PrintRow({name, FmtDouble(w.ElapsedMillis() / queries, 3),
              FmtDouble(dist / queries, 3)});
  };
  run("CTree(1)", [&](const Series& q, SearchResult* r) {
    return f.ctree->ApproxSearch(q.data(), 1, r);
  });
  run("CTree(10)", [&](const Series& q, SearchResult* r) {
    return f.ctree->ApproxSearch(q.data(), 10, r);
  });
  run("CTreeFull(1)", [&](const Series& q, SearchResult* r) {
    return f.ctree_full->ApproxSearch(q.data(), 1, r);
  });
  run("CTreeFull(10)", [&](const Series& q, SearchResult* r) {
    return f.ctree_full->ApproxSearch(q.data(), 10, r);
  });
  run("ADS+", [&](const Series& q, SearchResult* r) {
    return f.ads_plus->ApproxSearch(q.data(), r);
  });
  run("ADSFull", [&](const Series& q, SearchResult* r) {
    return f.ads_full->ApproxSearch(q.data(), r);
  });
  std::printf(
      "\nExpectation (paper Fig 9c): Coconut faster than ADS; widening the\n"
      "leaf window (CTree(10)) costs time but improves the answer.\n");
}

}  // namespace
}  // namespace bench
}  // namespace coconut

int main() {
  coconut::bench::Run();
  return 0;
}
