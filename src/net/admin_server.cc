#include "src/net/admin_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/common/crc32c.h"
#include "src/exec/thread_pool.h"
#include "src/obs/metrics.h"
#include "src/obs/slow_query_log.h"
#include "src/obs/trace.h"
#include "src/simd/kernels.h"

namespace coconut {

namespace {

struct AdminMetrics {
  Counter* requests;
  Counter* not_found;
};

AdminMetrics& Metrics() {
  static AdminMetrics m = []() {
    MetricRegistry& reg = MetricRegistry::Default();
    return AdminMetrics{reg.GetCounter("net.admin.requests"),
                        reg.GetCounter("net.admin.not_found")};
  }();
  return m;
}

void AppendJsonEscaped(const std::string& s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

/// `?duration_ms=N` -> N; `fallback` when absent or malformed.
uint64_t QueryParam(const std::string& target, const std::string& key,
                    uint64_t fallback) {
  const size_t q = target.find('?');
  if (q == std::string::npos) return fallback;
  std::string rest = target.substr(q + 1);
  const std::string prefix = key + "=";
  size_t pos = 0;
  while (pos < rest.size()) {
    size_t amp = rest.find('&', pos);
    if (amp == std::string::npos) amp = rest.size();
    const std::string pair = rest.substr(pos, amp - pos);
    if (pair.compare(0, prefix.size(), prefix) == 0) {
      char* end = nullptr;
      const unsigned long long v =
          std::strtoull(pair.c_str() + prefix.size(), &end, 10);
      if (end != pair.c_str() + prefix.size()) return v;
      return fallback;
    }
    pos = amp + 1;
  }
  return fallback;
}

std::string StatuszJson(uint64_t start_ns) {
  const uint64_t uptime_ns = Tracer::NowNanos() - start_ns;
  std::string out = "{";
  out += "\"build\":\"";
#ifdef NDEBUG
  out += "release";
#else
  out += "debug";
#endif
  out += "\",\"compiler\":\"";
#if defined(__VERSION__)
  AppendJsonEscaped(__VERSION__, &out);
#else
  out += "unknown";
#endif
  out += "\",\"simd_kernel\":\"";
  out += simd::Kernels().name;
  out += "\",\"uptime_s\":";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f",
                static_cast<double>(uptime_ns) / 1e9);
  out += buf;
  std::snprintf(buf, sizeof(buf), ",\"pool_threads\":%u",
                ThreadPool::Shared()->parallelism());
  out += buf;
  out += ",\"tracing_active\":";
  out += Tracer::Default().active() ? "true" : "false";
  // Data-integrity summary (the checksum counters live in the registry,
  // but operators asking "is this store healthy?" should not have to know
  // the metric names).
  MetricRegistry& reg = MetricRegistry::Default();
  out += ",\"integrity\":{\"crc32c_backend\":\"";
  out += crc32c::BackendName();
  out += "\"";
  std::snprintf(buf, sizeof(buf), ",\"checksums_verified\":%llu",
                static_cast<unsigned long long>(
                    reg.GetCounter("io.checksum.verified")->Value()));
  out += buf;
  std::snprintf(buf, sizeof(buf), ",\"checksums_failed\":%llu",
                static_cast<unsigned long long>(
                    reg.GetCounter("io.checksum.failed")->Value()));
  out += buf;
  std::snprintf(buf, sizeof(buf), ",\"shards_quarantined\":%lld",
                static_cast<long long>(
                    reg.GetGauge("store.shard.quarantined")->Value()));
  out += buf;
  std::snprintf(buf, sizeof(buf), ",\"journal_checkpoints\":%llu",
                static_cast<unsigned long long>(
                    reg.GetCounter("store.journal.checkpoints")->Value()));
  out += buf;
  out += "}";
  // Admission-control summary: is the engine shedding load right now, and
  // how much has it shed since start? (Counters are zero when no
  // AdmissionController is wired in.)
  out += ",\"admission\":{";
  std::snprintf(buf, sizeof(buf), "\"admitted\":%llu",
                static_cast<unsigned long long>(
                    reg.GetCounter("exec.admission.admitted")->Value()));
  out += buf;
  std::snprintf(buf, sizeof(buf), ",\"shed\":%llu",
                static_cast<unsigned long long>(
                    reg.GetCounter("exec.admission.shed")->Value()));
  out += buf;
  std::snprintf(buf, sizeof(buf), ",\"inflight\":%lld",
                static_cast<long long>(
                    reg.GetGauge("exec.admission.inflight")->Value()));
  out += buf;
  std::snprintf(buf, sizeof(buf), ",\"queued_bytes\":%lld",
                static_cast<long long>(
                    reg.GetGauge("exec.admission.queued_bytes")->Value()));
  out += buf;
  out += "}";
  out += ",\"gauges\":{";
  const RegistrySnapshot snap = MetricRegistry::Default().Snapshot();
  bool first = true;
  for (const auto& [name, value] : snap.gauges) {
    if (!first) out += ',';
    first = false;
    out += '"';
    AppendJsonEscaped(name, &out);
    std::snprintf(buf, sizeof(buf), "\":%lld",
                  static_cast<long long>(value));
    out += buf;
  }
  out += "}}\n";
  return out;
}

}  // namespace

AdminServer::~AdminServer() { Stop(); }

Status AdminServer::Start(uint16_t port) {
  MutexLock lock(&lifecycle_mu_);
  if (running()) return Status::InvalidArgument("admin server already running");

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("admin socket: ") +
                           std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IOError("admin bind 127.0.0.1:" + std::to_string(port) +
                           ": " + err);
  }
  if (::listen(fd, 16) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IOError("admin listen: " + err);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IOError("admin getsockname: " + err);
  }

  listen_fd_ = fd;
  port_.store(ntohs(addr.sin_port), std::memory_order_release);
  start_ns_.store(Tracer::NowNanos(), std::memory_order_release);
  running_.store(true, std::memory_order_release);
  // The serve thread gets the socket by value and never reads lifecycle
  // state, so a concurrent Stop() can tear the members down safely.
  // coconut-lint: allow(raw-thread) -- see admin_server.h
  thread_ = std::thread([this, fd]() { ServeLoop(fd); });
  return Status::OK();
}

void AdminServer::Stop() {
  // Serialized with Start and with concurrent Stop callers; the serve
  // thread never takes lifecycle_mu_, so joining under it cannot deadlock.
  MutexLock lock(&lifecycle_mu_);
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void AdminServer::SetHealthProbe(HealthProbe probe) {
  MutexLock lock(&health_mu_);
  health_ = std::move(probe);
}

void AdminServer::SetHealthCheck(HealthCheck check) {
  if (!check) {
    SetHealthProbe(nullptr);
    return;
  }
  SetHealthProbe([check = std::move(check)]() {
    HealthStatus h;
    const Status s = check();
    if (!s.ok()) {
      h.state = HealthStatus::State::kUnavailable;
      h.detail = s.ToString();
    }
    return h;
  });
}

void AdminServer::ServeLoop(int listen_fd) {
  // Poll-gated accept: wake at least every 100 ms to notice Stop().
  while (running()) {
    pollfd pfd;
    pfd.fd = listen_fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int r = ::poll(&pfd, 1, 100);
    if (r <= 0) continue;  // timeout or EINTR; re-check running()
    const int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn < 0) continue;
    HandleConnection(conn);
    ::close(conn);
  }
}

void AdminServer::HandleConnection(int fd) {
  // Bounded blocking read of the request head. Clients are curl / scrape
  // loops on loopback; a 2 s receive timeout defends against a stalled
  // connection pinning the (single) serve thread. The same bound applies
  // to sends: a client that never drains its receive buffer would
  // otherwise block the response loop forever once the socket buffer
  // fills (large /metrics bodies make this reachable in practice).
  timeval tv;
  tv.tv_sec = 2;
  tv.tv_usec = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  std::string req;
  char buf[2048];
  while (req.size() < 8192 && req.find("\r\n\r\n") == std::string::npos &&
         req.find("\n\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    req.append(buf, static_cast<size_t>(n));
  }
  const size_t line_end = req.find_first_of("\r\n");
  if (line_end == std::string::npos) return;  // no request line; drop

  // "GET /path?query HTTP/1.1"
  const std::string line = req.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                              : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) return;
  const std::string method = line.substr(0, sp1);
  const std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);

  const Response resp = Handle(method, target);

  std::string head = "HTTP/1.1 " + std::to_string(resp.status) + " ";
  switch (resp.status) {
    case 200:
      head += "OK";
      break;
    case 404:
      head += "Not Found";
      break;
    case 405:
      head += "Method Not Allowed";
      break;
    case 503:
      head += "Service Unavailable";
      break;
    default:
      head += "Error";
  }
  head += "\r\nContent-Type: " + resp.content_type;
  head += "\r\nContent-Length: " + std::to_string(resp.body.size());
  head += "\r\nConnection: close\r\n\r\n";

  const std::string out = head + resp.body;
  size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n = ::send(fd, out.data() + sent, out.size() - sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
}

AdminServer::Response AdminServer::Handle(const std::string& method,
                                          const std::string& target) {
  Metrics().requests->Increment();
  Response resp;
  if (method != "GET") {
    resp.status = 405;
    resp.body = "only GET is supported\n";
    return resp;
  }
  const size_t q = target.find('?');
  const std::string path =
      q == std::string::npos ? target : target.substr(0, q);

  if (path == "/metrics") {
    resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
    resp.body = MetricRegistry::Default().ToPrometheusText();
  } else if (path == "/metrics.json") {
    resp.content_type = "application/json";
    resp.body = MetricRegistry::Default().ToJson();
  } else if (path == "/healthz") {
    HealthProbe probe;
    {
      MutexLock lock(&health_mu_);
      probe = health_;
    }
    const HealthStatus h = probe ? probe() : HealthStatus{};
    switch (h.state) {
      case HealthStatus::State::kOk:
        resp.body = "ok\n";
        break;
      case HealthStatus::State::kDegraded:
        // Still 200: the engine answers queries, just over a partial view.
        // Load balancers keep routing; operators read the detail.
        resp.body = "degraded: " + h.detail + "\n";
        break;
      case HealthStatus::State::kUnavailable:
        resp.status = 503;
        resp.body = h.detail + "\n";
        break;
    }
  } else if (path == "/statusz") {
    resp.content_type = "application/json";
    resp.body = StatuszJson(start_ns_.load(std::memory_order_acquire));
  } else if (path == "/queryz") {
    resp.content_type = "application/json";
    resp.body = SlowQueryLog::Default().ToJson();
  } else if (path == "/tracez") {
    uint64_t ms = QueryParam(target, "duration_ms", 200);
    if (ms < 1) ms = 1;
    if (ms > 10000) ms = 10000;
    resp.content_type = "application/json";
    resp.body = Tracer::Default().CaptureWindow(ms);
  } else {
    Metrics().not_found->Increment();
    resp.status = 404;
    resp.body = "unknown path; try /metrics /metrics.json /healthz "
                "/statusz /queryz /tracez?duration_ms=N\n";
  }
  return resp;
}

AdminServer* AdminServer::MaybeStartFromEnv() {
  const char* env = std::getenv("COCONUT_ADMIN_PORT");
  if (env == nullptr || *env == '\0') return nullptr;
  const uint16_t port =
      static_cast<uint16_t>(std::strtoul(env, nullptr, 10));
  AdminServer* server = new AdminServer();  // leaked: lives until exit
  const Status s = server->Start(port);
  if (!s.ok()) {
    std::fprintf(stderr, "[coconut] admin server failed to start: %s\n",
                 s.ToString().c_str());
    delete server;
    return nullptr;
  }
  std::fprintf(stderr, "[coconut] admin server on http://127.0.0.1:%u\n",
               static_cast<unsigned>(server->port()));
  return server;
}

}  // namespace coconut
