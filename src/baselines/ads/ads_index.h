// ADS / ADS+ / ADSFull (Zoumpatianos et al., VLDB J. 2016) — the
// state-of-the-art baseline the paper compares against.
//
// ADS builds an iSAX-style index over the summarizations only (one pass over
// the raw file), keeping the SAX words of the whole dataset in memory for
// the SIMS exact-search scan. Variants:
//  * ADS+    — non-materialized; leaves hold (SAX, position) and are
//              adaptively split into smaller leaves when queries visit them.
//  * ADSFull — a second pass materializes the raw series into the leaves
//              (random I/O when the raw file exceeds the memory budget).
//
// Exact search is SIMS (Zoumpatianos et al.): a skip-sequential scan of the
// in-memory SAX array in raw-file order, seeded by an approximate answer —
// the algorithm CoconutTreeSIMS (Algorithm 5) adapts to sorted order.
#ifndef COCONUT_BASELINES_ADS_ADS_INDEX_H_
#define COCONUT_BASELINES_ADS_ADS_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/baselines/isax2/isax2_index.h"
#include "src/common/status.h"
#include "src/core/coconut_options.h"
#include "src/series/dataset.h"

namespace coconut {

struct AdsOptions {
  SummaryOptions summary;
  size_t leaf_capacity = 2000;
  /// ADSFull materializes leaves in a second pass.
  bool materialized = false;
  size_t memory_budget_bytes = 256ull * 1024 * 1024;
  /// ADS+ splits any visited leaf down to this many entries (the adaptive
  /// refinement). 0 disables refinement (plain ADS).
  size_t adaptive_leaf_target = 200;
  unsigned num_threads = 0;

  Status Validate() const {
    COCONUT_RETURN_IF_ERROR(summary.Validate());
    if (leaf_capacity == 0) {
      return Status::InvalidArgument("leaf_capacity must be > 0");
    }
    return Status::OK();
  }
};

struct AdsBuildStats {
  double pass1_seconds = 0.0;       // summarize + top-down inserts
  double materialize_seconds = 0.0;  // ADSFull second pass
  uint64_t num_entries = 0;

  double total_seconds() const { return pass1_seconds + materialize_seconds; }
};

class AdsIndex {
 public:
  /// Builds the index over `raw_path`. Leaf pages are stored in
  /// `storage_path` (plus `<storage_path>.mat` for the ADSFull pass).
  static Status Build(const std::string& raw_path,
                      const std::string& storage_path,
                      const AdsOptions& options,
                      std::unique_ptr<AdsIndex>* out,
                      AdsBuildStats* stats = nullptr);

  /// Approximate k-NN search; for ADS+ this first adaptively refines the
  /// target leaf (split-on-access).
  Status ApproxSearch(const Value* query, SearchResult* result, size_t k = 1);

  /// Exact k-NN search via SIMS over the in-memory SAX array (raw-file
  /// order).
  Status ExactSearch(const Value* query, SearchResult* result, size_t k = 1);

  /// Top-down insertion of new series already appended to the raw file at
  /// `first_offset` (Fig 10a update workload).
  Status InsertBatch(const std::vector<Series>& batch, uint64_t first_offset);

  uint64_t num_entries() const { return core_->num_entries(); }
  uint64_t num_leaves() const { return core_->num_leaves(); }
  double AvgLeafFill() const { return core_->AvgLeafFill(); }
  /// Disk footprint: leaf pages (+ materialized pages for ADSFull).
  uint64_t StorageBytes() const;
  const AdsOptions& options() const { return options_; }

 private:
  AdsIndex() = default;

  Status MaterializeLeaves();

  AdsOptions options_;
  std::string raw_path_;
  std::unique_ptr<Isax2Index> core_;
  std::unique_ptr<RawSeriesFile> raw_file_;
  // SIMS state: SAX words of every series in raw-file order.
  std::vector<uint8_t> sax_array_;
  std::vector<Value> fetch_buf_;
};

}  // namespace coconut

#endif  // COCONUT_BASELINES_ADS_ADS_INDEX_H_
