#include "src/summary/breakpoints.h"

#include <algorithm>
#include <cmath>

namespace coconut {

double InverseNormalCdf(double p) {
  // Acklam's algorithm: rational approximations on a central region and two
  // tails, in terms of p or sqrt(-2 ln p).
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double p_low = 0.02425;
  const double p_high = 1 - p_low;

  if (p <= 0.0) return -HUGE_VAL;
  if (p >= 1.0) return HUGE_VAL;

  if (p < p_low) {
    const double q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p <= p_high) {
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
  }
  const double q = std::sqrt(-2 * std::log(1 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
}

SaxBreakpoints::SaxBreakpoints() {
  tables_.resize(kMaxCardinalityBits + 1);
  edges_.resize(kMaxCardinalityBits + 1);
  for (unsigned bits = 1; bits <= kMaxCardinalityBits; ++bits) {
    const uint32_t card = 1u << bits;
    std::vector<double>& t = tables_[bits];
    t.resize(card - 1);
    for (uint32_t i = 0; i + 1 < card; ++i) {
      t[i] = InverseNormalCdf(static_cast<double>(i + 1) / card);
    }
    std::vector<double>& e = edges_[bits];
    e.resize(card + 1);
    e.front() = -HUGE_VAL;
    for (uint32_t i = 0; i + 1 < card; ++i) e[i + 1] = t[i];
    e.back() = HUGE_VAL;
  }
}

const SaxBreakpoints& SaxBreakpoints::Get() {
  static const SaxBreakpoints instance;
  return instance;
}

double SaxBreakpoints::RegionLower(unsigned bits, uint32_t symbol) const {
  if (symbol == 0) return -HUGE_VAL;
  return tables_[bits][symbol - 1];
}

double SaxBreakpoints::RegionUpper(unsigned bits, uint32_t symbol) const {
  const std::vector<double>& t = tables_[bits];
  if (symbol >= t.size()) return HUGE_VAL;
  return t[symbol];
}

uint32_t SaxBreakpoints::Symbol(unsigned bits, double value) const {
  const std::vector<double>& t = tables_[bits];
  // First breakpoint strictly greater than value gives the region index.
  return static_cast<uint32_t>(
      std::upper_bound(t.begin(), t.end(), value) - t.begin());
}

}  // namespace coconut
