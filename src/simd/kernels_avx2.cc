// AVX2+FMA backend. Compiled with -mavx2 -mfma on x86-64 only (the build
// adds the flags just for this translation unit); the dispatcher only hands
// out this table after checking CPUID for both features at runtime, so the
// rest of the binary stays runnable on pre-AVX2 hardware.
//
// All floats are widened to double before subtraction, matching the scalar
// reference; only the association of the final sum differs (4 accumulator
// lanes), which the parity suite bounds at a ulp-scaled tolerance.
#include "src/simd/kernels_internal.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <cmath>
#include <cstring>

namespace coconut {
namespace simd {
namespace {

inline double Hsum(__m256d v) {
  __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  lo = _mm_add_pd(lo, hi);
  const __m128d swap = _mm_unpackhi_pd(lo, lo);
  return _mm_cvtsd_f64(_mm_add_sd(lo, swap));
}

/// Widens floats [i, i+8) of a and b, accumulating squared differences into
/// two double lanes.
inline void Accum8Diff(const float* a, const float* b, size_t i, __m256d* acc0,
                       __m256d* acc1) {
  const __m256 va = _mm256_loadu_ps(a + i);
  const __m256 vb = _mm256_loadu_ps(b + i);
  const __m256d d0 = _mm256_sub_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(va)),
                                   _mm256_cvtps_pd(_mm256_castps256_ps128(vb)));
  const __m256d d1 = _mm256_sub_pd(_mm256_cvtps_pd(_mm256_extractf128_ps(va, 1)),
                                   _mm256_cvtps_pd(_mm256_extractf128_ps(vb, 1)));
  *acc0 = _mm256_fmadd_pd(d0, d0, *acc0);
  *acc1 = _mm256_fmadd_pd(d1, d1, *acc1);
}

double SquaredEuclideanAvx2(const float* a, const float* b, size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    Accum8Diff(a, b, i, &acc0, &acc1);
    Accum8Diff(a, b, i + 8, &acc0, &acc1);
  }
  for (; i + 8 <= n; i += 8) Accum8Diff(a, b, i, &acc0, &acc1);
  double sum = Hsum(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    sum += d * d;
  }
  return sum;
}

double SquaredEuclideanEaAvx2(const float* a, const float* b, size_t n,
                              double bound_sq) {
  // Same block contract as the scalar reference: check after every full
  // 16-element block, sum the trailing partial block straight through.
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  size_t i = 0;
  while (n - i >= 16) {
    Accum8Diff(a, b, i, &acc0, &acc1);
    Accum8Diff(a, b, i + 8, &acc0, &acc1);
    i += 16;
    const double sum = Hsum(_mm256_add_pd(acc0, acc1));
    if (sum >= bound_sq) return sum;
  }
  double sum = Hsum(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    sum += d * d;
  }
  return sum;
}

double MindistPaaPaaAvx2(const double* a, const double* b, size_t w,
                         double scale) {
  __m256d acc = _mm256_setzero_pd();
  size_t j = 0;
  for (; j + 4 <= w; j += 4) {
    const __m256d d =
        _mm256_sub_pd(_mm256_loadu_pd(a + j), _mm256_loadu_pd(b + j));
    acc = _mm256_fmadd_pd(d, d, acc);
  }
  double sum = Hsum(acc);
  for (; j < w; ++j) {
    const double d = a[j] - b[j];
    sum += d * d;
  }
  return scale * sum;
}

/// Per-lane distsq(q, [lo, hi]) = max(lo - q, q - hi, 0)^2; -+HUGE_VAL
/// edges yield -inf on their side of the max, never a NaN (q is finite).
inline __m256d RangeAccum(__m256d q, __m256d lo, __m256d hi, __m256d acc) {
  const __m256d below = _mm256_sub_pd(lo, q);
  const __m256d above = _mm256_sub_pd(q, hi);
  const __m256d d =
      _mm256_max_pd(_mm256_max_pd(below, above), _mm256_setzero_pd());
  return _mm256_fmadd_pd(d, d, acc);
}

double MindistPaaRectAvx2(const double* q, const double* lo, const double* hi,
                          size_t w, double scale) {
  __m256d acc = _mm256_setzero_pd();
  size_t j = 0;
  for (; j + 4 <= w; j += 4) {
    acc = RangeAccum(_mm256_loadu_pd(q + j), _mm256_loadu_pd(lo + j),
                     _mm256_loadu_pd(hi + j), acc);
  }
  double sum = Hsum(acc);
  for (; j < w; ++j) sum += DistToRangeSq(q[j], lo[j], hi[j]);
  return scale * sum;
}

/// All-lanes gather of 4 doubles. The masked form with an explicit zeroed
/// source emits the same vgatherdpd as the plain intrinsic but avoids GCC's
/// -Wmaybe-uninitialized false positive on the undefined pass-through
/// operand in avx2intrin.h.
inline __m256d GatherPd(const double* base, __m128i idx) {
  return _mm256_mask_i32gather_pd(
      _mm256_setzero_pd(), base, idx,
      _mm256_castsi256_pd(_mm256_set1_epi64x(-1)), 8);
}

/// Core of the table-gathered PAA-to-SAX bound: 4 segments per step, both
/// region edges fetched with vgatherqpd on the symbol bytes (region s of
/// the flat edges table is [edges[s], edges[s + 1]], so the upper edges
/// are the same gather off base edges + 1).
inline double MindistPaaSaxCore(const double* q, const uint8_t* sax,
                                const double* edges, size_t w) {
  __m256d acc = _mm256_setzero_pd();
  size_t j = 0;
  for (; j + 4 <= w; j += 4) {
    uint32_t packed;
    std::memcpy(&packed, sax + j, 4);
    const __m128i idx =
        _mm_cvtepu8_epi32(_mm_cvtsi32_si128(static_cast<int>(packed)));
    const __m256d lo = GatherPd(edges, idx);
    const __m256d hi = GatherPd(edges + 1, idx);
    acc = RangeAccum(_mm256_loadu_pd(q + j), lo, hi, acc);
  }
  double sum = Hsum(acc);
  for (; j < w; ++j) {
    sum += DistToRangeSq(q[j], edges[sax[j]], edges[sax[j] + 1]);
  }
  return sum;
}

double MindistPaaSaxAvx2(const double* q, const uint8_t* sax,
                         const double* edges, size_t w, double scale) {
  return scale * MindistPaaSaxCore(q, sax, edges, w);
}

void MindistPaaSaxBatchAvx2(const double* q, const uint8_t* sax_base,
                            size_t stride_bytes, size_t count,
                            const double* edges, size_t w, double scale,
                            double* out) {
  for (size_t i = 0; i < count; ++i) {
    out[i] = scale * MindistPaaSaxCore(q, sax_base + i * stride_bytes, edges,
                                       w);
  }
}

/// Sum of 4 widened floats appended to acc.
inline __m256d Accum4Sum(const float* p, __m256d acc) {
  return _mm256_add_pd(acc, _mm256_cvtps_pd(_mm_loadu_ps(p)));
}

void PaaTransformAvx2(const float* series, size_t n, size_t segments,
                      double* out) {
  const size_t seg_len = n / segments;
  const double inv = 1.0 / static_cast<double>(seg_len);
  for (size_t s = 0; s < segments; ++s) {
    const float* p = series + s * seg_len;
    __m256d acc = _mm256_setzero_pd();
    size_t i = 0;
    for (; i + 4 <= seg_len; i += 4) acc = Accum4Sum(p + i, acc);
    double sum = Hsum(acc);
    for (; i < seg_len; ++i) sum += p[i];
    out[s] = sum * inv;
  }
}

void ZNormalizeAvx2(float* values, size_t n) {
  constexpr double kEpsilon = 1e-9;
  if (n == 0) return;
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) acc = Accum4Sum(values + i, acc);
  double sum = Hsum(acc);
  for (; i < n; ++i) sum += values[i];
  const double mean = sum / static_cast<double>(n);

  const __m256d vmean = _mm256_set1_pd(mean);
  __m256d sqacc = _mm256_setzero_pd();
  i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d =
        _mm256_sub_pd(_mm256_cvtps_pd(_mm_loadu_ps(values + i)), vmean);
    sqacc = _mm256_fmadd_pd(d, d, sqacc);
  }
  double sq = Hsum(sqacc);
  for (; i < n; ++i) {
    const double d = values[i] - mean;
    sq += d * d;
  }
  const double sd = std::sqrt(sq / static_cast<double>(n));
  if (sd < kEpsilon) {
    for (i = 0; i < n; ++i) values[i] = 0.0f;
    return;
  }
  const double inv = 1.0 / sd;
  const __m256d vinv = _mm256_set1_pd(inv);
  i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d =
        _mm256_sub_pd(_mm256_cvtps_pd(_mm_loadu_ps(values + i)), vmean);
    _mm_storeu_ps(values + i, _mm256_cvtpd_ps(_mm256_mul_pd(d, vinv)));
  }
  for (; i < n; ++i) {
    values[i] = static_cast<float>((values[i] - mean) * inv);
  }
}

}  // namespace

const KernelTable* Avx2KernelsImpl() {
  static const KernelTable table = {
      "avx2",
      SquaredEuclideanAvx2,
      SquaredEuclideanEaAvx2,
      MindistPaaPaaAvx2,
      MindistPaaRectAvx2,
      MindistPaaSaxAvx2,
      MindistPaaSaxBatchAvx2,
      PaaTransformAvx2,
      ZNormalizeAvx2,
  };
  return &table;
}

}  // namespace simd
}  // namespace coconut

#else  // !(__AVX2__ && __FMA__)

namespace coconut {
namespace simd {

const KernelTable* Avx2KernelsImpl() { return nullptr; }

}  // namespace simd
}  // namespace coconut

#endif
