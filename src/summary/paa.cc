#include "src/summary/paa.h"

#include "src/simd/kernels.h"

namespace coconut {

void PaaTransform(const Value* series, size_t n, size_t segments,
                  double* out) {
  simd::Kernels().paa_transform(series, n, segments, out);
}

}  // namespace coconut
