// Wall-clock stopwatch used by the benchmark harnesses and the obs stage
// timers.
#ifndef COCONUT_COMMON_TIMER_H_
#define COCONUT_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>
#include <ctime>

namespace coconut {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Integer nanoseconds since construction or the last Restart(); the
  /// native unit for metric histograms (no seconds-as-double round trip).
  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Per-thread CPU-time stopwatch (CLOCK_THREAD_CPUTIME_ID): counts only the
/// nanoseconds the *calling thread* actually executed, not time it sat
/// descheduled. This is the right clock for attributing per-item cost on an
/// oversubscribed pool, where wall time from dispatch also charges each
/// item for every context switch its thread lost to siblings. Falls back to
/// 0 on platforms without the clock (callers treat 0 as "unavailable").
class ThreadCpuStopwatch {
 public:
  ThreadCpuStopwatch() : start_(Now()) {}

  void Restart() { start_ = Now(); }

  uint64_t ElapsedNanos() const {
    const uint64_t now = Now();
    return now > start_ ? now - start_ : 0;
  }

 private:
  static uint64_t Now() {
#if defined(CLOCK_THREAD_CPUTIME_ID) || defined(__linux__) || \
    defined(__APPLE__)
    timespec ts;
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
    return static_cast<uint64_t>(ts.tv_sec) * 1'000'000'000ull +
           static_cast<uint64_t>(ts.tv_nsec);
#else
    return 0;
#endif
  }

  uint64_t start_;
};

}  // namespace coconut

#endif  // COCONUT_COMMON_TIMER_H_
