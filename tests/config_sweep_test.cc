// Parameterized configuration sweeps: the Coconut-Tree must stay exact and
// structurally sound across summarization configurations (segments x
// cardinality bits x series length), and SIMS results must not depend on
// the worker thread count.
#include "gtest/gtest.h"
#include "src/core/coconut_tree.h"
#include "src/core/sims_common.h"
#include "src/summary/mindist.h"
#include "src/summary/paa.h"
#include "src/summary/sax.h"
#include "tests/test_util.h"

namespace coconut {
namespace {

using testing::BruteForceNn;
using testing::MakeDatasetFile;
using testing::ScratchDir;

struct SweepCase {
  size_t length;
  size_t segments;
  unsigned bits;
};

class TreeConfigSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(TreeConfigSweep, ExactAcrossSummarizationConfigs) {
  const SweepCase& c = GetParam();
  ScratchDir dir;
  const std::string raw = dir.File("data.bin");
  auto data = MakeDatasetFile(raw, DatasetKind::kRandomWalk, 1200, c.length,
                              c.length * 7 + c.segments);
  CoconutOptions opts;
  opts.summary.series_length = c.length;
  opts.summary.segments = c.segments;
  opts.summary.cardinality_bits = c.bits;
  opts.leaf_capacity = 64;
  opts.tmp_dir = dir.path();
  ASSERT_OK(opts.Validate());
  const std::string index = dir.File("i.ctree");
  ASSERT_OK(CoconutTree::Build(raw, index, opts));
  std::unique_ptr<CoconutTree> tree;
  ASSERT_OK(CoconutTree::Open(index, raw, &tree));
  auto qgen = MakeGenerator(DatasetKind::kRandomWalk, c.length, 4242);
  for (int q = 0; q < 6; ++q) {
    const Series query = qgen->NextSeries();
    const auto [bf_idx, bf_dist] = BruteForceNn(data, query);
    SearchResult r;
    ASSERT_OK(tree->ExactSearch(query.data(), 1, &r));
    EXPECT_NEAR(r.distance, bf_dist, 1e-4)
        << "len=" << c.length << " segs=" << c.segments
        << " bits=" << c.bits;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, TreeConfigSweep,
    ::testing::Values(SweepCase{64, 4, 8}, SweepCase{64, 8, 8},
                      SweepCase{64, 16, 8}, SweepCase{64, 32, 8},
                      SweepCase{64, 16, 4}, SweepCase{64, 16, 2},
                      SweepCase{64, 16, 1}, SweepCase{128, 16, 8},
                      SweepCase{96, 12, 6}, SweepCase{32, 32, 5}),
    [](const auto& info) {
      const SweepCase& c = info.param;
      return "len" + std::to_string(c.length) + "_seg" +
             std::to_string(c.segments) + "_bits" + std::to_string(c.bits);
    });

TEST(ParallelMindists, ThreadCountDoesNotChangeResults) {
  SummaryOptions opts;
  opts.series_length = 128;
  opts.segments = 16;
  opts.cardinality_bits = 8;
  auto gen = MakeGenerator(DatasetKind::kRandomWalk, 128, 555);
  const size_t n = 5000;
  std::vector<uint8_t> sax(n * opts.segments);
  Series tmp(128);
  for (size_t i = 0; i < n; ++i) {
    gen->Next(tmp.data());
    SaxFromSeries(tmp.data(), opts, sax.data() + i * opts.segments);
  }
  const Series query = gen->NextSeries();
  std::vector<double> paa(opts.segments);
  PaaTransform(query.data(), 128, opts.segments, paa.data());

  std::vector<double> one, many;
  ParallelMindists(paa.data(), sax.data(), n, opts, 1, &one);
  ParallelMindists(paa.data(), sax.data(), n, opts, 16, &many);
  ASSERT_EQ(one.size(), many.size());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(one[i], many[i]) << "entry " << i;
  }
  // Spot-check against the scalar function.
  for (size_t i = 0; i < n; i += 500) {
    EXPECT_DOUBLE_EQ(
        one[i], MindistSqPaaToSax(paa.data(), sax.data() + i * opts.segments,
                                  opts));
  }
}

TEST(ParallelMindists, MoreThreadsThanEntries) {
  SummaryOptions opts;
  opts.series_length = 64;
  opts.segments = 16;
  std::vector<uint8_t> sax(3 * opts.segments, 100);
  std::vector<double> paa(opts.segments, 0.0);
  std::vector<double> out;
  ParallelMindists(paa.data(), sax.data(), 3, opts, 32, &out);
  EXPECT_EQ(out.size(), 3u);
}

TEST(TreeFillSweep, SpaceTimeTradeoffIsMonotone) {
  // Lower fill factors must produce monotonically more leaves (reserved
  // insertion slack), never fewer — the §4.3 fill-factor knob.
  ScratchDir dir;
  const std::string raw = dir.File("data.bin");
  MakeDatasetFile(raw, DatasetKind::kRandomWalk, 3000, 64, 31337);
  uint64_t prev_leaves = 0;
  for (double fill : {1.0, 0.9, 0.7, 0.5, 0.3}) {
    CoconutOptions opts;
    opts.summary.series_length = 64;
    opts.summary.segments = 16;
    opts.leaf_capacity = 100;
    opts.fill_factor = fill;
    opts.tmp_dir = dir.path();
    const std::string index = dir.File("i" + std::to_string(fill));
    ASSERT_OK(CoconutTree::Build(raw, index, opts));
    std::unique_ptr<CoconutTree> tree;
    ASSERT_OK(CoconutTree::Open(index, raw, &tree));
    EXPECT_GE(tree->num_leaves(), prev_leaves) << "fill " << fill;
    EXPECT_NEAR(tree->AvgLeafFill(), fill, 0.05) << "fill " << fill;
    prev_leaves = tree->num_leaves();
  }
}

}  // namespace
}  // namespace coconut
