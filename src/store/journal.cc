#include "src/store/journal.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "src/common/crc32c.h"
#include "src/common/env.h"
#include "src/common/failpoint.h"
#include "src/obs/metrics.h"

namespace coconut {

namespace {

constexpr char kJournalHeader[] = "coconut-store-journal v1";

std::string JournalPath(const std::string& store_dir) {
  return JoinPath(store_dir, kStoreJournalName);
}

/// Parses one "<shard>:<pre_raw_bytes>:<count>" slice token.
bool ParseSlice(const std::string& token, EpochSlice* out) {
  unsigned long long shard = 0, pre = 0, count = 0;
  char trail = '\0';
  if (std::sscanf(token.c_str(), "%llu:%llu:%llu%c", &shard, &pre, &count,
                  &trail) != 3) {
    return false;
  }
  out->shard = static_cast<size_t>(shard);
  out->pre_raw_bytes = pre;
  out->count = count;
  return true;
}

/// Strips and verifies the trailing " crc:<8hex>" token, when present.
/// Returns false (filling *error) on a CRC mismatch or malformed token;
/// lines without a token pass through unchanged (legacy journals, comment
/// conventions, hand-written test records).
bool StripAndVerifyCrc(std::string* line, std::string* error) {
  static Counter* verified =
      MetricRegistry::Default().GetCounter("io.checksum.verified");
  static Counter* failed =
      MetricRegistry::Default().GetCounter("io.checksum.failed");
  const size_t sp = line->rfind(' ');
  if (sp == std::string::npos || line->compare(sp + 1, 4, "crc:") != 0) {
    return true;
  }
  uint32_t want = 0;
  if (!crc32c::FromHex(line->substr(sp + 5), &want) ||
      crc32c::Value(line->data(), sp) != want) {
    failed->Increment();
    *error = "record crc mismatch";
    return false;
  }
  verified->Increment();
  line->resize(sp);
  return true;
}

/// Parses one journal record line into `records`. Returns false on any
/// malformation (the caller decides whether that is a torn tail or
/// corruption); fills *error with the reason.
bool ParseRecordLine(const std::string& line,
                     std::vector<EpochRecord>* records, std::string* error) {
  std::istringstream fields(line);
  std::string tag;
  if (!(fields >> tag)) {
    *error = "empty record";
    return false;
  }
  if (tag == "begin") {
    uint64_t epoch = 0;
    size_t nslices = 0;
    if (!(fields >> epoch >> nslices) || nslices == 0) {
      *error = "bad begin record";
      return false;
    }
    if (!records->empty() && epoch <= records->back().epoch) {
      *error = "epochs not strictly increasing";
      return false;
    }
    EpochRecord rec;
    rec.epoch = epoch;
    std::string token;
    while (fields >> token) {
      EpochSlice slice;
      if (!ParseSlice(token, &slice)) {
        *error = "bad slice token: " + token;
        return false;
      }
      for (const EpochSlice& seen : rec.slices) {
        if (seen.shard == slice.shard) {
          *error = "duplicate shard in begin record";
          return false;
        }
      }
      rec.slices.push_back(slice);
    }
    if (rec.slices.size() != nslices) {
      *error = "slice count mismatch";
      return false;
    }
    records->push_back(std::move(rec));
    return true;
  }
  if (tag == "commit") {
    uint64_t epoch = 0;
    std::string extra;
    if (!(fields >> epoch) || (fields >> extra)) {
      *error = "bad commit record";
      return false;
    }
    if (records->empty() || records->back().epoch != epoch ||
        records->back().committed) {
      *error = "commit without matching open begin";
      return false;
    }
    records->back().committed = true;
    return true;
  }
  *error = "unknown record tag: " + tag;
  return false;
}

}  // namespace

bool CommitJournal::Exists(const std::string& store_dir) {
  return FileExists(JournalPath(store_dir));
}

Status CommitJournal::Reset(const std::string& store_dir) {
  const std::string final_path = JournalPath(store_dir);
  const std::string tmp_path = final_path + ".tmp";
  std::unique_ptr<WritableFile> file;
  COCONUT_RETURN_IF_ERROR(WritableFile::Create(tmp_path, &file));
  const std::string header = std::string(kJournalHeader) + "\n";
  COCONUT_RETURN_IF_ERROR(file->Append(header.data(), header.size()));
  COCONUT_RETURN_IF_ERROR(file->Sync());
  COCONUT_RETURN_IF_ERROR(file->Close());
  return RenameFile(tmp_path, final_path);
}

Status CommitJournal::Open(const std::string& store_dir,
                           std::unique_ptr<CommitJournal>* out) {
  const std::string path = JournalPath(store_dir);
  if (!FileExists(path)) {
    return Status::Corruption("journal missing: " + path);
  }
  std::unique_ptr<WritableFile> file;
  COCONUT_RETURN_IF_ERROR(WritableFile::OpenForAppend(path, &file));
  out->reset(new CommitJournal(std::move(file)));
  return Status::OK();
}

Status CommitJournal::Scan(const std::string& store_dir,
                           std::vector<EpochRecord>* records) {
  records->clear();
  const std::string path = JournalPath(store_dir);
  std::unique_ptr<RandomAccessFile> file;
  COCONUT_RETURN_IF_ERROR(RandomAccessFile::Open(path, &file));
  std::string body(file->size(), '\0');
  if (!body.empty()) {
    COCONUT_RETURN_IF_ERROR(file->Read(0, body.size(), body.data()));
  }

  // Split into lines up front so the torn-tail rule can target exactly the
  // last one. A final line without a trailing newline is by definition a
  // torn append.
  std::vector<std::string> lines;
  bool last_line_complete = !body.empty() && body.back() == '\n';
  std::istringstream stream(body);
  std::string line;
  while (std::getline(stream, line)) lines.push_back(line);

  if (lines.empty() || lines[0] != kJournalHeader) {
    return Status::Corruption("journal: bad header in " + path);
  }
  std::string error;
  for (size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty() || lines[i][0] == '#') continue;
    if (!StripAndVerifyCrc(&lines[i], &error) ||
        !ParseRecordLine(lines[i], records, &error)) {
      const bool is_last = (i + 1 == lines.size());
      if (is_last && !last_line_complete) {
        // Torn final append: the record never happened.
        return Status::OK();
      }
      return Status::Corruption("journal: " + error + ": " + lines[i]);
    }
  }
  return Status::OK();
}

Status CommitJournal::AppendRecord(const std::string& body) {
  static Counter* records =
      MetricRegistry::Default().GetCounter("store.journal.records");
  static Counter* bytes =
      MetricRegistry::Default().GetCounter("store.journal.bytes");
  std::string line = body + " crc:" +
                     crc32c::ToHex(crc32c::Value(body.data(), body.size())) +
                     "\n";
  // Site-specific injection on top of the generic io.file.write site, so
  // tests can tear or flip exactly one journal append without disturbing
  // other writers.
  Failpoints::WriteFault fault;
  COCONUT_RETURN_IF_ERROR(Failpoints::Default().HitWrite(
      "store.journal.append", line.size(), &fault));
  if (fault.bit_flip) {
    line[fault.flip_index / 8] ^=
        static_cast<char>(1u << (fault.flip_index % 8));
  }
  if (fault.torn) {
    (void)file_->Append(line.data(), fault.torn_bytes);
    (void)file_->Sync();
    return Status::IOError("failpoint: store.journal.append (torn record)");
  }
  records->Increment();
  bytes->Add(line.size());
  COCONUT_RETURN_IF_ERROR(file_->Append(line.data(), line.size()));
  return file_->Sync();
}

Status CommitJournal::AppendBegin(uint64_t epoch,
                                  const std::vector<EpochSlice>& slices) {
  if (slices.empty()) {
    return Status::InvalidArgument("journal: begin record needs slices");
  }
  std::ostringstream line;
  line << "begin " << epoch << " " << slices.size();
  for (const EpochSlice& s : slices) {
    line << " " << s.shard << ":" << s.pre_raw_bytes << ":" << s.count;
  }
  return AppendRecord(line.str());
}

Status CommitJournal::AppendCommit(uint64_t epoch) {
  return AppendRecord("commit " + std::to_string(epoch));
}

}  // namespace coconut
