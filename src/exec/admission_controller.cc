#include "src/exec/admission_controller.h"

#include "src/obs/metrics.h"

namespace coconut {

namespace {

struct AdmissionMetrics {
  Counter* admitted;
  Counter* shed;
  Gauge* inflight;
  Gauge* queued_bytes;
};

AdmissionMetrics& Metrics() {
  static AdmissionMetrics m = [] {
    MetricRegistry& reg = MetricRegistry::Default();
    AdmissionMetrics mm;
    mm.admitted = reg.GetCounter("exec.admission.admitted");
    mm.shed = reg.GetCounter("exec.admission.shed");
    mm.inflight = reg.GetGauge("exec.admission.inflight");
    mm.queued_bytes = reg.GetGauge("exec.admission.queued_bytes");
    return mm;
  }();
  return m;
}

}  // namespace

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options) {}

Status AdmissionController::Admit(size_t bytes, Ticket* ticket) {
  // Optimistic admission: bump both gauges, then check the gates and roll
  // back on overshoot. Two admitters racing at the boundary may both
  // observe overshoot and both shed — acceptable: the gates are resource
  // bounds, not fair-share rationing, and the window is a few instructions.
  const size_t inflight_now =
      inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
  const size_t bytes_now =
      queued_bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  const bool over_inflight =
      options_.max_inflight != 0 && inflight_now > options_.max_inflight;
  const bool over_bytes = options_.max_queued_bytes != 0 &&
                          bytes_now > options_.max_queued_bytes;
  if (over_inflight || over_bytes) {
    inflight_.fetch_sub(1, std::memory_order_relaxed);
    queued_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
    shed_.fetch_add(1, std::memory_order_relaxed);
    Metrics().shed->Increment();
    return Status::ResourceExhausted(
        over_inflight ? "admission: max inflight batches reached"
                      : "admission: max queued bytes reached");
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
  AdmissionMetrics& m = Metrics();
  m.admitted->Increment();
  m.inflight->Add(1);
  m.queued_bytes->Add(static_cast<int64_t>(bytes));
  *ticket = Ticket(this, bytes);
  return Status::OK();
}

void AdmissionController::Finish(size_t bytes) {
  inflight_.fetch_sub(1, std::memory_order_relaxed);
  queued_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  AdmissionMetrics& m = Metrics();
  m.inflight->Add(-1);
  m.queued_bytes->Add(-static_cast<int64_t>(bytes));
}

}  // namespace coconut
