// Shared pieces of the SIMS exact-search algorithm (paper Algorithm 5):
// the multi-threaded lower-bound computation over an in-memory array of SAX
// words (line 10, "use multiple threads & compute bounds in parallel").
// Used by Coconut-Tree, Coconut-Trie, and the ADS baseline.
#ifndef COCONUT_CORE_SIMS_COMMON_H_
#define COCONUT_CORE_SIMS_COMMON_H_

#include <cstdint>
#include <vector>

#include "src/summary/options.h"

namespace coconut {

/// Computes MindistSqPaaToSax(query_paa, sax[i]) for every i in [0, n) into
/// `out` (resized), splitting the range across `threads` workers.
void ParallelMindists(const double* query_paa, const uint8_t* sax_array,
                      uint64_t n, const SummaryOptions& opts, unsigned threads,
                      std::vector<double>* out);

}  // namespace coconut

#endif  // COCONUT_CORE_SIMS_COMMON_H_
