// Status, env helpers, options validation, bit utilities, the CRC32C
// dispatcher, and the failpoint registry.
#include <cstdint>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/bits.h"
#include "src/common/crc32c.h"
#include "src/common/env.h"
#include "src/common/failpoint.h"
#include "src/common/status.h"
#include "src/core/coconut_options.h"
#include "src/summary/options.h"
#include "tests/test_util.h"

namespace coconut {
namespace {

using testing::ScratchDir;

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, CodesAndMessages) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::DeadlineExceeded("x").IsDeadlineExceeded());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_EQ(Status::IOError("disk on fire").ToString(),
            "IOError: disk on fire");
  EXPECT_EQ(Status::DeadlineExceeded("too slow").ToString(),
            "DeadlineExceeded: too slow");
  EXPECT_EQ(Status::ResourceExhausted("full").ToString(),
            "ResourceExhausted: full");
  EXPECT_EQ(Status::Aborted("cancelled").ToString(), "Aborted: cancelled");
}

TEST(Status, Transience) {
  // Retry-at-the-same-level candidates: the work itself was fine, the
  // system was momentarily unwilling.
  EXPECT_TRUE(Status::ResourceExhausted("x").IsTransient());
  EXPECT_TRUE(Status::Aborted("x").IsTransient());
  // DeadlineExceeded is deliberately NOT transient: the caller's budget is
  // spent, so retrying under the same deadline cannot help.
  EXPECT_FALSE(Status::DeadlineExceeded("x").IsTransient());
  EXPECT_FALSE(Status::IOError("x").IsTransient());
  EXPECT_FALSE(Status::Corruption("x").IsTransient());
  EXPECT_FALSE(Status::OK().IsTransient());
}

TEST(Status, ReturnIfErrorMacro) {
  auto inner = []() { return Status::NotFound("missing"); };
  auto outer = [&]() -> Status {
    COCONUT_RETURN_IF_ERROR(inner());
    return Status::Internal("unreachable");
  };
  EXPECT_TRUE(outer().IsNotFound());
}

TEST(Bits, Helpers) {
  EXPECT_EQ(GetBit(0b1010, 1), 1u);
  EXPECT_EQ(GetBit(0b1010, 2), 0u);
  uint64_t v = 0;
  AssignBit(&v, 5, 1);
  EXPECT_EQ(v, 32u);
  AssignBit(&v, 5, 0);
  EXPECT_EQ(v, 0u);
  EXPECT_EQ(CeilDiv(10, 3), 4u);
  EXPECT_EQ(CeilDiv(9, 3), 3u);
  EXPECT_EQ(RoundUp(10, 8), 16u);
}

TEST(Env, TempDirAndRemoveAll) {
  std::string dir;
  ASSERT_OK(MakeTempDir("coconut-envtest-", &dir));
  EXPECT_FALSE(dir.empty());
  const std::string file = JoinPath(dir, "x.txt");
  {
    BufferedWriter w;
    ASSERT_OK(w.Open(file));
    ASSERT_OK(w.Write("hi", 2));
    ASSERT_OK(w.Finish());
  }
  EXPECT_TRUE(FileExists(file));
  uint64_t size = 0;
  ASSERT_OK(FileSize(file, &size));
  EXPECT_EQ(size, 2u);
  ASSERT_OK(RemoveAll(dir));
  EXPECT_FALSE(FileExists(file));
  // Removing a missing path is not an error.
  ASSERT_OK(RemoveAll(dir));
}

TEST(Env, RenameFile) {
  ScratchDir dir;
  const std::string a = dir.File("a"), b = dir.File("b");
  {
    BufferedWriter w;
    ASSERT_OK(w.Open(a));
    ASSERT_OK(w.Write("z", 1));
    ASSERT_OK(w.Finish());
  }
  ASSERT_OK(RenameFile(a, b));
  EXPECT_FALSE(FileExists(a));
  EXPECT_TRUE(FileExists(b));
}

TEST(Env, JoinPath) {
  EXPECT_EQ(JoinPath("a", "b"), "a/b");
  EXPECT_EQ(JoinPath("a/", "b"), "a/b");
  EXPECT_EQ(JoinPath("", "b"), "b");
}

TEST(Crc32c, KnownVectors) {
  // RFC 3720 (iSCSI) CRC32C test vectors.
  EXPECT_EQ(crc32c::Value("123456789", 9), 0xE3069283u);
  std::vector<uint8_t> buf(32, 0x00);
  EXPECT_EQ(crc32c::Value(buf.data(), buf.size()), 0x8A9136AAu);
  buf.assign(32, 0xFF);
  EXPECT_EQ(crc32c::Value(buf.data(), buf.size()), 0x62A8AB43u);
  for (size_t i = 0; i < 32; ++i) buf[i] = static_cast<uint8_t>(i);
  EXPECT_EQ(crc32c::Value(buf.data(), buf.size()), 0x46DD794Eu);
  EXPECT_EQ(crc32c::Value(nullptr, 0), 0u);
}

TEST(Crc32c, ExtendIsIncremental) {
  // Checksumming in arbitrary chunks must equal one contiguous pass, at
  // every split and alignment (exercises the hardware backend's 8/4/1-byte
  // tail handling).
  std::vector<uint8_t> buf(97);
  for (size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<uint8_t>(i * 37 + 11);
  }
  const uint32_t whole = crc32c::Value(buf.data(), buf.size());
  for (size_t split = 0; split <= buf.size(); ++split) {
    uint32_t crc = crc32c::Extend(0, buf.data(), split);
    crc = crc32c::Extend(crc, buf.data() + split, buf.size() - split);
    EXPECT_EQ(crc, whole) << "split at " << split;
  }
}

TEST(Crc32c, DetectsSingleBitFlips) {
  std::vector<uint8_t> buf(64, 0xA5);
  const uint32_t clean = crc32c::Value(buf.data(), buf.size());
  for (size_t bit = 0; bit < buf.size() * 8; bit += 7) {
    buf[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    EXPECT_NE(crc32c::Value(buf.data(), buf.size()), clean)
        << "missed flip of bit " << bit;
    buf[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
  }
}

TEST(Crc32c, HexRoundTrip) {
  EXPECT_EQ(crc32c::ToHex(0xDEADBEEFu), "deadbeef");
  EXPECT_EQ(crc32c::ToHex(0x0000002Au), "0000002a");
  uint32_t crc = 0;
  EXPECT_TRUE(crc32c::FromHex("deadbeef", &crc));
  EXPECT_EQ(crc, 0xDEADBEEFu);
  EXPECT_TRUE(crc32c::FromHex("DEADBEEF", &crc));
  EXPECT_EQ(crc, 0xDEADBEEFu);
  EXPECT_FALSE(crc32c::FromHex("deadbee", &crc));    // too short
  EXPECT_FALSE(crc32c::FromHex("deadbeef0", &crc));  // too long
  EXPECT_FALSE(crc32c::FromHex("deadbeeg", &crc));   // non-hex
  EXPECT_FALSE(crc32c::FromHex("", &crc));
  const char* backend = crc32c::BackendName();
  EXPECT_TRUE(std::string(backend) == "sse42" ||
              std::string(backend) == "armv8" ||
              std::string(backend) == "scalar")
      << backend;
}

TEST(Failpoints, DisarmedSitesAreFree) {
  FailpointGuard guard;
  EXPECT_OK(Failpoints::Default().Hit("test.common.never_armed"));
  EXPECT_EQ(Failpoints::Default().HitCount("test.common.never_armed"), 0u);
}

TEST(Failpoints, ArmErrorFiresAndDisarms) {
  FailpointGuard guard;
  Failpoints::Default().ArmError("test.common.site");
  const Status st = Failpoints::Default().Hit("test.common.site");
  EXPECT_TRUE(st.IsIOError());
  EXPECT_NE(st.ToString().find("failpoint: test.common.site"),
            std::string::npos)
      << st.ToString();
  EXPECT_EQ(Failpoints::Default().HitCount("test.common.site"), 1u);
  // Other sites stay clean while one is armed.
  EXPECT_OK(Failpoints::Default().Hit("test.common.other"));
  Failpoints::Default().Disarm("test.common.site");
  EXPECT_OK(Failpoints::Default().Hit("test.common.site"));
  // Disarm drops the whole entry, hit counter included.
  EXPECT_EQ(Failpoints::Default().HitCount("test.common.site"), 0u);
}

TEST(Failpoints, RemainingBudgetExhausts) {
  FailpointGuard guard;
  Failpoints::Action action;
  action.kind = Failpoints::Kind::kError;
  action.remaining = 2;
  Failpoints::Default().Arm("test.common.budget", action);
  EXPECT_FALSE(Failpoints::Default().Hit("test.common.budget").ok());
  EXPECT_FALSE(Failpoints::Default().Hit("test.common.budget").ok());
  EXPECT_OK(Failpoints::Default().Hit("test.common.budget"));
  EXPECT_EQ(Failpoints::Default().HitCount("test.common.budget"), 2u);
}

TEST(Failpoints, CallbackReceivesSiteArgument) {
  FailpointGuard guard;
  std::vector<size_t> args;
  Failpoints::Default().ArmCallback(
      "test.common.cb", [&args](size_t arg) {
        args.push_back(arg);
        return arg == 3 ? Status::IOError("third strike") : Status::OK();
      });
  EXPECT_OK(Failpoints::Default().Hit("test.common.cb", 1));
  EXPECT_OK(Failpoints::Default().Hit("test.common.cb", 2));
  EXPECT_FALSE(Failpoints::Default().Hit("test.common.cb", 3).ok());
  EXPECT_EQ(args, (std::vector<size_t>{1, 2, 3}));
}

TEST(Failpoints, WriteFaultsFillTheMutation) {
  FailpointGuard guard;
  Failpoints::Action torn;
  torn.kind = Failpoints::Kind::kTornWrite;
  Failpoints::Default().Arm("test.common.torn", torn);
  Failpoints::WriteFault fault;
  EXPECT_OK(Failpoints::Default().HitWrite("test.common.torn", 100, &fault));
  EXPECT_TRUE(fault.torn);
  EXPECT_LT(fault.torn_bytes, 100u);

  Failpoints::Action flip;
  flip.kind = Failpoints::Kind::kBitFlip;
  Failpoints::Default().Arm("test.common.flip", flip);
  fault = Failpoints::WriteFault();
  EXPECT_OK(Failpoints::Default().HitWrite("test.common.flip", 100, &fault));
  EXPECT_TRUE(fault.bit_flip);
  EXPECT_LT(fault.flip_index, 800u);  // bit index into a 100-byte buffer
}

TEST(SummaryOptions, ValidatesConfigurations) {
  SummaryOptions s;
  EXPECT_OK(s.Validate());  // defaults: 256 / 16 / 8
  s.segments = 7;
  EXPECT_TRUE(s.Validate().IsInvalidArgument());  // 256 % 7 != 0
  s.segments = 16;
  s.cardinality_bits = 0;
  EXPECT_TRUE(s.Validate().IsInvalidArgument());
  s.cardinality_bits = 9;
  EXPECT_TRUE(s.Validate().IsInvalidArgument());
  s.cardinality_bits = 8;
  s.segments = 64;  // 64 * 8 = 512 bits > 256-bit key
  s.series_length = 512;
  EXPECT_TRUE(s.Validate().IsInvalidArgument());
}

TEST(CoconutOptions, ValidatesAndDerives) {
  CoconutOptions o;
  EXPECT_OK(o.Validate());
  EXPECT_EQ(o.EntriesPerLeaf(), 2000u);
  o.fill_factor = 0.5;
  EXPECT_EQ(o.EntriesPerLeaf(), 1000u);
  o.fill_factor = 1.5;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
  o.fill_factor = 1.0;
  o.leaf_capacity = 0;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
  o.leaf_capacity = 100;
  o.memory_budget_bytes = 1;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
  EXPECT_GT(o.EffectiveThreads(), 0u);
}

}  // namespace
}  // namespace coconut
