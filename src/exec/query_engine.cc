#include "src/exec/query_engine.h"

#include <algorithm>
#include <mutex>

namespace coconut {

namespace {

/// Runs `one(i, scratch)` for every work index on the pool, collecting the
/// first failure. Chunks share a per-chunk scratch (of type `Scratch`); the
/// chunk size keeps a few chunks per thread for load balancing without
/// allocating scratch per query.
template <typename Scratch, typename Fn>
Status RunBatch(ThreadPool* pool, size_t num_items, const Fn& one) {
  Status first_error = Status::OK();
  std::mutex error_mu;
  pool->ParallelFor(
      0, num_items, /*grain=*/0,
      [&](uint64_t lo, uint64_t hi) {
        Scratch scratch;
        for (uint64_t i = lo; i < hi; ++i) {
          Status st = one(i, &scratch);
          if (!st.ok()) {
            std::lock_guard<std::mutex> lock(error_mu);
            if (first_error.ok()) first_error = st;
            return;
          }
        }
      });
  return first_error;
}

}  // namespace

Status QueryEngine::ExecuteBatch(const CoconutTree& tree,
                                 const std::vector<Series>& queries,
                                 const QuerySpec& spec,
                                 std::vector<SearchResult>* results) const {
  results->assign(queries.size(), SearchResult{});
  return RunBatch<CoconutTree::QueryScratch>(
      pool_, queries.size(),
      [&](uint64_t i, CoconutTree::QueryScratch* scratch) {
        const Value* q = queries[i].data();
        SearchResult* r = &(*results)[i];
        return spec.mode == QuerySpec::Mode::kExact
                   ? tree.ExactSearch(q, spec.approx_leaves, r, spec.k,
                                      scratch)
                   : tree.ApproxSearch(q, spec.approx_leaves, r, spec.k,
                                       scratch);
      });
}

Status QueryEngine::ExecuteBatch(const CoconutForest& forest,
                                 const std::vector<Series>& queries,
                                 const QuerySpec& spec,
                                 std::vector<SearchResult>* results) const {
  return ExecuteBatch(forest, forest.GetSnapshot(), queries, spec, results);
}

Status QueryEngine::ExecuteBatch(const CoconutForest& forest,
                                 const CoconutForest::Snapshot& snapshot,
                                 const std::vector<Series>& queries,
                                 const QuerySpec& spec,
                                 std::vector<SearchResult>* results) const {
  results->assign(queries.size(), SearchResult{});
  return RunBatch<CoconutTree::QueryScratch>(
      pool_, queries.size(),
      [&](uint64_t i, CoconutTree::QueryScratch* scratch) {
        const Value* q = queries[i].data();
        SearchResult* r = &(*results)[i];
        return spec.mode == QuerySpec::Mode::kExact
                   ? forest.ExactSearch(snapshot, q, r, spec.k, scratch)
                   : forest.ApproxSearch(snapshot, q, spec.approx_leaves, r,
                                         spec.k, scratch);
      });
}

Status QueryEngine::ExecuteBatch(const CoconutTrie& trie,
                                 const std::vector<Series>& queries,
                                 const QuerySpec& spec,
                                 std::vector<SearchResult>* results) const {
  results->assign(queries.size(), SearchResult{});
  return RunBatch<CoconutTrie::QueryScratch>(
      pool_, queries.size(),
      [&](uint64_t i, CoconutTrie::QueryScratch* scratch) {
        const Value* q = queries[i].data();
        SearchResult* r = &(*results)[i];
        return spec.mode == QuerySpec::Mode::kExact
                   ? trie.ExactSearch(q, spec.approx_leaves, r, spec.k,
                                      scratch)
                   : trie.ApproxSearch(q, spec.approx_leaves, r, spec.k,
                                       scratch);
      });
}

Status QueryEngine::ExecuteBatch(const ShardedStore& store,
                                 const std::vector<Series>& queries,
                                 const QuerySpec& spec,
                                 std::vector<SearchResult>* results) const {
  return ExecuteBatch(store, store.GetSnapshot(), queries, spec, results);
}

Status QueryEngine::ExecuteBatch(const ShardedStore& store,
                                 const ShardedStore::Snapshot& snapshot,
                                 const std::vector<Series>& queries,
                                 const QuerySpec& spec,
                                 std::vector<SearchResult>* results) const {
  results->assign(queries.size(), SearchResult{});
  const size_t num_shards = snapshot.shards.size();
  if (num_shards != store.num_shards()) {
    return Status::InvalidArgument("snapshot shard count mismatch");
  }
  if (queries.empty()) return Status::OK();
  if (snapshot.num_entries() == 0) return Status::NotFound("empty store");

  // Cross-shard routing: the work grid is (query, shard) cells so a batch
  // saturates the pool even when it is smaller than the thread count; each
  // cell is an ordinary per-shard search against that shard's snapshot.
  // Empty shards are skipped (their cell stays a default SearchResult,
  // which merges as "no candidates").
  std::vector<SearchResult> cells(queries.size() * num_shards);
  COCONUT_RETURN_IF_ERROR(RunBatch<CoconutTree::QueryScratch>(
      pool_, cells.size(),
      [&](uint64_t cell, CoconutTree::QueryScratch* scratch) {
        const size_t qi = static_cast<size_t>(cell) / num_shards;
        const size_t si = static_cast<size_t>(cell) % num_shards;
        if (snapshot.shards[si].num_entries() == 0) return Status::OK();
        const Value* q = queries[qi].data();
        SearchResult* r = &cells[cell];
        const CoconutForest& shard = store.shard(si);
        return spec.mode == QuerySpec::Mode::kExact
                   ? shard.ExactSearch(snapshot.shards[si], q, r, spec.k,
                                       scratch)
                   : shard.ApproxSearch(snapshot.shards[si], q,
                                        spec.approx_leaves, r, spec.k,
                                        scratch);
      }));
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const std::vector<SearchResult> per_shard(
        cells.begin() + qi * num_shards, cells.begin() + (qi + 1) * num_shards);
    ShardedStore::MergeShardResults(per_shard, spec.k, &(*results)[qi]);
  }
  return Status::OK();
}

}  // namespace coconut
