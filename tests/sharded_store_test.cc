// ShardedStore: manifest round-trip and crash recovery, key-space routing,
// cross-shard k-NN equivalence against a single unsharded forest, the
// cross-shard atomic-commit protocol (fault-injection kill-point matrix,
// epoch journal torn-tail handling, strict manifest parsing), and
// multi-shard reader/writer stress tests (ThreadSanitizer targets, see
// .github/workflows/ci.yml).
#include "src/store/sharded_store.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/crc32c.h"
#include "src/common/failpoint.h"
#include "src/core/coconut_forest.h"
#include "src/exec/query_engine.h"
#include "src/store/journal.h"
#include "src/store/manifest.h"
#include "src/summary/invsax.h"
#include "tests/test_util.h"

namespace coconut {
namespace {

using testing::ScratchDir;

constexpr size_t kSeriesLen = 64;

StoreOptions SmallStore(const ScratchDir& dir, size_t num_shards) {
  StoreOptions opts;
  opts.forest.tree.summary.series_length = kSeriesLen;
  opts.forest.tree.summary.segments = 16;
  opts.forest.tree.leaf_capacity = 64;
  opts.forest.tree.tmp_dir = dir.path();
  opts.forest.memtable_series = 100;
  opts.forest.max_runs = 3;
  opts.num_shards = num_shards;
  return opts;
}

std::vector<Series> MakeSeries(size_t count, uint64_t seed) {
  auto gen = MakeGenerator(DatasetKind::kRandomWalk, kSeriesLen, seed);
  std::vector<Series> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) out.push_back(gen->NextSeries());
  return out;
}

/// Brute-force k-NN distances (ascending) over the first `count` series.
std::vector<double> OracleDistances(const std::vector<Series>& data,
                                    size_t count, const Series& query,
                                    size_t k) {
  std::vector<double> dists;
  dists.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    double sum = 0.0;
    for (size_t j = 0; j < kSeriesLen; ++j) {
      const double d = static_cast<double>(data[i][j]) -
                       static_cast<double>(query[j]);
      sum += d * d;
    }
    dists.push_back(std::sqrt(sum));
  }
  std::sort(dists.begin(), dists.end());
  if (dists.size() > k) dists.resize(k);
  return dists;
}

TEST(ShardedStore, OffsetEncodingRoundTrips) {
  for (const size_t shard : {size_t{0}, size_t{1}, size_t{17}}) {
    for (const uint64_t local : {uint64_t{0}, uint64_t{256}, uint64_t{1} << 40}) {
      const uint64_t enc = ShardedStore::EncodeOffset(shard, local);
      size_t s;
      uint64_t l;
      ShardedStore::DecodeOffset(enc, &s, &l);
      EXPECT_EQ(s, shard);
      EXPECT_EQ(l, local);
    }
  }
  // Shard 0 encodes to the plain local offset (forest compatibility).
  EXPECT_EQ(ShardedStore::EncodeOffset(0, 4096u), 4096u);
}

TEST(ShardedStore, RoutingIsAPartitionOfTheKeySpace) {
  for (const size_t shards : {size_t{1}, size_t{2}, size_t{3}, size_t{8}}) {
    ScratchDir dir;
    std::unique_ptr<ShardedStore> store;
    ASSERT_OK(ShardedStore::Open(dir.File("store"), SmallStore(dir, shards),
                                 &store));
    ASSERT_EQ(store->num_shards(), shards);
    const StoreManifest& m = store->manifest();
    EXPECT_EQ(m.shards[0].lower_bound, ZKey());
    EXPECT_EQ(store->ShardForKey(ZKey()), 0u);
    EXPECT_EQ(store->ShardForKey(ZKey::Max()), shards - 1);
    for (size_t i = 0; i < shards; ++i) {
      EXPECT_EQ(store->ShardForKey(m.shards[i].lower_bound), i);
    }
    // Real keys agree with the boundary definition (largest lower <= key).
    const SummaryOptions summary = SmallStore(dir, shards).forest.tree.summary;
    for (const Series& s : MakeSeries(50, 1000 + shards)) {
      const ZKey key = InvSaxFromSeries(s.data(), summary);
      size_t expected = 0;
      for (size_t i = 0; i < shards; ++i) {
        if (m.shards[i].lower_bound <= key) expected = i;
      }
      EXPECT_EQ(store->ShardForKey(key), expected);
    }
  }
}

TEST(ShardedStore, CrossShardKnnMatchesUnshardedForest) {
  ScratchDir dir;
  const std::vector<Series> data = MakeSeries(800, 91);
  const std::vector<Series> queries = MakeSeries(10, 92);

  // Reference: one unsharded forest over the same data.
  ForestOptions fopts = SmallStore(dir, 1).forest;
  std::unique_ptr<CoconutForest> forest;
  ASSERT_OK(CoconutForest::Open(dir.File("data.bin"), dir.File("forest"),
                                fopts, &forest));
  ASSERT_OK(forest->InsertBatch(data));

  for (const size_t shards : {size_t{1}, size_t{2}, size_t{4}}) {
    std::unique_ptr<ShardedStore> store;
    ASSERT_OK(ShardedStore::Open(
        dir.File("store-" + std::to_string(shards)),
        SmallStore(dir, shards), &store));
    ASSERT_OK(store->InsertBatch(data));
    EXPECT_EQ(store->num_entries(), data.size());

    for (size_t qi = 0; qi < queries.size(); ++qi) {
      const size_t k = 1 + qi % 5;
      SearchResult from_forest, from_store;
      ASSERT_OK(forest->ExactSearch(queries[qi].data(), &from_forest, k));
      ASSERT_OK(store->ExactSearch(queries[qi].data(), &from_store, k));
      ASSERT_EQ(from_store.neighbors.size(), from_forest.neighbors.size());
      for (size_t j = 0; j < from_forest.neighbors.size(); ++j) {
        EXPECT_NEAR(from_store.neighbors[j].distance,
                    from_forest.neighbors[j].distance, 1e-9)
            << "shards=" << shards << " query=" << qi << " rank=" << j;
      }
      // Approximate store search is an upper bound of the exact answer.
      SearchResult approx;
      ASSERT_OK(store->ApproxSearch(queries[qi].data(), 1, &approx, k));
      EXPECT_GE(approx.distance + 1e-6, from_store.distance);
    }
  }
}

TEST(ShardedStore, QueryEngineBatchMatchesSerialStoreSearch) {
  ScratchDir dir;
  const std::vector<Series> data = MakeSeries(600, 93);
  const std::vector<Series> queries = MakeSeries(24, 94);
  std::unique_ptr<ShardedStore> store;
  ASSERT_OK(ShardedStore::Open(dir.File("store"), SmallStore(dir, 4), &store));
  ASSERT_OK(store->InsertBatch(data));

  ThreadPool pool(4);
  QueryEngine engine(&pool);
  const ShardedStore::Snapshot snap = store->GetSnapshot();
  for (const auto mode :
       {QuerySpec::Mode::kExact, QuerySpec::Mode::kApprox}) {
    QuerySpec spec;
    spec.mode = mode;
    spec.k = 3;
    spec.approx_leaves = 2;
    std::vector<SearchResult> batch;
    ASSERT_OK(engine.ExecuteBatch(*store, snap, queries, spec, &batch));
    ASSERT_EQ(batch.size(), queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      SearchResult serial;
      if (mode == QuerySpec::Mode::kExact) {
        ASSERT_OK(store->ExactSearch(snap, queries[i].data(), &serial,
                                     spec.k));
      } else {
        ASSERT_OK(store->ApproxSearch(snap, queries[i].data(),
                                      spec.approx_leaves, &serial, spec.k));
      }
      ASSERT_EQ(batch[i].neighbors.size(), serial.neighbors.size());
      for (size_t j = 0; j < serial.neighbors.size(); ++j) {
        EXPECT_EQ(batch[i].neighbors[j].offset, serial.neighbors[j].offset);
        EXPECT_EQ(batch[i].neighbors[j].distance,
                  serial.neighbors[j].distance);
      }
    }
  }
}

TEST(ShardedStore, ManifestRoundTripSurvivesCrashReopen) {
  ScratchDir dir;
  const std::string root = dir.File("store");
  const std::vector<Series> data = MakeSeries(500, 95);
  const std::vector<Series> queries = MakeSeries(8, 96);

  std::vector<SearchResult> before(queries.size());
  {
    std::unique_ptr<ShardedStore> store;
    ASSERT_OK(ShardedStore::Open(root, SmallStore(dir, 3), &store));
    ASSERT_OK(store->InsertBatch(data));
    ASSERT_OK(store->Flush());  // re-commits the manifest with entry counts
    for (size_t i = 0; i < queries.size(); ++i) {
      ASSERT_OK(store->ExactSearch(queries[i].data(), &before[i], 3));
    }
    // The store object goes out of scope with no clean-shutdown step:
    // reopening is always the crash-recovery path.
  }

  // Harden the simulated crash: wipe every derived file (runs + sidecars),
  // keeping only each shard's raw dataset and the committed manifest.
  // Recovery must rebuild the runs from the raw files alone.
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind("run-", 0) == 0) {
      std::filesystem::remove(entry.path());
    }
  }

  // Reopen with a DIFFERENT requested shard count: the manifest must win,
  // or routing would no longer match the stored data.
  std::unique_ptr<ShardedStore> store;
  ASSERT_OK(ShardedStore::Open(root, SmallStore(dir, 7), &store));
  EXPECT_EQ(store->num_shards(), 3u);
  EXPECT_EQ(store->num_entries(), data.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    SearchResult after;
    ASSERT_OK(store->ExactSearch(queries[i].data(), &after, 3));
    ASSERT_EQ(after.neighbors.size(), before[i].neighbors.size());
    for (size_t j = 0; j < before[i].neighbors.size(); ++j) {
      EXPECT_EQ(after.neighbors[j].offset, before[i].neighbors[j].offset);
      EXPECT_NEAR(after.neighbors[j].distance,
                  before[i].neighbors[j].distance, 1e-9);
    }
  }

  // And the data keeps flowing after recovery.
  ASSERT_OK(store->InsertBatch(MakeSeries(100, 97)));
  EXPECT_EQ(store->num_entries(), data.size() + 100);
}

TEST(ShardedStore, RejectsCorruptManifestAndMismatchedOptions) {
  ScratchDir dir;
  const std::string root = dir.File("store");
  {
    std::unique_ptr<ShardedStore> store;
    ASSERT_OK(ShardedStore::Open(root, SmallStore(dir, 2), &store));
  }
  // Mismatched series_length is refused (the store would mis-route).
  {
    StoreOptions opts = SmallStore(dir, 2);
    opts.forest.tree.summary.series_length = 128;
    opts.forest.tree.summary.segments = 16;
    std::unique_ptr<ShardedStore> store;
    EXPECT_FALSE(ShardedStore::Open(root, opts, &store).ok());
  }
  // A torn/garbage manifest is refused, not silently repartitioned.
  {
    std::ofstream(JoinPath(root, kStoreManifestName)) << "garbage\n";
    std::unique_ptr<ShardedStore> store;
    EXPECT_FALSE(ShardedStore::Open(root, SmallStore(dir, 2), &store).ok());
  }
  // Shard data with a missing manifest is a damaged store, not a new one.
  {
    std::filesystem::remove(JoinPath(root, kStoreManifestName));
    std::unique_ptr<ShardedStore> store;
    const Status st = ShardedStore::Open(root, SmallStore(dir, 2), &store);
    EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  }
}

// --- Strict manifest parsing ------------------------------------------------

const char kZeroKeyHex[] =
    "0000000000000000000000000000000000000000000000000000000000000000";

std::string ValidManifestText() {
  return std::string("coconut-store-manifest v1\n") +
         "series_length 64\n" +
         "last_committed_epoch 0\n" +
         "shards 1\n" +
         "shard 0 " + kZeroKeyHex + " shard-0 0\n";
}

void WriteManifestText(const std::string& root, const std::string& text) {
  std::ofstream(JoinPath(root, kStoreManifestName)) << text;
}

TEST(StoreManifestStrict, AcceptsValidManifest) {
  ScratchDir dir;
  WriteManifestText(dir.path(), ValidManifestText());
  StoreManifest m;
  ASSERT_OK(ReadStoreManifest(dir.path(), &m));
  EXPECT_EQ(m.series_length, 64u);
  EXPECT_EQ(m.last_committed_epoch, 0u);
  EXPECT_EQ(m.shards.size(), 1u);
  // A manifest written before the epoch journal existed (no
  // last_committed_epoch directive) still parses, defaulting to epoch 0.
  WriteManifestText(dir.path(),
                    std::string("coconut-store-manifest v1\n") +
                        "series_length 64\nshards 1\nshard 0 " + kZeroKeyHex +
                        " shard-0 0\n");
  ASSERT_OK(ReadStoreManifest(dir.path(), &m));
  EXPECT_EQ(m.last_committed_epoch, 0u);
}

TEST(StoreManifestStrict, RejectsMalformedInputNamingTheLine) {
  struct Case {
    const char* name;
    std::string text;
    const char* expect_in_message;
  };
  const std::string valid = ValidManifestText();
  const std::vector<Case> cases = {
      {"duplicate series_length", valid + "series_length 64\n",
       "duplicate series_length"},
      {"duplicate shards", valid + "shards 1\n", "duplicate shards"},
      {"duplicate last_committed_epoch", valid + "last_committed_epoch 3\n",
       "duplicate last_committed_epoch"},
      {"trailing tokens on shard line",
       std::string("coconut-store-manifest v1\nseries_length 64\nshards 1\n") +
           "shard 0 " + kZeroKeyHex + " shard-0 5 junk\n",
       "trailing tokens"},
      {"trailing tokens on series_length",
       std::string("coconut-store-manifest v1\nseries_length 64 junk\n") +
           "shards 1\nshard 0 " + kZeroKeyHex + " shard-0 0\n",
       "trailing tokens"},
      {"missing series_length",
       std::string("coconut-store-manifest v1\nshards 1\nshard 0 ") +
           kZeroKeyHex + " shard-0 0\n",
       "missing series_length"},
      {"missing shards directive",
       std::string("coconut-store-manifest v1\nseries_length 64\nshard 0 ") +
           kZeroKeyHex + " shard-0 0\n",
       "missing shards"},
      {"non-numeric series_length",
       std::string("coconut-store-manifest v1\nseries_length abc\nshards 1\n") +
           "shard 0 " + kZeroKeyHex + " shard-0 0\n",
       "malformed line"},
  };
  for (const Case& c : cases) {
    ScratchDir dir;
    WriteManifestText(dir.path(), c.text);
    StoreManifest m;
    const Status st = ReadStoreManifest(dir.path(), &m);
    EXPECT_TRUE(st.IsCorruption()) << c.name << ": " << st.ToString();
    EXPECT_NE(st.message().find(c.expect_in_message), std::string::npos)
        << c.name << ": " << st.ToString();
  }
}

// --- Cross-shard atomic commit: kill-point matrix ---------------------------

/// Brute-force reference distances over `data` (ascending, top k).
std::vector<double> OracleTopK(const std::vector<Series>& data,
                               const Series& query, size_t k) {
  std::vector<double> dists;
  dists.reserve(data.size());
  for (const Series& s : data) {
    double sum = 0.0;
    for (size_t j = 0; j < kSeriesLen; ++j) {
      const double d =
          static_cast<double>(s[j]) - static_cast<double>(query[j]);
      sum += d * d;
    }
    dists.push_back(std::sqrt(sum));
  }
  std::sort(dists.begin(), dists.end());
  if (dists.size() > k) dists.resize(k);
  return dists;
}

/// Asserts the recovered store answers k-NN exactly like a fresh unsharded
/// forest over `expected` (and both match the brute-force oracle) —
/// distances included, with duplicate series in the data producing ties.
void ExpectStoreMatchesUnshardedForest(const ScratchDir& dir,
                                       ShardedStore* store,
                                       const std::vector<Series>& expected,
                                       const std::string& tag) {
  ForestOptions fopts = SmallStore(dir, 1).forest;
  std::unique_ptr<CoconutForest> forest;
  ASSERT_OK(CoconutForest::Open(dir.File("ref-raw-" + tag),
                                dir.File("ref-forest-" + tag), fopts,
                                &forest));
  ASSERT_OK(forest->InsertBatch(expected));
  const std::vector<Series> queries = MakeSeries(6, 424242);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const size_t k = 1 + qi % 4;
    SearchResult from_store, from_forest;
    ASSERT_OK(store->ExactSearch(queries[qi].data(), &from_store, k));
    ASSERT_OK(forest->ExactSearch(queries[qi].data(), &from_forest, k));
    const std::vector<double> oracle = OracleTopK(expected, queries[qi], k);
    ASSERT_EQ(from_store.neighbors.size(), from_forest.neighbors.size())
        << tag << " query " << qi;
    ASSERT_EQ(from_store.neighbors.size(), oracle.size())
        << tag << " query " << qi;
    for (size_t j = 0; j < oracle.size(); ++j) {
      EXPECT_NEAR(from_store.neighbors[j].distance,
                  from_forest.neighbors[j].distance, 1e-9)
          << tag << " query " << qi << " rank " << j;
      EXPECT_NEAR(from_store.neighbors[j].distance, oracle[j], 1e-4)
          << tag << " query " << qi << " rank " << j;
    }
  }
}

TEST(ShardedStoreRecovery, KillPointMatrixYieldsCommittedPrefix) {
  struct Kill {
    const char* site;
    bool batch_survives;  // commit record durable before the "crash"?
    const char* name;
  };
  const std::vector<Kill> kills = {
      {"store.commit.after_begin", false, "after-begin"},
      {"store.commit.shard_stage", false, "shard-stage"},
      {"store.commit.before_journal_commit", false, "before-commit"},
      {"store.commit.after_journal_commit", true, "after-commit"},
  };

  for (const Kill& kill : kills) {
    SCOPED_TRACE(kill.name);
    FailpointGuard failpoints;
    ScratchDir dir;
    const std::string root = dir.File("store");

    // Data with deliberate duplicates so recovered k-NN has distance ties.
    std::vector<Series> data = MakeSeries(220, 7000);
    for (size_t i = 0; i < 20; ++i) data.push_back(data[i * 7]);
    const std::vector<Series> committed(data.begin(), data.begin() + 160);
    const std::vector<Series> torn(data.begin() + 160, data.end());

    {
      std::unique_ptr<ShardedStore> store;
      ASSERT_OK(ShardedStore::Open(root, SmallStore(dir, 3), &store));
      // The torn batch must actually be multi-shard or the journal-free
      // fast path would dodge the kill point.
      std::map<size_t, size_t> owners;
      for (const Series& s : torn) ++owners[store->ShardForSeries(s)];
      ASSERT_GT(owners.size(), 1u) << "torn batch routed to a single shard";
      const size_t victim = store->ShardForSeries(torn[0]);

      ASSERT_OK(store->InsertBatch(
          std::vector<Series>(committed.begin(), committed.begin() + 80)));
      ASSERT_OK(store->InsertBatch(
          std::vector<Series>(committed.begin() + 80, committed.end())));
      EXPECT_EQ(store->num_entries(), committed.size());

      // Arm the chosen kill point AFTER the committed prefix lands (for
      // shard_stage: only the victim shard fails, so every OTHER shard
      // durably stages its slice — the torn state).
      if (std::string(kill.site) == "store.commit.shard_stage") {
        Failpoints::Default().ArmCallback(
            kill.site, [victim](size_t shard) {
              if (shard != victim) return Status::OK();
              return Status::IOError("injected fault");
            });
      } else {
        Failpoints::Default().ArmError(kill.site);
      }
      const Status st = store->InsertBatch(torn);
      EXPECT_FALSE(st.ok()) << st.ToString();

      // The torn epoch is never published in-process either: queries and
      // counts keep seeing only the committed prefix...
      EXPECT_EQ(store->num_entries(), committed.size());
      // ...and the store is write-poisoned until reopened.
      Failpoints::Default().DisarmAll();
      const Status poisoned = store->InsertBatch(torn);
      EXPECT_TRUE(poisoned.IsIOError()) << poisoned.ToString();
      EXPECT_NE(poisoned.message().find("read-only"), std::string::npos)
          << poisoned.ToString();
      // Simulated crash: the store object is dropped with no clean
      // shutdown; whatever reached disk stays there.
    }

    std::unique_ptr<ShardedStore> store;
    ASSERT_OK(ShardedStore::Open(root, SmallStore(dir, 3), &store));
    std::vector<Series> expected = committed;
    if (kill.batch_survives) {
      expected.insert(expected.end(), torn.begin(), torn.end());
    }
    EXPECT_EQ(store->num_entries(), expected.size());
    ExpectStoreMatchesUnshardedForest(dir, store.get(), expected, kill.name);

    // Recovery fully re-arms the store: the next cross-shard batch commits.
    ASSERT_OK(store->InsertBatch(MakeSeries(60, 7100)));
    EXPECT_EQ(store->num_entries(), expected.size() + 60);
  }
}

TEST(ShardedStoreRecovery, TornCommitStatusNamesFailedShards) {
  FailpointGuard failpoints;
  ScratchDir dir;
  const std::string root = dir.File("store");
  const std::vector<Series> batch = MakeSeries(120, 8000);

  std::unique_ptr<ShardedStore> store;
  ASSERT_OK(ShardedStore::Open(root, SmallStore(dir, 4), &store));
  std::map<size_t, size_t> owners;
  for (const Series& s : batch) ++owners[store->ShardForSeries(s)];
  ASSERT_GT(owners.size(), 1u);
  const size_t victim = store->ShardForSeries(batch[0]);

  Failpoints::Default().ArmCallback(
      "store.commit.shard_stage", [victim](size_t shard) {
        if (shard != victim) return Status::OK();
        return Status::IOError("disk gone");
      });
  const Status st = store->InsertBatch(batch);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("torn at epoch"), std::string::npos)
      << st.ToString();
  EXPECT_NE(st.message().find("shard " + std::to_string(victim)),
            std::string::npos)
      << st.ToString();
}

TEST(ShardedStore, WriteHealthRespondsDuringInFlightCommit) {
  // Regression: WriteHealth used to take commit_mu_, so a health probe
  // queued behind an entire epoch commit — and the stage phase does real
  // durable I/O under that lock. The poison flag now lives under its own
  // innermost mutex; a probe must answer while a commit is in flight.
  FailpointGuard failpoints;
  ScratchDir dir;
  const std::string root = dir.File("store");

  // The failpoint callback parks staging shards until released, modeling a
  // slow durable append: the commit lock stays held for the whole stall.
  auto entered = std::make_shared<std::atomic<bool>>(false);
  auto release = std::make_shared<std::atomic<bool>>(false);
  Failpoints::Default().ArmCallback(
      "store.commit.shard_stage", [entered, release](size_t) {
        entered->store(true);
        while (!release->load()) std::this_thread::yield();
        return Status::OK();
      });
  std::unique_ptr<ShardedStore> store;
  ASSERT_OK(ShardedStore::Open(root, SmallStore(dir, 2), &store));

  const std::vector<Series> batch = MakeSeries(120, 4200);
  // Must be multi-shard, or the journal-free fast path would skip the
  // epoch protocol (and its kShardStage hook) entirely.
  std::map<size_t, size_t> owners;
  for (const Series& s : batch) ++owners[store->ShardForSeries(s)];
  ASSERT_GT(owners.size(), 1u);

  std::thread writer([&]() { EXPECT_OK(store->InsertBatch(batch)); });
  while (!entered->load()) std::this_thread::yield();

  // Probe from a helper thread with a deadline, so a regression shows up
  // as a failed expectation instead of a hung test.
  std::atomic<bool> health_done{false};
  std::thread prober([&]() {
    EXPECT_OK(store->WriteHealth());
    health_done.store(true);
  });
  for (int i = 0; i < 5000 && !health_done.load(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(health_done.load())
      << "WriteHealth blocked behind an in-flight epoch commit";

  release->store(true);
  prober.join();
  writer.join();
  EXPECT_OK(store->WriteHealth());
  EXPECT_EQ(store->num_entries(), batch.size());
}

TEST(ShardedStoreRecovery, JournalTornTailIgnoredInteriorCorruptionRejected) {
  ScratchDir dir;
  const std::string root = dir.File("store");
  const std::vector<Series> data = MakeSeries(150, 9000);
  {
    std::unique_ptr<ShardedStore> store;
    ASSERT_OK(ShardedStore::Open(root, SmallStore(dir, 2), &store));
    ASSERT_OK(store->InsertBatch(data));
    EXPECT_EQ(store->num_entries(), data.size());
  }

  // A torn final append (no trailing newline) is the normal crash shape:
  // the record never happened, the store reopens cleanly.
  {
    std::ofstream journal(JoinPath(root, kStoreJournalName),
                          std::ios::app | std::ios::binary);
    journal << "begin 99 2 0:12";  // torn mid-slice, no newline
  }
  {
    std::unique_ptr<ShardedStore> store;
    ASSERT_OK(ShardedStore::Open(root, SmallStore(dir, 2), &store));
    EXPECT_EQ(store->num_entries(), data.size());
  }

  // Interior garbage is real corruption and must refuse to open.
  {
    std::ofstream journal(JoinPath(root, kStoreJournalName),
                          std::ios::binary);
    journal << "coconut-store-journal v1\n"
            << "begin 1 1 0:0:banana\n"
            << "commit 1\n";
  }
  std::unique_ptr<ShardedStore> store;
  const Status st = ShardedStore::Open(root, SmallStore(dir, 2), &store);
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
}

TEST(ShardedStoreRecovery, FlushCheckpointsTheJournal) {
  ScratchDir dir;
  const std::string root = dir.File("store");
  std::unique_ptr<ShardedStore> store;
  ASSERT_OK(ShardedStore::Open(root, SmallStore(dir, 3), &store));

  const std::vector<Series> data = MakeSeries(200, 9900);
  // Both batches must be multi-shard or the journal-free fast path would
  // leave the journal untouched and the size expectations below would
  // misfire at the wrong cause.
  std::map<size_t, size_t> first_owners, second_owners;
  for (size_t i = 0; i < 100; ++i) {
    ++first_owners[store->ShardForSeries(data[i])];
    ++second_owners[store->ShardForSeries(data[100 + i])];
  }
  ASSERT_GT(first_owners.size(), 1u) << "batch 1 routed to a single shard";
  ASSERT_GT(second_owners.size(), 1u) << "batch 2 routed to a single shard";
  ASSERT_OK(store->InsertBatch(
      std::vector<Series>(data.begin(), data.begin() + 100)));
  uint64_t journal_size = 0;
  ASSERT_OK(FileSize(JoinPath(root, kStoreJournalName), &journal_size));
  const uint64_t with_records = journal_size;

  // Flush persists the epoch floor into the manifest and retires the
  // journal records: the file shrinks back to its header.
  ASSERT_OK(store->Flush());
  ASSERT_OK(FileSize(JoinPath(root, kStoreJournalName), &journal_size));
  EXPECT_LT(journal_size, with_records);
  const uint64_t header_only = journal_size;

  // The journal keeps working after the checkpoint (new epochs append to
  // the fresh file) and recovery still sees everything.
  const uint64_t epoch_before = store->committed_epoch();
  ASSERT_OK(store->InsertBatch(
      std::vector<Series>(data.begin() + 100, data.end())));
  EXPECT_GT(store->committed_epoch(), epoch_before);
  ASSERT_OK(FileSize(JoinPath(root, kStoreJournalName), &journal_size));
  EXPECT_GT(journal_size, header_only);
  store.reset();
  ASSERT_OK(ShardedStore::Open(root, SmallStore(dir, 3), &store));
  EXPECT_EQ(store->num_entries(), data.size());
  // Reopen resumes epoch numbering above everything ever journaled.
  EXPECT_GE(store->committed_epoch(), epoch_before);
}

TEST(ShardedStoreRecovery, TornSingleSeriesTailRolledBack) {
  ScratchDir dir;
  const std::string root = dir.File("store");
  const std::vector<Series> data = MakeSeries(130, 9500);
  {
    std::unique_ptr<ShardedStore> store;
    ASSERT_OK(ShardedStore::Open(root, SmallStore(dir, 2), &store));
    ASSERT_OK(store->InsertBatch(data));
  }
  // A crash mid-append of a journal-free write can leave a fraction of one
  // series at a shard's raw tail; recovery must shave it off (the raw file
  // is a headerless array of fixed-size series).
  {
    std::ofstream raw(JoinPath(JoinPath(root, "shard-0"), "raw.bin"),
                      std::ios::app | std::ios::binary);
    raw << "torn!";
  }
  std::unique_ptr<ShardedStore> store;
  ASSERT_OK(ShardedStore::Open(root, SmallStore(dir, 2), &store));
  EXPECT_EQ(store->num_entries(), data.size());
  ExpectStoreMatchesUnshardedForest(dir, store.get(), data, "torn-tail");
}

TEST(ShardedStoreRecovery, SizeTriggeredJournalCheckpoint) {
  ScratchDir dir;
  const std::string root = dir.File("store");
  StoreOptions opts = SmallStore(dir, 3);
  opts.journal_checkpoint_bytes = 64;  // every multi-shard epoch overflows
  std::unique_ptr<ShardedStore> store;
  ASSERT_OK(ShardedStore::Open(root, opts, &store));
  uint64_t header_only = 0;
  ASSERT_OK(FileSize(JoinPath(root, kStoreJournalName), &header_only));

  const std::vector<Series> data = MakeSeries(120, 9700);
  std::map<size_t, size_t> owners;
  for (const Series& s : data) ++owners[store->ShardForSeries(s)];
  ASSERT_GT(owners.size(), 1u) << "batch routed to a single shard";
  ASSERT_OK(store->InsertBatch(data));

  // The committing call itself noticed the overflow and checkpointed: the
  // manifest durably holds the epoch floor and the journal is back to its
  // header — no explicit Flush needed.
  uint64_t after = 0;
  ASSERT_OK(FileSize(JoinPath(root, kStoreJournalName), &after));
  EXPECT_EQ(after, header_only);
  StoreManifest m;
  ASSERT_OK(ReadStoreManifest(root, &m));
  EXPECT_EQ(m.last_committed_epoch, store->committed_epoch());

  // 0 disables the trigger: records stay until an explicit checkpoint.
  store.reset();
  StoreOptions no_trigger = SmallStore(dir, 3);
  no_trigger.journal_checkpoint_bytes = 0;
  ASSERT_OK(ShardedStore::Open(root, no_trigger, &store));
  const std::vector<Series> more = MakeSeries(120, 9701);
  std::map<size_t, size_t> more_owners;
  for (const Series& s : more) ++more_owners[store->ShardForSeries(s)];
  ASSERT_GT(more_owners.size(), 1u) << "batch routed to a single shard";
  ASSERT_OK(store->InsertBatch(more));
  ASSERT_OK(FileSize(JoinPath(root, kStoreJournalName), &after));
  EXPECT_GT(after, header_only);

  // Either way recovery sees everything.
  store.reset();
  ASSERT_OK(ShardedStore::Open(root, SmallStore(dir, 3), &store));
  EXPECT_EQ(store->num_entries(), data.size() + more.size());
}

// --- End-to-end integrity: byte flips are detected, never silently served ---

TEST(StoreManifestStrict, ChecksumTrailerDetectsByteFlips) {
  ScratchDir dir;
  StoreManifest m;
  m.series_length = 64;
  ShardInfo info;
  info.dir = "shard-0";
  info.entries = 7;
  m.shards.push_back(info);
  ASSERT_OK(WriteStoreManifest(dir.path(), m));

  const std::string path = JoinPath(dir.path(), kStoreManifestName);
  std::string text;
  {
    std::ifstream in(path, std::ios::binary);
    text.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  ASSERT_NE(text.find("\nchecksum "), std::string::npos);

  // Flip the entries digit ("shard-0 7" -> "shard-0 6"): the line still
  // parses, so the only defense left is the checksum trailer.
  std::string flipped = text;
  const size_t pos = flipped.find(" shard-0 7");
  ASSERT_NE(pos, std::string::npos);
  flipped[pos + 9] ^= 0x01;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << flipped;
  }
  StoreManifest reread;
  Status st = ReadStoreManifest(dir.path(), &reread);
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  EXPECT_NE(st.message().find("checksum"), std::string::npos)
      << st.ToString();

  // The checksum trailer must be the LAST line: content appended after it
  // (a truncation-then-append attack shape) is rejected too.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text << "series_length 64\n";
  }
  st = ReadStoreManifest(dir.path(), &reread);
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  EXPECT_NE(st.message().find("last"), std::string::npos) << st.ToString();
}

TEST(ShardedStoreRecovery, JournalRecordByteFlipRejected) {
  ScratchDir dir;
  const std::string root = dir.File("store");
  {
    std::unique_ptr<ShardedStore> store;
    ASSERT_OK(ShardedStore::Open(root, SmallStore(dir, 2), &store));
    const std::vector<Series> data = MakeSeries(150, 9800);
    std::map<size_t, size_t> owners;
    for (const Series& s : data) ++owners[store->ShardForSeries(s)];
    ASSERT_GT(owners.size(), 1u) << "batch routed to a single shard";
    ASSERT_OK(store->InsertBatch(data));  // journal: begin + commit records
  }
  const std::string journal_path = JoinPath(root, kStoreJournalName);
  std::string text;
  {
    std::ifstream in(journal_path, std::ios::binary);
    text.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  // Flip a byte inside an INTERIOR record (the begin line): unlike a torn
  // tail, interior damage must refuse to open.
  const size_t begin_pos = text.find("\nbegin ");
  ASSERT_NE(begin_pos, std::string::npos);
  text[begin_pos + 3] ^= 0x01;
  {
    std::ofstream out(journal_path, std::ios::binary | std::ios::trunc);
    out << text;
  }
  std::unique_ptr<ShardedStore> store;
  const Status st = ShardedStore::Open(root, SmallStore(dir, 2), &store);
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  EXPECT_NE(st.message().find("crc"), std::string::npos) << st.ToString();
}

// --- Degraded-mode serving ---------------------------------------------------

TEST(ShardedStoreDegraded, CorruptShardQuarantinesAndServesDegraded) {
  ScratchDir dir;
  const std::string root = dir.File("store");
  const std::vector<Series> data = MakeSeries(400, 11000);
  size_t victim = SIZE_MAX;
  std::vector<Series> healthy;
  {
    std::unique_ptr<ShardedStore> store;
    ASSERT_OK(ShardedStore::Open(root, SmallStore(dir, 3), &store));
    ASSERT_OK(store->InsertBatch(data));
    ASSERT_OK(store->Flush());  // manifest records the committed floor
    std::map<size_t, size_t> owners;
    for (const Series& s : data) ++owners[store->ShardForSeries(s)];
    ASSERT_GT(owners.size(), 1u);
    for (const auto& [shard, count] : owners) {
      if (victim == SIZE_MAX || count > owners[victim]) victim = shard;
    }
    for (const Series& s : data) {
      if (store->ShardForSeries(s) != victim) healthy.push_back(s);
    }
    ASSERT_FALSE(healthy.empty());
  }

  // Flip one byte in the middle of the victim's raw file. Its per-series
  // checksum no longer verifies, and salvage cannot keep the committed
  // floor — the shard must quarantine, not silently serve a prefix.
  const std::string raw = JoinPath(
      JoinPath(root, "shard-" + std::to_string(victim)), "raw.bin");
  {
    std::fstream f(raw, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(0, std::ios::end);
    const std::streamoff size = f.tellg();
    ASSERT_GT(size, 0);
    f.seekg(size / 2);
    char b = 0;
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x01);
    f.seekp(size / 2);
    f.write(&b, 1);
  }

  std::unique_ptr<ShardedStore> store;
  ASSERT_OK(ShardedStore::Open(root, SmallStore(dir, 3), &store));
  std::string detail;
  EXPECT_EQ(store->QuarantinedShards(&detail), 1u);
  EXPECT_NE(detail.find("shard " + std::to_string(victim)),
            std::string::npos)
      << detail;

  // Writes are refused (a routed write could silently drop)...
  const Status w = store->InsertBatch(MakeSeries(10, 11001));
  EXPECT_TRUE(w.IsIOError()) << w.ToString();
  EXPECT_NE(w.message().find("degraded"), std::string::npos) << w.ToString();
  EXPECT_FALSE(store->WriteHealth().ok());

  // ...but reads continue over the healthy shards, flagged degraded and
  // exact over what they can see.
  const ShardedStore::Snapshot snap = store->GetSnapshot();
  EXPECT_TRUE(snap.degraded);
  EXPECT_EQ(store->num_entries(), healthy.size());
  const std::vector<Series> queries = MakeSeries(5, 11002);
  for (const Series& q : queries) {
    SearchResult r;
    ASSERT_OK(store->ExactSearch(q.data(), &r, 3));
    EXPECT_TRUE(r.degraded);
    const std::vector<double> oracle = OracleTopK(healthy, q, 3);
    ASSERT_EQ(r.neighbors.size(), oracle.size());
    for (size_t j = 0; j < oracle.size(); ++j) {
      EXPECT_NEAR(r.neighbors[j].distance, oracle[j], 1e-4);
    }
  }
}

TEST(ShardedStoreDegraded, ReadTimeChecksumFailureQuarantinesShard) {
  ScratchDir dir;
  const std::string root = dir.File("store");
  std::unique_ptr<ShardedStore> store;
  ASSERT_OK(ShardedStore::Open(root, SmallStore(dir, 2), &store));
  const std::vector<Series> data = MakeSeries(300, 12000);
  std::map<size_t, size_t> owners;
  for (const Series& s : data) ++owners[store->ShardForSeries(s)];
  ASSERT_GT(owners.size(), 1u);
  ASSERT_OK(store->InsertBatch(data));
  ASSERT_OK(store->Flush());  // memtables -> run files (+ .sax sidecars)

  // Corrupt a run sidecar of one LIVE shard under the running store. The
  // first exact query lazily loads it, fails its checksum, and the store
  // quarantines that shard mid-flight instead of failing reads store-wide.
  size_t victim = SIZE_MAX;
  for (size_t i = 0; i < store->num_shards() && victim == SIZE_MAX; ++i) {
    const std::string shard_dir = JoinPath(root, "shard-" + std::to_string(i));
    for (const auto& entry :
         std::filesystem::directory_iterator(shard_dir)) {
      if (!entry.is_regular_file()) continue;
      if (entry.path().extension() != ".sax") continue;
      std::fstream f(entry.path(), std::ios::in | std::ios::out |
                                       std::ios::binary);
      ASSERT_TRUE(f.good());
      f.seekg(0, std::ios::end);
      const std::streamoff size = f.tellg();
      ASSERT_GT(size, 0);
      f.seekg(size / 2);
      char b = 0;
      f.read(&b, 1);
      b = static_cast<char>(b ^ 0x01);
      f.seekp(size / 2);
      f.write(&b, 1);
      victim = i;
      break;
    }
  }
  ASSERT_NE(victim, SIZE_MAX) << "no run sidecar found to corrupt";

  const std::vector<Series> queries = MakeSeries(4, 12001);
  SearchResult r;
  ASSERT_OK(store->ExactSearch(queries[0].data(), &r, 3));
  EXPECT_TRUE(r.degraded);
  EXPECT_EQ(store->QuarantinedShards(), 1u);
  std::string detail;
  store->QuarantinedShards(&detail);
  EXPECT_NE(detail.find("shard " + std::to_string(victim)),
            std::string::npos)
      << detail;

  // Later snapshots carry the flag, reads keep answering, writes refuse.
  EXPECT_TRUE(store->GetSnapshot().degraded);
  SearchResult again;
  ASSERT_OK(store->ExactSearch(queries[1].data(), &again, 2));
  EXPECT_TRUE(again.degraded);
  EXPECT_FALSE(store->InsertBatch(MakeSeries(5, 12002)).ok());
  EXPECT_FALSE(store->WriteHealth().ok());
}

// --- Atomic cross-shard visibility ------------------------------------------

TEST(ShardedStoreConcurrency, SnapshotsNeverSeeHalfABatch) {
  ScratchDir dir;
  StoreOptions opts = SmallStore(dir, 4);
  opts.forest.memtable_series = 48;  // frequent flushes during publication
  opts.forest.max_runs = 2;
  std::unique_ptr<ShardedStore> store;
  ASSERT_OK(ShardedStore::Open(dir.File("store"), opts, &store));

  // Build batches that are GUARANTEED multi-shard: pair series from the two
  // most popular owner shards, half and half per batch. Every batch then
  // commits as one epoch of exactly kBatchSize series.
  const std::vector<Series> raw = MakeSeries(700, 1234);
  std::map<size_t, std::vector<Series>> by_owner;
  for (const Series& s : raw) by_owner[store->ShardForSeries(s)].push_back(s);
  ASSERT_GT(by_owner.size(), 1u);
  std::vector<std::vector<Series>> pools;
  for (auto& [shard, pool] : by_owner) {
    (void)shard;
    pools.push_back(std::move(pool));
  }
  std::sort(pools.begin(), pools.end(),
            [](const auto& a, const auto& b) { return a.size() > b.size(); });
  constexpr size_t kHalf = 10;
  constexpr size_t kBatchSize = 2 * kHalf;
  const size_t num_batches =
      std::min(pools[0].size(), pools[1].size()) / kHalf;
  ASSERT_GT(num_batches, 3u);

  std::atomic<bool> done{false};
  std::vector<std::string> failures;
  std::mutex failures_mu;
  auto record_failure = [&](const std::string& msg) {
    std::lock_guard<std::mutex> lock(failures_mu);
    failures.push_back(msg);
  };

  std::thread writer([&]() {
    for (size_t b = 0; b < num_batches; ++b) {
      std::vector<Series> batch;
      for (size_t j = 0; j < kHalf; ++j) {
        batch.push_back(pools[0][b * kHalf + j]);
        batch.push_back(pools[1][b * kHalf + j]);
      }
      Status st = store->InsertBatch(batch);
      if (st.ok() && b % 3 == 1) st = store->Flush();
      if (st.ok() && b % 5 == 2) st = store->CompactAll();
      if (!st.ok()) {
        record_failure("writer: " + st.ToString());
        break;
      }
    }
    done.store(true);
  });

  // Readers: every batch is one cross-shard epoch of kBatchSize series, so
  // any snapshot must expose a whole number of epochs — and exactly
  // epoch * kBatchSize entries. Seeing anything else is the read-skew bug
  // this protocol removes.
  auto reader_fn = [&]() {
    uint64_t last_epoch = 0;
    while (!done.load()) {
      const ShardedStore::Snapshot snap = store->GetSnapshot();
      const uint64_t visible = snap.num_entries();
      if (visible % kBatchSize != 0) {
        record_failure("snapshot saw half a batch: " +
                       std::to_string(visible) + " entries");
        return;
      }
      if (visible != snap.epoch * kBatchSize) {
        record_failure("snapshot entries disagree with its epoch stamp: " +
                       std::to_string(visible) + " vs epoch " +
                       std::to_string(snap.epoch));
        return;
      }
      if (snap.epoch < last_epoch) {
        record_failure("snapshot epoch went backwards");
        return;
      }
      last_epoch = snap.epoch;
      // num_entries() must honor the same visibility boundary.
      const uint64_t counted = store->num_entries();
      if (counted % kBatchSize != 0) {
        record_failure("num_entries saw half a batch: " +
                       std::to_string(counted));
        return;
      }
    }
  };
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) readers.emplace_back(reader_fn);
  writer.join();
  for (auto& t : readers) t.join();
  for (const std::string& f : failures) ADD_FAILURE() << f;
  EXPECT_EQ(store->num_entries(), num_batches * kBatchSize);
  EXPECT_EQ(store->committed_epoch(), num_batches);
}

TEST(ShardedStoreConcurrency, ReadersAndEngineStayConsistentUnderIngest) {
  ScratchDir dir;
  StoreOptions opts = SmallStore(dir, 4);
  opts.forest.memtable_series = 60;  // frequent flushes
  opts.forest.max_runs = 2;          // frequent compactions
  std::unique_ptr<ShardedStore> store;
  ASSERT_OK(ShardedStore::Open(dir.File("store"), opts, &store));

  const size_t kTotal = 800;
  const std::vector<Series> data = MakeSeries(kTotal, 4242);
  const std::vector<Series> queries = MakeSeries(12, 4343);

  std::atomic<bool> done{false};
  std::vector<std::string> failures;
  std::mutex failures_mu;
  auto record_failure = [&](const std::string& msg) {
    std::lock_guard<std::mutex> lock(failures_mu);
    failures.push_back(msg);
  };

  // Writer: batches split across shards and inserted concurrently; every
  // few waves force a store-wide flush or two-level parallel compaction.
  std::thread writer([&]() {
    const size_t kBatch = 40;
    for (size_t base = 0; base < kTotal; base += kBatch) {
      std::vector<Series> batch(
          data.begin() + base,
          data.begin() + std::min(kTotal, base + kBatch));
      Status st = store->InsertBatch(batch);
      if (!st.ok()) {
        record_failure("InsertBatch: " + st.ToString());
        break;
      }
      if ((base / kBatch) % 5 == 1) st = store->Flush();
      if (st.ok() && (base / kBatch) % 7 == 2) st = store->CompactAll();
      if (!st.ok()) {
        record_failure("Flush/CompactAll: " + st.ToString());
        break;
      }
    }
    done.store(true);
  });

  // Readers: store snapshots must be internally consistent at all times —
  // sorted neighbor lists, approx upper-bounding exact, and the engine's
  // parallel cross-shard fan-out agreeing bit-for-bit with the serial
  // store search on the same snapshot.
  std::atomic<int> reader_checks{0};
  auto reader_fn = [&](size_t seed) {
    ThreadPool pool(2);
    QueryEngine engine(&pool);
    size_t iter = seed;
    while (!done.load()) {
      const ShardedStore::Snapshot snap = store->GetSnapshot();
      const uint64_t visible = snap.num_entries();
      if (visible == 0) continue;
      if (visible > kTotal) {
        record_failure("snapshot exposes more entries than inserted");
        return;
      }
      const Series& query = queries[iter++ % queries.size()];
      const size_t k = 1 + iter % 3;

      SearchResult exact;
      Status st = store->ExactSearch(snap, query.data(), &exact, k);
      if (!st.ok()) {
        record_failure("ExactSearch: " + st.ToString());
        return;
      }
      if (exact.neighbors.size() !=
          std::min<uint64_t>(k, visible)) {
        record_failure("unexpected exact neighbor count");
        return;
      }
      for (size_t j = 1; j < exact.neighbors.size(); ++j) {
        if (exact.neighbors[j].distance + 1e-12 <
            exact.neighbors[j - 1].distance) {
          record_failure("exact neighbors not ascending");
          return;
        }
      }
      SearchResult approx;
      st = store->ApproxSearch(snap, query.data(), 1, &approx, k);
      if (!st.ok()) {
        record_failure("ApproxSearch: " + st.ToString());
        return;
      }
      if (approx.distance + 1e-6 < exact.distance) {
        record_failure("approx beat exact on the same snapshot");
        return;
      }
      std::vector<SearchResult> batch;
      QuerySpec spec;
      spec.mode = QuerySpec::Mode::kExact;
      spec.k = k;
      st = engine.ExecuteBatch(*store, snap, {query}, spec, &batch);
      if (!st.ok()) {
        record_failure("ExecuteBatch: " + st.ToString());
        return;
      }
      if (batch[0].neighbors.size() != exact.neighbors.size()) {
        record_failure("engine/serial neighbor count mismatch");
        return;
      }
      for (size_t j = 0; j < exact.neighbors.size(); ++j) {
        if (batch[0].neighbors[j].offset != exact.neighbors[j].offset ||
            batch[0].neighbors[j].distance != exact.neighbors[j].distance) {
          record_failure("engine/serial neighbor mismatch");
          return;
        }
      }
      reader_checks.fetch_add(1, std::memory_order_relaxed);
    }
  };
  std::vector<std::thread> readers;
  for (size_t r = 0; r < 2; ++r) readers.emplace_back(reader_fn, r + 1);

  writer.join();
  for (auto& t : readers) t.join();
  for (const std::string& f : failures) ADD_FAILURE() << f;
  EXPECT_GT(reader_checks.load(), 0);

  // Quiescent state: everything visible and exact against the oracle.
  EXPECT_EQ(store->num_entries(), kTotal);
  for (size_t qi = 0; qi < 4; ++qi) {
    SearchResult final_result;
    ASSERT_OK(store->ExactSearch(queries[qi].data(), &final_result, 3));
    const std::vector<double> oracle =
        OracleDistances(data, kTotal, queries[qi], 3);
    ASSERT_EQ(final_result.neighbors.size(), oracle.size());
    for (size_t j = 0; j < oracle.size(); ++j) {
      EXPECT_NEAR(final_result.neighbors[j].distance, oracle[j], 1e-4);
    }
  }
}

}  // namespace
}  // namespace coconut
