#include "src/summary/invsax.h"

#include <vector>

#include "src/summary/paa.h"
#include "src/summary/sax.h"

namespace coconut {

ZKey InvSaxFromSax(const uint8_t* sax, const SummaryOptions& opts) {
  ZKey key;
  const unsigned b = opts.cardinality_bits;
  const size_t w = opts.segments;
  size_t pos = 0;  // bit position from the MSB of the key
  for (unsigned level = 0; level < b; ++level) {
    const unsigned sym_bit = b - 1 - level;  // most significant level first
    for (size_t j = 0; j < w; ++j, ++pos) {
      if ((sax[j] >> sym_bit) & 1u) key.SetBit(pos);
    }
  }
  return key;
}

void SaxFromInvSax(const ZKey& key, const SummaryOptions& opts, uint8_t* out) {
  const unsigned b = opts.cardinality_bits;
  const size_t w = opts.segments;
  for (size_t j = 0; j < w; ++j) out[j] = 0;
  size_t pos = 0;
  for (unsigned level = 0; level < b; ++level) {
    const unsigned sym_bit = b - 1 - level;
    for (size_t j = 0; j < w; ++j, ++pos) {
      if (key.GetBit(pos)) {
        out[j] = static_cast<uint8_t>(out[j] | (1u << sym_bit));
      }
    }
  }
}

ZKey InvSaxFromSeries(const Value* series, const SummaryOptions& opts) {
  std::vector<uint8_t> sax(opts.segments);
  SaxFromSeries(series, opts, sax.data());
  return InvSaxFromSax(sax.data(), opts);
}

}  // namespace coconut
