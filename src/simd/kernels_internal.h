// Internal seam between the dispatcher (kernels.cc) and the per-backend
// translation units. Each backend exposes exactly one factory that returns
// its table when the backend was compiled in, or null otherwise; the
// dispatcher layers runtime CPU-feature checks on top. New backends plug in
// here (see src/simd/README.md).
#ifndef COCONUT_SIMD_KERNELS_INTERNAL_H_
#define COCONUT_SIMD_KERNELS_INTERNAL_H_

#include "src/simd/kernels.h"

namespace coconut {
namespace simd {

/// Squared distance from point q to the interval [lo, hi] (0 if inside).
/// The scalar reference for the MINDIST kernels and their vector tails.
inline double DistToRangeSq(double q, double lo, double hi) {
  if (q < lo) {
    const double d = lo - q;
    return d * d;
  }
  if (q > hi) {
    const double d = q - hi;
    return d * d;
  }
  return 0.0;
}

/// Null unless built with AVX2+FMA codegen (x86-64 only). Callers must
/// still verify the CPU supports AVX2 and FMA before executing it.
const KernelTable* Avx2KernelsImpl();

/// Null unless built for aarch64 (where NEON is architectural baseline).
const KernelTable* NeonKernelsImpl();

}  // namespace simd
}  // namespace coconut

#endif  // COCONUT_SIMD_KERNELS_INTERNAL_H_
