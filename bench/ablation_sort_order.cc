// Ablation (paper §3, Figure 2 vs Figure 4): WHY bit-interleaving matters.
// Sorting by the plain (lexicographic) SAX word orders series by their first
// segment only; sorting by invSAX places them on a z-order curve. This
// harness sorts the same dataset both ways and measures, for a set of
// queries, the best true distance found within a fixed-size window around
// the query's would-be position in each sorted order — i.e., the quality an
// approximate search over contiguous sorted leaves can deliver.
#include <algorithm>
#include <cmath>
#include <limits>

#include "bench/bench_util.h"
#include "src/series/distance.h"
#include "src/summary/invsax.h"
#include "src/summary/paa.h"
#include "src/summary/sax.h"

namespace coconut {
namespace bench {
namespace {

void Run() {
  Banner("Ablation: sort order",
         "z-order (invSAX) vs lexicographic SAX neighborhood quality");
  const size_t count = 20000 * Scale();
  const size_t length = 256;
  const size_t queries = 100;
  const size_t window = 200;  // entries examined around the target position

  SummaryOptions sum;
  sum.series_length = length;
  sum.segments = 16;
  sum.cardinality_bits = 8;

  auto gen = MakeGenerator(DatasetKind::kRandomWalk, length, 51);
  std::vector<Series> data;
  data.reserve(count);
  std::vector<SaxWord> words(count, SaxWord(sum.segments));
  std::vector<ZKey> zkeys(count);
  for (size_t i = 0; i < count; ++i) {
    data.push_back(gen->NextSeries());
    SaxFromSeries(data[i].data(), sum, words[i].data());
    zkeys[i] = InvSaxFromSax(words[i].data(), sum);
  }

  // Two sorted orders over the same data.
  std::vector<uint32_t> by_invsax(count), by_lex(count);
  for (uint32_t i = 0; i < count; ++i) by_invsax[i] = by_lex[i] = i;
  std::sort(by_invsax.begin(), by_invsax.end(),
            [&](uint32_t a, uint32_t b) { return zkeys[a] < zkeys[b]; });
  std::sort(by_lex.begin(), by_lex.end(), [&](uint32_t a, uint32_t b) {
    return words[a] < words[b];  // lexicographic segment-by-segment
  });

  auto qs = MakeQueries(DatasetKind::kRandomWalk, queries, length, 5100);
  double sum_z = 0.0, sum_lex = 0.0, sum_exact = 0.0;
  size_t z_wins = 0;
  for (const Series& q : qs) {
    SaxWord qw(sum.segments);
    SaxFromSeries(q.data(), sum, qw.data());
    const ZKey qk = InvSaxFromSax(qw.data(), sum);

    auto window_best = [&](const std::vector<uint32_t>& order,
                           auto&& less_than_query) {
      // Position where the query would insert.
      size_t lo = 0, hi = count;
      while (lo < hi) {
        const size_t mid = (lo + hi) / 2;
        if (less_than_query(order[mid])) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      const size_t begin = lo > window / 2 ? lo - window / 2 : 0;
      const size_t end = std::min(count, begin + window);
      double best = std::numeric_limits<double>::infinity();
      for (size_t i = begin; i < end; ++i) {
        best = std::min(best, SquaredEuclidean(data[order[i]].data(),
                                               q.data(), length));
      }
      return std::sqrt(best);
    };

    const double dz = window_best(
        by_invsax, [&](uint32_t i) { return zkeys[i] < qk; });
    const double dlex =
        window_best(by_lex, [&](uint32_t i) { return words[i] < qw; });
    double exact = std::numeric_limits<double>::infinity();
    for (const Series& x : data) {
      exact =
          std::min(exact, SquaredEuclidean(x.data(), q.data(), length));
    }
    exact = std::sqrt(exact);
    sum_z += dz;
    sum_lex += dlex;
    sum_exact += exact;
    if (dz <= dlex) ++z_wins;
  }

  PrintHeader({"order", "avg_window_NN", "vs_exact_ratio"});
  PrintRow({"invSAX(z-order)", FmtDouble(sum_z / queries, 3),
            FmtDouble(sum_z / sum_exact, 3)});
  PrintRow({"lexicographic", FmtDouble(sum_lex / queries, 3),
            FmtDouble(sum_lex / sum_exact, 3)});
  PrintRow({"exact NN", FmtDouble(sum_exact / queries, 3), "1.000"});
  std::printf(
      "\nz-order window beat or matched lexicographic on %.0f%% of queries.\n"
      "Expectation (paper §3): sorting by unmodified SAX words groups series\n"
      "by their first segment only, so a fixed window around the query's\n"
      "position contains far worse neighbors than the z-order window.\n",
      100.0 * z_wins / queries);
}

}  // namespace
}  // namespace bench
}  // namespace coconut

int main() {
  coconut::bench::Run();
  return 0;
}
