#include "src/series/znorm.h"

#include <cmath>

namespace coconut {

double Mean(const Value* values, size_t n) {
  if (n == 0) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) sum += values[i];
  return sum / static_cast<double>(n);
}

double StdDev(const Value* values, size_t n) {
  if (n == 0) return 0.0;
  const double mean = Mean(values, n);
  double sq = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = values[i] - mean;
    sq += d * d;
  }
  return std::sqrt(sq / static_cast<double>(n));
}

void ZNormalize(Value* values, size_t n) {
  constexpr double kEpsilon = 1e-9;
  const double mean = Mean(values, n);
  const double sd = StdDev(values, n);
  if (sd < kEpsilon) {
    for (size_t i = 0; i < n; ++i) values[i] = 0.0f;
    return;
  }
  const double inv = 1.0 / sd;
  for (size_t i = 0; i < n; ++i) {
    values[i] = static_cast<Value>((values[i] - mean) * inv);
  }
}

}  // namespace coconut
