// Instrumented POSIX file wrappers. All index and dataset I/O in the library
// goes through these classes so that the IoStats counters reflect every block
// access (see io_stats.h).
#ifndef COCONUT_IO_FILE_H_
#define COCONUT_IO_FILE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "src/common/status.h"

namespace coconut {

/// Read-only file with positional reads. Reads are classified as sequential
/// when they start exactly at the end of the previous read on this handle.
/// Read is safe to call from multiple threads concurrently (pread-based; the
/// sequentiality tracker is atomic).
class RandomAccessFile {
 public:
  ~RandomAccessFile();

  RandomAccessFile(const RandomAccessFile&) = delete;
  RandomAccessFile& operator=(const RandomAccessFile&) = delete;

  /// Opens `path` for reading.
  static Status Open(const std::string& path,
                     std::unique_ptr<RandomAccessFile>* out);

  /// Reads exactly `n` bytes at `offset` into `buf`. Fails with IOError on
  /// short reads (EOF before n bytes).
  Status Read(uint64_t offset, size_t n, void* buf);

  uint64_t size() const { return size_; }
  const std::string& path() const { return path_; }

 private:
  RandomAccessFile(std::string path, int fd, uint64_t size)
      : path_(std::move(path)), fd_(fd), size_(size) {}

  std::string path_;
  int fd_;
  uint64_t size_;
  std::atomic<uint64_t> next_sequential_offset_{0};
};

/// Append-oriented writable file with optional positional overwrite (used for
/// fixing up headers after bulk-loading). Appends are sequential; positional
/// writes elsewhere count as random.
class WritableFile {
 public:
  ~WritableFile();

  WritableFile(const WritableFile&) = delete;
  WritableFile& operator=(const WritableFile&) = delete;

  /// Creates (truncating) `path` for writing.
  static Status Create(const std::string& path,
                       std::unique_ptr<WritableFile>* out);

  /// Opens an existing (or new) `path` positioned for appending at its
  /// current end.
  static Status OpenForAppend(const std::string& path,
                              std::unique_ptr<WritableFile>* out);

  /// Appends `n` bytes at the current end of file.
  Status Append(const void* data, size_t n);

  /// Writes `n` bytes at an explicit `offset` (counts as random unless the
  /// offset happens to be the current append position).
  Status WriteAt(uint64_t offset, const void* data, size_t n);

  /// Durability barrier. By default flushes to the OS only (no fsync); with
  /// the opt-in (COCONUT_SYNC=1 / SetSyncOnCommit) it issues a real
  /// fdatasync. See src/store/README.md, "Durability scope".
  Status Sync();

  Status Close();

  uint64_t size() const { return append_offset_; }
  const std::string& path() const { return path_; }

 private:
  WritableFile(std::string path, int fd)
      : path_(std::move(path)), fd_(fd) {}

  std::string path_;
  int fd_;
  uint64_t append_offset_ = 0;
};

}  // namespace coconut

#endif  // COCONUT_IO_FILE_H_
