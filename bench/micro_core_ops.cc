// Microbenchmarks (google-benchmark) for the core operations: PAA, SAX,
// invSAX interleaving, key comparison, MINDIST, external-sort throughput,
// and the dispatched SIMD kernels against their scalar references. These
// are the per-record costs that the construction pipeline (Fig 8) and the
// SIMS pruning pass (Algorithm 5) multiply by N.
#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/common/env.h"
#include "src/common/random.h"
#include "src/common/zkey.h"
#include "src/exec/thread_pool.h"
#include "src/series/generator.h"
#include "src/simd/kernels.h"
#include "src/sort/external_sort.h"
#include "src/sort/record_sort.h"
#include "src/summary/breakpoints.h"
#include "src/summary/invsax.h"
#include "src/summary/mindist.h"
#include "src/summary/paa.h"
#include "src/summary/sax.h"

namespace coconut {
namespace {

SummaryOptions Sum() {
  SummaryOptions s;
  s.series_length = 256;
  s.segments = 16;
  s.cardinality_bits = 8;
  return s;
}

// --- Dispatched-vs-scalar kernel benchmarks. Each pair runs the portable
// reference and the backend Kernels() resolved to (reported via the
// "kernel" label); lengths cover the vector widths and the
// non-multiple-of-width tails. ---

const simd::KernelTable& KernelsFor(bool dispatched) {
  return dispatched ? simd::Kernels() : simd::ScalarKernels();
}

void KernelArgs(benchmark::internal::Benchmark* b) {
  // 64/256/1024 plus 100 and 257: remainder tails for the 4/8/16 lanes.
  b->ArgsProduct({{64, 100, 256, 257, 1024}, {0, 1}})
      ->ArgNames({"n", "dispatched"});
}

void BM_KernelSquaredEuclidean(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const simd::KernelTable& k = KernelsFor(state.range(1) != 0);
  RandomWalkGenerator gen(n, 11);
  Series a = gen.NextSeries(), b = gen.NextSeries();
  for (auto _ : state) {
    const double d = k.squared_euclidean(a.data(), b.data(), n);
    benchmark::DoNotOptimize(d);
  }
  state.SetLabel(std::string("kernel=") + k.name);
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_KernelSquaredEuclidean)->Apply(KernelArgs);

void BM_KernelSquaredEuclideanEarlyAbandon(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const simd::KernelTable& k = KernelsFor(state.range(1) != 0);
  RandomWalkGenerator gen(n, 12);
  Series a = gen.NextSeries(), b = gen.NextSeries();
  // A bound at half the full distance abandons mid-scan: the realistic
  // leaf-scan shape once a k-NN heap has tightened.
  const double bound =
      0.5 * simd::ScalarKernels().squared_euclidean(a.data(), b.data(), n);
  for (auto _ : state) {
    const double d = k.squared_euclidean_ea(a.data(), b.data(), n, bound);
    benchmark::DoNotOptimize(d);
  }
  state.SetLabel(std::string("kernel=") + k.name);
}
BENCHMARK(BM_KernelSquaredEuclideanEarlyAbandon)->Apply(KernelArgs);

void BM_KernelMindistSaxBatch(benchmark::State& state) {
  // The SIMS pruning pass: lower bounds over a chunk of contiguous
  // 16-byte SAX records.
  const size_t count = static_cast<size_t>(state.range(0));
  const simd::KernelTable& k = KernelsFor(state.range(1) != 0);
  const SummaryOptions opts = Sum();
  const size_t w = opts.segments;
  Rng rng(13);
  RandomWalkGenerator gen(opts.series_length, 13);
  Series q = gen.NextSeries();
  std::vector<double> paa(w);
  PaaTransform(q.data(), opts.series_length, w, paa.data());
  std::vector<uint8_t> sax(count * w);
  for (auto& byte : sax) byte = static_cast<uint8_t>(rng.UniformInt(256));
  std::vector<double> out(count);
  const double* edges = SaxBreakpoints::Get().EdgeTable(opts.cardinality_bits);
  for (auto _ : state) {
    k.mindist_paa_sax_batch(paa.data(), sax.data(), w, count, edges, w,
                            opts.segment_size(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetLabel(std::string("kernel=") + k.name);
  state.SetItemsProcessed(state.iterations() * count);
}
BENCHMARK(BM_KernelMindistSaxBatch)
    ->ArgsProduct({{4096}, {0, 1}})
    ->ArgNames({"records", "dispatched"});

void BM_KernelPaaTransform(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const simd::KernelTable& k = KernelsFor(state.range(1) != 0);
  RandomWalkGenerator gen(n, 14);
  Series s = gen.NextSeries();
  std::vector<double> paa(16);
  for (auto _ : state) {
    k.paa_transform(s.data(), n, 16, paa.data());
    benchmark::DoNotOptimize(paa.data());
  }
  state.SetLabel(std::string("kernel=") + k.name);
}
BENCHMARK(BM_KernelPaaTransform)
    ->ArgsProduct({{64, 256, 1024}, {0, 1}})
    ->ArgNames({"n", "dispatched"});

void BM_KernelZNormalize(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const simd::KernelTable& k = KernelsFor(state.range(1) != 0);
  Rng rng(15);
  std::vector<float> base(n);
  for (auto& v : base) v = static_cast<float>(rng.Gaussian());
  std::vector<float> work(n);
  for (auto _ : state) {
    std::memcpy(work.data(), base.data(), n * sizeof(float));
    k.znormalize(work.data(), n);
    benchmark::DoNotOptimize(work.data());
  }
  state.SetLabel(std::string("kernel=") + k.name);
}
BENCHMARK(BM_KernelZNormalize)
    ->ArgsProduct({{64, 256, 257, 1024}, {0, 1}})
    ->ArgNames({"n", "dispatched"});

void BM_PaaTransform(benchmark::State& state) {
  RandomWalkGenerator gen(256, 1);
  Series s = gen.NextSeries();
  std::vector<double> paa(16);
  for (auto _ : state) {
    PaaTransform(s.data(), 256, 16, paa.data());
    benchmark::DoNotOptimize(paa.data());
  }
}
BENCHMARK(BM_PaaTransform);

void BM_SaxFromSeries(benchmark::State& state) {
  RandomWalkGenerator gen(256, 2);
  Series s = gen.NextSeries();
  std::vector<uint8_t> sax(16);
  const SummaryOptions opts = Sum();
  for (auto _ : state) {
    SaxFromSeries(s.data(), opts, sax.data());
    benchmark::DoNotOptimize(sax.data());
  }
}
BENCHMARK(BM_SaxFromSeries);

void BM_InvSaxInterleave(benchmark::State& state) {
  Rng rng(3);
  std::vector<uint8_t> sax(16);
  for (auto& b : sax) b = static_cast<uint8_t>(rng.UniformInt(256));
  const SummaryOptions opts = Sum();
  for (auto _ : state) {
    ZKey k = InvSaxFromSax(sax.data(), opts);
    benchmark::DoNotOptimize(k);
  }
}
BENCHMARK(BM_InvSaxInterleave);

void BM_InvSaxRoundTrip(benchmark::State& state) {
  Rng rng(4);
  std::vector<uint8_t> sax(16), back(16);
  for (auto& b : sax) b = static_cast<uint8_t>(rng.UniformInt(256));
  const SummaryOptions opts = Sum();
  for (auto _ : state) {
    const ZKey k = InvSaxFromSax(sax.data(), opts);
    SaxFromInvSax(k, opts, back.data());
    benchmark::DoNotOptimize(back.data());
  }
}
BENCHMARK(BM_InvSaxRoundTrip);

void BM_ZKeyCompare(benchmark::State& state) {
  Rng rng(5);
  std::vector<ZKey> keys(1024);
  const SummaryOptions opts = Sum();
  std::vector<uint8_t> sax(16);
  for (auto& k : keys) {
    for (auto& b : sax) b = static_cast<uint8_t>(rng.UniformInt(256));
    k = InvSaxFromSax(sax.data(), opts);
  }
  size_t i = 0;
  for (auto _ : state) {
    const bool less = keys[i % 1024] < keys[(i + 1) % 1024];
    benchmark::DoNotOptimize(less);
    ++i;
  }
}
BENCHMARK(BM_ZKeyCompare);

void BM_MindistSax(benchmark::State& state) {
  RandomWalkGenerator gen(256, 6);
  Series q = gen.NextSeries(), x = gen.NextSeries();
  const SummaryOptions opts = Sum();
  std::vector<double> paa(16);
  std::vector<uint8_t> sax(16);
  PaaTransform(q.data(), 256, 16, paa.data());
  SaxFromSeries(x.data(), opts, sax.data());
  for (auto _ : state) {
    const double d = MindistSqPaaToSax(paa.data(), sax.data(), opts);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_MindistSax);

void BM_ExternalSort(benchmark::State& state) {
  // End-to-end sort of `n` 40-byte records (the non-materialized entry
  // size): ingest via AddBatch, spill, merge, drain the stream. Rows sweep
  // the resolved thread count and radix-vs-comparison run generation.
  const size_t n = static_cast<size_t>(state.range(0));
  const unsigned threads = static_cast<unsigned>(state.range(1));
  const bool radix = state.range(2) != 0;
  std::string tmp;
  if (!MakeTempDir("coconut-microsort-", &tmp).ok()) {
    state.SkipWithError("tmp dir");
    return;
  }
  Rng rng(7);
  std::vector<uint8_t> records(n * 40);
  for (auto& b : records) b = static_cast<uint8_t>(rng.UniformInt(256));
  for (auto _ : state) {
    ExternalSortOptions opts;
    opts.record_bytes = 40;
    opts.key_bytes = 32;
    opts.memory_budget_bytes = 1 << 20;  // force spills beyond ~13K records
    opts.tmp_dir = tmp;
    opts.num_threads = threads;
    opts.use_radix = radix;
    ExternalSorter sorter(opts);
    if (!sorter.AddBatch(records.data(), n).ok()) {
      state.SkipWithError("add");
      return;
    }
    std::unique_ptr<SortedRecordStream> stream;
    if (!sorter.Finish(&stream).ok()) {
      state.SkipWithError("finish");
      return;
    }
    uint8_t rec[40];
    Status st;
    uint64_t count = 0;
    while (stream->Next(rec, &st)) ++count;
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * n);
  (void)RemoveAll(tmp);
}
BENCHMARK(BM_ExternalSort)
    ->ArgsProduct({{10000, 50000}, {1, 4}, {0, 1}})
    ->ArgNames({"n", "threads", "radix"});

void BM_RunGenerationSort(benchmark::State& state) {
  // Run generation in isolation: the stable (key, arrival) sort of one
  // in-memory buffer of 40-byte records. The acceptance bar is the radix
  // rows beating the serial comparison row >= 2x at 4 threads on multicore
  // hardware (flat on the 1-core dev container).
  const size_t n = static_cast<size_t>(state.range(0));
  const unsigned threads = static_cast<unsigned>(state.range(1));
  const bool radix = state.range(2) != 0;
  Rng rng(8);
  std::vector<uint8_t> records(n * 40);
  for (auto& b : records) b = static_cast<uint8_t>(rng.UniformInt(256));
  // A pool of exactly `threads` (not the machine-wide shared pool), so the
  // row measures the labeled parallelism.
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
  RecordSortSpec spec;
  spec.base = records.data();
  spec.record_bytes = 40;
  spec.key_bytes = 32;
  spec.count = n;
  spec.use_radix = radix;
  spec.pool = pool.get();
  std::vector<uint32_t> order;
  for (auto _ : state) {
    StableSortRecords(spec, &order);
    benchmark::DoNotOptimize(order.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RunGenerationSort)
    ->ArgsProduct({{100000}, {1, 4}, {0, 1}})
    ->ArgNames({"n", "threads", "radix"});

}  // namespace
}  // namespace coconut

BENCHMARK_MAIN();
