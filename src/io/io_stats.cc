#include "src/io/io_stats.h"

#include <cstdio>

namespace coconut {

IoStats& IoStats::Instance() {
  static IoStats instance;
  return instance;
}

std::string IoSnapshot::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "reads=%llu (rand=%llu) writes=%llu (rand=%llu) "
                "MB_read=%.1f MB_written=%.1f",
                static_cast<unsigned long long>(read_ops),
                static_cast<unsigned long long>(random_read_ops),
                static_cast<unsigned long long>(write_ops),
                static_cast<unsigned long long>(random_write_ops),
                bytes_read / 1048576.0, bytes_written / 1048576.0);
  return std::string(buf);
}

}  // namespace coconut
