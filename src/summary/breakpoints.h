// SAX breakpoints: the value axis is discretized into regions whose
// boundaries are standard-normal quantiles, so that z-normalized values are
// approximately uniformly distributed over regions (paper §2, Figure 1).
//
// Breakpoints nest across cardinalities: the boundaries at cardinality 2^b
// are a subset of those at 2^(b+1), which is what makes iSAX's
// multi-resolution prefix semantics work (the b-bit symbol of a value is the
// top b bits of its (b+1)-bit symbol).
#ifndef COCONUT_SUMMARY_BREAKPOINTS_H_
#define COCONUT_SUMMARY_BREAKPOINTS_H_

#include <cstdint>
#include <vector>

namespace coconut {

/// Maximum symbol width supported (256 regions), the iSAX default.
inline constexpr unsigned kMaxCardinalityBits = 8;

/// Inverse standard-normal CDF (Acklam's rational approximation, relative
/// error < 1.15e-9 over (0,1)).
double InverseNormalCdf(double p);

/// Precomputed breakpoint tables for every cardinality 2^1 .. 2^kMax.
class SaxBreakpoints {
 public:
  /// Returns the process-wide table (built once, immutable afterwards).
  static const SaxBreakpoints& Get();

  /// Breakpoints for cardinality 2^bits: a sorted vector of 2^bits - 1
  /// values; region `s` covers [bp[s-1], bp[s]) with bp[-1] = -inf and
  /// bp[2^bits - 1] = +inf.
  const std::vector<double>& ForBits(unsigned bits) const {
    return tables_[bits];
  }

  /// Lower edge of region `symbol` at cardinality 2^bits (-HUGE_VAL for the
  /// lowest region).
  double RegionLower(unsigned bits, uint32_t symbol) const;

  /// Upper edge of region `symbol` at cardinality 2^bits (+HUGE_VAL for the
  /// highest region).
  double RegionUpper(unsigned bits, uint32_t symbol) const;

  /// Symbol (0-based, 0 = lowest region) of `value` at cardinality 2^bits.
  uint32_t Symbol(unsigned bits, double value) const;

  /// Flat region-edge table for cardinality 2^bits: 2^bits + 1 entries
  /// where region `s` spans [EdgeTable()[s], EdgeTable()[s + 1]], i.e.
  /// EdgeTable()[s] == RegionLower(bits, s) and EdgeTable()[s + 1] ==
  /// RegionUpper(bits, s); entry 0 is -HUGE_VAL and the last entry
  /// +HUGE_VAL. Feeds the table-gathered SIMD MINDIST kernels, which index
  /// it directly with the SAX byte.
  const double* EdgeTable(unsigned bits) const { return edges_[bits].data(); }

 private:
  SaxBreakpoints();
  // tables_[b] holds the breakpoints for cardinality 2^b; tables_[0] empty.
  std::vector<std::vector<double>> tables_;
  // edges_[b] holds the 2^b + 1 region edges (breakpoints plus -+inf ends).
  std::vector<std::vector<double>> edges_;
};

}  // namespace coconut

#endif  // COCONUT_SUMMARY_BREAKPOINTS_H_
