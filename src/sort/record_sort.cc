#include "src/sort/record_sort.h"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "src/exec/thread_pool.h"
#include "src/sort/loser_tree.h"

namespace coconut {

namespace {

/// Below this bucket size the counting-sort bookkeeping costs more than a
/// comparison sort of the remaining key tail.
constexpr size_t kRadixFallbackCutoff = 64;

/// Inputs smaller than this sort serially even when a pool is available:
/// the parallel counting sort's extra passes only pay off at scale.
constexpr size_t kParallelMinRecords = size_t{1} << 13;

struct Ctx {
  const uint8_t* base;
  size_t record_bytes;
  size_t key_bytes;

  const uint8_t* key(uint32_t idx) const {
    return base + size_t{idx} * record_bytes;
  }
};

/// Comparison sort of idx[0, n) on key bytes [byte_pos, key_bytes), ties by
/// index. Because every index carries its full arrival rank, this is stable
/// regardless of how the range was produced.
void ComparisonSort(const Ctx& c, uint32_t* idx, size_t n, size_t byte_pos) {
  const size_t tail = c.key_bytes - byte_pos;
  std::sort(idx, idx + n, [&c, byte_pos, tail](uint32_t a, uint32_t b) {
    const int cmp =
        std::memcmp(c.key(a) + byte_pos, c.key(b) + byte_pos, tail);
    if (cmp != 0) return cmp < 0;
    return a < b;
  });
}

/// Serial MSD radix on idx[0, n): stable counting sort on the byte at
/// `byte_pos` (scatter through tmp), then recursion per bucket. Buckets
/// smaller than the cutoff and exhausted keys fall back to ComparisonSort;
/// a fully-consumed key leaves the range untouched, which is already
/// ascending-index order because every pass above was stable.
void RadixSort(const Ctx& c, uint32_t* idx, uint32_t* tmp, size_t n,
               size_t byte_pos) {
  if (byte_pos >= c.key_bytes) return;  // equal keys: stable order stands
  if (n <= kRadixFallbackCutoff) {
    ComparisonSort(c, idx, n, byte_pos);
    return;
  }
  size_t count[256] = {0};
  for (size_t i = 0; i < n; ++i) ++count[c.key(idx[i])[byte_pos]];
  size_t offset[257];
  offset[0] = 0;
  for (size_t b = 0; b < 256; ++b) offset[b + 1] = offset[b] + count[b];
  size_t cursor[256];
  std::memcpy(cursor, offset, sizeof(cursor));
  for (size_t i = 0; i < n; ++i) {
    tmp[cursor[c.key(idx[i])[byte_pos]]++] = idx[i];
  }
  std::memcpy(idx, tmp, n * sizeof(uint32_t));
  for (size_t b = 0; b < 256; ++b) {
    const size_t len = offset[b + 1] - offset[b];
    if (len > 1) {
      RadixSort(c, idx + offset[b], tmp + offset[b], len, byte_pos + 1);
    }
  }
}

/// Parallel top radix level: per-chunk histograms of the leading key byte,
/// serial prefix sums giving every (chunk, bucket) its scatter slice — which
/// preserves arrival order, i.e. stability — then a parallel scatter and
/// parallel recursion over the 256 disjoint buckets.
void ParallelRadixSort(const Ctx& c, ThreadPool* pool,
                       std::vector<uint32_t>* idx, std::vector<uint32_t>* tmp) {
  const size_t n = idx->size();
  const size_t chunk = std::max<size_t>(
      4096, (n + pool->parallelism() * 4 - 1) / (pool->parallelism() * 4));
  const size_t chunks = (n + chunk - 1) / chunk;
  std::vector<size_t> hist(chunks * 256, 0);
  uint32_t* in = idx->data();
  pool->ParallelFor(0, chunks, 1, [&](uint64_t lo, uint64_t hi) {
    for (uint64_t ch = lo; ch < hi; ++ch) {
      size_t* h = hist.data() + ch * 256;
      const size_t end = std::min(n, (ch + 1) * chunk);
      for (size_t i = ch * chunk; i < end; ++i) ++h[c.key(in[i])[0]];
    }
  });
  // offset[b] = start of bucket b; cursors[ch][b] = where chunk ch scatters
  // its bucket-b records (earlier chunks first, so the scatter is stable).
  size_t offset[257];
  offset[0] = 0;
  std::vector<size_t> cursors(chunks * 256);
  for (size_t b = 0; b < 256; ++b) {
    size_t pos = offset[b];
    for (size_t ch = 0; ch < chunks; ++ch) {
      cursors[ch * 256 + b] = pos;
      pos += hist[ch * 256 + b];
    }
    offset[b + 1] = pos;
  }
  uint32_t* out = tmp->data();
  pool->ParallelFor(0, chunks, 1, [&](uint64_t lo, uint64_t hi) {
    for (uint64_t ch = lo; ch < hi; ++ch) {
      size_t* cur = cursors.data() + ch * 256;
      const size_t end = std::min(n, (ch + 1) * chunk);
      for (size_t i = ch * chunk; i < end; ++i) {
        out[cur[c.key(in[i])[0]]++] = in[i];
      }
    }
  });
  idx->swap(*tmp);
  // Grain 1 over the buckets: sizes are skewed, so let the shared cursor
  // balance them across threads.
  pool->ParallelFor(0, 256, 1, [&](uint64_t lo, uint64_t hi) {
    for (uint64_t b = lo; b < hi; ++b) {
      const size_t len = offset[b + 1] - offset[b];
      if (len > 1) {
        RadixSort(c, idx->data() + offset[b], tmp->data() + offset[b], len,
                  1);
      }
    }
  });
}

/// Parallel comparison sort: contiguous chunks sorted concurrently, then a
/// stable in-memory loser-tree merge. Ties merge by chunk order == arrival
/// order, so the result equals the serial stable sort.
void ParallelComparisonSort(const Ctx& c, ThreadPool* pool,
                            std::vector<uint32_t>* idx,
                            std::vector<uint32_t>* tmp) {
  const size_t n = idx->size();
  const size_t parts = std::min<size_t>(pool->parallelism(), (n + 1) / 2);
  const size_t chunk = (n + parts - 1) / parts;
  pool->ParallelFor(0, parts, 1, [&](uint64_t lo, uint64_t hi) {
    for (uint64_t p = lo; p < hi; ++p) {
      const size_t begin = p * chunk;
      const size_t end = std::min(n, begin + chunk);
      ComparisonSort(c, idx->data() + begin, end - begin, 0);
    }
  });
  struct Cursor {
    size_t pos, end;
  };
  std::vector<Cursor> cur(parts);
  for (size_t p = 0; p < parts; ++p) {
    cur[p] = {p * chunk, std::min(n, (p + 1) * chunk)};
  }
  const uint32_t* in = idx->data();
  auto less = [&](size_t a, size_t b) {
    if (cur[a].pos >= cur[a].end) return false;
    if (cur[b].pos >= cur[b].end) return true;
    const uint32_t ia = in[cur[a].pos], ib = in[cur[b].pos];
    const int cmp = std::memcmp(c.key(ia), c.key(ib), c.key_bytes);
    if (cmp != 0) return cmp < 0;
    return ia < ib;
  };
  LoserTree<decltype(less)> lt(parts, less);
  for (size_t i = 0; i < n; ++i) {
    const size_t w = lt.winner();
    (*tmp)[i] = in[cur[w].pos++];
    lt.Replay();
  }
  idx->swap(*tmp);
}

}  // namespace

void StableSortRecords(const RecordSortSpec& spec,
                       std::vector<uint32_t>* order) {
  order->resize(spec.count);
  std::iota(order->begin(), order->end(), 0u);
  if (spec.count <= 1) return;
  const Ctx c{spec.base, spec.record_bytes, spec.key_bytes};
  std::vector<uint32_t> tmp(spec.count);
  const bool parallel = spec.pool != nullptr &&
                        spec.pool->parallelism() > 1 &&
                        spec.count >= kParallelMinRecords;
  if (spec.use_radix) {
    if (parallel) {
      ParallelRadixSort(c, spec.pool, order, &tmp);
    } else {
      RadixSort(c, order->data(), tmp.data(), spec.count, 0);
    }
  } else {
    if (parallel) {
      ParallelComparisonSort(c, spec.pool, order, &tmp);
    } else {
      ComparisonSort(c, order->data(), spec.count, 0);
    }
  }
}

}  // namespace coconut
