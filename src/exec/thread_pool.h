// Shared work-queue thread pool for the query-execution subsystem.
//
// One pool is shared by every parallel stage in the library (SIMS
// lower-bound scans, the builder's summarize phase, QueryEngine batches)
// instead of spawning fresh std::threads per operation. Two usage styles:
//
//  * Async(fn)      — submit a task, get a std::future for its result.
//  * ParallelFor    — split [begin, end) into chunks and run them on the
//    pool. The *calling thread participates*: chunks are claimed from a
//    shared atomic cursor by both pool workers and the caller, so nested
//    ParallelFor calls (e.g. a QueryEngine worker running a per-query SIMS
//    scan) can never deadlock even when every pool worker is busy — the
//    caller simply executes its own chunks.
//
// A pool constructed with `threads <= 1` has no workers; ParallelFor and
// Submit degenerate to serial inline execution (the configured serial
// fallback for num_threads == 1).
#ifndef COCONUT_EXEC_THREAD_POOL_H_
#define COCONUT_EXEC_THREAD_POOL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "src/common/sync.h"

namespace coconut {

/// Bumps the "exec.oneshot_inline_claims" counter (defined in the .cc so
/// this header stays free of the obs dependency).
void NoteOneShotInlineClaim();

class ThreadPool {
 public:
  /// `threads` is the total parallelism including the caller of ParallelFor:
  /// the pool spawns `threads - 1` workers. 0 means hardware concurrency.
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism (workers + the calling thread), always >= 1.
  unsigned parallelism() const { return static_cast<unsigned>(workers_.size()) + 1; }

  /// Enqueues `fn` for execution by a worker. With no workers the task runs
  /// inline. Tasks must not throw.
  void Submit(std::function<void()> fn);

  /// Submits a callable and returns a future for its result.
  template <typename F>
  auto Async(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    Submit([task]() { (*task)(); });
    return fut;
  }

  /// Runs `body(lo, hi)` over chunked subranges of [begin, end); blocks until
  /// every chunk completed. `grain` is the preferred chunk size (0 = pick
  /// one that gives each thread a few chunks). The caller participates in
  /// chunk execution, so this is safe to call from inside pool tasks.
  void ParallelFor(uint64_t begin, uint64_t end, uint64_t grain,
                   const std::function<void(uint64_t, uint64_t)>& body);

  /// Process-wide pool sized to hardware concurrency (overridable with the
  /// COCONUT_THREADS environment variable). Never destroyed.
  static ThreadPool* Shared();

 private:
  struct ForState;

  /// A queued task stamped with its enqueue time, so dequeue can feed the
  /// "exec.queue_wait_ns" histogram (how long work sat behind other work),
  /// and with a tracer flow id (0 = tracing was off at enqueue) so the
  /// span tracer can draw the enqueue->execute arrow across threads.
  struct QueueEntry {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
    uint64_t flow_id = 0;
  };

  void WorkerLoop();
  /// Records queue-wait and tasks-executed metrics for a just-dequeued
  /// entry (implemented in the .cc to keep obs out of this header).
  static void NoteDequeued(const QueueEntry& entry);
  /// Runs a dequeued entry, recording a "pool.task" span plus the flow
  /// 'f' event pairing it with its enqueue when tracing is on.
  static void RunEntryTraced(const QueueEntry& entry);

  // Immutable after construction (workers are spawned in the constructor
  // and joined in the destructor only).
  std::vector<std::thread> workers_;

  Mutex mu_;
  CondVar cv_;
  std::deque<QueueEntry> queue_ GUARDED_BY(mu_);
  bool shutdown_ GUARDED_BY(mu_) = false;
};

/// A task that runs exactly once — either on a pool worker or inline in the
/// thread that waits for it. Wait() claims the task if no worker has picked
/// it up yet and executes it on the calling thread, so code running *on* a
/// saturated pool can block on background I/O it scheduled without
/// deadlocking (the waiter simply does the work itself). Used by the
/// prefetching reader / async-flush writer in src/io.
class OneShotTask {
 public:
  explicit OneShotTask(std::function<void()> fn)
      : fn_(std::move(fn)), future_(promise_.get_future()) {}

  OneShotTask(const OneShotTask&) = delete;
  OneShotTask& operator=(const OneShotTask&) = delete;

  /// Schedules `task` on `pool`; the shared_ptr keeps it alive until both
  /// the worker lambda and every waiter released it.
  static void Schedule(ThreadPool* pool, std::shared_ptr<OneShotTask> task) {
    pool->Submit([task]() { task->RunOnce(); });
  }

  /// Blocks until the task has completed, claiming and running it inline if
  /// no worker started it yet. Safe to call from any thread, repeatedly.
  void Wait() {
    if (RunOnce()) NoteOneShotInlineClaim();
    future_.wait();
  }

 private:
  /// Returns true when this call claimed and executed the task.
  bool RunOnce() {
    if (!claimed_.exchange(true, std::memory_order_acq_rel)) {
      fn_();
      promise_.set_value();
      return true;
    }
    return false;
  }

  std::atomic<bool> claimed_{false};
  std::function<void()> fn_;
  std::promise<void> promise_;
  std::shared_future<void> future_;
};

}  // namespace coconut

#endif  // COCONUT_EXEC_THREAD_POOL_H_
