// DHWT + Vertical baseline: orthonormality (Parseval), progressive lower
// bounds, stepwise construction, and exact search correctness.
#include "src/baselines/vertical/vertical_index.h"

#include <cmath>

#include "gtest/gtest.h"
#include "src/series/distance.h"
#include "src/summary/dhwt.h"
#include "tests/test_util.h"

namespace coconut {
namespace {

using testing::BruteForceNn;
using testing::MakeDatasetFile;
using testing::ScratchDir;

TEST(Dhwt, RoundTripsRandomSeries) {
  Rng rng(1);
  for (size_t n : {2, 8, 64, 256}) {
    std::vector<Value> series(n);
    for (auto& v : series) v = static_cast<Value>(rng.Gaussian());
    std::vector<double> coeffs(n), back(n);
    ASSERT_OK(DhwtTransform(series.data(), n, coeffs.data()));
    ASSERT_OK(DhwtInverse(coeffs.data(), n, back.data()));
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(back[i], series[i], 1e-5) << "n=" << n << " i=" << i;
    }
  }
}

TEST(Dhwt, RejectsNonPowerOfTwo) {
  std::vector<Value> series(100, 0.0f);
  std::vector<double> coeffs(100);
  EXPECT_FALSE(DhwtTransform(series.data(), 100, coeffs.data()).ok());
}

TEST(Dhwt, ParsevalDistancePreservation) {
  Rng rng(2);
  const size_t n = 128;
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Value> a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = static_cast<Value>(rng.Gaussian());
      b[i] = static_cast<Value>(rng.Gaussian());
    }
    std::vector<double> ca(n), cb(n);
    ASSERT_OK(DhwtTransform(a.data(), n, ca.data()));
    ASSERT_OK(DhwtTransform(b.data(), n, cb.data()));
    double coeff_dist = 0.0;
    for (size_t i = 0; i < n; ++i) {
      coeff_dist += (ca[i] - cb[i]) * (ca[i] - cb[i]);
    }
    EXPECT_NEAR(coeff_dist, SquaredEuclidean(a.data(), b.data(), n), 1e-4);
  }
}

TEST(Dhwt, PrefixPartialSumsLowerBound) {
  // Any coefficient prefix gives a monotone lower bound of the full
  // distance — the property the Vertical scan relies on for pruning.
  Rng rng(3);
  const size_t n = 64;
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Value> a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = static_cast<Value>(rng.Gaussian());
      b[i] = static_cast<Value>(rng.Gaussian());
    }
    std::vector<double> ca(n), cb(n);
    ASSERT_OK(DhwtTransform(a.data(), n, ca.data()));
    ASSERT_OK(DhwtTransform(b.data(), n, cb.data()));
    const double full = SquaredEuclidean(a.data(), b.data(), n);
    double partial = 0.0;
    for (size_t i = 0; i < n; ++i) {
      partial += (ca[i] - cb[i]) * (ca[i] - cb[i]);
      EXPECT_LE(partial, full + 1e-4);
    }
  }
}

TEST(Dhwt, LevelRangesTileCoefficients) {
  const size_t n = 256;
  const size_t levels = DhwtLevels(n);
  EXPECT_EQ(levels, 9u);
  size_t covered = 0;
  for (size_t level = 0; level < levels; ++level) {
    size_t begin, end;
    DhwtLevelRange(level, &begin, &end);
    EXPECT_EQ(begin, covered);
    covered = end;
  }
  EXPECT_EQ(covered, n);
}

class VerticalTest : public ::testing::TestWithParam<DatasetKind> {};

TEST_P(VerticalTest, ExactSearchEqualsBruteForce) {
  ScratchDir dir;
  const std::string raw = dir.File("data.bin");
  auto data = MakeDatasetFile(raw, GetParam(), 1500, 64, 111);
  VerticalOptions opts;
  opts.series_length = 64;
  opts.verify_threshold = 32;
  std::unique_ptr<VerticalIndex> index;
  VerticalBuildStats stats;
  ASSERT_OK(
      VerticalIndex::Build(raw, dir.File("vertical"), opts, &index, &stats));
  EXPECT_EQ(stats.passes, DhwtLevels(64));
  auto qgen = MakeGenerator(GetParam(), 64, 900);
  for (int q = 0; q < 15; ++q) {
    const Series query = qgen->NextSeries();
    const auto [bf_idx, bf_dist] = BruteForceNn(data, query);
    SearchResult res;
    ASSERT_OK(index->ExactSearch(query.data(), &res));
    EXPECT_NEAR(res.distance, bf_dist, 1e-4) << "query " << q;
    // Pruning must have some effect: not every series gets verified.
    EXPECT_LT(res.visited_records, data.size());
  }
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, VerticalTest,
                         ::testing::Values(DatasetKind::kRandomWalk,
                                           DatasetKind::kSeismic,
                                           DatasetKind::kAstronomy),
                         [](const auto& info) {
                           return DatasetKindName(info.param);
                         });

TEST(Vertical, ApproxIsUpperBoundOfExact) {
  ScratchDir dir;
  const std::string raw = dir.File("data.bin");
  auto data = MakeDatasetFile(raw, DatasetKind::kRandomWalk, 1000, 64, 112);
  VerticalOptions opts;
  opts.series_length = 64;
  std::unique_ptr<VerticalIndex> index;
  ASSERT_OK(VerticalIndex::Build(raw, dir.File("vertical"), opts, &index));
  auto qgen = MakeGenerator(DatasetKind::kRandomWalk, 64, 901);
  for (int q = 0; q < 8; ++q) {
    const Series query = qgen->NextSeries();
    SearchResult approx, exact;
    ASSERT_OK(index->ApproxSearch(query.data(), &approx));
    ASSERT_OK(index->ExactSearch(query.data(), &exact));
    EXPECT_GE(approx.distance + 1e-6, exact.distance);
  }
}

TEST(Vertical, StorageMatchesFullTransform) {
  ScratchDir dir;
  const std::string raw = dir.File("data.bin");
  MakeDatasetFile(raw, DatasetKind::kRandomWalk, 500, 64, 113);
  VerticalOptions opts;
  opts.series_length = 64;
  std::unique_ptr<VerticalIndex> index;
  ASSERT_OK(VerticalIndex::Build(raw, dir.File("vertical"), opts, &index));
  // Full orthonormal transform: coefficient storage == raw storage.
  EXPECT_EQ(index->StorageBytes(), 500u * 64u * sizeof(float));
}

TEST(Vertical, RejectsNonPowerOfTwoLength) {
  VerticalOptions opts;
  opts.series_length = 100;
  EXPECT_FALSE(opts.Validate().ok());
}

}  // namespace
}  // namespace coconut
