#include "src/obs/metrics.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "src/obs/exit_hooks.h"

namespace coconut {

namespace {

/// Floor of log2(v); v must be non-zero.
inline int FloorLog2(uint64_t v) {
#if defined(__GNUC__) || defined(__clang__)
  return 63 - __builtin_clzll(v);
#else
  int e = 0;
  while (v >>= 1) ++e;
  return e;
#endif
}

/// Prometheus metric names are [a-zA-Z_:][a-zA-Z0-9_:]*; our dotted names
/// ("store.commit.epoch_ns") map '.' and '-' to '_' and gain a namespace
/// prefix.
std::string PrometheusName(const std::string& name) {
  std::string out = "coconut_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void AppendJsonKey(std::ostringstream* out, const std::string& name,
                   bool* first) {
  if (!*first) *out << ",";
  *first = false;
  // Metric names are plain identifiers-with-dots; no escaping needed beyond
  // quoting (enforced at registration by convention, cheap to keep true).
  *out << "\"" << name << "\":";
}

}  // namespace

// ---------------------------------------------------------------------------
// Counter

size_t Counter::StripeIndex() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t stripe =
      next.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return stripe;
}

// ---------------------------------------------------------------------------
// Histogram

size_t Histogram::BucketFor(uint64_t value) {
  if (value < (uint64_t{1} << kSubBits)) return static_cast<size_t>(value);
  const int e = FloorLog2(value);
  const size_t sub =
      static_cast<size_t>((value >> (e - kSubBits)) & ((1u << kSubBits) - 1));
  return (static_cast<size_t>(e - kSubBits + 1) << kSubBits) | sub;
}

uint64_t Histogram::BucketLowerBound(size_t b) {
  if (b < (size_t{1} << kSubBits)) return b;
  const int e = static_cast<int>(b >> kSubBits) + kSubBits - 1;
  const uint64_t sub = b & ((1u << kSubBits) - 1);
  return (uint64_t{1} << e) | (sub << (e - kSubBits));
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot s;
  s.buckets.resize(kNumBuckets);
  for (size_t i = 0; i < kNumBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    s.count += s.buckets[i];
  }
  s.sum = sum_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  return s;
}

uint64_t HistogramSnapshot::ValueAtQuantile(double q) const {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target sample, 1-based; q=1 selects the last sample.
  uint64_t rank = static_cast<uint64_t>(q * double(count));
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  uint64_t seen = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    seen += buckets[b];
    if (seen >= rank) {
      // Upper bound of this bucket, clamped by the true observed max.
      uint64_t hi = b + 1 < Histogram::kNumBuckets
                        ? Histogram::BucketLowerBound(b + 1) - 1
                        : max;
      return hi < max ? hi : max;
    }
  }
  return max;
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (buckets.size() < other.buckets.size()) {
    buckets.resize(other.buckets.size());
  }
  for (size_t i = 0; i < other.buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
  count += other.count;
  sum += other.sum;
  if (other.max > max) max = other.max;
}

HistogramSnapshot HistogramSnapshot::Delta(
    const HistogramSnapshot& earlier) const {
  HistogramSnapshot d;
  d.buckets.resize(buckets.size());
  for (size_t i = 0; i < buckets.size(); ++i) {
    const uint64_t before =
        i < earlier.buckets.size() ? earlier.buckets[i] : 0;
    d.buckets[i] = buckets[i] - before;
    d.count += d.buckets[i];
  }
  d.sum = sum - earlier.sum;
  d.max = max;  // max is not subtractable; keep the lifetime max
  return d;
}

// ---------------------------------------------------------------------------
// RegistrySnapshot

void RegistrySnapshot::Merge(const RegistrySnapshot& other) {
  for (const auto& [name, v] : other.counters) counters[name] += v;
  for (const auto& [name, v] : other.gauges) gauges[name] += v;
  for (const auto& [name, h] : other.histograms) histograms[name].Merge(h);
}

std::string RegistrySnapshot::ToPrometheusText() const {
  std::ostringstream out;
  char buf[64];
  for (const auto& [name, v] : counters) {
    const std::string p = PrometheusName(name);
    out << "# TYPE " << p << " counter\n";
    out << p << " " << v << "\n";
  }
  for (const auto& [name, v] : gauges) {
    const std::string p = PrometheusName(name);
    out << "# TYPE " << p << " gauge\n";
    out << p << " " << v << "\n";
  }
  for (const auto& [name, h] : histograms) {
    const std::string p = PrometheusName(name);
    // Real Prometheus/Grafana ingestion needs the cumulative bucket form:
    // `_bucket{le="..."}` counts are monotone and end at `le="+Inf"` ==
    // `_count`. Only non-empty buckets get a line (the cumulative counts
    // stay correct; 496 mostly-zero lines per histogram would not), with
    // `le` = the bucket's upper bound in the histogram's native unit (ns).
    out << "# TYPE " << p << " histogram\n";
    uint64_t cumulative = 0;
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] == 0) continue;
      cumulative += h.buckets[b];
      out << p << "_bucket{le=\""
          << (Histogram::BucketLowerBound(b + 1) - 1) << "\"} " << cumulative
          << "\n";
    }
    out << p << "_bucket{le=\"+Inf\"} " << h.count << "\n";
    out << p << "_sum " << h.sum << "\n";
    out << p << "_count " << h.count << "\n";
    // Convenience series for humans and dashboards that do not want to run
    // histogram_quantile(): the observed max and precomputed quantiles, as
    // gauges under derived names (a metric may carry only one TYPE).
    out << "# TYPE " << p << "_max gauge\n";
    out << p << "_max " << h.max << "\n";
    out << "# TYPE " << p << "_quantiles gauge\n";
    static constexpr double kQuantiles[] = {0.5, 0.95, 0.99};
    for (double q : kQuantiles) {
      std::snprintf(buf, sizeof(buf), "%g", q);
      out << p << "_quantiles{quantile=\"" << buf << "\"} "
          << h.ValueAtQuantile(q) << "\n";
    }
  }
  return out.str();
}

std::string RegistrySnapshot::ToJson() const {
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    AppendJsonKey(&out, name, &first);
    out << v;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    AppendJsonKey(&out, name, &first);
    out << v;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    AppendJsonKey(&out, name, &first);
    out << "{\"count\":" << h.count << ",\"sum\":" << h.sum
        << ",\"max\":" << h.max << ",\"p50\":" << h.ValueAtQuantile(0.5)
        << ",\"p95\":" << h.ValueAtQuantile(0.95)
        << ",\"p99\":" << h.ValueAtQuantile(0.99) << "}";
  }
  out << "}}";
  return out.str();
}

// ---------------------------------------------------------------------------
// MetricRegistry

Counter* MetricRegistry::GetCounter(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricRegistry::GetGauge(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricRegistry::GetHistogram(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

RegistrySnapshot MetricRegistry::Snapshot() const {
  RegistrySnapshot s;
  MutexLock lock(&mu_);
  for (const auto& [name, c] : counters_) s.counters[name] = c->Value();
  for (const auto& [name, g] : gauges_) s.gauges[name] = g->Value();
  for (const auto& [name, h] : histograms_) s.histograms[name] = h->Snapshot();
  return s;
}

namespace {

void DumpAtExitText() {
  std::fputs("---- coconut metrics (COCONUT_STATS=dump-at-exit) ----\n",
             stderr);
  std::fputs(MetricRegistry::Default().ToPrometheusText().c_str(), stderr);
  std::fputs("---- end coconut metrics ----\n", stderr);
}

/// Written at exit so a whole run's metrics land in one scrapeable file
/// (the CI bench job uploads it next to BENCH_query_engine.json).
std::string* g_stats_json_path = nullptr;

void DumpAtExitJson() {
  std::FILE* f = std::fopen(g_stats_json_path->c_str(), "w");
  if (f == nullptr) return;
  const std::string json = MetricRegistry::Default().ToJson();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

}  // namespace

MetricRegistry& MetricRegistry::Default() {
  // Leaked singleton: metric pointers handed out stay valid through static
  // destruction, and the atexit dumps below can safely read the registry.
  static MetricRegistry* registry = []() {
    auto* r = new MetricRegistry();
    // RegisterExitDump (not bare atexit) so the dumps also fire when the
    // process is interrupted: SIGINT/SIGTERM handlers are installed on the
    // first registration — opt-in via these env toggles, a process that
    // never arms them keeps its signal dispositions untouched.
    if (const char* env = std::getenv("COCONUT_STATS")) {
      if (std::string(env) == "dump-at-exit") RegisterExitDump(DumpAtExitText);
    }
    if (const char* env = std::getenv("COCONUT_STATS_JSON")) {
      if (env[0] != '\0') {
        g_stats_json_path = new std::string(env);
        RegisterExitDump(DumpAtExitJson);
      }
    }
    return r;
  }();
  return *registry;
}

}  // namespace coconut
