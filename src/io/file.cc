#include "src/io/file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/io/io_stats.h"

namespace coconut {

namespace {
std::string ErrnoMessage(const std::string& op, const std::string& path) {
  return op + " " + path + ": " + std::strerror(errno);
}
}  // namespace

RandomAccessFile::~RandomAccessFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status RandomAccessFile::Open(const std::string& path,
                              std::unique_ptr<RandomAccessFile>* out) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IOError(ErrnoMessage("open", path));
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError(ErrnoMessage("fstat", path));
  }
  out->reset(new RandomAccessFile(path, fd, static_cast<uint64_t>(st.st_size)));
  return Status::OK();
}

Status RandomAccessFile::Read(uint64_t offset, size_t n, void* buf) {
  // Classification is best-effort under concurrency: the tracker holds the
  // end offset of whichever read on this handle updated it last.
  const bool random =
      (offset != next_sequential_offset_.load(std::memory_order_relaxed));
  uint8_t* dst = static_cast<uint8_t*>(buf);
  size_t remaining = n;
  uint64_t pos = offset;
  while (remaining > 0) {
    ssize_t r = ::pread(fd_, dst, remaining, static_cast<off_t>(pos));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(ErrnoMessage("pread", path_));
    }
    if (r == 0) {
      return Status::IOError("pread " + path_ + ": unexpected EOF");
    }
    dst += r;
    pos += static_cast<uint64_t>(r);
    remaining -= static_cast<size_t>(r);
  }
  next_sequential_offset_.store(offset + n, std::memory_order_relaxed);
  IoStats::Instance().RecordRead(n, random);
  return Status::OK();
}

WritableFile::~WritableFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status WritableFile::Create(const std::string& path,
                            std::unique_ptr<WritableFile>* out) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IOError(ErrnoMessage("create", path));
  out->reset(new WritableFile(path, fd));
  return Status::OK();
}

Status WritableFile::OpenForAppend(const std::string& path,
                                   std::unique_ptr<WritableFile>* out) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd < 0) return Status::IOError(ErrnoMessage("open-append", path));
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError(ErrnoMessage("fstat", path));
  }
  auto* file = new WritableFile(path, fd);
  file->append_offset_ = static_cast<uint64_t>(st.st_size);
  out->reset(file);
  return Status::OK();
}

Status WritableFile::Append(const void* data, size_t n) {
  COCONUT_RETURN_IF_ERROR(WriteAt(append_offset_, data, n));
  return Status::OK();
}

Status WritableFile::WriteAt(uint64_t offset, const void* data, size_t n) {
  const bool random = (offset != append_offset_);
  const uint8_t* src = static_cast<const uint8_t*>(data);
  size_t remaining = n;
  uint64_t pos = offset;
  while (remaining > 0) {
    ssize_t w = ::pwrite(fd_, src, remaining, static_cast<off_t>(pos));
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(ErrnoMessage("pwrite", path_));
    }
    src += w;
    pos += static_cast<uint64_t>(w);
    remaining -= static_cast<size_t>(w);
  }
  if (offset + n > append_offset_) append_offset_ = offset + n;
  IoStats::Instance().RecordWrite(n, random);
  return Status::OK();
}

Status WritableFile::Sync() {
  // fdatasync would dominate laptop-scale benches; durability is not part of
  // the reproduced claims, so Sync is a no-op beyond the write() calls.
  return Status::OK();
}

Status WritableFile::Close() {
  if (fd_ >= 0) {
    if (::close(fd_) != 0) {
      fd_ = -1;
      return Status::IOError(ErrnoMessage("close", path_));
    }
    fd_ = -1;
  }
  return Status::OK();
}

}  // namespace coconut
