// invSAX — the paper's sortable summarization (§4.1, Algorithm 1).
//
// The bits of the per-segment SAX symbols are interleaved so that all more
// significant bits across all segments precede all less significant bits,
// while preserving segment order within each bit level:
//
//   key bit (i * w + j)  =  bit (b-1-i) of symbol j,
//
// for bit level i in [0, b) and segment j in [0, w). This places the series
// on a z-order space-filling curve: lexicographic order on the interleaved
// key keeps series that are similar across *all* segments adjacent, which is
// what makes external-sort-based bulk-loading possible.
//
// The transform is a bijection: no information is lost relative to the
// original SAX word, so pruning power is unchanged (paper §4.1).
#ifndef COCONUT_SUMMARY_INVSAX_H_
#define COCONUT_SUMMARY_INVSAX_H_

#include <cstdint>

#include "src/common/zkey.h"
#include "src/series/series.h"
#include "src/summary/options.h"

namespace coconut {

/// Interleaves a SAX word (`opts.segments` bytes, `opts.cardinality_bits`
/// significant bits each) into a sortable z-order key. Unused low-order key
/// bits are zero.
ZKey InvSaxFromSax(const uint8_t* sax, const SummaryOptions& opts);

/// Inverse of InvSaxFromSax: recovers the SAX word from the key.
void SaxFromInvSax(const ZKey& key, const SummaryOptions& opts, uint8_t* out);

/// One-shot helper: raw series -> invSAX key.
ZKey InvSaxFromSeries(const Value* series, const SummaryOptions& opts);

}  // namespace coconut

#endif  // COCONUT_SUMMARY_INVSAX_H_
