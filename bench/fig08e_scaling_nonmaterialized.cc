// Figure 8e: construction time of the NON-MATERIALIZED Coconut-Tree vs ADS+
// with a fixed memory budget and growing dataset. Paper result: same shape
// as Fig 8d — ADS+ degrades with N (random leaf I/O), Coconut-Tree's
// external sort of summarizations stays cheap because the summarizations
// fit in memory.
#include "bench/bench_util.h"
#include "src/baselines/ads/ads_index.h"
#include "src/core/coconut_tree.h"

namespace coconut {
namespace bench {
namespace {

constexpr size_t kLength = 256;
constexpr size_t kLeafCapacity = 2000;
constexpr size_t kBudget = 4ull << 20;

SummaryOptions Summary() {
  SummaryOptions s;
  s.series_length = kLength;
  s.segments = 16;
  s.cardinality_bits = 8;
  return s;
}

void Run() {
  Banner("Figure 8e",
         "non-materialized construction vs dataset size, fixed 4MB budget");
  PrintHeader({"N", "method", "build_time", "sort_time", "rand_io"});
  for (size_t count : {20000 * Scale(), 40000 * Scale(), 80000 * Scale()}) {
    BenchDir dir;
    const std::string raw = PrepareDataset(dir, DatasetKind::kRandomWalk,
                                           count, kLength, 15, "data.bin");
    {
      CoconutOptions opts;
      opts.summary = Summary();
      opts.leaf_capacity = kLeafCapacity;
      opts.memory_budget_bytes = kBudget;
      opts.tmp_dir = dir.path();
      TreeBuildStats stats;
      Measured m;
      CheckOk(CoconutTree::Build(raw, dir.File("ctree.idx"), opts, &stats),
              "CTree build");
      const IoSnapshot io = m.io();
      PrintRow({FmtCount(count), "CTree", FmtSeconds(m.seconds()),
                FmtSeconds(stats.sort_seconds),
                FmtCount(io.random_read_ops + io.random_write_ops)});
    }
    {
      AdsOptions opts;
      opts.summary = Summary();
      opts.leaf_capacity = kLeafCapacity;
      opts.memory_budget_bytes = kBudget;
      std::unique_ptr<AdsIndex> index;
      Measured m;
      CheckOk(AdsIndex::Build(raw, dir.File("adsplus.pages"), opts, &index),
              "ADS+ build");
      const IoSnapshot io = m.io();
      PrintRow({FmtCount(count), "ADS+", FmtSeconds(m.seconds()),
                FmtSeconds(0.0),
                FmtCount(io.random_read_ops + io.random_write_ops)});
    }
  }
  std::printf(
      "\nExpectation (paper Fig 8e): only summarizations are sorted, so\n"
      "CTree's external-sort overhead is tiny; ADS+'s random I/O grows\n"
      "with N once its buffers no longer cover the leaves.\n");
}

}  // namespace
}  // namespace bench
}  // namespace coconut

int main() {
  coconut::bench::Run();
  return 0;
}
