// CoconutForest: the paper's future-work direction (§6 — "we would also
// like to explore how ideas from LSM trees [35] could be used to enable the
// efficient updates") built on top of Coconut-Tree.
//
// Incoming series accumulate in an in-memory buffer (the memtable). When the
// buffer fills, it is sorted by invSAX and bulk-loaded as an immutable
// Coconut-Tree run — a sequential write, exactly like an LSM level flush.
// When the number of runs exceeds the configured threshold, all runs are
// merged into one (tiered full compaction). Every run is already in invSAX
// order, so the merge partitions the key space into chunks and merges the
// chunks concurrently on the shared ThreadPool.
//
// Queries consult the buffer plus every run; exact search merges the
// per-run exact k-NN answers (each run's SIMS scan is exact over its data
// and runs partition the dataset, so the merged top-k is the global top-k).
//
// Concurrency model (snapshot isolation):
//  * Writers (Insert/InsertBatch/Flush/CompactAll) are serialized by an
//    internal writer mutex. Expensive work — run bulk-loads, compaction
//    merges — happens outside any reader-visible lock.
//  * Readers grab a Snapshot under a shared_mutex held only long enough to
//    copy the run set (shared_ptrs) and the memtable publish point, then
//    search entirely lock-free on immutable state. Runs are immutable
//    Coconut-Trees; the memtable vector has fixed capacity and entries
//    [0, memtable_count) are never mutated after publication, so a late
//    writer appending entry `count` never races a reader of [0, count).
//  * Compaction swaps the run set atomically; snapshot holders keep the old
//    run trees alive via shared_ptr (their files stay readable after unlink
//    because the file descriptors remain open).
//
// Compared to CoconutTree::MergeBatch (which rebuilds the whole index per
// batch), the forest amortizes ingestion: small fragmented batches no
// longer trigger full rebuilds — the weakness paper Fig 10a shows for
// per-batch merging.
#ifndef COCONUT_CORE_COCONUT_FOREST_H_
#define COCONUT_CORE_COCONUT_FOREST_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/sync.h"
#include "src/core/coconut_options.h"
#include "src/core/coconut_tree.h"
#include "src/series/series.h"

namespace coconut {

struct ForestOptions {
  CoconutOptions tree;
  /// Series buffered in memory before a run is flushed.
  size_t memtable_series = 4096;
  /// Maximum number of on-disk runs before a full (tiered) compaction.
  size_t max_runs = 4;

  Status Validate() const {
    COCONUT_RETURN_IF_ERROR(tree.Validate());
    if (memtable_series == 0 || max_runs == 0) {
      return Status::InvalidArgument("memtable_series and max_runs must be > 0");
    }
    return Status::OK();
  }
};

class CoconutForest {
 public:
  struct MemEntry {
    Series series;
    uint64_t offset;
  };

  /// An immutable point-in-time view of the forest. Cheap to copy (shared
  /// ownership of the run trees and the memtable buffer). Queries against a
  /// snapshot never block, and are never affected by, concurrent writers.
  struct Snapshot {
    std::shared_ptr<const std::vector<MemEntry>> memtable;
    size_t memtable_count = 0;
    std::vector<std::shared_ptr<const CoconutTree>> runs;

    uint64_t num_entries() const {
      uint64_t total = memtable_count;
      for (const auto& run : runs) total += run->num_entries();
      return total;
    }
  };

  /// Creates a forest over the dataset at `raw_path` (which may be empty or
  /// already populated — existing series are bulk-loaded as the first run).
  /// Run files are stored under `dir`.
  ///
  /// Integrity: the raw file carries a checksum sidecar (`<raw_path>.crc`,
  /// one little-endian CRC32C per series) maintained in lockstep with every
  /// append. Open verifies the whole file against it before bulk-loading
  /// and fails with Corruption (naming series index and byte offset) on a
  /// mismatch; missing or short sidecars are backfilled, not rejected, so
  /// legacy datasets and crash-window appends keep working.
  static Status Open(const std::string& raw_path, const std::string& dir,
                     const ForestOptions& options,
                     std::unique_ptr<CoconutForest>* out);

  /// Appends one series to the raw file and the memtable; may flush a run
  /// and/or trigger compaction. Writers are serialized internally and do
  /// not block concurrent readers.
  Status Insert(const Series& series);

  /// Batch variant of Insert.
  Status InsertBatch(const std::vector<Series>& batch);

  /// One shard's half of the store's two-phase cross-shard epoch commit
  /// (see src/store/README.md). StageBatch makes the sub-batch durable and
  /// query-ready; PublishStaged flips it visible. Between the two calls the
  /// staged entries are invisible to every snapshot, so the store can
  /// journal-commit the whole epoch and then publish all shards' slices
  /// under one visibility lock with no I/O inside it.
  struct StagedBatch {
    /// Small slices publish straight into the memtable...
    std::vector<MemEntry> entries;
    /// ...slices larger than the memtable are pre-built as a run here in
    /// stage phase (publication is then an O(1) run-set push).
    std::shared_ptr<const CoconutTree> run;
    /// Raw-file byte range the staged append occupies (the store records
    /// pre_raw_bytes in the epoch journal for torn-batch rollback).
    uint64_t pre_raw_bytes = 0;
    uint64_t raw_bytes = 0;
  };

  /// Phase 1: appends `batch` to the raw file and prepares (but does NOT
  /// publish) the staged entries. The caller must guarantee no other writer
  /// touches this forest between StageBatch and PublishStaged (the store's
  /// commit lock does). On failure the raw tail may hold orphaned bytes;
  /// the store's epoch journal rolls them back at the next open.
  Status StageBatch(const std::vector<Series>& batch, StagedBatch* out);

  /// True iff PublishStaged can apply `staged` without flushing (the
  /// memtable has room, or the slice is a pre-built run). The store checks
  /// every shard BEFORE publishing any, so an impossible-fit bug fails the
  /// whole epoch atomically instead of leaving it half-published.
  bool StagedFits(const StagedBatch& staged) const;

  /// Phase 2: makes the staged entries visible to new snapshots. One short
  /// exclusive acquisition of the reader-visible lock; never flushes, never
  /// does I/O (StageBatch pre-flushed the memtable if the slice would have
  /// overflowed it). The caller must have checked StagedFits; publishing a
  /// non-fitting slice would reallocate the memtable under lock-free
  /// readers, so that is rejected without publishing anything.
  Status PublishStaged(StagedBatch&& staged);

  /// Runs a full compaction iff the run count exceeds options.max_runs
  /// (deferred maintenance after staged publications, which skip the
  /// automatic trigger inside InsertBatch).
  Status CompactIfNeeded();

  /// Recovery hook: truncates a raw dataset file back to `target_bytes`,
  /// discarding appends whose commit epoch never became durable. Must be
  /// called before Open (recovery bulk-loads the raw file). Refuses to
  /// grow the file: a raw file shorter than a committed extent is real
  /// corruption, not a torn tail.
  static Status TruncateRawForRecovery(const std::string& raw_path,
                                       uint64_t target_bytes);

  /// Salvage hook for degraded-mode reopen: truncates `raw_path` (and its
  /// checksum sidecar, in lockstep) back to the longest prefix of whole
  /// series whose sidecar CRCs verify, and reports the resulting raw size.
  /// Series past the sidecar's coverage are kept only when every covered
  /// series before them verified. Never grows the file; a missing raw file
  /// salvages to 0 bytes.
  static Status SalvageRaw(const std::string& raw_path, size_t series_bytes,
                           uint64_t* salvaged_bytes);

  /// Current raw dataset file size in bytes (writer-synchronized; this is
  /// the pre-append size the store journals before staging a sub-batch).
  uint64_t raw_size() const;

  /// Flushes the memtable to a run (no-op when empty).
  Status Flush();

  /// Merges all runs into one (always safe; also triggered automatically
  /// when run count exceeds options.max_runs).
  Status CompactAll();

  /// Captures an immutable snapshot of the current forest state.
  Snapshot GetSnapshot() const;

  /// Exact k nearest neighbors across the memtable and all runs.
  Status ExactSearch(const Value* query, SearchResult* result,
                     size_t k = 1) const;
  Status ExactSearch(const Snapshot& snapshot, const Value* query,
                     SearchResult* result, size_t k = 1,
                     CoconutTree::QueryScratch* scratch = nullptr) const;

  /// Approximate search: best k candidates across the memtable and the
  /// target leaf window of every run.
  Status ApproxSearch(const Value* query, size_t num_leaves,
                      SearchResult* result, size_t k = 1) const;
  Status ApproxSearch(const Snapshot& snapshot, const Value* query,
                      size_t num_leaves, SearchResult* result, size_t k = 1,
                      CoconutTree::QueryScratch* scratch = nullptr) const;

  size_t num_runs() const;
  uint64_t num_entries() const;
  uint64_t memtable_size() const;

 private:
  CoconutForest() = default;

  /// Flushes the memtable (the builds happen outside state_mu_; only the
  /// final run/memtable swap takes it exclusively).
  Status FlushWriterLocked() REQUIRES(writer_mu_);
  /// Full compaction. The heavy runs-merge is chunked over the shared
  /// ThreadPool and asserts it never executes while this thread holds the
  /// reader-visible state lock.
  Status CompactWriterLocked() REQUIRES(writer_mu_);
  /// Parallel k-way merge of the (sorted) leaf entries of `inputs` into one
  /// contiguous sorted record buffer. Must not run under state_mu_ —
  /// readers must never wait on a merge.
  Status MergeRunsParallel(
      const std::vector<std::shared_ptr<const CoconutTree>>& inputs,
      std::vector<uint8_t>* out) const REQUIRES(writer_mu_)
      EXCLUDES(state_mu_);
  std::string RunPath(uint64_t id) const;

  /// Writer-path reads of reader-guarded state. writer_mu_ already excludes
  /// every mutator (all mutation happens with both locks held), but the
  /// reads still take a brief shared acquisition of state_mu_ so the
  /// guarded-by contract stays honest. Lock order writer_mu_ -> state_mu_,
  /// same as the write path.
  size_t MemtableCountWriterLocked() const REQUIRES(writer_mu_) {
    ReaderLock lock(&state_mu_);
    return memtable_count_;
  }
  size_t NumRunsWriterLocked() const REQUIRES(writer_mu_) {
    ReaderLock lock(&state_mu_);
    return runs_.size();
  }

  /// RAII exclusive lock on state_mu_ that also maintains the debug flag
  /// the heavy-work assertions check (writers are serialized by writer_mu_,
  /// so a set flag always means *this* thread holds the lock).
  class SCOPED_CAPABILITY StateWriteLock {
   public:
    explicit StateWriteLock(const CoconutForest* f) ACQUIRE(f->state_mu_)
        : forest_(f) {
      f->state_mu_.Lock();
      f->state_write_locked_.store(true, std::memory_order_relaxed);
    }
    ~StateWriteLock() RELEASE() {
      forest_->state_write_locked_.store(false, std::memory_order_relaxed);
      forest_->state_mu_.Unlock();
    }

    StateWriteLock(const StateWriteLock&) = delete;
    StateWriteLock& operator=(const StateWriteLock&) = delete;

   private:
    const CoconutForest* const forest_;
  };

  ForestOptions options_;
  std::string raw_path_;
  std::string dir_;

  // Writer-only state: serialized by writer_mu_, never touched by readers.
  // Mutable so const inspection (raw_size) can synchronize with writers.
  mutable Mutex writer_mu_;
  uint64_t next_run_id_ GUARDED_BY(writer_mu_) = 0;
  uint64_t raw_bytes_ GUARDED_BY(writer_mu_) = 0;  // raw file size

  // Reader-visible state, guarded by state_mu_. The memtable vector is
  // created with capacity memtable_series and replaced (never reallocated)
  // on flush; entries below memtable_count_ are immutable.
  mutable SharedMutex state_mu_;
  std::shared_ptr<std::vector<MemEntry>> memtable_ GUARDED_BY(state_mu_);
  size_t memtable_count_ GUARDED_BY(state_mu_) = 0;
  std::vector<std::shared_ptr<const CoconutTree>> runs_
      GUARDED_BY(state_mu_);
  // Debug-only invariant tracking: true while this object's (single,
  // writer_mu_-serialized) writer holds state_mu_ exclusively. Heavy merge
  // work asserts this is false — readers must never wait on a merge.
  mutable std::atomic<bool> state_write_locked_{false};
};

}  // namespace coconut

#endif  // COCONUT_CORE_COCONUT_FOREST_H_
