// External merge sort over fixed-size byte records (paper §3.1, "Bottom-up
// Bulk-Loading Using External Sorting").
//
// Phase 1 (partitioning): records are accumulated into an in-memory buffer
// bounded by the memory budget, sorted, and flushed as sorted runs.
// Phase 2 (merging): runs are k-way merged with one input buffer per run.
// When everything fits in memory the merge phase is skipped entirely (the
// paper notes this is the common case for non-materialized indexes, where
// only summarizations are sorted).
//
// Records are opaque byte strings of a fixed size; ordering is memcmp over
// the first `key_bytes` (ZKey::SerializeBE produces keys whose memcmp order
// equals their numeric order, so invSAX records sort correctly). If more
// runs exist than the fan-in budget allows, intermediate merge passes are
// performed.
#ifndef COCONUT_SORT_EXTERNAL_SORT_H_
#define COCONUT_SORT_EXTERNAL_SORT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/io/buffered_io.h"

namespace coconut {

struct ExternalSortOptions {
  /// Record size in bytes (key + payload).
  size_t record_bytes = 0;
  /// memcmp prefix that defines the sort order.
  size_t key_bytes = 0;
  /// In-memory buffer budget for run generation and merge input buffers.
  size_t memory_budget_bytes = 64 * 1024 * 1024;
  /// Directory for spilled runs.
  std::string tmp_dir;
  /// Maximum number of runs merged in one pass (also bounded by the memory
  /// budget divided by the per-run input buffer size).
  size_t max_fan_in = 64;

  Status Validate() const {
    if (record_bytes == 0) {
      return Status::InvalidArgument("record_bytes must be > 0");
    }
    if (key_bytes == 0 || key_bytes > record_bytes) {
      return Status::InvalidArgument("key_bytes must be in [1, record_bytes]");
    }
    if (memory_budget_bytes < record_bytes * 2) {
      return Status::InvalidArgument("memory budget too small for two records");
    }
    if (tmp_dir.empty()) {
      return Status::InvalidArgument("tmp_dir must be set");
    }
    return Status::OK();
  }
};

/// Streaming interface over the sorted output.
class SortedRecordStream {
 public:
  virtual ~SortedRecordStream() = default;

  /// Copies the next record into `out` (record_bytes); returns false at end.
  virtual bool Next(uint8_t* out, Status* status) = 0;

  /// Total number of records in the stream.
  virtual uint64_t count() const = 0;
};

class ExternalSorter {
 public:
  explicit ExternalSorter(ExternalSortOptions options);
  ~ExternalSorter();

  ExternalSorter(const ExternalSorter&) = delete;
  ExternalSorter& operator=(const ExternalSorter&) = delete;

  /// Adds one record (options.record_bytes bytes). May spill a sorted run.
  Status Add(const uint8_t* record);

  /// Finishes ingestion, performs merge passes if needed, and returns a
  /// stream over the fully sorted data. Call at most once.
  Status Finish(std::unique_ptr<SortedRecordStream>* out);

  /// Number of sorted runs spilled to disk so far (0 = all in memory).
  size_t spilled_runs() const { return run_paths_.size(); }
  uint64_t total_records() const { return total_records_; }

 private:
  Status SortAndSpillBuffer();
  Status MergeRuns(const std::vector<std::string>& inputs,
                   const std::string& output);

  ExternalSortOptions options_;
  std::vector<uint8_t> buffer_;   // staged records, unsorted
  size_t buffer_capacity_records_;
  std::vector<std::string> run_paths_;
  uint64_t total_records_ = 0;
  uint64_t next_run_id_ = 0;
  bool finished_ = false;
};

}  // namespace coconut

#endif  // COCONUT_SORT_EXTERNAL_SORT_H_
