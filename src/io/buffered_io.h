// Buffered sequential reader/writer built on the instrumented file wrappers.
// The buffer size is the unit at which I/O reaches the counted layer, so it
// plays the role of the block size B in the paper's disk-access-model
// analysis.
#ifndef COCONUT_IO_BUFFERED_IO_H_
#define COCONUT_IO_BUFFERED_IO_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/io/file.h"

namespace coconut {

/// Default buffer of 256 KiB: large enough that sequential scans are cheap,
/// small enough that dozens of merge inputs fit in a modest memory budget.
inline constexpr size_t kDefaultIoBufferBytes = 256 * 1024;

class BufferedWriter {
 public:
  explicit BufferedWriter(size_t buffer_bytes = kDefaultIoBufferBytes)
      : capacity_(buffer_bytes) {}

  Status Open(const std::string& path);

  Status Write(const void* data, size_t n);

  /// Flushes buffered bytes and closes the file.
  Status Finish();

  uint64_t bytes_written() const { return bytes_written_; }

 private:
  Status FlushBuffer();

  size_t capacity_;
  std::vector<uint8_t> buffer_;
  std::unique_ptr<WritableFile> file_;
  uint64_t bytes_written_ = 0;
};

class BufferedReader {
 public:
  explicit BufferedReader(size_t buffer_bytes = kDefaultIoBufferBytes)
      : capacity_(buffer_bytes) {}

  Status Open(const std::string& path);

  /// Reads exactly `n` bytes; returns IOError at EOF.
  Status Read(void* out, size_t n);

  /// Skips `n` bytes forward.
  Status Skip(uint64_t n);

  uint64_t file_size() const { return file_ ? file_->size() : 0; }
  uint64_t position() const { return position_; }
  bool AtEnd() const { return position_ >= file_size(); }

 private:
  Status Refill();

  size_t capacity_;
  std::vector<uint8_t> buffer_;
  size_t buffer_pos_ = 0;
  size_t buffer_len_ = 0;
  uint64_t position_ = 0;       // logical read position in the file
  uint64_t buffer_start_ = 0;   // file offset of buffer_[0]
  std::unique_ptr<RandomAccessFile> file_;
};

}  // namespace coconut

#endif  // COCONUT_IO_BUFFERED_IO_H_
